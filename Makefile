# Developer entry points.  `make check` is the CI gate: full build, the
# whole alcotest suite, the bench smoke (parallel-runner sanity +
# telemetry and faults on/off overhead) with its numbers recorded in
# BENCH_SMOKE.json for trend tracking, and the chaos smoke (scripted
# fault plan + determinism verification).

.PHONY: all build test bench-smoke chaos-smoke check trace chaos bench clean

all: build

build:
	dune build

test: build
	dune runtest

bench-smoke: build
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json

# Compressed chaos scenario with byte-identity verification (same-seed
# rerun and serial vs two-domain parallel) — fails loudly on divergence.
chaos-smoke: build
	dune exec bin/reflex_sim.exe -- chaos > _build/chaos_smoke.out
	@grep -q "SLO HELD" _build/chaos_smoke.out
	@grep -q "same-seed rerun byte-identical: true" _build/chaos_smoke.out
	@grep -q "serial vs --jobs 2 byte-identical: true" _build/chaos_smoke.out
	@echo "chaos smoke OK: SLO held, retries bounded, output byte-identical"

check: build
	dune runtest
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json
	$(MAKE) chaos-smoke

# Canonical telemetry scenario: per-request latency breakdowns, SLO
# audit, scheduler decision log, Chrome trace JSON.
trace: build
	dune exec bin/reflex_sim.exe -- trace

# Full chaos scenario with determinism debrief and SLO audit.
chaos: build
	dune exec bin/reflex_sim.exe -- chaos

# Full figure reproduction + microbenchmarks (quick mode).
bench: build
	dune exec bench/main.exe -- --json BENCH_$$(date +%F).json

clean:
	dune clean
