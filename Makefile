# Developer entry points.  `make check` is the CI gate: full build, the
# reflex-lint static-analysis pass (determinism, domain-safety,
# guard-discipline, hot-path allocations, interface hygiene — zero
# findings required), the whole alcotest suite, the bench smoke (parallel-runner sanity +
# telemetry, faults and monitor on/off overhead) with its numbers
# recorded in BENCH_SMOKE.json for trend tracking, the chaos smoke
# (scripted fault plan + determinism verification), the monitor
# smoke (alerting acceptance + bit-reproducible alert timeline) and the
# obs smoke (alert-triggered flight-recorder dump, byte-identical
# across reruns/parallelism/backends), the rack smoke (two-layer
# scheduler bakeoff + migration, byte-identical across reruns,
# parallelism and backends) and the rack-obs smoke (rack-scale
# distributed tracing: hop-delta tiling, dominant-hop attribution on a
# congested link, burn alert + forensic dump, stitched Follows_from
# migrations).

.PHONY: all build test lint bench-smoke chaos-smoke monitor-smoke obs-smoke rack-smoke rack-obs-smoke check trace chaos monitor obs rack bench clean

all: build

build:
	dune build

test: build
	dune runtest

# Determinism / domain-safety / hot-path-allocation gate: reflex-lint
# scans lib/, bin/ and bench/ against lint.manifest, runs the
# interprocedural passes over the cross-module call graph, and fails on
# any finding.  The JSON report and the call graph are kept for the CI
# artifacts.
lint: build
	dune exec bin/reflex_lint.exe -- --root . --json _build/lint.json --callgraph-out _build/callgraph.json

bench-smoke: build
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json

# Compressed chaos scenario with byte-identity verification (same-seed
# rerun and serial vs two-domain parallel) — fails loudly on divergence.
chaos-smoke: build
	dune exec bin/reflex_sim.exe -- chaos > _build/chaos_smoke.out
	@grep -q "SLO HELD" _build/chaos_smoke.out
	@grep -q "same-seed rerun byte-identical: true" _build/chaos_smoke.out
	@grep -q "serial vs --jobs 2 byte-identical: true" _build/chaos_smoke.out
	@echo "chaos smoke OK: SLO held, retries bounded, output byte-identical"

# Monitoring acceptance: alerts fire inside injected-fault windows and
# name their fault, clean runs are silent, a disabled monitor is
# bit-identical to no monitor, and the alert timeline is byte-identical
# serial vs parallel.
monitor-smoke: build
	dune exec bin/reflex_sim.exe -- monitor > _build/monitor_smoke.out
	@grep -q "MONITOR OK" _build/monitor_smoke.out
	@grep -q "same-seed rerun byte-identical: true" _build/monitor_smoke.out
	@grep -q "serial vs --jobs 2 byte-identical: true" _build/monitor_smoke.out
	@echo "monitor smoke OK: alerts in fault windows, clean runs silent, timeline byte-identical"

# Observability acceptance: an alert-triggered flight dump is captured,
# names its firing alert and active fault window, and is byte-identical
# across same-seed reruns, serial vs --jobs 2, and heap vs wheel.
obs-smoke: build
	dune exec bin/reflex_sim.exe -- obs > _build/obs_smoke.out
	@grep -q "OBS OK" _build/obs_smoke.out
	@grep -q "heap vs wheel dump byte-identical: true" _build/obs_smoke.out
	@grep -q "dump names its trigger alert                 PASS" _build/obs_smoke.out
	@echo "obs smoke OK: forensic dump names its alert, bytes identical across backends"

# Rack-scale scheduling acceptance: the policy bakeoff lands with po2c
# beating random and the oracle on top, skew-driven migration fires and
# helps, and the whole render is byte-identical across same-seed reruns,
# serial vs --jobs 2, and heap vs wheel event backends.
rack-smoke: build
	dune exec bin/reflex_sim.exe -- rack > _build/rack_smoke.out
	@grep -q "RACK OK" _build/rack_smoke.out
	@grep -q "same-seed rerun byte-identical: true" _build/rack_smoke.out
	@grep -q "serial vs --jobs 2 byte-identical: true" _build/rack_smoke.out
	@grep -q "heap vs wheel backends byte-identical: true" _build/rack_smoke.out
	@echo "rack smoke OK: bakeoff checks pass, migration live, output byte-identical"

# Rack tracing acceptance: every traced request's hop deltas tile its
# e2e latency exactly, the congested-link leg's SLO violations blame the
# ingress hop, the rack burn alert fires and captures a forensic dump,
# migrations appear as Follows_from parents in the stitched span trees,
# and the whole render (span trees + rollup md5s included) is
# byte-identical across reruns, parallelism and backends.  Shares the
# rack scenario binary so the tracer rides the same bakeoff worlds.
rack-obs-smoke: build
	dune exec bin/reflex_sim.exe -- rack > _build/rack_obs_smoke.out
	@grep -q "RACK OK" _build/rack_obs_smoke.out
	@grep -q "hop deltas tile e2e in every traced leg      PASS" _build/rack_obs_smoke.out
	@grep -q "congested link's dominant hop is ingress     PASS" _build/rack_obs_smoke.out
	@grep -q "rack burn alert fired on the congested leg   PASS" _build/rack_obs_smoke.out
	@grep -q "migrations stitched into the trace logs      PASS" _build/rack_obs_smoke.out
	@grep -q "follows_from migrate" _build/rack_obs_smoke.out
	@grep -q "heap vs wheel backends byte-identical: true" _build/rack_obs_smoke.out
	@echo "rack-obs smoke OK: tiling exact, ingress blamed, alert fired, migrations stitched"

check: build
	$(MAKE) lint
	dune runtest
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json
	$(MAKE) chaos-smoke
	$(MAKE) monitor-smoke
	$(MAKE) obs-smoke
	$(MAKE) rack-smoke
	$(MAKE) rack-obs-smoke

# Canonical telemetry scenario: per-request latency breakdowns, SLO
# audit, scheduler decision log, Chrome trace JSON.
trace: build
	dune exec bin/reflex_sim.exe -- trace

# Full chaos scenario with determinism debrief and SLO audit.
chaos: build
	dune exec bin/reflex_sim.exe -- chaos

# Full monitoring scenario: alert debrief, budgets, remediation log.
monitor: build
	dune exec bin/reflex_sim.exe -- monitor

# Observability scenario: flight-recorder dumps, retry span trees,
# dump-determinism debrief, cost profile.
obs: build
	dune exec bin/reflex_sim.exe -- obs

# Rack-scale scenario: policy bakeoff, migration leg, determinism debrief.
rack: build
	dune exec bin/reflex_sim.exe -- rack

# Full figure reproduction + microbenchmarks (quick mode).
bench: build
	dune exec bench/main.exe -- --json BENCH_$$(date +%F).json

clean:
	dune clean
