# Developer entry points.  `make check` is the CI gate: full build, the
# whole alcotest suite, and the bench smoke (parallel-runner sanity +
# telemetry on/off overhead) with its numbers recorded in
# BENCH_SMOKE.json for trend tracking.

.PHONY: all build test bench-smoke check trace bench clean

all: build

build:
	dune build

test: build
	dune runtest

bench-smoke: build
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json

check: build
	dune runtest
	dune exec test/bench_smoke.exe -- --json BENCH_SMOKE.json

# Canonical telemetry scenario: per-request latency breakdowns, SLO
# audit, scheduler decision log, Chrome trace JSON.
trace: build
	dune exec bin/reflex_sim.exe -- trace

# Full figure reproduction + microbenchmarks (quick mode).
bench: build
	dune exec bench/main.exe -- --json BENCH_$$(date +%F).json

clean:
	dune clean
