(* Regression tests over the experiment harness itself: run the cheap
   experiments end-to-end and assert the paper's qualitative claims hold
   (so a refactor that silently breaks a reproduction fails the suite). *)

open Reflex_engine
open Reflex_client
open Reflex_experiments

let find_row rows pred = match List.find_opt pred rows with
  | Some r -> r
  | None -> Alcotest.fail "expected row missing"

(* ------------------------------------------------------------------ *)
(* Parallel runner                                                    *)
(* ------------------------------------------------------------------ *)

let test_runner_ordered_merge () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map merges in input order"
    (List.map (fun x -> x * x) xs)
    (Runner.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "concat_map merges in input order"
    (List.concat_map (fun x -> [ x; -x ]) xs)
    (Runner.concat_map ~jobs:3 (fun x -> [ x; -x ]) xs);
  Alcotest.(check (list int)) "empty input" [] (Runner.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "more jobs than points" [ 2 ] (Runner.map ~jobs:8 succ [ 1 ])

let test_runner_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised at the call site" (Failure "boom")
    (fun () ->
      ignore (Runner.map ~jobs:4 (fun x -> if x = 37 then failwith "boom" else x)
                (List.init 64 Fun.id)))

(* One cheap sweep point: a fresh deterministically-seeded world, a short
   open-loop run, a handful of derived metrics. *)
let mini_point rate =
  let w = Common.make_reflex () in
  let sim = w.Common.sim in
  let client = Common.client_of w ~tenant:1 () in
  let until = Time.add (Sim.now sim) (Time.ms 80) in
  let gen =
    Load_gen.open_loop sim ~client ~rate ~read_ratio:0.8 ~bytes:4096 ~until ~seed:7L ()
  in
  Common.measure_generators sim [ gen ] ~warmup:(Time.ms 10) ~window:(Time.ms 50);
  (rate, Load_gen.achieved_iops gen, Load_gen.p95_read_us gen, Load_gen.mean_read_us gen)

let mini_table rows =
  let t =
    Reflex_stats.Table.create ~title:"runner determinism probe"
      ~columns:[ "rate"; "achieved"; "p95"; "mean" ]
  in
  List.iter
    (fun (r, a, p, m) ->
      Reflex_stats.Table.add_row t
        [
          Reflex_stats.Table.cell_f r;
          Reflex_stats.Table.cell_f ~decimals:6 a;
          Reflex_stats.Table.cell_f ~decimals:6 p;
          Reflex_stats.Table.cell_f ~decimals:6 m;
        ])
    rows;
  Reflex_stats.Table.render t

(* The tentpole guarantee: fanning sweep points across domains must
   produce tables byte-identical to a serial run.  Each point owns its
   world, so only the merge order could differ — and the runner merges by
   input index. *)
let test_runner_parallel_matches_serial () =
  let rates = [ 50e3; 100e3; 150e3; 200e3; 250e3; 300e3 ] in
  let serial = Runner.map ~jobs:1 mini_point rates in
  let parallel = Runner.map ~jobs:4 mini_point rates in
  List.iter2
    (fun (r1, a1, p1, m1) (r2, a2, p2, m2) ->
      Alcotest.(check (float 0.0)) "rate" r1 r2;
      Alcotest.(check (float 0.0)) "achieved IOPS bit-identical" a1 a2;
      Alcotest.(check (float 0.0)) "p95 bit-identical" p1 p2;
      Alcotest.(check (float 0.0)) "mean bit-identical" m1 m2)
    serial parallel;
  Alcotest.(check string) "rendered table cells identical" (mini_table serial)
    (mini_table parallel)

(* The wheel backend must reproduce a full sweep byte-for-byte: scenario
   worlds reach [Sim.create] without an explicit backend, so flipping the
   process default is exactly what `--backend wheel` does, and the
   rendered tables must not change by a single byte. *)
let test_backend_sweep_identical () =
  let rates = [ 50e3; 150e3; 250e3 ] in
  let saved = Sim.get_default_backend () in
  Fun.protect
    ~finally:(fun () -> Sim.set_default_backend saved)
    (fun () ->
      Sim.set_default_backend Sim.Heap;
      let heap = mini_table (Runner.map ~jobs:1 mini_point rates) in
      Sim.set_default_backend Sim.Wheel;
      let wheel = mini_table (Runner.map ~jobs:1 mini_point rates) in
      Alcotest.(check string) "wheel sweep table == heap sweep table" heap wheel)

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let test_table2_ordering () =
  let rows = Table2.run () in
  Alcotest.(check int) "six access paths" 6 (List.length rows);
  let read_of name = (find_row rows (fun r -> r.Table2.path = name)).Table2.read_avg_us in
  let local = read_of "Local (SPDK)" in
  let reflex_ix = read_of "ReFlex (IX)" in
  let reflex_linux = read_of "ReFlex (Linux)" in
  let libaio_ix = read_of "Libaio (IX)" in
  let iscsi = read_of "iSCSI" in
  (* Paper Table 2's ordering: local < ReFlex(IX) < ReFlex(Linux) ~
     Libaio(IX) < ... < iSCSI. *)
  Alcotest.(check bool) "local fastest" true (local < reflex_ix);
  Alcotest.(check bool) "reflex beats libaio" true (reflex_ix < libaio_ix);
  Alcotest.(check bool) "linux client slower than ix" true (reflex_ix < reflex_linux);
  Alcotest.(check bool) "iscsi slowest" true
    (iscsi > reflex_linux && iscsi > libaio_ix);
  (* The +21us headline: ReFlex(IX) adds 15-30us over local. *)
  let overhead = reflex_ix -. local in
  Alcotest.(check bool) (Printf.sprintf "ReFlex overhead %.0fus in [12,32]" overhead) true
    (overhead > 12.0 && overhead < 32.0)

(* ------------------------------------------------------------------ *)
(* Figure 5                                                           *)
(* ------------------------------------------------------------------ *)

let test_fig5_claims () =
  let rows = Fig5.run () in
  let get ~scenario ~sched ~tenant_prefix =
    find_row rows (fun r ->
        r.Fig5.scenario = scenario && r.Fig5.sched = sched
        && String.length r.Fig5.tenant > 0
        && String.sub r.Fig5.tenant 0 1 = tenant_prefix)
  in
  (* Scenario 1, scheduler on: both LC tenants meet the 500us SLO at
     their reserved IOPS. *)
  let a_on = get ~scenario:1 ~sched:true ~tenant_prefix:"A" in
  let b_on = get ~scenario:1 ~sched:true ~tenant_prefix:"B" in
  Alcotest.(check bool) "A meets SLO" true (a_on.Fig5.p95_read_us <= 500.0);
  Alcotest.(check bool) "B meets SLO" true (b_on.Fig5.p95_read_us <= 500.0);
  Alcotest.(check bool) "A at reservation" true (a_on.Fig5.achieved_kiops > 115.0);
  Alcotest.(check bool) "B at reservation" true (b_on.Fig5.achieved_kiops > 66.0);
  (* Scheduler off: the LC SLO is violated. *)
  let a_off = get ~scenario:1 ~sched:false ~tenant_prefix:"A" in
  Alcotest.(check bool) "A violated without scheduler" true (a_off.Fig5.p95_read_us > 500.0);
  (* BE fairness: C (95% reads) gets several times D's IOPS (write cost). *)
  let c_on = get ~scenario:1 ~sched:true ~tenant_prefix:"C" in
  let d_on = get ~scenario:1 ~sched:true ~tenant_prefix:"D" in
  Alcotest.(check bool) "C >> D" true (c_on.Fig5.achieved_kiops > 3.0 *. d_on.Fig5.achieved_kiops);
  (* Scenario 2: B's unused reservation flows to the BE tenants. *)
  let c_s2 = get ~scenario:2 ~sched:true ~tenant_prefix:"C" in
  Alcotest.(check bool) "work conservation across scenarios" true
    (c_s2.Fig5.achieved_kiops > 1.2 *. c_on.Fig5.achieved_kiops)

(* ------------------------------------------------------------------ *)
(* Figure 6a                                                          *)
(* ------------------------------------------------------------------ *)

let test_fig6a_linear_scaling () =
  let rows = Fig6.run_cores () in
  let r1 = find_row rows (fun r -> r.Fig6.cores = 1) in
  let r12 = find_row rows (fun r -> r.Fig6.cores = 12) in
  Alcotest.(check bool) "LC scales ~12x" true
    (r12.Fig6.lc_kiops > 10.0 *. r1.Fig6.lc_kiops);
  Alcotest.(check bool) "BE shrinks" true (r12.Fig6.be_kiops < r1.Fig6.be_kiops);
  (* Token usage pinned at the 2ms ceiling at every scale. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "tokens pinned (%d cores: %.0fK)" r.Fig6.cores r.Fig6.ktokens_per_sec)
        true
        (abs_float (r.Fig6.ktokens_per_sec -. r1.Fig6.ktokens_per_sec) < 20.0))
    rows;
  List.iter
    (fun r ->
      Alcotest.(check bool) "all LC under 2ms SLO" true (r.Fig6.lc_p95_worst_us < 2000.0))
    rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let test_ablation_cost_model () =
  let rows = Ablations.run_cost_model () in
  let calibrated = find_row rows (fun r -> r.Ablations.lc_slo_met) in
  let naive = find_row rows (fun r -> not r.Ablations.lc_slo_met) in
  Alcotest.(check bool) "naive pricing blows the LC tail" true
    (naive.Ablations.lc_p95_us > 1.5 *. calibrated.Ablations.lc_p95_us)

let test_ablation_donation () =
  let rows = Ablations.run_donation () in
  let at f = (find_row rows (fun r -> r.Ablations.fraction = f)).Ablations.be_kiops in
  Alcotest.(check bool) "donations feed best-effort tenants" true (at 0.9 > 1.3 *. at 0.0)

let test_ablation_batching () =
  let rows = Ablations.run_batching () in
  let at c = find_row rows (fun r -> r.Ablations.batch_cap = c) in
  Alcotest.(check bool) "no batching collapses throughput" true
    ((at 1).Ablations.achieved_kiops < 0.85 *. (at 64).Ablations.achieved_kiops);
  Alcotest.(check bool) "no batching inflates the tail" true
    ((at 1).Ablations.p95_us > 5.0 *. (at 64).Ablations.p95_us)

let suite =
  [
    ( "runner",
      [
        Alcotest.test_case "ordered merge" `Quick test_runner_ordered_merge;
        Alcotest.test_case "exception propagation" `Quick test_runner_exception_propagates;
        Alcotest.test_case "parallel = serial (bit-identical)" `Quick
          test_runner_parallel_matches_serial;
        Alcotest.test_case "wheel backend = heap backend (bit-identical)" `Quick
          test_backend_sweep_identical;
      ] );
    ("table2", [ Alcotest.test_case "access-path ordering & +21us" `Slow test_table2_ordering ]);
    ("fig5", [ Alcotest.test_case "isolation claims" `Slow test_fig5_claims ]);
    ("fig6a", [ Alcotest.test_case "linear core scaling" `Slow test_fig6a_linear_scaling ]);
    ( "ablations",
      [
        Alcotest.test_case "cost model matters" `Slow test_ablation_cost_model;
        Alcotest.test_case "donation fraction matters" `Slow test_ablation_donation;
        Alcotest.test_case "batching matters" `Slow test_ablation_batching;
      ] );
  ]
