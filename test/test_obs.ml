(* Tests for the observability stack (lib/obs): the always-on flight
   recorder ring, snapshot windowing, the intern table, the cost
   profiler's accounting, and the end-to-end alert-triggered forensic
   dump determinism exercised through Obs_exp. *)

open Reflex_engine
open Reflex_obs

(* ------------------------------------------------------------------ *)
(* Flight: ring arithmetic                                            *)
(* ------------------------------------------------------------------ *)

(* Drain the retained window into a list of (time, kind, a, b, v). *)
let records fl =
  let acc = ref [] in
  Flight.iter fl (fun ~time ~kind ~a ~b ~v -> acc := (time, kind, a, b, v) :: !acc);
  List.rev !acc

let put fl i =
  Flight.record fl ~now:(Time.us i) ~kind:Flight.Kind.Grant ~a:i ~b:(2 * i) ~v:(float_of_int i)

let test_ring_wraparound () =
  let cap = 8 in
  let fl = Flight.create ~capacity:cap () in
  Alcotest.(check int) "capacity" cap (Flight.capacity fl);
  (* Fill to EXACTLY capacity: everything retained, nothing dropped. *)
  for i = 1 to cap do
    put fl i
  done;
  Alcotest.(check int) "full: total" cap (Flight.total fl);
  Alcotest.(check int) "full: retained" cap (Flight.retained fl);
  Alcotest.(check int) "full: dropped" 0 (Flight.dropped fl);
  Alcotest.(check (list int)) "full: oldest-first"
    (List.init cap (fun i -> i + 1))
    (List.map (fun (_, _, a, _, _) -> a) (records fl));
  (* One more record wraps: the oldest is overwritten, count is stable. *)
  put fl (cap + 1);
  Alcotest.(check int) "wrap: total" (cap + 1) (Flight.total fl);
  Alcotest.(check int) "wrap: retained" cap (Flight.retained fl);
  Alcotest.(check int) "wrap: dropped" 1 (Flight.dropped fl);
  Alcotest.(check (list int)) "wrap: window slid by one"
    (List.init cap (fun i -> i + 2))
    (List.map (fun (_, _, a, _, _) -> a) (records fl));
  (* Many laps later the invariants still hold. *)
  for i = cap + 2 to 10 * cap do
    put fl i
  done;
  Alcotest.(check int) "laps: retained" cap (Flight.retained fl);
  Alcotest.(check int) "laps: dropped" ((10 * cap) - cap) (Flight.dropped fl);
  match records fl with
  | (t, k, a, b, v) :: _ ->
    Alcotest.(check int) "laps: head a" ((10 * cap) - cap + 1) a;
    Alcotest.(check int) "laps: head b" (2 * a) b;
    Alcotest.(check (float 0.0)) "laps: head v" (float_of_int a) v;
    Alcotest.(check bool) "laps: head time" true (t = Time.us a);
    Alcotest.(check bool) "laps: head kind" true (k = Flight.Kind.Grant)
  | [] -> Alcotest.fail "empty ring after laps"

let test_snapshot_window () =
  let fl = Flight.create ~capacity:64 () in
  for i = 1 to 10 do
    put fl i (* records at 1..10 us *)
  done;
  (* window [now - window, now] is boundary-INCLUSIVE at the old edge:
     now=10us window=5us keeps 5..10us, six records. *)
  let snap = Flight.snapshot fl ~now:(Time.us 10) ~window:(Time.us 5) in
  Alcotest.(check int) "boundary inclusive" 6 (Flight.snap_length snap);
  Alcotest.(check bool) "oldest kept is the boundary" true (snap.Flight.s_times.(0) = Time.us 5);
  Alcotest.(check int) "snap_total" 10 snap.Flight.snap_total;
  (* One nanosecond less of window excludes the boundary record. *)
  let snap' =
    Flight.snapshot fl ~now:(Time.us 10) ~window:(Time.ns ((5 * 1000) - 1))
  in
  Alcotest.(check int) "just-inside window" 5 (Flight.snap_length snap');
  (* A window wider than history keeps everything retained. *)
  let all = Flight.snapshot fl ~now:(Time.us 10) ~window:(Time.sec 1) in
  Alcotest.(check int) "wide window keeps all" 10 (Flight.snap_length all)

let test_disabled_and_inert () =
  List.iter
    (fun (name, fl) ->
      Alcotest.(check bool) (name ^ ": disabled") false (Flight.enabled fl);
      put fl 1;
      Alcotest.(check int) (name ^ ": no records") 0 (Flight.total fl);
      Alcotest.(check int) (name ^ ": intern -1") (-1) (Flight.intern fl "x");
      let snap = Flight.snapshot fl ~now:(Time.us 10) ~window:(Time.sec 1) in
      Alcotest.(check int) (name ^ ": empty snapshot") 0 (Flight.snap_length snap))
    [ ("shared", Flight.disabled); ("inert", Flight.create ~enabled:false ()) ]

let test_intern_labels () =
  let fl = Flight.create () in
  let a = Flight.intern fl "alert/p95" in
  let b = Flight.intern fl "fault/slow_flash" in
  Alcotest.(check int) "first-use order" (a + 1) b;
  Alcotest.(check int) "stable on re-intern" a (Flight.intern fl "alert/p95");
  Alcotest.(check string) "label round-trip" "fault/slow_flash" (Flight.label fl b);
  Alcotest.(check string) "unknown id" "?" (Flight.label fl 999);
  (* The intern table survives into snapshots. *)
  let snap = Flight.snapshot fl ~now:Time.zero ~window:Time.zero in
  Alcotest.(check string) "snapshot labels" "alert/p95" snap.Flight.s_labels.(a)

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Flight.Kind.name k ^ " roundtrips")
        true
        (Flight.Kind.of_int (Flight.Kind.to_int k) = k))
    [
      Flight.Kind.Refill; Flight.Kind.Grant; Flight.Kind.Throttle; Flight.Kind.Deficit;
      Flight.Kind.Donate; Flight.Kind.Bucket_take; Flight.Kind.Bucket_reset;
      Flight.Kind.Idle_drain; Flight.Kind.Queue_depth; Flight.Kind.Demote;
      Flight.Kind.Fault_on; Flight.Kind.Fault_off; Flight.Kind.Alert_fire;
      Flight.Kind.Alert_resolve; Flight.Kind.Remediate; Flight.Kind.Mark;
      Flight.Kind.Migrate; Flight.Kind.Balance;
    ]

(* ------------------------------------------------------------------ *)
(* Profiler accounting                                                *)
(* ------------------------------------------------------------------ *)

let test_profiler_accounting () =
  let p = Profiler.create () in
  Alcotest.(check bool) "enabled" true (Profiler.enabled p);
  Profiler.enter p Profiler.Subsystem.Qos;
  Profiler.leave p Profiler.Subsystem.Qos;
  Alcotest.(check int) "one scope" 1 (Profiler.calls p Profiler.Subsystem.Qos);
  Alcotest.(check bool) "wall accumulated" true (Profiler.wall_s p Profiler.Subsystem.Qos >= 0.0);
  Alcotest.(check int) "other subsystems untouched" 0 (Profiler.calls p Profiler.Subsystem.Net);
  (* shares: one row per subsystem, shares sum to ~1 when anything ran. *)
  let rows = Profiler.shares p in
  Alcotest.(check int) "one row per subsystem" Profiler.Subsystem.count (List.length rows);
  let total = List.fold_left (fun acc (_, _, share, _) -> acc +. share) 0.0 rows in
  Alcotest.(check bool) "shares normalised" true (total <= 1.0 +. 1e-9);
  (* the disabled instance is a no-op sink. *)
  Profiler.enter Profiler.disabled Profiler.Subsystem.Qos;
  Profiler.leave Profiler.disabled Profiler.Subsystem.Qos;
  Alcotest.(check int) "disabled records nothing" 0
    (Profiler.calls Profiler.disabled Profiler.Subsystem.Qos)

(* ------------------------------------------------------------------ *)
(* End-to-end: alert-triggered dumps through Obs_exp                  *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_obs_scenario () =
  let open Reflex_experiments in
  let r = Obs_exp.run () in
  Alcotest.(check bool) "an alert-triggered dump fired" true (Obs_exp.dump_captured r);
  Alcotest.(check bool) "dump names its firing alert" true (Obs_exp.dump_names_alert r);
  Alcotest.(check bool) "dump names an active fault window" true (Obs_exp.dump_names_fault r);
  Alcotest.(check bool) "causal retry links recorded" true (Obs_exp.links_recorded r);
  (match Obs_exp.first_chrome r with
  | None -> Alcotest.fail "no Chrome trace for the first dump"
  | Some j ->
    Alcotest.(check bool) "chrome trace has events" true (contains j "\"traceEvents\""));
  (* The armed recorder observes but never perturbs: same world with the
     recorder absent produces the identical result digest. *)
  let bare = Obs_exp.run ~flight:`None () in
  Alcotest.(check string) "armed recorder does not perturb" bare.Obs_exp.digest
    r.Obs_exp.digest

let test_obs_dump_determinism () =
  (* Obs_exp.debrief re-runs the scenario across a same-seed rerun,
     serial vs --jobs 2, and heap vs wheel backends, and checks the dump
     bytes and result digests agree; it renders OBS FAILED otherwise. *)
  let s = Reflex_experiments.Obs_exp.debrief () in
  Alcotest.(check bool) "debrief verdict" true (contains s "OBS OK");
  Alcotest.(check bool) "no failure line" false (contains s "OBS FAILED")

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "ring wraparound at exact capacity" `Quick test_ring_wraparound;
        Alcotest.test_case "snapshot window boundary" `Quick test_snapshot_window;
        Alcotest.test_case "disabled and inert recorders" `Quick test_disabled_and_inert;
        Alcotest.test_case "intern table" `Quick test_intern_labels;
        Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
      ] );
    ( "profiler",
      [ Alcotest.test_case "scope accounting" `Quick test_profiler_accounting ] );
    ( "dump",
      [
        Alcotest.test_case "alert-triggered forensic dump" `Quick test_obs_scenario;
        Alcotest.test_case "dump determinism (rerun, jobs, backends)" `Slow
          test_obs_dump_determinism;
      ] );
  ]
