(* Smoke test for the benchmark harness plumbing: drives a tiny sweep
   through the parallel experiment runner (as `bench/main.exe --jobs N`
   does for the real figures) and checks the fan-out/merge produces the
   same table as a serial run.  Also times the same sweep with telemetry
   enabled vs disabled: the simulated results must be bit-identical
   (telemetry observes, never perturbs) and the wall-clock overhead is
   reported so instrumentation-cost regressions surface in CI.

   Wired into `dune runtest` via the `bench-smoke` alias; pass
   `--json PATH` (as `make check` does) to also record the numbers in a
   machine-readable file tracked alongside BENCH_*.json. *)

open Reflex_engine
open Reflex_client
open Reflex_experiments
open Reflex_telemetry

(* Root seed for every world this smoke builds, recorded in the JSON
   metadata so a archived result names the exact simulation it ran. *)
let world_seed = 0x5EED_0BEAC4L

let point ?(telemetry = false) ?(faults = false) ?(monitor = false) ?(flight = false) rate =
  let telemetry = if telemetry then Telemetry.create () else Telemetry.disabled in
  (* The flight leg arms the always-on recorder BEFORE the world is built
     (components cache the handle at create time): scheduler rounds and
     dataplane cycles then write ring records on every hop, and the
     simulated results must still be bit-identical. *)
  if flight then Telemetry.set_flight telemetry (Reflex_obs.Flight.create ());
  let w = Common.make_reflex ~telemetry ~seed:world_seed () in
  let sim = w.Common.sim in
  (* The faults leg arms an injector with an EMPTY plan: the contract is
     that merely having the subsystem present costs nothing — results
     must be bit-identical and the wall clock within noise. *)
  if faults then
    ignore
      (Reflex_faults.Injector.arm
         (Reflex_faults.Injector.target ~sim ~fabric:w.Common.fabric ~server:w.Common.server ())
         ~plan:[]);
  (* The monitor leg arms the full alerting pipeline (TSDB daemon tick,
     budgets, burn/knee/anomaly rules) as a pure observer: no bindings,
     so it may watch but never mutate, and results must be
     bit-identical to the unmonitored run. *)
  if monitor then begin
    let m = Reflex_monitor.Monitor.create ~server:w.Common.server ~telemetry () in
    Reflex_monitor.Monitor.start m sim ()
  end;
  let client = Common.client_of w ~tenant:1 () in
  let until = Time.add (Sim.now sim) (Time.ms 60) in
  let gen =
    Load_gen.open_loop sim ~client ~rate ~read_ratio:1.0 ~bytes:4096 ~until ~seed:3L ()
  in
  Common.measure_generators sim [ gen ] ~warmup:(Time.ms 10) ~window:(Time.ms 40);
  (rate, Load_gen.achieved_iops gen /. 1e3, Load_gen.p95_read_us gen)

let table rows =
  let t =
    Reflex_stats.Table.create ~title:"bench smoke: tiny open-loop sweep"
      ~columns:[ "offered KIOPS"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun (rate, kiops, p95) ->
      Reflex_stats.Table.add_row t
        [
          Reflex_stats.Table.cell_f (rate /. 1e3);
          Reflex_stats.Table.cell_f ~decimals:6 kiops;
          Reflex_stats.Table.cell_f ~decimals:6 p95;
        ])
    rows;
  Reflex_stats.Table.render t

(* Wall time of [f] repeated [reps] times, keeping the last result. *)
let timed reps f =
  let t0 = Unix.gettimeofday () in
  let r = ref (f ()) in
  for _ = 2 to reps do
    r := f ()
  done;
  (Unix.gettimeofday () -. t0, !r)

(* The static-analysis gate rides along with the smoke: reflex-lint is
   re-run in-process over the live tree so BENCH_SMOKE.json records the
   rule/waiver/finding counts next to the perf numbers, and CI fails if
   any finding slipped past `make lint`.  The repo root is found by
   walking up to lint.manifest, which works both from the repo root
   (`make check`) and from _build/default/test (the runtest alias, whose
   rule depends on the source tree). *)
let rec find_lint_root dir =
  if Sys.file_exists (Filename.concat dir "lint.manifest") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "lint.manifest not found above cwd"
    else find_lint_root parent

(* Runs the full pass twice — serial (timed) and with --jobs 2 — and
   byte-compares the rendered reports: the linter's own determinism
   contract (reports are byte-identical for any --jobs) is part of the
   smoke gate. *)
let run_lint () =
  let root = find_lint_root (Sys.getcwd ()) in
  let manifest_path = Filename.concat root "lint.manifest" in
  let t0 = Unix.gettimeofday () in
  let r = Lint_driver.run ~root ~manifest_path () in
  let wall = Unix.gettimeofday () -. t0 in
  let r2 = Lint_driver.run ~jobs:2 ~root ~manifest_path () in
  let jobs_eq =
    Lint_driver.to_text r = Lint_driver.to_text r2
    && Lint_driver.to_json r = Lint_driver.to_json r2
  in
  (r, wall, jobs_eq)

(* ---------------- Event-core speed gate ---------------- *)

(* The same event-churn workload as `bench/main.exe --only speed`, sized
   down: self-rescheduling chains with prng strides and a cancelled
   decoy every fourth hop.  Run on both queue backends; they must retire
   the identical stream, and events/sec is gated against the checked-in
   BENCH_BASELINE.json floor. *)
let speed_run backend =
  let chains = 64 and hops = 1000 in
  let sim = Sim.create ~backend () in
  for c = 0 to chains - 1 do
    let prng = Prng.create (Int64.of_int ((c * 7919) + 17)) in
    let remaining = ref hops in
    let decoy = ref None in
    let rec hop () =
      (match !decoy with
      | Some id ->
        Sim.cancel sim id;
        decoy := None
      | None -> ());
      if !remaining > 0 then begin
        decr remaining;
        let stride = 1 + Prng.int prng 65536 in
        ignore (Sim.after sim (Time.ns stride) hop);
        if !remaining land 3 = 0 then
          decoy := Some (Sim.after sim (Time.us 500) (fun () -> decoy := None))
      end
    in
    ignore (Sim.at sim (Time.ns (c + 1)) hop)
  done;
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let n = Sim.run sim in
  let wall = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let eps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  let mwpe = if n > 0 then mw /. float_of_int n else 0.0 in
  (n, Sim.now sim, eps, mwpe)

(* ---------------- Flight-recorder cost and dump determinism ---------------- *)

module Flight = Reflex_obs.Flight
module Flight_dump = Reflex_obs.Flight_dump

(* The same event-churn chains as [speed_run], with one flight record
   written per hop.  Run once against an armed recorder and once against a
   real-but-inert one ([enabled:false]): both take the identical code path
   up to the recorder's single immutable bool, so the events/sec delta is
   the marginal cost of actually writing records. *)
let obs_speed_run recorder =
  let chains = 64 and hops = 1000 in
  let sim = Sim.create ~backend:Sim.Wheel () in
  for c = 0 to chains - 1 do
    let prng = Prng.create (Int64.of_int ((c * 7919) + 17)) in
    let remaining = ref hops in
    let rec hop () =
      if !remaining > 0 then begin
        decr remaining;
        Flight.record recorder ~now:(Sim.now sim) ~kind:Flight.Kind.Queue_depth ~a:c
          ~b:!remaining ~v:0.0;
        let stride = 1 + Prng.int prng 65536 in
        ignore (Sim.after sim (Time.ns stride) hop)
      end
    in
    ignore (Sim.at sim (Time.ns (c + 1)) hop)
  done;
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let n = Sim.run sim in
  let wall = Unix.gettimeofday () -. t0 in
  (n, Sim.now sim, if wall > 0.0 then float_of_int n /. wall else 0.0)

(* Best-of-[reps] events/sec (max damps scheduler noise on shared CI). *)
let obs_best reps recorder =
  let n = ref 0 and now = ref Time.zero and eps = ref 0.0 in
  for _ = 1 to reps do
    let n', now', eps' = obs_speed_run recorder in
    n := n';
    now := now';
    if eps' > !eps then eps := eps'
  done;
  (!n, !now, !eps)

(* One full alert-capable world with the recorder armed, run to completion;
   the digest of the rendered forensic debrief must be identical across
   same-seed reruns and across the heap/wheel event backends. *)
let flight_debrief_digest () =
  let telemetry = Telemetry.create () in
  let fl = Flight.create () in
  Telemetry.set_flight telemetry fl;
  let w = Common.make_reflex ~telemetry ~seed:world_seed () in
  let sim = w.Common.sim in
  let m = Reflex_monitor.Monitor.create ~server:w.Common.server ~telemetry () in
  Reflex_monitor.Monitor.start m sim ();
  let client = Common.client_of w ~tenant:1 () in
  let until = Time.add (Sim.now sim) (Time.ms 60) in
  let gen =
    Load_gen.open_loop sim ~client ~rate:120e3 ~read_ratio:1.0 ~bytes:4096 ~until ~seed:3L ()
  in
  Common.measure_generators sim [ gen ] ~warmup:(Time.ms 10) ~window:(Time.ms 40);
  let snap = Flight.snapshot fl ~now:(Sim.now sim) ~window:(Time.ms 5) in
  Digest.to_hex (Digest.string (Flight_dump.debrief snap))

(* ---------------- Rack balancer gate ---------------- *)

(* The same small rack world as `bench/main.exe --only rack` (po2c leg):
   8 servers, 64 LC tenants with 3-way replica sets, probe ticks every
   250us, one CBR read stream per tenant.  Returns balanced requests and
   wall requests/sec; the skew-driven migration micro rides along so the
   smoke asserts online migration stays live.  Gated against the "rack"
   floor in BENCH_BASELINE.json (an "event" here is one request through
   the balancer's pick + ingress-charge + dispatch path). *)
let rack_run () =
  let open Reflex_rack in
  let n_servers = 8 and n_tenants = 64 in
  let sim = Sim.create ~seed:7L () in
  let rack = Rack.create sim ~n_servers ~policy:Policy.Po2c ~seed:0xBE11L () in
  let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
  for id = 1 to n_tenants do
    ignore (Rack.add_tenant rack ~id ~slo ~replicas:3)
  done;
  let t0 = Sim.now sim in
  let t_end = Time.add t0 (Time.ms 10) in
  Sim.every sim ~every:(Time.us 250) ~until:t_end (fun _ -> Rack.sample_probes rack);
  for id = 1 to n_tenants do
    let prng = Prng.create (Int64.of_int ((id * 7919) + 3)) in
    let phase = Time.of_float_us (Prng.float prng *. 500.0) in
    ignore
      (Sim.at sim (Time.add t0 phase) (fun () ->
           Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
               Rack.dispatch_read rack ~tenant:id
                 ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                 ~len:1024 ())))
  done;
  let w0 = Unix.gettimeofday () in
  ignore (Sim.run sim);
  let wall = Unix.gettimeofday () -. w0 in
  let n = Rack.lc_dispatched rack in
  let eps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  (n, eps)

let rack_migration_run () =
  let open Reflex_rack in
  let sim = Sim.create ~seed:9L () in
  let rack = Rack.create sim ~n_servers:8 ~policy:Policy.Po2c ~seed:0x3160L () in
  let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
  for id = 1 to 24 do
    ignore (Rack.add_tenant_on rack ~id ~slo ~server:0)
  done;
  let t0 = Sim.now sim in
  let t_end = Time.add t0 (Time.ms 10) in
  let sk = Skew.create ~cooldown:(Time.us 500) () in
  Sim.every sim ~every:(Time.us 250) ~until:t_end (fun now ->
      Rack.sample_probes rack;
      match Skew.observe sk ~now ~depths:(Rack.sampled_depths rack) with
      | None -> ()
      | Some hot -> (
        match Rack.hottest_tenant_on rack ~server:hot with
        | None -> ()
        | Some victim -> ignore (Rack.rebalance rack ~tenant:victim)));
  for id = 1 to 24 do
    let prng = Prng.create (Int64.of_int ((id * 104729) + 11)) in
    let phase = Time.of_float_us (Prng.float prng *. 500.0) in
    ignore
      (Sim.at sim (Time.add t0 phase) (fun () ->
           Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
               Rack.dispatch_read rack ~tenant:id
                 ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                 ~len:1024 ())))
  done;
  ignore (Sim.run sim);
  Rack.migrations rack

(* ---------------- Rack tracing gate ---------------- *)

(* The rack_run world with the distributed tracer optionally armed
   end-to-end (per-request trace slots, five hop stamps into per-server
   flight rings, per-hop attribution histograms).  The armed run must
   clear the "rack_obs" BENCH_BASELINE.json floor AND stay within the
   always-on tracing budget vs the inert run (<=5%, gated at 10% for
   shared-runner noise), and every traced request must tile exactly. *)
let rack_traced_run ~armed () =
  let open Reflex_rack in
  let n_servers = 8 and n_tenants = 64 in
  let sim = Sim.create ~seed:7L () in
  let rack = Rack.create sim ~n_servers ~policy:Policy.Po2c ~seed:0xBE11L () in
  let obs = if armed then Some (Reflex_rack_obs.Rack_obs.create rack) else None in
  let slo = Common.lc_slo ~latency_us:300 ~iops:2000 ~read_pct:100 in
  for id = 1 to n_tenants do
    ignore (Rack.add_tenant rack ~id ~slo ~replicas:3)
  done;
  let t0 = Sim.now sim in
  let t_end = Time.add t0 (Time.ms 10) in
  Sim.every sim ~every:(Time.us 250) ~until:t_end (fun _ -> Rack.sample_probes rack);
  for id = 1 to n_tenants do
    let prng = Prng.create (Int64.of_int ((id * 7919) + 3)) in
    let phase = Time.of_float_us (Prng.float prng *. 500.0) in
    ignore
      (Sim.at sim (Time.add t0 phase) (fun () ->
           Sim.every sim ~every:(Time.of_float_us 500.0) ~until:t_end (fun _ ->
               Rack.dispatch_read rack ~tenant:id
                 ~lba:(Int64.of_int (Prng.int prng 65536 * 8))
                 ~len:1024 ())))
  done;
  let w0 = Unix.gettimeofday () in
  ignore (Sim.run sim);
  let wall = Unix.gettimeofday () -. w0 in
  let n = Rack.lc_dispatched rack in
  let eps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  (n, eps, obs)

(* Paired reps: each rep runs inert then armed back-to-back so that
   machine-load swings hit both sides of the ratio equally, and the
   budget is judged on the best (quietest) pair rather than on bests
   drawn from different load regimes. *)
let rack_traced_pairs reps =
  let pairs = ref [] in
  for _ = 1 to reps do
    let inert_n, inert_eps, _ = rack_traced_run ~armed:false () in
    let armed_n, armed_eps, obs = rack_traced_run ~armed:true () in
    pairs := (inert_n, inert_eps, armed_n, armed_eps, obs) :: !pairs
  done;
  List.rev !pairs

(* ns per hop record: the exact flight-ring write each trace stamp
   performs, measured in bulk on a quiesced recorder. *)
let ns_per_hop_record obs =
  let n = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  Reflex_rack_obs.Rack_obs.bench_hop_records obs n;
  (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9

(* Pull "<name>_events_per_sec": <float> out of BENCH_BASELINE.json with
   a plain substring scan — the file is ours, flat, and checked in, so a
   JSON parser dependency would be overkill. *)
let baseline_events_per_sec root name =
  let path = Filename.concat root "BENCH_BASELINE.json" in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let key = "\"" ^ name ^ "_events_per_sec\":" in
    let n = String.length s and m = String.length key in
    let rec find i =
      if i + m > n then None else if String.sub s i m = key then Some (i + m) else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      let b = Buffer.create 16 in
      let j = ref i in
      while
        !j < n
        && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' | ' ' -> true | _ -> false)
      do
        if s.[!j] <> ' ' then Buffer.add_char b s.[!j];
        incr j
      done;
      float_of_string_opt (Buffer.contents b)
  end

let write_json path ~rows ~parallel_eq ~wall_parallel ~off_s ~on_s ~overhead_pct
    ~iops_delta_pct ~f_off_s ~f_on_s ~f_overhead_pct ~f_identical ~m_off_s ~m_on_s
    ~m_overhead_pct ~m_identical ~s_events ~h_eps ~h_mwpe ~w_eps ~w_mwpe ~s_identical
    ~backend_sweep_eq ~o_inert_eps ~o_armed_eps ~o_churn_pct ~o_ns_per_record ~o_identical
    ~o_on_s ~o_wall_pct ~o_sweep_eq ~o_dump_digest ~o_dump_eq ~rack_n ~rack_eps
    ~rack_migrations ~ro_inert_eps ~ro_armed_eps ~ro_overhead_pct ~ro_ns ~ro_traced
    ~ro_tiling_ok ~(lint : Lint_driver.report) ~lint_wall_s ~lint_jobs_eq =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"seed\": %Ld,\n" world_seed;
  Printf.fprintf oc "  \"git_sha\": \"%s\",\n" (Common.git_sha ());
  Printf.fprintf oc "  \"parallel_eq_serial\": %b,\n" parallel_eq;
  Printf.fprintf oc "  \"wall_s_parallel\": %.3f,\n" wall_parallel;
  Printf.fprintf oc "  \"telemetry\": {\n";
  Printf.fprintf oc "    \"off_wall_s\": %.3f,\n" off_s;
  Printf.fprintf oc "    \"on_wall_s\": %.3f,\n" on_s;
  Printf.fprintf oc "    \"overhead_pct\": %.2f,\n" overhead_pct;
  Printf.fprintf oc "    \"iops_delta_pct\": %.6f\n" iops_delta_pct;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"faults_disabled\": {\n";
  Printf.fprintf oc "    \"off_wall_s\": %.3f,\n" f_off_s;
  Printf.fprintf oc "    \"on_wall_s\": %.3f,\n" f_on_s;
  Printf.fprintf oc "    \"overhead_pct\": %.2f,\n" f_overhead_pct;
  Printf.fprintf oc "    \"results_identical\": %b\n" f_identical;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"monitor\": {\n";
  Printf.fprintf oc "    \"off_wall_s\": %.3f,\n" m_off_s;
  Printf.fprintf oc "    \"on_wall_s\": %.3f,\n" m_on_s;
  Printf.fprintf oc "    \"overhead_pct\": %.2f,\n" m_overhead_pct;
  Printf.fprintf oc "    \"results_identical\": %b\n" m_identical;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"speed\": {\n";
  Printf.fprintf oc "    \"events\": %d,\n" s_events;
  Printf.fprintf oc "    \"heap_events_per_sec\": %.0f,\n" h_eps;
  Printf.fprintf oc "    \"heap_minor_words_per_event\": %.3f,\n" h_mwpe;
  Printf.fprintf oc "    \"wheel_events_per_sec\": %.0f,\n" w_eps;
  Printf.fprintf oc "    \"wheel_minor_words_per_event\": %.3f,\n" w_mwpe;
  Printf.fprintf oc "    \"backends_identical\": %b,\n" s_identical;
  Printf.fprintf oc "    \"sweep_digest_identical\": %b\n" backend_sweep_eq;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"obs\": {\n";
  Printf.fprintf oc "    \"inert_recorder_events_per_sec\": %.0f,\n" o_inert_eps;
  Printf.fprintf oc "    \"armed_recorder_events_per_sec\": %.0f,\n" o_armed_eps;
  Printf.fprintf oc "    \"churn_overhead_pct\": %.2f,\n" o_churn_pct;
  Printf.fprintf oc "    \"ns_per_record\": %.1f,\n" o_ns_per_record;
  Printf.fprintf oc "    \"streams_identical\": %b,\n" o_identical;
  Printf.fprintf oc "    \"sweep_wall_s\": %.3f,\n" o_on_s;
  Printf.fprintf oc "    \"sweep_overhead_pct\": %.2f,\n" o_wall_pct;
  Printf.fprintf oc "    \"results_identical\": %b,\n" o_sweep_eq;
  Printf.fprintf oc "    \"dump_digest\": \"%s\",\n" o_dump_digest;
  Printf.fprintf oc "    \"dump_digest_identical\": %b\n" o_dump_eq;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"rack\": {\n";
  Printf.fprintf oc "    \"balanced_requests\": %d,\n" rack_n;
  Printf.fprintf oc "    \"rack_events_per_sec\": %.0f,\n" rack_eps;
  Printf.fprintf oc "    \"migrations\": %d\n" rack_migrations;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"rack_obs\": {\n";
  Printf.fprintf oc "    \"inert_events_per_sec\": %.0f,\n" ro_inert_eps;
  Printf.fprintf oc "    \"rack_obs_events_per_sec\": %.0f,\n" ro_armed_eps;
  Printf.fprintf oc "    \"overhead_pct\": %.2f,\n" ro_overhead_pct;
  Printf.fprintf oc "    \"ns_per_hop_record\": %.1f,\n" ro_ns;
  Printf.fprintf oc "    \"traced_requests\": %d,\n" ro_traced;
  Printf.fprintf oc "    \"tiling_exact\": %b\n" ro_tiling_ok;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"lint\": {\n";
  Printf.fprintf oc "    \"files_scanned\": %d,\n" lint.Lint_driver.files_scanned;
  Printf.fprintf oc "    \"rule_count\": %d,\n" (List.length lint.Lint_driver.rules);
  Printf.fprintf oc "    \"waivers_used\": %d,\n" lint.Lint_driver.waivers_used;
  Printf.fprintf oc "    \"wall_s\": %.3f,\n" lint_wall_s;
  Printf.fprintf oc "    \"jobs2_identical\": %b,\n" lint_jobs_eq;
  (match lint.Lint_driver.gstats with
  | Some g ->
    Printf.fprintf oc "    \"callgraph\": {\n";
    Printf.fprintf oc "      \"nodes\": %d,\n" g.Lint_interproc.gs_nodes;
    Printf.fprintf oc "      \"edges\": %d,\n" g.Lint_interproc.gs_edges;
    Printf.fprintf oc "      \"hot_seeds\": %d,\n" g.Lint_interproc.gs_hot_seeds;
    Printf.fprintf oc "      \"hot_inferred\": %d,\n" g.Lint_interproc.gs_hot_inferred;
    Printf.fprintf oc "      \"taint_sources\": %d,\n" g.Lint_interproc.gs_taint_sources;
    Printf.fprintf oc "      \"taint_tainted\": %d,\n" g.Lint_interproc.gs_taint_tainted;
    Printf.fprintf oc "      \"identity_sinks\": %d\n" g.Lint_interproc.gs_identity_sinks;
    Printf.fprintf oc "    },\n"
  | None -> ());
  Printf.fprintf oc "    \"finding_count\": %d\n" (List.length lint.Lint_driver.findings);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"points\": [\n";
  List.iteri
    (fun i (rate, kiops, p95) ->
      Printf.fprintf oc
        "    {\"offered_kiops\": %.1f, \"achieved_kiops\": %.6f, \"p95_us\": %.6f}%s\n"
        (rate /. 1e3) kiops p95
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "[wrote %s]\n%!" path

let () =
  let json_path =
    match Array.to_list Sys.argv with
    | _ :: "--json" :: p :: _ -> Some p
    | _ -> None
  in
  let rates = [ 40e3; 80e3; 120e3; 160e3 ] in
  let t0 = Unix.gettimeofday () in
  let rows = Runner.map ~jobs:2 point rates in
  let parallel = table rows in
  let wall_parallel = Unix.gettimeofday () -. t0 in
  let serial = table (Runner.map ~jobs:1 point rates) in
  print_string parallel;
  Printf.printf "[bench smoke: %d points through the parallel runner in %.1fs]\n"
    (List.length rates) wall_parallel;
  let parallel_eq = String.equal parallel serial in
  if parallel_eq then print_endline "bench smoke OK: parallel == serial"
  else begin
    print_endline "bench smoke FAILED: parallel and serial tables differ";
    print_string serial
  end;
  (* Telemetry cost: same serial sweep with the observability layer off
     vs on.  The simulated numbers must match exactly — the span ring,
     counters and daemon sampler observe the simulation but never
     schedule work that perturbs it. *)
  let reps = 3 in
  let off_s, off_rows = timed reps (fun () -> List.map (point ~telemetry:false) rates) in
  let on_s, on_rows = timed reps (fun () -> List.map (point ~telemetry:true) rates) in
  let sim_identical =
    List.for_all2
      (fun (_, k0, p0) (_, k1, p1) -> Float.equal k0 k1 && Float.equal p0 p1)
      off_rows on_rows
  in
  let iops_delta_pct =
    List.fold_left2
      (fun acc (_, k0, _) (_, k1, _) ->
        Float.max acc (if k0 = 0.0 then 0.0 else Float.abs (k1 -. k0) /. k0 *. 100.0))
      0.0 off_rows on_rows
  in
  let overhead_pct = if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0 in
  Printf.printf
    "[telemetry: off %.2fs / on %.2fs over %dx%d points -> %+.1f%% wall overhead, \
     %.4f%% sim IOPS delta]\n"
    off_s on_s reps (List.length rates) overhead_pct iops_delta_pct;
  if sim_identical then print_endline "bench smoke OK: telemetry-on results == telemetry-off"
  else print_endline "bench smoke FAILED: telemetry perturbed the simulated results";
  (* Fault subsystem cost when disarmed: the same sweep with an injector
     holding an empty plan.  Results must be bit-identical (the hot paths
     pay one boolean test per fault class) and the wall overhead ~zero. *)
  let f_off_s, f_off_rows = timed reps (fun () -> List.map (point ~faults:false) rates) in
  let f_on_s, f_on_rows = timed reps (fun () -> List.map (point ~faults:true) rates) in
  let f_identical =
    List.for_all2
      (fun (_, k0, p0) (_, k1, p1) -> Float.equal k0 k1 && Float.equal p0 p1)
      f_off_rows f_on_rows
  in
  let f_overhead_pct = if f_off_s > 0.0 then (f_on_s -. f_off_s) /. f_off_s *. 100.0 else 0.0 in
  Printf.printf
    "[faults: no-injector %.2fs / empty-plan %.2fs over %dx%d points -> %+.1f%% wall overhead]\n"
    f_off_s f_on_s reps (List.length rates) f_overhead_pct;
  if f_identical then print_endline "bench smoke OK: empty-plan injector results == no injector"
  else print_endline "bench smoke FAILED: disarmed fault subsystem perturbed the results";
  (* Monitor cost when armed as a pure observer: telemetry-on sweep with
     and without the full alerting pipeline (TSDB windows, budgets, burn
     rules) ticking on a daemon event.  No remediation bindings, so the
     simulated numbers must be bit-identical. *)
  let m_off_s, m_off_rows =
    timed reps (fun () -> List.map (point ~telemetry:true ~monitor:false) rates)
  in
  let m_on_s, m_on_rows =
    timed reps (fun () -> List.map (point ~telemetry:true ~monitor:true) rates)
  in
  let m_identical =
    List.for_all2
      (fun (_, k0, p0) (_, k1, p1) -> Float.equal k0 k1 && Float.equal p0 p1)
      m_off_rows m_on_rows
  in
  let m_overhead_pct = if m_off_s > 0.0 then (m_on_s -. m_off_s) /. m_off_s *. 100.0 else 0.0 in
  Printf.printf
    "[monitor: unarmed %.2fs / armed %.2fs over %dx%d points -> %+.1f%% wall overhead]\n"
    m_off_s m_on_s reps (List.length rates) m_overhead_pct;
  if m_identical then print_endline "bench smoke OK: armed monitor results == no monitor"
  else print_endline "bench smoke FAILED: the monitor perturbed the simulated results";
  (* Event-core speed gate: both backends retire the identical event
     stream, the full sweep renders byte-identically on the wheel, and
     events/sec stays within 20% of the checked-in baseline floor. *)
  let h_n, h_now, h_eps, h_mwpe = speed_run Sim.Heap in
  let w_n, w_now, w_eps, w_mwpe = speed_run Sim.Wheel in
  let s_identical = h_n = w_n && h_now = w_now in
  Printf.printf
    "[speed: heap %.0f events/s (%.2f mw/ev), wheel %.0f events/s (%.2f mw/ev), %d events]\n"
    h_eps h_mwpe w_eps w_mwpe h_n;
  if s_identical then print_endline "bench smoke OK: heap and wheel retire identical streams"
  else print_endline "bench smoke FAILED: heap and wheel event streams diverged";
  (* `serial` above ran on the process default backend (the wheel, since
     PR 7); re-run the sweep forced onto the reference heap backend and
     require the byte-identical table before restoring the default. *)
  let saved_backend = Sim.get_default_backend () in
  Sim.set_default_backend Sim.Heap;
  let heap_serial = table (Runner.map ~jobs:1 point rates) in
  Sim.set_default_backend saved_backend;
  let backend_sweep_eq = String.equal serial heap_serial in
  if backend_sweep_eq then
    print_endline "bench smoke OK: heap-backend sweep table == wheel-backend (default) table"
  else print_endline "bench smoke FAILED: sweep tables differ across backends";
  let root = find_lint_root (Sys.getcwd ()) in
  (* Flight-recorder cost, leg 1 — bare event churn: the speed_run chains
     with one ring record per hop, armed vs inert recorder.  An event here
     does almost nothing, so this is the worst case; the per-record
     nanoseconds are reported, and the gate is that the armed run still
     clears the same BENCH_BASELINE.json wheel floor as the bare backends
     (ISSUE 7: the recorder may not cost events/sec vs the baseline). *)
  let o_reps = 3 in
  let o_in, o_inow, o_inert_eps = obs_best o_reps (Flight.create ~enabled:false ()) in
  let o_an, o_anow, o_armed_eps = obs_best o_reps (Flight.create ()) in
  let o_identical = o_in = o_an && o_inow = o_anow in
  let o_churn_pct =
    if o_inert_eps > 0.0 then (o_inert_eps -. o_armed_eps) /. o_inert_eps *. 100.0 else 0.0
  in
  let o_ns_per_record =
    if o_armed_eps > 0.0 && o_inert_eps > 0.0 then (1e9 /. o_armed_eps) -. (1e9 /. o_inert_eps)
    else 0.0
  in
  Printf.printf
    "[obs: inert recorder %.0f events/s, armed %.0f events/s -> %+.1f%% on bare churn, \
     %.0f ns/record]\n"
    o_inert_eps o_armed_eps o_churn_pct o_ns_per_record;
  let o_floor_ok =
    match baseline_events_per_sec root "wheel" with
    | Some b when b > 0.0 ->
      let ratio = o_armed_eps /. b in
      Printf.printf "[obs: armed recorder %.2fx the wheel BENCH_BASELINE.json floor]\n" ratio;
      ratio >= 0.8
    | _ ->
      print_endline "[obs: no wheel baseline floor found, recorder gate skipped]";
      true
  in
  if o_identical && o_floor_ok then
    print_endline "bench smoke OK: armed flight recorder holds the baseline events/sec floor"
  else if not o_identical then
    print_endline "bench smoke FAILED: recorder arming changed the retired event stream"
  else print_endline "bench smoke FAILED: recorder-armed events/sec fell below the baseline floor";
  (* Flight-recorder cost, leg 2 — the realistic sweep: every scheduler
     round and dataplane cycle writes ring records.  Results must stay
     bit-identical to the recorder-off telemetry sweep above, and the wall
     overhead inside the <=5% budget (the gate allows 5 more points of
     shared-runner noise). *)
  (* Each rep re-times a fresh recorder-off sweep right before its armed
     sweep so machine-load swings hit both sides of the ratio; the gate
     judges the quietest pair (the telemetry-on sweep measured earlier in
     the smoke is minutes of wall time away by now). *)
  let o_base_best = ref infinity
  and o_arm_best = ref infinity
  and o_ratio = ref infinity
  and o_on_s = ref 0.0
  and o_rows = ref on_rows in
  for _ = 1 to reps do
    let b, _ = timed 1 (fun () -> List.map (point ~telemetry:true) rates) in
    let a, rows = timed 1 (fun () -> List.map (point ~telemetry:true ~flight:true) rates) in
    o_rows := rows;
    o_on_s := !o_on_s +. a;
    if b > 0.0 && a /. b < !o_ratio then begin
      o_ratio := a /. b;
      o_base_best := b;
      o_arm_best := a
    end
  done;
  let o_on_s = !o_on_s and o_rows = !o_rows in
  let o_sweep_eq =
    List.for_all2
      (fun (_, k0, p0) (_, k1, p1) -> Float.equal k0 k1 && Float.equal p0 p1)
      on_rows o_rows
  in
  let o_wall_pct =
    if !o_base_best > 0.0 then (!o_arm_best -. !o_base_best) /. !o_base_best *. 100.0
    else 0.0
  in
  let o_wall_ok = !o_arm_best <= 1.10 *. !o_base_best in
  Printf.printf
    "[obs: recorder-off sweep %.2fs / armed %.2fs (best pair of %d over %d points) -> \
     %+.1f%% wall overhead (budget 5%%, gate 10%%)]\n"
    !o_base_best !o_arm_best reps (List.length rates) o_wall_pct;
  if o_sweep_eq && o_wall_ok then
    print_endline "bench smoke OK: flight-armed sweep == recorder-off sweep, within budget"
  else if not o_sweep_eq then
    print_endline "bench smoke FAILED: the flight recorder perturbed the simulated results"
  else print_endline "bench smoke FAILED: flight-recorder sweep overhead exceeds the 10% gate";
  (* Dump determinism: the forensic debrief of a monitored run must digest
     identically across a same-seed rerun and across event backends. *)
  let o_dump_digest = flight_debrief_digest () in
  let dump_rerun = flight_debrief_digest () in
  Sim.set_default_backend Sim.Heap;
  let dump_heap = flight_debrief_digest () in
  Sim.set_default_backend saved_backend;
  let o_dump_eq = String.equal o_dump_digest dump_rerun && String.equal o_dump_digest dump_heap in
  Printf.printf "[obs: debrief digest %s (rerun %s, heap %s)]\n" o_dump_digest dump_rerun
    dump_heap;
  if o_dump_eq then
    print_endline "bench smoke OK: forensic dump digests identical across reruns and backends"
  else print_endline "bench smoke FAILED: forensic dump is nondeterministic";
  let gate name eps =
    match baseline_events_per_sec root name with
    | Some b when b > 0.0 ->
      let ratio = eps /. b in
      Printf.printf "[speed %s: %.2fx the BENCH_BASELINE.json floor]\n" name ratio;
      ratio >= 0.8
    | _ ->
      Printf.printf "[speed %s: no baseline floor found, gate skipped]\n" name;
      true
  in
  let speed_ok = gate "heap" h_eps && gate "wheel" w_eps in
  if speed_ok then print_endline "bench smoke OK: events/sec within 20% of baseline"
  else print_endline "bench smoke FAILED: events/sec regressed >20% vs BENCH_BASELINE.json";
  (* Rack balancer gate: best-of-3 balanced-requests/sec through the
     request-level balancing path vs the "rack" floor, plus the skew
     detector's migration micro (online migration must stay live). *)
  let rack_n, rack_eps =
    let best = ref (rack_run ()) in
    for _ = 2 to 3 do
      let n, eps = rack_run () in
      if eps > snd !best then best := (n, eps)
    done;
    !best
  in
  let rack_migrations = rack_migration_run () in
  Printf.printf "[rack: %d balanced requests, %.0f requests/s, %d migrations applied]\n" rack_n
    rack_eps rack_migrations;
  let rack_floor_ok = gate "rack" rack_eps in
  let rack_ok = rack_floor_ok && rack_migrations > 0 in
  if rack_ok then
    print_endline "bench smoke OK: rack balancer holds its floor and migration stays live"
  else if not rack_floor_ok then
    print_endline "bench smoke FAILED: rack balanced-requests/sec fell below the baseline floor"
  else print_endline "bench smoke FAILED: skew-driven migration applied no migrations";
  (* Rack tracing gate: the same rack world with the distributed tracer
     armed end-to-end vs inert.  Armed dispatch must clear the
     "rack_obs" floor, stay within the always-on budget of the inert
     run, and tile every traced request exactly. *)
  let ro_pairs = rack_traced_pairs 3 in
  (* Best pair by armed/inert ratio: the quietest back-to-back rep. *)
  let ro_inert_n, ro_inert_eps, ro_armed_n, ro_armed_eps, ro_obs_opt =
    List.fold_left
      (fun ((_, bi, _, ba, _) as best) ((_, i, _, a, _) as p) ->
        let ratio i a = if i > 0.0 then a /. i else 0.0 in
        if ratio i a > ratio bi ba then p else best)
      (List.hd ro_pairs) (List.tl ro_pairs)
  in
  let ro_obs = match ro_obs_opt with Some o -> o | None -> assert false in
  let ro_tiling_ok =
    Reflex_rack_obs.Rack_obs.tiling_ok ro_obs
    && Reflex_rack_obs.Rack_obs.slot_overflow ro_obs = 0
  in
  let ro_overhead_pct =
    if ro_inert_eps > 0.0 then (ro_inert_eps -. ro_armed_eps) /. ro_inert_eps *. 100.0
    else 0.0
  in
  let ro_budget_ok = ro_armed_eps >= 0.90 *. ro_inert_eps in
  let ro_ns = ns_per_hop_record ro_obs in
  Printf.printf
    "[rack_obs: inert %.0f req/s, traced %.0f req/s -> %+.1f%% overhead (budget 5%%, gate \
     10%%), %.0f ns/hop-record, %d traced]\n"
    ro_inert_eps ro_armed_eps ro_overhead_pct ro_ns
    (Reflex_rack_obs.Rack_obs.traced ro_obs);
  let ro_best_armed_eps =
    List.fold_left (fun acc (_, _, _, a, _) -> Float.max acc a) 0.0 ro_pairs
  in
  let ro_floor_ok = gate "rack_obs" ro_best_armed_eps in
  let ro_stream_ok =
    ro_inert_n = ro_armed_n
    && List.for_all (fun (i, _, a, _, _) -> i = a) ro_pairs
  in
  let rack_obs_ok = ro_floor_ok && ro_budget_ok && ro_tiling_ok && ro_stream_ok in
  if rack_obs_ok then
    print_endline
      "bench smoke OK: armed rack tracer holds its floor, budget and tiling invariant"
  else if not ro_stream_ok then
    print_endline "bench smoke FAILED: arming the rack tracer changed the dispatch stream"
  else if not ro_tiling_ok then
    print_endline "bench smoke FAILED: rack tracer hop deltas do not tile e2e latency"
  else if not ro_budget_ok then
    print_endline "bench smoke FAILED: armed rack tracer exceeds the 10% events/sec gate"
  else
    print_endline "bench smoke FAILED: traced rack dispatch fell below the baseline floor";
  (* Static-analysis gate: the live tree must lint clean, serial and
     --jobs 2 reports must be byte-identical, and the counts (including
     call-graph statistics) land in BENCH_SMOKE.json for trend tracking. *)
  let lint, lint_wall_s, lint_jobs_eq = run_lint () in
  let lint_clean = Lint_driver.clean lint in
  Printf.printf "[lint: %d file(s), %d rule(s), %d finding(s), %d waiver(s), %.3f s]\n"
    lint.Lint_driver.files_scanned
    (List.length lint.Lint_driver.rules)
    (List.length lint.Lint_driver.findings)
    lint.Lint_driver.waivers_used lint_wall_s;
  (match lint.Lint_driver.gstats with
  | Some g ->
    Printf.printf
      "[lint callgraph: %d node(s), %d edge(s), hot %d+%d, taint %d source(s) -> %d, %d \
       sink(s)]\n"
      g.Lint_interproc.gs_nodes g.Lint_interproc.gs_edges g.Lint_interproc.gs_hot_seeds
      g.Lint_interproc.gs_hot_inferred g.Lint_interproc.gs_taint_sources
      g.Lint_interproc.gs_taint_tainted g.Lint_interproc.gs_identity_sinks
  | None -> ());
  if lint_clean then print_endline "bench smoke OK: reflex-lint reports zero findings"
  else begin
    print_endline "bench smoke FAILED: reflex-lint found violations";
    print_string (Lint_driver.to_text lint)
  end;
  if lint_jobs_eq then
    print_endline "bench smoke OK: lint report is byte-identical serial vs --jobs 2"
  else print_endline "bench smoke FAILED: lint report differs between serial and --jobs 2";
  (match json_path with
  | Some p ->
    write_json p ~rows ~parallel_eq ~wall_parallel ~off_s ~on_s ~overhead_pct ~iops_delta_pct
      ~f_off_s ~f_on_s ~f_overhead_pct ~f_identical ~m_off_s ~m_on_s ~m_overhead_pct
      ~m_identical ~s_events:h_n ~h_eps ~h_mwpe ~w_eps ~w_mwpe ~s_identical ~backend_sweep_eq
      ~o_inert_eps ~o_armed_eps ~o_churn_pct ~o_ns_per_record ~o_identical ~o_on_s ~o_wall_pct
      ~o_sweep_eq ~o_dump_digest ~o_dump_eq ~rack_n ~rack_eps ~rack_migrations
      ~ro_inert_eps ~ro_armed_eps ~ro_overhead_pct ~ro_ns
      ~ro_traced:(Reflex_rack_obs.Rack_obs.traced ro_obs)
      ~ro_tiling_ok ~lint ~lint_wall_s ~lint_jobs_eq
  | None -> ());
  if
    not
      (parallel_eq && sim_identical && f_identical && m_identical && s_identical
     && backend_sweep_eq && speed_ok && o_identical && o_floor_ok && o_sweep_eq && o_wall_ok
     && o_dump_eq && rack_ok && rack_obs_ok && lint_clean && lint_jobs_eq)
  then exit 1
