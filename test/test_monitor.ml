(* Tests for the online monitoring & alerting subsystem (lib/monitor). *)

open Reflex_engine
open Reflex_stats
open Reflex_monitor

(* ------------------------------------------------------------------ *)
(* Budget: burn-rate arithmetic                                       *)
(* ------------------------------------------------------------------ *)

let test_burn_rate_arithmetic () =
  (* bad fraction 14/1000 against a 99.9% target burns 14x. *)
  Alcotest.(check (float 1e-9)) "14x" 14.0
    (Budget.burn_rate_of ~target:0.999 ~good:986.0 ~bad:14.0);
  (* all-bad traffic at 99% burns 100x: 1.0 / 0.01. *)
  Alcotest.(check (float 1e-9)) "100x" 100.0
    (Budget.burn_rate_of ~target:0.99 ~good:0.0 ~bad:50.0);
  (* burning exactly at plan: bad fraction equals the allowance. *)
  Alcotest.(check (float 1e-9)) "1x" 1.0
    (Budget.burn_rate_of ~target:0.99 ~good:99.0 ~bad:1.0);
  (* an empty window burns nothing. *)
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Budget.burn_rate_of ~target:0.999 ~good:0.0 ~bad:0.0)

let test_budget_accounting () =
  (* target 0.5 is exact in binary, so "exactly spent" really is 1.0. *)
  let b = Budget.create ~tenant:7 ~target:0.5 ~period:(Time.sec 1) in
  Alcotest.(check (float 1e-9)) "fresh consumed" 0.0 (Budget.consumed b);
  Alcotest.(check bool) "fresh not exhausted" false (Budget.exhausted b);
  Budget.record b ~good:1.0 ~bad:1.0;
  (* observed bad fraction equals the allowance: budget exactly spent. *)
  Alcotest.(check (float 1e-9)) "consumed" 1.0 (Budget.consumed b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check (float 1e-9)) "remaining" 0.0 (Budget.remaining b);
  Alcotest.(check (float 1e-9)) "burn" 1.0 (Budget.burn_rate b)

let test_budget_validation () =
  Alcotest.check_raises "target 1.0 rejected"
    (Invalid_argument "Budget.create: target must be in (0,1)") (fun () ->
      ignore (Budget.create ~tenant:0 ~target:1.0 ~period:(Time.sec 1)));
  let b = Budget.create ~tenant:0 ~target:0.9 ~period:(Time.sec 1) in
  Alcotest.check_raises "negative counts rejected"
    (Invalid_argument "Budget.record: negative counts") (fun () ->
      Budget.record b ~good:(-1.0) ~bad:0.0)

(* ------------------------------------------------------------------ *)
(* Tsdb: windowed sources                                             *)
(* ------------------------------------------------------------------ *)

let test_tsdb_windows () =
  let ts = Tsdb.create ~interval:(Time.ms 1) () in
  let c = ref 0.0 in
  let g = ref 5.0 in
  let h = Hdr_histogram.create () in
  Tsdb.register_cumulative ts "c" (fun () -> !c);
  Tsdb.register_gauge ts "g" (fun () -> !g);
  Tsdb.register_hist ts "h" h;
  Tsdb.register_derived ts "twice_g" (fun w ->
      2.0 *. Option.value ~default:0.0 (Tsdb.value w "g"));
  c := 10.0;
  Hdr_histogram.record h 100L;
  Hdr_histogram.record h 200L;
  Tsdb.tick ts ~now:(Time.ms 1);
  c := 25.0;
  Hdr_histogram.record h 5000L;
  Tsdb.tick ts ~now:(Time.ms 2);
  Alcotest.(check int) "two windows" 2 (Tsdb.window_count ts);
  let w1, w2 =
    match Tsdb.windows ts with [ a; b ] -> (a, b) | _ -> Alcotest.fail "window list"
  in
  (* cumulative source -> per-window deltas *)
  Alcotest.(check (option (float 1e-9))) "w1 delta" (Some 10.0) (Tsdb.value w1 "c");
  Alcotest.(check (option (float 1e-9))) "w2 delta" (Some 15.0) (Tsdb.value w2 "c");
  (* gauge -> instantaneous *)
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 5.0) (Tsdb.value w2 "g");
  (* derived sees the freshly closed base window *)
  Alcotest.(check (option (float 1e-9))) "derived" (Some 10.0) (Tsdb.value w2 "twice_g");
  (* histogram -> exact per-window delta, not a cumulative aggregate *)
  (match (Tsdb.hist w1 "h", Tsdb.hist w2 "h") with
  | Some d1, Some d2 ->
    Alcotest.(check int) "w1 hist delta" 2 (Hdr_histogram.count d1);
    Alcotest.(check int) "w2 hist delta" 1 (Hdr_histogram.count d2);
    Alcotest.(check bool) "w2 p95 is the delta's" true
      (Hdr_histogram.percentile_us d2 95.0 > 4.0)
  | _ -> Alcotest.fail "missing hist");
  (* span + sum_last *)
  Alcotest.(check (float 1e-9)) "span" 1000.0 (Tsdb.span_us w2);
  Alcotest.(check (float 1e-9)) "sum_last" 25.0 (Tsdb.sum_last ts ~k:2 "c")

let test_tsdb_ring_eviction () =
  let ts = Tsdb.create ~capacity:2 ~interval:(Time.ms 1) () in
  Tsdb.register_gauge ts "g" (fun () -> 1.0);
  List.iter (fun i -> Tsdb.tick ts ~now:(Time.ms i)) [ 1; 2; 3 ];
  Alcotest.(check int) "retained" 2 (Tsdb.window_count ts);
  Alcotest.(check int) "closed total" 3 (Tsdb.windows_closed ts);
  (* a second tick at the same instant is a no-op *)
  Tsdb.tick ts ~now:(Time.ms 3);
  Alcotest.(check int) "same-time tick ignored" 3 (Tsdb.windows_closed ts)

let test_tsdb_duplicate_and_disabled () =
  let ts = Tsdb.create () in
  Tsdb.register_gauge ts "x" (fun () -> 0.0);
  Alcotest.check_raises "duplicate source" (Invalid_argument "Tsdb: duplicate source x")
    (fun () -> Tsdb.register_gauge ts "x" (fun () -> 1.0));
  let d = Tsdb.disabled in
  Tsdb.register_gauge d "x" (fun () -> 0.0);
  Tsdb.tick d ~now:(Time.ms 5);
  Alcotest.(check bool) "disabled registers nothing" false (Tsdb.has_source d "x");
  Alcotest.(check int) "disabled closes nothing" 0 (Tsdb.windows_closed d)

(* ------------------------------------------------------------------ *)
(* Alerts: rule state machine                                         *)
(* ------------------------------------------------------------------ *)

(* Drive a one-source tsdb and a rule whose verdict is a mutable flag. *)
let flag_world ?for_ ?resolve_after () =
  let ts = Tsdb.create ~interval:(Time.ms 1) () in
  Tsdb.register_gauge ts "g" (fun () -> 0.0);
  let al = Alerts.create () in
  let bad = ref false in
  Alerts.add al
    (Alerts.rule ?for_ ?resolve_after ~name:"r" (fun _ _ ->
         if !bad then Some "bad" else None));
  let step i =
    Tsdb.tick ts ~now:(Time.ms i);
    Alerts.step al ts ~now:(Time.ms i)
  in
  (al, bad, step)

let kinds evs = List.map (fun (e : Alerts.event) -> e.e_kind) evs

let test_alerts_immediate () =
  let al, bad, step = flag_world () in
  Alcotest.(check int) "quiet" 0 (List.length (step 1));
  bad := true;
  Alcotest.(check bool) "fires on first bad window" true (kinds (step 2) = [ Alerts.Fired ]);
  Alcotest.(check (list string)) "firing" [ "r" ] (Alerts.firing al);
  Alcotest.(check int) "no re-fire while firing" 0 (List.length (step 3));
  bad := false;
  Alcotest.(check bool) "resolves on first clean window" true
    (kinds (step 4) = [ Alerts.Resolved ]);
  Alcotest.(check (list string)) "nothing firing" [] (Alerts.firing al);
  Alcotest.(check int) "fired total" 1 (Alerts.fired_total al)

let test_alerts_hysteresis () =
  let al, bad, step = flag_world ~for_:(Time.ms 2) ~resolve_after:(Time.ms 2) () in
  bad := true;
  Alcotest.(check int) "pending, not fired" 0 (List.length (step 1));
  Alcotest.(check int) "held 1ms < for" 0 (List.length (step 2));
  Alcotest.(check bool) "held 2ms -> fired" true (kinds (step 3) = [ Alerts.Fired ]);
  bad := false;
  Alcotest.(check int) "clear 1ms < resolve_after" 0 (List.length (step 4));
  Alcotest.(check bool) "clear 2ms -> resolved" true (kinds (step 5) = [ Alerts.Resolved ]);
  (* a blip shorter than for_ never fires *)
  bad := true;
  ignore (step 6);
  bad := false;
  Alcotest.(check int) "blip cancelled" 0 (List.length (step 7));
  Alcotest.(check int) "only one fire ever" 1 (Alerts.fired_total al)

let test_alerts_burn_rule () =
  let ts = Tsdb.create ~interval:(Time.ms 1) () in
  let good = ref 0.0 and bad = ref 0.0 in
  Tsdb.register_cumulative ts "good" (fun () -> !good);
  Tsdb.register_cumulative ts "bad" (fun () -> !bad);
  let al = Alerts.create () in
  Alerts.add al
    (Alerts.burn_rule ~name:"burn" ~target:0.9 ~good:"good" ~bad:"bad" ~short:(1, 5.0)
       ~long:(2, 2.0) ());
  (* window 1: all good -> no burn *)
  good := 10.0;
  Tsdb.tick ts ~now:(Time.ms 1);
  Alcotest.(check int) "good window quiet" 0 (List.length (Alerts.step al ts ~now:(Time.ms 1)));
  (* window 2: all bad.  short burn = 1.0/0.1 = 10 >= 5; long over both
     windows = 0.5/0.1 = 5 >= 2 -> fires. *)
  bad := 10.0;
  Tsdb.tick ts ~now:(Time.ms 2);
  (match Alerts.step al ts ~now:(Time.ms 2) with
  | [ e ] ->
    Alcotest.(check bool) "fired" true (e.Alerts.e_kind = Alerts.Fired);
    Alcotest.(check bool) "detail shows burns" true
      (String.length e.Alerts.e_detail > 0)
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs)))

let test_alerts_deterministic_order_and_annotate () =
  let ts = Tsdb.create ~interval:(Time.ms 1) () in
  Tsdb.register_gauge ts "g" (fun () -> 0.0);
  let al = Alerts.create ~annotate:(fun _ -> Some "ctx") () in
  (* registered out of name order; events must come out name-sorted *)
  Alerts.add al (Alerts.rule ~name:"zeta" (fun _ _ -> Some "z"));
  Alerts.add al (Alerts.rule ~name:"alpha" (fun _ _ -> Some "a"));
  Alcotest.check_raises "duplicate rule" (Invalid_argument "Alerts.add: duplicate rule alpha")
    (fun () -> Alerts.add al (Alerts.rule ~name:"alpha" (fun _ _ -> None)));
  Alcotest.(check (list string)) "rule_names sorted" [ "alpha"; "zeta" ] (Alerts.rule_names al);
  Tsdb.tick ts ~now:(Time.ms 1);
  let evs = Alerts.step al ts ~now:(Time.ms 1) in
  Alcotest.(check (list string)) "events in name order" [ "alpha"; "zeta" ]
    (List.map (fun (e : Alerts.event) -> e.e_rule) evs);
  List.iter
    (fun (e : Alerts.event) ->
      Alcotest.(check bool) "fired detail annotated" true
        (String.length e.e_detail >= 3
        && String.sub e.e_detail (String.length e.e_detail - 3) 3 = "ctx"))
    evs

(* ------------------------------------------------------------------ *)
(* Detect                                                             *)
(* ------------------------------------------------------------------ *)

let test_ewma_zscore () =
  let e = Detect.Ewma.create ~alpha:0.3 ~sigma_floor:1.0 ~warmup:5 () in
  (* warmup observations score 0 *)
  for _ = 1 to 5 do
    Alcotest.(check (float 1e-9)) "warmup z" 0.0 (Detect.Ewma.observe e 100.0)
  done;
  Alcotest.(check bool) "warmed up" true (Detect.Ewma.warmed_up e);
  (* constant series: sigma is the floor, in-line value scores 0 *)
  Alcotest.(check (float 1e-9)) "sigma floored" 1.0 (Detect.Ewma.sigma e);
  Alcotest.(check (float 1e-9)) "in-line z" 0.0 (Detect.Ewma.observe e 100.0);
  (* a spike is scored against the PRE-spike baseline *)
  let z = Detect.Ewma.observe e 150.0 in
  Alcotest.(check bool) (Printf.sprintf "spike z=%.1f large" z) true (z >= 10.0);
  (* and the baseline has since moved toward the spike *)
  Alcotest.(check bool) "baseline adapted" true (Detect.Ewma.mean e > 100.0)

let test_knee_crossed () =
  let knee ~rate ~p95_us =
    Detect.knee_crossed ~knee_rate:100.0 ~knee_latency_us:500.0 ~rate ~p95_us
  in
  Alcotest.(check bool) "past knee" true (knee ~rate:120.0 ~p95_us:800.0);
  Alcotest.(check bool) "high rate, good latency" false (knee ~rate:120.0 ~p95_us:300.0);
  Alcotest.(check bool) "low rate, bad latency" false (knee ~rate:50.0 ~p95_us:800.0);
  Alcotest.(check bool) "healthy" false (knee ~rate:50.0 ~p95_us:300.0);
  Alcotest.check_raises "bad knee rate"
    (Invalid_argument "Detect.knee_crossed: non-positive knee_rate") (fun () ->
      ignore (Detect.knee_crossed ~rate:1.0 ~knee_rate:0.0 ~p95_us:1.0 ~knee_latency_us:1.0))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_prom_export () =
  Alcotest.(check string) "sanitize path" "qos_t7_latency" (Prom_export.sanitize "qos/t7/latency");
  Alcotest.(check string) "leading digit" "_7x" (Prom_export.sanitize "7x");
  Alcotest.(check string) "empty" "_" (Prom_export.sanitize "");
  Alcotest.(check bool) "label escaping" true
    (contains_sub (Prom_export.line ~name:"m" ~labels:[ ("l", "a\"b") ] 1.0) "l=\"a\\\"b\"");
  let tel = Reflex_telemetry.Telemetry.create () in
  Reflex_telemetry.Telemetry.add (Reflex_telemetry.Telemetry.counter tel "faults/injected") 3.0;
  Reflex_telemetry.Telemetry.register_gauge tel "core/util" (fun () -> 0.5);
  let h = Reflex_telemetry.Telemetry.histogram tel "flash/read_ns" in
  Hdr_histogram.record h 90_000L;
  let page = Prom_export.render tel in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains_sub page needle))
    [
      "# TYPE reflex_faults_injected counter";
      "reflex_faults_injected 3";
      "# TYPE reflex_core_util gauge";
      "reflex_core_util 0.5";
      "# TYPE reflex_flash_read_ns_us summary";
      "quantile=\"0.95\"";
      "reflex_flash_read_ns_us_count 1";
    ]

(* ------------------------------------------------------------------ *)
(* Remediate + disabled-monitor contract on a real world              *)
(* ------------------------------------------------------------------ *)

open Reflex_experiments

let test_remediate_actions () =
  let telemetry = Reflex_telemetry.Telemetry.create () in
  let w = Common.make_reflex ~telemetry ~seed:5L () in
  let server = w.Common.server in
  ignore
    (Common.client_of w ~slo:(Common.lc_slo ~latency_us:500 ~iops:10_000 ~read_pct:100)
       ~tenant:1 ());
  Alcotest.(check string) "reprice outcome" "repriced capacity_factor=0.50"
    (Remediate.apply server (Remediate.Reprice 0.5));
  Alcotest.(check (float 1e-9)) "factor pushed" 0.5
    (Reflex_core.Control_plane.capacity_factor (Reflex_core.Server.control_plane server));
  Alcotest.(check string) "demote LC tenant" "demoted tenant 1"
    (Remediate.apply server (Remediate.Demote 1));
  Alcotest.(check string) "demote unknown is a no-op" "demote tenant 999: no-op"
    (Remediate.apply server (Remediate.Demote 999));
  Alcotest.(check string) "log action" "hello" (Remediate.apply server (Remediate.Log "hello"))

let test_monitor_disabled_inert () =
  let telemetry = Reflex_telemetry.Telemetry.create () in
  let w = Common.make_reflex ~telemetry ~seed:5L () in
  let m = Monitor.create ~enabled:false ~server:w.Common.server ~telemetry () in
  Monitor.start m w.Common.sim ();
  Monitor.tick m ~now:(Time.ms 3);
  Alcotest.(check bool) "disabled" false (Monitor.enabled m);
  Alcotest.(check int) "no windows" 0 (Tsdb.windows_closed (Monitor.tsdb m));
  Alcotest.(check (list string)) "no rules" [] (Alerts.rule_names (Monitor.alerts m));
  Alcotest.(check string) "empty prometheus" "" (Monitor.prometheus m);
  Alcotest.(check string) "disabled report" "== monitor disabled ==\n" (Monitor.report m);
  (* over a disabled telemetry, an enabled monitor degrades to inert too *)
  let m2 =
    Monitor.create ~server:w.Common.server ~telemetry:Reflex_telemetry.Telemetry.disabled ()
  in
  Alcotest.(check bool) "disabled telemetry forces inert" false (Monitor.enabled m2)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario (shared across checks; ~one chaos-sized run)   *)
(* ------------------------------------------------------------------ *)

let scenario = lazy (Monitor_exp.run ~mode:Common.Quick ~seed:7L ())

let test_scenario_alerts_in_fault_windows () =
  let r = Lazy.force scenario in
  Alcotest.(check bool) "alerts fired" true (Monitor_exp.alerts_fired r);
  Alcotest.(check bool) "all inside padded fault windows" true
    (Monitor_exp.alerts_in_windows r);
  Alcotest.(check bool) "every alert names its fault" true (Monitor_exp.alerts_named r)

let test_scenario_identity () =
  let r = Lazy.force scenario in
  Alcotest.(check bool) "disabled == none" true (Monitor_exp.disabled_identical r);
  Alcotest.(check bool) "enabled observer == none" true (Monitor_exp.observer_identical r);
  Alcotest.(check bool) "remediation applied" true (Monitor_exp.remediation_applied r)

(* Property: a fault-free scripted run fires zero alerts, across seeds. *)
let test_clean_runs_silent () =
  List.iter
    (fun seed ->
      let leg = Monitor_exp.run_clean ~mode:Common.Quick ~seed () in
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld: zero alert events" seed)
        0
        (List.length (Monitor.events leg.Monitor_exp.monitor)))
    [ 3L; 19L; 1234L ]

(* The full monitored scenario on the timing-wheel backend must render
   byte-identically to the heap backend at the same seed — the monitor's
   daemon ticks ride the same event queue as the workload, so any order
   divergence between backends would show up here. *)
let test_backend_equivalence () =
  let seed = 11L in
  let saved = Sim.get_default_backend () in
  Fun.protect
    ~finally:(fun () -> Sim.set_default_backend saved)
    (fun () ->
      Sim.set_default_backend Sim.Heap;
      let heap = Monitor_exp.render ~mode:Common.Quick ~seed () in
      Sim.set_default_backend Sim.Wheel;
      let wheel = Monitor_exp.render ~mode:Common.Quick ~seed () in
      Alcotest.(check bool) "wheel monitor render == heap" true (String.equal heap wheel))

(* Same-seed monitor reports must be byte-identical serial vs --jobs 2. *)
let test_parallel_determinism () =
  let seed = 11L in
  let serial = Monitor_exp.render ~mode:Common.Quick ~seed () in
  match Runner.map ~jobs:2 (fun s -> Monitor_exp.render ~mode:Common.Quick ~seed:s ()) [ seed; seed ] with
  | [ a; b ] ->
    Alcotest.(check bool) "domain A == serial" true (String.equal serial a);
    Alcotest.(check bool) "domain B == serial" true (String.equal serial b)
  | _ -> Alcotest.fail "Runner.map arity"

let qcheck = QCheck_alcotest.to_alcotest

let prop_burn_rate_scales_linearly =
  QCheck.Test.make ~name:"burn rate is linear in the bad fraction" ~count:200
    QCheck.(pair (float_range 0.5 0.9999) (float_range 0.0 1.0))
    (fun (target, frac) ->
      let total = 1000.0 in
      let bad = frac *. total in
      let burn = Budget.burn_rate_of ~target ~good:(total -. bad) ~bad in
      abs_float (burn -. (frac /. (1.0 -. target))) < 1e-9)

let suite =
  [
    ( "budget",
      [
        Alcotest.test_case "burn-rate arithmetic" `Quick test_burn_rate_arithmetic;
        Alcotest.test_case "accounting" `Quick test_budget_accounting;
        Alcotest.test_case "validation" `Quick test_budget_validation;
        qcheck prop_burn_rate_scales_linearly;
      ] );
    ( "tsdb",
      [
        Alcotest.test_case "windowed sources" `Quick test_tsdb_windows;
        Alcotest.test_case "ring eviction" `Quick test_tsdb_ring_eviction;
        Alcotest.test_case "duplicates and disabled" `Quick test_tsdb_duplicate_and_disabled;
      ] );
    ( "alerts",
      [
        Alcotest.test_case "immediate fire/resolve" `Quick test_alerts_immediate;
        Alcotest.test_case "for-duration and resolve hysteresis" `Quick test_alerts_hysteresis;
        Alcotest.test_case "multi-window burn rule" `Quick test_alerts_burn_rule;
        Alcotest.test_case "deterministic order + annotation" `Quick
          test_alerts_deterministic_order_and_annotate;
      ] );
    ( "detect",
      [
        Alcotest.test_case "ewma z-score" `Quick test_ewma_zscore;
        Alcotest.test_case "knee predicate" `Quick test_knee_crossed;
      ] );
    ("prom", [ Alcotest.test_case "text exposition" `Quick test_prom_export ]);
    ( "remediate",
      [
        Alcotest.test_case "actions" `Quick test_remediate_actions;
        Alcotest.test_case "disabled monitor is inert" `Quick test_monitor_disabled_inert;
      ] );
    ( "scenario",
      [
        Alcotest.test_case "alerts land in fault windows" `Quick
          test_scenario_alerts_in_fault_windows;
        Alcotest.test_case "observer/disabled identity" `Quick test_scenario_identity;
        Alcotest.test_case "clean runs are silent" `Quick test_clean_runs_silent;
        Alcotest.test_case "serial vs --jobs 2 reports identical" `Quick
          test_parallel_determinism;
        Alcotest.test_case "wheel backend renders identically" `Quick test_backend_equivalence;
      ] );
  ]
