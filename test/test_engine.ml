(* Unit and property tests for the DES kernel. *)

open Reflex_engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time                                                               *)
(* ------------------------------------------------------------------ *)

let test_time_constructors () =
  Alcotest.(check int64) "us" 1_000L (Time.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Time.ms 1);
  Alcotest.(check int64) "sec" 1_000_000_000L (Time.sec 1);
  Alcotest.(check int64) "of_float_us rounds" 1_500L (Time.of_float_us 1.5);
  check_float "to_float_us" 2.5 (Time.to_float_us 2_500L)

let test_time_arith () =
  Alcotest.(check int64) "add" 30L (Time.add 10L 20L);
  Alcotest.(check int64) "sub" 10L (Time.sub 30L 20L);
  Alcotest.(check int64) "scale" 15L (Time.scale 10L 1.5);
  Alcotest.(check bool) "lt" true Time.(5L < 6L);
  Alcotest.(check bool) "ge" true Time.(6L >= 6L);
  Alcotest.(check int64) "max" 6L (Time.max 5L 6L);
  Alcotest.(check int64) "min" 5L (Time.min 5L 6L)

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.ns 500));
  Alcotest.(check string) "us" "12.00us" (Time.to_string (Time.us 12));
  Alcotest.(check string) "ms" "3.00ms" (Time.to_string (Time.ms 3))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 42L in
  let c = Prng.split a in
  let x = Prng.bits64 a and y = Prng.bits64 c in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal x y))

let test_prng_float_range () =
  let p = Prng.create 7L in
  for _ = 1 to 10_000 do
    let x = Prng.float p in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_exponential_mean () =
  let p = Prng.create 11L in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f close to 50" mean)
    true
    (abs_float (mean -. 50.0) < 1.0)

let test_prng_normal_moments () =
  let p = Prng.create 13L in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.normal p ~mean:10.0 ~stddev:3.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~10" true (abs_float (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev ~3" true (abs_float (sqrt var -. 3.0) < 0.1)

let test_prng_zipf_skew () =
  let p = Prng.create 17L in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Prng.zipf p ~n:100 ~theta:0.99 in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 > rank 90" true (counts.(10) > counts.(90))

let test_prng_bool_bias () =
  let p = Prng.create 19L in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Prng.bool p 0.25 then incr hits
  done;
  let frac = float_of_int !hits /. 100_000.0 in
  Alcotest.(check bool) "p=0.25 respected" true (abs_float (frac -. 0.25) < 0.01)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int in [0,n)" ~count:1000
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (seed, n) ->
      let p = Prng.create seed in
      let x = Prng.int p n in
      x >= 0 && x < n)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:30L ~seq:0 "c";
  Heap.push h ~time:10L ~seq:1 "a";
  Heap.push h ~time:20L ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5L ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "FIFO at equal time" i v
    | None -> Alcotest.fail "empty"
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (int_range 0 1_000_000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h ~time:(Int64.of_int x) ~seq:i ()) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort Int64.compare (List.map Int64.of_int times) in
      popped = sorted)

let test_heap_pop_if_le_horizon () =
  let h = Heap.create () in
  Heap.push h ~time:10L ~seq:0 "a";
  Heap.push h ~time:20L ~seq:1 "b";
  Alcotest.(check bool) "min beyond horizon" true (Heap.pop_if_le h ~until:5L = None);
  Alcotest.(check int) "nothing popped" 2 (Heap.length h);
  (match Heap.pop_if_le h ~until:10L with
  | Some (10L, _, "a") -> ()
  | _ -> Alcotest.fail "expected (10, a) at an inclusive horizon");
  (match Heap.pop_if_le h ~until:Time.infinity with
  | Some (20L, _, "b") -> ()
  | _ -> Alcotest.fail "expected (20, b)");
  Alcotest.(check bool) "empty heap" true (Heap.pop_if_le h ~until:Time.infinity = None)

(* The reference semantics pop_if_le must match: a peek guard before pop. *)
let guarded_pop h ~until =
  match Heap.peek h with
  | Some (t, _, _) when Time.compare t until <= 0 -> Heap.pop h
  | _ -> None

let prop_heap_pop_if_le_matches_guarded_pop =
  QCheck.Test.make ~name:"pop_if_le = peek guard + pop" ~count:300
    QCheck.(
      pair
        (list (int_range 0 1_000))
        (list_of_size Gen.(int_range 1 64) (int_range 0 1_000)))
    (fun (times, probes) ->
      (* Two heaps with identical pushes; probe one with pop_if_le and the
         other with the two-step reference, at the same horizons. *)
      let h1 = Heap.create () and h2 = Heap.create () in
      List.iteri
        (fun i x ->
          Heap.push h1 ~time:(Int64.of_int x) ~seq:i i;
          Heap.push h2 ~time:(Int64.of_int x) ~seq:i i)
        times;
      List.for_all
        (fun u ->
          let until = Int64.of_int u in
          Heap.pop_if_le h1 ~until = guarded_pop h2 ~until)
        probes
      && Heap.length h1 = Heap.length h2)

let test_heap_clear_releases_values () =
  let h = Heap.create () in
  let w = Weak.create 4 in
  for i = 0 to 3 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h ~time:(Int64.of_int i) ~seq:i v
  done;
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool) "cleared value collected" false (Weak.check w i)
  done;
  Alcotest.(check int) "empty after clear" 0 (Heap.length h);
  Heap.push h ~time:1L ~seq:0 (ref 9);
  (match Heap.pop h with
  | Some (1L, 0, { contents = 9 }) -> ()
  | _ -> Alcotest.fail "heap unusable after clear")

let test_heap_pop_blanks_slots () =
  let h = Heap.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h ~time:(Int64.of_int i) ~seq:i v
  done;
  for _ = 0 to 7 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  (* Draining the heap blanks vacated slots; only the final pop may leave
     one stale reference in slot 0. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d live after drain (at most 1)" !live)
    true (!live <= 1)

let test_heap_clear_keeps_capacity () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~time:(Int64.of_int i) ~seq:i i
  done;
  let cap = Heap.capacity h in
  Alcotest.(check bool) "grown beyond seed" true (cap >= 100);
  Heap.clear h;
  Alcotest.(check int) "capacity preserved by clear" cap (Heap.capacity h);
  Alcotest.(check int) "empty after clear" 0 (Heap.length h);
  for i = 0 to 99 do
    Heap.push h ~time:(Int64.of_int i) ~seq:i i
  done;
  Alcotest.(check int) "no re-growth on refill" cap (Heap.capacity h)

(* ------------------------------------------------------------------ *)
(* Wheel                                                              *)
(* ------------------------------------------------------------------ *)

let test_wheel_ordering () =
  let w = Wheel.create () in
  Wheel.push w ~time:30L ~seq:0 3;
  Wheel.push w ~time:10L ~seq:1 1;
  Wheel.push w ~time:20L ~seq:2 2;
  let pop () =
    match Wheel.pop w with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check int) "first" 1 (pop ());
  Alcotest.(check int) "second" 2 (pop ());
  Alcotest.(check int) "third" 3 (pop ());
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  for i = 0 to 9 do
    Wheel.push w ~time:5L ~seq:i i
  done;
  for i = 0 to 9 do
    match Wheel.pop w with
    | Some (_, _, v) -> Alcotest.(check int) "FIFO at equal time" i v
    | None -> Alcotest.fail "empty"
  done

let test_wheel_pop_if_le_horizon () =
  let w = Wheel.create () in
  Wheel.push w ~time:10L ~seq:0 1;
  Wheel.push w ~time:20L ~seq:1 2;
  Alcotest.(check bool) "min beyond horizon" true (Wheel.pop_if_le w ~until:5L = None);
  Alcotest.(check int) "nothing popped" 2 (Wheel.length w);
  (match Wheel.pop_if_le w ~until:10L with
  | Some (10L, _, 1) -> ()
  | _ -> Alcotest.fail "expected (10, 1) at an inclusive horizon");
  (match Wheel.pop_if_le w ~until:Time.infinity with
  | Some (20L, _, 2) -> ()
  | _ -> Alcotest.fail "expected (20, 2)");
  Alcotest.(check bool) "empty wheel" true (Wheel.pop_if_le w ~until:Time.infinity = None)

let test_wheel_cross_level_and_overflow () =
  (* One event per wheel level, one beyond the ~73 min in-wheel horizon
     (overflow pull path) and one at Time.infinity (direct overflow pop
     path). *)
  let w = Wheel.create () in
  let times =
    [ Time.ns 500; Time.us 300; Time.ms 100; Time.sec 60; Time.sec 7200; Time.infinity ]
  in
  List.iteri (fun i t -> Wheel.push w ~time:t ~seq:i i) times;
  let popped = ref [] in
  let rec drain () =
    match Wheel.pop w with
    | Some (t, _, v) ->
      popped := (t, v) :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair int64 int)))
    "cross-level pops in time order"
    (List.mapi (fun i t -> (t, i)) times)
    (List.rev !popped)

let test_wheel_push_below_cursor () =
  (* Popping advances the cursor past drained slots; a later push below
     the cursor (but at/after the sim clock) must still pop in order. *)
  let w = Wheel.create () in
  Wheel.push w ~time:(Time.us 10) ~seq:0 0;
  Wheel.push w ~time:(Time.us 40) ~seq:1 1;
  (match Wheel.pop w with
  | Some (t, _, 0) -> Alcotest.(check int64) "first pop" (Time.us 10) t
  | _ -> Alcotest.fail "expected first event");
  Wheel.push w ~time:(Time.us 20) ~seq:2 2;
  Wheel.push w ~time:(Time.us 15) ~seq:3 3;
  let order = ref [] in
  let rec drain () =
    match Wheel.pop w with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "below-cursor pushes ordered" [ 3; 2; 1 ] (List.rev !order)

let test_wheel_clear_reuse () =
  let w = Wheel.create () in
  for i = 0 to 99 do
    Wheel.push w ~time:(Int64.of_int ((i * 7919) land 0xFFFFF)) ~seq:i i
  done;
  ignore (Wheel.pop w);
  Wheel.clear w;
  Alcotest.(check int) "empty after clear" 0 (Wheel.length w);
  Wheel.push w ~time:5L ~seq:0 42;
  (match Wheel.pop w with
  | Some (5L, 0, 42) -> ()
  | _ -> Alcotest.fail "wheel unusable after clear");
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

(* Heap/wheel equivalence: random interleavings of pushes (times spread
   across every wheel level plus the overflow regimes) and pops must
   yield identical (time, seq, value) sequences on both backends. *)
type qop = QPush of int | QPopLe of int | QPop

let qop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun (e, m) -> QPush (m lsl e)) (pair (int_range 0 45) (int_range 0 4095)));
        (1, return (QPush max_int));
        (2, map (fun (e, m) -> QPopLe (m lsl e)) (pair (int_range 0 45) (int_range 0 4095)));
        (2, return QPop);
      ])

let qop_print = function
  | QPush t -> Printf.sprintf "push %d" t
  | QPopLe u -> Printf.sprintf "pop_if_le %d" u
  | QPop -> "pop"

let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pops identical (time, seq) sequence to heap" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map qop_print ops))
       QCheck.Gen.(list_size (int_range 1 200) qop_gen))
    (fun ops ->
      let h = Heap.create () and w = Wheel.create () in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | QPush ti ->
            let time = Int64.of_int ti in
            Heap.push h ~time ~seq:!seq !seq;
            Wheel.push w ~time ~seq:!seq !seq;
            incr seq
          | QPopLe u ->
            let until = Int64.of_int u in
            if Heap.pop_if_le h ~until <> Wheel.pop_if_le w ~until then ok := false
          | QPop -> if Heap.pop h <> Wheel.pop w then ok := false)
        ops;
      let rec drain () =
        let a = Heap.pop h and b = Wheel.pop w in
        if a <> b then ok := false else if a <> None then drain ()
      in
      drain ();
      !ok && Heap.length h = 0 && Wheel.length w = 0)

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim (Time.us 30) (fun () -> log := 3 :: !log));
  ignore (Sim.at sim (Time.us 10) (fun () -> log := 1 :: !log));
  ignore (Sim.at sim (Time.us 20) (fun () -> log := 2 :: !log));
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" (Time.us 30) (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.at sim (Time.us 10) (fun () -> fired := true) in
  Sim.cancel sim ev;
  ignore (Sim.run sim);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_sim_cancel_releases_closure () =
  (* Cancelling blanks the heap slot's action immediately: the closure's
     environment must become collectable before the heap ever pops the
     dead event (retry timers cancel on every successful completion, so
     this window can hold thousands of events). *)
  let sim = Sim.create () in
  let weak = Weak.create 1 in
  let ev =
    let payload = Bytes.create 4096 in
    Weak.set weak 0 (Some payload);
    Sim.at sim (Time.ms 1) (fun () -> ignore (Bytes.length payload))
  in
  Gc.full_major ();
  Alcotest.(check bool) "payload pinned while scheduled" true (Weak.check weak 0);
  Sim.cancel sim ev;
  Gc.full_major ();
  Alcotest.(check bool) "cancel released the closure payload" false (Weak.check weak 0);
  ignore (Sim.run sim);
  Alcotest.(check bool) "marked cancelled" true (Sim.cancelled sim ev)

let test_sim_cancel_after_fire_noop () =
  let sim = Sim.create () in
  let n = ref 0 in
  let ev = Sim.at sim (Time.us 5) (fun () -> incr n) in
  ignore (Sim.run sim);
  Alcotest.(check int) "fired once" 1 !n;
  (* Cancelling an already-fired (or already-cancelled) event is a no-op:
     it must not raise, and must not perturb later scheduling. *)
  Sim.cancel sim ev;
  Sim.cancel sim ev;
  ignore (Sim.at sim (Time.us 10) (fun () -> incr n));
  ignore (Sim.run sim);
  Alcotest.(check int) "later events unaffected" 2 !n

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.at sim (Time.us i) (fun () -> incr count))
  done;
  ignore (Sim.run ~until:(Time.us 5) sim);
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check int) "pending remain" 5 (Sim.pending sim);
  ignore (Sim.run sim);
  Alcotest.(check int) "rest run" 10 !count

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.at sim (Time.us 10) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim (Time.us 5) (fun () -> log := "inner" :: !log))));
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int64) "clock" (Time.us 15) (Sim.now sim)

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Time.us 10) (fun () -> ()));
  ignore (Sim.run sim);
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Sim.at: scheduling in the past (5.00us < 10.00us)") (fun () ->
      ignore (Sim.at sim (Time.us 5) (fun () -> ())))

let test_sim_every () =
  let sim = Sim.create () in
  let ticks = ref [] in
  Sim.every sim ~every:(Time.us 10) ~until:(Time.us 45) (fun t -> ticks := t :: !ticks);
  ignore (Sim.run sim);
  Alcotest.(check (list int64))
    "periodic ticks"
    [ Time.us 10; Time.us 20; Time.us 30; Time.us 40 ]
    (List.rev !ticks)

let test_sim_run_advances_clock_to_until () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Time.us 1) (fun () -> ()));
  ignore (Sim.run ~until:(Time.ms 1) sim);
  Alcotest.(check int64) "clock hits until" (Time.ms 1) (Sim.now sim)

let test_sim_every_nonpositive_raises () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero period" (Invalid_argument "Sim.every: non-positive period")
    (fun () -> Sim.every sim ~every:Time.zero ~until:(Time.us 10) (fun _ -> ()))

let test_sim_every_until_before_first_tick () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim ~every:(Time.us 10) ~until:(Time.us 5) (fun _ -> incr ticks);
  ignore (Sim.run sim);
  Alcotest.(check int) "no ticks when until < first tick" 0 !ticks;
  Alcotest.(check int) "nothing left pending" 0 (Sim.pending sim)

let test_sim_every_overflow_guard () =
  (* A period of Time.infinity: the first tick lands exactly at infinity;
     computing the second would wrap int64.  The guard must stop the chain
     instead of raising "scheduling in the past" from inside the loop. *)
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim ~every:Time.infinity ~until:Time.infinity (fun _ -> incr ticks);
  ignore (Sim.run sim);
  Alcotest.(check int) "one tick, then the wrap guard stops the chain" 1 !ticks

let test_sim_live_pending_excludes_cancelled () =
  let sim = Sim.create () in
  let evs = List.init 5 (fun i -> Sim.at sim (Time.us (i + 1)) (fun () -> ())) in
  List.iteri (fun i ev -> if i < 3 then Sim.cancel sim ev) evs;
  Alcotest.(check int) "pending still counts cancelled entries" 5 (Sim.pending sim);
  Alcotest.(check int) "live_pending excludes cancelled" 2 (Sim.live_pending sim);
  ignore (Sim.run sim);
  Alcotest.(check int) "drained" 0 (Sim.live_pending sim);
  Alcotest.(check int) "only the live two fired" 2 (Sim.events_executed sim)

let test_sim_backend_selection () =
  Alcotest.(check bool) "default is wheel" true (Sim.backend (Sim.create ()) = Sim.Wheel);
  Alcotest.(check bool) "getter agrees" true (Sim.get_default_backend () = Sim.Wheel);
  let explicit = Sim.create ~backend:Sim.Heap () in
  Alcotest.(check bool) "explicit heap" true (Sim.backend explicit = Sim.Heap);
  let saved = Sim.get_default_backend () in
  Sim.set_default_backend Sim.Heap;
  let implicit = Sim.create () in
  Sim.set_default_backend saved;
  Alcotest.(check bool) "default follows selection" true (Sim.backend implicit = Sim.Heap)

let test_sim_wheel_backend_runs () =
  let sim = Sim.create ~backend:Sim.Wheel () in
  let log = ref [] in
  ignore (Sim.at sim (Time.us 30) (fun () -> log := 3 :: !log));
  ignore (Sim.at sim (Time.us 10) (fun () -> log := 1 :: !log));
  ignore (Sim.at sim (Time.us 20) (fun () -> log := 2 :: !log));
  (* A periodic daemon must not keep the wheel-backed loop alive. *)
  Sim.every_daemon sim ~every:(Time.us 7) (fun _ -> ());
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" (Time.us 30) (Sim.now sim)

(* Full Sim-level backend equivalence: identical schedule / nested
   schedule / cancel plans must execute the same events at the same
   times in the same order on both backends. *)
let prop_sim_backends_equivalent =
  QCheck.Test.make ~name:"Sim trace identical on heap and wheel backends" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 2_000_000) (int_range 0 9)))
    (fun plan ->
      let trace backend =
        let sim = Sim.create ~backend () in
        let log = Buffer.create 256 in
        let evs = ref [] in
        List.iteri
          (fun i (t, k) ->
            if k < 7 then begin
              let ev =
                Sim.at sim (Int64.of_int t) (fun () ->
                    Buffer.add_string log (Printf.sprintf "%d@%Ld;" i (Sim.now sim));
                    if k mod 3 = 0 then
                      ignore
                        (Sim.after sim
                           (Int64.of_int ((i * 17) + 1))
                           (fun () ->
                             Buffer.add_string log
                               (Printf.sprintf "n%d@%Ld;" i (Sim.now sim)))))
              in
              evs := ev :: !evs
            end
            else begin
              match !evs with
              | [] -> ()
              | l -> Sim.cancel sim (List.nth l (t mod List.length l))
            end)
          plan;
        ignore (Sim.run sim);
        (Buffer.contents log, Sim.events_executed sim, Sim.now sim)
      in
      trace Sim.Heap = trace Sim.Wheel)

(* ------------------------------------------------------------------ *)
(* Resource                                                           *)
(* ------------------------------------------------------------------ *)

let test_resource_single_server_fifo () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let finishes = ref [] in
  for i = 1 to 3 do
    Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished ->
        finishes := (i, finished) :: !finishes)
  done;
  ignore (Sim.run sim);
  let expected = [ (1, Time.us 10); (2, Time.us 20); (3, Time.us 30) ] in
  Alcotest.(check (list (pair int int64))) "sequential service" expected (List.rev !finishes)

let test_resource_parallel_servers () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:2 in
  let finishes = ref [] in
  for i = 1 to 4 do
    Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished ->
        finishes := (i, finished) :: !finishes)
  done;
  ignore (Sim.run sim);
  let expected =
    [ (1, Time.us 10); (2, Time.us 10); (3, Time.us 20); (4, Time.us 20) ]
  in
  Alcotest.(check (list (pair int int64))) "two at a time" expected (List.rev !finishes)

let test_resource_priority () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let order = ref [] in
  (* Occupy the server, then enqueue low before high: high must win. *)
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ ->
      order := "first" :: !order);
  Resource.submit r ~priority:Resource.Low ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> order := "low" :: !order);
  Resource.submit r ~priority:Resource.High ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> order := "high" :: !order);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "high preempts queue" [ "first"; "high"; "low" ]
    (List.rev !order)

let test_resource_nonpreemptive () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  let high_started = ref Time.zero in
  Resource.submit r ~priority:Resource.Low ~service:(Time.ms 5)
    (fun ~started:_ ~finished:_ -> ());
  ignore
    (Sim.at sim (Time.us 1) (fun () ->
         Resource.submit r ~priority:Resource.High ~service:(Time.us 1)
           (fun ~started ~finished:_ -> high_started := started)));
  ignore (Sim.run sim);
  Alcotest.(check int64) "high waits behind in-service low" (Time.ms 5) !high_started

let test_resource_utilization () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  Resource.submit r ~service:(Time.us 50) (fun ~started:_ ~finished:_ -> ());
  ignore (Sim.run ~until:(Time.us 100) sim);
  Alcotest.(check bool) "50% busy" true (abs_float (Resource.utilization r -. 0.5) < 1e-6);
  Alcotest.(check int) "completed" 1 (Resource.completed r)

let test_resource_queue_depth_visibility () =
  let sim = Sim.create () in
  let r = Resource.create sim ~servers:1 in
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ -> ());
  Resource.submit r ~service:(Time.us 10) (fun ~started:_ ~finished:_ -> ());
  Resource.submit r ~priority:Resource.Low ~service:(Time.us 10)
    (fun ~started:_ ~finished:_ -> ());
  Alcotest.(check int) "one busy" 1 (Resource.busy r);
  Alcotest.(check (pair int int)) "queues" (1, 1) (Resource.queued r);
  ignore (Sim.run sim)

let prop_resource_conserves_jobs =
  QCheck.Test.make ~name:"resource completes every submitted job" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 50) (int_range 1 1000)))
    (fun (servers, services) ->
      let sim = Sim.create () in
      let r = Resource.create sim ~servers in
      let done_ = ref 0 in
      List.iter
        (fun s ->
          Resource.submit r ~service:(Time.ns s) (fun ~started:_ ~finished:_ -> incr done_))
        services;
      ignore (Sim.run sim);
      !done_ = List.length services && Resource.completed r = List.length services)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "time",
      [
        Alcotest.test_case "constructors" `Quick test_time_constructors;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "pretty-print" `Quick test_time_pp;
      ] );
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "float in range" `Quick test_prng_float_range;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
        Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
        Alcotest.test_case "bernoulli bias" `Quick test_prng_bool_bias;
        qcheck prop_prng_int_bounds;
      ] );
    ( "heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "pop_if_le horizon" `Quick test_heap_pop_if_le_horizon;
        Alcotest.test_case "clear releases values" `Quick test_heap_clear_releases_values;
        Alcotest.test_case "pop blanks vacated slots" `Quick test_heap_pop_blanks_slots;
        Alcotest.test_case "clear keeps capacity" `Quick test_heap_clear_keeps_capacity;
        qcheck prop_heap_sorts;
        qcheck prop_heap_pop_if_le_matches_guarded_pop;
      ] );
    ( "wheel",
      [
        Alcotest.test_case "ordering" `Quick test_wheel_ordering;
        Alcotest.test_case "FIFO on ties" `Quick test_wheel_fifo_ties;
        Alcotest.test_case "pop_if_le horizon" `Quick test_wheel_pop_if_le_horizon;
        Alcotest.test_case "cross-level and overflow" `Quick test_wheel_cross_level_and_overflow;
        Alcotest.test_case "push below cursor" `Quick test_wheel_push_below_cursor;
        Alcotest.test_case "clear and reuse" `Quick test_wheel_clear_reuse;
        qcheck prop_wheel_matches_heap;
      ] );
    ( "sim",
      [
        Alcotest.test_case "event ordering" `Quick test_sim_ordering;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "cancel releases closure immediately" `Quick
          test_sim_cancel_releases_closure;
        Alcotest.test_case "cancel after fire is a no-op" `Quick test_sim_cancel_after_fire_noop;
        Alcotest.test_case "run until" `Quick test_sim_until;
        Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
        Alcotest.test_case "past scheduling raises" `Quick test_sim_past_raises;
        Alcotest.test_case "periodic every" `Quick test_sim_every;
        Alcotest.test_case "clock advances to until" `Quick test_sim_run_advances_clock_to_until;
        Alcotest.test_case "every rejects non-positive period" `Quick
          test_sim_every_nonpositive_raises;
        Alcotest.test_case "every with until before first tick" `Quick
          test_sim_every_until_before_first_tick;
        Alcotest.test_case "every overflow guard" `Quick test_sim_every_overflow_guard;
        Alcotest.test_case "live_pending excludes cancelled" `Quick
          test_sim_live_pending_excludes_cancelled;
        Alcotest.test_case "backend selection" `Quick test_sim_backend_selection;
        Alcotest.test_case "wheel backend runs" `Quick test_sim_wheel_backend_runs;
        qcheck prop_sim_backends_equivalent;
      ] );
    ( "resource",
      [
        Alcotest.test_case "single-server FIFO" `Quick test_resource_single_server_fifo;
        Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
        Alcotest.test_case "priority dispatch" `Quick test_resource_priority;
        Alcotest.test_case "non-preemptive" `Quick test_resource_nonpreemptive;
        Alcotest.test_case "utilization accounting" `Quick test_resource_utilization;
        Alcotest.test_case "queue visibility" `Quick test_resource_queue_depth_visibility;
        qcheck prop_resource_conserves_jobs;
      ] );
  ]
