(* Tests for the telemetry layer: ring wraparound, disabled-path no-ops,
   Chrome trace JSON well-formedness (via a minimal JSON parser), the
   components-tile-end-to-end invariant, and byte-identical telemetry
   reports under Runner domain parallelism. *)

open Reflex_engine
open Reflex_client
open Reflex_telemetry
open Reflex_experiments

(* ------------------------------------------------------------------ *)
(* Span / decision ring wraparound                                    *)
(* ------------------------------------------------------------------ *)

let test_span_ring_wraparound () =
  let t = Telemetry.create ~span_capacity:8 () in
  for i = 0 to 19 do
    Telemetry.span t ~now:(Int64.of_int (i * 10)) ~tenant:1 ~req_id:(Int64.of_int i)
      Telemetry.Stage.Client_submit
  done;
  Alcotest.(check int) "retained" 8 (Telemetry.span_count t);
  Alcotest.(check int) "recorded" 20 (Telemetry.spans_recorded t);
  Alcotest.(check int) "dropped" 12 (Telemetry.spans_dropped t);
  (* Oldest-first iteration over the retained window must yield exactly
     the 8 newest spans: req_ids 12..19. *)
  let seen = ref [] in
  Telemetry.iter_spans t (fun ~time:_ ~tenant:_ ~req_id ~stage:_ ->
      seen := Int64.to_int req_id :: !seen);
  Alcotest.(check (list int)) "newest kept, oldest-first" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.rev !seen)

let test_decision_ring_wraparound () =
  let t = Telemetry.create ~decision_capacity:4 () in
  for i = 0 to 9 do
    Telemetry.decision t ~now:(Int64.of_int i) ~thread:0 ~tenant:i Telemetry.Decision.Throttled
      ~amount:(float_of_int i) ~tokens_after:0.0
  done;
  Alcotest.(check int) "retained" 4 (Telemetry.decision_count t);
  Alcotest.(check int) "recorded" 10 (Telemetry.decisions_recorded t);
  let seen = ref [] in
  Telemetry.iter_decisions t
    (fun ~time:_ ~thread:_ ~tenant ~kind:_ ~amount:_ ~tokens_after:_ ->
      seen := tenant :: !seen);
  Alcotest.(check (list int)) "newest kept" [ 6; 7; 8; 9 ] (List.rev !seen)

let test_disabled_noop () =
  let t = Telemetry.disabled in
  Telemetry.span t ~now:0L ~tenant:1 ~req_id:1L Telemetry.Stage.Server_rx;
  Telemetry.decision t ~now:0L ~thread:0 ~tenant:1 Telemetry.Decision.Donated ~amount:1.0
    ~tokens_after:1.0;
  let c = Telemetry.counter t "x/y" in
  Telemetry.incr c;
  Telemetry.sample t ~now:0L;
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  Alcotest.(check int) "no spans" 0 (Telemetry.span_count t);
  Alcotest.(check int) "no decisions" 0 (Telemetry.decision_count t);
  Alcotest.(check int) "no samples" 0 (Telemetry.sample_count t);
  Alcotest.(check (list string)) "no metrics" [] (Telemetry.metric_names t)

let test_sample_sorted () =
  let t = Telemetry.create () in
  (* Register in non-sorted order; samples must come out name-sorted. *)
  List.iter
    (fun n -> Telemetry.register_gauge t n (fun () -> 1.0))
    [ "z/last"; "a/first"; "m/mid" ];
  Telemetry.sample t ~now:0L;
  match Telemetry.samples t with
  | [ s ] ->
    let names = Array.to_list (Array.map fst s.Telemetry.s_values) in
    Alcotest.(check (list string)) "sorted" [ "a/first"; "m/mid"; "z/last" ] names
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* A small traced world                                               *)
(* ------------------------------------------------------------------ *)

(* One LC tenant + one BE write flood on one core, traced end to end.
   Small enough for unit tests, busy enough that queueing and grants
   actually happen. *)
let traced_world ?(rate = 30_000.0) () =
  let telemetry = Telemetry.create () in
  let w = Common.make_reflex ~n_threads:1 ~telemetry () in
  let sim = w.Common.sim in
  Telemetry.start_sampler telemetry sim ();
  let until = Time.add (Sim.now sim) (Time.sec 1) in
  let lc =
    Common.client_of w ~slo:(Common.lc_slo ~latency_us:500 ~iops:50_000 ~read_pct:80) ~tenant:1 ()
  in
  let g_lc =
    Load_gen.open_loop sim ~client:lc ~pacing:`Cbr ~mix:`Deterministic ~rate ~read_ratio:0.8
      ~bytes:4096 ~until ~seed:7L ()
  in
  let be = Common.client_of w ~slo:(Common.be_slo ~read_pct:10 ()) ~tenant:101 () in
  let g_be =
    Load_gen.closed_loop sim ~client:be ~depth:16 ~read_ratio:0.1 ~bytes:4096 ~until ~seed:11L ()
  in
  Common.measure_generators sim [ g_lc; g_be ] ~warmup:(Time.ms 20) ~window:(Time.ms 60);
  telemetry

let test_components_tile () =
  let tel = traced_world () in
  let bds = Trace_export.breakdowns tel in
  Alcotest.(check bool) "some complete requests" true (List.length bds > 100);
  List.iter
    (fun b ->
      let sum = Array.fold_left Time.add 0L b.Trace_export.b_components in
      Alcotest.(check int64)
        (Printf.sprintf "components sum to total (t%d req %Ld)" b.Trace_export.b_tenant
           b.Trace_export.b_req_id)
        b.Trace_export.b_total sum;
      Array.iter
        (fun c -> Alcotest.(check bool) "component non-negative" true Time.(c >= 0L))
        b.Trace_export.b_components)
    bds

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (validation only)                              *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            for _ = 1 to 4 do
              (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> raise (Bad "bad \\u escape"));
              advance ()
            done;
            Buffer.add_char b '?'
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let sub = String.sub s start (!pos - start) in
      match float_of_string_opt sub with
      | Some f -> f
      | None -> raise (Bad ("bad number: " ^ sub))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
          in
          members []
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
          in
          items []
      | 't' -> pos := !pos + 4; Bool true
      | 'f' -> pos := !pos + 5; Bool false
      | 'n' -> pos := !pos + 4; Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing garbage at %d" !pos));
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let test_chrome_json_roundtrip () =
  let tel = traced_world () in
  let json = Trace_export.to_chrome_json tel in
  let v =
    try Json.parse json with Json.Bad m -> Alcotest.failf "trace JSON did not parse: %s" m
  in
  (match Json.mem "displayTimeUnit" v with
  | Some (Json.Str _) -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit");
  let events =
    match Json.mem "traceEvents" v with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let n_complete = List.length (Trace_export.breakdowns tel) in
  let xs =
    List.filter (fun e -> Json.mem "ph" e = Some (Json.Str "X")) events
  in
  Alcotest.(check int) "7 duration events per complete request"
    (n_complete * Telemetry.Stage.component_count)
    (List.length xs);
  (* Every event carries the required trace_event fields with sane types. *)
  List.iter
    (fun e ->
      (match Json.mem "name" e with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "event missing name");
      (match Json.mem "ts" e with
      | Some (Json.Num ts) -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
      | _ -> Alcotest.fail "event missing ts");
      match (Json.mem "pid" e, Json.mem "tid" e) with
      | Some (Json.Num _), Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "event missing pid/tid")
    events;
  (* Duration events of one request tile its interval: per (pid, tid),
     sum(dur) = max(ts+dur) - min(ts). *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match (Json.mem "pid" e, Json.mem "tid" e, Json.mem "ts" e, Json.mem "dur" e) with
      | Some (Json.Num pid), Some (Json.Num tid), Some (Json.Num ts), Some (Json.Num dur) ->
        let k = (pid, tid) in
        let sum, lo, hi =
          match Hashtbl.find_opt tbl k with Some x -> x | None -> (0.0, infinity, neg_infinity)
        in
        Hashtbl.replace tbl k (sum +. dur, Float.min lo ts, Float.max hi (ts +. dur))
      | _ -> ())
    xs;
  Hashtbl.iter
    (fun (pid, tid) (sum, lo, hi) ->
      if Float.abs (sum -. (hi -. lo)) > 1e-3 then
        Alcotest.failf "request (pid=%g,tid=%g): components %.3fus <> span %.3fus" pid tid sum
          (hi -. lo))
    tbl

(* ------------------------------------------------------------------ *)
(* Determinism under Runner parallelism                               *)
(* ------------------------------------------------------------------ *)

(* Each sweep point builds its own world with its own telemetry, so the
   full observability output (sampled metrics + component summary + SLO
   audit) must be byte-identical between a parallel and a serial run. *)
let test_parallel_determinism () =
  let point rate =
    let tel = traced_world ~rate () in
    Telemetry.metrics_report tel ^ Trace_export.component_report tel ^ Slo_audit.report tel
  in
  let rates = [ 20_000.0; 35_000.0; 50_000.0 ] in
  let serial = Runner.map ~jobs:1 point rates in
  let parallel = Runner.map ~jobs:2 point rates in
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check string) (Printf.sprintf "point %d byte-identical" i) s p)
    (List.combine serial parallel)

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "span ring wraparound keeps newest" `Quick test_span_ring_wraparound;
        Alcotest.test_case "decision ring wraparound keeps newest" `Quick
          test_decision_ring_wraparound;
        Alcotest.test_case "disabled instance is inert" `Quick test_disabled_noop;
        Alcotest.test_case "samples are name-sorted" `Quick test_sample_sorted;
        Alcotest.test_case "components tile end-to-end latency" `Slow test_components_tile;
        Alcotest.test_case "chrome trace JSON round-trips" `Slow test_chrome_json_roundtrip;
        Alcotest.test_case "parallel runs byte-identical to serial" `Slow
          test_parallel_determinism;
      ] );
  ]
