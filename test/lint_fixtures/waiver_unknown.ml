(* A waiver naming an unknown rule-id must itself be a finding. *)

(* reflex-lint: allow det/nonexistent — typo'd rule id *)
let x = 1
