(* Deliberately violates guard/telemetry (line 4): the record call is
   not under an enabled-guard conditional. *)

let bump c = Telemetry.incr c
