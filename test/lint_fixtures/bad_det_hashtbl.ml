(* Deliberately violates det/hashtbl-order (line 4): builds a report
   list in unspecified table order without sorting. *)

let report tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
