(* Clean under hot/alloc: no allocating constructs in [drain]. *)

let drain q =
  while not (Queue.is_empty q) do
    ignore (Queue.pop q)
  done
