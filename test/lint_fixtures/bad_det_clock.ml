(* Deliberately violates det/clock (line 3). *)

let now_us () = Unix.gettimeofday () *. 1e6
