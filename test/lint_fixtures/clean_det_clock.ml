(* Clean: time comes from the simulation clock. *)

let now_us sim_now = sim_now *. 1e6
