(* Clean: the effectful record site is behind the enabled bit. *)

let bump ~tel_on c = if tel_on then Telemetry.incr c
