(* Clean: key-sorted before anything order-sensitive sees it. *)

let report tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
