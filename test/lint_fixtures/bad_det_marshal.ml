(* Deliberately violates det/marshal (line 3). *)

let dump x = Marshal.to_string x []
