(* Deliberately violates det/random (line 3). *)

let jitter () = Random.float 1.0
