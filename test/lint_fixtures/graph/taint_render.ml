(* Fixture: byte-identity sink reaching Random through a module alias
   the per-file rules cannot see. *)
module R = Taint_src

let render () = string_of_int (R.noise ())
