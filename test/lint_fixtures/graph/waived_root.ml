(* Fixture: the leaf's inferred alloc carries an inline waiver — the
   waiver is used, counted, and not stale. *)
let wpump x = Waived_leaf.wconsume x
let () = ignore (wpump 1)
