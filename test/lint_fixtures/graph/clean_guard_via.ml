(* Fixture: clean twin — the caller crosses the enabled-guard, so the
   guarded edge discharges the callee's telemetry obligation. *)
module T = Telemetry

let tel_on = false
let emit s = T.incr s "requests"
let tick s = if tel_on then emit s
let () = ignore tick
