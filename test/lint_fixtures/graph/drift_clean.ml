(* Fixture: clean twin — [kept] is still referenced. *)
let kept x = x + 1
let use_kept x = kept x
let () = ignore (use_kept 2)
