(* Fixture: the tuple below is inferred hot but waived with a reason. *)
let wconsume x =
  (* reflex-lint: allow hot/transitive-alloc — fixture: the pair is the contract *)
  let pair = (x, x) in
  fst pair
