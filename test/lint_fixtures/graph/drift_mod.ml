(* Fixture: [orphan] has a hot_path entry but is referenced nowhere —
   the entry must be reported as hot/drift at its manifest line. *)
let orphan x = x + 1
