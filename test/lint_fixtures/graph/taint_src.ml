(* Fixture: deliberate nondeterminism source.  det/random is allowed for
   this file in graph.manifest so the interprocedural det/taint pass —
   firing at the sink — is what the test observes. *)
let noise () = Random.int 100
