(* reflex-lint: allow hot/transitive-alloc — fixture: nothing left here for this waiver to suppress *)
let quiet x = x + 1
