(* Fixture: clean twin — the sink's callees are pure. *)
let fmt x = string_of_int (x + 1)
let render_clean () = fmt 41
