(* Fixture: [grow] allocates but is cold_path policy; [bump] is clean. *)
let grow x = (x, x)
let bump x = if x > 7 then fst (grow x) else x
