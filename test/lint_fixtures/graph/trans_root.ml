(* Fixture: seed of the hot/transitive-alloc two-hop chain. *)
let pump x = Trans_mid.step (x + 1)
let () = ignore (pump 3)
