(* Fixture: alias-resolved telemetry call, unguarded in hot-set code. *)
module T = Telemetry

let emit s = T.incr s "requests"
let tick s = emit s
let () = ignore tick
