(* Fixture: second hop; the tuple on line 3 is the inferred finding. *)
let consume x =
  let pair = (x, x) in
  fst pair
