(* Fixture: clean twin — the allocating helper is a cold_path stop. *)
let loop x = Cold_helper.bump x
let () = ignore (loop 5)
