(* Fixture: first hop of the chain; allocates nothing itself. *)
let step x = Trans_leaf.consume (x * 2)
