(* Clean: good_mod.mli exists alongside. *)

let id x = x
