val id : 'a -> 'a
