(* Deliberately violates iface/mli: no matching bad_mod.mli exists. *)

let id x = x
