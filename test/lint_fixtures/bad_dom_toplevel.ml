(* Deliberately violates dom/toplevel-state (line 3). *)

let cache = Hashtbl.create 7

let lookup k = Hashtbl.find_opt cache k
