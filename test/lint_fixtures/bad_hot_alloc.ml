(* Deliberately violates hot/alloc (line 4) when [drain] is listed in
   the manifest hot_path section: allocates a tuple per call. *)

let drain q = (Queue.pop q, Queue.pop q)
