(* Clean: randomness comes through an injected stream. *)

let jitter prng scale = prng () *. scale
