(* Clean: serialization via a stable hand-rolled codec. *)

let dump x = string_of_int x
