(* A waiver without a reason must itself be a finding, and must not
   suppress the violation below it. *)

(* reflex-lint: allow det/clock *)
let now_us () = Unix.gettimeofday () *. 1e6
