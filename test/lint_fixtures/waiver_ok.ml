(* A real violation, locally waived with a written reason. *)

(* reflex-lint: allow det/clock — fixture: demonstrates a justified waiver *)
let now_us () = Unix.gettimeofday () *. 1e6
