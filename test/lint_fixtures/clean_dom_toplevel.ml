(* Clean: state is allocated per instance, not at module toplevel. *)

type t = { cache : (int, int) Hashtbl.t }

let create () = { cache = Hashtbl.create 7 }
