(* Tests for the ReFlex server core: ACLs, control plane, dataplane
   threads, and the protocol-speaking server end-to-end with clients. *)

open Reflex_engine
open Reflex_flash
open Reflex_net
open Reflex_proto
open Reflex_qos
open Reflex_core
open Reflex_client

(* ------------------------------------------------------------------ *)
(* Acl                                                                *)
(* ------------------------------------------------------------------ *)

let test_acl_default_deny () =
  let acl = Acl.create () in
  Alcotest.(check bool) "conn denied" false (Acl.connection_allowed acl ~tenant:1);
  Alcotest.(check bool) "io denied" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Read ~lba:0L ~lba_count:1 = Acl.Denied_permission)

let test_acl_grant () =
  let acl = Acl.create () in
  Acl.grant acl ~tenant:1 { Acl.lba_lo = 100L; lba_hi = 200L; can_read = true; can_write = false };
  Alcotest.(check bool) "conn ok" true (Acl.connection_allowed acl ~tenant:1);
  Alcotest.(check bool) "read in range" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Read ~lba:150L ~lba_count:8 = Acl.Allowed);
  Alcotest.(check bool) "read to edge ok" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Read ~lba:199L ~lba_count:1 = Acl.Allowed);
  Alcotest.(check bool) "read past range" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Read ~lba:199L ~lba_count:2 = Acl.Denied_range);
  Alcotest.(check bool) "read below range" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Read ~lba:99L ~lba_count:1 = Acl.Denied_range);
  Alcotest.(check bool) "write not permitted" true
    (Acl.check acl ~tenant:1 ~kind:Io_op.Write ~lba:150L ~lba_count:1 = Acl.Denied_permission);
  Acl.revoke acl ~tenant:1;
  Alcotest.(check bool) "revoked" false (Acl.connection_allowed acl ~tenant:1)

let test_acl_permissive () =
  let acl = Acl.create_permissive ~lba_hi:1000L () in
  Alcotest.(check bool) "any tenant" true (Acl.connection_allowed acl ~tenant:42);
  Alcotest.(check bool) "rw ok" true
    (Acl.check acl ~tenant:42 ~kind:Io_op.Write ~lba:0L ~lba_count:1 = Acl.Allowed);
  Alcotest.(check bool) "range still enforced" true
    (Acl.check acl ~tenant:42 ~kind:Io_op.Read ~lba:999L ~lba_count:2 = Acl.Denied_range)

(* ------------------------------------------------------------------ *)
(* Costs                                                              *)
(* ------------------------------------------------------------------ *)

let test_conn_factor () =
  let c = Costs.default in
  Alcotest.(check (float 1e-9)) "below threshold" 1.0 (Costs.conn_factor c ~conns:1000);
  Alcotest.(check (float 1e-9)) "at threshold" 1.0
    (Costs.conn_factor c ~conns:c.Costs.conn_penalty_threshold);
  Alcotest.(check bool) "beyond threshold grows" true
    (Costs.conn_factor c ~conns:(c.Costs.conn_penalty_threshold + 4000) > 1.3)

(* ------------------------------------------------------------------ *)
(* Control_plane                                                      *)
(* ------------------------------------------------------------------ *)

let make_cp () =
  let profile = Device_profile.device_a in
  Control_plane.create ~profile ~cost_model:(Cost_model.of_profile profile) ()

let lc_20k = Slo.latency_critical ~latency_us:2000 ~iops:20_000.0 ~read_pct:90

let test_cp_admits_be_always () =
  let cp = make_cp () in
  for i = 1 to 50 do
    Alcotest.(check bool) "BE admitted" true
      (Control_plane.admit cp ~id:i ~slo:(Slo.best_effort ()) = Control_plane.Admitted)
  done

let test_cp_admission_limit_fig6a () =
  (* Paper §5.5: at a 2ms SLO, device A admits 12 tenants of
     20K IOPS / 90% reads before write interference exhausts capacity. *)
  let cp = make_cp () in
  let admitted = ref 0 in
  (try
     for i = 1 to 20 do
       match Control_plane.admit cp ~id:i ~slo:lc_20k with
       | Control_plane.Admitted -> incr admitted
       | Control_plane.Rejected_no_capacity | Control_plane.Rejected_duplicate -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Printf.sprintf "admits %d tenants (paper: 12)" !admitted)
    true
    (!admitted >= 10 && !admitted <= 14)

let test_cp_strictest_slo_governs () =
  let cp = make_cp () in
  ignore (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:2000 ~iops:1000.0 ~read_pct:100));
  let k_loose = Control_plane.total_token_rate cp in
  ignore (Control_plane.admit cp ~id:2 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100));
  let k_strict = Control_plane.total_token_rate cp in
  Alcotest.(check bool)
    (Printf.sprintf "stricter SLO lowers rate (%.0fK -> %.0fK)" (k_loose /. 1e3) (k_strict /. 1e3))
    true (k_strict < k_loose);
  Alcotest.(check (option (float 1.0))) "strictest" (Some 500.0)
    (Control_plane.strictest_latency_us cp);
  Control_plane.forget cp ~id:2;
  Alcotest.(check (float 1.0)) "restored" k_loose (Control_plane.total_token_rate cp)

let test_cp_fig5_rates () =
  (* Scenario 1 of Figure 5: A reserves 120K tokens/s, B 196K; the two BE
     tenants split what remains. *)
  let cp = make_cp () in
  ignore (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:120_000.0 ~read_pct:100));
  ignore (Control_plane.admit cp ~id:2 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:70_000.0 ~read_pct:80));
  ignore (Control_plane.admit cp ~id:3 ~slo:(Slo.best_effort ~read_pct:95 ()));
  ignore (Control_plane.admit cp ~id:4 ~slo:(Slo.best_effort ~read_pct:25 ()));
  Alcotest.(check (option (float 1.0))) "tenant A rate" (Some 120_000.0)
    (Control_plane.token_rate_for cp ~id:1);
  Alcotest.(check (option (float 1.0))) "tenant B rate" (Some 196_000.0)
    (Control_plane.token_rate_for cp ~id:2);
  Alcotest.(check (float 1.0)) "LC reserve" 316_000.0 (Control_plane.lc_reserved_rate cp);
  let share = Control_plane.be_share cp in
  (* Paper reports 52K each on its 420K-token device; ours calibrates a
     slightly different K, but the share must be positive and equal. *)
  Alcotest.(check bool) (Printf.sprintf "BE share %.0fK > 30K" (share /. 1e3)) true
    (share > 30_000.0);
  Alcotest.(check (option (float 1.0))) "C gets the share" (Some share)
    (Control_plane.token_rate_for cp ~id:3)

let admission = Alcotest.testable Fmt.(using (function
  | Control_plane.Admitted -> "admitted"
  | Control_plane.Rejected_no_capacity -> "rejected_no_capacity"
  | Control_plane.Rejected_duplicate -> "rejected_duplicate") string)
  ( = )

let test_cp_duplicate_id () =
  (* Duplicate admit is a well-defined rejection, never an exception, and
     leaves the original registration (including its SLO) untouched. *)
  let cp = make_cp () in
  Alcotest.check admission "first" Control_plane.Admitted
    (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100));
  let rate_before = Control_plane.token_rate_for cp ~id:1 in
  Alcotest.check admission "duplicate BE" Control_plane.Rejected_duplicate
    (Control_plane.admit cp ~id:1 ~slo:(Slo.best_effort ()));
  Alcotest.check admission "duplicate LC" Control_plane.Rejected_duplicate
    (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:200 ~iops:9_000.0 ~read_pct:100));
  Alcotest.(check int) "still one tenant" 1 (Control_plane.registered_count cp);
  Alcotest.(check (option (float 1.0))) "original SLO kept" rate_before
    (Control_plane.token_rate_for cp ~id:1);
  (* Re-registering after forget succeeds. *)
  Control_plane.forget cp ~id:1;
  Alcotest.check admission "re-admit after forget" Control_plane.Admitted
    (Control_plane.admit cp ~id:1 ~slo:(Slo.best_effort ()))

let test_cp_forget_unknown_idempotent () =
  (* Forgetting an id that was never admitted (or already forgotten) is a
     no-op: the unregister path may be retried. *)
  let cp = make_cp () in
  Control_plane.forget cp ~id:42;
  ignore (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:1000.0 ~read_pct:100));
  let reserved = Control_plane.lc_reserved_rate cp in
  Control_plane.forget cp ~id:2;
  Alcotest.(check (float 1.0)) "reservation untouched by unknown forget" reserved
    (Control_plane.lc_reserved_rate cp);
  Alcotest.(check int) "still registered" 1 (Control_plane.registered_count cp);
  Control_plane.forget cp ~id:1;
  Control_plane.forget cp ~id:1;
  Alcotest.(check int) "empty" 0 (Control_plane.registered_count cp)

let test_cp_capacity_factor () =
  (* Degradation re-pricing: the factor scales the sustainable token rate,
     shrinking BE shares and admission headroom; 1.0 restores exactly. *)
  let cp = make_cp () in
  ignore (Control_plane.admit cp ~id:1 ~slo:(Slo.latency_critical ~latency_us:500 ~iops:50_000.0 ~read_pct:100));
  ignore (Control_plane.admit cp ~id:2 ~slo:(Slo.best_effort ()));
  let rate0 = Control_plane.total_token_rate cp in
  let share0 = Control_plane.be_share cp in
  Control_plane.set_capacity_factor cp 0.5;
  Alcotest.(check (float 1e-6)) "factor readback" 0.5 (Control_plane.capacity_factor cp);
  Alcotest.(check (float 1.0)) "rate halves" (rate0 /. 2.0) (Control_plane.total_token_rate cp);
  Alcotest.(check bool) "BE share shrinks" true (Control_plane.be_share cp < share0);
  Control_plane.set_capacity_factor cp 1.0;
  Alcotest.(check (float 1.0)) "restored" rate0 (Control_plane.total_token_rate cp);
  Alcotest.(check (float 1.0)) "share restored" share0 (Control_plane.be_share cp);
  Alcotest.check_raises "zero rejected" (Invalid_argument "Control_plane.set_capacity_factor: factor in (0,1]")
    (fun () -> Control_plane.set_capacity_factor cp 0.0);
  Alcotest.check_raises "above one rejected" (Invalid_argument "Control_plane.set_capacity_factor: factor in (0,1]")
    (fun () -> Control_plane.set_capacity_factor cp 1.5)

let test_cp_default_curve_monotone () =
  let f = Control_plane.default_token_rate_fn Device_profile.device_a in
  Alcotest.(check bool) "monotone" true
    (f ~latency_us:200.0 < f ~latency_us:500.0 && f ~latency_us:500.0 < f ~latency_us:2000.0);
  Alcotest.(check bool) "bounded by capacity" true
    (f ~latency_us:1e6 <= Device_profile.token_capacity Device_profile.device_a +. 1.0)

(* ------------------------------------------------------------------ *)
(* End-to-end helpers                                                 *)
(* ------------------------------------------------------------------ *)

let setup ?acl ?(n_threads = 1) ?max_threads () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server = Server.create sim ~fabric ?acl ~n_threads ?max_threads () in
  (sim, fabric, server)

let connect_client sim fabric server ?(stack = Stack_model.ix_client) ?host () =
  Client_lib.connect sim fabric ~server_host:(Server.host server)
    ~accept:(Server.accept server) ~stack ?host ()

let register_ok sim client ~tenant ?slo () =
  let status = ref None in
  Client_lib.register client ~tenant ?slo (fun s -> status := Some s);
  ignore (Sim.run sim);
  match !status with
  | Some Message.Ok -> ()
  | Some s -> Alcotest.failf "registration failed: %s" (Message.status_to_string s)
  | None -> Alcotest.fail "no registration response"

(* ------------------------------------------------------------------ *)
(* Server end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let test_e2e_read_roundtrip () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let result = ref None in
  Client_lib.read client ~lba:42L ~len:4096 (fun status ~latency ->
      result := Some (status, latency));
  ignore (Sim.run sim);
  (match !result with
  | Some (Message.Ok, latency) ->
    let us = Time.to_float_us latency in
    (* Table 2: ReFlex with IX client, 4KB read ~ 99us average. *)
    Alcotest.(check bool) (Printf.sprintf "latency %.0fus in [80,130]" us) true
      (us > 80.0 && us < 130.0)
  | Some (s, _) -> Alcotest.failf "bad status %s" (Message.status_to_string s)
  | None -> Alcotest.fail "no response");
  Alcotest.(check int) "server counted it" 1 (Server.requests_completed server)

let test_e2e_write_roundtrip () =
  (* Steady-state queue-depth-1 writes (a cold-start single write pays an
     extra scheduling round or two waiting for its first tokens). *)
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let until = Time.ms 100 in
  let gen =
    Load_gen.closed_loop sim ~client ~depth:1 ~think:(Time.us 50) ~read_ratio:0.0 ~bytes:4096
      ~until ()
  in
  ignore (Sim.run ~until:(Time.ms 20) sim);
  Load_gen.mark_measurement_start gen;
  ignore (Sim.run sim);
  let us = Load_gen.mean_write_us gen in
  (* Table 2: ReFlex with IX client, 4KB write ~ 31us average. *)
  Alcotest.(check bool) (Printf.sprintf "latency %.0fus in [22,45]" us) true
    (us > 22.0 && us < 45.0)

let test_e2e_acl_denied_tenant () =
  let acl = Acl.create () in
  (* Only tenant 7 exists; tenant 8 may not even connect. *)
  Acl.grant acl ~tenant:7 { Acl.lba_lo = 0L; lba_hi = 1_000_000L; can_read = true; can_write = true };
  let sim, fabric, server = setup ~acl () in
  let client = connect_client sim fabric server () in
  let status = ref None in
  Client_lib.register client ~tenant:8 (fun s -> status := Some s);
  ignore (Sim.run sim);
  Alcotest.(check bool) "denied" true (!status = Some Message.Denied)

let test_e2e_out_of_range () =
  let acl = Acl.create () in
  Acl.grant acl ~tenant:1 { Acl.lba_lo = 0L; lba_hi = 1000L; can_read = true; can_write = true };
  let sim, fabric, server = setup ~acl () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let status = ref None in
  Client_lib.read client ~lba:5000L ~len:4096 (fun s ~latency:_ -> status := Some s);
  ignore (Sim.run sim);
  Alcotest.(check bool) "out of range" true (!status = Some Message.Out_of_range)

let test_e2e_read_only_namespace () =
  let acl = Acl.create () in
  Acl.grant acl ~tenant:1 { Acl.lba_lo = 0L; lba_hi = 1000L; can_read = true; can_write = false };
  let sim, fabric, server = setup ~acl () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let status = ref None in
  Client_lib.write client ~lba:1L ~len:4096 (fun s ~latency:_ -> status := Some s);
  ignore (Sim.run sim);
  Alcotest.(check bool) "write denied" true (!status = Some Message.Denied)

let test_e2e_no_capacity () =
  let sim, fabric, server = setup () in
  (* Demand far beyond device A's token rate at a tight SLO. *)
  let c1 = connect_client sim fabric server () in
  let slo1 =
    { Message.latency_us = 500; iops = 300_000; read_pct = 50; latency_critical = true }
  in
  let s1 = ref None in
  Client_lib.register c1 ~tenant:1 ~slo:slo1 (fun s -> s1 := Some s);
  ignore (Sim.run sim);
  Alcotest.(check bool) "over-demanding tenant rejected" true (!s1 = Some Message.No_capacity)

let test_e2e_unregister () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  Alcotest.(check int) "registered" 1 (Server.registered_tenants server);
  let done_ = ref false in
  Client_lib.unregister client (fun () -> done_ := true);
  ignore (Sim.run sim);
  Alcotest.(check bool) "unregistered callback" true !done_;
  Alcotest.(check int) "gone" 0 (Server.registered_tenants server)

let test_e2e_two_conns_share_tenant () =
  let sim, fabric, server = setup () in
  let c1 = connect_client sim fabric server () in
  let c2 = connect_client sim fabric server () in
  register_ok sim c1 ~tenant:5 ();
  register_ok sim c2 ~tenant:5 ();
  Alcotest.(check int) "one tenant" 1 (Server.registered_tenants server);
  let ok = ref 0 in
  Client_lib.read c1 ~lba:0L ~len:4096 (fun s ~latency:_ -> if s = Message.Ok then incr ok);
  Client_lib.read c2 ~lba:1L ~len:4096 (fun s ~latency:_ -> if s = Message.Ok then incr ok);
  ignore (Sim.run sim);
  Alcotest.(check int) "both conns served" 2 !ok

let test_e2e_io_without_register_raises () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  ignore sim;
  Alcotest.check_raises "client refuses" (Failure "Client_lib: not registered") (fun () ->
      Client_lib.read client ~lba:0L ~len:4096 (fun _ ~latency:_ -> ()))

let test_e2e_raw_io_on_unregistered_conn_denied () =
  (* Bypass the client library and push a raw read request on a fresh
     connection: the server must refuse it. *)
  let sim, fabric, server = setup () in
  let host = Fabric.add_host fabric ~name:"rogue" ~stack:Stack_model.ix_client in
  let conn = Tcp_conn.connect fabric ~client:host ~server:(Server.host server) in
  Server.accept server conn;
  let got = ref None in
  Tcp_conn.set_client_handler conn (fun msg ~size:_ -> got := Some msg);
  let msg = Message.Read_req { handle = 1; req_id = 9L; lba = 0L; len = 4096 } in
  Tcp_conn.send_to_server conn ~size:(Codec.encoded_size msg) msg;
  ignore (Sim.run sim);
  match !got with
  | Some (Message.Error_resp { status = Message.Denied; _ }) -> ()
  | _ -> Alcotest.fail "expected a Denied error response"

let test_e2e_thread_scaling_rebalances () =
  let sim, fabric, server = setup ~n_threads:1 ~max_threads:4 () in
  let clients =
    List.init 4 (fun i ->
        let c = connect_client sim fabric server () in
        let i = i + 1 in
        Client_lib.register c ~tenant:i (fun _ -> ());
        c)
  in
  ignore (Sim.run sim);
  ignore clients;
  Alcotest.(check int) "one active thread" 1 (Server.active_threads server);
  Server.scale_threads server 4;
  Alcotest.(check int) "four active" 4 (Server.active_threads server);
  (* All four tenants still reachable after rebalancing. *)
  let ok = ref 0 in
  List.iter
    (fun c -> Client_lib.read c ~lba:0L ~len:4096 (fun s ~latency:_ -> if s = Message.Ok then incr ok))
    clients;
  ignore (Sim.run sim);
  Alcotest.(check int) "served after rebalance" 4 !ok;
  Server.scale_threads server 1;
  let ok2 = ref 0 in
  List.iter
    (fun c -> Client_lib.read c ~lba:0L ~len:4096 (fun s ~latency:_ -> if s = Message.Ok then incr ok2))
    clients;
  ignore (Sim.run sim);
  Alcotest.(check int) "served after scale-down" 4 !ok2

let test_e2e_autoscaling () =
  (* §4.3: the local control plane right-sizes the thread count.  Flood a
     1-thread server (max 4) past one core's capacity: the monitor must
     activate more threads. *)
  let sim, fabric, server = setup ~n_threads:1 ~max_threads:4 () in
  Server.enable_autoscaling server ~period:(Time.ms 5) ();
  let clients = List.init 4 (fun _ -> connect_client sim fabric server ()) in
  List.iteri (fun i c -> Client_lib.register c ~tenant:(i + 1) (fun _ -> ())) clients;
  (* The autoscaling monitor keeps a periodic event pending, so runs must
     be time-bounded from here on. *)
  ignore (Sim.run ~until:(Time.ms 2) sim);
  let until = Time.add (Sim.now sim) (Time.ms 150) in
  let _gens =
    List.mapi
      (fun i c ->
        Load_gen.open_loop sim ~client:c ~rate:300_000.0 ~read_ratio:1.0 ~bytes:1024 ~until
          ~seed:(Int64.of_int (61 + i)) ())
      clients
  in
  ignore (Sim.run ~until sim);
  Alcotest.(check bool)
    (Printf.sprintf "scaled up to %d threads" (Server.active_threads server))
    true
    (Server.active_threads server >= 2)

let test_e2e_qos_protects_lc_tenant () =
  (* Miniature Figure 5: an LC read tenant keeps its tail under the SLO
     while a BE tenant floods writes.  The same offered load through the
     QoS-free libaio baseline blows the read tail by an order of
     magnitude. *)
  let lc_p95_reflex =
    let sim, fabric, server = setup () in
    let lc = connect_client sim fabric server () in
    let be = connect_client sim fabric server () in
    let slo = { Message.latency_us = 500; iops = 50_000; read_pct = 100; latency_critical = true } in
    register_ok sim lc ~tenant:1 ~slo ();
    register_ok sim be ~tenant:2
      ~slo:{ Message.latency_us = 0; iops = 0; read_pct = 0; latency_critical = false }
      ();
    let until = Time.ms 200 in
    let lc_gen =
      Load_gen.open_loop sim ~client:lc ~pacing:`Cbr ~rate:50_000.0 ~read_ratio:1.0 ~bytes:4096
        ~until ()
    in
    let _be_gen =
      Load_gen.open_loop sim ~client:be ~rate:100_000.0 ~read_ratio:0.0 ~bytes:4096 ~until
        ~seed:99L ()
    in
    ignore (Sim.run ~until:(Time.ms 50) sim);
    Load_gen.mark_measurement_start lc_gen;
    ignore (Sim.run ~until:until sim);
    Load_gen.p95_read_us lc_gen
  in
  let lc_p95_libaio =
    let sim = Sim.create () in
    let fabric = Fabric.create sim () in
    let server = Reflex_baselines.Baseline_server.create sim ~fabric ~kind:Reflex_baselines.Baseline_server.Libaio ~n_threads:4 () in
    let accept = Reflex_baselines.Baseline_server.accept server in
    let server_host = Reflex_baselines.Baseline_server.host server in
    let lc = Client_lib.connect sim fabric ~server_host ~accept ~stack:Stack_model.ix_client () in
    let be = Client_lib.connect sim fabric ~server_host ~accept ~stack:Stack_model.ix_client () in
    Client_lib.register lc ~tenant:1 (fun _ -> ());
    Client_lib.register be ~tenant:2 (fun _ -> ());
    ignore (Sim.run sim);
    let until = Time.ms 200 in
    let lc_gen =
      Load_gen.open_loop sim ~client:lc ~pacing:`Cbr ~rate:50_000.0 ~read_ratio:1.0 ~bytes:4096
        ~until ()
    in
    let _be_gen =
      Load_gen.open_loop sim ~client:be ~rate:100_000.0 ~read_ratio:0.0 ~bytes:4096 ~until
        ~seed:99L ()
    in
    ignore (Sim.run ~until:(Time.ms 50) sim);
    Load_gen.mark_measurement_start lc_gen;
    ignore (Sim.run ~until:until sim);
    Load_gen.p95_read_us lc_gen
  in
  Alcotest.(check bool)
    (Printf.sprintf "ReFlex LC p95 %.0fus <= 500us SLO" lc_p95_reflex)
    true (lc_p95_reflex <= 500.0);
  Alcotest.(check bool)
    (Printf.sprintf "libaio p95 %.0fus >> ReFlex %.0fus" lc_p95_libaio lc_p95_reflex)
    true
    (lc_p95_libaio > 2.0 *. lc_p95_reflex)

let test_e2e_barrier_orders_io () =
  (* Issue 8 writes, a barrier, then 8 reads: every write must complete
     before the barrier does, and every read must start after it. *)
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let events = ref [] in
  for i = 1 to 8 do
    Client_lib.write client ~lba:(Int64.of_int i) ~len:4096 (fun _ ~latency:_ ->
        events := `Write_done i :: !events)
  done;
  Client_lib.barrier client (fun status ~latency:_ ->
      Alcotest.(check bool) "barrier ok" true (status = Message.Ok);
      events := `Barrier :: !events);
  for i = 1 to 8 do
    Client_lib.read client ~lba:(Int64.of_int i) ~len:4096 (fun _ ~latency:_ ->
        events := `Read_done i :: !events)
  done;
  ignore (Sim.run sim);
  let order = List.rev !events in
  Alcotest.(check int) "all events" 17 (List.length order);
  (* All writes strictly before the barrier, all reads strictly after. *)
  let rec split acc = function
    | `Barrier :: rest -> (List.rev acc, rest)
    | e :: rest -> split (e :: acc) rest
    | [] -> Alcotest.fail "no barrier event"
  in
  let before, after = split [] order in
  Alcotest.(check int) "8 completions before barrier" 8 (List.length before);
  List.iter
    (function `Write_done _ -> () | _ -> Alcotest.fail "read overtook the barrier")
    before;
  Alcotest.(check int) "8 completions after barrier" 8 (List.length after);
  List.iter
    (function `Read_done _ -> () | _ -> Alcotest.fail "write after barrier")
    after

let test_e2e_barrier_empty_completes () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let lat = ref None in
  Client_lib.barrier client (fun status ~latency ->
      if status = Message.Ok then lat := Some latency);
  ignore (Sim.run sim);
  match !lat with
  | Some l ->
    (* Nothing outstanding: just a network round trip, well under 50us. *)
    Alcotest.(check bool) "fast no-op barrier" true Time.(l < Time.us 50)
  | None -> Alcotest.fail "barrier did not complete"

let test_e2e_double_barrier () =
  (* Two barriers with work between them preserve both cut points. *)
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let log = ref [] in
  Client_lib.write client ~lba:1L ~len:4096 (fun _ ~latency:_ -> log := "w1" :: !log);
  Client_lib.barrier client (fun _ ~latency:_ -> log := "b1" :: !log);
  Client_lib.write client ~lba:2L ~len:4096 (fun _ ~latency:_ -> log := "w2" :: !log);
  Client_lib.barrier client (fun _ ~latency:_ -> log := "b2" :: !log);
  Client_lib.read client ~lba:2L ~len:4096 (fun _ ~latency:_ -> log := "r" :: !log);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "cut points preserved" [ "w1"; "b1"; "w2"; "b2"; "r" ]
    (List.rev !log)

let test_e2e_deficit_notifications () =
  (* A tenant bursting writes far past its small reservation drives its
     balance to NEG_LIMIT; the control plane gets notified (§3.2.2). *)
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  let slo = { Message.latency_us = 1000; iops = 5_000; read_pct = 50; latency_critical = true } in
  register_ok sim client ~tenant:1 ~slo ();
  let until = Time.ms 100 in
  let _gen = Load_gen.open_loop sim ~client ~rate:50_000.0 ~read_ratio:0.5 ~bytes:4096 ~until () in
  ignore (Sim.run ~until sim);
  Alcotest.(check bool) "control plane notified" true
    (Server.deficit_notifications server ~tenant:1 > 0);
  Alcotest.(check bool) "flagged for renegotiation" true
    (Server.needs_renegotiation ~threshold:10 server ~tenant:1)

(* ------------------------------------------------------------------ *)
(* Global_control                                                     *)
(* ------------------------------------------------------------------ *)

let make_pool () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let gc = Global_control.create () in
  let strict = Server.create sim ~fabric () in
  let loose = Server.create sim ~fabric () in
  Global_control.add_server gc ~name:"strict-pool" strict;
  Global_control.add_server gc ~name:"loose-pool" loose;
  (* Seed each server's character. *)
  ignore
    (Control_plane.admit (Server.control_plane strict) ~id:900
       ~slo:(Slo.latency_critical ~latency_us:300 ~iops:50_000.0 ~read_pct:100));
  ignore
    (Control_plane.admit (Server.control_plane loose) ~id:901
       ~slo:(Slo.latency_critical ~latency_us:5000 ~iops:50_000.0 ~read_pct:100));
  (sim, gc, strict, loose)

let test_global_colocates_similar_slos () =
  let _, gc, _, _ = make_pool () in
  (* A loose tenant goes with the loose crowd; a strict one with the
     strict crowd (paper §4.3 placement guidance). *)
  (match Global_control.place gc ~slo:(Slo.latency_critical ~latency_us:4000 ~iops:10_000.0 ~read_pct:100) with
  | Some p -> Alcotest.(check string) "loose tenant placed loose" "loose-pool" p.Global_control.server_name
  | None -> Alcotest.fail "no placement");
  match Global_control.place gc ~slo:(Slo.latency_critical ~latency_us:350 ~iops:10_000.0 ~read_pct:100) with
  | Some p -> Alcotest.(check string) "strict tenant placed strict" "strict-pool" p.Global_control.server_name
  | None -> Alcotest.fail "no placement"

let test_global_respects_capacity () =
  let _, gc, _, _ = make_pool () in
  (* An inadmissible SLO is rejected everywhere. *)
  Alcotest.(check bool) "over-demanding tenant unplaceable" true
    (Global_control.place gc
       ~slo:(Slo.latency_critical ~latency_us:500 ~iops:2_000_000.0 ~read_pct:50)
    = None)

let test_global_be_goes_to_headroom () =
  let _, gc, strict, _ = make_pool () in
  (* Fill the strict server's capacity; a BE tenant then lands loose. *)
  ignore
    (Control_plane.admit (Server.control_plane strict) ~id:902
       ~slo:(Slo.latency_critical ~latency_us:300 ~iops:150_000.0 ~read_pct:100));
  match Global_control.place gc ~slo:(Slo.best_effort ()) with
  | Some p -> Alcotest.(check string) "BE to headroom" "loose-pool" p.Global_control.server_name
  | None -> Alcotest.fail "BE must always place"

let test_global_place_and_admit () =
  let _, gc, _, _ = make_pool () in
  let slo = Slo.latency_critical ~latency_us:4000 ~iops:10_000.0 ~read_pct:100 in
  match Global_control.place_and_admit gc ~id:950 ~slo with
  | Some p ->
    Alcotest.(check string) "placed" "loose-pool" p.Global_control.server_name;
    (* The dry-run reservation is released: the wire registration owns it. *)
    Alcotest.(check bool) "not pre-registered" false
      (Control_plane.is_registered (Server.control_plane p.Global_control.server) ~id:950)
  | None -> Alcotest.fail "placement failed"

(* ------------------------------------------------------------------ *)
(* Load_gen                                                           *)
(* ------------------------------------------------------------------ *)

let test_load_gen_open_loop_rate () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let until = Time.ms 100 in
  let gen = Load_gen.open_loop sim ~client ~rate:50_000.0 ~read_ratio:1.0 ~bytes:4096 ~until () in
  ignore (Sim.run ~until sim);
  Load_gen.freeze_window gen;
  ignore (Sim.run sim);
  let iops = Load_gen.achieved_iops gen in
  Alcotest.(check bool) (Printf.sprintf "achieved %.0f ~ 50K" iops) true
    (iops > 45_000.0 && iops < 55_000.0);
  Alcotest.(check int) "no errors" 0 (Load_gen.errors gen)

let test_load_gen_closed_loop_inflight () =
  let sim, fabric, server = setup () in
  let client = connect_client sim fabric server () in
  register_ok sim client ~tenant:1 ();
  let until = Time.ms 20 in
  let _gen = Load_gen.closed_loop sim ~client ~depth:8 ~read_ratio:1.0 ~bytes:4096 ~until () in
  let max_seen = ref 0 in
  Sim.every sim ~every:(Time.us 50) ~until (fun _ ->
      max_seen := max !max_seen (Client_lib.inflight client));
  ignore (Sim.run sim);
  Alcotest.(check bool) (Printf.sprintf "inflight peak %d <= 8" !max_seen) true (!max_seen <= 8);
  Alcotest.(check bool) "kept device busy" true (!max_seen >= 6)

(* ------------------------------------------------------------------ *)
(* Blk_dev                                                            *)
(* ------------------------------------------------------------------ *)

let test_blk_dev_bio_roundtrip () =
  let sim, fabric, server = setup () in
  let dev = ref None in
  Blk_dev.create sim fabric ~server_host:(Server.host server) ~accept:(Server.accept server)
    ~n_contexts:2 ~tenant:1 () (fun d -> dev := Some d);
  ignore (Sim.run sim);
  let dev = match !dev with Some d -> d | None -> Alcotest.fail "device not ready" in
  Alcotest.(check int) "contexts" 2 (Blk_dev.n_contexts dev);
  let lat = ref None in
  Blk_dev.submit_bio dev ~kind:Io_op.Read ~lba:0L ~bytes:4096 (fun ~latency -> lat := Some latency);
  ignore (Sim.run sim);
  (match !lat with
  | Some l ->
    let us = Time.to_float_us l in
    (* Linux client path: ~130-180us unloaded. *)
    Alcotest.(check bool) (Printf.sprintf "bio latency %.0fus in [100,220]" us) true
      (us > 100.0 && us < 220.0)
  | None -> Alcotest.fail "bio did not complete");
  Alcotest.(check int) "bio counted" 1 (Blk_dev.bios_completed dev)

let test_blk_dev_large_bio_splits () =
  let sim, fabric, server = setup () in
  let dev = ref None in
  Blk_dev.create sim fabric ~server_host:(Server.host server) ~accept:(Server.accept server)
    ~n_contexts:4 ~tenant:1 () (fun d -> dev := Some d);
  ignore (Sim.run sim);
  let dev = match !dev with Some d -> d | None -> Alcotest.fail "not ready" in
  let done_ = ref false in
  (* 32KB bio = eight 4KB blocks; completes only when all blocks do. *)
  Blk_dev.submit_bio dev ~kind:Io_op.Read ~lba:0L ~bytes:32768 (fun ~latency:_ -> done_ := true);
  ignore (Sim.run sim);
  Alcotest.(check bool) "completed" true !done_;
  Alcotest.(check int) "server saw 8 requests" 8 (Server.requests_completed server)

(* ------------------------------------------------------------------ *)
(* Baselines                                                          *)
(* ------------------------------------------------------------------ *)

let test_local_unloaded () =
  let sim = Sim.create () in
  let local = Reflex_baselines.Local.create sim () in
  let res = Reflex_stats.Reservoir.create (Prng.create 5L) in
  let remaining = ref 500 in
  let rec next () =
    if !remaining > 0 then begin
      decr remaining;
      Reflex_baselines.Local.submit local ~kind:Io_op.Read ~bytes:4096 (fun ~latency ->
          Reflex_stats.Reservoir.add res (Time.to_float_us latency);
          ignore (Sim.after sim (Time.us 100) next))
    end
  in
  ignore (Sim.at sim Time.zero next);
  ignore (Sim.run sim);
  let mean = Reflex_stats.Reservoir.mean res in
  (* Table 2 local SPDK row: 78us average read. *)
  Alcotest.(check bool) (Printf.sprintf "local read %.0fus in [72,90]" mean) true
    (mean > 72.0 && mean < 90.0)

let test_local_core_limit () =
  (* One core saturates around 870K IOPS (paper §5.3): a 1.2M flood
     completes at most ~900K/s. *)
  let sim = Sim.create () in
  let local = Reflex_baselines.Local.create sim ~n_threads:1 () in
  let window = Time.ms 50 in
  let prng = Prng.create 7L in
  let rec arrival () =
    if Time.(Sim.now sim <= window) then begin
      Reflex_baselines.Local.submit local ~kind:Io_op.Read ~bytes:1024 (fun ~latency:_ -> ());
      let gap = Time.max (Time.ns 1) (Time.of_float_ns (Prng.exponential prng ~mean:833.0)) in
      ignore (Sim.after sim gap arrival)
    end
  in
  ignore (Sim.at sim Time.zero arrival);
  ignore (Sim.run ~until:window sim);
  let rate = float_of_int (Reflex_baselines.Local.completed local) /. Time.to_float_sec window in
  Alcotest.(check bool)
    (Printf.sprintf "core-limited: %.0fK in [750K,950K]" (rate /. 1e3))
    true
    (rate > 750e3 && rate < 950e3)

let baseline_unloaded ~kind ~stack =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server = Reflex_baselines.Baseline_server.create sim ~fabric ~kind () in
  let client =
    Client_lib.connect sim fabric
      ~server_host:(Reflex_baselines.Baseline_server.host server)
      ~accept:(Reflex_baselines.Baseline_server.accept server)
      ~stack ()
  in
  Client_lib.register client ~tenant:1 (fun _ -> ());
  ignore (Sim.run sim);
  let until = Time.ms 200 in
  let gen =
    Load_gen.closed_loop sim ~client ~depth:1 ~think:(Time.us 50) ~read_ratio:1.0 ~bytes:4096
      ~until ()
  in
  ignore (Sim.run ~until:(Time.add until (Time.ms 10)) sim);
  Load_gen.mean_read_us gen

let test_libaio_unloaded () =
  let mean =
    baseline_unloaded ~kind:Reflex_baselines.Baseline_server.Libaio ~stack:Stack_model.ix_client
  in
  (* Table 2: libaio with IX client, 121us average read. *)
  Alcotest.(check bool) (Printf.sprintf "libaio+IX read %.0fus in [105,145]" mean) true
    (mean > 105.0 && mean < 145.0)

let test_iscsi_unloaded () =
  let mean =
    baseline_unloaded ~kind:Reflex_baselines.Baseline_server.Iscsi ~stack:Stack_model.linux_client
  in
  (* Table 2: iSCSI with Linux client, 211us average read (2.8x local). *)
  Alcotest.(check bool) (Printf.sprintf "iscsi read %.0fus in [170,260]" mean) true
    (mean > 170.0 && mean < 260.0)

let test_libaio_per_core_cap () =
  (* ~75K IOPS per core (paper §2.1): offer 150K to one worker thread. *)
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server =
    Reflex_baselines.Baseline_server.create sim ~fabric
      ~kind:Reflex_baselines.Baseline_server.Libaio ~n_threads:1 ()
  in
  let client =
    Client_lib.connect sim fabric
      ~server_host:(Reflex_baselines.Baseline_server.host server)
      ~accept:(Reflex_baselines.Baseline_server.accept server)
      ~stack:Stack_model.ix_client ()
  in
  Client_lib.register client ~tenant:1 (fun _ -> ());
  ignore (Sim.run sim);
  let until = Time.ms 150 in
  let _gen = Load_gen.open_loop sim ~client ~rate:150_000.0 ~read_ratio:1.0 ~bytes:1024 ~until () in
  ignore (Sim.run ~until:(Time.ms 30) sim);
  (* Under 2x overload the client-side window mixes in backlogged
     completions, so measure the server's completion counter directly. *)
  let c0 = Reflex_baselines.Baseline_server.requests_completed server in
  ignore (Sim.run ~until sim);
  let c1 = Reflex_baselines.Baseline_server.requests_completed server in
  let iops = float_of_int (c1 - c0) /. 0.12 in
  Alcotest.(check bool)
    (Printf.sprintf "libaio core cap %.0fK in [60K,90K]" (iops /. 1e3))
    true
    (iops > 60e3 && iops < 90e3)

let suite =
  [
    ( "acl",
      [
        Alcotest.test_case "default deny" `Quick test_acl_default_deny;
        Alcotest.test_case "grant/revoke" `Quick test_acl_grant;
        Alcotest.test_case "permissive" `Quick test_acl_permissive;
      ] );
    ("costs", [ Alcotest.test_case "connection cache penalty" `Quick test_conn_factor ]);
    ( "control_plane",
      [
        Alcotest.test_case "BE always admitted" `Quick test_cp_admits_be_always;
        Alcotest.test_case "admission limit (Fig 6a)" `Quick test_cp_admission_limit_fig6a;
        Alcotest.test_case "strictest SLO governs" `Quick test_cp_strictest_slo_governs;
        Alcotest.test_case "Figure 5 token rates" `Quick test_cp_fig5_rates;
        Alcotest.test_case "duplicate id" `Quick test_cp_duplicate_id;
        Alcotest.test_case "forget unknown id is a no-op" `Quick
          test_cp_forget_unknown_idempotent;
        Alcotest.test_case "capacity factor re-pricing" `Quick test_cp_capacity_factor;
        Alcotest.test_case "default curve monotone" `Quick test_cp_default_curve_monotone;
      ] );
    ( "server_e2e",
      [
        Alcotest.test_case "read roundtrip (Table 2)" `Quick test_e2e_read_roundtrip;
        Alcotest.test_case "write roundtrip (Table 2)" `Quick test_e2e_write_roundtrip;
        Alcotest.test_case "ACL denies unknown tenant" `Quick test_e2e_acl_denied_tenant;
        Alcotest.test_case "LBA out of range" `Quick test_e2e_out_of_range;
        Alcotest.test_case "read-only namespace" `Quick test_e2e_read_only_namespace;
        Alcotest.test_case "admission rejects over-demand" `Quick test_e2e_no_capacity;
        Alcotest.test_case "unregister" `Quick test_e2e_unregister;
        Alcotest.test_case "two conns share a tenant" `Quick test_e2e_two_conns_share_tenant;
        Alcotest.test_case "client refuses io before register" `Quick
          test_e2e_io_without_register_raises;
        Alcotest.test_case "raw io on unregistered conn denied" `Quick
          test_e2e_raw_io_on_unregistered_conn_denied;
        Alcotest.test_case "thread scaling rebalances" `Quick test_e2e_thread_scaling_rebalances;
        Alcotest.test_case "autoscaling grows under load" `Slow test_e2e_autoscaling;
        Alcotest.test_case "QoS protects LC from BE writes (Fig 5)" `Slow
          test_e2e_qos_protects_lc_tenant;
        Alcotest.test_case "barrier orders I/O" `Quick test_e2e_barrier_orders_io;
        Alcotest.test_case "empty barrier completes fast" `Quick test_e2e_barrier_empty_completes;
        Alcotest.test_case "double barrier" `Quick test_e2e_double_barrier;
        Alcotest.test_case "deficit notifications (SS3.2.2)" `Quick test_e2e_deficit_notifications;
      ] );
    ( "global_control",
      [
        Alcotest.test_case "co-locates similar SLOs" `Quick test_global_colocates_similar_slos;
        Alcotest.test_case "respects capacity" `Quick test_global_respects_capacity;
        Alcotest.test_case "BE to most headroom" `Quick test_global_be_goes_to_headroom;
        Alcotest.test_case "place and admit" `Quick test_global_place_and_admit;
      ] );
    ( "load_gen",
      [
        Alcotest.test_case "open-loop rate" `Quick test_load_gen_open_loop_rate;
        Alcotest.test_case "closed-loop depth" `Quick test_load_gen_closed_loop_inflight;
      ] );
    ( "blk_dev",
      [
        Alcotest.test_case "bio roundtrip" `Quick test_blk_dev_bio_roundtrip;
        Alcotest.test_case "large bio splits into blocks" `Quick test_blk_dev_large_bio_splits;
      ] );
    ( "baselines",
      [
        Alcotest.test_case "local unloaded (Table 2)" `Quick test_local_unloaded;
        Alcotest.test_case "local single-core limit" `Quick test_local_core_limit;
        Alcotest.test_case "libaio unloaded (Table 2)" `Quick test_libaio_unloaded;
        Alcotest.test_case "iscsi unloaded (Table 2)" `Quick test_iscsi_unloaded;
        Alcotest.test_case "libaio 75K IOPS/core" `Quick test_libaio_per_core_cap;
      ] );
  ]
