(* Tests for reflex-lint: every rule family fires on its deliberately-bad
   fixture with exact rule-id and line, stays silent on the clean twin,
   waivers are honored (and malformed waivers rejected), the manifest
   grammar is validated, and — the point of the whole exercise — the
   live tree lints clean. *)

(* The fixture manifest (also checked in as lint_fixtures/fixtures.manifest
   for CLI experimentation); parsed inline so the tests are self-contained. *)
let fixture_manifest =
  let text =
    "hot_path lint_fixtures/bad_hot_alloc.ml drain — fixture: allocation-scan drain\n"
    ^ "hot_path lint_fixtures/clean_hot_alloc.ml drain — fixture: allocation-scan drain\n"
  in
  let m, diags = Lint_manifest.parse ~file:"inline.manifest" text in
  if diags <> [] then failwith "fixture manifest failed to parse";
  m

let lint rel =
  let src = Lint_source.load ~rel ~abs:rel in
  Lint_driver.run_on_source ~manifest:fixture_manifest src

let rule_lines (r : Lint_driver.report) =
  List.map (fun d -> (d.Lint_diagnostic.rule, d.Lint_diagnostic.line)) r.Lint_driver.findings

let finding = Alcotest.(pair string int)

let check_findings name expected rel =
  Alcotest.(check (list finding)) name expected (rule_lines (lint rel))

(* ---------------- one bad + one clean fixture per rule ---------------- *)

let test_det_random () =
  check_findings "bad fires" [ ("det/random", 3) ] "lint_fixtures/bad_det_random.ml";
  check_findings "clean silent" [] "lint_fixtures/clean_det_random.ml"

let test_det_clock () =
  check_findings "bad fires" [ ("det/clock", 3) ] "lint_fixtures/bad_det_clock.ml";
  check_findings "clean silent" [] "lint_fixtures/clean_det_clock.ml"

let test_det_marshal () =
  check_findings "bad fires" [ ("det/marshal", 3) ] "lint_fixtures/bad_det_marshal.ml";
  check_findings "clean silent" [] "lint_fixtures/clean_det_marshal.ml"

let test_det_hashtbl () =
  check_findings "bad fires" [ ("det/hashtbl-order", 4) ] "lint_fixtures/bad_det_hashtbl.ml";
  check_findings "clean (sorted) silent" [] "lint_fixtures/clean_det_hashtbl.ml"

let test_dom_toplevel () =
  check_findings "bad fires" [ ("dom/toplevel-state", 3) ] "lint_fixtures/bad_dom_toplevel.ml";
  check_findings "clean (per-instance) silent" [] "lint_fixtures/clean_dom_toplevel.ml"

let test_guard () =
  check_findings "bad fires" [ ("guard/telemetry", 4) ] "lint_fixtures/bad_guard.ml";
  check_findings "clean (guarded) silent" [] "lint_fixtures/clean_guard.ml"

let test_hot_alloc () =
  check_findings "bad fires" [ ("hot/alloc", 4) ] "lint_fixtures/bad_hot_alloc.ml";
  check_findings "clean silent" [] "lint_fixtures/clean_hot_alloc.ml"

(* Without a manifest hot_path entry the same file is silent: the rule is
   opt-in per function. *)
let test_hot_alloc_opt_in () =
  let src = Lint_source.load ~rel:"x.ml" ~abs:"lint_fixtures/bad_hot_alloc.ml" in
  let r = Lint_driver.run_on_source ~manifest:Lint_manifest.empty src in
  Alcotest.(check (list finding)) "no manifest entry, no scan" [] (rule_lines r)

(* ---------------- waivers ---------------- *)

let test_waiver_honored () =
  let r = lint "lint_fixtures/waiver_ok.ml" in
  Alcotest.(check (list finding)) "waived" [] (rule_lines r);
  Alcotest.(check int) "one waiver applied" 1 r.Lint_driver.waivers_used

let test_waiver_unknown_rule () =
  check_findings "bad-waiver finding" [ ("lint/bad-waiver", 3) ] "lint_fixtures/waiver_unknown.ml"

let test_waiver_no_reason () =
  (* The malformed waiver is a finding AND does not suppress the
     violation under it. *)
  check_findings "bad-waiver + unsuppressed violation"
    [ ("lint/bad-waiver", 4); ("det/clock", 5) ]
    "lint_fixtures/waiver_noreason.ml"

let test_waiver_internal_rule () =
  let src =
    Lint_source.of_string ~rel:"w.ml"
      "(* reflex-lint: allow lint/parse-error — nope *)\nlet x = 1\n"
  in
  let r = Lint_driver.run_on_source ~manifest:Lint_manifest.empty src in
  Alcotest.(check (list finding)) "internal rules unwaivable" [ ("lint/bad-waiver", 1) ]
    (rule_lines r)

(* A waiver-shaped string literal is not a waiver (the comment lexer
   skips strings), and does not suppress anything. *)
let test_waiver_in_string () =
  let src =
    Lint_source.of_string ~rel:"s.ml"
      "let s = \"(* reflex-lint: allow det/clock — x *)\"\nlet now_us () = Unix.gettimeofday ()\n"
  in
  let r = Lint_driver.run_on_source ~manifest:Lint_manifest.empty src in
  Alcotest.(check (list finding)) "string is not a waiver" [ ("det/clock", 2) ] (rule_lines r)

(* ---------------- manifest grammar ---------------- *)

let test_manifest_errors () =
  let text =
    String.concat "\n"
      [
        "allow det/clock bench/"; (* missing reason *)
        "frobnicate x — y"; (* unknown directive *)
        "allow det/nope lib/ — r"; (* unknown rule-id *)
        "hot_path f.ml g allow=banana — r"; (* unknown construct *)
        "";
      ]
  in
  let _, diags = Lint_manifest.parse ~file:"bad.manifest" text in
  Alcotest.(check (list finding)) "each bad line is a finding"
    [ ("lint/manifest", 1); ("lint/manifest", 2); ("lint/manifest", 3); ("lint/manifest", 4) ]
    (List.map (fun d -> (d.Lint_diagnostic.rule, d.Lint_diagnostic.line)) diags)

let test_manifest_drift () =
  let m, diags =
    Lint_manifest.parse ~file:"m" "hot_path x.ml missing_fn — fixture: drifted entry\n"
  in
  Alcotest.(check int) "manifest parses" 0 (List.length diags);
  let src = Lint_source.load ~rel:"x.ml" ~abs:"lint_fixtures/clean_det_random.ml" in
  let r = Lint_driver.run_on_source ~manifest:m src in
  Alcotest.(check (list finding)) "drifted hot_path entry is a finding" [ ("lint/manifest", 1) ]
    (rule_lines r)

(* ---------------- iface/mli via the directory driver ---------------- *)

let test_iface_dir () =
  let r =
    Lint_driver.run ~paths:[ "lint_fixtures/iface" ] ~root:(Sys.getcwd ())
      ~manifest_path:"lint_fixtures/fixtures.manifest" ()
  in
  Alcotest.(check (list finding)) "bad_mod flagged, good_mod silent" [ ("iface/mli", 1) ]
    (rule_lines r);
  let d = List.hd r.Lint_driver.findings in
  Alcotest.(check string) "file precision" "lint_fixtures/iface/bad_mod.ml"
    d.Lint_diagnostic.file

(* ---------------- rendering ---------------- *)

let test_diag_format () =
  let d = Lint_diagnostic.make ~file:"a.ml" ~line:3 ~col:7 ~rule:"det/clock" "msg \"q\"" in
  Alcotest.(check string) "text" "a.ml:3:7: error [det/clock] msg \"q\""
    (Lint_diagnostic.to_string d);
  Alcotest.(check string) "json"
    {|{"file":"a.ml","line":3,"col":7,"rule":"det/clock","message":"msg \"q\""}|}
    (Lint_diagnostic.to_json d)

let test_report_json () =
  let r = lint "lint_fixtures/bad_det_random.ml" in
  let j = Lint_driver.to_json r in
  let has needle =
    let n = String.length needle and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "finding_count" true (has "\"finding_count\": 1");
  Alcotest.(check bool) "rule id present" true (has "det/random")

(* ---------------- interprocedural passes over the graph fixtures ----- *)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let graph_manifest = "lint_fixtures/graph/graph.manifest"

let run_graph ?(jobs = 1) () =
  Lint_driver.run ~paths:[ "lint_fixtures/graph" ] ~jobs ~root:(Sys.getcwd ())
    ~manifest_path:graph_manifest ()

(* One directory run over the fixture mini-tree exercises every inferred
   family with exact (file, line, rule): a two-hop transitive alloc, a
   taint chain through a module alias, an alias-resolved unguarded
   telemetry call, a drifted hot_path entry (anchored at its manifest
   line), and a stale interprocedural waiver — while each clean twin
   (cold_path stop, guard in the caller, pure sink callees, referenced
   entry, used waiver) stays silent. *)
let test_graph_findings () =
  let r = run_graph () in
  let triples =
    List.map
      (fun d -> (d.Lint_diagnostic.file, d.Lint_diagnostic.line, d.Lint_diagnostic.rule))
      r.Lint_driver.findings
  in
  Alcotest.(check (list (triple string int string)))
    "exact findings"
    [
      ("lint_fixtures/graph/bad_guard_via.ml", 4, "guard/transitive");
      ("lint_fixtures/graph/graph.manifest", 12, "hot/drift");
      ("lint_fixtures/graph/stale_waiver.ml", 1, "lint/bad-waiver");
      ("lint_fixtures/graph/taint_render.ml", 5, "det/taint");
      ("lint_fixtures/graph/trans_leaf.ml", 3, "hot/transitive-alloc");
    ]
    triples;
  Alcotest.(check int) "inline waiver on the inferred alloc is used" 1 r.Lint_driver.waivers_used

let test_graph_stats () =
  let r = run_graph () in
  match r.Lint_driver.gstats with
  | None -> Alcotest.fail "directory run must carry call-graph stats"
  | Some s ->
    Alcotest.(check int) "hot seeds" 7 s.Lint_interproc.gs_hot_seeds;
    Alcotest.(check int) "inferred hot" 5 s.Lint_interproc.gs_hot_inferred;
    Alcotest.(check int) "taint sources" 1 s.Lint_interproc.gs_taint_sources;
    Alcotest.(check int) "identity sinks" 2 s.Lint_interproc.gs_identity_sinks

(* Inferred findings carry their propagation chain, both structurally and
   as "via a -> b -> c" in the message. *)
let test_graph_chains () =
  let r = run_graph () in
  let find rule =
    List.find (fun d -> d.Lint_diagnostic.rule = rule) r.Lint_driver.findings
  in
  let names d = List.map (fun s -> s.Lint_diagnostic.st_name) d.Lint_diagnostic.chain in
  let alloc = find "hot/transitive-alloc" in
  Alcotest.(check (list string)) "alloc chain"
    [ "Trans_root.pump"; "Trans_mid.step"; "Trans_leaf.consume" ]
    (names alloc);
  Alcotest.(check bool) "alloc message spells the chain" true
    (contains alloc.Lint_diagnostic.message
       "via Trans_root.pump -> Trans_mid.step -> Trans_leaf.consume");
  let taint = find "det/taint" in
  Alcotest.(check (list string)) "taint chain sink-to-source"
    [ "Taint_render.render"; "Taint_src.noise"; "Random.int (ambient PRNG)" ]
    (names taint)

(* The per-file stage fans across domains; merge and filtering are
   serial, so reports are byte-identical for any --jobs. *)
let test_graph_jobs_identity () =
  let a = run_graph () and b = run_graph ~jobs:2 () in
  Alcotest.(check string) "text identical" (Lint_driver.to_text a) (Lint_driver.to_text b);
  Alcotest.(check string) "json identical" (Lint_driver.to_json a) (Lint_driver.to_json b)

let test_graph_exports () =
  let _, g, hot =
    Lint_driver.run_full ~paths:[ "lint_fixtures/graph" ] ~root:(Sys.getcwd ())
      ~manifest_path:graph_manifest ()
  in
  Alcotest.(check bool) "seed is hot" true (hot "Trans_root.pump");
  Alcotest.(check bool) "two-hop callee inferred hot" true (hot "Trans_leaf.consume");
  Alcotest.(check bool) "cold_path stop is not hot" false (hot "Cold_helper.grow");
  Alcotest.(check bool) "guarded callee is not hot" false (hot "Clean_guard_via.emit");
  let dot = Lint_callgraph.to_dot ~hot g in
  Alcotest.(check bool) "dot has the applied edge" true
    (contains dot "\"Trans_root.pump\" -> \"Trans_mid.step\"");
  let json = Lint_callgraph.to_json ~hot g in
  Alcotest.(check bool) "json has the applied edge" true
    (contains json {|{"from":"Trans_root.pump","to":"Trans_mid.step"|});
  Alcotest.(check bool) "json marks hot nodes" true
    (contains json {|{"id":"Trans_mid.step","file":"lint_fixtures/graph/trans_mid.ml","line":2,"hot":true}|})

(* --explain's backing text: every public rule-id has a real description. *)
let test_rule_descriptions () =
  List.iter
    (fun id ->
      let d = Lint_rule_ids.describe id in
      Alcotest.(check bool) (id ^ " described") true
        (String.length d > 40 && not (contains d "unknown rule-id")))
    Lint_rule_ids.all

(* ---------------- the live tree lints clean ---------------- *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "lint.manifest") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "repo root (lint.manifest) not found" else find_root parent

let test_live_tree_clean () =
  let root = find_root (Sys.getcwd ()) in
  let r = Lint_driver.run ~root ~manifest_path:(Filename.concat root "lint.manifest") () in
  if not (Lint_driver.clean r) then
    Alcotest.failf "live tree has lint findings:\n%s" (Lint_driver.to_text r);
  Alcotest.(check bool) "scanned the whole tree" true (r.Lint_driver.files_scanned > 50)

let suite =
  [
    ( "rules",
      [
        Alcotest.test_case "det/random fixtures" `Quick test_det_random;
        Alcotest.test_case "det/clock fixtures" `Quick test_det_clock;
        Alcotest.test_case "det/marshal fixtures" `Quick test_det_marshal;
        Alcotest.test_case "det/hashtbl-order fixtures" `Quick test_det_hashtbl;
        Alcotest.test_case "dom/toplevel-state fixtures" `Quick test_dom_toplevel;
        Alcotest.test_case "guard/telemetry fixtures" `Quick test_guard;
        Alcotest.test_case "hot/alloc fixtures" `Quick test_hot_alloc;
        Alcotest.test_case "hot/alloc is manifest-opt-in" `Quick test_hot_alloc_opt_in;
      ] );
    ( "waivers",
      [
        Alcotest.test_case "waiver honored" `Quick test_waiver_honored;
        Alcotest.test_case "unknown rule-id rejected" `Quick test_waiver_unknown_rule;
        Alcotest.test_case "missing reason rejected" `Quick test_waiver_no_reason;
        Alcotest.test_case "internal rules unwaivable" `Quick test_waiver_internal_rule;
        Alcotest.test_case "waiver inside string ignored" `Quick test_waiver_in_string;
      ] );
    ( "manifest",
      [
        Alcotest.test_case "grammar errors are findings" `Quick test_manifest_errors;
        Alcotest.test_case "hot_path drift is a finding" `Quick test_manifest_drift;
      ] );
    ( "callgraph",
      [
        Alcotest.test_case "inferred findings, exact (file,line,rule)" `Quick test_graph_findings;
        Alcotest.test_case "call-graph statistics" `Quick test_graph_stats;
        Alcotest.test_case "propagation chains" `Quick test_graph_chains;
        Alcotest.test_case "serial vs --jobs 2 byte-identity" `Quick test_graph_jobs_identity;
        Alcotest.test_case "dot/json exports and hot marking" `Quick test_graph_exports;
        Alcotest.test_case "--explain rule descriptions" `Quick test_rule_descriptions;
      ] );
    ( "driver",
      [
        Alcotest.test_case "iface/mli over a directory" `Quick test_iface_dir;
        Alcotest.test_case "diagnostic formatting" `Quick test_diag_format;
        Alcotest.test_case "json report" `Quick test_report_json;
        Alcotest.test_case "live tree lints clean" `Quick test_live_tree_clean;
      ] );
  ]
