(* Fault-injection & resilience subsystem (lib/faults): plan validation,
   deterministic retry backoff, injector lifecycle against real
   components, zero-impact of an empty plan, and byte-identical chaos
   output across reruns and domain-parallel execution. *)

open Reflex_engine
open Reflex_client
open Reflex_faults
module Common = Reflex_experiments.Common
module Chaos = Reflex_experiments.Chaos
module Runner = Reflex_experiments.Runner

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Fault plans                                                        *)
(* ------------------------------------------------------------------ *)

let test_plan_scripted_valid () =
  let plan = Fault_plan.validate (Fault_plan.scripted ()) in
  Alcotest.(check int) "three windows" 3 (List.length plan);
  let compressed = Fault_plan.scripted ~scale:0.1 () in
  List.iter2
    (fun (a : Fault_plan.window) (b : Fault_plan.window) ->
      Alcotest.(check int64) "start scales" (Time.scale a.at 0.1) b.at;
      Alcotest.(check int64) "duration scales" (Time.scale a.duration 0.1) b.duration)
    plan compressed;
  Alcotest.(check bool) "printable" true (String.length (Fault_plan.to_string plan) > 0)

let test_plan_validation_rejects () =
  let reject msg w =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Fault_plan.validate [ w ]))
  in
  reject "Fault_plan: window 0: non-positive duration"
    { Fault_plan.at = Time.ms 1; duration = Time.zero; fault = Fault_plan.Link_flap };
  reject "Fault_plan: window 0: negative die"
    { Fault_plan.at = Time.ms 1; duration = Time.ms 1; fault = Fault_plan.Die_fail { die = -1 } };
  reject "Fault_plan: window 0: die slowdown < 1.0"
    {
      Fault_plan.at = Time.ms 1;
      duration = Time.ms 1;
      fault = Fault_plan.Die_slow { die = 0; factor = 0.5 };
    };
  reject "Fault_plan: window 0: loss prob"
    {
      Fault_plan.at = Time.ms 1;
      duration = Time.ms 1;
      fault = Fault_plan.Packet_loss { prob = 1.0; rto = Time.ms 1 };
    };
  reject "Fault_plan: window 0: burst factor"
    {
      Fault_plan.at = Time.ms 1;
      duration = Time.ms 1;
      fault = Fault_plan.Tenant_burst { gen = 0; factor = 0.0 };
    }

(* ------------------------------------------------------------------ *)
(* Retry backoff: deterministic and bounded                           *)
(* ------------------------------------------------------------------ *)

let prop_retry_backoff_deterministic_and_bounded =
  QCheck.Test.make ~name:"retry backoff deterministic for a seed, bounded by worst case"
    ~count:200
    QCheck.(triple int64 (int_range 1 8) (int_range 0 4))
    (fun (seed, max_retries, j10) ->
      let policy =
        Retry.validate
          {
            Retry.timeout = Time.ms 5;
            max_retries;
            backoff_base = Time.us 200;
            backoff_mult = 2.0;
            backoff_max = Time.ms 10;
            jitter = float_of_int j10 /. 10.0;
          }
      in
      let schedule () =
        let prng = Prng.create seed in
        List.init max_retries (fun i -> Retry.delay_for policy ~attempt:(i + 1) ~prng)
      in
      let a = schedule () and b = schedule () in
      let total =
        List.fold_left Time.add
          (Time.scale policy.Retry.timeout (float_of_int (max_retries + 1)))
          a
      in
      let cap = Time.scale policy.Retry.backoff_max (1.0 +. policy.Retry.jitter) in
      a = b
      && List.for_all (fun d -> Time.(d > Time.zero) && Time.(d <= cap)) a
      && Time.(total <= Retry.worst_case_total policy))

(* ------------------------------------------------------------------ *)
(* Injector lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

let test_injector_die_fail_repricing () =
  let telemetry = Reflex_telemetry.Telemetry.create () in
  let w = Common.make_reflex ~telemetry ~seed:11L () in
  let cp = Reflex_core.Server.control_plane w.Common.server in
  let dev = Reflex_core.Server.device w.Common.server in
  let plan =
    [
      {
        Fault_plan.at = Time.ms 1;
        duration = Time.ms 5;
        fault = Fault_plan.Die_fail { die = 0 };
      };
    ]
  in
  let tgt = Injector.target ~sim:w.Common.sim ~server:w.Common.server ~telemetry () in
  let inj = Injector.arm tgt ~plan in
  ignore (Sim.run ~until:(Time.ms 3) w.Common.sim);
  Alcotest.(check int) "active during window" 1 (Injector.active inj);
  Alcotest.(check int) "one die down" 1 (Reflex_flash.Nvme_model.failed_dies dev);
  Alcotest.(check bool) "capacity factor reduced" true
    (Reflex_core.Control_plane.capacity_factor cp < 1.0);
  ignore (Sim.run w.Common.sim);
  Alcotest.(check int) "injected" 1 (Injector.injected inj);
  Alcotest.(check int) "recovered" 1 (Injector.recovered inj);
  Alcotest.(check int) "no die down after recovery" 0 (Reflex_flash.Nvme_model.failed_dies dev);
  Alcotest.(check (float 1e-9)) "capacity factor restored" 1.0
    (Reflex_core.Control_plane.capacity_factor cp);
  (* Fault marks paired into one closed window; counters match. *)
  (match Reflex_telemetry.Telemetry.fault_windows telemetry with
  | [ (label, start, Some stop) ] ->
    Alcotest.(check string) "label" "die_fail(0)" label;
    Alcotest.(check int64) "start" (Time.ms 1) start;
    Alcotest.(check int64) "stop" (Time.ms 6) stop
  | _ -> Alcotest.fail "expected exactly one closed fault window");
  let cv name =
    int_of_float
      (Reflex_telemetry.Telemetry.counter_value
         (Reflex_telemetry.Telemetry.counter telemetry name))
  in
  Alcotest.(check int) "telemetry injected counter" 1 (cv "faults/injected");
  Alcotest.(check int) "telemetry recovered counter" 1 (cv "faults/recovered")

let test_injector_gc_storm_bursts () =
  let sim = Sim.create () in
  let dev =
    Reflex_flash.Nvme_model.create sim
      ~profile:Reflex_flash.Device_profile.device_a
      ~prng:(Prng.split (Sim.prng sim))
  in
  let plan =
    [
      {
        Fault_plan.at = Time.ms 1;
        duration = Time.ms 10;
        fault = Fault_plan.Gc_storm { bursts_per_die = 3 };
      };
    ]
  in
  let inj = Injector.arm (Injector.target ~sim ~device:dev ()) ~plan in
  ignore (Sim.run sim);
  Alcotest.(check int) "window ran" 1 (Injector.recovered inj);
  Alcotest.(check bool) "erase bursts queued" true
    (Reflex_flash.Nvme_model.gc_storm_bursts dev > 0)

let test_injector_missing_target_raises () =
  let sim = Sim.create () in
  let plan =
    [ { Fault_plan.at = Time.ms 1; duration = Time.ms 1; fault = Fault_plan.Link_flap } ]
  in
  Alcotest.check_raises "fabric fault without fabric target"
    (Invalid_argument "Injector: plan needs a fabric target") (fun () ->
      ignore (Injector.arm (Injector.target ~sim ()) ~plan))

(* ------------------------------------------------------------------ *)
(* Zero impact when no fault is armed                                 *)
(* ------------------------------------------------------------------ *)

let probe_world ~arm_empty () =
  let w = Common.make_reflex ~seed:7L () in
  let sim = w.Common.sim in
  let client =
    Common.client_of w
      ~slo:(Common.lc_slo ~latency_us:500 ~iops:50_000 ~read_pct:100)
      ~tenant:1 ()
  in
  if arm_empty then
    ignore
      (Injector.arm
         (Injector.target ~sim ~fabric:w.Common.fabric ~server:w.Common.server ())
         ~plan:[]);
  let g =
    Load_gen.open_loop sim ~client ~pacing:`Poisson ~rate:20_000.0 ~read_ratio:0.9 ~bytes:4096
      ~until:(Time.ms 100) ~seed:3L ()
  in
  ignore (Sim.run sim);
  (Load_gen.issued g, Load_gen.completed g, Load_gen.p95_read_us g, Load_gen.mean_read_us g)

let test_empty_plan_is_invisible () =
  (* Arming an injector with an empty plan must leave the run
     byte-identical to never creating one: same issue counts, same
     latencies, same PRNG draw sequence everywhere. *)
  let i0, c0, p0, m0 = probe_world ~arm_empty:false () in
  let i1, c1, p1, m1 = probe_world ~arm_empty:true () in
  Alcotest.(check int) "issued identical" i0 i1;
  Alcotest.(check int) "completed identical" c0 c1;
  Alcotest.(check (float 0.0)) "p95 identical" p0 p1;
  Alcotest.(check (float 0.0)) "mean identical" m0 m1

(* ------------------------------------------------------------------ *)
(* Chaos scenario: determinism, SLO, bounded retries                  *)
(* ------------------------------------------------------------------ *)

let test_chaos_deterministic_and_resilient () =
  let seed = 42L in
  let r = Chaos.run ~mode:Common.Quick ~seed () in
  let s1 = Chaos.render_result r in
  let s2 = Chaos.render_result (Chaos.run ~mode:Common.Quick ~seed ()) in
  Alcotest.(check bool) "same-seed rerun byte-identical" true (String.equal s1 s2);
  (match Runner.map ~jobs:2 (fun s -> Chaos.render ~mode:Common.Quick ~seed:s ()) [ seed; seed ]
   with
  | [ p1; p2 ] ->
    Alcotest.(check bool) "parallel run 1 matches serial" true (String.equal s1 p1);
    Alcotest.(check bool) "parallel run 2 matches serial" true (String.equal s1 p2)
  | _ -> Alcotest.fail "Runner.map arity");
  Alcotest.(check int) "all windows injected" 3 r.Chaos.injected;
  Alcotest.(check int) "all windows recovered" 3 r.Chaos.recovered;
  Alcotest.(check bool) "faults provoked retries" true (r.Chaos.retries > 0);
  Alcotest.(check bool) "retries bounded by policy budget" true (Chaos.retries_bounded r);
  Alcotest.(check bool) "LC p95 within SLO in clean buckets" true (Chaos.clean_ok r)

(* Running the whole chaos scenario on the timing-wheel backend must
   render byte-identically to the heap backend at the same seed: backend
   selection changes the event-queue datapath, never the event order. *)
let test_chaos_backend_equivalence () =
  let seed = 42L in
  let saved = Sim.get_default_backend () in
  Fun.protect
    ~finally:(fun () -> Sim.set_default_backend saved)
    (fun () ->
      Sim.set_default_backend Sim.Heap;
      let heap = Chaos.render ~mode:Common.Quick ~seed () in
      Sim.set_default_backend Sim.Wheel;
      let wheel = Chaos.render ~mode:Common.Quick ~seed () in
      Alcotest.(check bool) "wheel chaos render == heap" true (String.equal heap wheel))

let suite =
  [
    ( "fault_plan",
      [
        Alcotest.test_case "scripted plan valid and scalable" `Quick test_plan_scripted_valid;
        Alcotest.test_case "validation rejects bad windows" `Quick test_plan_validation_rejects;
      ] );
    ("retry", [ qcheck prop_retry_backoff_deterministic_and_bounded ]);
    ( "injector",
      [
        Alcotest.test_case "die failure degrades and recovers" `Quick
          test_injector_die_fail_repricing;
        Alcotest.test_case "gc storm queues erase bursts" `Quick test_injector_gc_storm_bursts;
        Alcotest.test_case "missing target raises" `Quick test_injector_missing_target_raises;
        Alcotest.test_case "empty plan is invisible" `Quick test_empty_plan_is_invisible;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "deterministic, SLO-preserving, bounded retries" `Slow
          test_chaos_deterministic_and_resilient;
        Alcotest.test_case "wheel backend renders identically" `Slow
          test_chaos_backend_equivalence;
      ] );
  ]
