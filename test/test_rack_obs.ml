(* Tests for the rack-scale distributed tracer: hop-delta tiling over
   random small worlds (qcheck), per-kind flight wraparound accounting,
   the probe-age/dispatch gauges, Follows_from stitching, and byte
   identity of the stitched span trees and merged rollup across heap vs
   wheel event backends. *)

open Reflex_engine
open Reflex_rack
module Common = Reflex_experiments.Common
module Rack_obs = Reflex_rack_obs.Rack_obs
module Rack_rollup = Reflex_rack_obs.Rack_rollup
module Flight = Reflex_obs.Flight
module Telemetry = Reflex_telemetry.Telemetry

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* World building                                                     *)
(* ------------------------------------------------------------------ *)

(* A small traced world: [n] servers, [tenants] open-loop CBR streams at
   one read per 100us each, a forced rebalance of tenant 1 at t0+1ms,
   4ms of load and a 2ms drain so every dispatched request completes. *)
let traced_world ?(congested = false) ~seed ~n ~tenants () =
  let sim = Sim.create ~seed () in
  let link =
    if congested then
      Link.create ~switch:(Time.us 150) ~port_base:(Time.us 120)
        ~port_spread:(Time.us 150) ~n ()
    else Link.create ~n ()
  in
  let rack =
    Rack.create sim ~n_servers:n ~policy:Policy.Po2c ~link
      ~seed:(Int64.add seed 3L) ()
  in
  let obs = Rack_obs.create ~exemplars:2 rack in
  let placed = ref [] in
  for id = 1 to tenants do
    match
      Rack.add_tenant rack ~id
        ~slo:(Common.lc_slo ~latency_us:300 ~iops:500 ~read_pct:100)
        ~replicas:(min 2 n)
    with
    | `Placed _ -> placed := id :: !placed
    | `Rejected -> ()
  done;
  let placed = List.rev !placed in
  let t0 = Sim.now sim in
  let t_end = Time.add t0 (Time.ms 4) in
  Sim.every sim ~every:(Time.us 250) ~until:t_end (fun _ -> Rack.sample_probes rack);
  List.iter
    (fun id ->
      let prng = Prng.create (Int64.of_int ((id * 7919) + 13)) in
      Sim.every sim ~every:(Time.us 100) ~until:t_end (fun _ ->
          Rack.dispatch_read rack ~tenant:id
            ~lba:(Int64.of_int (Prng.int prng 4096 * 8))
            ~len:1024 ()))
    placed;
  (match placed with
  | a :: _ ->
    ignore
      (Sim.at sim (Time.add t0 (Time.ms 1)) (fun () ->
           ignore (Rack.rebalance rack ~tenant:a)))
  | [] -> ());
  ignore (Sim.run ~until:(Time.add t_end (Time.ms 2)) sim);
  (sim, rack, obs)

(* ------------------------------------------------------------------ *)
(* Tiling                                                             *)
(* ------------------------------------------------------------------ *)

(* The tentpole invariant: for EVERY completed request the five hop
   deltas sum exactly to the end-to-end latency, on normal and congested
   links alike, across random world shapes. *)
let qcheck_tiling =
  QCheck.Test.make ~name:"hop deltas tile e2e for every completed request" ~count:10
    QCheck.(triple int64 (int_range 2 4) (pair (int_range 2 6) bool))
    (fun (seed, n, (tenants, congested)) ->
      let _, rack, obs = traced_world ~congested ~seed ~n ~tenants () in
      Rack_obs.traced obs > 0
      && Rack_obs.traced obs = Rack.completed rack
      && Rack_obs.untiled obs = 0
      && Rack_obs.slot_overflow obs = 0)

let test_tiling_components_in_exemplars () =
  let _, _, obs = traced_world ~congested:true ~seed:21L ~n:3 ~tenants:4 () in
  Alcotest.(check bool) "exemplars captured" true (Rack_obs.exemplars obs <> []);
  List.iter
    (fun (ex : Rack_obs.exemplar) ->
      let sum =
        Time.add ex.ex_pick
          (Time.add ex.ex_ingress
             (Time.add ex.ex_queue (Time.add ex.ex_service ex.ex_egress)))
      in
      Alcotest.(check bool) "exemplar components tile e2e" true
        (Time.equal sum ex.ex_e2e))
    (Rack_obs.exemplars obs)

let test_counters_and_attribution () =
  let _, rack, obs = traced_world ~seed:7L ~n:4 ~tenants:6 () in
  Alcotest.(check int) "every completion traced" (Rack.completed rack)
    (Rack_obs.traced obs);
  Alcotest.(check int) "all traffic is LC here" (Rack_obs.traced obs)
    (Rack_obs.lc_traced obs);
  Alcotest.(check int) "no NVMe-stamp fallbacks on the happy path" 0
    (Rack_obs.fallbacks obs);
  Alcotest.(check bool) "tiling holds" true (Rack_obs.tiling_ok obs);
  let att = Rack_obs.attribution obs in
  Alcotest.(check bool) "attribution reports exact tiling" true
    (contains att "tiling EXACT")

(* ------------------------------------------------------------------ *)
(* Per-kind wraparound accounting (Flight)                            *)
(* ------------------------------------------------------------------ *)

let test_flight_kind_accounting () =
  let fl = Flight.create ~capacity:8 () in
  let at i = Time.us i in
  for i = 1 to 6 do
    Flight.record fl ~now:(at i) ~kind:Flight.Kind.Queue_depth ~a:i ~b:0 ~v:0.0
  done;
  for i = 7 to 12 do
    Flight.record fl ~now:(at i) ~kind:Flight.Kind.Hop ~a:i ~b:8 ~v:1.0
  done;
  let s = Flight.snapshot fl ~now:(at 12) ~window:(Time.ms 1) in
  (* 12 written into 8 slots: the 4 oldest (all Queue_depth) are gone. *)
  Alcotest.(check int) "queue_depth written" 6
    (Flight.snap_kind_written s Flight.Kind.Queue_depth);
  Alcotest.(check int) "hop written" 6 (Flight.snap_kind_written s Flight.Kind.Hop);
  Alcotest.(check int) "queue_depth retained" 2
    (Flight.snap_kind_retained s Flight.Kind.Queue_depth);
  Alcotest.(check int) "hop retained" 6 (Flight.snap_kind_retained s Flight.Kind.Hop);
  Alcotest.(check int) "queue_depth dropped" 4
    (Flight.snap_kind_dropped s Flight.Kind.Queue_depth);
  Alcotest.(check int) "hop dropped" 0 (Flight.snap_kind_dropped s Flight.Kind.Hop);
  Alcotest.(check int) "totals agree" (Flight.total fl) s.Flight.snap_total;
  Alcotest.(check int) "drops agree" (Flight.dropped fl) s.Flight.snap_dropped

(* ------------------------------------------------------------------ *)
(* Gauges (probe age, policy dispatch counters)                       *)
(* ------------------------------------------------------------------ *)

let test_rack_gauges () =
  let sim = Sim.create ~seed:5L () in
  let telemetry = Telemetry.create () in
  let rack = Rack.create sim ~n_servers:3 ~seed:0x5EEDL ~telemetry () in
  (match Rack.add_tenant rack ~id:1 ~slo:(Common.lc_slo ~latency_us:300 ~iops:500 ~read_pct:100) ~replicas:1 with
  | `Placed _ -> ()
  | `Rejected -> Alcotest.fail "placement rejected");
  let gauge name =
    match Telemetry.find_metric telemetry name with
    | Some (`Gauge v) -> v
    | _ -> Alcotest.fail (name ^ " not registered as a gauge")
  in
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.us 400)) sim);
  Alcotest.(check bool) "probe age grows with staleness" true
    (gauge "rack/probe_age_us" >= 400.0);
  Rack.sample_probes rack;
  Alcotest.(check (float 1e-9)) "probe age resets on sample" 0.0
    (gauge "rack/probe_age_us");
  Alcotest.(check (float 1e-9)) "per-server age matches" 0.0
    (gauge "rack/s01/probe_age_us");
  Alcotest.(check (float 1e-9)) "no LC dispatches yet" 0.0
    (gauge "rack/policy/dispatched");
  Rack.dispatch_read rack ~tenant:1 ~lba:0L ~len:1024 ();
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 1)) sim);
  Alcotest.(check (float 1e-9)) "dispatch counter exported" 1.0
    (gauge "rack/policy/dispatched")

(* ------------------------------------------------------------------ *)
(* Stitching and rollup                                               *)
(* ------------------------------------------------------------------ *)

let artifacts ~seed =
  let sim, _, obs = traced_world ~seed ~n:3 ~tenants:4 () in
  let now = Sim.now sim in
  let server_snaps = Rack_obs.snapshot_servers obs ~now ~window:(Time.ms 10) in
  let rack_snap = Rack_obs.snapshot_rack obs ~now ~window:(Time.ms 10) in
  ( Rack_rollup.stitch ~server_snaps ~rack_snap,
    Rack_rollup.chrome_trace ~server_snaps ~rack_snap,
    Rack_obs.migrations obs )

let test_follows_from_stitched () =
  let stitch, chrome, migs = artifacts ~seed:31L in
  Alcotest.(check bool) "a migration happened" true (migs <> []);
  Alcotest.(check bool) "stitch shows the Follows_from parent" true
    (contains stitch "follows_from migrate");
  Alcotest.(check bool) "rollup carries the flow arrows" true
    (contains chrome "\"ph\":\"s\"" && contains chrome "\"ph\":\"f\"");
  Alcotest.(check bool) "rollup names the lanes" true
    (contains chrome "\"name\":\"rack-02\"")

let test_stitch_deterministic_across_backends () =
  let base_stitch, base_chrome, _ = artifacts ~seed:31L in
  let saved = Sim.get_default_backend () in
  let other = match saved with Sim.Heap -> Sim.Wheel | Sim.Wheel -> Sim.Heap in
  Sim.set_default_backend other;
  let cross_stitch, cross_chrome, _ =
    Fun.protect
      ~finally:(fun () -> Sim.set_default_backend saved)
      (fun () -> artifacts ~seed:31L)
  in
  Alcotest.(check string) "stitched span trees byte-identical across backends"
    base_stitch cross_stitch;
  Alcotest.(check string) "merged rollup byte-identical across backends" base_chrome
    cross_chrome

let test_stitch_same_seed_rerun () =
  let base_stitch, base_chrome, _ = artifacts ~seed:17L in
  let again_stitch, again_chrome, _ = artifacts ~seed:17L in
  Alcotest.(check string) "stitch byte-identical on rerun" base_stitch again_stitch;
  Alcotest.(check string) "rollup byte-identical on rerun" base_chrome again_chrome

(* ------------------------------------------------------------------ *)
(* Suite                                                              *)
(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "tiling",
      [
        qcheck qcheck_tiling;
        Alcotest.test_case "exemplar components tile" `Quick
          test_tiling_components_in_exemplars;
        Alcotest.test_case "counters + attribution" `Quick test_counters_and_attribution;
      ] );
    ( "flight",
      [
        Alcotest.test_case "per-kind wraparound accounting" `Quick
          test_flight_kind_accounting;
      ] );
    ( "gauges",
      [ Alcotest.test_case "probe age + dispatch gauges" `Quick test_rack_gauges ] );
    ( "rollup",
      [
        Alcotest.test_case "Follows_from stitched" `Quick test_follows_from_stitched;
        Alcotest.test_case "heap vs wheel byte-identical" `Quick
          test_stitch_deterministic_across_backends;
        Alcotest.test_case "same-seed rerun byte-identical" `Quick
          test_stitch_same_seed_rerun;
      ] );
  ]
