(* Aggregates every library's test suite into one alcotest binary so that
   `dune runtest` exercises the whole repository. *)

let () =
  let tag name suites = List.map (fun (n, tests) -> (name ^ "." ^ n, tests)) suites in
  Alcotest.run "reflex" (tag "engine" Test_engine.suite @ tag "stats" Test_stats.suite @ tag "flash" Test_flash.suite @ tag "proto" Test_proto.suite @ tag "net" Test_net.suite @ tag "qos" Test_qos.suite @ tag "core" Test_core.suite @ tag "apps" Test_apps.suite @ tag "experiments" Test_experiments.suite @ tag "telemetry" Test_telemetry.suite @ tag "faults" Test_faults.suite @ tag "monitor" Test_monitor.suite @ tag "obs" Test_obs.suite @ tag "rack" Test_rack.suite @ tag "rack_obs" Test_rack_obs.suite @ tag "lint" Test_lint.suite)
