(* Tests for the measurement toolkit. *)

open Reflex_engine
open Reflex_stats

(* ------------------------------------------------------------------ *)
(* Hdr_histogram                                                      *)
(* ------------------------------------------------------------------ *)

let test_hdr_small_exact () =
  let h = Hdr_histogram.create () in
  List.iter (fun v -> Hdr_histogram.record h (Int64.of_int v)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Hdr_histogram.count h);
  Alcotest.(check int64) "p0 = min" 1L (Hdr_histogram.percentile h 0.0);
  Alcotest.(check int64) "median" 3L (Hdr_histogram.percentile h 50.0);
  Alcotest.(check int64) "p100 = max" 5L (Hdr_histogram.percentile h 100.0);
  Alcotest.(check int64) "min" 1L (Hdr_histogram.min_value h);
  Alcotest.(check int64) "max" 5L (Hdr_histogram.max_value h)

let test_hdr_mean () =
  let h = Hdr_histogram.create () in
  Hdr_histogram.record_n h 100L 3;
  Hdr_histogram.record h 200L;
  Alcotest.(check (float 1e-9)) "mean" 125.0 (Hdr_histogram.mean h)

let test_hdr_relative_error () =
  (* Large values land in log buckets; relative error must stay under ~3%. *)
  let h = Hdr_histogram.create () in
  let v = 123_456_789L in
  Hdr_histogram.record h v;
  let p = Hdr_histogram.percentile h 50.0 in
  let err =
    Int64.to_float (Int64.sub p v) /. Int64.to_float v
  in
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.4f within 3%%" err)
    true
    (err >= 0.0 && err <= 0.03)

let test_hdr_merge_reset () =
  let a = Hdr_histogram.create () and b = Hdr_histogram.create () in
  Hdr_histogram.record a 10L;
  Hdr_histogram.record b 20L;
  Hdr_histogram.merge ~dst:a ~src:b;
  Alcotest.(check int) "merged count" 2 (Hdr_histogram.count a);
  Alcotest.(check int64) "merged max" 20L (Hdr_histogram.max_value a);
  Hdr_histogram.reset a;
  Alcotest.(check int) "reset count" 0 (Hdr_histogram.count a)

let test_hdr_empty_defined () =
  let h = Hdr_histogram.create () in
  (* Empty histogram: every percentile is the defined value 0. *)
  List.iter
    (fun p -> Alcotest.(check int64) (Printf.sprintf "empty p%.0f" p) 0L (Hdr_histogram.percentile h p))
    [ 0.0; 50.0; 99.9; 100.0 ];
  Alcotest.check_raises "out-of-range p still raises"
    (Invalid_argument "Hdr_histogram.percentile: out of range") (fun () ->
      ignore (Hdr_histogram.percentile h 101.0))

let test_hdr_single_sample () =
  (* A single-sample histogram reports exactly that sample for every p,
     even when the value lands in a coarse log bucket. *)
  let h = Hdr_histogram.create () in
  let v = 123_456_789L in
  Hdr_histogram.record h v;
  List.iter
    (fun p -> Alcotest.(check int64) (Printf.sprintf "single p%.1f" p) v (Hdr_histogram.percentile h p))
    [ 0.0; 0.1; 50.0; 99.9; 100.0 ]

let hist_of values =
  let h = Hdr_histogram.create () in
  List.iter (fun v -> Hdr_histogram.record h (Int64.of_int v)) values;
  h

let check_hist_equal msg a b =
  Alcotest.(check int) (msg ^ ": count") (Hdr_histogram.count a) (Hdr_histogram.count b);
  Alcotest.(check int64) (msg ^ ": min") (Hdr_histogram.min_value a) (Hdr_histogram.min_value b);
  Alcotest.(check int64) (msg ^ ": max") (Hdr_histogram.max_value a) (Hdr_histogram.max_value b);
  List.iter
    (fun p ->
      Alcotest.(check int64)
        (Printf.sprintf "%s: p%.0f" msg p)
        (Hdr_histogram.percentile a p) (Hdr_histogram.percentile b p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ]

let test_hdr_copy_independent () =
  let h = hist_of [ 10; 20 ] in
  let c = Hdr_histogram.copy h in
  Hdr_histogram.record h 30L;
  Alcotest.(check int) "copy unchanged" 2 (Hdr_histogram.count c);
  Alcotest.(check int) "original grew" 3 (Hdr_histogram.count h)

let test_hdr_diff_exact () =
  let h = hist_of [ 100; 100; 100 ] in
  let s = Hdr_histogram.copy h in
  Hdr_histogram.record h 100L;
  Hdr_histogram.record h 5000L;
  let d = Hdr_histogram.diff h ~since:s in
  Alcotest.(check int) "delta count" 2 (Hdr_histogram.count d);
  Alcotest.(check int) "delta above 100" 1 (Hdr_histogram.count_above d 100L);
  Alcotest.(check int64) "delta min" 100L (Hdr_histogram.min_value d);
  (* diff then add-back reconstructs the original exactly *)
  Hdr_histogram.merge ~dst:s ~src:d;
  check_hist_equal "diff+merge = id" h s

let test_hdr_diff_negative_raises () =
  let a = hist_of [ 10 ] and b = hist_of [ 10; 10 ] in
  Alcotest.check_raises "non-snapshot rejected"
    (Invalid_argument "Hdr_histogram.diff: since is not an earlier snapshot of this histogram")
    (fun () -> ignore (Hdr_histogram.diff a ~since:b))

let test_hdr_count_above () =
  let h = hist_of (List.init 100 (fun i -> i + 1)) in
  (* values 1..100 are exact (sub-bucket range or single-unit buckets) *)
  Alcotest.(check int) "above 50" 50 (Hdr_histogram.count_above h 50L);
  Alcotest.(check int) "negative threshold counts all" 100 (Hdr_histogram.count_above h (-1L));
  Alcotest.(check int) "above max" 0 (Hdr_histogram.count_above h 100L);
  (* monotone non-increasing in the threshold *)
  let prev = ref max_int in
  List.iter
    (fun v ->
      let c = Hdr_histogram.count_above h (Int64.of_int v) in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" v) true (c <= !prev);
      prev := c)
    [ 0; 10; 25; 50; 75; 99; 1000 ]

let sample_gen = QCheck.(list_of_size Gen.(int_range 0 300) (int_range 1 50_000_000))

let prop_hdr_merge_commutes =
  QCheck.Test.make ~name:"merge commutes" ~count:50 QCheck.(pair sample_gen sample_gen)
    (fun (a, b) ->
      let ab = hist_of a in
      Hdr_histogram.merge ~dst:ab ~src:(hist_of b);
      let ba = hist_of b in
      Hdr_histogram.merge ~dst:ba ~src:(hist_of a);
      Hdr_histogram.count ab = Hdr_histogram.count ba
      && Hdr_histogram.min_value ab = Hdr_histogram.min_value ba
      && Hdr_histogram.max_value ab = Hdr_histogram.max_value ba
      && List.for_all
           (fun p -> Hdr_histogram.percentile ab p = Hdr_histogram.percentile ba p)
           [ 0.0; 50.0; 95.0; 99.0; 100.0 ])

let prop_hdr_diff_add_id =
  QCheck.Test.make ~name:"diff conserves counts and add-back restores" ~count:50
    QCheck.(pair sample_gen sample_gen)
    (fun (a, b) ->
      let h = hist_of a in
      let s = Hdr_histogram.copy h in
      List.iter (fun v -> Hdr_histogram.record h (Int64.of_int v)) b;
      let d = Hdr_histogram.diff h ~since:s in
      let conserved =
        Hdr_histogram.count s + Hdr_histogram.count d = Hdr_histogram.count h
        && Hdr_histogram.count d = List.length b
      in
      Hdr_histogram.merge ~dst:s ~src:d;
      conserved
      && Hdr_histogram.count s = Hdr_histogram.count h
      && Hdr_histogram.min_value s = Hdr_histogram.min_value h
      && Hdr_histogram.max_value s = Hdr_histogram.max_value h
      && List.for_all
           (fun p -> Hdr_histogram.percentile s p = Hdr_histogram.percentile h p)
           [ 0.0; 50.0; 95.0; 99.0; 100.0 ])

let prop_hdr_vs_reservoir =
  QCheck.Test.make ~name:"hdr percentile within one bucket of exact" ~count:50
    QCheck.(list_of_size Gen.(int_range 100 2000) (int_range 1_000 100_000_000))
    (fun values ->
      let h = Hdr_histogram.create () in
      let prng = Prng.create 1L in
      let r = Reservoir.create prng in
      List.iter
        (fun v ->
          Hdr_histogram.record h (Int64.of_int v);
          Reservoir.add r (float_of_int v))
        values;
      (* Compare at hdr's own rank convention — the ceil-rank-th smallest
         sample — so the only divergence left is bucket granularity
         (~1.6% with 6 sub-bucket bits).  Comparing against linear
         interpolation instead makes the error sample-spacing-dominated
         and flaky at these list sizes. *)
      let sorted = Reservoir.values r in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let approx = Int64.to_float (Hdr_histogram.percentile h p) in
          let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
          let exact = sorted.(max 0 (rank - 1)) in
          (* hdr reports the inclusive upper edge of the bucket holding
             the rank-th value, clamped into the observed range. *)
          approx >= exact && approx <= (exact *. 1.04) +. 2.0)
        [ 50.0; 90.0; 95.0; 99.0 ])

let prop_hdr_monotone =
  QCheck.Test.make ~name:"hdr percentiles are monotone in p" ~count:50
    QCheck.(list_of_size Gen.(int_range 10 500) (int_range 1 10_000_000))
    (fun values ->
      let h = Hdr_histogram.create () in
      List.iter (fun v -> Hdr_histogram.record h (Int64.of_int v)) values;
      let ps = [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ] in
      let vals = List.map (Hdr_histogram.percentile h) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && monotone rest
        | _ -> true
      in
      monotone vals)

(* ------------------------------------------------------------------ *)
(* Reservoir                                                          *)
(* ------------------------------------------------------------------ *)

let test_reservoir_exact_percentiles () =
  let r = Reservoir.create (Prng.create 3L) in
  for i = 1 to 100 do
    Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check (float 1e-6)) "median" 50.5 (Reservoir.percentile r 50.0);
  Alcotest.(check (float 1e-6)) "p95" 95.05 (Reservoir.percentile r 95.0);
  Alcotest.(check (float 1e-6)) "mean" 50.5 (Reservoir.mean r)

let test_reservoir_sampling_cap () =
  let r = Reservoir.create ~capacity:100 (Prng.create 5L) in
  for i = 1 to 10_000 do
    Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "seen all" 10_000 (Reservoir.count r);
  Alcotest.(check int) "stored capped" 100 (Array.length (Reservoir.values r));
  (* The sampled median should still be near 5000. *)
  let med = Reservoir.percentile r 50.0 in
  Alcotest.(check bool) "sampled median plausible" true (med > 3_000.0 && med < 7_000.0)

(* ------------------------------------------------------------------ *)
(* Summary                                                            *)
(* ------------------------------------------------------------------ *)

let test_summary_moments () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  Alcotest.(check (float 1e-6)) "sample variance" (32.0 /. 7.0) (Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Summary.max_value s);
  Summary.reset s;
  Alcotest.(check int) "reset" 0 (Summary.count s)

(* ------------------------------------------------------------------ *)
(* Meter                                                              *)
(* ------------------------------------------------------------------ *)

let test_meter_rate () =
  let sim = Sim.create () in
  let m = Meter.create sim in
  (* 1000 marks over 10ms = 100K/s *)
  for i = 1 to 1000 do
    ignore (Sim.at sim (Time.us (i * 10)) (fun () -> Meter.mark m ()))
  done;
  ignore (Sim.run sim);
  Alcotest.(check (float 1.0)) "rate 100K/s" 100_000.0 (Meter.rate m)

let test_meter_checkpoint () =
  let sim = Sim.create () in
  let m = Meter.create sim in
  ignore (Sim.at sim (Time.ms 1) (fun () -> Meter.mark m ~n:100 ()));
  ignore (Sim.run ~until:(Time.ms 1) sim);
  let r1 = Meter.checkpoint m in
  Alcotest.(check (float 1.0)) "first window" 100_000.0 r1;
  ignore (Sim.at sim (Time.ms 2) (fun () -> Meter.mark m ~n:300 ()));
  ignore (Sim.run ~until:(Time.ms 2) sim);
  let r2 = Meter.checkpoint m in
  Alcotest.(check (float 1.0)) "second window independent" 300_000.0 r2

(* ------------------------------------------------------------------ *)
(* Linear_fit                                                         *)
(* ------------------------------------------------------------------ *)

let test_fit_exact_line () =
  let pts = [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  let f = Linear_fit.fit pts in
  Alcotest.(check (float 1e-9)) "slope" 2.0 f.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 f.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 f.r2

let test_fit_through_origin () =
  let pts = [ (1.0, 2.1); (2.0, 3.9); (4.0, 8.1) ] in
  let f = Linear_fit.fit_through_origin pts in
  Alcotest.(check bool) "slope ~2" true (abs_float (f.slope -. 2.0) < 0.05);
  Alcotest.(check (float 1e-9)) "intercept 0" 0.0 f.intercept

let test_fit_degenerate () =
  Alcotest.check_raises "single point" (Invalid_argument "Linear_fit.fit: need at least 2 points")
    (fun () -> ignore (Linear_fit.fit [ (1.0, 1.0) ]))

let prop_fit_recovers_line =
  QCheck.Test.make ~name:"fit recovers noiseless line" ~count:100
    QCheck.(triple (float_range (-10.0) 10.0) (float_range (-10.0) 10.0) (int_range 3 30))
    (fun (a, b, n) ->
      let pts = List.init n (fun i -> (float_of_int i, a +. (b *. float_of_int i))) in
      let f = Linear_fit.fit pts in
      abs_float (f.slope -. b) < 1e-6 && abs_float (f.intercept -. a) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> String.length l >= 8 && String.sub l 0 8 = "alpha  1"));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns") (fun () ->
      Table.add_row t [ "x" ])

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "hdr_histogram",
      [
        Alcotest.test_case "small values exact" `Quick test_hdr_small_exact;
        Alcotest.test_case "mean" `Quick test_hdr_mean;
        Alcotest.test_case "bounded relative error" `Quick test_hdr_relative_error;
        Alcotest.test_case "merge and reset" `Quick test_hdr_merge_reset;
        Alcotest.test_case "empty is defined" `Quick test_hdr_empty_defined;
        Alcotest.test_case "single sample exact" `Quick test_hdr_single_sample;
        Alcotest.test_case "copy is independent" `Quick test_hdr_copy_independent;
        Alcotest.test_case "diff is the exact delta" `Quick test_hdr_diff_exact;
        Alcotest.test_case "diff rejects non-snapshots" `Quick test_hdr_diff_negative_raises;
        Alcotest.test_case "count_above" `Quick test_hdr_count_above;
        qcheck prop_hdr_merge_commutes;
        qcheck prop_hdr_diff_add_id;
        qcheck prop_hdr_vs_reservoir;
        qcheck prop_hdr_monotone;
      ] );
    ( "reservoir",
      [
        Alcotest.test_case "exact percentiles" `Quick test_reservoir_exact_percentiles;
        Alcotest.test_case "sampling past capacity" `Quick test_reservoir_sampling_cap;
      ] );
    ("summary", [ Alcotest.test_case "moments" `Quick test_summary_moments ]);
    ( "meter",
      [
        Alcotest.test_case "rate" `Quick test_meter_rate;
        Alcotest.test_case "checkpoint windows" `Quick test_meter_checkpoint;
      ] );
    ( "linear_fit",
      [
        Alcotest.test_case "exact line" `Quick test_fit_exact_line;
        Alcotest.test_case "through origin" `Quick test_fit_through_origin;
        Alcotest.test_case "degenerate input" `Quick test_fit_degenerate;
        qcheck prop_fit_recovers_line;
      ] );
    ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
  ]
