(* Tests for the rack-scale scheduler: link latency table, balancing
   policies (unit + qcheck invariants), the skew detector, the rack
   request/migration path on a small world, and a small end-to-end
   bakeoff checked for byte-identical determinism across serial vs
   two-domain runs and heap vs wheel event backends. *)

open Reflex_engine
open Reflex_rack
module Common = Reflex_experiments.Common
module Rack_exp = Reflex_experiments.Rack_exp
module Global_control = Reflex_core.Global_control

(* ------------------------------------------------------------------ *)
(* Link                                                               *)
(* ------------------------------------------------------------------ *)

let test_link_table () =
  let l = Link.create ~n:8 () in
  Alcotest.(check int) "ports" 8 (Link.n_ports l);
  Alcotest.(check bool) "loopback is free" true
    (Time.equal (Link.latency l ~src:3 ~dst:3) Time.zero);
  for i = 0 to 7 do
    Alcotest.(check bool) "ingress covers the switch" true
      Time.(Link.ingress l i >= Time.us 1);
    Alcotest.(check bool) "port delay below base+spread" true
      Time.(Link.port_delay l i < Time.add (Time.ns 300) (Time.ns 600))
  done;
  (* src->dst is symmetric (port src + switch + port dst). *)
  Alcotest.(check bool) "symmetric" true
    (Time.equal (Link.latency l ~src:1 ~dst:5) (Link.latency l ~src:5 ~dst:1));
  (* Same construction, same table: no hidden PRNG. *)
  let l' = Link.create ~n:8 () in
  for i = 0 to 7 do
    Alcotest.(check bool) "deterministic" true
      (Time.equal (Link.port_delay l i) (Link.port_delay l' i))
  done

(* ------------------------------------------------------------------ *)
(* Policy                                                             *)
(* ------------------------------------------------------------------ *)

let mk kind = Policy.create kind ~prng:(Prng.create 7L)

let test_policy_names () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "name roundtrips" true
        (Policy.kind_of_name (Policy.kind_name k) = Some k))
    Policy.all;
  Alcotest.(check bool) "unknown name" true (Policy.kind_of_name "zippy" = None);
  let idx = List.map Policy.kind_index Policy.all in
  Alcotest.(check bool) "indices distinct" true
    (List.length (List.sort_uniq compare idx) = List.length idx)

let test_policy_single_candidate () =
  (* One candidate: every policy returns it without consulting load. *)
  let sampled = [| 9; 9; 9; 9 |] and exact = [| 9; 9; 9; 9 |] in
  List.iter
    (fun k ->
      let p = mk k in
      Alcotest.(check int)
        (Policy.kind_name k ^ " single")
        2
        (Policy.pick p ~candidates:[| 2 |] ~sampled ~exact))
    Policy.all

let test_policy_jsq_oracle_argmin () =
  let sampled = [| 5; 1; 7; 3 |] and exact = [| 0; 9; 9; 9 |] in
  let cands = [| 0; 1; 2; 3 |] in
  Alcotest.(check int) "jsq takes sampled argmin" 1
    (Policy.pick (mk Policy.Jsq) ~candidates:cands ~sampled ~exact);
  Alcotest.(check int) "oracle takes exact argmin" 0
    (Policy.pick (mk Policy.Oracle) ~candidates:cands ~sampled ~exact);
  (* Ties break toward the lowest server index. *)
  let flat = [| 4; 4; 4; 4 |] in
  Alcotest.(check int) "jsq tie -> lowest" 0
    (Policy.pick (mk Policy.Jsq) ~candidates:[| 3; 0; 2 |] ~sampled:flat ~exact);
  Alcotest.(check int) "oracle tie -> lowest" 0
    (Policy.pick (mk Policy.Oracle) ~candidates:[| 3; 0; 2 |] ~sampled ~exact:flat)

let test_policy_round_robin_cycles () =
  let p = mk Policy.Round_robin in
  let zeros = Array.make 10 0 in
  let picks =
    List.init 6 (fun _ -> Policy.pick p ~candidates:[| 4; 2; 9 |] ~sampled:zeros ~exact:zeros)
  in
  Alcotest.(check (list int)) "cursor cycles candidate positions" [ 4; 2; 9; 4; 2; 9 ] picks

let test_policy_deterministic_stream () =
  (* Same seed, same candidate sequence => same picks (Random, Po2c). *)
  let run kind =
    let p = Policy.create kind ~prng:(Prng.create 99L) in
    let sampled = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
    List.init 32 (fun i ->
        let c = [| i mod 8; (i + 3) mod 8; (i + 5) mod 8 |] in
        Policy.pick p ~candidates:c ~sampled ~exact:sampled)
  in
  List.iter
    (fun k ->
      Alcotest.(check (list int)) (Policy.kind_name k ^ " replays") (run k) (run k))
    [ Policy.Random; Policy.Po2c ]

(* QCheck: JSQ (argmin over all candidates) never lands on a strictly
   longer sampled queue than po2c's better-of-two sample. *)
let qcheck_jsq_beats_po2c_sample =
  QCheck.Test.make ~name:"jsq pick <= po2c pick on sampled depth" ~count:500
    QCheck.(pair int64 (list_of_size (Gen.int_range 1 12) (int_range 0 100)))
    (fun (seed, depths) ->
      QCheck.assume (depths <> []);
      let sampled = Array.of_list depths in
      let n = Array.length sampled in
      let candidates = Array.init n (fun i -> i) in
      let jsq = Policy.create Policy.Jsq ~prng:(Prng.create seed) in
      let po2c = Policy.create Policy.Po2c ~prng:(Prng.create seed) in
      let j = Policy.pick jsq ~candidates ~sampled ~exact:sampled in
      let p = Policy.pick po2c ~candidates ~sampled ~exact:sampled in
      sampled.(j) <= sampled.(p))

(* QCheck: every policy returns a member of its candidate set. *)
let qcheck_pick_in_candidates =
  QCheck.Test.make ~name:"picks stay inside the candidate set" ~count:300
    QCheck.(pair int64 (list_of_size (Gen.int_range 1 8) (int_range 0 15)))
    (fun (seed, cand_l) ->
      QCheck.assume (cand_l <> []);
      let candidates = Array.of_list (List.sort_uniq compare cand_l) in
      let sampled = Array.make 16 0 in
      Array.iteri (fun i _ -> sampled.(i) <- i * 3 mod 7) sampled;
      List.for_all
        (fun k ->
          let p = Policy.create k ~prng:(Prng.create seed) in
          let c = Policy.pick p ~candidates ~sampled ~exact:sampled in
          Array.exists (fun x -> x = c) candidates)
        Policy.all)

(* ------------------------------------------------------------------ *)
(* Skew                                                               *)
(* ------------------------------------------------------------------ *)

let test_skew_fires_on_persistent_outlier () =
  let sk = Skew.create ~cooldown:Time.zero () in
  let fired = ref None in
  for tick = 1 to 20 do
    let now = Time.of_float_us (float_of_int tick *. 250.0) in
    match Skew.observe sk ~now ~depths:[| 2; 40; 2; 2; 2; 2 |] with
    | Some s when !fired = None -> fired := Some s
    | _ -> ()
  done;
  Alcotest.(check (option int)) "names the hot server" (Some 1) !fired;
  Alcotest.(check bool) "imbalance ratio is high" true (Skew.imbalance sk > 2.0)

let test_skew_quiet_on_balance () =
  let sk = Skew.create ~cooldown:Time.zero () in
  for tick = 1 to 20 do
    let now = Time.of_float_us (float_of_int tick *. 250.0) in
    Alcotest.(check (option int)) "balanced rack never fires" None
      (Skew.observe sk ~now ~depths:[| 3; 4; 3; 4; 3; 4 |])
  done;
  Alcotest.(check int) "no firings" 0 (Skew.fires sk)

let test_skew_cooldown () =
  let sk = Skew.create ~cooldown:(Time.ms 100) () in
  for tick = 1 to 20 do
    let now = Time.of_float_us (float_of_int tick *. 250.0) in
    ignore (Skew.observe sk ~now ~depths:[| 2; 40; 2; 2; 2; 2 |])
  done;
  Alcotest.(check int) "cooldown caps firings" 1 (Skew.fires sk)

(* ------------------------------------------------------------------ *)
(* Rack world (small)                                                 *)
(* ------------------------------------------------------------------ *)

let small_rack ?policy () =
  let sim = Sim.create ~seed:11L () in
  let rack = Rack.create sim ~n_servers:4 ?policy ~seed:0x5EEDL () in
  (sim, rack)

let lc = Common.lc_slo ~latency_us:300 ~iops:1000 ~read_pct:100

let test_rack_placement_distinct_replicas () =
  let _sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:3 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed srvs ->
    Alcotest.(check int) "three replicas" 3 (Array.length srvs);
    let uniq = List.sort_uniq compare (Array.to_list srvs) in
    Alcotest.(check int) "replicas on distinct servers" 3 (List.length uniq);
    Alcotest.(check int) "home is slot 0" (Rack.tenant_home rack ~tenant:1) srvs.(0));
  (* More replicas than servers: keeps what could register. *)
  match Rack.add_tenant rack ~id:2 ~slo:lc ~replicas:9 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed srvs ->
    Alcotest.(check bool) "capped at rack size" true (Array.length srvs <= 4)

let test_rack_global_control_order () =
  (* Global_control.servers must list the rack in insertion (index)
     order — placement scan order is part of the determinism story. *)
  let _sim, rack = small_rack () in
  let names = List.map fst (Global_control.servers (Rack.control rack)) in
  Alcotest.(check (list string)) "insertion order"
    [ "rack-00"; "rack-01"; "rack-02"; "rack-03" ]
    names;
  let probes = Global_control.probes (Rack.control rack) in
  Alcotest.(check (list string)) "probes share the order"
    names
    (List.map (fun p -> p.Global_control.probe_name) probes)

let test_rack_place_excluding_set () =
  let _sim, rack = small_rack () in
  let gc = Rack.control rack in
  let slo = Reflex_qos.Slo.latency_critical ~latency_us:300 ~iops:100.0 ~read_pct:100 in
  (match
     Global_control.place_excluding_set gc ~slo
       ~excluding:[ "rack-00"; "rack-01"; "rack-02" ]
   with
  | None -> Alcotest.fail "no placement"
  | Some p -> Alcotest.(check string) "only candidate left" "rack-03" p.Global_control.server_name);
  (* place_excluding is the single-name thin wrapper. *)
  (match Global_control.place_excluding gc ~slo ~excluding:"rack-00" with
  | None -> Alcotest.fail "no placement"
  | Some p ->
    Alcotest.(check bool) "wrapper honors the exclusion" true
      (p.Global_control.server_name <> "rack-00"));
  match
    Global_control.place_excluding_set gc ~slo
      ~excluding:[ "rack-00"; "rack-01"; "rack-02"; "rack-03" ]
  with
  | None -> ()
  | Some _ -> Alcotest.fail "placement ignored the exclusion set"

let run_some_reads sim rack ~tenant ~n =
  let prng = Prng.create 5L in
  for _ = 1 to n do
    Rack.dispatch_read rack ~tenant ~lba:(Int64.of_int (Prng.int prng 4096 * 8)) ~len:1024 ();
    ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.us 400)) sim)
  done

let test_rack_dispatch_completes () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:2 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed _ -> ());
  run_some_reads sim rack ~tenant:1 ~n:20;
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 2)) sim);
  Alcotest.(check int) "all reads completed" 20 (Rack.completed rack);
  Alcotest.(check int) "no errors" 0 (Rack.errors rack);
  Alcotest.(check int) "all were LC dispatches" 20 (Rack.lc_dispatched rack);
  Alcotest.(check int) "slo audited" 20 (Rack.slo_total rack);
  Alcotest.(check bool) "inflight drained" true
    (Array.for_all (fun x -> x = 0) (Rack.exact_inflight rack))

let test_rack_migrate_noop_idempotent () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:1 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed _ -> ());
  let home = Rack.tenant_home rack ~tenant:1 in
  let replicas = Rack.tenant_replicas rack ~tenant:1 in
  (* Migrating to the current home is a no-op, any number of times. *)
  for _ = 1 to 3 do
    match Rack.migrate rack ~tenant:1 ~dst:home with
    | `Noop -> ()
    | _ -> Alcotest.fail "migrate to current home must be `Noop"
  done;
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 1)) sim);
  Alcotest.(check int) "home unchanged" home (Rack.tenant_home rack ~tenant:1);
  Alcotest.(check bool) "replica set unchanged" true
    (Rack.tenant_replicas rack ~tenant:1 = replicas);
  Alcotest.(check int) "no migrations counted" 0 (Rack.migrations rack)

let test_rack_migrate_moves_home () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:1 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed _ -> ());
  let home = Rack.tenant_home rack ~tenant:1 in
  let dst = (home + 1) mod 4 in
  (match Rack.migrate rack ~tenant:1 ~dst with
  | `Started -> ()
  | `Noop | `Flipped | `No_capacity -> Alcotest.fail "expected `Started");
  (* Let the destination registration land and the old side drain. *)
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 2)) sim);
  Alcotest.(check int) "home flipped" dst (Rack.tenant_home rack ~tenant:1);
  Alcotest.(check int) "one migration" 1 (Rack.migrations rack);
  Alcotest.(check bool) "old home left the replica set" true
    (not (Array.exists (fun s -> s = home) (Rack.tenant_replicas rack ~tenant:1)));
  (* The tenant still serves reads from its new home. *)
  run_some_reads sim rack ~tenant:1 ~n:5;
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 2)) sim);
  Alcotest.(check int) "reads after migration" 5 (Rack.completed rack);
  Alcotest.(check int) "no errors" 0 (Rack.errors rack)

let test_rack_migrate_flip_within_replicas () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:2 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed _ -> ());
  let rs = Rack.tenant_replicas rack ~tenant:1 in
  Alcotest.(check int) "two replicas" 2 (Array.length rs);
  let other = rs.(1) in
  (match Rack.migrate rack ~tenant:1 ~dst:other with
  | `Flipped -> ()
  | _ -> Alcotest.fail "migrate inside the replica set must be `Flipped");
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 1)) sim);
  Alcotest.(check int) "home flipped to the replica" other (Rack.tenant_home rack ~tenant:1);
  Alcotest.(check int) "counted" 1 (Rack.migrations rack)

let test_rack_rebalance_leaves_replica_set () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant rack ~id:1 ~slo:lc ~replicas:2 with
  | `Rejected -> Alcotest.fail "placement rejected"
  | `Placed _ -> ());
  let before = Array.to_list (Rack.tenant_replicas rack ~tenant:1) in
  (match Rack.rebalance rack ~tenant:1 with
  | `Started -> ()
  | `No_target -> Alcotest.fail "rebalance found no target");
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 2)) sim);
  Alcotest.(check bool) "new home is outside the old replica set" true
    (not (List.mem (Rack.tenant_home rack ~tenant:1) before))

let test_rack_hottest_tenant () =
  let sim, rack = small_rack () in
  (match Rack.add_tenant_on rack ~id:1 ~slo:lc ~server:2 with
  | `Rejected -> Alcotest.fail "pin rejected"
  | `Placed _ -> ());
  (match Rack.add_tenant_on rack ~id:2 ~slo:lc ~server:2 with
  | `Rejected -> Alcotest.fail "pin rejected"
  | `Placed _ -> ());
  Alcotest.(check (option int)) "empty server" None (Rack.hottest_tenant_on rack ~server:3);
  run_some_reads sim rack ~tenant:2 ~n:8;
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 2)) sim);
  Alcotest.(check (option int)) "most-dispatching tenant wins" (Some 2)
    (Rack.hottest_tenant_on rack ~server:2)

(* ------------------------------------------------------------------ *)
(* Small end-to-end bakeoff: determinism + oracle supremacy           *)
(* ------------------------------------------------------------------ *)

let small_scale =
  {
    Rack_exp.s_servers = 8;
    s_tenants = 200;
    s_replicas = 3;
    s_warmup = Time.ms 2;
    s_window = Time.ms 12;
    s_settle = Time.ms 2;
    s_total_kiops = 330.0;
    s_hot_tenants = 12;
    s_hot_iops = 500;
  }

let small_render = lazy (Rack_exp.render ~scale:small_scale ~jobs:1 ())

let test_exp_small_result () =
  let r = Rack_exp.run ~scale:small_scale ~jobs:1 () in
  Alcotest.(check int) "all policies reported" (List.length Policy.all)
    (List.length r.Rack_exp.r_rows);
  Alcotest.(check bool) "tenants placed" true (r.Rack_exp.r_tenants > 100);
  List.iter
    (fun p ->
      Alcotest.(check bool) "requests flowed" true (p.Rack_exp.p_completed > 0);
      Alcotest.(check bool) "p99 sane" true
        (p.Rack_exp.p_p99_us > 0.0 && p.Rack_exp.p_p99_us < 10_000.0))
    r.Rack_exp.r_rows;
  Alcotest.(check bool) "po2c beats random on p99" true (Rack_exp.po2c_beats_random r);
  Alcotest.(check bool) "oracle compliance is the best" true (Rack_exp.oracle_best r);
  Alcotest.(check bool) "skew detector migrated tenants" true
    (Rack_exp.migrations_applied r);
  Alcotest.(check bool) "migration reduced imbalance" true (Rack_exp.migration_helps r);
  Alcotest.(check bool) "all checks" true (Rack_exp.ok r)

let test_exp_serial_vs_jobs2 () =
  let base = Lazy.force small_render in
  let par = Rack_exp.render ~scale:small_scale ~jobs:2 () in
  Alcotest.(check string) "serial vs --jobs 2 byte-identical" base par

let test_exp_heap_vs_wheel () =
  let base = Lazy.force small_render in
  let saved = Sim.get_default_backend () in
  let other = match saved with Sim.Heap -> Sim.Wheel | Sim.Wheel -> Sim.Heap in
  Sim.set_default_backend other;
  let cross =
    Fun.protect
      ~finally:(fun () -> Sim.set_default_backend saved)
      (fun () -> Rack_exp.render ~scale:small_scale ~jobs:1 ())
  in
  Alcotest.(check string) "heap vs wheel byte-identical" base cross

let test_exp_same_seed_rerun () =
  let base = Lazy.force small_render in
  let again = Rack_exp.render ~scale:small_scale ~jobs:1 () in
  Alcotest.(check string) "same seed, same bytes" base again

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "link",
      [
        Alcotest.test_case "latency table" `Quick test_link_table;
      ] );
    ( "policy",
      [
        Alcotest.test_case "names" `Quick test_policy_names;
        Alcotest.test_case "single candidate" `Quick test_policy_single_candidate;
        Alcotest.test_case "jsq/oracle argmin + ties" `Quick test_policy_jsq_oracle_argmin;
        Alcotest.test_case "round-robin cycles" `Quick test_policy_round_robin_cycles;
        Alcotest.test_case "seeded streams replay" `Quick test_policy_deterministic_stream;
        qcheck qcheck_jsq_beats_po2c_sample;
        qcheck qcheck_pick_in_candidates;
      ] );
    ( "skew",
      [
        Alcotest.test_case "fires on persistent outlier" `Quick test_skew_fires_on_persistent_outlier;
        Alcotest.test_case "quiet on balance" `Quick test_skew_quiet_on_balance;
        Alcotest.test_case "cooldown" `Quick test_skew_cooldown;
      ] );
    ( "rack",
      [
        Alcotest.test_case "placement: distinct replicas" `Quick test_rack_placement_distinct_replicas;
        Alcotest.test_case "global control order" `Quick test_rack_global_control_order;
        Alcotest.test_case "place_excluding_set" `Quick test_rack_place_excluding_set;
        Alcotest.test_case "dispatch completes" `Quick test_rack_dispatch_completes;
        Alcotest.test_case "migrate: noop idempotent" `Quick test_rack_migrate_noop_idempotent;
        Alcotest.test_case "migrate: moves home" `Quick test_rack_migrate_moves_home;
        Alcotest.test_case "migrate: flip within replicas" `Quick test_rack_migrate_flip_within_replicas;
        Alcotest.test_case "rebalance leaves replica set" `Quick test_rack_rebalance_leaves_replica_set;
        Alcotest.test_case "hottest tenant" `Quick test_rack_hottest_tenant;
      ] );
    ( "exp",
      [
        Alcotest.test_case "small bakeoff result" `Slow test_exp_small_result;
        Alcotest.test_case "same-seed rerun" `Slow test_exp_same_seed_rerun;
        Alcotest.test_case "serial vs jobs2" `Slow test_exp_serial_vs_jobs2;
        Alcotest.test_case "heap vs wheel" `Slow test_exp_heap_vs_wheel;
      ] );
  ]
