(* Command-line driver: run any paper experiment by id.

     reflex_sim list
     reflex_sim run fig5 [--full] [--telemetry]
     reflex_sim run all  [--full]
     reflex_sim trace    [--full] [--out FILE] [--audit-window-us US]
     reflex_sim chaos    [--full] [--seed N] [--no-verify] [--audit-window-us US]
     reflex_sim monitor  [--full] [--seed N] [--no-verify] [--flight-dump FILE]
     reflex_sim obs      [--full] [--seed N] [--no-verify] [--flight-dump FILE]
                         [--dump-json FILE]
     reflex_sim rack     [--full] [--seed N] [--no-verify]

   run/trace/chaos/monitor/obs/rack all take [--backend heap|wheel]
   (wheel is the default; output is byte-identical either way) and the
   shared [--prom-out FILE] / [--trace-out FILE] observability outputs. *)

open Cmdliner
open Reflex_experiments
open Reflex_telemetry
module Monitor = Reflex_monitor.Monitor
module Prom_export = Reflex_monitor.Prom_export

let experiments : (string * string * (Common.mode -> unit)) list =
  [
    ( "fig1",
      "p95 read latency vs IOPS per read/write ratio (device A)",
      fun mode -> Reflex_stats.Table.print (Fig1.to_table (Fig1.run ~mode ())) );
    ( "fig3",
      "request cost models and calibration fits for devices A/B/C",
      fun mode -> List.iter Reflex_stats.Table.print (Fig3.to_tables (Fig3.run ~mode ())) );
    ( "table2",
      "unloaded 4KB latency across the six access paths",
      fun mode -> Reflex_stats.Table.print (Table2.to_table (Table2.run ~mode ())) );
    ( "fig4",
      "latency vs throughput, 1KB reads: Local/ReFlex/Libaio x 1/2 threads",
      fun mode -> Reflex_stats.Table.print (Fig4.to_table (Fig4.run ~mode ())) );
    ( "fig5",
      "QoS isolation: 2 LC + 2 BE tenants, scheduler on/off, 2 scenarios",
      fun mode -> Reflex_stats.Table.print (Fig5.to_table (Fig5.run ~mode ())) );
    ( "fig6a",
      "multi-core scaling with per-core LC tenants",
      fun mode -> Reflex_stats.Table.print (Fig6.cores_table (Fig6.run_cores ~mode ())) );
    ( "fig6b",
      "tenant scaling (100 IOPS per tenant)",
      fun mode -> Reflex_stats.Table.print (Fig6.tenants_table (Fig6.run_tenants ~mode ())) );
    ( "fig6c",
      "TCP connection scaling on one core",
      fun mode -> Reflex_stats.Table.print (Fig6.conns_table (Fig6.run_conns ~mode ())) );
    ( "fig7a",
      "FIO latency-throughput over local/iSCSI/ReFlex block devices",
      fun mode -> Reflex_stats.Table.print (Fig7.fio_table (Fig7.run_fio ~mode ())) );
    ( "fig7b",
      "FlashX graph analytics slowdown vs local",
      fun mode -> Reflex_stats.Table.print (Fig7.flashx_table (Fig7.run_flashx ~mode ())) );
    ( "fig7c",
      "RocksDB slowdown vs local",
      fun mode -> Reflex_stats.Table.print (Fig7.rocksdb_table (Fig7.run_rocksdb ~mode ())) );
    ( "ablations",
      "design-choice studies: NEG_LIMIT, donation fraction, batching cap, cost model",
      fun mode ->
        Reflex_stats.Table.print (Ablations.neg_limit_table (Ablations.run_neg_limit ~mode ()));
        Reflex_stats.Table.print (Ablations.donation_table (Ablations.run_donation ~mode ()));
        Reflex_stats.Table.print (Ablations.batching_table (Ablations.run_batching ~mode ()));
        Reflex_stats.Table.print (Ablations.cost_model_table (Ablations.run_cost_model ~mode ()))
    );
  ]

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) experiments;
    Printf.printf "%-8s %s\n" "trace"
      "canonical telemetry scenario (see 'reflex_sim trace --help')";
    Printf.printf "%-8s %s\n" "chaos"
      "scripted fault plan with retries and SLO audit (see 'reflex_sim chaos --help')";
    Printf.printf "%-8s %s\n" "monitor"
      "online monitoring & alerting acceptance scenario (see 'reflex_sim monitor --help')";
    Printf.printf "%-8s %s\n" "obs"
      "flight recorder, forensic dumps & cost profiler acceptance (see 'reflex_sim obs --help')";
    Printf.printf "%-8s %s\n" "rack"
      "rack-scale balancing policy bakeoff, tenant migration & SLO audit (see 'reflex_sim rack --help')"
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* Print the full telemetry debrief for one world: latency breakdowns,
   component aggregates, SLO audit, scheduler decisions, final metrics. *)
let print_telemetry_reports ?audit_window tel =
  print_newline ();
  print_string (Trace_export.breakdown_report tel);
  print_newline ();
  print_string (Trace_export.component_report tel);
  print_newline ();
  print_string (Slo_audit.report ?window:audit_window tel);
  print_newline ();
  print_string (Telemetry.decisions_report tel);
  print_newline ();
  print_string (Telemetry.metrics_report tel)

let export_trace ?extra tel path =
  Trace_export.write_chrome_json ?extra tel path;
  Printf.printf "\nChrome trace written to %s (load in about://tracing or Perfetto)\n" path

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let export_prom tel path =
  write_file path (Prom_export.render tel);
  Printf.printf "\nPrometheus exposition written to %s\n" path

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"longer windows and denser sweeps")

(* Event-queue backend for every world the command builds.  Selection
   happens once, before any simulation exists — Sim.create picks up the
   process default.  Both backends execute events in the identical
   (time, seq) order, so the choice changes the datapath, never the
   output bytes. *)
let backend_arg =
  let backend_conv =
    Arg.enum [ ("heap", Reflex_engine.Sim.Heap); ("wheel", Reflex_engine.Sim.Wheel) ]
  in
  Arg.(
    value
    & opt backend_conv Reflex_engine.Sim.Wheel
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "event-queue backend for every simulated world: $(b,wheel) (hierarchical \
           timing wheel, the default) or $(b,heap) (binary min-heap, the reference \
           implementation); results are byte-identical either way")

let set_backend b = Reflex_engine.Sim.set_default_backend b

(* Observability outputs shared by run/trace/chaos/monitor/obs: one
   Cmdliner term so every command accepts the same two flags.  monitor
   and obs enrich both outputs (budget/alert gauges, alert instants);
   the other commands export the plain telemetry registry and spans. *)
let obs_out_term =
  let prom_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "write the run's Prometheus text exposition (telemetry registry; budget and \
             alert gauges where the command has a monitor) to $(docv)")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "write a Chrome trace_event JSON of the run (lifecycle spans, fault windows, \
             causal links; alert instants where the command has a monitor) to $(docv)")
  in
  Term.(const (fun p t -> (p, t)) $ prom_out_arg $ trace_out_arg)

(* First alert-triggered flight dump as a Chrome trace (monitor/obs). *)
let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "write the first alert-triggered flight-recorder dump as Chrome trace_event \
           JSON to $(docv)")

let export_flight_dump dumps path =
  match dumps with
  | [] -> prerr_endline "warning: no alert fired, no flight dump captured"
  | d :: _ ->
    write_file path (Monitor.dump_chrome_json d);
    Printf.printf "\nFlight dump (trigger %s) written to %s\n" d.Monitor.d_rule path

(* SLO-audit bucket width, exposed on the commands that print the audit
   (default matches Slo_audit's built-in 10ms). *)
let audit_window_arg =
  Arg.(
    value & opt int 10_000
    & info [ "audit-window-us" ] ~docv:"US"
        ~doc:"SLO-audit bucket width in microseconds (default 10000 = 10ms)")

let audit_window_of us =
  if us <= 0 then failwith "--audit-window-us must be positive"
  else Reflex_engine.Time.us us

let run_cmd =
  let doc = "Run one experiment (or 'all') and print its table(s)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"experiment id")
  in
  let telemetry_arg =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "enable the telemetry layer (lifecycle tracing, metrics sampling, scheduler \
             decision log) on every simulated world and print the observability reports \
             for the last world after the run")
  in
  let run backend id full telemetry (prom_out, trace_out) =
    set_backend backend;
    let telemetry = telemetry || trace_out <> None || prom_out <> None in
    if telemetry then Common.set_default_telemetry true;
    (* Exports read the *last* world's telemetry, so force a serial run
       (jobs=1) to make "last" well defined. *)
    if trace_out <> None || prom_out <> None then Runner.set_default_jobs 1;
    let mode = if full then Common.Full else Common.Quick in
    let finish () =
      if telemetry then
        match !Common.last_telemetry with
        | None -> prerr_endline "warning: no telemetry-enabled world was built"
        | Some tel ->
          print_telemetry_reports tel;
          Option.iter (export_trace tel) trace_out;
          Option.iter (export_prom tel) prom_out
    in
    if id = "all" then begin
      List.iter (fun (_, _, f) -> f mode) experiments;
      finish ();
      `Ok ()
    end
    else
      match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
      | Some (_, _, f) ->
        f mode;
        finish ();
        `Ok ()
      | None -> `Error (false, "unknown experiment: " ^ id ^ " (try 'list')")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run $ backend_arg $ id_arg $ full_arg $ telemetry_arg $ obs_out_term))

let trace_cmd =
  let doc =
    "Run the canonical telemetry scenario (2 cores, 2 LC tenants with 200us/500us SLOs, \
     2 BE write floods) with full lifecycle tracing, and emit per-request latency \
     breakdowns, the component summary, the SLO audit, the scheduler decision log, the \
     metrics report and a Chrome trace_event JSON."
  in
  let out_arg =
    Arg.(
      value
      & opt string "reflex_trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"where to write the Chrome trace JSON")
  in
  let run backend full out audit_us (prom_out, trace_out) =
    set_backend backend;
    let mode = if full then Common.Full else Common.Quick in
    let { Tracing.telemetry = tel; rows } = Tracing.run ~mode () in
    Reflex_stats.Table.print (Tracing.to_table rows);
    print_telemetry_reports ~audit_window:(audit_window_of audit_us) tel;
    (* --trace-out (the shared flag) overrides -o/--out. *)
    export_trace tel (Option.value trace_out ~default:out);
    Option.iter (export_prom tel) prom_out
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ backend_arg $ full_arg $ out_arg $ audit_window_arg $ obs_out_term)

let chaos_cmd =
  let doc =
    "Run the scripted chaos scenario (die 0 fails at 2s for 2s, GC storm 5s..6s, link \
     flap at 8s for 500ms; x0.1 timeline unless $(b,--full)) against the multi-tenant \
     setup with client retries armed, and print the 500ms-bucket p95 table, the retry \
     and fault counters, the fault-window report and the SLO audit.  By default the \
     output is verified byte-identical across a same-seed rerun and a two-domain \
     parallel run."
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"N" ~doc:"root seed for the world, generators and injector")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"skip the determinism verification (runs the scenario once instead of 4x)")
  in
  let run backend full seed no_verify audit_us (prom_out, trace_out) =
    set_backend backend;
    let mode = if full then Common.Full else Common.Quick in
    let window = audit_window_of audit_us in
    if not no_verify then print_string (Chaos.debrief ~mode ~seed ());
    let r = Chaos.run ~mode ~seed () in
    if no_verify then print_string (Chaos.render_result r);
    print_newline ();
    print_string (Slo_audit.report ~window r.Chaos.telemetry);
    Option.iter (export_trace r.Chaos.telemetry) trace_out;
    Option.iter (export_prom r.Chaos.telemetry) prom_out
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ backend_arg $ full_arg $ seed_arg $ no_verify_arg $ audit_window_arg
      $ obs_out_term)

let monitor_cmd =
  let doc =
    "Run the monitoring acceptance scenario: the chaos world under the scripted fault \
     plan with the online monitoring pipeline armed (windowed time-series store, SLO \
     error budgets, multi-window burn-rate / load-knee / anomaly alert rules, opt-in \
     remediation).  The debrief asserts that alerts fire inside injected-fault windows \
     and name the overlapping fault, that a clean control run is silent, that a \
     disabled-monitor run is byte-identical to a no-monitor run, and that the whole \
     render is bit-reproducible serial and under two domains."
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"N" ~doc:"root seed for the world, generators and injector")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"skip the determinism verification (runs the scenario once instead of 4x)")
  in
  let run backend full seed no_verify (prom_out, trace_out) flight_dump =
    set_backend backend;
    let mode = if full then Common.Full else Common.Quick in
    if not no_verify then print_string (Monitor_exp.debrief ~mode ~seed ());
    if no_verify || prom_out <> None || trace_out <> None || flight_dump <> None then begin
      let r = Monitor_exp.run ~mode ~seed () in
      if no_verify then print_string (Monitor_exp.render_result r);
      let prom, instants, mon = Monitor_exp.exports r in
      Option.iter
        (fun path ->
          write_file path prom;
          Printf.printf "\nPrometheus exposition written to %s\n" path)
        prom_out;
      Option.iter
        (fun path ->
          Trace_export.write_chrome_json ~extra:instants r.Monitor_exp.faulted.telemetry
            path;
          Printf.printf
            "\nChrome trace written to %s (fault windows + alert instants included)\n" path)
        trace_out;
      Option.iter (export_flight_dump (Monitor.flight_dumps mon)) flight_dump
    end
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    Term.(
      const run $ backend_arg $ full_arg $ seed_arg $ no_verify_arg $ obs_out_term
      $ flight_dump_arg)

let obs_cmd =
  let doc =
    "Run the observability acceptance scenario: the chaos world with the always-on \
     flight recorder, alert-triggered forensic dumps, causal retry span links and the \
     continuous cost profiler armed.  By default the debrief verifies the first dump is \
     byte-identical across a same-seed rerun, serial vs two domains, and heap vs wheel \
     event backends, and that a disarmed recorder perturbs nothing; the profiler table \
     (host wall time, nondeterministic by design) is printed separately."
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"N" ~doc:"root seed for the world, generators and injector")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"skip the determinism verification (runs the scenario once instead of 8x)")
  in
  let dump_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-json" ] ~docv:"FILE"
          ~doc:"write the first flight dump's JSON forensic debrief to $(docv)")
  in
  let run backend full seed no_verify (prom_out, trace_out) flight_dump dump_json =
    set_backend backend;
    let mode = if full then Common.Full else Common.Quick in
    if not no_verify then print_string (Obs_exp.debrief ~mode ~seed ());
    (* One profiled run drives the exports and the cost table (the
       verification legs above run unprofiled, keeping them cheap). *)
    let r = Obs_exp.run ~mode ~seed ~profile:true () in
    if no_verify then print_string (Obs_exp.render_result r);
    print_newline ();
    print_string (Obs_exp.profile_report r);
    Option.iter (export_flight_dump (Obs_exp.dumps r)) flight_dump;
    Option.iter
      (fun path ->
        match Obs_exp.first_debrief r with
        | None -> prerr_endline "warning: no alert fired, no flight dump captured"
        | Some j ->
          write_file path j;
          Printf.printf "\nFlight dump debrief written to %s\n" path)
      dump_json;
    Option.iter
      (fun path ->
        export_trace ~extra:(Monitor.chrome_instants r.Obs_exp.monitor) r.Obs_exp.telemetry
          path)
      trace_out;
    Option.iter
      (fun path ->
        write_file path (Monitor.prometheus r.Obs_exp.monitor);
        Printf.printf "\nPrometheus exposition written to %s\n" path)
      prom_out
  in
  Cmd.v (Cmd.info "obs" ~doc)
    Term.(
      const run $ backend_arg $ full_arg $ seed_arg $ no_verify_arg $ obs_out_term
      $ flight_dump_arg $ dump_json_arg)

let rack_cmd =
  let doc =
    "Run the rack-scale scheduling scenario: dozens of ReFlex servers behind a \
     request-level balancer, thousands of Zipf-loaded latency-critical tenants with \
     replica sets, and a deliberately uneven best-effort soak.  Prints the policy \
     bakeoff table (random / round-robin / JSQ / power-of-two / oracle: windowed \
     p50/p95/p99, SLO compliance, dispatch imbalance, the po2c-vs-oracle gap) and the \
     migration leg (skew detector firings, migrations applied, imbalance before vs \
     after).  By default the render is verified byte-identical across a same-seed \
     rerun, serial vs two domains, and heap vs wheel event backends."
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"N" ~doc:"root seed for the rack, generators and policies")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"skip the determinism verification (runs the scenario once instead of 4x)")
  in
  let run backend full seed no_verify (prom_out, trace_out) =
    set_backend backend;
    let mode = if full then Common.Full else Common.Quick in
    if no_verify then print_string (Rack_exp.render ~mode ~seed ())
    else print_string (Rack_exp.debrief ~mode ~seed ());
    if prom_out <> None || trace_out <> None then begin
      (* One telemetry-armed po2c leg drives both exports: probe ticks,
         balancing decisions and migrations land in the flight recorder
         and the rack gauges. *)
      let tel = Rack_exp.export_leg ~mode ~seed () in
      Option.iter (export_trace tel) trace_out;
      Option.iter (export_prom tel) prom_out
    end
  in
  Cmd.v (Cmd.info "rack" ~doc)
    Term.(const run $ backend_arg $ full_arg $ seed_arg $ no_verify_arg $ obs_out_term)

let () =
  let doc = "ReFlex (ASPLOS'17) reproduction: run the paper's experiments" in
  let info = Cmd.info "reflex_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; trace_cmd; chaos_cmd; monitor_cmd; obs_cmd; rack_cmd ]))
