(* reflex-lint command line.

     reflex_lint [--root DIR] [--manifest PATH] [--json PATH|-] [PATHS...]

   Scans lib/ bin/ bench/ under --root (default: cwd) unless explicit
   PATHS are given.  Prints compiler-style findings to stdout; exits 1
   when there are findings, 0 on a clean tree.  --json writes the
   machine-readable report (use "-" for stdout). *)

let () =
  let root = ref (Sys.getcwd ()) in
  let manifest = ref "" in
  let json = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: cwd)");
      ( "--manifest",
        Arg.Set_string manifest,
        "PATH lint.manifest location (default: ROOT/lint.manifest)" );
      ("--json", Arg.Set_string json, "PATH write JSON report to PATH ('-' for stdout)");
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "reflex_lint [--root DIR] [--manifest PATH] [--json PATH|-] [PATHS...]";
  let manifest_path =
    if !manifest <> "" then !manifest else Filename.concat !root "lint.manifest"
  in
  let paths = match List.rev !paths with [] -> None | ps -> Some ps in
  let report = Lint_driver.run ?paths ~root:!root ~manifest_path () in
  print_string (Lint_driver.to_text report);
  (match !json with
  | "" -> ()
  | "-" -> print_string (Lint_driver.to_json report)
  | path ->
    let oc = open_out path in
    output_string oc (Lint_driver.to_json report);
    close_out oc);
  exit (if Lint_driver.clean report then 0 else 1)
