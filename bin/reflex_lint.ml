(* reflex-lint command line.

     reflex_lint [--root DIR] [--manifest PATH] [--json PATH|-]
                 [--jobs N] [--callgraph-out PATH] [--explain RULE-ID]
                 [PATHS...]

   Scans lib/ bin/ bench/ under --root (default: cwd) unless explicit
   PATHS are given.  Prints compiler-style findings to stdout; exits 1
   when there are findings, 0 on a clean tree.  --json writes the
   machine-readable report (use "-" for stdout).  --jobs fans the
   per-file stage across domains (output is byte-identical to serial).
   --callgraph-out writes the cross-module call graph (Graphviz when the
   path ends in .dot, JSON otherwise).  --explain prints the rule's
   documentation and expands each current finding of that rule hop by
   hop. *)

let () =
  let root = ref (Sys.getcwd ()) in
  let manifest = ref "" in
  let json = ref "" in
  let jobs = ref 1 in
  let callgraph_out = ref "" in
  let explain = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: cwd)");
      ( "--manifest",
        Arg.Set_string manifest,
        "PATH lint.manifest location (default: ROOT/lint.manifest)" );
      ("--json", Arg.Set_string json, "PATH write JSON report to PATH ('-' for stdout)");
      ("--jobs", Arg.Set_int jobs, "N fan the per-file stage across N domains (default: 1)");
      ( "--callgraph-out",
        Arg.Set_string callgraph_out,
        "PATH write the call graph (.dot -> Graphviz, otherwise JSON; '-' for JSON on stdout)" );
      ( "--explain",
        Arg.Set_string explain,
        "RULE-ID print the rule's documentation and expand its findings hop by hop" );
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "reflex_lint [--root DIR] [--manifest PATH] [--json PATH|-] [--jobs N] [--callgraph-out \
     PATH] [--explain RULE-ID] [PATHS...]";
  let manifest_path =
    if !manifest <> "" then !manifest else Filename.concat !root "lint.manifest"
  in
  let paths = match List.rev !paths with [] -> None | ps -> Some ps in
  let report, graph, hot =
    Lint_driver.run_full ?paths ~jobs:!jobs ~root:!root ~manifest_path ()
  in
  (match !explain with
  | "" -> print_string (Lint_driver.to_text report)
  | rule ->
    Printf.printf "%s: %s\n" rule (Lint_rule_ids.describe rule);
    let of_rule =
      List.filter (fun (d : Lint_diagnostic.t) -> d.Lint_diagnostic.rule = rule) report.Lint_driver.findings
    in
    Printf.printf "%d finding(s) of %s in this tree\n" (List.length of_rule) rule;
    List.iter
      (fun (d : Lint_diagnostic.t) ->
        Printf.printf "\n%s\n" (Lint_diagnostic.to_string d);
        List.iteri
          (fun i (s : Lint_diagnostic.step) ->
            Printf.printf "  hop %d: %s (%s:%d)\n" i s.Lint_diagnostic.st_name
              s.Lint_diagnostic.st_file s.Lint_diagnostic.st_line)
          d.Lint_diagnostic.chain)
      of_rule);
  (match !json with
  | "" -> ()
  | "-" -> print_string (Lint_driver.to_json report)
  | path ->
    let oc = open_out path in
    output_string oc (Lint_driver.to_json report);
    close_out oc);
  (match !callgraph_out with
  | "" -> ()
  | "-" -> print_string (Lint_callgraph.to_json ~hot graph)
  | path ->
    let oc = open_out path in
    output_string oc
      (if Filename.check_suffix path ".dot" then Lint_callgraph.to_dot ~hot graph
       else Lint_callgraph.to_json ~hot graph);
    close_out oc);
  exit (if Lint_driver.clean report then 0 else 1)
