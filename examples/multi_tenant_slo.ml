(* Multi-tenant isolation demo (the Figure 5 scenario in miniature):

   A latency-critical tenant with a 500us p95 SLO shares device A with a
   best-effort tenant flooding writes.  Run once with the QoS scheduler
   and once without, and compare the LC tenant's tail latency.  The
   QoS-on run is executed with the telemetry layer enabled, so after the
   comparison we print the SLO auditor's verdict: which requests (if
   any) still broke the SLO, and which latency component — NIC queueing,
   scheduler token wait, or flash die contention — dominated each
   violation.

     dune exec examples/multi_tenant_slo.exe *)

open Reflex_engine
open Reflex_proto
open Reflex_client
open Reflex_telemetry

let run ~qos ~telemetry =
  let sim = Sim.create () in
  let fabric = Reflex_net.Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric ~qos ~telemetry () in
  if Telemetry.enabled telemetry then Telemetry.start_sampler telemetry sim ();
  let connect () =
    Client_lib.connect sim fabric
      ~server_host:(Reflex_core.Server.host server)
      ~accept:(Reflex_core.Server.accept server)
      ~stack:Reflex_net.Stack_model.ix_client ~telemetry ()
  in
  let lc = connect () and be = connect () in
  Client_lib.register lc ~tenant:1
    ~slo:{ Message.latency_us = 500; iops = 80_000; read_pct = 100; latency_critical = true }
    (fun _ -> ());
  Client_lib.register be ~tenant:2
    ~slo:{ Message.latency_us = 0; iops = 0; read_pct = 0; latency_critical = false }
    (fun _ -> ());
  ignore (Sim.run sim);
  let until = Time.add (Sim.now sim) (Time.ms 300) in
  (* LC tenant: paced reads at its reservation. *)
  let lc_gen =
    Load_gen.open_loop sim ~client:lc ~pacing:`Cbr ~rate:80_000.0 ~read_ratio:1.0 ~bytes:4096
      ~until ()
  in
  (* BE tenant: an aggressive writer keeping 128 writes outstanding. *)
  let be_gen =
    Load_gen.closed_loop sim ~client:be ~depth:128 ~read_ratio:0.0 ~bytes:4096 ~until ~seed:7L ()
  in
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 100)) sim);
  Load_gen.mark_measurement_start lc_gen;
  Load_gen.mark_measurement_start be_gen;
  ignore (Sim.run ~until sim);
  (Load_gen.p95_read_us lc_gen, Load_gen.achieved_iops lc_gen, Load_gen.achieved_iops be_gen)

let () =
  Printf.printf "LC tenant: 80K read IOPS reserved, p95 SLO 500us.\n";
  Printf.printf "BE tenant: write flood, 128 outstanding.\n\n";
  let p95_off, lc_off, be_off = run ~qos:false ~telemetry:Telemetry.disabled in
  Printf.printf "QoS scheduler OFF: LC p95 = %7.0fus (SLO %s)  LC %.0fK IOPS, BE writes %.0fK IOPS\n"
    p95_off
    (if p95_off <= 500.0 then "met" else "VIOLATED")
    (lc_off /. 1e3) (be_off /. 1e3);
  let tel = Telemetry.create () in
  let p95_on, lc_on, be_on = run ~qos:true ~telemetry:tel in
  Printf.printf "QoS scheduler ON : LC p95 = %7.0fus (SLO %s)  LC %.0fK IOPS, BE writes %.0fK IOPS\n"
    p95_on
    (if p95_on <= 500.0 then "met" else "VIOLATED")
    (lc_on /. 1e3) (be_on /. 1e3);
  Printf.printf
    "\nWith the scheduler on, best-effort writes are rate-limited to the device's\n\
     spare tokens and the latency-critical tenant keeps its tail latency SLO.\n\n";
  (* The telemetry layer traced every request of the QoS-on run; ask the
     SLO auditor where the remaining tail latency was spent. *)
  print_string (Trace_export.component_report tel);
  print_newline ();
  print_string (Slo_audit.report tel)
