type status = Ok | Denied | No_capacity | Bad_request | Out_of_range | Timed_out

let status_to_string = function
  | Ok -> "ok"
  | Denied -> "denied"
  | No_capacity -> "no-capacity"
  | Bad_request -> "bad-request"
  | Out_of_range -> "out-of-range"
  | Timed_out -> "timed-out"

let equal_status (a : status) b = a = b

type slo = { latency_us : int; iops : int; read_pct : int; latency_critical : bool }

let best_effort_slo = { latency_us = 0; iops = 0; read_pct = 100; latency_critical = false }

type t =
  | Register of { tenant : int; slo : slo }
  | Unregister of { handle : int }
  | Read_req of { handle : int; req_id : int64; lba : int64; len : int }
  | Write_req of { handle : int; req_id : int64; lba : int64; len : int }
  | Barrier_req of { handle : int; req_id : int64 }
  | Registered of { handle : int; status : status }
  | Unregistered of { handle : int }
  | Read_resp of { req_id : int64; status : status; len : int }
  | Write_resp of { req_id : int64; status : status }
  | Barrier_resp of { req_id : int64 }
  | Error_resp of { req_id : int64; status : status }

let equal (a : t) b = a = b

let pp fmt = function
  | Register { tenant; slo } ->
    Format.fprintf fmt "register(tenant=%d, %s, %d IOPS, %dus, %d%%r)" tenant
      (if slo.latency_critical then "LC" else "BE")
      slo.iops slo.latency_us slo.read_pct
  | Unregister { handle } -> Format.fprintf fmt "unregister(%d)" handle
  | Read_req { handle; req_id; lba; len } ->
    Format.fprintf fmt "read(h=%d, id=%Ld, lba=%Ld, len=%d)" handle req_id lba len
  | Write_req { handle; req_id; lba; len } ->
    Format.fprintf fmt "write(h=%d, id=%Ld, lba=%Ld, len=%d)" handle req_id lba len
  | Registered { handle; status } ->
    Format.fprintf fmt "registered(h=%d, %s)" handle (status_to_string status)
  | Unregistered { handle } -> Format.fprintf fmt "unregistered(%d)" handle
  | Read_resp { req_id; status; len } ->
    Format.fprintf fmt "read_resp(id=%Ld, %s, len=%d)" req_id (status_to_string status) len
  | Write_resp { req_id; status } ->
    Format.fprintf fmt "write_resp(id=%Ld, %s)" req_id (status_to_string status)
  | Barrier_req { handle; req_id } -> Format.fprintf fmt "barrier(h=%d, id=%Ld)" handle req_id
  | Barrier_resp { req_id } -> Format.fprintf fmt "barrier_resp(id=%Ld)" req_id
  | Error_resp { req_id; status } ->
    Format.fprintf fmt "error(id=%Ld, %s)" req_id (status_to_string status)

let payload_bytes = function
  | Write_req { len; _ } -> len
  | Read_resp { status = Ok; len; _ } -> len
  | Read_resp _ -> 0
  | Register _ | Unregister _ | Read_req _ | Barrier_req _ | Registered _ | Unregistered _
  | Write_resp _ | Barrier_resp _ | Error_resp _ ->
    0
