(** ReFlex wire messages (client <-> server).

    Mirrors the system calls and event conditions of the paper's Table 1:
    tenants register with an SLO and then issue logical-block reads and
    writes; the server answers with completions or errors. *)

type status =
  | Ok
  | Denied  (** ACL rejected the connection/tenant *)
  | No_capacity  (** SLO not admissible (paper: "out of resources") *)
  | Bad_request
  | Out_of_range  (** LBA outside the tenant's namespace *)
  | Timed_out
      (** client-side: the request deadline expired and the retry budget
          is exhausted (never produced by the server, but encodable so a
          proxy could relay it) *)

val status_to_string : status -> string
val equal_status : status -> status -> bool

(** Service-level objective carried in a register message. *)
type slo = {
  latency_us : int;  (** p95 read-latency bound; 0 for best-effort *)
  iops : int;  (** reserved IOPS; 0 for best-effort *)
  read_pct : int;  (** declared read percentage, 0..100 *)
  latency_critical : bool;
}

val best_effort_slo : slo

type t =
  | Register of { tenant : int; slo : slo }
  | Unregister of { handle : int }
  | Read_req of { handle : int; req_id : int64; lba : int64; len : int }
  | Write_req of { handle : int; req_id : int64; lba : int64; len : int }
  | Barrier_req of { handle : int; req_id : int64 }
      (** §4.1 extension: completes only after every I/O the tenant issued
          before it has completed; I/Os issued after it wait for it. *)
  | Registered of { handle : int; status : status }
  | Unregistered of { handle : int }
  | Read_resp of { req_id : int64; status : status; len : int }
  | Write_resp of { req_id : int64; status : status }
  | Barrier_resp of { req_id : int64 }
  | Error_resp of { req_id : int64; status : status }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Payload bytes that accompany the message on the wire (write request
    data, read response data); headers themselves are {!Codec.header_size}. *)
val payload_bytes : t -> int
