(* Header layout (little-endian), 28 bytes:
   0  u16 magic 0x5246 ("RF")
   2  u8  opcode
   3  u8  status/flags
   4  u32 handle / tenant id
   8  u64 req id
   16 u64 lba          (register: packs iops u32 | latency_us u24 | read_pct u8... see below)
   24 u32 len          (payload length, or SLO flags for register) *)

let header_size = 28
let magic = 0x5246

let op_register = 0
let op_unregister = 1
let op_read = 2
let op_write = 3
let op_registered = 4
let op_unregistered = 5
let op_read_resp = 6
let op_write_resp = 7
let op_error = 8
let op_barrier = 9
let op_barrier_resp = 10

let status_to_int : Message.status -> int = function
  | Ok -> 0
  | Denied -> 1
  | No_capacity -> 2
  | Bad_request -> 3
  | Out_of_range -> 4
  | Timed_out -> 5

let status_of_int = function
  | 0 -> Message.Ok
  | 1 -> Message.Denied
  | 2 -> Message.No_capacity
  | 3 -> Message.Bad_request
  | 4 -> Message.Out_of_range
  | 5 -> Message.Timed_out
  | n -> invalid_arg (Printf.sprintf "Codec: unknown status %d" n)

let encoded_size msg = header_size + Message.payload_bytes msg

(* For Register, the lba field packs the SLO:
   bits 0-31 iops, 32-55 latency_us, 56-62 read_pct, 63 latency_critical. *)
let pack_slo (s : Message.slo) =
  let open Int64 in
  logor
    (logor (of_int (s.iops land 0xFFFFFFFF)) (shift_left (of_int (s.latency_us land 0xFFFFFF)) 32))
    (logor
       (shift_left (of_int (s.read_pct land 0x7F)) 56)
       (if s.latency_critical then shift_left 1L 63 else 0L))

let unpack_slo v : Message.slo =
  let open Int64 in
  {
    iops = to_int (logand v 0xFFFFFFFFL);
    latency_us = to_int (logand (shift_right_logical v 32) 0xFFFFFFL);
    read_pct = to_int (logand (shift_right_logical v 56) 0x7FL);
    latency_critical = shift_right_logical v 63 = 1L;
  }

let set_u16 buf off v =
  Bytes.set_uint8 buf off (v land 0xFF);
  Bytes.set_uint8 buf (off + 1) ((v lsr 8) land 0xFF)

let get_u16 buf off = Bytes.get_uint8 buf off lor (Bytes.get_uint8 buf (off + 1) lsl 8)

let set_u32 buf off v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec: u32 out of range";
  set_u16 buf off (v land 0xFFFF);
  set_u16 buf (off + 2) ((v lsr 16) land 0xFFFF)

let get_u32 buf off = get_u16 buf off lor (get_u16 buf (off + 2) lsl 16)

let set_u64 buf off v = Bytes.set_int64_le buf off v
let get_u64 buf off = Bytes.get_int64_le buf off

let fields = function
  | Message.Register { tenant; slo } -> (op_register, 0, tenant, 0L, pack_slo slo, 0)
  | Message.Unregister { handle } -> (op_unregister, 0, handle, 0L, 0L, 0)
  | Message.Read_req { handle; req_id; lba; len } -> (op_read, 0, handle, req_id, lba, len)
  | Message.Write_req { handle; req_id; lba; len } -> (op_write, 0, handle, req_id, lba, len)
  | Message.Registered { handle; status } ->
    (op_registered, status_to_int status, handle, 0L, 0L, 0)
  | Message.Unregistered { handle } -> (op_unregistered, 0, handle, 0L, 0L, 0)
  | Message.Read_resp { req_id; status; len } ->
    (op_read_resp, status_to_int status, 0, req_id, 0L, len)
  | Message.Write_resp { req_id; status } -> (op_write_resp, status_to_int status, 0, req_id, 0L, 0)
  | Message.Error_resp { req_id; status } -> (op_error, status_to_int status, 0, req_id, 0L, 0)
  | Message.Barrier_req { handle; req_id } -> (op_barrier, 0, handle, req_id, 0L, 0)
  | Message.Barrier_resp { req_id } -> (op_barrier_resp, 0, 0, req_id, 0L, 0)

let encode_into msg buf off =
  let size = encoded_size msg in
  if Bytes.length buf - off < size then invalid_arg "Codec.encode_into: buffer too small";
  let opcode, status, handle, req_id, lba, len = fields msg in
  set_u16 buf off magic;
  Bytes.set_uint8 buf (off + 2) opcode;
  Bytes.set_uint8 buf (off + 3) status;
  set_u32 buf (off + 4) handle;
  set_u64 buf (off + 8) req_id;
  set_u64 buf (off + 16) lba;
  set_u32 buf (off + 24) len;
  (* Zero-fill payload: data content is synthetic in the simulator. *)
  Bytes.fill buf (off + header_size) (size - header_size) '\000';
  size

let encode msg =
  let buf = Bytes.create (encoded_size msg) in
  ignore (encode_into msg buf 0);
  buf

let peek_header buf off =
  if Bytes.length buf - off < header_size then invalid_arg "Codec.decode: short header";
  if get_u16 buf off <> magic then invalid_arg "Codec.decode: bad magic";
  let opcode = Bytes.get_uint8 buf (off + 2) in
  if opcode < op_register || opcode > op_barrier_resp then
    invalid_arg (Printf.sprintf "Codec.decode: unknown opcode %d" opcode);
  let len = get_u32 buf (off + 24) in
  (opcode, len)

let peek_total buf off =
  let opcode, len = peek_header buf off in
  (* Only write requests and successful read responses carry payload. *)
  let has_payload =
    opcode = op_write || (opcode = op_read_resp && Bytes.get_uint8 buf (off + 3) = 0)
  in
  header_size + (if has_payload then len else 0)

let decode buf off =
  if Bytes.length buf - off < header_size then invalid_arg "Codec.decode: short header";
  if get_u16 buf off <> magic then invalid_arg "Codec.decode: bad magic";
  let opcode = Bytes.get_uint8 buf (off + 2) in
  let status = status_of_int (Bytes.get_uint8 buf (off + 3)) in
  let handle = get_u32 buf (off + 4) in
  let req_id = get_u64 buf (off + 8) in
  let lba = get_u64 buf (off + 16) in
  let len = get_u32 buf (off + 24) in
  let msg =
    if opcode = op_register then Message.Register { tenant = handle; slo = unpack_slo lba }
    else if opcode = op_unregister then Message.Unregister { handle }
    else if opcode = op_read then Message.Read_req { handle; req_id; lba; len }
    else if opcode = op_write then Message.Write_req { handle; req_id; lba; len }
    else if opcode = op_registered then Message.Registered { handle; status }
    else if opcode = op_unregistered then Message.Unregistered { handle }
    else if opcode = op_read_resp then Message.Read_resp { req_id; status; len }
    else if opcode = op_write_resp then Message.Write_resp { req_id; status }
    else if opcode = op_error then Message.Error_resp { req_id; status }
    else if opcode = op_barrier then Message.Barrier_req { handle; req_id }
    else if opcode = op_barrier_resp then Message.Barrier_resp { req_id }
    else invalid_arg (Printf.sprintf "Codec.decode: unknown opcode %d" opcode)
  in
  let total = header_size + Message.payload_bytes msg in
  if Bytes.length buf - off < total then invalid_arg "Codec.decode: short payload";
  (msg, total)
