(** SLO-preserving degradation reactions (the resilience half of the
    subsystem).

    When the device loses capacity — a die fails, or slows down — the
    control plane must shed reserved rate before latency SLOs collapse.
    These helpers implement the reaction policies; the {!Injector}
    invokes {!reprice_for_device} automatically when armed with
    [~degrade:true], and experiments may layer demotion or re-placement
    on top. *)

open Reflex_core
open Reflex_qos

(** Re-price the server's control plane from its device's current
    effective capacity (fraction of healthy, full-speed dies), floored
    at 0.05 so a fully-failed device degrades rather than zeroes out.
    Pushes updated token rates to every dataplane thread. *)
val reprice_for_device : Server.t -> unit

(** Demote one latency-critical tenant to best-effort in place: its
    queue backlog migrates, its reservation is released, and it
    re-registers at the BE fair share.  Returns [false] for unknown
    tenants; demoting a BE tenant is a no-op returning [true]. *)
val demote : Server.t -> tenant:int -> bool

(** Demote LC tenants — loosest latency SLO first — until the summed LC
    reservations fit within [margin] (default 0.85) of the degraded
    token rate.  Returns the demoted tenant ids in demotion order
    (empty when already sustainable). *)
val demote_until_sustainable : ?margin:float -> Server.t -> int list

(** Re-place a tenant on the best server excluding a (failed or
    degraded) one: [replace gc ~slo ~excluding] is
    {!Global_control.place_excluding}. *)
val replace :
  Global_control.t -> slo:Slo.t -> excluding:string -> Global_control.placement option
