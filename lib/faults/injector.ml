open Reflex_engine
open Reflex_telemetry

(* The injector owns its own PRNG, created from an explicit seed — never
   split from the simulation's root stream.  Arming a plan therefore
   leaves every pre-existing component's random sequence untouched: a run
   with an empty plan is byte-identical to a run without an injector, and
   the same (plan, seed) pair reproduces the same chaos exactly,
   including under domain-parallel experiment sweeps (each world arms its
   own injector). *)

type target = {
  sim : Sim.t;
  device : Reflex_flash.Nvme_model.t option;
  fabric : Reflex_net.Fabric.t option;
  server : Reflex_core.Server.t option;
  gens : Reflex_client.Load_gen.t array;
  telemetry : Telemetry.t;
}

let target ~sim ?device ?fabric ?server ?(gens = [||]) ?(telemetry = Telemetry.disabled) () =
  let device =
    match (device, server) with
    | (Some _ as d), _ -> d
    | None, Some s -> Some (Reflex_core.Server.device s)
    | None, None -> None
  in
  { sim; device; fabric; server; gens; telemetry }

type t = {
  tgt : target;
  prng : Prng.t;
  degrade : bool;
  mutable injected : int;
  mutable recovered : int;
  mutable active : int;
  c_injected : Telemetry.counter; (* faults/injected *)
  c_recovered : Telemetry.counter; (* faults/recovered *)
}

let missing what = invalid_arg (Printf.sprintf "Injector: plan needs a %s target" what)
let device t = match t.tgt.device with Some d -> d | None -> missing "device"
let fabric t = match t.tgt.fabric with Some f -> f | None -> missing "fabric"
let server t = match t.tgt.server with Some s -> s | None -> missing "server"

let gen t i =
  if i < 0 || i >= Array.length t.tgt.gens then
    invalid_arg (Printf.sprintf "Injector: generator %d not in target" i)
  else t.tgt.gens.(i)

(* Degradation re-pricing: after any change to die health, the control
   plane's usable capacity follows the device's effective capacity (with
   a floor, so a fully-failed device degrades rather than divides by
   zero).  Only when the control-plane reaction is enabled. *)
let reprice_from_device t =
  if t.degrade then
    match (t.tgt.server, t.tgt.device) with
    | Some srv, Some dev ->
      Reflex_core.Server.reprice srv
        ~capacity_factor:(Float.max 0.05 (Reflex_flash.Nvme_model.effective_capacity dev))
    | _ -> ()

let start t (w : Fault_plan.window) =
  (match w.fault with
  | Fault_plan.Die_fail { die } ->
    Reflex_flash.Nvme_model.fail_die (device t) ~die;
    reprice_from_device t
  | Fault_plan.Die_slow { die; factor } ->
    Reflex_flash.Nvme_model.set_die_slowdown (device t) ~die ~factor;
    reprice_from_device t
  | Fault_plan.Gc_storm { bursts_per_die } ->
    Reflex_flash.Nvme_model.gc_storm (device t) ~duration:w.duration ~bursts_per_die
  | Fault_plan.Link_flap ->
    Reflex_net.Fabric.set_link_down_until (fabric t) ~until:(Time.add w.at w.duration)
  | Fault_plan.Packet_loss { prob; rto } -> Reflex_net.Fabric.set_loss (fabric t) ~prob ~rto
  | Fault_plan.Packet_dup { prob } -> Reflex_net.Fabric.set_dup (fabric t) ~prob
  | Fault_plan.Thread_stall { thread } ->
    Reflex_core.Server.inject_thread_stall (server t) ~thread ~duration:w.duration
  | Fault_plan.Tenant_burst { gen = i; factor } ->
    Reflex_client.Load_gen.set_burst_factor (gen t i) factor);
  t.injected <- t.injected + 1;
  t.active <- t.active + 1;
  if Telemetry.enabled t.tgt.telemetry then begin
    Telemetry.incr t.c_injected;
    Telemetry.fault_mark t.tgt.telemetry ~now:(Sim.now t.tgt.sim)
      ~label:(Fault_plan.label w.fault) ~active:true
  end

let stop t (w : Fault_plan.window) =
  (match w.fault with
  | Fault_plan.Die_fail { die } ->
    Reflex_flash.Nvme_model.restore_die (device t) ~die;
    reprice_from_device t
  | Fault_plan.Die_slow { die; _ } ->
    Reflex_flash.Nvme_model.set_die_slowdown (device t) ~die ~factor:1.0;
    reprice_from_device t
  | Fault_plan.Gc_storm _ -> () (* the scheduled bursts are self-limiting *)
  | Fault_plan.Link_flap -> () (* expires by wall clock *)
  | Fault_plan.Packet_loss { rto; _ } ->
    Reflex_net.Fabric.set_loss (fabric t) ~prob:0.0 ~rto
  | Fault_plan.Packet_dup _ -> Reflex_net.Fabric.set_dup (fabric t) ~prob:0.0
  | Fault_plan.Thread_stall _ -> () (* the injected core burst drains *)
  | Fault_plan.Tenant_burst { gen = i; _ } ->
    Reflex_client.Load_gen.set_burst_factor (gen t i) 1.0);
  t.recovered <- t.recovered + 1;
  t.active <- t.active - 1;
  if Telemetry.enabled t.tgt.telemetry then begin
    Telemetry.incr t.c_recovered;
    Telemetry.fault_mark t.tgt.telemetry ~now:(Sim.now t.tgt.sim)
      ~label:(Fault_plan.label w.fault) ~active:false
  end

let needs_fabric = function
  | Fault_plan.Link_flap | Fault_plan.Packet_loss _ | Fault_plan.Packet_dup _ -> true
  | Fault_plan.Die_fail _ | Fault_plan.Die_slow _ | Fault_plan.Gc_storm _
  | Fault_plan.Thread_stall _ | Fault_plan.Tenant_burst _ ->
    false

let arm ?(seed = 0xFA_175EEDL) ?(degrade = true) tgt ~plan =
  let plan = Fault_plan.validate plan in
  let t =
    {
      tgt;
      prng = Prng.create seed;
      degrade;
      injected = 0;
      recovered = 0;
      active = 0;
      c_injected = Telemetry.counter tgt.telemetry "faults/injected";
      c_recovered = Telemetry.counter tgt.telemetry "faults/recovered";
    }
  in
  (* Arm the fabric's fault path once, with a stream derived from the
     injector's own PRNG, if any window needs it. *)
  if List.exists (fun (w : Fault_plan.window) -> needs_fabric w.fault) plan then
    Reflex_net.Fabric.set_fault_prng (fabric t) (Prng.split t.prng);
  (* Pre-intern every window label into the flight recorder now (cold
     path), so the Fault_on/Fault_off records mirrored by fault_mark at
     window transitions never pay the first-use intern, and label ids
     follow plan order rather than transition order. *)
  (let fl = Telemetry.flight tgt.telemetry in
   if Reflex_obs.Flight.enabled fl then
     List.iter
       (fun (w : Fault_plan.window) ->
         ignore (Reflex_obs.Flight.intern fl (Fault_plan.label w.fault)))
       plan);
  List.iter
    (fun (w : Fault_plan.window) ->
      ignore (Sim.at tgt.sim w.at (fun () -> start t w));
      ignore (Sim.at tgt.sim (Time.add w.at w.duration) (fun () -> stop t w)))
    plan;
  t

let injected t = t.injected
let recovered t = t.recovered
let active t = t.active
