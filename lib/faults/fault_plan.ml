open Reflex_engine

type fault =
  | Die_fail of { die : int }
  | Die_slow of { die : int; factor : float }
  | Gc_storm of { bursts_per_die : int }
  | Link_flap
  | Packet_loss of { prob : float; rto : Time.t }
  | Packet_dup of { prob : float }
  | Thread_stall of { thread : int }
  | Tenant_burst of { gen : int; factor : float }

type window = { at : Time.t; duration : Time.t; fault : fault }
type t = window list

let label = function
  | Die_fail { die } -> Printf.sprintf "die_fail(%d)" die
  | Die_slow { die; factor } -> Printf.sprintf "die_slow(%d,x%.1f)" die factor
  | Gc_storm { bursts_per_die } -> Printf.sprintf "gc_storm(%d)" bursts_per_die
  | Link_flap -> "link_flap"
  | Packet_loss { prob; _ } -> Printf.sprintf "pkt_loss(%.3f)" prob
  | Packet_dup { prob } -> Printf.sprintf "pkt_dup(%.3f)" prob
  | Thread_stall { thread } -> Printf.sprintf "thread_stall(%d)" thread
  | Tenant_burst { gen; factor } -> Printf.sprintf "tenant_burst(%d,x%.1f)" gen factor

let check_window i w =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if Time.(w.at < Time.zero) then fail "Fault_plan: window %d: negative start" i;
  if Time.(w.duration <= Time.zero) then fail "Fault_plan: window %d: non-positive duration" i;
  match w.fault with
  | Die_fail { die } | Die_slow { die; _ } ->
    if die < 0 then fail "Fault_plan: window %d: negative die" i;
    (match w.fault with
    | Die_slow { factor; _ } when factor < 1.0 ->
      fail "Fault_plan: window %d: die slowdown < 1.0" i
    | _ -> ())
  | Gc_storm { bursts_per_die } ->
    if bursts_per_die <= 0 then fail "Fault_plan: window %d: bursts_per_die <= 0" i
  | Link_flap -> ()
  | Packet_loss { prob; rto } ->
    if prob < 0.0 || prob >= 1.0 then fail "Fault_plan: window %d: loss prob" i;
    if Time.(rto <= Time.zero) then fail "Fault_plan: window %d: rto" i
  | Packet_dup { prob } ->
    if prob < 0.0 || prob >= 1.0 then fail "Fault_plan: window %d: dup prob" i
  | Thread_stall { thread } -> if thread < 0 then fail "Fault_plan: window %d: thread" i
  | Tenant_burst { gen; factor } ->
    if gen < 0 then fail "Fault_plan: window %d: generator index" i;
    if factor <= 0.0 then fail "Fault_plan: window %d: burst factor" i

let validate plan =
  List.iteri check_window plan;
  plan

(* The acceptance scenario from the issue: one die fails at 2s (and
   recovers at 4s), a GC storm runs 5s..6s, and the network link flaps
   at 8s for 500ms.  [scale] compresses the whole timeline (smoke tests
   use 0.1). *)
let scripted ?(scale = 1.0) () =
  if scale <= 0.0 then invalid_arg "Fault_plan.scripted: scale";
  let s t = Time.scale t scale in
  [
    { at = s (Time.sec 2); duration = s (Time.sec 2); fault = Die_fail { die = 0 } };
    { at = s (Time.sec 5); duration = s (Time.sec 1); fault = Gc_storm { bursts_per_die = 4 } };
    { at = s (Time.sec 8); duration = s (Time.ms 500); fault = Link_flap };
  ]

let to_string plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "fault plan (%d windows):\n" (List.length plan));
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  %8.1fms +%8.1fms  %s\n" (Time.to_float_ms w.at)
           (Time.to_float_ms w.duration) (label w.fault)))
    plan;
  Buffer.contents buf
