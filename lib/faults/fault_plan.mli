(** Declarative, deterministic chaos plans.

    A plan is a list of timed fault windows; the {!Injector} schedules
    each window's activation and recovery on the simulation clock.  Plans
    are plain data — printable, comparable, and free of any randomness of
    their own (stochastic faults such as packet loss draw from the
    injector's seeded PRNG at runtime). *)

open Reflex_engine

type fault =
  | Die_fail of { die : int }  (** die excluded from routing for the window *)
  | Die_slow of { die : int; factor : float }
      (** every service on the die is [factor] (>= 1.0) slower *)
  | Gc_storm of { bursts_per_die : int }
      (** extra low-priority erase bursts on every die, spread over the
          window *)
  | Link_flap  (** fabric transmissions stall until the window closes *)
  | Packet_loss of { prob : float; rto : Time.t }
      (** each message independently delayed by [rto] with [prob]
          (TCP retransmission; the reliable stream never drops data) *)
  | Packet_dup of { prob : float }
      (** each message delivered twice with [prob]; reassembly dedups *)
  | Thread_stall of { thread : int }
      (** the dataplane thread's core is occupied for the whole window *)
  | Tenant_burst of { gen : int; factor : float }
      (** open-loop generator [gen] overdrives its rate by [factor] *)

type window = { at : Time.t; duration : Time.t; fault : fault }
type t = window list

(** Stable label used for telemetry fault marks and reports. *)
val label : fault -> string

(** Returns the plan or raises [Invalid_argument] with the offending
    window index. *)
val validate : t -> t

(** The issue's acceptance scenario: die 0 fails at 2s for 2s, a GC
    storm runs 5s..6s, the link flaps at 8s for 500ms.  [scale]
    compresses the timeline (e.g. 0.1 for smoke tests). *)
val scripted : ?scale:float -> unit -> t

val to_string : t -> string
