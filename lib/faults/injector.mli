(** Deterministic fault injection on the simulation clock.

    The injector arms a {!Fault_plan.t} against a {!target}: each window
    schedules an activation at [w.at] and a recovery at
    [w.at + w.duration].  Stochastic faults (packet loss, duplication)
    draw from the injector's own seeded PRNG, which is created from an
    explicit seed and never split from the simulation's root stream —
    arming a plan leaves every pre-existing component's random sequence
    untouched, so a run with an empty plan is byte-identical to a run
    without an injector, and the same (plan, seed) pair reproduces the
    same chaos exactly, including under domain-parallel sweeps. *)

open Reflex_engine
open Reflex_telemetry

type target

(** Bundle the components a plan may touch.  When [device] is omitted
    but [server] is given, the server's device is used.  Arming a plan
    whose windows need a component the target lacks raises
    [Invalid_argument] at activation time. *)
val target :
  sim:Sim.t ->
  ?device:Reflex_flash.Nvme_model.t ->
  ?fabric:Reflex_net.Fabric.t ->
  ?server:Reflex_core.Server.t ->
  ?gens:Reflex_client.Load_gen.t array ->
  ?telemetry:Telemetry.t ->
  unit ->
  target

type t

(** [arm tgt ~plan] validates [plan] and schedules every window.
    [seed] (default [0xFA175EED]) feeds the injector's private PRNG.
    When [degrade] is true (the default) and the target has both a
    server and a device, die failures and slowdowns re-price the
    control plane from the device's effective capacity (floored at
    0.05) on activation and recovery. *)
val arm : ?seed:int64 -> ?degrade:bool -> target -> plan:Fault_plan.t -> t

(** Windows activated so far. *)
val injected : t -> int

(** Windows whose recovery has run so far. *)
val recovered : t -> int

(** Currently-active windows ([injected - recovered]). *)
val active : t -> int
