open Reflex_core

let reprice_for_device server =
  Server.reprice server
    ~capacity_factor:
      (Float.max 0.05 (Reflex_flash.Nvme_model.effective_capacity (Server.device server)))

let demote = Server.demote_tenant

let demote_until_sustainable ?(margin = 0.85) server =
  let cp = Server.control_plane server in
  let sustainable () =
    Control_plane.lc_reserved_rate cp <= Control_plane.total_token_rate cp *. margin
  in
  (* Walk the loosest-SLO-first list, demoting until the reservations fit.
     Iterating the snapshot (rather than re-reading the registry after
     each demotion) guarantees termination even if a demotion fails. *)
  let rec loop acc = function
    | [] -> List.rev acc
    | (id, _) :: rest ->
      if sustainable () then List.rev acc
      else if Server.demote_tenant server ~tenant:id then loop (id :: acc) rest
      else loop acc rest
  in
  loop [] (Control_plane.lc_tenants cp)

let replace = Global_control.place_excluding
