(* Cross-module call graph over the scanned tree, built from the
   compiler-libs parsetrees in two phases:

     1. [scan_file] (pure, per file, safe to fan out across domains):
        collect every definition (toplevel bindings, including inside
        nested [module X = struct .. end]), every module alias
        ([module T = Reflex_telemetry.Telemetry]), and every identifier
        reference with its location, whether it sits in function
        position of an application, and whether it is under an
        enabled-guard conditional.

     2. [build] (serial, whole-tree): resolve references to definitions
        with a module-alias-aware resolver and assemble the node/edge
        sets plus the per-node facts the interprocedural passes consume
        (allocation sites, determinism-taint sources, effectful
        telemetry sites).

   Resolution leans on a repo invariant the driver checks implicitly:
   compilation-unit basenames are unique across lib/ bin/ bench/, so a
   qualified head like [Sim] or [Telemetry] names exactly one file.
   Library umbrella modules ([Reflex_obs] etc.) are handled by one
   alias hop through the umbrella's own [module X = X] re-exports, so
   [Reflex_core.Server.restart] and a local [module Server =
   Reflex_core.Server] both land on the same node.

   Soundness caveats (see DESIGN.md §15): calls through function values
   (higher-order arguments, record fields of closures, first-class
   modules) produce no edge at the eventual call site — only the
   "mention" edge where the function name appears.  The hot-set closure
   therefore follows applied edges only, while reachability used by the
   drift check counts mentions too. *)

type site = { p_line : int; p_col : int; p_app : bool; p_guarded : bool }

type edge = {
  e_from : string;
  e_to : string;
  e_file : string; (* caller's file: where the call site lives *)
  e_site : site;
}

(* A call whose alias-expanded path lands in the effectful-telemetry set
   ([Telemetry.span] & friends, [Monitor.tick]).  [x_plain] marks sites
   the per-file [guard/telemetry] rule already sees (raw head
   [Telemetry]/[Monitor]); the transitive pass only reports the rest. *)
type effect_site = { x_path : string; x_line : int; x_col : int; x_guarded : bool; x_plain : bool }

(* A determinism-taint source: ambient PRNG, wall clock, [Marshal], or
   Hashtbl iteration in a definition that never sorts. *)
type source_site = { s_desc : string; s_line : int; s_col : int }

type node = {
  n_id : string; (* "Scheduler.schedule", "Flight.Kind.to_string" *)
  n_file : string;
  n_line : int;
  n_name : string; (* last path component *)
  n_allocs : (string * int * int * string) list; (* construct, line, col, detail *)
  n_effects : effect_site list;
  n_sources : source_site list;
}

type t = {
  nodes : node list; (* sorted by id *)
  edges : edge list; (* sorted by (from, line, col, to) *)
  node_tbl : (string, node) Hashtbl.t;
  out_tbl : (string, edge list) Hashtbl.t; (* per caller, in site order *)
  in_deg : (string, int) Hashtbl.t; (* references from *other* definitions *)
}

(* ---------------- phase 1: per-file scan ---------------- *)

type ref_site = {
  r_parts : string list; (* raw longident parts at the site *)
  r_line : int;
  r_col : int;
  r_app : bool;
  r_guarded : bool;
}

type def = {
  d_id : string;
  d_file : string;
  d_line : int;
  d_name : string;
  d_scope : string list; (* enclosing module path, file module first *)
  d_target : bool; (* resolvable by name ([<init>] blocks are not) *)
  d_refs : ref_site list;
  d_allocs : (string * int * int * string) list;
  d_has_sort : bool;
}

type file_facts = {
  ff_file : string;
  ff_module : string; (* capitalized basename *)
  ff_aliases : (string * string list) list; (* local alias -> target parts *)
  ff_defs : def list;
}

let module_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

open Parsetree

(* Walk one definition body: collect references (with application /
   guard flags), allocation sites (outside guard branches, mirroring the
   per-file hot/alloc rule), and whether any sort call appears. *)
let scan_body body =
  let refs = ref [] and allocs = ref [] and has_sort = ref false in
  let note_ref ~app ~guarded lid (loc : Location.t) =
    let line, col = Lint_rules.pos_of loc in
    let parts = Lint_rules.lid_parts lid in
    (match List.rev parts with
    | last :: _ -> if Lint_rules.is_sort_name last then has_sort := true
    | [] -> ());
    refs := { r_parts = parts; r_line = line; r_col = col; r_app = app; r_guarded = guarded } :: !refs
  in
  let note_alloc ~guarded e =
    if not guarded then
      match Lint_rules.alloc_construct e with
      | Some (kind, loc, detail) ->
        let line, col = Lint_rules.pos_of loc in
        allocs := (kind, line, col, detail) :: !allocs
      | None -> ()
  in
  let rec walk ~guarded e =
    note_alloc ~guarded e;
    match e.pexp_desc with
    | Pexp_ifthenelse (c, t, eo) ->
      walk ~guarded c;
      let g = guarded || Lint_rules.is_guard_expr c in
      walk ~guarded:g t;
      Option.iter (walk ~guarded:g) eo
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; loc }; _ }, args) ->
      note_ref ~app:true ~guarded lid loc;
      (* raise/failwith/invalid_arg arguments evaluate only when about
         to raise: treat as guarded (cold) for allocs and edges. *)
      let guarded = guarded || Lint_rules.is_raise_head lid in
      List.iter (fun (_, a) -> walk ~guarded a) args
    | Pexp_ident { txt = lid; loc } -> note_ref ~app:false ~guarded lid loc
    | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> if child != e then walk ~guarded child);
        }
      in
      Ast_iterator.default_iterator.expr it e
  in
  List.iter (walk ~guarded:false) (Lint_rules.def_bodies body);
  (List.rev !refs, List.rev !allocs, !has_sort)

let scan_file ~rel (str : structure) =
  let file_mod = module_of_file rel in
  let aliases = ref [] and defs = ref [] in
  let add_def ~scope ~name ~target ~line (body : expression) =
    let refs, allocs, has_sort = scan_body body in
    let id = String.concat "." (List.rev scope @ [ name ]) in
    defs :=
      {
        d_id = id;
        d_file = rel;
        d_line = line;
        d_name = name;
        d_scope = List.rev scope;
        d_target = target;
        d_refs = refs;
        d_allocs = allocs;
        d_has_sort = has_sort;
      }
      :: !defs
  in
  (* [scope] is the reversed module path, file module last. *)
  let rec items ~scope its =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let rec pat_name p =
                match p.ppat_desc with
                | Ppat_var v -> Some v.Location.txt
                | Ppat_constraint (p, _) -> pat_name p
                | _ -> None
              in
              let line, _ = Lint_rules.pos_of vb.pvb_loc in
              match pat_name vb.pvb_pat with
              | Some n -> add_def ~scope ~name:n ~target:true ~line vb.pvb_expr
              | None ->
                (* [let () = ...] module-init code: a reference source
                   (it keeps registration targets reachable) but never a
                   resolution target. *)
                add_def ~scope ~name:(Printf.sprintf "<init:%d>" line) ~target:false ~line
                  vb.pvb_expr)
            vbs
        | Pstr_eval (e, _) ->
          let line, _ = Lint_rules.pos_of item.pstr_loc in
          add_def ~scope ~name:(Printf.sprintf "<init:%d>" line) ~target:false ~line e
        | Pstr_module mb -> binding ~scope mb
        | Pstr_recmodule mbs -> List.iter (binding ~scope) mbs
        | _ -> ())
      its
  and binding ~scope mb =
    let name = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
    match mb.pmb_expr.pmod_desc with
    | Pmod_structure s -> items ~scope:(name :: scope) s
    | Pmod_ident { txt = lid; _ } ->
      aliases := (name, Lint_rules.lid_parts lid) :: !aliases
    | _ -> ()
  in
  items ~scope:[ file_mod ] str;
  {
    ff_file = rel;
    ff_module = file_mod;
    ff_aliases = List.rev !aliases;
    ff_defs = List.rev !defs;
  }

(* ---------------- phase 2: resolution + assembly ---------------- *)

let taint_source_of parts ~has_sort =
  let head = match parts with h :: _ -> h | [] -> "" in
  let last = match List.rev parts with l :: _ -> l | [] -> "" in
  let path = String.concat "." parts in
  if head = "Random" then Some (path ^ " (ambient PRNG)")
  else if List.mem path Lint_rules.clock_paths then Some (path ^ " (wall clock)")
  else if head = "Marshal" then Some (path ^ " (Marshal bytes)")
  else if
    head = "Hashtbl"
    && List.mem last [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]
    && not has_sort
  then Some (path ^ " (unsorted Hashtbl iteration)")
  else None

let build (facts : file_facts list) =
  (* Deterministic inputs: sort by file, then keep per-file order. *)
  let facts = List.sort (fun a b -> String.compare a.ff_file b.ff_file) facts in
  let file_tbl = Hashtbl.create 64 in
  List.iter (fun ff -> Hashtbl.replace file_tbl ff.ff_module ff) facts;
  let def_tbl = Hashtbl.create 512 in
  List.iter
    (fun ff ->
      List.iter (fun d -> if d.d_target then Hashtbl.replace def_tbl d.d_id d) ff.ff_defs)
    facts;
  (* Expand the head of [parts] through [ff]'s local aliases, then
     through umbrella re-exports ([Reflex_obs.Flight] -> [Flight]),
     bounded to avoid alias cycles. *)
  let rec expand ~(ff : file_facts) ~fuel parts =
    if fuel = 0 then parts
    else
      match parts with
      | head :: tl -> (
        match List.assoc_opt head ff.ff_aliases with
        | Some target -> expand ~ff ~fuel:(fuel - 1) (target @ tl)
        | None -> (
          match (Hashtbl.find_opt file_tbl head, tl) with
          | Some owner, next :: rest when Hashtbl.mem file_tbl next = false -> (
            (* One umbrella hop: [Reflex_core.Server.f] -> [Server.f]. *)
            match List.assoc_opt next owner.ff_aliases with
            | Some target -> expand ~ff ~fuel:(fuel - 1) (target @ rest)
            | None -> parts)
          | Some _, next :: rest when Hashtbl.mem file_tbl next ->
            (* [Reflex_x.Sim.f] where [Sim] is itself a unit: drop the
               wrapper head. *)
            expand ~ff ~fuel:(fuel - 1) (next :: rest)
          | _ -> parts))
      | [] -> parts
  in
  (* Resolve an expanded path to a definition id. *)
  let resolve ~(d : def) parts =
    match parts with
    | [] -> None
    | [ f ] ->
      (* Unqualified: innermost enclosing module scope outward. *)
      let rec try_scopes scope =
        let cand = String.concat "." (scope @ [ f ]) in
        if Hashtbl.mem def_tbl cand then Some cand
        else
          match scope with
          | [] -> None
          | _ -> try_scopes (List.filteri (fun i _ -> i < List.length scope - 1) scope)
      in
      try_scopes d.d_scope
    | _ ->
      let joined = String.concat "." parts in
      (* Submodule reference relative to an enclosing scope first
         ([Kind.to_string] inside flight.ml -> [Flight.Kind.to_string]),
         then absolute. *)
      let rec try_scopes scope =
        let cand = String.concat "." (scope @ parts) in
        if Hashtbl.mem def_tbl cand then Some cand
        else
          match scope with
          | [] -> None
          | _ -> try_scopes (List.filteri (fun i _ -> i < List.length scope - 1) scope)
      in
      (match try_scopes d.d_scope with
      | Some id -> Some id
      | None -> if Hashtbl.mem def_tbl joined then Some joined else None)
  in
  let nodes = ref [] and edges = ref [] in
  let in_deg = Hashtbl.create 512 in
  let bump_in id = Hashtbl.replace in_deg id (1 + Option.value ~default:0 (Hashtbl.find_opt in_deg id)) in
  List.iter
    (fun ff ->
      List.iter
        (fun d ->
          let effects = ref [] and sources = ref [] and out = ref [] in
          List.iter
            (fun r ->
              let parts = expand ~ff ~fuel:4 r.r_parts in
              let raw_head = match r.r_parts with h :: _ -> h | [] -> "" in
              (if r.r_app && Lint_rules.effectful_telemetry_path parts then
                 effects :=
                   {
                     x_path = String.concat "." parts;
                     x_line = r.r_line;
                     x_col = r.r_col;
                     x_guarded = r.r_guarded;
                     x_plain = raw_head = "Telemetry" || raw_head = "Monitor";
                   }
                   :: !effects);
              (match taint_source_of parts ~has_sort:d.d_has_sort with
              | Some desc -> sources := { s_desc = desc; s_line = r.r_line; s_col = r.r_col } :: !sources
              | None -> ());
              match resolve ~d parts with
              | Some target when target <> d.d_id ->
                let e =
                  {
                    e_from = d.d_id;
                    e_to = target;
                    e_file = d.d_file;
                    e_site = { p_line = r.r_line; p_col = r.r_col; p_app = r.r_app; p_guarded = r.r_guarded };
                  }
                in
                out := e :: !out;
                bump_in target
              | _ -> ())
            d.d_refs;
          nodes :=
            {
              n_id = d.d_id;
              n_file = d.d_file;
              n_line = d.d_line;
              n_name = d.d_name;
              n_allocs = d.d_allocs;
              n_effects = List.rev !effects;
              n_sources = List.rev !sources;
            }
            :: !nodes;
          edges := List.rev_append !out !edges)
        ff.ff_defs)
    facts;
  let nodes = List.sort (fun a b -> String.compare a.n_id b.n_id) !nodes in
  let edges =
    List.sort
      (fun a b ->
        match String.compare a.e_from b.e_from with
        | 0 -> (
          match Stdlib.compare a.e_site.p_line b.e_site.p_line with
          | 0 -> (
            match Stdlib.compare a.e_site.p_col b.e_site.p_col with
            | 0 -> String.compare a.e_to b.e_to
            | c -> c)
          | c -> c)
        | c -> c)
      !edges
  in
  let node_tbl = Hashtbl.create (List.length nodes) in
  List.iter (fun n -> Hashtbl.replace node_tbl n.n_id n) nodes;
  let out_tbl = Hashtbl.create (List.length nodes) in
  List.iter
    (fun e ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt out_tbl e.e_from) in
      Hashtbl.replace out_tbl e.e_from (prev @ [ e ]))
    edges;
  { nodes; edges; node_tbl; out_tbl; in_deg }

(* ---------------- accessors ---------------- *)

let node t id = Hashtbl.find_opt t.node_tbl id
let out_edges t id = Option.value ~default:[] (Hashtbl.find_opt t.out_tbl id)
let in_degree t id = Option.value ~default:0 (Hashtbl.find_opt t.in_deg id)

(* Definitions in [file] whose toplevel name is [func] (nested-module
   definitions do not match manifest entries, which name toplevel
   functions only). *)
let find_in_file t ~file ~func =
  List.filter
    (fun n -> n.n_file = file && n.n_name = func && n.n_id = module_of_file file ^ "." ^ func)
    t.nodes

(* ---------------- exports ---------------- *)

let to_dot ?(hot = fun _ -> false) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph reflex_callgraph {\n  rankdir=LR;\n  node [shape=box,fontsize=9];\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\\n%s:%d\"%s];\n" n.n_id n.n_id n.n_file n.n_line
           (if hot n.n_id then ",style=filled,fillcolor=lightsalmon" else "")))
    t.nodes;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" e.e_from e.e_to
           (if not e.e_site.p_app then " [style=dashed]"
            else if e.e_site.p_guarded then " [color=gray]"
            else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_json ?(hot = fun _ -> false) t =
  let buf = Buffer.create 8192 in
  let esc = Lint_diagnostic.json_escape in
  Buffer.add_string buf "{\n  \"nodes\": [";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf {|{"id":"%s","file":"%s","line":%d%s}|} (esc n.n_id) (esc n.n_file)
           n.n_line
           (if hot n.n_id then {|,"hot":true|} else "")))
    t.nodes;
  Buffer.add_string buf "],\n  \"edges\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf {|{"from":"%s","to":"%s","file":"%s","line":%d,"app":%b,"guarded":%b}|}
           (esc e.e_from) (esc e.e_to) (esc e.e_file) e.e_site.p_line e.e_site.p_app
           e.e_site.p_guarded))
    t.edges;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"node_count\": %d,\n  \"edge_count\": %d\n}\n" (List.length t.nodes)
       (List.length t.edges));
  Buffer.contents buf
