(** The interprocedural passes ([hot/transitive-alloc], [hot/drift],
    [det/taint], [guard/transitive]) over {!Lint_callgraph}.  Semantics:
    DESIGN.md §15.  Deterministic: worklists seed in sorted order and
    consume edges in the graph's stable order, so reports are
    byte-identical across runs and [--jobs] settings. *)

type stats = {
  gs_nodes : int;
  gs_edges : int;
  gs_hot_seeds : int;  (** manifest [hot_path] entries resolved to nodes *)
  gs_hot_inferred : int;  (** closure members with no manifest entry *)
  gs_taint_sources : int;  (** nondeterminism source sites (post-allow) *)
  gs_taint_tainted : int;  (** functions reached by backward taint *)
  gs_identity_sinks : int;  (** manifest [identity_sink] entries *)
  gs_findings : int;  (** interprocedural findings, pre-waiver *)
}

(** Returns the (unfiltered) findings in stable order, the pass stats,
    and the hot-set membership predicate (by node id, for graph
    exports). *)
val run :
  manifest:Lint_manifest.t ->
  manifest_path:string ->
  graph:Lint_callgraph.t ->
  Lint_diagnostic.t list * stats * (string -> bool)
