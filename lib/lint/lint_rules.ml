(* The five rule families, implemented as syntactic passes over the
   compiler-libs Parsetree.  Every rule is a sound-for-our-idioms
   approximation; the precise approximation limits are documented in
   DESIGN.md §10.  All rules run on every scanned file — *policy* about
   where a rule applies lives in lint.manifest `allow` prefixes, not in
   the rule code.

   Family overview:
     det/random        any use of the ambient Stdlib [Random] module
     det/clock         wall-clock reads ([Unix.gettimeofday] & friends)
     det/marshal       [Marshal] (output depends on sharing/arch)
     det/hashtbl-order [Hashtbl.iter]/[fold]/[to_seq] in a toplevel
                       binding that contains no sorting call
     dom/toplevel-state  module-toplevel mutable allocations (shared
                       across Runner.map domains)
     guard/telemetry   effectful Telemetry/Monitor record calls not
                       under an enabled-guard conditional
     hot/alloc         allocating constructs inside manifest-listed
                       hot-path functions
     iface/mli         .ml without matching .mli (driver-level)        *)

open Parsetree

(* ---------------- longident helpers ---------------- *)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply (a, _) -> lid_parts a

let lid_head l = match lid_parts l with [] -> "" | h :: _ -> h
let lid_last l = match List.rev (lid_parts l) with [] -> "" | h :: _ -> h
let lid_string l = String.concat "." (lid_parts l)

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let diag ~file ~loc ~rule msg =
  let line, col = pos_of loc in
  Lint_diagnostic.make ~file ~line ~col ~rule msg

(* Iterate every expression in a structure. *)
let iter_exprs str f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* Iterate toplevel value bindings (including inside nested [module X =
   struct .. end]); [f ~name vb] gets the bound variable name when the
   pattern is a simple var. *)
let rec iter_toplevel_bindings str f =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let rec pat_name p =
              match p.ppat_desc with
              | Ppat_var v -> Some v.Location.txt
              | Ppat_constraint (p, _) -> pat_name p
              | _ -> None
            in
            f ~name:(pat_name vb.pvb_pat) vb)
          vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        iter_toplevel_bindings s f
      | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure s -> iter_toplevel_bindings s f
            | _ -> ())
          mbs
      | _ -> ())
    str

(* Iterate every expression under one expression. *)
let iter_sub_exprs expr f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr

(* ---------------- determinism ---------------- *)

let clock_paths =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime"; "Unix.mktime"; "Sys.time" ]

let check_idents ~file str =
  let out = ref [] in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = lid; loc } ->
        let path = lid_string lid in
        if lid_head lid = "Random" then
          out :=
            diag ~file ~loc ~rule:"det/random"
              (Printf.sprintf
                 "%s uses ambient Random state; route randomness through a seeded Engine.Prng" path)
            :: !out;
        if List.mem path clock_paths then
          out :=
            diag ~file ~loc ~rule:"det/clock"
              (Printf.sprintf "%s reads the wall clock; simulated time must come from Sim.now" path)
            :: !out;
        if lid_head lid = "Marshal" then
          out :=
            diag ~file ~loc ~rule:"det/marshal"
              (Printf.sprintf "%s output is not byte-stable; use the hand-rolled JSON/text codecs"
                 path)
            :: !out
      | _ -> ());
  !out

let is_hashtbl_iter lid =
  lid_head lid = "Hashtbl"
  && List.mem (lid_last lid) [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let is_sort_name s =
  let has_sub sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m <= n && go 0
  in
  has_sub "sort"

let check_hashtbl_order ~file str =
  let out = ref [] in
  iter_toplevel_bindings str (fun ~name:_ vb ->
      let iters = ref [] and sorted = ref false in
      iter_sub_exprs vb.pvb_expr (fun e ->
          match e.pexp_desc with
          | Pexp_ident { txt = lid; loc } ->
            if is_hashtbl_iter lid then iters := (lid_string lid, loc) :: !iters
            else if is_sort_name (lid_last lid) then sorted := true
          | _ -> ());
      if not !sorted then
        List.iter
          (fun (path, loc) ->
            out :=
              diag ~file ~loc ~rule:"det/hashtbl-order"
                (Printf.sprintf
                   "%s iterates in unspecified order and this binding never sorts; sort the \
                    keys/result (or waive if genuinely order-insensitive)"
                   path)
              :: !out)
          (List.rev !iters));
  !out

(* ---------------- domain-safety ---------------- *)

let mutable_modules = [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Bytes"; "Weak"; "Array"; "Dynarray" ]

let mutable_ctors =
  [ "create"; "make"; "init"; "copy"; "of_list"; "of_seq"; "of_array"; "append"; "concat";
    "create_float"; "make_matrix"; "make_float" ]

let mutable_alloc_path lid =
  match lid_parts lid with
  | [ "ref" ] -> Some "ref"
  | parts -> (
    let head = match parts with h :: _ -> h | [] -> "" in
    let last = match List.rev parts with l :: _ -> l | [] -> "" in
    if List.mem head mutable_modules && List.mem last mutable_ctors then Some (lid_string lid)
      (* Any [X.create ...] call builds a stateful object at module
         initialisation time (Sim.create, Telemetry.create, ...). *)
    else if last = "create" then Some (lid_string lid)
    else None)

let check_toplevel_state ~file ~(manifest : Lint_manifest.t) str =
  let safe = Lint_manifest.domain_safe_idents manifest ~path:file in
  let out = ref [] in
  iter_toplevel_bindings str (fun ~name vb ->
      let is_function e =
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
        | _ -> false
      in
      let registered = match name with Some n -> List.mem n safe | None -> false in
      if (not (is_function vb.pvb_expr)) && not registered then begin
        (* Scan the init-time-evaluated part of the RHS: descend
           everything except function bodies (those run per call, not at
           module init). *)
        let rec scan e =
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; loc }; _ }, args) ->
            (match mutable_alloc_path lid with
            | Some path ->
              let who = match name with Some n -> n | None -> "_" in
              out :=
                diag ~file ~loc ~rule:"dom/toplevel-state"
                  (Printf.sprintf
                     "toplevel binding %S allocates mutable state via %s shared across Runner \
                      domains; register it in lint.manifest [domain_safe] with a justification \
                      or move it into a per-instance record"
                     who path)
                :: !out
            | None -> ());
            List.iter (fun (_, a) -> scan a) args
          | Pexp_array (_ :: _) ->
            let who = match name with Some n -> n | None -> "_" in
            out :=
              diag ~file ~loc:e.pexp_loc ~rule:"dom/toplevel-state"
                (Printf.sprintf "toplevel binding %S allocates a mutable array literal" who)
              :: !out
          | _ ->
            (* generic recursion over immediate children *)
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ child -> if child != e then scan child);
              }
            in
            Ast_iterator.default_iterator.expr it e
        in
        scan vb.pvb_expr
      end);
  !out

(* ---------------- zero-overhead guards ---------------- *)

(* Keyed on (module head, function name) so both the syntactic per-file
   rule (raw longident) and the interprocedural pass (alias-expanded
   path) share one definition of "effectful". *)
let effectful_telemetry_path parts =
  let head = match parts with h :: _ -> h | [] -> "" in
  let last = match List.rev parts with l :: _ -> l | [] -> "" in
  match (head, last) with
  | "Telemetry", ("span" | "decision" | "incr" | "add" | "record_tenant_latency" | "fault_mark" | "sample")
    ->
    true
  | "Monitor", "tick" -> true
  | _ -> false

let effectful_telemetry lid = effectful_telemetry_path (lid_parts lid)

let is_guard_name s =
  s = "enabled" || s = "armed"
  || (String.length s > 3 && String.sub s (String.length s - 3) 3 = "_on")

let is_guard_expr e =
  let found = ref false in
  iter_sub_exprs e (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt = lid; _ } -> if is_guard_name (lid_last lid) then found := true
      | Pexp_field (_, { txt = lid; _ }) -> if is_guard_name (lid_last lid) then found := true
      | _ -> ());
  !found

let check_guards ~file str =
  let out = ref [] in
  let guarded = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_ifthenelse (c, t, eo) ->
            let saved = !guarded in
            self.expr self c;
            if is_guard_expr c then guarded := true;
            self.expr self t;
            Option.iter (self.expr self) eo;
            guarded := saved
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; loc }; _ }, _) ->
            if effectful_telemetry lid && not !guarded then
              out :=
                diag ~file ~loc ~rule:"guard/telemetry"
                  (Printf.sprintf
                     "effectful %s call outside an enabled-guard conditional; wrap it in [if \
                      tel_on then ...] so the disabled path stays allocation-free"
                     (lid_string lid))
                :: !out;
            Ast_iterator.default_iterator.expr self e
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !out

(* ---------------- hot-path allocation ---------------- *)

let printf_heads = [ "Printf"; "Format" ]
let printf_names = [ "sprintf"; "printf"; "eprintf"; "fprintf"; "asprintf"; "sprintf" ]

(* Classify an expression node as an allocating construct; [Some
   (construct, loc, detail)]. *)
let alloc_construct e =
  match e.pexp_desc with
  | Pexp_tuple _ -> Some ("tuple", e.pexp_loc, "tuple construction")
  | Pexp_record _ -> Some ("record", e.pexp_loc, "record construction")
  | Pexp_fun _ | Pexp_function _ -> Some ("closure", e.pexp_loc, "closure allocation")
  | Pexp_lazy _ -> Some ("lazy", e.pexp_loc, "lazy thunk")
  | Pexp_array (_ :: _) -> Some ("array", e.pexp_loc, "array literal")
  | Pexp_construct ({ txt = Longident.Lident "::"; loc }, Some _) -> Some ("list", loc, "list cons")
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; loc }; _ }, _) ->
    let head = lid_head lid and last = lid_last lid in
    if List.mem head printf_heads || (head = last && List.mem last printf_names) then
      Some ("printf", loc, lid_string lid)
    else if head = "String" || head = "Bytes" || last = "^" then
      Some ("string", loc, lid_string lid)
    else if last = "@" || (head = "List" && List.mem last [ "append"; "concat"; "map"; "rev" ])
    then Some ("list", loc, lid_string lid)
    else if head = "Array" && List.mem last mutable_ctors then Some ("array", loc, lid_string lid)
    else if head = "Buffer" && last = "create" then Some ("string", loc, lid_string lid)
    else None
  | _ -> None

(* Strip the leading parameter chain of a toplevel [let f a b = ...] —
   those [Pexp_fun] nodes are the function itself, not closures it
   allocates. *)
let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

(* The body expressions of a definition: [let f a b = e] yields [e];
   [let f = function A -> e1 | B -> e2] yields the case bodies (and
   when-guards) — the [function] node is the function itself, not a
   closure it allocates per call. *)
let rec def_bodies e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> def_bodies body
  | Pexp_function cases ->
    List.concat_map
      (fun c -> (match c.pc_guard with Some g -> [ g ] | None -> []) @ [ c.pc_rhs ])
      cases
  | _ -> [ e ]

(* Arguments of these evaluate only when the program is about to raise:
   error-path work, never hot. *)
let is_raise_head lid =
  match lid_parts lid with
  | [ f ] -> List.mem f [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]
  | _ -> false

let check_hot_alloc ~file ~(manifest : Lint_manifest.t) str =
  let entries = Lint_manifest.hot_path_funcs manifest ~path:file in
  if entries = [] then []
  else begin
    let out = ref [] in
    let seen = Hashtbl.create 8 in
    iter_toplevel_bindings str (fun ~name vb ->
        match name with
        | None -> ()
        | Some n -> (
          match List.find_opt (fun h -> h.Lint_manifest.h_func = n) entries with
          | None -> ()
          | Some entry ->
            Hashtbl.replace seen n ();
            (* Custom walk: skip branches of telemetry-guard conditionals
               (they are off the telemetry-disabled hot path), honor the
               entry's allow= construct list. *)
            let rec walk e =
              (match alloc_construct e with
              | Some (kind, loc, detail) when not (List.mem kind entry.Lint_manifest.h_allow) ->
                out :=
                  diag ~file ~loc ~rule:"hot/alloc"
                    (Printf.sprintf
                       "hot-path function %S allocates (%s: %s); hoist it out of the per-event \
                        path or add allow=%s with a justification in lint.manifest"
                       n kind detail kind)
                  :: !out
              | _ -> ());
              match e.pexp_desc with
              | Pexp_ifthenelse (c, t, eo) ->
                walk c;
                if not (is_guard_expr c) then begin
                  walk t;
                  Option.iter walk eo
                end
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, _)
                when is_raise_head lid ->
                (* error-path: the arguments evaluate only when raising *)
                ()
              | _ ->
                let it =
                  {
                    Ast_iterator.default_iterator with
                    expr = (fun _ child -> if child != e then walk child);
                  }
                in
                Ast_iterator.default_iterator.expr it e
            in
            List.iter walk (def_bodies vb.pvb_expr)));
    List.iter
      (fun h ->
        if not (Hashtbl.mem seen h.Lint_manifest.h_func) then
          out :=
            Lint_diagnostic.make ~file ~line:1 ~col:0 ~rule:"lint/manifest"
              (Printf.sprintf "hot_path function %S not found in %s (manifest drift?)"
                 h.Lint_manifest.h_func file)
            :: !out)
      entries;
    !out
  end

(* ---------------- interface hygiene (driver supplies has_mli) ------- *)

let check_iface ~(manifest : Lint_manifest.t) ~rel ~has_mli =
  if has_mli || Lint_manifest.iface_exempted manifest ~path:rel then []
  else
    [
      Lint_diagnostic.make ~file:rel ~line:1 ~col:0 ~rule:"iface/mli"
        (Printf.sprintf
           "%s has no matching .mli; write one (or add an iface_exempt manifest entry for \
            re-export umbrella modules)"
           rel);
    ]

(* ---------------- entry point ---------------- *)

let check ~(manifest : Lint_manifest.t) (src : Lint_source.t) =
  match src.Lint_source.ast with
  | None -> []
  | Some str ->
    let file = src.Lint_source.rel in
    check_idents ~file str
    @ check_hashtbl_order ~file str
    @ check_toplevel_state ~file ~manifest str
    @ check_guards ~file str
    @ check_hot_alloc ~file ~manifest str
