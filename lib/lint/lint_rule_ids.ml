(* The closed set of rule identifiers.  Waivers and manifest lines naming
   anything outside this list are themselves findings — a typo in a
   waiver must not silently disable nothing. *)

let determinism = [ "det/random"; "det/clock"; "det/marshal"; "det/hashtbl-order" ]
let domain_safety = [ "dom/toplevel-state" ]
let guards = [ "guard/telemetry" ]
let hot_path = [ "hot/alloc" ]
let interface = [ "iface/mli" ]

(* Internal rule-ids attached to problems with the lint inputs themselves
   (unparseable source, malformed waiver or manifest line).  They are not
   waivable and not valid waiver targets. *)
let internal = [ "lint/parse-error"; "lint/bad-waiver"; "lint/manifest" ]

let all = determinism @ domain_safety @ guards @ hot_path @ interface
let is_known id = List.mem id all
let is_internal id = List.mem id internal

(* Construct names accepted by a [hot_path ... allow=...] manifest clause
   (see Lint_rules.hot-path family for what each one matches). *)
let alloc_constructs = [ "tuple"; "record"; "closure"; "list"; "array"; "printf"; "string"; "lazy" ]
