(* The closed set of rule identifiers.  Waivers and manifest lines naming
   anything outside this list are themselves findings — a typo in a
   waiver must not silently disable nothing. *)

let determinism = [ "det/random"; "det/clock"; "det/marshal"; "det/hashtbl-order"; "det/taint" ]
let domain_safety = [ "dom/toplevel-state" ]
let guards = [ "guard/telemetry"; "guard/transitive" ]
let hot_path = [ "hot/alloc"; "hot/transitive-alloc"; "hot/drift" ]
let interface = [ "iface/mli" ]

(* Rule-ids produced by the interprocedural (call-graph) passes rather
   than the per-file scans.  A waiver naming one of these that matches no
   finding is itself stale policy and reported as [lint/bad-waiver]. *)
let interprocedural = [ "det/taint"; "guard/transitive"; "hot/transitive-alloc"; "hot/drift" ]

(* Internal rule-ids attached to problems with the lint inputs themselves
   (unparseable source, malformed waiver or manifest line).  They are not
   waivable and not valid waiver targets. *)
let internal = [ "lint/parse-error"; "lint/bad-waiver"; "lint/manifest" ]

let all = determinism @ domain_safety @ guards @ hot_path @ interface
let is_known id = List.mem id all
let is_internal id = List.mem id internal

(* Construct names accepted by a [hot_path ... allow=...] manifest clause
   (see Lint_rules.hot-path family for what each one matches). *)
let alloc_constructs = [ "tuple"; "record"; "closure"; "list"; "array"; "printf"; "string"; "lazy" ]

(* One-paragraph explanations, printed by [reflex_lint --explain ID]. *)
let describe = function
  | "det/random" ->
    "ambient PRNG use (Random.int & friends without an explicit State.t); the simulator's \
     reproducibility contract requires every random stream to be seeded and threaded \
     explicitly"
  | "det/clock" ->
    "wall-clock read (Unix.gettimeofday / Sys.time / Unix.time) in simulation code; virtual \
     time must come from Sim.now so runs replay bit-identically"
  | "det/marshal" ->
    "Marshal use; its byte output varies across compiler versions and sharing settings, \
     breaking golden-file and cross-version comparisons"
  | "det/hashtbl-order" ->
    "iteration over an unsorted Hashtbl (iter/fold/to_seq without a nearby sort); bucket \
     order depends on insertion history and hash seeding, so dependent output is \
     nondeterministic"
  | "det/taint" ->
    "interprocedural determinism taint: a byte-identity-checked render (a manifest \
     identity_sink) transitively reaches a nondeterminism source (PRNG, wall clock, \
     Marshal, unsorted Hashtbl iteration) through the call graph; the finding's chain \
     lists each hop from the sink down to the source site"
  | "dom/toplevel-state" ->
    "mutable toplevel state (ref/Hashtbl/Buffer/array/Mutex at module level) without a \
     manifest domain_safe entry; shared mutable state needs an explicit ownership story \
     under OCaml 5 domains"
  | "guard/telemetry" ->
    "effectful Telemetry/Monitor call not dominated by an enabled/armed guard in the same \
     function; dataplane code must skip telemetry work when it is switched off"
  | "guard/transitive" ->
    "interprocedural guard propagation: an unguarded path from hot-set code reaches an \
     effectful telemetry call in a callee (often through a module alias the per-file rule \
     cannot see); some hop on the chain must test the enabled-guard"
  | "hot/alloc" ->
    "allocation (tuple/record/closure/list/array/printf/string/lazy) inside a function the \
     manifest declares hot_path, outside its allow= list; hot-path code must not allocate \
     per operation"
  | "hot/transitive-alloc" ->
    "allocation in a function reachable from a hot_path seed over applied, unguarded call \
     edges but absent from the manifest; either the callee is genuinely hot (give it a \
     hot_path entry or hoist the allocation) or the closure descended a cold branch (mark \
     the helper cold_path)"
  | "hot/drift" ->
    "a manifest hot_path entry whose function is referenced nowhere in the scanned tree; \
     the policy has drifted from the code — delete or re-point the entry"
  | "iface/mli" ->
    "a .ml without a matching .mli and no manifest iface_exempt entry; every module \
     exports a curated interface"
  | "lint/parse-error" -> "the file does not parse; nothing else can be checked"
  | "lint/bad-waiver" ->
    "malformed, unknown-rule, reason-less, or stale waiver comment; a waiver that \
     suppresses nothing must not linger"
  | "lint/manifest" -> "malformed or drifted lint.manifest line"
  | id -> Printf.sprintf "unknown rule-id %S" id
