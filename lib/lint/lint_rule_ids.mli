(** The closed set of reflex-lint rule identifiers. *)

val determinism : string list
val domain_safety : string list
val guards : string list
val hot_path : string list
val interface : string list

(** Rule-ids produced by the interprocedural call-graph passes
    ([det/taint], [guard/transitive], [hot/transitive-alloc],
    [hot/drift]).  Waivers on these that suppress nothing are stale and
    reported as [lint/bad-waiver]. *)
val interprocedural : string list

(** Rule-ids for problems with the lint inputs themselves (parse errors,
    malformed waivers/manifest lines).  Never waivable. *)
val internal : string list

(** All waivable rule-ids (excludes {!internal}). *)
val all : string list

val is_known : string -> bool
val is_internal : string -> bool

(** Construct names accepted by [hot_path ... allow=...]. *)
val alloc_constructs : string list

(** One-paragraph explanation of a rule-id ([reflex_lint --explain]). *)
val describe : string -> string
