(** A single lint finding with a compiler-style rendering. *)

type t = { file : string; line : int; col : int; rule : string; message : string }

val make : file:string -> line:int -> col:int -> rule:string -> string -> t

(** Order by file, then line, then column, then rule — the stable output
    order of every reflex-lint report (determinism applies to the linter
    itself, too). *)
val compare : t -> t -> int

(** [file:line:col: error [rule-id] message] *)
val to_string : t -> string

(** One JSON object; strings escaped. *)
val to_json : t -> string

(**/**)

val json_escape : string -> string
