(** A single lint finding with a compiler-style rendering. *)

(** One hop of an interprocedural propagation path. *)
type step = { st_name : string; st_file : string; st_line : int }

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : step list;
      (** propagation path for interprocedural findings (seed/sink first,
          terminal site last); [[]] for per-file findings *)
}

val make : ?chain:step list -> file:string -> line:int -> col:int -> rule:string -> string -> t
val step : name:string -> file:string -> line:int -> step

(** ["a -> b -> c"] — the compact form embedded in messages. *)
val chain_to_string : step list -> string

(** Order by file, then line, then column, then rule — the stable output
    order of every reflex-lint report (determinism applies to the linter
    itself, too). *)
val compare : t -> t -> int

(** [file:line:col: error [rule-id] message] *)
val to_string : t -> string

(** One JSON object; strings escaped. *)
val to_json : t -> string

(**/**)

val json_escape : string -> string
