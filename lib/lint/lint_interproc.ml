(* The interprocedural passes over {!Lint_callgraph}:

     hot/transitive-alloc  close the manifest's [hot_path] seeds over
                           applied, unguarded call edges and flag
                           allocations in every reachable callee that has
                           no manifest entry of its own.  [cold_path]
                           entries stop the closure (growth/registration
                           helpers reached only on cold branches).
     hot/drift             a [hot_path] entry referenced nowhere in the
                           scanned tree is stale policy.
     det/taint             functions containing a nondeterminism source
                           (ambient PRNG, wall clock, Marshal, unsorted
                           Hashtbl iteration) taint their transitive
                           callers; a tainted [identity_sink] (a
                           byte-identity-checked render) is a finding.
     guard/transitive      every unguarded path from hot-set code into an
                           effectful telemetry call must cross an
                           enabled-guard somewhere; alias-resolved sites
                           the per-file [guard/telemetry] rule cannot see
                           are caught here, with the call chain attached.

   Every finding carries its propagation chain (seed/sink first,
   terminal site last) both embedded in the message ("via a -> b -> c")
   and structurally, for [--explain].  Iteration is deterministic:
   worklists are seeded in sorted order and edges are consumed in the
   graph's stable order, so reports are byte-identical across runs and
   [--jobs] settings. *)

module G = Lint_callgraph

type stats = {
  gs_nodes : int;
  gs_edges : int;
  gs_hot_seeds : int;
  gs_hot_inferred : int;
  gs_taint_sources : int;
  gs_taint_tainted : int;
  gs_identity_sinks : int;
  gs_findings : int; (* pre-waiver interprocedural findings *)
}

(* Reconstruct a diagnostic chain from BFS parent edges: the seed's own
   definition site first, then each hop's call site in its caller. *)
let chain_of ~(graph : G.t) ~parents id =
  let rec walk acc id =
    match Hashtbl.find_opt parents id with
    | Some (e : G.edge) ->
      walk (Lint_diagnostic.step ~name:e.G.e_to ~file:e.G.e_file ~line:e.G.e_site.G.p_line :: acc) e.G.e_from
    | None ->
      let file, line =
        match G.node graph id with Some n -> (n.G.n_file, n.G.n_line) | None -> ("?", 0)
      in
      Lint_diagnostic.step ~name:id ~file ~line :: acc
  in
  walk [] id

(* ---------------- transitive hot set ---------------- *)

(* BFS from the manifest seeds over applied, unguarded edges, stopping
   at [cold_path] nodes.  Returns the visited set (the hot set), the
   parent-edge map for chains, and the seed ids in order. *)
let hot_closure ~(graph : G.t) ~seeds ~cold =
  let visited = Hashtbl.create 128 in
  let parents = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        Queue.add id queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun (e : G.edge) ->
        if
          e.G.e_site.G.p_app
          && (not e.G.e_site.G.p_guarded)
          && (not (Hashtbl.mem visited e.G.e_to))
          && not (Hashtbl.mem cold e.G.e_to)
        then begin
          Hashtbl.replace visited e.G.e_to ();
          Hashtbl.replace parents e.G.e_to e;
          Queue.add e.G.e_to queue
        end)
      (G.out_edges graph id)
  done;
  (visited, parents)

(* ---------------- backward propagation (taint / guard leaks) -------- *)

(* Generic reverse reachability over applied edges: [roots] maps node id
   to its terminal step (the source/effect site).  Returns, per reached
   node, the forward chain of steps from that node down to the terminal
   site.  [follow_guarded] distinguishes taint (guards are telemetry
   switches, not determinism barriers: follow) from guard leaks (a
   guarded edge is exactly what discharges the obligation: stop).
   [cut] prunes nodes policy treats as internally safe. *)
let propagate_up ~(graph : G.t) ~roots ~follow_guarded ~cut =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun (e : G.edge) ->
      if e.G.e_site.G.p_app && ((not e.G.e_site.G.p_guarded) || follow_guarded) then
        let prev = Option.value ~default:[] (Hashtbl.find_opt rev e.G.e_to) in
        Hashtbl.replace rev e.G.e_to (prev @ [ e ]))
    graph.G.edges;
  let reached : (string, Lint_diagnostic.step list) Hashtbl.t = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun (id, terminal) ->
      if (not (Hashtbl.mem reached id)) && not (cut id) then begin
        let self =
          match G.node graph id with
          | Some n -> Lint_diagnostic.step ~name:id ~file:n.G.n_file ~line:n.G.n_line
          | None -> Lint_diagnostic.step ~name:id ~file:"?" ~line:0
        in
        Hashtbl.replace reached id [ self; terminal ];
        Queue.add id queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let chain = Hashtbl.find reached id in
    List.iter
      (fun (e : G.edge) ->
        if (not (Hashtbl.mem reached e.G.e_from)) && not (cut e.G.e_from) then begin
          (* The caller's step anchors at its call site into [id]. *)
          let caller_step =
            Lint_diagnostic.step ~name:e.G.e_from ~file:e.G.e_file ~line:e.G.e_site.G.p_line
          in
          (* Re-anchor the callee's own step at the call site too, so the
             chain reads caller -> callee@call-site -> ... -> terminal. *)
          Hashtbl.replace reached e.G.e_from (caller_step :: chain);
          Queue.add e.G.e_from queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt rev id))
  done;
  reached

(* ---------------- the passes ---------------- *)

let run ~(manifest : Lint_manifest.t) ~manifest_path ~(graph : G.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let allowed_guard file = Lint_manifest.allowed manifest ~rule:"guard/telemetry" ~path:file in
  let allowed_taint file = Lint_manifest.allowed manifest ~rule:"det/taint" ~path:file in

  (* Seeds and stops, with existence validation for the new forms (the
     per-file rule already reports hot_path entries whose function is
     missing from its file). *)
  let hot_entries =
    List.concat_map
      (fun (h : Lint_manifest.hot_entry) ->
        List.map
          (fun (n : G.node) -> (n.G.n_id, h))
          (G.find_in_file graph ~file:h.Lint_manifest.h_file ~func:h.Lint_manifest.h_func))
      (List.rev manifest.Lint_manifest.hot_paths)
  in
  let seed_tbl = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace seed_tbl id ()) hot_entries;
  let seeds = List.sort_uniq String.compare (List.map fst hot_entries) in
  let cold = Hashtbl.create 16 in
  let resolve_func_entry ~form (f : Lint_manifest.func_entry) =
    match G.find_in_file graph ~file:f.Lint_manifest.f_file ~func:f.Lint_manifest.f_func with
    | [] ->
      add
        (Lint_diagnostic.make ~file:manifest_path ~line:f.Lint_manifest.f_line ~col:0
           ~rule:"lint/manifest"
           (Printf.sprintf "%s function %S not found in %s (manifest drift?)" form
              f.Lint_manifest.f_func f.Lint_manifest.f_file));
      []
    | ns -> List.map (fun (n : G.node) -> n.G.n_id) ns
  in
  List.iter
    (fun f -> List.iter (fun id -> Hashtbl.replace cold id ()) (resolve_func_entry ~form:"cold_path" f))
    (List.rev manifest.Lint_manifest.cold_paths);
  let sink_ids =
    List.concat_map
      (fun (f : Lint_manifest.func_entry) ->
        List.map (fun id -> (id, f)) (resolve_func_entry ~form:"identity_sink" f))
      (List.rev manifest.Lint_manifest.identity_sinks)
  in

  (* -------- hot/transitive-alloc -------- *)
  let hot_set, hot_parents = hot_closure ~graph ~seeds ~cold in
  let hot_inferred = ref 0 in
  List.iter
    (fun (n : G.node) ->
      if Hashtbl.mem hot_set n.G.n_id && not (Hashtbl.mem seed_tbl n.G.n_id) then begin
        incr hot_inferred;
        match n.G.n_allocs with
        | [] -> ()
        | allocs ->
          let chain = chain_of ~graph ~parents:hot_parents n.G.n_id in
          let via = Lint_diagnostic.chain_to_string chain in
          List.iter
            (fun (kind, line, col, detail) ->
              add
                (Lint_diagnostic.make ~chain ~file:n.G.n_file ~line ~col
                   ~rule:"hot/transitive-alloc"
                   (Printf.sprintf
                      "%S is on the hot path via %s and allocates (%s: %s); hoist the \
                       allocation, add a hot_path entry with allow=%s, mark the helper \
                       cold_path, or waive with a reason"
                      n.G.n_name via kind detail kind)))
            allocs
      end)
    graph.G.nodes;

  (* -------- hot/drift -------- *)
  List.iter
    (fun (h : Lint_manifest.hot_entry) ->
      let nodes = G.find_in_file graph ~file:h.Lint_manifest.h_file ~func:h.Lint_manifest.h_func in
      if nodes <> [] && List.for_all (fun (n : G.node) -> G.in_degree graph n.G.n_id = 0) nodes
      then
        add
          (Lint_diagnostic.make ~file:manifest_path ~line:h.Lint_manifest.h_line ~col:0
             ~rule:"hot/drift"
             (Printf.sprintf
                "hot_path entry %s %s is referenced nowhere in the scanned tree; the function \
                 left the hot path (drift) — delete the entry or waive with a reason"
                h.Lint_manifest.h_file h.Lint_manifest.h_func)))
    (List.rev manifest.Lint_manifest.hot_paths);

  (* -------- det/taint -------- *)
  let taint_roots =
    List.filter_map
      (fun (n : G.node) ->
        if allowed_taint n.G.n_file then None
        else
          match n.G.n_sources with
          | [] -> None
          | s :: _ ->
            Some
              ( n.G.n_id,
                Lint_diagnostic.step ~name:s.G.s_desc ~file:n.G.n_file ~line:s.G.s_line ))
      graph.G.nodes
  in
  let taint_sources =
    List.fold_left
      (fun acc (n : G.node) ->
        if allowed_taint n.G.n_file then acc else acc + List.length n.G.n_sources)
      0 graph.G.nodes
  in
  let tainted =
    propagate_up ~graph ~roots:taint_roots ~follow_guarded:true ~cut:(fun id ->
        match G.node graph id with
        | Some n -> allowed_taint n.G.n_file
        | None -> false)
  in
  List.iter
    (fun (id, (f : Lint_manifest.func_entry)) ->
      match Hashtbl.find_opt tainted id with
      | None -> ()
      | Some chain ->
        let n = match G.node graph id with Some n -> n | None -> assert false in
        let via = Lint_diagnostic.chain_to_string chain in
        (* Anchor at the sink's first hop toward the source — the call
           site in the sink's own file (the line a waiver would sit on).
           A sink containing its own source (chain = [self; terminal])
           anchors at that source site instead; both lines are in the
           sink's file, matching the finding's [file]. *)
        let line =
          match chain with
          | [ _; terminal ] -> terminal.Lint_diagnostic.st_line
          | first :: _ -> first.Lint_diagnostic.st_line
          | [] -> n.G.n_line
        in
        let term =
          match List.rev chain with
          | t :: _ -> Printf.sprintf "%s at %s:%d" t.Lint_diagnostic.st_name t.Lint_diagnostic.st_file t.Lint_diagnostic.st_line
          | [] -> "?"
        in
        add
          (Lint_diagnostic.make ~chain ~file:n.G.n_file ~line ~col:0 ~rule:"det/taint"
             (Printf.sprintf
                "byte-identity-checked render %S reaches a nondeterminism source (%s) via %s; \
                 keep the value out of the render, or waive/allow det/taint with a reason"
                f.Lint_manifest.f_func term via)))
    sink_ids;

  (* -------- guard/transitive -------- *)
  let leak_roots =
    List.filter_map
      (fun (n : G.node) ->
        if allowed_guard n.G.n_file then None
        else
          match
            List.filter (fun (x : G.effect_site) -> (not x.G.x_guarded) && not x.G.x_plain) n.G.n_effects
          with
          | [] -> None
          | x :: _ ->
            Some (n.G.n_id, Lint_diagnostic.step ~name:x.G.x_path ~file:n.G.n_file ~line:x.G.x_line))
      graph.G.nodes
  in
  let leaks =
    propagate_up ~graph ~roots:leak_roots ~follow_guarded:false ~cut:(fun id ->
        match G.node graph id with
        | Some n -> allowed_guard n.G.n_file
        | None -> false)
  in
  let guard_findings = ref 0 in
  (* Direct, alias-resolved unguarded telemetry sites in hot-set code:
     the per-file rule cannot see these (the head is a local alias). *)
  List.iter
    (fun (n : G.node) ->
      if Hashtbl.mem hot_set n.G.n_id && not (allowed_guard n.G.n_file) then
        List.iter
          (fun (x : G.effect_site) ->
            if (not x.G.x_guarded) && not x.G.x_plain then begin
              incr guard_findings;
              let chain =
                [
                  Lint_diagnostic.step ~name:n.G.n_id ~file:n.G.n_file ~line:n.G.n_line;
                  Lint_diagnostic.step ~name:x.G.x_path ~file:n.G.n_file ~line:x.G.x_line;
                ]
              in
              add
                (Lint_diagnostic.make ~chain ~file:n.G.n_file ~line:x.G.x_line ~col:x.G.x_col
                   ~rule:"guard/transitive"
                   (Printf.sprintf
                      "effectful %s call (alias-resolved) on the hot path outside an \
                       enabled-guard; wrap it in [if tel_on then ...] in %S or in its hot \
                       callers"
                      x.G.x_path n.G.n_name))
            end)
          n.G.n_effects)
    graph.G.nodes;
  (* Unguarded hot-set edges into leaking code the closure did not
     absorb (cold_path cutouts): report at the edge, with the chain. *)
  List.iter
    (fun (e : G.edge) ->
      if
        Hashtbl.mem hot_set e.G.e_from
        && e.G.e_site.G.p_app
        && (not e.G.e_site.G.p_guarded)
        && not (Hashtbl.mem hot_set e.G.e_to)
      then
        match Hashtbl.find_opt leaks e.G.e_to with
        | None -> ()
        | Some callee_chain ->
          incr guard_findings;
          let caller_step =
            Lint_diagnostic.step ~name:e.G.e_from ~file:e.G.e_file ~line:e.G.e_site.G.p_line
          in
          let chain = caller_step :: callee_chain in
          add
            (Lint_diagnostic.make ~chain ~file:e.G.e_file ~line:e.G.e_site.G.p_line
               ~col:e.G.e_site.G.p_col ~rule:"guard/transitive"
               (Printf.sprintf
                  "unguarded hot-path call into telemetry via %s; cross an enabled-guard on \
                   this edge or inside the callee"
                  (Lint_diagnostic.chain_to_string chain))))
    graph.G.edges;

  let findings = List.rev !out in
  let stats =
    {
      gs_nodes = List.length graph.G.nodes;
      gs_edges = List.length graph.G.edges;
      gs_hot_seeds = List.length seeds;
      gs_hot_inferred = !hot_inferred;
      gs_taint_sources = taint_sources;
      gs_taint_tainted = Hashtbl.length tainted;
      gs_identity_sinks = List.length manifest.Lint_manifest.identity_sinks;
      gs_findings = List.length findings;
    }
  in
  (findings, stats, fun id -> Hashtbl.mem hot_set id)
