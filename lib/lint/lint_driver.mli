(** Lint orchestration: discovery, per-file rule passes (fanned across
    domains), call-graph construction, interprocedural passes,
    waiver/manifest filtering, deterministic rendering.  Reports are
    byte-identical for any [jobs] value. *)

type report = {
  findings : Lint_diagnostic.t list;  (** sorted, waiver/manifest-filtered *)
  files_scanned : int;
  waivers_used : int;
  rules : string list;
  gstats : Lint_interproc.stats option;
      (** call-graph pass statistics; [None] for single-source runs *)
}

val clean : report -> bool

(** Lint every [.ml] under [paths] (default [lib bin bench], resolved
    against [root]).  The manifest is loaded from [manifest_path]; a
    missing or malformed manifest yields [lint/manifest] findings.
    [jobs] (default 1) fans the per-file stage across domains. *)
val run :
  ?paths:string list -> ?jobs:int -> root:string -> manifest_path:string -> unit -> report

(** {!run}, also returning the call graph and the hot-set membership
    predicate (by node id) for [--callgraph-out] exports. *)
val run_full :
  ?paths:string list ->
  ?jobs:int ->
  root:string ->
  manifest_path:string ->
  unit ->
  report * Lint_callgraph.t * (string -> bool)

(** Lint one in-memory source against a given manifest (fixture tests).
    Runs the AST families only — not [iface/mli] or the interprocedural
    passes, which need the filesystem / the whole tree. *)
val run_on_source : manifest:Lint_manifest.t -> Lint_source.t -> report

(** Compiler-style text report plus a one-line summary (and a call-graph
    stats line when the interprocedural passes ran). *)
val to_text : report -> string

(** Machine-readable report (hand-rolled JSON, stable field order). *)
val to_json : report -> string
