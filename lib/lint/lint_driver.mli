(** Lint orchestration: discovery, rule passes, waiver/manifest
    filtering, deterministic rendering. *)

type report = {
  findings : Lint_diagnostic.t list;  (** sorted, waiver/manifest-filtered *)
  files_scanned : int;
  waivers_used : int;
  rules : string list;
}

val clean : report -> bool

(** Lint every [.ml] under [paths] (default [lib bin bench], resolved
    against [root]).  The manifest is loaded from [manifest_path]; a
    missing or malformed manifest yields [lint/manifest] findings. *)
val run : ?paths:string list -> root:string -> manifest_path:string -> unit -> report

(** Lint one in-memory source against a given manifest (fixture tests).
    Runs the AST families only — not [iface/mli], which needs the
    filesystem. *)
val run_on_source : manifest:Lint_manifest.t -> Lint_source.t -> report

(** Compiler-style text report plus a one-line summary. *)
val to_text : report -> string

(** Machine-readable report (hand-rolled JSON, stable field order). *)
val to_json : report -> string
