(** Cross-module call graph over the scanned tree: definitions resolved
    from the parsetree with a module-alias-aware resolver, plus the
    per-definition facts (allocation sites, determinism-taint sources,
    effectful telemetry sites) the interprocedural passes consume.
    Construction semantics and soundness caveats: DESIGN.md §15. *)

type site = { p_line : int; p_col : int; p_app : bool; p_guarded : bool }

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;  (** caller's file: where the call site lives *)
  e_site : site;
}

(** A call whose alias-expanded path is an effectful telemetry entry
    ([Telemetry.span] & friends, [Monitor.tick]).  [x_plain] marks the
    sites the per-file [guard/telemetry] rule already sees. *)
type effect_site = { x_path : string; x_line : int; x_col : int; x_guarded : bool; x_plain : bool }

(** A determinism-taint source site (ambient PRNG, wall clock,
    [Marshal], unsorted Hashtbl iteration). *)
type source_site = { s_desc : string; s_line : int; s_col : int }

type node = {
  n_id : string;  (** ["Scheduler.schedule"], ["Flight.Kind.to_string"] *)
  n_file : string;
  n_line : int;
  n_name : string;
  n_allocs : (string * int * int * string) list;  (** construct, line, col, detail *)
  n_effects : effect_site list;
  n_sources : source_site list;
}

type t = {
  nodes : node list;  (** sorted by id *)
  edges : edge list;  (** sorted by (from, line, col, to) *)
  node_tbl : (string, node) Hashtbl.t;
  out_tbl : (string, edge list) Hashtbl.t;
  in_deg : (string, int) Hashtbl.t;
}

(** Per-file scan result; pure, safe to compute in parallel workers. *)
type file_facts

(** ["lib/qos/scheduler.ml"] -> ["Scheduler"]. *)
val module_of_file : string -> string

val scan_file : rel:string -> Parsetree.structure -> file_facts
val build : file_facts list -> t

val node : t -> string -> node option
val out_edges : t -> string -> edge list
val in_degree : t -> string -> int

(** Toplevel definitions in [file] named [func] (how manifest
    [hot_path]/[cold_path]/[identity_sink] entries address nodes). *)
val find_in_file : t -> file:string -> func:string -> node list

(** Graphviz rendering; [hot] nodes are highlighted. *)
val to_dot : ?hot:(string -> bool) -> t -> string

(** Machine-readable nodes/edges export (hand-rolled JSON, stable
    order). *)
val to_json : ?hot:(string -> bool) -> t -> string
