(* Inline waivers.  A finding is waived by a comment of the form

     (* reflex-lint: allow <rule-id> — <reason> *)

   placed on the offending line or on the line directly above it.  The
   reason is mandatory; a waiver naming an unknown rule-id, or carrying
   no reason, is itself a [lint/bad-waiver] finding — a typo must not
   silently waive nothing.

   Comment extraction is a small hand lexer that understands nested
   comments and skips string literals (so a string containing "(*" does
   not open a comment).  Char literals are not modelled beyond the
   ['"'] case ['\"']-in-strings handles; this is fine for waiver
   scanning, which only needs comment spans, and the AST rules use the
   real compiler parser. *)

type t = { w_start_line : int; w_end_line : int; w_rule : string; w_reason : string }

(* [start_line, end_line+1] — the comment's own lines plus the next. *)
let covering ws ~rule ~line =
  List.find_opt (fun w -> w.w_rule = rule && line >= w.w_start_line && line <= w.w_end_line + 1) ws

let covers ws ~rule ~line = covering ws ~rule ~line <> None

type comment = { c_start_line : int; c_end_line : int; c_text : string }

let extract_comments text =
  let n = String.length text in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let at s off = off + String.length s <= n && String.sub text off (String.length s) = s in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if at "(*" !i then begin
      (* comment: consume with nesting *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if at "(*" !i then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if at "*)" !i then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          if text.[!i] = '\n' then incr line;
          Buffer.add_char buf text.[!i];
          incr i
        end
      done;
      comments :=
        { c_start_line = start_line; c_end_line = !line; c_text = Buffer.contents buf }
        :: !comments
    end
    else if c = '"' then begin
      (* string literal: skip to unescaped closing quote *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match text.[!i] with
        | '\\' -> i := !i + 1 (* skip escaped char (the incr below adds 1 more) *)
        | '"' -> fin := true
        | '\n' -> incr line
        | _ -> ());
        incr i
      done
    end
    else incr i
  done;
  List.rev !comments

let prefix = "reflex-lint:"

let scan ~file text =
  let waivers = ref [] and diags = ref [] in
  let bad line msg =
    diags := Lint_diagnostic.make ~file ~line ~col:0 ~rule:"lint/bad-waiver" msg :: !diags
  in
  List.iter
    (fun c ->
      let body = String.trim c.c_text in
      if String.length body >= String.length prefix && String.sub body 0 (String.length prefix) = prefix
      then begin
        let rest = String.trim (String.sub body (String.length prefix) (String.length body - String.length prefix)) in
        match Lint_manifest.split_reason rest with
        | None -> bad c.c_start_line "waiver lacks a '— reason' justification"
        | Some (payload, reason) -> (
          match Lint_manifest.words payload with
          | [ "allow"; rule ] ->
            if Lint_rule_ids.is_internal rule then
              bad c.c_start_line (Printf.sprintf "rule %S cannot be waived" rule)
            else if not (Lint_rule_ids.is_known rule) then
              bad c.c_start_line (Printf.sprintf "waiver names unknown rule-id %S" rule)
            else
              waivers :=
                {
                  w_start_line = c.c_start_line;
                  w_end_line = c.c_end_line;
                  w_rule = rule;
                  w_reason = reason;
                }
                :: !waivers
          | _ -> bad c.c_start_line "waiver syntax: (* reflex-lint: allow <rule-id> — <reason> *)")
      end)
    (extract_comments text);
  (List.rev !waivers, List.rev !diags)
