(** Inline waiver comments:
    [(* reflex-lint: allow <rule-id> — <reason> *)].

    A waiver covers findings of its rule on the comment's own line(s)
    and the line directly below the comment.  The reason is mandatory;
    unknown rule-ids and missing reasons are [lint/bad-waiver] findings. *)

type t = { w_start_line : int; w_end_line : int; w_rule : string; w_reason : string }

(** Extract waivers (and bad-waiver findings) from source text. *)
val scan : file:string -> string -> t list * Lint_diagnostic.t list

(** Does some waiver cover [rule] at [line]? *)
val covers : t list -> rule:string -> line:int -> bool

(** The covering waiver itself, for usage tracking (stale-waiver
    detection on the interprocedural rule-ids). *)
val covering : t list -> rule:string -> line:int -> t option
