(* A single lint finding, formatted compiler-style so editors and CI can
   jump straight to it: [file:line:col: error [rule-id] message]. *)

type step = { st_name : string; st_file : string; st_line : int }

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  (* Interprocedural findings carry the propagation path (seed/sink
     first, terminal site last); empty for per-file findings.  The chain
     is what lets a reviewer name the edge to waive and what
     [--explain <rule-id>] expands with per-hop locations. *)
  chain : step list;
}

let make ?(chain = []) ~file ~line ~col ~rule message = { file; line; col; rule; message; chain }

let step ~name ~file ~line = { st_name = name; st_file = file; st_line = line }

(* "via a -> b -> c" — the compact form embedded in messages. *)
let chain_to_string chain = String.concat " -> " (List.map (fun s -> s.st_name) chain)

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Stdlib.compare a.line b.line with
    | 0 -> (
      match Stdlib.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let to_string d = Printf.sprintf "%s:%d:%d: error [%s] %s" d.file d.line d.col d.rule d.message

(* Minimal JSON string escaping: the repo policy is hand-rolled JSON
   emitters (no external dependency), mirroring lib/telemetry. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The chain is emitted only when present so per-file findings keep the
   PR 5 rendering byte-for-byte. *)
let to_json d =
  let base =
    Printf.sprintf {|"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"|}
      (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.message)
  in
  if d.chain = [] then "{" ^ base ^ "}"
  else
    Printf.sprintf {|{%s,"chain":[%s]}|} base
      (String.concat ","
         (List.map
            (fun s ->
              Printf.sprintf {|{"fn":"%s","file":"%s","line":%d}|} (json_escape s.st_name)
                (json_escape s.st_file) s.st_line)
            d.chain))
