(* One loaded source file: raw text, compiler-parsed AST, and inline
   waivers.  [rel] is the root-relative path used in diagnostics and for
   manifest matching; [abs] is the on-disk path. *)

type t = {
  rel : string;
  text : string;
  ast : Parsetree.structure option;
  parse_diags : Lint_diagnostic.t list;
  waivers : Lint_waiver.t list;
  waiver_diags : Lint_diagnostic.t list;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let parse ~rel text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf rel;
  match Parse.implementation lexbuf with
  | ast -> (Some ast, [])
  | exception exn ->
    let line, col, msg =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        let p = loc.Location.loc_start in
        ( p.Lexing.pos_lnum,
          p.Lexing.pos_cnum - p.Lexing.pos_bol,
          Format.asprintf "%a" Format.pp_print_text "syntax error" )
      | _ -> (1, 0, Printexc.to_string exn)
    in
    (None, [ Lint_diagnostic.make ~file:rel ~line ~col ~rule:"lint/parse-error" msg ])

let load ~rel ~abs =
  let text = read_file abs in
  let ast, parse_diags = parse ~rel text in
  let waivers, waiver_diags = Lint_waiver.scan ~file:rel text in
  { rel; text; ast; parse_diags; waivers; waiver_diags }

let of_string ~rel text =
  let ast, parse_diags = parse ~rel text in
  let waivers, waiver_diags = Lint_waiver.scan ~file:rel text in
  { rel; text; ast; parse_diags; waivers; waiver_diags }
