(* One loaded source file: raw text, compiler-parsed AST, and inline
   waivers.  [rel] is the root-relative path used in diagnostics and for
   manifest matching; [abs] is the on-disk path. *)

type t = {
  rel : string;
  text : string;
  ast : Parsetree.structure option;
  parse_diags : Lint_diagnostic.t list;
  waivers : Lint_waiver.t list;
  waiver_diags : Lint_diagnostic.t list;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* compiler-libs' parser touches shared global state (Location's input
   bookkeeping, error formatting); serialize parses so Lint_driver's
   domain fan-out stays safe.  Everything downstream of the parse is
   pure per-file work and runs unlocked. *)
let parse_mutex = Mutex.create ()

let parse ~rel text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf rel;
  let parsed =
    Mutex.lock parse_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock parse_mutex)
      (fun () -> try Ok (Parse.implementation lexbuf) with exn -> Error exn)
  in
  match parsed with
  | Ok ast -> (Some ast, [])
  | Error exn ->
    let line, col, msg =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        let p = loc.Location.loc_start in
        ( p.Lexing.pos_lnum,
          p.Lexing.pos_cnum - p.Lexing.pos_bol,
          Format.asprintf "%a" Format.pp_print_text "syntax error" )
      | _ -> (1, 0, Printexc.to_string exn)
    in
    (None, [ Lint_diagnostic.make ~file:rel ~line ~col ~rule:"lint/parse-error" msg ])

let load ~rel ~abs =
  let text = read_file abs in
  let ast, parse_diags = parse ~rel text in
  let waivers, waiver_diags = Lint_waiver.scan ~file:rel text in
  { rel; text; ast; parse_diags; waivers; waiver_diags }

let of_string ~rel text =
  let ast, parse_diags = parse ~rel text in
  let waivers, waiver_diags = Lint_waiver.scan ~file:rel text in
  { rel; text; ast; parse_diags; waivers; waiver_diags }
