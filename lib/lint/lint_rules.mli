(** The five reflex-lint rule families as syntactic Parsetree passes.
    Approximation limits are documented in DESIGN.md §10. *)

(** Run the AST rule families (determinism, domain-safety, guards,
    hot-path allocation) on one parsed source file.  Waiver and manifest
    [allow] filtering happen in {!Lint_driver}, not here. *)
val check : manifest:Lint_manifest.t -> Lint_source.t -> Lint_diagnostic.t list

(** Interface hygiene: flag a [.ml] with no matching [.mli] unless
    manifest-exempted.  The driver supplies the filesystem fact. *)
val check_iface : manifest:Lint_manifest.t -> rel:string -> has_mli:bool -> Lint_diagnostic.t list
