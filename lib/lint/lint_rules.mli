(** The five reflex-lint rule families as syntactic Parsetree passes.
    Approximation limits are documented in DESIGN.md §10. *)

(** Run the AST rule families (determinism, domain-safety, guards,
    hot-path allocation) on one parsed source file.  Waiver and manifest
    [allow] filtering happen in {!Lint_driver}, not here. *)
val check : manifest:Lint_manifest.t -> Lint_source.t -> Lint_diagnostic.t list

(** Interface hygiene: flag a [.ml] with no matching [.mli] unless
    manifest-exempted.  The driver supplies the filesystem fact. *)
val check_iface : manifest:Lint_manifest.t -> rel:string -> has_mli:bool -> Lint_diagnostic.t list

(**/**)

(** Shared AST primitives, reused by {!Lint_callgraph} so the
    interprocedural passes classify sites exactly like the per-file
    rules do. *)

val lid_parts : Longident.t -> string list
val lid_head : Longident.t -> string
val lid_last : Longident.t -> string
val lid_string : Longident.t -> string
val pos_of : Location.t -> int * int

(** Wall-clock read paths recognised by [det/clock] (and as taint
    sources). *)
val clock_paths : string list

val is_hashtbl_iter : Longident.t -> bool
val is_sort_name : string -> bool

(** Is this conditional's condition an enabled/armed/[*_on] guard? *)
val is_guard_expr : Parsetree.expression -> bool

(** [Telemetry]/[Monitor] calls that record when enabled, keyed on the
    dotted path (module head and function name). *)
val effectful_telemetry_path : string list -> bool

(** Classify an expression node as an allocating construct:
    [(construct, loc, detail)]. *)
val alloc_construct : Parsetree.expression -> (string * Location.t * string) option

(** Strip the leading parameter chain of a [let f a b = ...] body. *)
val strip_params : Parsetree.expression -> Parsetree.expression

(** Like {!strip_params}, but a definition written [let f = function ...]
    yields all case bodies (the [function] node is the function itself,
    not a per-call closure). *)
val def_bodies : Parsetree.expression -> Parsetree.expression list

(** [raise]/[failwith]/[invalid_arg]: argument subtrees evaluate only on
    the error path and are excluded from hot-path allocation scans. *)
val is_raise_head : Longident.t -> bool
