(** One loaded source file: text, compiler-parsed AST, inline waivers. *)

type t = {
  rel : string;  (** root-relative path used in diagnostics *)
  text : string;
  ast : Parsetree.structure option;  (** [None] on parse failure *)
  parse_diags : Lint_diagnostic.t list;  (** [lint/parse-error] findings *)
  waivers : Lint_waiver.t list;
  waiver_diags : Lint_diagnostic.t list;  (** [lint/bad-waiver] findings *)
}

val load : rel:string -> abs:string -> t

(** For tests: lint source given directly as a string. *)
val of_string : rel:string -> string -> t
