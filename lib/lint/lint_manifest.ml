(* The checked-in `lint.manifest` carries directory- and symbol-scoped
   policy: which rules are waived wholesale under a path prefix, which
   functions are hot-path allocation-scanned, which module-toplevel
   mutable bindings are registered as domain-safe, and which `.ml` files
   are exempt from the matching-`.mli` rule.

   Syntax (one entry per line, `#` comments, blank lines ignored):

     allow <rule-id> <path-prefix> — <reason>
     hot_path <file> <function> [allow=c1,c2] — <reason>
     cold_path <file> <function> — <reason>
     identity_sink <file> <function> — <reason>
     domain_safe <file> <ident> — <reason>
     iface_exempt <file> — <reason>

   [hot_path] entries double as the seeds of the interprocedural hot-set
   closure; [cold_path] marks a function the closure must not descend
   into (growth/registration/init helpers reached from hot code only on
   their cold branch); [identity_sink] declares a byte-identity-checked
   render (debrief/digest/trace export) that the determinism-taint pass
   protects.

   Every entry must carry a reason after an em-dash (or `--`): policy
   without a written justification is itself a lint error. *)

type hot_entry = {
  h_file : string;
  h_func : string;
  h_allow : string list;
  h_reason : string;
  h_line : int; (* manifest line, where hot/drift findings anchor *)
}

type func_entry = { f_file : string; f_func : string; f_reason : string; f_line : int }

type t = {
  allows : (string * string * string) list; (* rule-id, path prefix, reason *)
  hot_paths : hot_entry list;
  cold_paths : func_entry list;
  identity_sinks : func_entry list;
  domain_safe : (string * string * string) list; (* file, ident, reason *)
  iface_exempt : (string * string) list; (* file, reason *)
}

let empty =
  {
    allows = [];
    hot_paths = [];
    cold_paths = [];
    identity_sinks = [];
    domain_safe = [];
    iface_exempt = [];
  }

(* Split "payload — reason" (accepting the ASCII fallback "--").  Returns
   None when no separator or the reason is empty. *)
let split_reason line =
  let try_sep sep =
    let slen = String.length sep in
    let rec find i =
      if i + slen > String.length line then None
      else if String.sub line i slen = sep then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      let payload = String.trim (String.sub line 0 i) in
      let reason = String.trim (String.sub line (i + slen) (String.length line - i - slen)) in
      if reason = "" then None else Some (payload, reason)
  in
  match try_sep "\xe2\x80\x94" (* U+2014 em-dash *) with
  | Some r -> Some r
  | None -> ( match try_sep "--" with Some r -> Some r | None -> None)

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse ~file text =
  let diags = ref [] in
  let m = ref empty in
  let error line msg =
    diags := Lint_diagnostic.make ~file ~line ~col:0 ~rule:"lint/manifest" msg :: !diags
  in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else
      match split_reason line with
      | None -> error lineno "manifest entry lacks a '— reason' justification"
      | Some (payload, reason) -> (
        match words payload with
        | [ "allow"; rule; prefix ] ->
          if not (Lint_rule_ids.is_known rule) then
            error lineno (Printf.sprintf "allow names unknown rule-id %S" rule)
          else m := { !m with allows = (rule, prefix, reason) :: !m.allows }
        | "hot_path" :: filep :: func :: rest ->
          let allow =
            match rest with
            | [] -> Ok []
            | [ a ] when String.length a > 6 && String.sub a 0 6 = "allow=" ->
              let names =
                String.split_on_char ',' (String.sub a 6 (String.length a - 6))
                |> List.filter (fun w -> w <> "")
              in
              let bad = List.filter (fun c -> not (List.mem c Lint_rule_ids.alloc_constructs)) names in
              if bad <> [] then
                Error (Printf.sprintf "unknown alloc construct(s): %s" (String.concat "," bad))
              else Ok names
            | _ -> Error "hot_path takes: <file> <function> [allow=c1,c2]"
          in
          (match allow with
          | Error msg -> error lineno msg
          | Ok h_allow ->
            m :=
              {
                !m with
                hot_paths =
                  { h_file = filep; h_func = func; h_allow; h_reason = reason; h_line = lineno }
                  :: !m.hot_paths;
              })
        | [ "cold_path"; filep; func ] ->
          m :=
            {
              !m with
              cold_paths =
                { f_file = filep; f_func = func; f_reason = reason; f_line = lineno }
                :: !m.cold_paths;
            }
        | [ "identity_sink"; filep; func ] ->
          m :=
            {
              !m with
              identity_sinks =
                { f_file = filep; f_func = func; f_reason = reason; f_line = lineno }
                :: !m.identity_sinks;
            }
        | [ "domain_safe"; filep; ident ] ->
          m := { !m with domain_safe = (filep, ident, reason) :: !m.domain_safe }
        | [ "iface_exempt"; filep ] ->
          m := { !m with iface_exempt = (filep, reason) :: !m.iface_exempt }
        | directive :: _ -> error lineno (Printf.sprintf "unknown manifest directive %S" directive)
        | [] -> error lineno "empty manifest entry")
  in
  List.iteri (fun i line -> parse_line (i + 1) line) (String.split_on_char '\n' text);
  (!m, List.rev !diags)

let load path =
  if not (Sys.file_exists path) then
    ( empty,
      [
        Lint_diagnostic.make ~file:path ~line:1 ~col:0 ~rule:"lint/manifest"
          (Printf.sprintf "manifest %s not found" path);
      ] )
  else
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    parse ~file:path text

let is_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let allowed t ~rule ~path =
  List.exists (fun (r, prefix, _) -> r = rule && is_prefix ~prefix path) t.allows

let hot_path_funcs t ~path = List.filter (fun h -> h.h_file = path) t.hot_paths
let cold_path_funcs t ~path = List.filter_map (fun f -> if f.f_file = path then Some f.f_func else None) t.cold_paths

let domain_safe_idents t ~path =
  List.filter_map (fun (f, id, _) -> if f = path then Some id else None) t.domain_safe

let iface_exempted t ~path = List.exists (fun (f, _) -> f = path) t.iface_exempt
