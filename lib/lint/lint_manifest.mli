(** Checked-in, directory- and symbol-scoped lint policy (`lint.manifest`).

    Every entry carries a mandatory written justification after an
    em-dash (or [--]); entries without one are [lint/manifest] findings. *)

type hot_entry = {
  h_file : string;  (** root-relative path, e.g. [lib/engine/heap.ml] *)
  h_func : string;  (** toplevel function name to allocation-scan *)
  h_allow : string list;  (** construct names exempted for this function *)
  h_reason : string;
  h_line : int;  (** manifest line, where [hot/drift] findings anchor *)
}

(** A [cold_path] (closure stop) or [identity_sink] (taint-protected
    render) entry. *)
type func_entry = { f_file : string; f_func : string; f_reason : string; f_line : int }

type t = {
  allows : (string * string * string) list;  (** rule-id, path prefix, reason *)
  hot_paths : hot_entry list;  (** also the hot-set closure seeds *)
  cold_paths : func_entry list;  (** the closure must not descend into these *)
  identity_sinks : func_entry list;  (** byte-identity-checked renders *)
  domain_safe : (string * string * string) list;  (** file, ident, reason *)
  iface_exempt : (string * string) list;  (** file, reason *)
}

val empty : t

(** Parse manifest text; malformed lines become [lint/manifest] findings
    (the well-formed remainder still applies). *)
val parse : file:string -> string -> t * Lint_diagnostic.t list

(** Load from disk; a missing manifest is a finding. *)
val load : string -> t * Lint_diagnostic.t list

(** Is [rule] suppressed for root-relative [path] by an [allow] prefix? *)
val allowed : t -> rule:string -> path:string -> bool

val hot_path_funcs : t -> path:string -> hot_entry list
val cold_path_funcs : t -> path:string -> string list
val domain_safe_idents : t -> path:string -> string list
val iface_exempted : t -> path:string -> bool

(**/**)

(** Split ["payload — reason"] (em-dash or [--]); [None] when the reason
    is missing or empty.  Shared with {!Lint_waiver}. *)
val split_reason : string -> (string * string) option

(** Whitespace-split, dropping empties. *)
val words : string -> string list
