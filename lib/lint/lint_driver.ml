(* Orchestration: discover sources, run the per-file rule families (fanned
   across domains with Runner.map), build the cross-module call graph,
   run the interprocedural passes, apply inline waivers then manifest
   [allow] prefixes, and render the report.

   The linter holds itself to its own determinism bar: directory walks
   are sorted, findings are sorted, nothing reads clocks or ambient
   randomness, and all filtering/merging happens serially in input order
   after the fan-out — so reports are byte-identical for any --jobs. *)

type report = {
  findings : Lint_diagnostic.t list; (* sorted; already waiver/manifest-filtered *)
  files_scanned : int;
  waivers_used : int;
  rules : string list;
  gstats : Lint_interproc.stats option; (* None for single-source runs *)
}

let clean r = r.findings = []

(* ---------------- file discovery ---------------- *)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let rec walk_ml acc path =
  if is_dir path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else walk_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let discover ~root paths =
  List.concat_map
    (fun p ->
      let abs = if Filename.is_relative p then Filename.concat root p else p in
      List.rev (walk_ml [] abs))
    paths

let relativize ~root path =
  let root = if Filename.check_suffix root "/" then root else root ^ "/" in
  let n = String.length root in
  if String.length path > n && String.sub path 0 n = root then
    String.sub path n (String.length path - n)
  else path

(* ---------------- one file (parallel-safe stage) ---------------- *)

(* Everything a worker computes for one file.  Pure per-file work: rule
   findings are raw (unfiltered), waiver application and the
   interprocedural passes happen serially in the merge phase so waiver
   bookkeeping and report bytes cannot depend on scheduling. *)
type scanned = {
  sc_rel : string;
  sc_waivers : Lint_waiver.t list;
  sc_pre : Lint_diagnostic.t list; (* parse/waiver diags: never filtered *)
  sc_raw : Lint_diagnostic.t list; (* rule findings, pre-filter *)
  sc_facts : Lint_callgraph.file_facts option; (* None when unparseable *)
}

let scan_one ~manifest ~root abs =
  let rel = relativize ~root abs in
  let src = Lint_source.load ~rel ~abs in
  let raw = Lint_rules.check ~manifest src in
  let has_mli = Sys.file_exists (abs ^ "i") in
  let iface = Lint_rules.check_iface ~manifest ~rel ~has_mli in
  {
    sc_rel = rel;
    sc_waivers = src.Lint_source.waivers;
    sc_pre = src.Lint_source.parse_diags @ src.Lint_source.waiver_diags;
    sc_raw = raw @ iface;
    sc_facts = Option.map (fun ast -> Lint_callgraph.scan_file ~rel ast) src.Lint_source.ast;
  }

(* ---------------- waiver/manifest filtering (serial) ---------------- *)

(* Tracks which waivers suppressed something, so stale waivers on the
   interprocedural rule-ids can be reported (an inferred finding that
   disappears after a refactor must not leave its waiver behind). *)
type filter_ctx = {
  manifest : Lint_manifest.t;
  waivers_by_file : (string, Lint_waiver.t list) Hashtbl.t;
  used : (string * int * string, unit) Hashtbl.t; (* file, start line, rule *)
  mutable waivers_used : int;
}

let filter_finding ctx (d : Lint_diagnostic.t) =
  if Lint_rule_ids.is_internal d.Lint_diagnostic.rule then Some d
  else
    let ws = Option.value ~default:[] (Hashtbl.find_opt ctx.waivers_by_file d.Lint_diagnostic.file) in
    match Lint_waiver.covering ws ~rule:d.Lint_diagnostic.rule ~line:d.Lint_diagnostic.line with
    | Some w ->
      Hashtbl.replace ctx.used (d.Lint_diagnostic.file, w.Lint_waiver.w_start_line, w.Lint_waiver.w_rule) ();
      ctx.waivers_used <- ctx.waivers_used + 1;
      None
    | None ->
      if Lint_manifest.allowed ctx.manifest ~rule:d.Lint_diagnostic.rule ~path:d.Lint_diagnostic.file
      then None
      else Some d

let stale_waivers ctx scans =
  List.concat_map
    (fun sc ->
      List.filter_map
        (fun (w : Lint_waiver.t) ->
          if
            List.mem w.Lint_waiver.w_rule Lint_rule_ids.interprocedural
            && not (Hashtbl.mem ctx.used (sc.sc_rel, w.Lint_waiver.w_start_line, w.Lint_waiver.w_rule))
          then
            Some
              (Lint_diagnostic.make ~file:sc.sc_rel ~line:w.Lint_waiver.w_start_line ~col:0
                 ~rule:"lint/bad-waiver"
                 (Printf.sprintf
                    "stale waiver: %s suppresses nothing here (the inferred finding is gone); \
                     delete the waiver"
                    w.Lint_waiver.w_rule))
          else None)
        sc.sc_waivers)
    scans

(* ---------------- entry points ---------------- *)

let default_paths = [ "lib"; "bin"; "bench" ]

let run_full ?(paths = default_paths) ?(jobs = 1) ~root ~manifest_path () =
  let manifest, manifest_diags = Lint_manifest.load manifest_path in
  let files = discover ~root paths in
  let scans = Reflex_experiments.Runner.map ~jobs (scan_one ~manifest ~root) files in
  let ctx =
    {
      manifest;
      waivers_by_file = Hashtbl.create 64;
      used = Hashtbl.create 16;
      waivers_used = 0;
    }
  in
  List.iter (fun sc -> Hashtbl.replace ctx.waivers_by_file sc.sc_rel sc.sc_waivers) scans;
  let per_file =
    List.concat_map (fun sc -> sc.sc_pre @ List.filter_map (filter_finding ctx) sc.sc_raw) scans
  in
  let graph = Lint_callgraph.build (List.filter_map (fun sc -> sc.sc_facts) scans) in
  let inferred, stats, hot = Lint_interproc.run ~manifest ~manifest_path ~graph in
  let inferred = List.filter_map (filter_finding ctx) inferred in
  let stale = stale_waivers ctx scans in
  ( {
      findings =
        List.sort_uniq Lint_diagnostic.compare (manifest_diags @ per_file @ inferred @ stale);
      files_scanned = List.length files;
      waivers_used = ctx.waivers_used;
      rules = Lint_rule_ids.all;
      gstats = Some stats;
    },
    graph,
    hot )

let run ?paths ?jobs ~root ~manifest_path () =
  let r, _, _ = run_full ?paths ?jobs ~root ~manifest_path () in
  r

(* Lint a single file against an already-parsed manifest (fixture tests). *)
let run_on_source ~manifest (src : Lint_source.t) =
  let waivers_used = ref 0 in
  let raw = Lint_rules.check ~manifest src in
  let filtered =
    List.filter
      (fun (d : Lint_diagnostic.t) ->
        if Lint_rule_ids.is_internal d.Lint_diagnostic.rule then true
        else if Lint_waiver.covers src.Lint_source.waivers ~rule:d.Lint_diagnostic.rule ~line:d.Lint_diagnostic.line
        then begin
          incr waivers_used;
          false
        end
        else not (Lint_manifest.allowed manifest ~rule:d.Lint_diagnostic.rule ~path:src.Lint_source.rel))
      raw
  in
  {
    findings =
      List.sort_uniq Lint_diagnostic.compare
        (src.Lint_source.parse_diags @ src.Lint_source.waiver_diags @ filtered);
    files_scanned = 1;
    waivers_used = !waivers_used;
    rules = Lint_rule_ids.all;
    gstats = None;
  }

(* ---------------- rendering ---------------- *)

let to_text r =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Lint_diagnostic.to_string d);
      Buffer.add_char buf '\n')
    r.findings;
  (match r.gstats with
  | None -> ()
  | Some g ->
    Buffer.add_string buf
      (Printf.sprintf
         "callgraph: %d node(s), %d edge(s); hot set %d seed(s) + %d inferred; taint %d \
          source(s) -> %d function(s), %d identity sink(s)\n"
         g.Lint_interproc.gs_nodes g.Lint_interproc.gs_edges g.Lint_interproc.gs_hot_seeds
         g.Lint_interproc.gs_hot_inferred g.Lint_interproc.gs_taint_sources
         g.Lint_interproc.gs_taint_tainted g.Lint_interproc.gs_identity_sinks));
  Buffer.add_string buf
    (Printf.sprintf "reflex-lint: %d file(s), %d rule(s), %d finding(s), %d waiver(s) applied\n"
       r.files_scanned (List.length r.rules) (List.length r.findings) r.waivers_used);
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" r.files_scanned);
  Buffer.add_string buf (Printf.sprintf "  \"rule_count\": %d,\n" (List.length r.rules));
  Buffer.add_string buf
    (Printf.sprintf "  \"rules\": [%s],\n"
       (String.concat ", " (List.map (fun s -> "\"" ^ Lint_diagnostic.json_escape s ^ "\"") r.rules)));
  Buffer.add_string buf (Printf.sprintf "  \"waivers_used\": %d,\n" r.waivers_used);
  (match r.gstats with
  | None -> ()
  | Some g ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"callgraph\": {\"nodes\": %d, \"edges\": %d, \"hot_seeds\": %d, \"hot_inferred\": \
          %d, \"taint_sources\": %d, \"taint_tainted\": %d, \"identity_sinks\": %d},\n"
         g.Lint_interproc.gs_nodes g.Lint_interproc.gs_edges g.Lint_interproc.gs_hot_seeds
         g.Lint_interproc.gs_hot_inferred g.Lint_interproc.gs_taint_sources
         g.Lint_interproc.gs_taint_tainted g.Lint_interproc.gs_identity_sinks));
  Buffer.add_string buf (Printf.sprintf "  \"finding_count\": %d,\n" (List.length r.findings));
  Buffer.add_string buf
    (Printf.sprintf "  \"findings\": [%s]\n"
       (String.concat ", " (List.map Lint_diagnostic.to_json r.findings)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
