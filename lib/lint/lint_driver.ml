(* Orchestration: discover sources, run the rule families, apply inline
   waivers then manifest [allow] prefixes, and render the report.

   The linter holds itself to its own determinism bar: directory walks
   are sorted, findings are sorted, and nothing reads clocks or ambient
   randomness. *)

type report = {
  findings : Lint_diagnostic.t list; (* sorted; already waiver/manifest-filtered *)
  files_scanned : int;
  waivers_used : int;
  rules : string list;
}

let clean r = r.findings = []

(* ---------------- file discovery ---------------- *)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let rec walk_ml acc path =
  if is_dir path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else walk_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let discover ~root paths =
  List.concat_map
    (fun p ->
      let abs = if Filename.is_relative p then Filename.concat root p else p in
      List.rev (walk_ml [] abs))
    paths

let relativize ~root path =
  let root = if Filename.check_suffix root "/" then root else root ^ "/" in
  let n = String.length root in
  if String.length path > n && String.sub path 0 n = root then
    String.sub path n (String.length path - n)
  else path

(* ---------------- one file ---------------- *)

let lint_file ~manifest ~waivers_used ~rel ~abs =
  let src = Lint_source.load ~rel ~abs in
  let raw = Lint_rules.check ~manifest src in
  let has_mli = Sys.file_exists (abs ^ "i") in
  let iface = Lint_rules.check_iface ~manifest ~rel ~has_mli in
  (* Inline waivers first (per-site), then manifest allow prefixes
     (directory policy).  Internal lint/* findings are never waivable. *)
  let filtered =
    List.filter
      (fun (d : Lint_diagnostic.t) ->
        if Lint_rule_ids.is_internal d.Lint_diagnostic.rule then true
        else if Lint_waiver.covers src.Lint_source.waivers ~rule:d.Lint_diagnostic.rule ~line:d.Lint_diagnostic.line
        then begin
          incr waivers_used;
          false
        end
        else not (Lint_manifest.allowed manifest ~rule:d.Lint_diagnostic.rule ~path:rel))
      (raw @ iface)
  in
  src.Lint_source.parse_diags @ src.Lint_source.waiver_diags @ filtered

(* ---------------- entry points ---------------- *)

let default_paths = [ "lib"; "bin"; "bench" ]

let run ?(paths = default_paths) ~root ~manifest_path () =
  let manifest, manifest_diags = Lint_manifest.load manifest_path in
  let files = discover ~root paths in
  let waivers_used = ref 0 in
  let findings =
    List.concat_map
      (fun abs -> lint_file ~manifest ~waivers_used ~rel:(relativize ~root abs) ~abs)
      files
  in
  {
    findings = List.sort_uniq Lint_diagnostic.compare (manifest_diags @ findings);
    files_scanned = List.length files;
    waivers_used = !waivers_used;
    rules = Lint_rule_ids.all;
  }

(* Lint a single file against an already-parsed manifest (fixture tests). *)
let run_on_source ~manifest (src : Lint_source.t) =
  let waivers_used = ref 0 in
  let raw = Lint_rules.check ~manifest src in
  let filtered =
    List.filter
      (fun (d : Lint_diagnostic.t) ->
        if Lint_rule_ids.is_internal d.Lint_diagnostic.rule then true
        else if Lint_waiver.covers src.Lint_source.waivers ~rule:d.Lint_diagnostic.rule ~line:d.Lint_diagnostic.line
        then begin
          incr waivers_used;
          false
        end
        else not (Lint_manifest.allowed manifest ~rule:d.Lint_diagnostic.rule ~path:src.Lint_source.rel))
      raw
  in
  {
    findings =
      List.sort_uniq Lint_diagnostic.compare
        (src.Lint_source.parse_diags @ src.Lint_source.waiver_diags @ filtered);
    files_scanned = 1;
    waivers_used = !waivers_used;
    rules = Lint_rule_ids.all;
  }

(* ---------------- rendering ---------------- *)

let to_text r =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Lint_diagnostic.to_string d);
      Buffer.add_char buf '\n')
    r.findings;
  Buffer.add_string buf
    (Printf.sprintf "reflex-lint: %d file(s), %d rule(s), %d finding(s), %d waiver(s) applied\n"
       r.files_scanned (List.length r.rules) (List.length r.findings) r.waivers_used);
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" r.files_scanned);
  Buffer.add_string buf (Printf.sprintf "  \"rule_count\": %d,\n" (List.length r.rules));
  Buffer.add_string buf
    (Printf.sprintf "  \"rules\": [%s],\n"
       (String.concat ", " (List.map (fun s -> "\"" ^ Lint_diagnostic.json_escape s ^ "\"") r.rules)));
  Buffer.add_string buf (Printf.sprintf "  \"waivers_used\": %d,\n" r.waivers_used);
  Buffer.add_string buf (Printf.sprintf "  \"finding_count\": %d,\n" (List.length r.findings));
  Buffer.add_string buf
    (Printf.sprintf "  \"findings\": [%s]\n"
       (String.concat ", " (List.map Lint_diagnostic.to_json r.findings)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
