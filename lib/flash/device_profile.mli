(** Parameters describing one NVMe Flash device.

    Profiles {!device_a}, {!device_b} and {!device_c} correspond to the
    three devices of the paper's Figure 3.  Each is calibrated to the
    operating points reported there:

    - device A: ~1M read-only IOPS, write cost 10 tokens,
      C(read, r=100%) = 1/2 token, ~420K tokens/s at a 500us p95 SLO
    - device B: write cost 20 tokens, ~300K tokens/s saturation
    - device C: write cost 16 tokens, ~600K tokens/s saturation *)

open Reflex_engine

type t = {
  name : string;
  n_dies : int;  (** independent service units (channels x dies) *)
  t_read : Time.t;
      (** die occupancy of a 4KB read when the device sees a mixed
          (read+write) load; this is also the duration of "one token". *)
  ro_speedup : float;
      (** throughput factor for pure-read loads: occupancy becomes
          [t_read / ro_speedup].  2.0 for device A means
          C(read, 100%) = 1/2 token. *)
  read_pipeline : Time.t;
      (** fixed per-read latency outside die service (controller, DMA). *)
  t_write_ack : Time.t;  (** median DRAM-buffer write acknowledgement time. *)
  write_cost : float;
      (** backend die work per 4KB write, in tokens (multiples of
          [t_read]); 10/20/16 for devices A/B/C. *)
  erase_every : int;
      (** one garbage-collection erase burst per this many programs. *)
  erase_frac : float;
      (** fraction of write backend work spent in erase bursts (they are
          rare but long — the source of tail-latency blowup). *)
  service_sigma : float;  (** lognormal service-time noise. *)
  write_ack_sigma : float;  (** lognormal noise on the write acknowledgement. *)
  write_buffer_slots : int;  (** DRAM write-buffer entries (4KB each). *)
  ro_window : Time.t;
      (** a read arriving more than this after the last write sees the
          read-only fast path. *)
  sq_depth : int;  (** NVMe submission-queue depth per queue pair. *)
  wear : float;
      (** age multiplier on all die service times: 1.0 when new; grows as
          program/erase cycles accumulate.  The paper notes the cost model
          can be re-calibrated after deployment to account for wear
          (§3.2.1) — see {!with_wear} and {!Calibrate.fit_cost_model}. *)
}

(** The same device later in life: service times scaled by [wear]. *)
val with_wear : t -> wear:float -> t

val device_a : t
val device_b : t
val device_c : t

val by_name : string -> t option

(** All bundled profiles. *)
val all : t list

(** Peak 4KB read IOPS under a pure-read load (dies / read-only occupancy),
    ignoring queueing: the device's nominal ceiling. *)
val read_only_iops : t -> float

(** Peak weighted tokens/sec under mixed load (dies / t_read). *)
val token_capacity : t -> float

(** Onset of the hockey-stick region of the latency-vs-throughput curve
    (Figures 1/3): beyond [frac] (default 0.8) of {!token_capacity},
    queueing dominates die service and p95 latency takes off.  The
    monitoring layer's load-knee detector flags tenants whose operating
    point (windowed weighted token rate, windowed p95) crosses this
    knee. *)
val knee_token_rate : ?frac:float -> t -> float

val pp : Format.formatter -> t -> unit
