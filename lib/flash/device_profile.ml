open Reflex_engine

type t = {
  name : string;
  n_dies : int;
  t_read : Time.t;
  ro_speedup : float;
  read_pipeline : Time.t;
  t_write_ack : Time.t;
  write_cost : float;
  erase_every : int;
  erase_frac : float;
  service_sigma : float;
  write_ack_sigma : float;
  write_buffer_slots : int;
  ro_window : Time.t;
  sq_depth : int;
  wear : float;
}

let with_wear p ~wear =
  if wear < 1.0 then invalid_arg "Device_profile.with_wear: wear < 1.0";
  { p with wear }

(* Device A is the paper's headline device (Figures 1, 3a): 1M read-only
   IOPS, 78us unloaded read, 11us buffered write, write cost 10 tokens.
   44 dies x 80us mixed-read occupancy = 550K tokens/s; the read-only
   fast path halves occupancy (C(read,100%) = 1/2), giving 1.1M IOPS. *)
let device_a =
  {
    name = "A";
    n_dies = 44;
    t_read = Time.us 80;
    ro_speedup = 2.0;
    read_pipeline = Time.us 38;
    t_write_ack = Time.of_float_us 10.5;
    write_cost = 10.0;
    erase_every = 32;
    erase_frac = 0.2;
    service_sigma = 0.16;
    write_ack_sigma = 0.29;
    write_buffer_slots = 512;
    ro_window = Time.ms 1;
    sq_depth = 1024;
    wear = 1.0;
  }

(* Device B (Figure 3b): older/smaller device — ~300K tokens/s, writes cost
   20 tokens, and no read-only discount. *)
let device_b =
  {
    name = "B";
    n_dies = 26;
    t_read = Time.us 85;
    ro_speedup = 1.0;
    read_pipeline = Time.us 45;
    t_write_ack = Time.of_float_us 14.0;
    write_cost = 20.0;
    erase_every = 24;
    erase_frac = 0.25;
    service_sigma = 0.20;
    write_ack_sigma = 0.32;
    write_buffer_slots = 256;
    ro_window = Time.ms 1;
    sq_depth = 1024;
    wear = 1.0;
  }

(* Device C (Figure 3c): ~600K tokens/s, writes cost 16 tokens, modest
   read-only discount. *)
let device_c =
  {
    name = "C";
    n_dies = 50;
    t_read = Time.us 82;
    ro_speedup = 1.25;
    read_pipeline = Time.us 40;
    t_write_ack = Time.of_float_us 12.0;
    write_cost = 16.0;
    erase_every = 28;
    erase_frac = 0.22;
    service_sigma = 0.18;
    write_ack_sigma = 0.30;
    write_buffer_slots = 384;
    ro_window = Time.ms 1;
    sq_depth = 1024;
    wear = 1.0;
  }

let all = [ device_a; device_b; device_c ]

let by_name n =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii n) all

let read_only_iops p =
  float_of_int p.n_dies /. (Time.to_float_sec p.t_read /. p.ro_speedup)

let token_capacity p = float_of_int p.n_dies /. Time.to_float_sec p.t_read

(* Hockey-stick onset (Figures 1/3): beyond this weighted token rate,
   die queueing dominates service time and tail latency takes off.  The
   0.8 default matches where the calibrated curves leave their flat
   region (device A: ~340K of ~425K tokens/s). *)
let knee_token_rate ?(frac = 0.8) p =
  if frac <= 0.0 || frac > 1.0 then invalid_arg "Device_profile.knee_token_rate: frac";
  frac *. token_capacity p

let pp fmt p =
  Format.fprintf fmt
    "device %s: %d dies, t_read=%a, write_cost=%.0f tokens, %.0fK RO IOPS, %.0fK tokens/s" p.name
    p.n_dies Time.pp p.t_read p.write_cost
    (read_only_iops p /. 1e3)
    (token_capacity p /. 1e3)
