(** Simulated NVMe Flash device.

    The model that gives rise to the paper's Figure 1 behaviour:

    - [n_dies] parallel service units behind a shared dispatch queue;
    - reads occupy a die at {e high} priority ([t_read] per 4KB, halved
      under a pure-read load — the C(read, 100%) discount);
    - writes acknowledge quickly from a DRAM buffer but enqueue
      [write_cost x t_read] of {e low}-priority backend work (program +
      wear leveling), plus periodic long erase bursts;
    - service is non-preemptive, so reads queue behind in-flight programs
      and erases — that is read/write interference, and it is why tail
      read latency depends on both total load and read/write ratio. *)

open Reflex_engine

type t

(** [telemetry] (default disabled) registers [flash/...] gauges
    (write-buffer occupancy, completions, die utilization) and records
    per-op service latency into the [flash/read_ns] / [flash/write_ns]
    histograms; when disabled the completion path pays one boolean test. *)
val create :
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  Sim.t ->
  profile:Device_profile.t ->
  prng:Prng.t ->
  t

val profile : t -> Device_profile.t

(** [submit t ~kind ~bytes cb] issues an I/O; [cb ~latency] fires at
    completion (for writes: at DRAM-buffer acknowledgement). *)
val submit : t -> kind:Io_op.kind -> bytes:int -> (latency:Time.t -> unit) -> unit

(** True when a read arriving now would see the pure-read fast path. *)
val read_only_mode : t -> bool

(** Completed reads / writes since creation. *)
val reads_completed : t -> int

val writes_completed : t -> int

(** Write-buffer occupancy (for observability and tests). *)
val write_buffer_used : t -> int

(** Die-busy fraction since creation. *)
val utilization : t -> float

(** {1 Fault injection}

    Hooks driven by [Reflex_faults.Injector].  The device carries a
    single [faulty] guard: until one of these mutators arms it, the
    request hot path is byte-identical (including PRNG draw order) to a
    device without fault support, so fault-free runs reproduce pre-fault
    results exactly. *)

(** Number of dies (targets for [fail_die] / [set_die_slowdown]). *)
val die_count : t -> int

(** Mark a die failed: it is excluded from routing (requests remap to the
    next healthy die, as a controller remapping to spare blocks would).
    Idempotent. @raise Invalid_argument if [die] is out of range. *)
val fail_die : t -> die:int -> unit

(** Undo [fail_die].  Idempotent. *)
val restore_die : t -> die:int -> unit

(** Multiply every service on [die] by [factor] (wear-out, thermal
    throttling, firmware pauses).  [factor = 1.0] restores normal speed.
    @raise Invalid_argument if [factor < 1.0]. *)
val set_die_slowdown : t -> die:int -> factor:float -> unit

(** Reset all per-die slowdowns to 1.0. *)
val clear_die_slowdowns : t -> unit

(** [gc_storm t ~duration ~bursts_per_die] queues [bursts_per_die] extra
    low-priority erase bursts on every healthy die, evenly spaced over
    [duration] starting now.  Draws nothing from the device PRNG. *)
val gc_storm : t -> duration:Time.t -> bursts_per_die:int -> unit

(** Currently-failed die count. *)
val failed_dies : t -> int

(** Usable fraction of nominal capacity under current die health (failed
    dies contribute 0, slowed dies 1/slowdown); 1.0 when healthy.  The
    control plane's degradation re-pricing consumes this. *)
val effective_capacity : t -> float

(** Total injected GC-storm erase bursts (observability). *)
val gc_storm_bursts : t -> int
