(** Simulated NVMe Flash device.

    The model that gives rise to the paper's Figure 1 behaviour:

    - [n_dies] parallel service units behind a shared dispatch queue;
    - reads occupy a die at {e high} priority ([t_read] per 4KB, halved
      under a pure-read load — the C(read, 100%) discount);
    - writes acknowledge quickly from a DRAM buffer but enqueue
      [write_cost x t_read] of {e low}-priority backend work (program +
      wear leveling), plus periodic long erase bursts;
    - service is non-preemptive, so reads queue behind in-flight programs
      and erases — that is read/write interference, and it is why tail
      read latency depends on both total load and read/write ratio. *)

open Reflex_engine

type t

(** [telemetry] (default disabled) registers [flash/...] gauges
    (write-buffer occupancy, completions, die utilization) and records
    per-op service latency into the [flash/read_ns] / [flash/write_ns]
    histograms; when disabled the completion path pays one boolean test. *)
val create :
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  Sim.t ->
  profile:Device_profile.t ->
  prng:Prng.t ->
  t

val profile : t -> Device_profile.t

(** [submit t ~kind ~bytes cb] issues an I/O; [cb ~latency] fires at
    completion (for writes: at DRAM-buffer acknowledgement). *)
val submit : t -> kind:Io_op.kind -> bytes:int -> (latency:Time.t -> unit) -> unit

(** True when a read arriving now would see the pure-read fast path. *)
val read_only_mode : t -> bool

(** Completed reads / writes since creation. *)
val reads_completed : t -> int

val writes_completed : t -> int

(** Write-buffer occupancy (for observability and tests). *)
val write_buffer_used : t -> int

(** Die-busy fraction since creation. *)
val utilization : t -> float
