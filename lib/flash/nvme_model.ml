open Reflex_engine
open Reflex_telemetry

(* Each die is an independent single-server queue; requests are routed to
   the less-loaded of two randomly chosen dies ("power of two choices",
   approximating the striping + limited-queue parallelism of a real SSD).
   Reads are high priority but service is non-preemptive, so a read routed
   to a die mid-program or mid-erase waits — the physical root of the
   read/write interference in the paper's Figure 1. *)

type t = {
  sim : Sim.t;
  p : Device_profile.t;
  prng : Prng.t;
  dies : Resource.t array;
  die_work : Time.t array; (* outstanding service time per die *)
  die_programs : int array; (* programs since last erase, per die *)
  mutable last_write : Time.t option;
  mutable wbuf_used : int;
  wbuf_waiters : (unit -> unit) Queue.t;
  mutable reads_done : int;
  mutable writes_done : int;
  (* ---- fault-injection state (lib/faults) ----
     [faulty] is the single guard the routing/service hot path reads:
     false (the default) means all arrays below are identity and the
     pre-fault code path runs unchanged — including identical PRNG draw
     order, which is what keeps fault-free chaos builds byte-identical
     to plain builds. *)
  mutable faulty : bool;
  die_ok : bool array; (* false: die failed, excluded from routing *)
  die_slowdown : float array; (* >=1.0 service multiplier per die *)
  mutable failed_dies : int;
  mutable gc_storm_bursts : int; (* injected erase bursts, observability *)
  (* Observability: [tel_on] is a copy of the telemetry instance's
     immutable enabled bit; the completion-path histogram records are
     skipped on that single test when telemetry is off. *)
  tel_on : bool;
  h_read : Reflex_stats.Hdr_histogram.t; (* flash/read_ns *)
  h_write : Reflex_stats.Hdr_histogram.t; (* flash/write_ns *)
  (* Cost profiler (lib/obs), cached off the telemetry instance; scopes
     the submission path under the Flash bucket.  Disabled by default. *)
  prof : Reflex_obs.Profiler.t;
}

let create ?(telemetry = Telemetry.disabled) sim ~profile ~prng =
  let n = profile.Device_profile.n_dies in
  let t =
    {
      sim;
      p = profile;
      prng;
      dies = Array.init n (fun _ -> Resource.create sim ~servers:1);
      die_work = Array.make n Time.zero;
      die_programs = Array.make n 0;
      last_write = None;
      wbuf_used = 0;
      wbuf_waiters = Queue.create ();
      reads_done = 0;
      writes_done = 0;
      faulty = false;
      die_ok = Array.make n true;
      die_slowdown = Array.make n 1.0;
      failed_dies = 0;
      gc_storm_bursts = 0;
      tel_on = Telemetry.enabled telemetry;
      h_read = Telemetry.histogram telemetry "flash/read_ns";
      h_write = Telemetry.histogram telemetry "flash/write_ns";
      prof = Telemetry.profiler telemetry;
    }
  in
  if t.tel_on then begin
    Telemetry.register_gauge telemetry "flash/wbuf_used" (fun () -> float_of_int t.wbuf_used);
    Telemetry.register_gauge telemetry "flash/wbuf_waiters" (fun () ->
        float_of_int (Queue.length t.wbuf_waiters));
    Telemetry.register_gauge telemetry "flash/reads_done" (fun () -> float_of_int t.reads_done);
    Telemetry.register_gauge telemetry "flash/writes_done" (fun () ->
        float_of_int t.writes_done);
    Telemetry.register_gauge telemetry "flash/util" (fun () ->
        Array.fold_left (fun acc d -> acc +. Resource.utilization d) 0.0 t.dies
        /. float_of_int (Array.length t.dies))
  end;
  t

let profile t = t.p

let read_only_mode t =
  match t.last_write with
  | None -> true
  | Some w -> Time.(Time.diff (Sim.now t.sim) w > t.p.ro_window)

(* Wear lengthens every die operation: programs and erases take longer on
   aged cells, and reads pay more error-correction retries. *)
let noisy t ~sigma base =
  Time.scale base (t.p.wear *. Prng.lognormal t.prng ~median:1.0 ~sigma)

(* Remap a die index to the next healthy die (wrapping).  Only reached
   when at least one die has failed; if somehow every die is down, the
   original index is kept (the device keeps limping rather than
   deadlocking — the controller would remap to spare blocks). *)
let healthy_die t i =
  if t.failed_dies = 0 then i
  else begin
    let n = Array.length t.dies in
    let k = ref i and steps = ref 0 in
    while (not t.die_ok.(!k)) && !steps < n do
      k := (!k + 1) mod n;
      incr steps
    done;
    !k
  end

(* Least-outstanding-work of two random choices.  The PRNG draws happen
   unconditionally (same order as the fault-free path); the remap to
   healthy dies only runs once a die has actually failed. *)
let pick_die t =
  let n = Array.length t.dies in
  let i = Prng.int t.prng n in
  let j = Prng.int t.prng n in
  (* no tuple: this runs once per read dispatch *)
  let i = if t.faulty then healthy_die t i else i in
  let j = if t.faulty then healthy_die t j else j in
  if Time.(t.die_work.(i) <= t.die_work.(j)) then i else j

let run_on_die t ~die ~priority ~service k =
  (* Die slowdown (wear-out, thermal throttling, firmware pauses): a
     per-die service multiplier, identity unless a fault armed it. *)
  let service =
    if t.faulty && t.die_slowdown.(die) <> 1.0 then Time.scale service t.die_slowdown.(die)
    else service
  in
  t.die_work.(die) <- Time.add t.die_work.(die) service;
  Resource.submit t.dies.(die) ~priority ~service (fun ~started ~finished ->
      t.die_work.(die) <- Time.sub t.die_work.(die) service;
      k ~started ~finished)

let submit_read t ~bytes cb =
  let sectors = Io_op.sectors_of_bytes bytes in
  let base = Time.scale t.p.t_read (float_of_int sectors) in
  let occupancy = if read_only_mode t then Time.scale base (1.0 /. t.p.ro_speedup) else base in
  let service = noisy t ~sigma:t.p.service_sigma occupancy in
  let submit_time = Sim.now t.sim in
  let die = pick_die t in
  run_on_die t ~die ~priority:Resource.High ~service (fun ~started:_ ~finished:_ ->
      ignore
        (Sim.after t.sim t.p.read_pipeline (fun () ->
             t.reads_done <- t.reads_done + 1;
             let latency = Time.diff (Sim.now t.sim) submit_time in
             if t.tel_on then Reflex_stats.Hdr_histogram.record t.h_read latency;
             cb ~latency)))

(* Backend work for one write: program jobs plus an erase burst every
   [erase_every] programs on a die.  All low priority: reads dispatch
   first, but cannot preempt a job once started.  The program work is
   split into ~2-token chunks spread over the dies (real controllers
   interleave page programs across planes); the blocking unit seen by a
   read is therefore a chunk or an erase, not one monolithic program. *)
let chunk_tokens = 2.0

let submit_backend t ~sectors =
  let p = t.p in
  let total_tokens = p.write_cost *. float_of_int sectors *. (1.0 -. p.erase_frac) in
  let n_chunks = max 1 (int_of_float (Float.round (total_tokens /. chunk_tokens))) in
  let chunk = Time.scale p.t_read (total_tokens /. float_of_int n_chunks) in
  let remaining = ref n_chunks in
  for _ = 1 to n_chunks do
    let die = pick_die t in
    run_on_die t ~die ~priority:Resource.Low ~service:(noisy t ~sigma:p.service_sigma chunk)
      (fun ~started:_ ~finished:_ ->
        decr remaining;
        if !remaining = 0 then begin
          (* The DRAM buffer slot frees once the data is programmed. *)
          t.wbuf_used <- t.wbuf_used - 1;
          match Queue.take_opt t.wbuf_waiters with Some k -> k () | None -> ()
        end;
        t.die_programs.(die) <- t.die_programs.(die) + 1;
        if t.die_programs.(die) >= p.erase_every then begin
          t.die_programs.(die) <- 0;
          let erase =
            Time.scale p.t_read (p.erase_frac *. float_of_int p.erase_every *. chunk_tokens)
          in
          run_on_die t ~die ~priority:Resource.Low
            ~service:(noisy t ~sigma:p.service_sigma erase) (fun ~started:_ ~finished:_ -> ())
        end)
  done

let submit_write t ~bytes cb =
  let sectors = Io_op.sectors_of_bytes bytes in
  t.last_write <- Some (Sim.now t.sim);
  let submit_time = Sim.now t.sim in
  let run_with_slot () =
    t.wbuf_used <- t.wbuf_used + 1;
    submit_backend t ~sectors;
    let ack = noisy t ~sigma:t.p.write_ack_sigma t.p.t_write_ack in
    ignore
      (Sim.after t.sim ack (fun () ->
           t.writes_done <- t.writes_done + 1;
           let latency = Time.diff (Sim.now t.sim) submit_time in
           if t.tel_on then Reflex_stats.Hdr_histogram.record t.h_write latency;
           cb ~latency))
  in
  if t.wbuf_used < t.p.write_buffer_slots then run_with_slot ()
  else Queue.add run_with_slot t.wbuf_waiters

let submit t ~kind ~bytes cb =
  if bytes <= 0 then invalid_arg "Nvme_model.submit: non-positive size";
  Reflex_obs.Profiler.enter t.prof Reflex_obs.Profiler.Subsystem.Flash;
  (match (kind : Io_op.kind) with
  | Read -> submit_read t ~bytes cb
  | Write -> submit_write t ~bytes cb);
  Reflex_obs.Profiler.leave t.prof Reflex_obs.Profiler.Subsystem.Flash

let reads_completed t = t.reads_done
let writes_completed t = t.writes_done
let write_buffer_used t = t.wbuf_used

(* ---- Fault-injection API (driven by Reflex_faults.Injector) ---------- *)

let die_count t = Array.length t.dies

let check_die t die =
  if die < 0 || die >= Array.length t.dies then
    invalid_arg (Printf.sprintf "Nvme_model: die %d out of range" die)

let fail_die t ~die =
  check_die t die;
  if t.die_ok.(die) then begin
    t.die_ok.(die) <- false;
    t.failed_dies <- t.failed_dies + 1;
    t.faulty <- true
  end

let restore_die t ~die =
  check_die t die;
  if not t.die_ok.(die) then begin
    t.die_ok.(die) <- true;
    t.failed_dies <- t.failed_dies - 1
  end

let set_die_slowdown t ~die ~factor =
  check_die t die;
  if factor < 1.0 then invalid_arg "Nvme_model.set_die_slowdown: factor < 1.0";
  t.die_slowdown.(die) <- factor;
  if factor <> 1.0 then t.faulty <- true

let clear_die_slowdowns t = Array.fill t.die_slowdown 0 (Array.length t.die_slowdown) 1.0

(* A GC storm queues [bursts_per_die] extra low-priority erase jobs on
   every die, spread evenly over [duration].  The erase service time is
   the exact (noise-free) per-cycle erase cost from the profile, so the
   storm itself draws nothing from the device PRNG — the fault-free
   request stream sees the same random sequence it would have seen, just
   behind more queued erase work (the intended interference). *)
let gc_storm t ~duration ~bursts_per_die =
  if bursts_per_die <= 0 then invalid_arg "Nvme_model.gc_storm: bursts_per_die <= 0";
  let p = t.p in
  let erase = Time.scale p.t_read (p.erase_frac *. float_of_int p.erase_every *. chunk_tokens) in
  let n = Array.length t.dies in
  let gap = Time.scale duration (1.0 /. float_of_int bursts_per_die) in
  for b = 0 to bursts_per_die - 1 do
    let fire = Time.add (Sim.now t.sim) (Time.scale gap (float_of_int b)) in
    ignore
      (Sim.at t.sim fire (fun () ->
           for die = 0 to n - 1 do
             if t.die_ok.(die) then begin
               t.gc_storm_bursts <- t.gc_storm_bursts + 1;
               run_on_die t ~die ~priority:Resource.Low ~service:erase
                 (fun ~started:_ ~finished:_ -> ())
             end
           done))
  done

let failed_dies t = t.failed_dies
let gc_storm_bursts t = t.gc_storm_bursts

(* Usable fraction of nominal service capacity under the current die
   health: a failed die contributes nothing, a slowed die contributes
   1/slowdown of its share.  1.0 when healthy — the control plane's
   degradation re-pricing multiplies its calibrated token rate by this. *)
let effective_capacity t =
  let n = Array.length t.dies in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    if t.die_ok.(i) then sum := !sum +. (1.0 /. t.die_slowdown.(i))
  done;
  !sum /. float_of_int n

let utilization t =
  let n = Array.length t.dies in
  let sum = Array.fold_left (fun acc d -> acc +. Resource.utilization d) 0.0 t.dies in
  sum /. float_of_int n
