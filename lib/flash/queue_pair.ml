type completion = { cookie : int; kind : Io_op.kind; latency : Reflex_engine.Time.t }

(* The completion queue is a structure-of-arrays ring, not a [Queue.t]
   of records: the interrupt path writes three array slots and bumps the
   tail, so completion delivery allocates nothing in steady state.  The
   ring starts at [sq_depth] (one CQ entry per inflight command) and
   doubles in the cold [cq_grow] helper if reaping ever lags submission
   by more than a full ring. *)
type t = {
  dev : Nvme_model.t;
  mutable cq_cookie : int array;
  mutable cq_kind : Io_op.kind array;
  mutable cq_lat : Reflex_engine.Time.t array;
  mutable cq_mask : int;
  mutable cq_head : int;
  mutable cq_len : int;
  mutable inflight : int;
  mutable completion_hook : unit -> unit;
}

let create dev =
  let depth = (Nvme_model.profile dev).Device_profile.sq_depth in
  let size = ref 16 in
  while !size < depth do size := !size * 2 done;
  {
    dev;
    cq_cookie = Array.make !size 0;
    cq_kind = Array.make !size Io_op.Read;
    cq_lat = Array.make !size Reflex_engine.Time.zero;
    cq_mask = !size - 1;
    cq_head = 0;
    cq_len = 0;
    inflight = 0;
    completion_hook = (fun () -> ());
  }

let set_completion_hook t f = t.completion_hook <- f

(* Cold: only when unreaped completions fill the ring. *)
let cq_grow t =
  let old = t.cq_mask + 1 in
  let size = old * 2 in
  let cookie = Array.make size 0 in
  let kind = Array.make size Io_op.Read in
  let lat = Array.make size Reflex_engine.Time.zero in
  for k = 0 to t.cq_len - 1 do
    let i = (t.cq_head + k) land t.cq_mask in
    cookie.(k) <- t.cq_cookie.(i);
    kind.(k) <- t.cq_kind.(i);
    lat.(k) <- t.cq_lat.(i)
  done;
  t.cq_cookie <- cookie;
  t.cq_kind <- kind;
  t.cq_lat <- lat;
  t.cq_mask <- size - 1;
  t.cq_head <- 0

let submit t ~kind ~bytes ~cookie =
  let depth = (Nvme_model.profile t.dev).Device_profile.sq_depth in
  if t.inflight >= depth then `Full
  else begin
    t.inflight <- t.inflight + 1;
    Nvme_model.submit t.dev ~kind ~bytes (fun ~latency ->
        t.inflight <- t.inflight - 1;
        if t.cq_len > t.cq_mask then cq_grow t;
        let i = (t.cq_head + t.cq_len) land t.cq_mask in
        t.cq_cookie.(i) <- cookie;
        t.cq_kind.(i) <- kind;
        t.cq_lat.(i) <- latency;
        t.cq_len <- t.cq_len + 1;
        t.completion_hook ());
    `Ok
  end

let drain t ~max ~f =
  let n = if max < t.cq_len then max else t.cq_len in
  for _ = 1 to n do
    let i = t.cq_head in
    t.cq_head <- (i + 1) land t.cq_mask;
    t.cq_len <- t.cq_len - 1;
    f ~cookie:t.cq_cookie.(i) ~kind:t.cq_kind.(i) ~latency:t.cq_lat.(i)
  done;
  n

let poll t ~max =
  let acc = ref [] in
  ignore
    (drain t ~max ~f:(fun ~cookie ~kind ~latency -> acc := { cookie; kind; latency } :: !acc));
  List.rev !acc

let inflight t = t.inflight
let completions_pending t = t.cq_len
