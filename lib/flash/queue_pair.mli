(** An NVMe submission/completion queue pair.

    Each ReFlex dataplane thread owns one queue pair with direct access
    (paper §3.1).  Submissions are bounded by the profile's [sq_depth];
    completions accumulate in the completion queue until polled, matching
    the polling execution model. *)

open Reflex_engine

type t

type completion = { cookie : int; kind : Io_op.kind; latency : Time.t }

val create : Nvme_model.t -> t

(** [submit t ~kind ~bytes ~cookie] returns [`Full] when the submission
    queue is at depth (the caller must retry later), [`Ok] otherwise. *)
val submit : t -> kind:Io_op.kind -> bytes:int -> cookie:int -> [ `Ok | `Full ]

(** [drain t ~max ~f] removes up to [max] completions oldest-first,
    applying [f] to each in place; returns the number drained.  The
    zero-allocation reap path: the dataplane's per-cycle loop (paper
    §3.2's polling step) uses this, never {!poll}. *)
val drain :
  t -> max:int -> f:(cookie:int -> kind:Io_op.kind -> latency:Time.t -> unit) -> int

(** [poll t ~max] removes and returns up to [max] completions, oldest
    first.  Allocates the returned list — a convenience for tests and
    tooling; hot callers use {!drain}. *)
val poll : t -> max:int -> completion list

(** Commands submitted but not yet reaped. *)
val inflight : t -> int

(** Completions waiting to be polled. *)
val completions_pending : t -> int

(** [set_completion_hook t f] — [f] runs whenever a completion lands in
    the completion queue.  A polling dataplane thread uses this as its
    "next poll iteration notices the CQ entry" signal. *)
val set_completion_hook : t -> (unit -> unit) -> unit
