(** The QoS scheduling algorithm — a faithful port of the paper's
    Algorithm 1.

    Each dataplane thread owns one scheduler instance over its tenants.
    Per round: LC tenants receive tokens from their SLO rate and submit
    queued requests, allowed to burst into deficit down to NEG_LIMIT
    (default -50 tokens); balances above POS_LIMIT (the grant of the last
    three rounds) donate 90% to the shared {!Global_bucket}.  BE tenants
    then receive a fair share of unallocated throughput in round-robin
    order, may claim from the global bucket, submit only requests they can
    fully pay for, and may not hold tokens while idle (Deficit Round Robin
    inspired).  Finally the thread marks its round on the global bucket,
    whose periodic reset bounds BE bursts. *)

type 'a t

(** A request released by the scheduler for submission to the device. *)
type 'a submission = { tenant_id : int; cost : float; payload : 'a }

val create :
  ?neg_limit:float ->
  (* default -50 tokens *)
  ?donate_fraction:float ->
  (* default 0.9 *)
  global:Global_bucket.t ->
  thread_id:int ->
  ?notify_control_plane:(int -> unit) ->
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  (* default [Telemetry.disabled]: the scheduling round then stays
     allocation-free.  When enabled, every throttle/donation/bucket
     decision is logged with its inputs and per-tenant token/backlog/
     grant/debit gauges are registered as [qos/t<ID>/...]. *)
  unit ->
  'a t

val add_tenant : 'a t -> 'a Tenant.t -> unit

(** Remove by id; queued requests are dropped. *)
val remove_tenant : 'a t -> int -> unit

val find_tenant : 'a t -> int -> 'a Tenant.t option
val tenants : 'a t -> 'a Tenant.t list
val tenant_count : 'a t -> int

(** [enqueue t ~tenant_id ~cost req] places a request on the tenant's
    software queue.  Raises [Not_found] for an unknown tenant. *)
val enqueue : 'a t -> tenant_id:int -> cost:float -> 'a -> unit

(** Run one scheduling round at [now]; [submit] is called, in order, for
    every request released to the NVMe queue.  Returns the number of
    submissions. *)
val schedule : 'a t -> now:Reflex_engine.Time.t -> submit:('a submission -> unit) -> int

(** Total demand (tokens) sitting in this thread's tenant queues.  O(1)
    and allocation-free: an aggregate maintained incrementally through
    each tenant's demand listener (it stays consistent even when a
    tenant's queue is drained directly, as on detach). *)
val backlog : 'a t -> float

(** Requests (not tokens) sitting in this thread's tenant software
    queues.  O(live tenants) sweep — a probe-path metric for the
    rack-level load balancers, not a per-cycle one ({!backlog} is the
    O(1) per-cycle aggregate). *)
val queue_depth : 'a t -> int

(** Tokens generated for LC tenants since creation (observability). *)
val lc_tokens_generated : 'a t -> float
