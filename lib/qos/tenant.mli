(** Per-tenant scheduling state: the software request queue, the token
    balance, and the recent-grant history used for POS_LIMIT (paper
    §3.2.2). *)

type 'a t

(** [create ~id ~slo ~token_rate] — [token_rate] is tokens/sec granted by
    the control plane (an LC tenant's weighted SLO rate, or a BE tenant's
    fair share of unallocated throughput). *)
val create : id:int -> slo:Slo.t -> token_rate:float -> 'a t

val id : 'a t -> int
val slo : 'a t -> Slo.t
val is_latency_critical : 'a t -> bool

val token_rate : 'a t -> float
val set_token_rate : 'a t -> float -> unit

(** Current token balance (may be negative down to the scheduler's
    NEG_LIMIT). *)
val tokens : 'a t -> float

val add_tokens : 'a t -> float -> unit
val spend_tokens : 'a t -> float -> unit

(** Zero the balance, returning what was there (BE idle-flush). *)
val drain_tokens : 'a t -> float

(** {1 Request queue} *)

(** [enqueue t ~cost req] appends a request whose submission will cost
    [cost] tokens. *)
val enqueue : 'a t -> cost:float -> 'a -> unit

(** Sum of the costs of all queued requests — the tenant's demand. *)
val demand : 'a t -> float

val queue_length : 'a t -> int

(** Cost of the request at the head of the queue, if any. *)
val peek_cost : 'a t -> float option

(** Remove and return the head request with its cost. *)
val dequeue : 'a t -> (float * 'a) option

(** [set_demand_listener t f] installs [f], called with the signed demand
    change on every {!enqueue}/{!dequeue}.  The owning scheduler uses it
    to keep an O(1) backlog aggregate consistent even when the queue is
    drained directly (tenant detach).  A tenant belongs to at most one
    scheduler, so at most one listener is active. *)
val set_demand_listener : 'a t -> (float -> unit) -> unit

(** Reset the listener to a no-op (on removal from a scheduler). *)
val clear_demand_listener : 'a t -> unit

(** {1 Grant history (POS_LIMIT)} *)

(** Record tokens granted this round; keeps the last three rounds and
    accumulates {!granted_total}. *)
val record_grant : 'a t -> float -> unit

(** POS_LIMIT: the tokens received over the last three scheduling rounds
    (paper: accommodates short bursts without going into deficit). *)
val pos_limit : 'a t -> float

(** {1 Accounting} *)

val submitted_cost_total : 'a t -> float
val note_submitted : 'a t -> float -> unit

(** Accumulate granted tokens without touching the POS_LIMIT ring (used
    for BE rate grants, which are not part of the LC burst window). *)
val note_granted : 'a t -> float -> unit

(** Total tokens ever granted to this tenant (observability). *)
val granted_total : 'a t -> float
