let no_listener : float -> unit = fun _ -> ()

type 'a t = {
  id : int;
  slo : Slo.t;
  mutable token_rate : float;
  mutable tokens : float;
  queue : (float * 'a) Queue.t;
  mutable demand : float;
  grants : float array; (* last three rounds, ring buffer *)
  mutable grant_pos : int;
  mutable submitted_cost : float;
  mutable granted_total : float;
  (* Called with the signed change whenever [demand] moves; lets the
     owning scheduler maintain an O(1) backlog aggregate without
     rescanning every tenant per cycle. *)
  mutable on_demand_delta : float -> unit;
}

let create ~id ~slo ~token_rate =
  if token_rate < 0.0 then invalid_arg "Tenant.create: negative token rate";
  {
    id;
    slo;
    token_rate;
    tokens = 0.0;
    queue = Queue.create ();
    demand = 0.0;
    grants = Array.make 3 0.0;
    grant_pos = 0;
    submitted_cost = 0.0;
    granted_total = 0.0;
    on_demand_delta = no_listener;
  }

let set_demand_listener t f = t.on_demand_delta <- f
let clear_demand_listener t = t.on_demand_delta <- no_listener

let id t = t.id
let slo t = t.slo
let is_latency_critical t = Slo.is_latency_critical t.slo
let token_rate t = t.token_rate

let set_token_rate t r =
  if r < 0.0 then invalid_arg "Tenant.set_token_rate: negative rate";
  t.token_rate <- r

let tokens t = t.tokens
let add_tokens t x = t.tokens <- t.tokens +. x
let spend_tokens t x = t.tokens <- t.tokens -. x

let drain_tokens t =
  let x = t.tokens in
  t.tokens <- 0.0;
  x

let enqueue t ~cost req =
  if cost <= 0.0 then invalid_arg "Tenant.enqueue: non-positive cost";
  Queue.add (cost, req) t.queue;
  t.demand <- t.demand +. cost;
  t.on_demand_delta cost

let demand t = t.demand
let queue_length t = Queue.length t.queue
let peek_cost t = Option.map fst (Queue.peek_opt t.queue)

let dequeue t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some (cost, req) ->
    let before = t.demand in
    let after = before -. cost in
    (* Guard against float drift on long runs. *)
    let after = if after < 0.0 then 0.0 else after in
    t.demand <- after;
    (* Report the clamped delta so any aggregate tracks the clamped sum. *)
    t.on_demand_delta (after -. before);
    Some (cost, req)

let record_grant t x =
  t.grants.(t.grant_pos) <- x;
  t.grant_pos <- (t.grant_pos + 1) mod 3;
  t.granted_total <- t.granted_total +. x

let note_granted t x = t.granted_total <- t.granted_total +. x
let granted_total t = t.granted_total

let pos_limit t = t.grants.(0) +. t.grants.(1) +. t.grants.(2)

let submitted_cost_total t = t.submitted_cost
let note_submitted t c = t.submitted_cost <- t.submitted_cost +. c
