open Reflex_engine
open Reflex_telemetry
module Flight = Reflex_obs.Flight
module Profiler = Reflex_obs.Profiler

type 'a submission = { tenant_id : int; cost : float; payload : 'a }

type 'a t = {
  neg_limit : float;
  donate_fraction : float;
  global : Global_bucket.t;
  thread_id : int;
  notify_control_plane : int -> unit;
  (* Observability sink; [Telemetry.disabled] by default, in which case
     every record site below is skipped by a single immutable-bool read
     and the scheduling round stays allocation-free. *)
  telemetry : Telemetry.t;
  (* Always-on flight recorder and cost profiler, cached off the telemetry
     instance at creation (attach via [Telemetry.set_flight] /
     [set_profiler] before building the world).  Both default to the
     shared disabled instances, costing one immutable-bool read per site. *)
  flight : Flight.t;
  profiler : Profiler.t;
  (* Tenant sets live in growable arrays: the first [lc_n]/[be_n] slots
     are the members, in insertion order.  Appends are amortized O(1)
     (the old [t.lc @ [tenant]] was O(n) per add, O(n^2) for a fleet). *)
  mutable lc : 'a Tenant.t array;
  mutable lc_n : int;
  mutable be : 'a Tenant.t array;
  mutable be_n : int;
  by_id : (int, 'a Tenant.t) Hashtbl.t; (* O(1) lookup on the request path *)
  mutable be_cursor : int; (* round-robin start for fairness *)
  mutable prev_sched_time : Time.t option;
  mutable lc_generated : float;
  (* Incrementally maintained sum of every member tenant's demand, so
     [backlog] is O(1) and allocation-free on the per-cycle path (the
     dataplane consults it every finish_cycle).  Updated via each
     tenant's demand listener, which also covers direct queue drains
     (detach). *)
  mutable backlog_agg : float;
}

let create ?(neg_limit = -50.0) ?(donate_fraction = 0.9) ~global ~thread_id
    ?(notify_control_plane = fun _ -> ()) ?(telemetry = Telemetry.disabled) () =
  if neg_limit > 0.0 then invalid_arg "Scheduler.create: neg_limit must be <= 0";
  if donate_fraction < 0.0 || donate_fraction > 1.0 then
    invalid_arg "Scheduler.create: donate_fraction in [0,1]";
  if Telemetry.enabled telemetry then begin
    (* All schedulers of a world share one bucket; re-registration from
       each thread replaces the gauge with an equivalent closure. *)
    Telemetry.register_gauge telemetry "qos/global_bucket/level" (fun () ->
        Global_bucket.level global);
    Telemetry.register_gauge telemetry "qos/global_bucket/resets" (fun () ->
        float_of_int (Global_bucket.resets global))
  end;
  {
    neg_limit;
    donate_fraction;
    global;
    thread_id;
    notify_control_plane;
    telemetry;
    flight = Telemetry.flight telemetry;
    profiler = Telemetry.profiler telemetry;
    lc = [||];
    lc_n = 0;
    be = [||];
    be_n = 0;
    by_id = Hashtbl.create 64;
    be_cursor = 0;
    prev_sched_time = None;
    lc_generated = 0.0;
    backlog_agg = 0.0;
  }

(* Per-tenant observability dimensions.  Gauges are registered when the
   tenant joins a scheduler and removed when it leaves; names are stable
   across threads so a rebalanced tenant keeps its series. *)
let tenant_gauge_names tenant_id =
  let p = Printf.sprintf "qos/t%d/" tenant_id in
  [ p ^ "tokens"; p ^ "backlog"; p ^ "granted"; p ^ "debited" ]

let register_tenant_gauges t tenant =
  if Telemetry.enabled t.telemetry then begin
    match tenant_gauge_names (Tenant.id tenant) with
    | [ g_tokens; g_backlog; g_granted; g_debited ] ->
      Telemetry.register_gauge t.telemetry g_tokens (fun () -> Tenant.tokens tenant);
      Telemetry.register_gauge t.telemetry g_backlog (fun () -> Tenant.demand tenant);
      Telemetry.register_gauge t.telemetry g_granted (fun () -> Tenant.granted_total tenant);
      Telemetry.register_gauge t.telemetry g_debited (fun () ->
          Tenant.submitted_cost_total tenant);
      Telemetry.set_tenant_slo t.telemetry ~tenant:(Tenant.id tenant)
        ~latency_critical:(Tenant.is_latency_critical tenant)
        ~latency_us:(Tenant.slo tenant).Slo.latency_us
    | _ -> assert false
  end

let unregister_tenant_gauges t tenant_id =
  if Telemetry.enabled t.telemetry then
    List.iter (Telemetry.unregister t.telemetry) (tenant_gauge_names tenant_id)

(* Append [x] into the first free slot of [arr] (of which [n] are live),
   doubling capacity when full; returns the array to store back. *)
let grow_push arr n x =
  let arr =
    if n = Array.length arr then begin
      let narr = Array.make (if n = 0 then 8 else 2 * n) x in
      Array.blit arr 0 narr 0 n;
      narr
    end
    else arr
  in
  arr.(n) <- x;
  arr

let add_tenant t tenant =
  if Hashtbl.mem t.by_id (Tenant.id tenant) then
    invalid_arg "Scheduler.add_tenant: duplicate tenant id";
  Hashtbl.replace t.by_id (Tenant.id tenant) tenant;
  if Tenant.is_latency_critical tenant then begin
    t.lc <- grow_push t.lc t.lc_n tenant;
    t.lc_n <- t.lc_n + 1
  end
  else begin
    t.be <- grow_push t.be t.be_n tenant;
    t.be_n <- t.be_n + 1
  end;
  t.backlog_agg <- t.backlog_agg +. Tenant.demand tenant;
  Tenant.set_demand_listener tenant (fun delta -> t.backlog_agg <- t.backlog_agg +. delta);
  register_tenant_gauges t tenant

(* Single-pass, order-preserving removal from the live prefix of [arr].
   Returns the new live count.  The vacated slot is re-pointed at a
   still-live tenant (or the array dropped when it empties) so the
   scheduler does not pin removed tenants. *)
let remove_from arr n tenant_id =
  let j = ref 0 in
  for i = 0 to n - 1 do
    if Tenant.id arr.(i) <> tenant_id then begin
      if !j < i then arr.(!j) <- arr.(i);
      incr j
    end
  done;
  (if !j < n && !j > 0 then arr.(!j) <- arr.(0));
  !j

let remove_tenant t tenant_id =
  match Hashtbl.find_opt t.by_id tenant_id with
  | None -> ()
  | Some tenant ->
    Hashtbl.remove t.by_id tenant_id;
    Tenant.clear_demand_listener tenant;
    unregister_tenant_gauges t tenant_id;
    t.backlog_agg <- t.backlog_agg -. Tenant.demand tenant;
    if t.backlog_agg < 0.0 then t.backlog_agg <- 0.0;
    if Tenant.is_latency_critical tenant then begin
      t.lc_n <- remove_from t.lc t.lc_n tenant_id;
      if t.lc_n = 0 then t.lc <- [||]
    end
    else begin
      t.be_n <- remove_from t.be t.be_n tenant_id;
      if t.be_n = 0 then t.be <- [||];
      (* Keep the historical cursor behavior: clamp into the shrunk set. *)
      if t.be_n > 0 then t.be_cursor <- t.be_cursor mod t.be_n else t.be_cursor <- 0
    end

let tenants t =
  List.init t.lc_n (fun i -> t.lc.(i)) @ List.init t.be_n (fun i -> t.be.(i))

let find_tenant t tenant_id = Hashtbl.find_opt t.by_id tenant_id
let tenant_count t = Hashtbl.length t.by_id

let enqueue t ~tenant_id ~cost req =
  match find_tenant t tenant_id with
  | Some tenant -> Tenant.enqueue tenant ~cost req
  | None -> raise Not_found

(* O(1), allocation-free: the listener-maintained aggregate.  Clamp tiny
   negative float drift so idle detection stays exact. *)
let backlog t = if t.backlog_agg <= 0.0 then 0.0 else t.backlog_agg

(* Request count across tenant software queues.  An O(live tenants)
   sweep over the member arrays (insertion order, no Hashtbl walk):
   this backs the rack layer's periodic queue-depth probes, which run
   every few hundred microseconds, not every dataplane cycle. *)
let queue_depth t =
  let n = ref 0 in
  for i = 0 to t.lc_n - 1 do
    n := !n + Tenant.queue_length t.lc.(i)
  done;
  for i = 0 to t.be_n - 1 do
    n := !n + Tenant.queue_length t.be.(i)
  done;
  !n

let lc_tokens_generated t = t.lc_generated

(* Submit requests off [tenant]'s queue while there is demand and the
   balance stays above [floor]; returns the count submitted. *)
let submit_while tenant ~floor ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    if Tenant.demand tenant > 0.0 && Tenant.tokens tenant > floor then begin
      match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false
    end
    else continue := false
  done;
  !n

(* BE variant: a request is submitted only if the tenant can fully pay. *)
let submit_admissible tenant ~submit =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Tenant.peek_cost tenant with
    | Some cost when cost <= Tenant.tokens tenant -> (
      match Tenant.dequeue tenant with
      | Some (cost, payload) ->
        Tenant.spend_tokens tenant cost;
        Tenant.note_submitted tenant cost;
        submit { tenant_id = Tenant.id tenant; cost; payload };
        incr n
      | None -> continue := false)
    | _ -> continue := false
  done;
  !n

let schedule t ~now ~submit =
  Profiler.enter t.profiler Profiler.Subsystem.Qos;
  let time_delta =
    match t.prev_sched_time with
    | None -> 0.0
    | Some prev -> Time.to_float_sec (Time.diff now prev)
  in
  t.prev_sched_time <- Some now;
  (* Read once; telemetry-off rounds pay exactly these immutable-bool
     tests and stay allocation-free.  The flight recorder has its own
     bit: it stays armed even when full telemetry is off, and its record
     sites are plain array stores (see lib/obs/flight.ml). *)
  let tel_on = Telemetry.enabled t.telemetry in
  let fl = t.flight in
  let fl_on = Flight.enabled fl in
  let submitted = ref 0 in
  (* Latency-critical tenants first (Algorithm 1, lines 4-12). *)
  for i = 0 to t.lc_n - 1 do
    let tenant = t.lc.(i) in
    let grant = Tenant.token_rate tenant *. time_delta in
    Tenant.add_tokens tenant grant;
    Tenant.record_grant tenant grant;
    t.lc_generated <- t.lc_generated +. grant;
    if fl_on then
      Flight.record fl ~now ~kind:Flight.Kind.Refill ~a:(Tenant.id tenant) ~b:t.thread_id
        ~v:grant;
    if Tenant.tokens tenant < t.neg_limit then begin
      t.notify_control_plane (Tenant.id tenant);
      if fl_on then
        Flight.record fl ~now ~kind:Flight.Kind.Deficit ~a:(Tenant.id tenant) ~b:t.thread_id
          ~v:(Tenant.tokens tenant);
      if tel_on then
        Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
          Telemetry.Decision.Deficit_limit ~amount:t.neg_limit
          ~tokens_after:(Tenant.tokens tenant)
    end;
    let n_lc = submit_while tenant ~floor:t.neg_limit ~submit in
    submitted := !submitted + n_lc;
    if fl_on && n_lc > 0 then
      Flight.record fl ~now ~kind:Flight.Kind.Grant ~a:(Tenant.id tenant) ~b:n_lc
        ~v:(Tenant.tokens tenant);
    (* Demand left after the submit loop means the balance hit the floor:
       the scheduler is actively throttling this LC tenant. *)
    if Tenant.demand tenant > 0.0 then begin
      if fl_on then
        Flight.record fl ~now ~kind:Flight.Kind.Throttle ~a:(Tenant.id tenant) ~b:t.thread_id
          ~v:(Tenant.demand tenant);
      if tel_on then
        Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
          Telemetry.Decision.Throttled ~amount:(Tenant.demand tenant)
          ~tokens_after:(Tenant.tokens tenant)
    end;
    let pos_limit = Tenant.pos_limit tenant in
    if Tenant.tokens tenant > pos_limit then begin
      let donation = Tenant.tokens tenant *. t.donate_fraction in
      Global_bucket.add t.global donation;
      Tenant.spend_tokens tenant donation;
      if fl_on then
        Flight.record fl ~now ~kind:Flight.Kind.Donate ~a:(Tenant.id tenant) ~b:t.thread_id
          ~v:donation;
      if tel_on then
        Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
          Telemetry.Decision.Donated ~amount:donation ~tokens_after:(Tenant.tokens tenant)
    end
  done;
  (* Best-effort tenants in round-robin order (lines 13-21). *)
  let n_be = t.be_n in
  for k = 0 to n_be - 1 do
    let tenant = t.be.((t.be_cursor + k) mod n_be) in
    let grant = Tenant.token_rate tenant *. time_delta in
    Tenant.add_tokens tenant grant;
    if tel_on then Tenant.note_granted tenant grant;
    if fl_on then
      Flight.record fl ~now ~kind:Flight.Kind.Refill ~a:(Tenant.id tenant) ~b:t.thread_id
        ~v:grant;
    let deficit = Tenant.demand tenant -. Tenant.tokens tenant in
    if deficit > 0.0 then begin
      let taken = Global_bucket.try_take t.global deficit in
      Tenant.add_tokens tenant taken;
      if taken > 0.0 then begin
        if fl_on then
          Flight.record fl ~now ~kind:Flight.Kind.Bucket_take ~a:(Tenant.id tenant)
            ~b:t.thread_id ~v:taken;
        if tel_on then
          Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
            Telemetry.Decision.Be_bucket_take ~amount:taken
            ~tokens_after:(Tenant.tokens tenant)
      end
    end;
    let n_sub = submit_admissible tenant ~submit in
    submitted := !submitted + n_sub;
    if fl_on && n_sub > 0 then
      Flight.record fl ~now ~kind:Flight.Kind.Grant ~a:(Tenant.id tenant) ~b:n_sub
        ~v:(Tenant.tokens tenant);
    if Tenant.demand tenant > 0.0 then begin
      if fl_on then
        Flight.record fl ~now ~kind:Flight.Kind.Throttle ~a:(Tenant.id tenant) ~b:t.thread_id
          ~v:(Tenant.demand tenant);
      if tel_on then
        Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
          Telemetry.Decision.Be_starved ~amount:(Tenant.demand tenant)
          ~tokens_after:(Tenant.tokens tenant)
    end;
    (* DRR-inspired: no token hoarding while idle. *)
    if Tenant.tokens tenant > 0.0 && Tenant.demand tenant = 0.0 then begin
      let drained = Tenant.drain_tokens tenant in
      Global_bucket.add t.global drained;
      if drained > 0.0 then begin
        if fl_on then
          Flight.record fl ~now ~kind:Flight.Kind.Idle_drain ~a:(Tenant.id tenant)
            ~b:t.thread_id ~v:drained;
        if tel_on then
          Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(Tenant.id tenant)
            Telemetry.Decision.Be_idle_drain ~amount:drained ~tokens_after:0.0
      end
    end
  done;
  if n_be > 0 then t.be_cursor <- (t.be_cursor + 1) mod n_be;
  let reset = Global_bucket.mark_round t.global ~thread_id:t.thread_id in
  if reset then begin
    if fl_on then
      Flight.record fl ~now ~kind:Flight.Kind.Bucket_reset ~a:(-1) ~b:t.thread_id
        ~v:(Global_bucket.level t.global);
    if tel_on then
      Telemetry.decision t.telemetry ~now ~thread:t.thread_id ~tenant:(-1)
        Telemetry.Decision.Bucket_reset ~amount:0.0
        ~tokens_after:(Global_bucket.level t.global)
  end;
  Profiler.leave t.profiler Profiler.Subsystem.Qos;
  !submitted
