(** Client-side request deadlines and retry with exponential backoff.

    The paper's client library assumes a healthy server; under injected
    faults (lib/faults) a request can be delayed past any useful bound,
    so the resilient client arms a per-attempt deadline and re-issues the
    request — with a fresh request id, making delivery at-least-once —
    after an exponentially growing, jittered backoff.  When the retry
    budget is exhausted the operation completes with
    [Message.Timed_out].

    All randomness comes from an explicit PRNG stream owned by the
    client, so a retry schedule is a deterministic function of (policy,
    seed, attempt sequence) — byte-reproducible across runs and across
    serial/parallel experiment sweeps. *)

open Reflex_engine

type policy = {
  timeout : Time.t;  (** per-attempt deadline *)
  max_retries : int;  (** re-issues after the first attempt *)
  backoff_base : Time.t;  (** delay before the first retry *)
  backoff_mult : float;  (** growth factor per retry, >= 1.0 *)
  backoff_max : Time.t;  (** backoff cap *)
  jitter : float;  (** multiplicative jitter half-width in [0,1) *)
}

(** 5ms deadline, 3 retries, 200us base doubling to a 10ms cap, 20%
    jitter — loose enough that a healthy simulated server (sub-ms p99)
    never trips it. *)
val default : policy

(** Returns the policy unchanged or raises [Invalid_argument]. *)
val validate : policy -> policy

(** [delay_for policy ~attempt ~prng] — backoff before retry [attempt]
    (1-based): [min(max, base * mult^(attempt-1))] scaled by a uniform
    draw in [1-jitter, 1+jitter).  Exactly one PRNG draw per call,
    regardless of jitter. *)
val delay_for : policy -> attempt:int -> prng:Prng.t -> Time.t

(** Upper bound on first-transmission-to-give-up wall clock: all attempts
    time out, all backoffs land on their jittered maximum.  Retry
    schedules are provably bounded by this. *)
val worst_case_total : policy -> Time.t
