(** The user-level ReFlex client library (paper §4.2).

    One instance models one client thread: it owns a TCP connection to a
    ReFlex server and a CPU core on which every sent and received message
    is charged its network stack's per-message cost — this is what limits
    a Linux client thread to ~70K messages/s at 4KB while an IX client
    sustains over a million.

    Latencies reported to completion callbacks are end-to-end: from the
    moment the application issues the operation (including client-side
    queueing) to the completion callback. *)

open Reflex_engine
open Reflex_net
open Reflex_proto

type t

(** [connect sim fabric ~server_host ~accept ~stack ()] opens a
    connection to any protocol-speaking server: [accept] is the server's
    accept entry point (e.g. [Reflex_core.Server.accept srv]); it is
    called with the new connection.  Pass [~host] to share one machine
    (NIC) between several client threads. *)
val connect :
  Sim.t ->
  Fabric.t ->
  server_host:Fabric.host ->
  accept:(Message.t Tcp_conn.t -> unit) ->
  stack:Stack_model.t ->
  ?host:Fabric.host ->
  ?name:string ->
  ?retry:Retry.policy ->
  (* default none: requests wait forever, exactly the paper's client.
     With a policy, each attempt carries a deadline; on expiry the
     request is re-issued under a fresh id after an exponential jittered
     backoff, and completes with [Message.Timed_out] once the budget is
     exhausted.  Late responses to abandoned attempts are dropped. *)
  ?retry_seed:int64 ->
  (* seed of the client-private backoff-jitter stream (give each client
     its own so schedules stay independent); default a fixed constant *)
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  (* observability sink, default disabled; when enabled the client
     records the [Client_submit]/[Client_complete] lifecycle spans, the
     connection counts wire messages, and timeouts/retries tick the
     world counters [client/timeouts] / [client/retries] *)
  unit ->
  t

val host : t -> Fabric.host

(** [register t ~tenant ?slo k] registers this connection for [tenant],
    creating it with [slo] (default: best-effort) if new.  [k] receives
    the server's verdict. *)
val register : t -> tenant:int -> ?slo:Message.slo -> (Message.status -> unit) -> unit

(** Registered tenant handle, once registration succeeded. *)
val handle : t -> int option

(** [read t ~lba ~len k] — [k status ~latency] fires on completion.
    Raises [Failure] if the connection has not registered. *)
val read : t -> lba:int64 -> len:int -> (Message.status -> latency:Time.t -> unit) -> unit

val write : t -> lba:int64 -> len:int -> (Message.status -> latency:Time.t -> unit) -> unit

(** [barrier t k] — completes only after every earlier operation on this
    tenant has; later operations wait for it (ordering extension, paper
    §4.1). *)
val barrier : t -> (Message.status -> latency:Time.t -> unit) -> unit

val unregister : t -> (unit -> unit) -> unit

(** The request id the next issued operation will carry.  Read immediately
    before {!read}/{!write} to correlate that operation with server-side
    observability (e.g. rack hop tracing) without changing the wire
    protocol. *)
val next_req_id : t -> int64

(** Requests issued but not yet completed. *)
val inflight : t -> int

(** Attempts re-issued after a deadline expiry (0 without a retry
    policy). *)
val retries : t -> int

(** Per-attempt deadline expiries, including the final one before a
    [Timed_out] completion. *)
val timeouts : t -> int
