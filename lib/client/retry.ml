open Reflex_engine

type policy = {
  timeout : Time.t;
  max_retries : int;
  backoff_base : Time.t;
  backoff_mult : float;
  backoff_max : Time.t;
  jitter : float;
}

let default =
  {
    timeout = Time.ms 5;
    max_retries = 3;
    backoff_base = Time.us 200;
    backoff_mult = 2.0;
    backoff_max = Time.ms 10;
    jitter = 0.2;
  }

let validate p =
  if Time.(p.timeout <= Time.zero) then invalid_arg "Retry: timeout must be positive";
  if p.max_retries < 0 then invalid_arg "Retry: max_retries must be >= 0";
  if Time.(p.backoff_base <= Time.zero) then invalid_arg "Retry: backoff_base must be positive";
  if p.backoff_mult < 1.0 then invalid_arg "Retry: backoff_mult must be >= 1.0";
  if Time.(p.backoff_max < p.backoff_base) then
    invalid_arg "Retry: backoff_max must be >= backoff_base";
  if p.jitter < 0.0 || p.jitter >= 1.0 then invalid_arg "Retry: jitter in [0,1)";
  p

(* Exponential backoff, capped, with multiplicative jitter: the delay
   before retry [attempt] (1-based) is
     min(backoff_max, backoff_base * mult^(attempt-1)) * u,
   u uniform in [1-jitter, 1+jitter).  The draw always happens (even at
   jitter 0.0 the PRNG stream advances) so a schedule's draw count — and
   hence its determinism for a fixed seed — never depends on the jitter
   setting. *)
let delay_for policy ~attempt ~prng =
  if attempt < 1 then invalid_arg "Retry.delay_for: attempt is 1-based";
  let base =
    Time.min policy.backoff_max
      (Time.scale policy.backoff_base (policy.backoff_mult ** float_of_int (attempt - 1)))
  in
  let u = Prng.float_range prng (1.0 -. policy.jitter) (1.0 +. policy.jitter) in
  Time.max (Time.ns 1) (Time.scale base u)

(* Worst-case wall clock from first transmission to giving up: every
   attempt times out and every backoff lands on its jittered maximum. *)
let worst_case_total policy =
  let acc = ref (Time.scale policy.timeout (float_of_int (policy.max_retries + 1))) in
  for attempt = 1 to policy.max_retries do
    let base =
      Time.min policy.backoff_max
        (Time.scale policy.backoff_base (policy.backoff_mult ** float_of_int (attempt - 1)))
    in
    acc := Time.add !acc (Time.scale base (1.0 +. policy.jitter))
  done;
  !acc
