open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_telemetry

type t = {
  sim : Sim.t;
  conn : Message.t Tcp_conn.t;
  core : Resource.t;
  stack : Stack_model.t;
  client_host : Fabric.host;
  mutable next_req : int64;
  outstanding : (int64, Time.t * (Message.status -> latency:Time.t -> unit)) Hashtbl.t;
  mutable register_k : (Message.status -> unit) option;
  mutable unregister_k : (unit -> unit) option;
  mutable handle : int option;
  (* Lifecycle-span sink; [tel_on] copies its immutable enabled bit so
     the issue/complete hot paths pay one boolean test when tracing is
     off. *)
  tel : Telemetry.t;
  tel_on : bool;
}

let dispatch t msg =
  match msg with
  | Message.Registered { handle; status } -> (
    if status = Message.Ok then t.handle <- Some handle;
    match t.register_k with
    | Some k ->
      t.register_k <- None;
      k status
    | None -> ())
  | Message.Unregistered _ -> (
    t.handle <- None;
    match t.unregister_k with
    | Some k ->
      t.unregister_k <- None;
      k ()
    | None -> ())
  | Message.Barrier_resp { req_id } -> (
    match Hashtbl.find_opt t.outstanding req_id with
    | Some (t0, k) ->
      Hashtbl.remove t.outstanding req_id;
      k Message.Ok ~latency:(Time.diff (Sim.now t.sim) t0)
    | None -> ())
  | Message.Read_resp { req_id; status; _ }
  | Message.Write_resp { req_id; status }
  | Message.Error_resp { req_id; status } -> (
    match Hashtbl.find_opt t.outstanding req_id with
    | Some (t0, k) ->
      Hashtbl.remove t.outstanding req_id;
      (if t.tel_on then
         match t.handle with
         | Some tenant ->
           Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant ~req_id
             Telemetry.Stage.Client_complete
         | None -> ());
      k status ~latency:(Time.diff (Sim.now t.sim) t0)
    | None -> ())
  | Message.Register _ | Message.Unregister _ | Message.Read_req _ | Message.Write_req _
  | Message.Barrier_req _ ->
    (*

       Server-to-client stream never carries requests; ignore. *)
    ()

let connect sim fabric ~server_host ~accept ~stack ?host ?(name = "client")
    ?(telemetry = Telemetry.disabled) () =
  let client_host =
    match host with Some h -> h | None -> Fabric.add_host fabric ~name ~stack
  in
  let conn = Tcp_conn.connect ~telemetry fabric ~client:client_host ~server:server_host in
  let t =
    {
      sim;
      conn;
      core = Resource.create sim ~servers:1;
      stack;
      client_host;
      next_req = 1L;
      outstanding = Hashtbl.create 256;
      register_k = None;
      unregister_k = None;
      handle = None;
      tel = telemetry;
      tel_on = Telemetry.enabled telemetry;
    }
  in
  accept conn;
  (* Receive path: the client thread spends per-message CPU before the
     application sees the completion. *)
  Tcp_conn.set_client_handler conn (fun msg ~size:_ ->
      Resource.submit t.core ~service:t.stack.Stack_model.per_msg_cpu
        (fun ~started:_ ~finished:_ -> dispatch t msg));
  t

let host t = t.client_host

(* Transmit path: CPU first, then the wire. *)
let send t msg =
  Resource.submit t.core ~service:t.stack.Stack_model.per_msg_cpu (fun ~started:_ ~finished:_ ->
      Tcp_conn.send_to_server t.conn ~size:(Codec.encoded_size msg) msg)

let register t ~tenant ?(slo = Message.best_effort_slo) k =
  if t.register_k <> None then failwith "Client_lib.register: registration already in flight";
  t.register_k <- Some k;
  send t (Message.Register { tenant; slo })

let handle t = t.handle

let io t ~kind ~lba ~len k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle ->
    let req_id = t.next_req in
    t.next_req <- Int64.add req_id 1L;
    Hashtbl.replace t.outstanding req_id (Sim.now t.sim, k);
    if t.tel_on then
      Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:handle ~req_id
        Telemetry.Stage.Client_submit;
    let msg =
      match kind with
      | `Read -> Message.Read_req { handle; req_id; lba; len }
      | `Write -> Message.Write_req { handle; req_id; lba; len }
    in
    send t msg

let read t ~lba ~len k = io t ~kind:`Read ~lba ~len k
let write t ~lba ~len k = io t ~kind:`Write ~lba ~len k

let barrier t k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle ->
    let req_id = t.next_req in
    t.next_req <- Int64.add req_id 1L;
    Hashtbl.replace t.outstanding req_id (Sim.now t.sim, k);
    send t (Message.Barrier_req { handle; req_id })

let unregister t k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle ->
    t.unregister_k <- Some k;
    send t (Message.Unregister { handle })

let inflight t = Hashtbl.length t.outstanding
