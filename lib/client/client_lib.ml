open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_telemetry

(* What a pending operation needs to be re-issued after a timeout. *)
type op = Op_read of { lba : int64; len : int } | Op_write of { lba : int64; len : int } | Op_barrier

type pending = {
  t0 : Time.t; (* first submission — latency spans every attempt *)
  pk : Message.status -> latency:Time.t -> unit;
  op : op;
  attempt : int; (* 0 = first try *)
  timer : Sim.event_id option; (* armed only when a retry policy is set *)
}

type t = {
  sim : Sim.t;
  conn : Message.t Tcp_conn.t;
  core : Resource.t;
  stack : Stack_model.t;
  client_host : Fabric.host;
  mutable next_req : int64;
  outstanding : (int64, pending) Hashtbl.t;
  mutable register_k : (Message.status -> unit) option;
  mutable unregister_k : (unit -> unit) option;
  mutable handle : int option;
  (* Resilience (lib/faults): [retry = None] (the default) keeps the
     pre-retry behaviour exactly — no deadline timers are armed, no
     retry PRNG exists, and requests wait forever like the paper's
     client.  The retry PRNG is private to this client, so arming
     retries perturbs no other component's randomness. *)
  retry : Retry.policy option;
  retry_prng : Prng.t;
  mutable retries : int;
  mutable timeouts : int;
  (* Lifecycle-span sink; [tel_on] copies its immutable enabled bit so
     the issue/complete hot paths pay one boolean test when tracing is
     off. *)
  tel : Telemetry.t;
  tel_on : bool;
  c_retries : Telemetry.counter; (* client/retries *)
  c_timeouts : Telemetry.counter; (* client/timeouts *)
}

let complete t req_id status =
  match Hashtbl.find_opt t.outstanding req_id with
  | Some p ->
    Hashtbl.remove t.outstanding req_id;
    (match p.timer with Some ev -> Sim.cancel t.sim ev | None -> ());
    (if t.tel_on && p.op <> Op_barrier then
       match t.handle with
       | Some tenant ->
         Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant ~req_id
           Telemetry.Stage.Client_complete
       | None -> ());
    p.pk status ~latency:(Time.diff (Sim.now t.sim) p.t0)
  | None ->
    (* Unknown id: either a duplicate completion or a response that
       arrived after its deadline expired and the request was re-issued
       under a new id (at-least-once semantics) — drop it. *)
    ()

let dispatch t msg =
  match msg with
  | Message.Registered { handle; status } -> (
    if status = Message.Ok then t.handle <- Some handle;
    match t.register_k with
    | Some k ->
      t.register_k <- None;
      k status
    | None -> ())
  | Message.Unregistered _ -> (
    t.handle <- None;
    match t.unregister_k with
    | Some k ->
      t.unregister_k <- None;
      k ()
    | None -> ())
  | Message.Barrier_resp { req_id } -> complete t req_id Message.Ok
  | Message.Read_resp { req_id; status; _ }
  | Message.Write_resp { req_id; status }
  | Message.Error_resp { req_id; status } ->
    complete t req_id status
  | Message.Register _ | Message.Unregister _ | Message.Read_req _ | Message.Write_req _
  | Message.Barrier_req _ ->
    (* Server-to-client stream never carries requests; ignore. *)
    ()

let connect sim fabric ~server_host ~accept ~stack ?host ?(name = "client") ?retry
    ?(retry_seed = 0x2E7259_5EEDL) ?(telemetry = Telemetry.disabled) () =
  let client_host =
    match host with Some h -> h | None -> Fabric.add_host fabric ~name ~stack
  in
  let conn = Tcp_conn.connect ~telemetry fabric ~client:client_host ~server:server_host in
  let t =
    {
      sim;
      conn;
      core = Resource.create sim ~servers:1;
      stack;
      client_host;
      next_req = 1L;
      outstanding = Hashtbl.create 256;
      register_k = None;
      unregister_k = None;
      handle = None;
      retry = Option.map Retry.validate retry;
      retry_prng = Prng.create retry_seed;
      retries = 0;
      timeouts = 0;
      tel = telemetry;
      tel_on = Telemetry.enabled telemetry;
      c_retries = Telemetry.counter telemetry "client/retries";
      c_timeouts = Telemetry.counter telemetry "client/timeouts";
    }
  in
  accept conn;
  (* Receive path: the client thread spends per-message CPU before the
     application sees the completion. *)
  Tcp_conn.set_client_handler conn (fun msg ~size:_ ->
      Resource.submit t.core ~service:t.stack.Stack_model.per_msg_cpu
        (fun ~started:_ ~finished:_ -> dispatch t msg));
  t

let host t = t.client_host

(* Transmit path: CPU first, then the wire. *)
let send t msg =
  Resource.submit t.core ~service:t.stack.Stack_model.per_msg_cpu (fun ~started:_ ~finished:_ ->
      Tcp_conn.send_to_server t.conn ~size:(Codec.encoded_size msg) msg)

let register t ~tenant ?(slo = Message.best_effort_slo) k =
  if t.register_k <> None then failwith "Client_lib.register: registration already in flight";
  t.register_k <- Some k;
  send t (Message.Register { tenant; slo })

let handle t = t.handle

let msg_of_op ~handle ~req_id = function
  | Op_read { lba; len } -> Message.Read_req { handle; req_id; lba; len }
  | Op_write { lba; len } -> Message.Write_req { handle; req_id; lba; len }
  | Op_barrier -> Message.Barrier_req { handle; req_id }

(* Issue one attempt of an operation.  With a retry policy armed, a
   per-attempt deadline timer expires into [on_timeout]; the timer is
   cancelled (closure dropped immediately, see Sim.cancel) when the
   response lands first.  Every attempt uses a fresh request id, so a
   late response to an abandoned attempt finds no outstanding entry and
   is dropped — re-issue is at-least-once, completion exactly-once.
   [prev] is the req_id of the attempt this one retries: the causal
   follows-from link chains the attempts into one span tree. *)
let rec issue ?prev t ~handle ~t0 ~attempt ~op pk =
  let req_id = t.next_req in
  t.next_req <- Int64.add req_id 1L;
  let timer =
    match t.retry with
    | None -> None
    | Some policy -> Some (Sim.after t.sim policy.Retry.timeout (fun () -> on_timeout t req_id))
  in
  Hashtbl.replace t.outstanding req_id { t0; pk; op; attempt; timer };
  if t.tel_on && op <> Op_barrier then begin
    Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:handle ~req_id
      Telemetry.Stage.Client_submit;
    match prev with
    | Some prev_id ->
      Telemetry.link t.tel ~now:(Sim.now t.sim) ~kind:Telemetry.Follows_from
        ~src_tenant:handle ~src_req:prev_id ~dst_tenant:handle ~dst_req:req_id
    | None -> ()
  end;
  send t (msg_of_op ~handle ~req_id op)

and on_timeout t req_id =
  match Hashtbl.find_opt t.outstanding req_id with
  | None -> () (* response won the race against the deadline *)
  | Some p -> (
    Hashtbl.remove t.outstanding req_id;
    t.timeouts <- t.timeouts + 1;
    if t.tel_on then Telemetry.incr t.c_timeouts;
    let policy = Option.get t.retry in
    let give_up () = p.pk Message.Timed_out ~latency:(Time.diff (Sim.now t.sim) p.t0) in
    if p.attempt >= policy.Retry.max_retries then give_up ()
    else begin
      t.retries <- t.retries + 1;
      if t.tel_on then Telemetry.incr t.c_retries;
      let delay = Retry.delay_for policy ~attempt:(p.attempt + 1) ~prng:t.retry_prng in
      ignore
        (Sim.after t.sim delay (fun () ->
             match t.handle with
             | Some h ->
               issue ~prev:req_id t ~handle:h ~t0:p.t0 ~attempt:(p.attempt + 1) ~op:p.op p.pk
             | None -> give_up ()))
    end)

let io t ~kind ~lba ~len k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle ->
    let op =
      match kind with `Read -> Op_read { lba; len } | `Write -> Op_write { lba; len }
    in
    issue t ~handle ~t0:(Sim.now t.sim) ~attempt:0 ~op k

let read t ~lba ~len k = io t ~kind:`Read ~lba ~len k
let write t ~lba ~len k = io t ~kind:`Write ~lba ~len k

let barrier t k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle -> issue t ~handle ~t0:(Sim.now t.sim) ~attempt:0 ~op:Op_barrier k

let unregister t k =
  match t.handle with
  | None -> failwith "Client_lib: not registered"
  | Some handle ->
    t.unregister_k <- Some k;
    send t (Message.Unregister { handle })

let next_req_id t = t.next_req
let inflight t = Hashtbl.length t.outstanding
let retries t = t.retries
let timeouts t = t.timeouts
