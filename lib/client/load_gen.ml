open Reflex_engine
open Reflex_stats
open Reflex_proto

type t = {
  sim : Sim.t;
  client : Client_lib.t;
  mix : [ `Random | `Deterministic ];
  mutable mix_credit : float; (* Bresenham accumulator for `Deterministic *)
  reads : Hdr_histogram.t;
  writes : Hdr_histogram.t;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable timeout_errors : int; (* Timed_out completions, a subset of errors *)
  (* Fault injection (lib/faults): open-loop arrival-rate multiplier for
     the misbehaving-tenant fault.  At the default 1.0 the gap
     computation is skipped entirely, so fault-free runs stay
     byte-identical. *)
  mutable burst_factor : float;
  mutable measure_from : Time.t;
  mutable measure_until : Time.t option;
  mutable measured_completions : int;
}

let make ?(mix = `Random) sim client =
  {
    sim;
    client;
    mix;
    mix_credit = 0.0;
    reads = Hdr_histogram.create ();
    writes = Hdr_histogram.create ();
    issued = 0;
    completed = 0;
    errors = 0;
    timeout_errors = 0;
    burst_factor = 1.0;
    measure_from = Sim.now sim;
    measure_until = None;
    measured_completions = 0;
  }

let record t ~kind ~issued_at status ~latency =
  t.completed <- t.completed + 1;
  if status <> Message.Ok then begin
    t.errors <- t.errors + 1;
    if status = Message.Timed_out then t.timeout_errors <- t.timeout_errors + 1
  end
  else if Time.(issued_at >= t.measure_from) then begin
    let in_window =
      match t.measure_until with None -> true | Some u -> Time.(Sim.now t.sim <= u)
    in
    if in_window then t.measured_completions <- t.measured_completions + 1;
    match kind with
    | `Read -> Hdr_histogram.record t.reads latency
    | `Write -> Hdr_histogram.record t.writes latency
  end

(* With a deterministic mix, reads and writes interleave on a fixed
   schedule (e.g. exactly one write every five requests at 80% reads),
   like a paced load generator; with a random mix each request is an
   independent Bernoulli draw. *)
let next_kind t ~prng ~read_ratio =
  match t.mix with
  | `Random -> if Prng.bool prng read_ratio then `Read else `Write
  | `Deterministic ->
    t.mix_credit <- t.mix_credit +. read_ratio;
    if t.mix_credit >= 1.0 then begin
      t.mix_credit <- t.mix_credit -. 1.0;
      `Read
    end
    else `Write

let issue t ~prng ~read_ratio ~bytes ~lba_hi k =
  let kind = next_kind t ~prng ~read_ratio in
  let lba = Int64.of_int (Prng.int prng (Int64.to_int lba_hi)) in
  let issued_at = Sim.now t.sim in
  t.issued <- t.issued + 1;
  let complete status ~latency =
    record t ~kind ~issued_at status ~latency;
    k ()
  in
  match kind with
  | `Read -> Client_lib.read t.client ~lba ~len:bytes complete
  | `Write -> Client_lib.write t.client ~lba ~len:bytes complete

let open_loop sim ~client ?(pacing = `Poisson) ?mix ~rate ~read_ratio ~bytes ~until
    ?(lba_hi = 1_000_000L) ?(seed = 0x10AD_0001L) () =
  if rate <= 0.0 then invalid_arg "Load_gen.open_loop: rate";
  let t = make ?mix sim client in
  let prng = Prng.create seed in
  let gap_mean = 1e9 /. rate in
  let next_gap () =
    let gap =
      match pacing with
      | `Poisson ->
        Time.max (Time.ns 1) (Time.of_float_ns (Prng.exponential prng ~mean:gap_mean))
      | `Cbr ->
        (* Evenly paced with a little dither so flows do not phase-lock. *)
        Time.max (Time.ns 1) (Time.of_float_ns (gap_mean *. Prng.float_range prng 0.95 1.05))
    in
    (* Misbehaving-tenant fault: a burst factor > 1 shrinks gaps, driving
       the generator above its declared rate.  Skipped at 1.0. *)
    if t.burst_factor = 1.0 then gap
    else Time.max (Time.ns 1) (Time.scale gap (1.0 /. t.burst_factor))
  in
  let rec arrival () =
    if Time.(Sim.now sim <= until) then begin
      issue t ~prng ~read_ratio ~bytes ~lba_hi (fun () -> ());
      ignore (Sim.after sim (next_gap ()) arrival)
    end
  in
  ignore (Sim.at sim (Sim.now sim) arrival);
  t

let closed_loop sim ~client ~depth ?(think = Time.zero) ?mix ~read_ratio ~bytes ~until
    ?(lba_hi = 1_000_000L) ?(seed = 0x10AD_0002L) () =
  if depth < 1 then invalid_arg "Load_gen.closed_loop: depth";
  let t = make ?mix sim client in
  let prng = Prng.create seed in
  let rec next () =
    if Time.(Sim.now sim <= until) then
      issue t ~prng ~read_ratio ~bytes ~lba_hi (fun () ->
          if Time.(think > Time.zero) then ignore (Sim.after sim think next) else next ())
  in
  for _ = 1 to depth do
    ignore (Sim.at sim (Sim.now sim) next)
  done;
  t

let mark_measurement_start t =
  t.measure_from <- Sim.now t.sim;
  t.measure_until <- None;
  t.measured_completions <- 0;
  Hdr_histogram.reset t.reads;
  Hdr_histogram.reset t.writes

let freeze_window t = t.measure_until <- Some (Sim.now t.sim)

let set_burst_factor t f =
  if f <= 0.0 then invalid_arg "Load_gen.set_burst_factor: factor";
  t.burst_factor <- f

let burst_factor t = t.burst_factor
let reads t = t.reads
let writes t = t.writes
let issued t = t.issued
let completed t = t.completed
let errors t = t.errors
let timeout_errors t = t.timeout_errors

let achieved_iops t =
  let window_end = match t.measure_until with None -> Sim.now t.sim | Some u -> u in
  let elapsed = Time.to_float_sec (Time.diff window_end t.measure_from) in
  if elapsed <= 0.0 then 0.0 else float_of_int t.measured_completions /. elapsed

let pct h p = if Hdr_histogram.count h = 0 then Float.nan else Hdr_histogram.percentile_us h p
let mean h = if Hdr_histogram.count h = 0 then Float.nan else Hdr_histogram.mean_us h
let p95_read_us t = pct t.reads 95.0
let mean_read_us t = mean t.reads
let p95_write_us t = pct t.writes 95.0
let mean_write_us t = mean t.writes
