(** The remote block-device driver for legacy Linux applications (paper
    §4.2).

    Implements the blk-mq shape: one hardware context per client core,
    each with its own socket to the ReFlex server and a kernel thread that
    receives and completes responses.  Block I/O (bio) requests are issued
    directly, without coalescing, split into 4KB logical blocks; the bio
    completes when its last block does.  The Linux TCP stack limits each
    context to ~70K messages/s, which is why FIO needs several threads to
    saturate a 10GbE link (§5.6). *)

open Reflex_engine
open Reflex_flash

type t

(** [create sim fabric ~server_host ~accept ~n_contexts ~tenant k]
    registers [tenant] (best-effort by default) on every context's
    connection and calls [k] when the device is ready.  All contexts share
    one client machine (NIC).  Works against any protocol-speaking server
    via its [accept] entry point. *)
val create :
  Sim.t ->
  Reflex_net.Fabric.t ->
  server_host:Reflex_net.Fabric.host ->
  accept:(Reflex_proto.Message.t Reflex_net.Tcp_conn.t -> unit) ->
  n_contexts:int ->
  tenant:int ->
  ?slo:Reflex_proto.Message.slo ->
  ?name:string ->
  ?retry:Retry.policy ->
  (* default none; with a policy every context arms per-attempt deadlines
     and retries with exponential backoff (see {!Client_lib.connect}) *)
  ?retry_seed:int64 ->
  (* base seed for the contexts' backoff-jitter streams (context [i] uses
     [retry_seed + i]) *)
  unit ->
  (t -> unit) ->
  unit

(** [submit_bio t ~kind ~lba ~bytes k] issues one block request.  Requests
    larger than 4KB are split into 4KB blocks issued round-robin across
    contexts; [k ~latency] fires when all blocks complete. *)
val submit_bio : t -> kind:Io_op.kind -> lba:int64 -> bytes:int -> (latency:Time.t -> unit) -> unit

val n_contexts : t -> int
val bios_completed : t -> int

(** Retries / deadline expiries summed across contexts (0 without a retry
    policy). *)
val retries : t -> int

val timeouts : t -> int
