(** Load generation against a ReFlex client connection — the mutilate
    methodology of the paper (§5.1): open-loop Poisson load from many
    threads for throughput, plus a separate low-rate/queue-depth-1 client
    for unloaded latency probes. *)

open Reflex_engine
open Reflex_stats

type t

(** [open_loop sim ~client ~rate ~read_ratio ~bytes ~until ()] issues
    open-loop arrivals at [rate]/sec until [until].  LBAs are uniform in
    [0, lba_hi).  [pacing] selects the arrival process: [`Poisson]
    (default) for memoryless load, or [`Cbr] for the evenly paced
    generation that coordinated load generators like mutilate produce —
    pacing matters for LC tenants driven at exactly their reservation,
    where Poisson bursts exceed the token-bucket burst allowance. *)
val open_loop :
  Sim.t ->
  client:Client_lib.t ->
  ?pacing:[ `Poisson | `Cbr ] ->
  ?mix:[ `Random | `Deterministic ] ->
  rate:float ->
  read_ratio:float ->
  bytes:int ->
  until:Time.t ->
  ?lba_hi:int64 ->
  ?seed:int64 ->
  unit ->
  t

(** [closed_loop sim ~client ~depth ...] keeps [depth] requests in flight
    (reissuing on completion, after an optional [think] delay) until
    [until].  [depth = 1] with a think time is the unloaded-latency
    prober. *)
val closed_loop :
  Sim.t ->
  client:Client_lib.t ->
  depth:int ->
  ?think:Time.t ->
  ?mix:[ `Random | `Deterministic ] ->
  read_ratio:float ->
  bytes:int ->
  until:Time.t ->
  ?lba_hi:int64 ->
  ?seed:int64 ->
  unit ->
  t

(** Discard everything recorded so far; only requests issued from now on
    count.  Call after warmup. *)
val mark_measurement_start : t -> unit

(** Freeze the measurement window at the current instant: completions
    after this moment no longer count toward {!achieved_iops} (they still
    land in the latency histograms).  Call when offered load stops, so
    that draining the simulation does not dilute the rate. *)
val freeze_window : t -> unit

(** {1 Results} *)

val reads : t -> Hdr_histogram.t
val writes : t -> Hdr_histogram.t
val issued : t -> int
val completed : t -> int
val errors : t -> int

(** Completions with status [Timed_out] (retry budget exhausted) — a
    subset of {!errors}. *)
val timeout_errors : t -> int

(** {1 Fault injection}

    Misbehaving-tenant fault (lib/faults): scale an open-loop generator's
    arrival rate by [factor] (gaps shrink by [1/factor]).  [1.0] restores
    the declared rate; closed-loop generators ignore it.
    @raise Invalid_argument if [factor <= 0]. *)
val set_burst_factor : t -> float -> unit

val burst_factor : t -> float

(** Completed IOPS over the measured window (since the last
    {!mark_measurement_start}, or creation). *)
val achieved_iops : t -> float

(** Convenience percentile/mean accessors in microseconds over reads. *)
val p95_read_us : t -> float

val mean_read_us : t -> float
val p95_write_us : t -> float
val mean_write_us : t -> float
