(** Client-side access paths to a ReFlex server: the user-level library,
    the mutilate-style load generator, and the legacy blk-mq remote block
    device driver. *)

module Retry = Retry
module Client_lib = Client_lib
module Load_gen = Load_gen
module Blk_dev = Blk_dev
