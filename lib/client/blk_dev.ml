open Reflex_engine
open Reflex_flash
open Reflex_net
open Reflex_proto

type t = {
  sim : Sim.t;
  contexts : Client_lib.t array;
  mutable rr : int;
  mutable completed : int;
}

let create sim fabric ~server_host ~accept ~n_contexts ~tenant ?(slo = Message.best_effort_slo)
    ?(name = "blkdev-client") ?retry ?(retry_seed = 0xB10C_5EEDL) () k =
  if n_contexts < 1 then invalid_arg "Blk_dev.create: n_contexts";
  (* All hardware contexts live on one machine: one NIC, one stack. *)
  let host = Fabric.add_host fabric ~name ~stack:Stack_model.linux_client in
  let contexts =
    Array.init n_contexts (fun i ->
        (* Each context gets its own backoff-jitter stream so retry
           schedules across contexts stay independent. *)
        Client_lib.connect sim fabric ~server_host ~accept ~stack:Stack_model.linux_client ~host
          ?retry
          ~retry_seed:Int64.(add retry_seed (of_int i))
          ())
  in
  let t = { sim; contexts; rr = 0; completed = 0 } in
  (* Register every context's connection; ready when the last confirms. *)
  let pending = ref n_contexts in
  Array.iter
    (fun c ->
      Client_lib.register c ~tenant ~slo (fun status ->
          if status <> Message.Ok then failwith "Blk_dev: registration failed";
          decr pending;
          if !pending = 0 then k t))
    contexts;
  ()

let pick t =
  let c = t.contexts.(t.rr) in
  t.rr <- (t.rr + 1) mod Array.length t.contexts;
  c

let submit_bio t ~kind ~lba ~bytes k =
  if bytes <= 0 then invalid_arg "Blk_dev.submit_bio: size";
  let blocks = Io_op.sectors_of_bytes bytes in
  let start = Sim.now t.sim in
  let remaining = ref blocks in
  let complete (_ : Message.status) ~latency:_ =
    decr remaining;
    if !remaining = 0 then begin
      t.completed <- t.completed + 1;
      k ~latency:(Time.diff (Sim.now t.sim) start)
    end
  in
  for i = 0 to blocks - 1 do
    let block_lba = Int64.add lba (Int64.of_int i) in
    let len = min Io_op.lba_size (bytes - (i * Io_op.lba_size)) in
    let len = if len <= 0 then Io_op.lba_size else len in
    let ctx = pick t in
    match kind with
    | Io_op.Read -> Client_lib.read ctx ~lba:block_lba ~len complete
    | Io_op.Write -> Client_lib.write ctx ~lba:block_lba ~len complete
  done

let n_contexts t = Array.length t.contexts
let bios_completed t = t.completed

let retries t =
  Array.fold_left (fun acc c -> acc + Client_lib.retries c) 0 t.contexts

let timeouts t =
  Array.fold_left (fun acc c -> acc + Client_lib.timeouts c) 0 t.contexts
