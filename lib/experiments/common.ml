open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_client
open Reflex_telemetry

type mode = Quick | Full

let window = function Quick -> Time.ms 150 | Full -> Time.ms 500
let scale_points mode quick full = match mode with Quick -> quick | Full -> full

type reflex_world = {
  sim : Sim.t;
  fabric : Fabric.t;
  server : Reflex_core.Server.t;
  telemetry : Telemetry.t;
}

(* Worlds built by experiments enable telemetry when this flag is set
   (the `--telemetry`/`--trace-out` CLI path).  Each world gets its OWN
   instance — never a shared one — so Runner's domain-parallel sweeps
   stay race-free and deterministic. *)
let default_telemetry = ref false
let set_default_telemetry v = default_telemetry := v

(* The most recent telemetry-enabled world built by [make_reflex], for
   trace export after a run.  Only meaningful in serial runs (the trace
   exporter forces jobs=1). *)
let last_telemetry : Telemetry.t option ref = ref None

let make_reflex ?(n_threads = 1) ?max_threads ?(qos = true) ?profile ?neg_limit
    ?donate_fraction ?seed ?telemetry () =
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> if !default_telemetry then Telemetry.create () else Telemetry.disabled
  in
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let server =
    Reflex_core.Server.create sim ~fabric ?profile ~n_threads ?max_threads ~qos ?neg_limit
      ?donate_fraction ?seed ~telemetry ()
  in
  if Telemetry.enabled telemetry then begin
    (* Daemon tick: samples while real work is pending, never keeps the
       simulation alive, never perturbs simulation state. *)
    Telemetry.start_sampler telemetry sim ();
    last_telemetry := Some telemetry
  end;
  { sim; fabric; server; telemetry }

type baseline_world = {
  bsim : Sim.t;
  bfabric : Fabric.t;
  bserver : Reflex_baselines.Baseline_server.t;
}

let make_baseline ~kind ?(n_threads = 1) ?seed () =
  let bsim = Sim.create () in
  let bfabric = Fabric.create bsim () in
  let bserver = Reflex_baselines.Baseline_server.create bsim ~fabric:bfabric ~kind ~n_threads ?seed () in
  { bsim; bfabric; bserver }

let lc_slo ~latency_us ~iops ~read_pct =
  { Message.latency_us; iops; read_pct; latency_critical = true }

let be_slo ?(read_pct = 100) () =
  { Message.latency_us = 0; iops = 0; read_pct; latency_critical = false }

(* Run the simulation in short slices until the registration answer
   arrives — a full drain would also execute any load generators already
   started on this simulation. *)
let register_sync sim client ~tenant ?slo () =
  let result = ref None in
  Client_lib.register client ~tenant ?slo (fun s -> result := Some s);
  let deadline = Time.add (Sim.now sim) (Time.ms 50) in
  let rec wait () =
    (* [live_pending] excludes telemetry daemons, which never drain. *)
    if !result = None && Time.(Sim.now sim < deadline) && Sim.live_pending sim > 0 then begin
      ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.us 200)) sim);
      wait ()
    end
  in
  wait ();
  match !result with Some s -> s | None -> failwith "registration did not complete"

let try_client_of w ?(stack = Stack_model.ix_client) ?slo ?retry ?retry_seed ~tenant () =
  let client =
    Client_lib.connect w.sim w.fabric
      ~server_host:(Reflex_core.Server.host w.server)
      ~accept:(Reflex_core.Server.accept w.server)
      ~stack ?retry ?retry_seed ~telemetry:w.telemetry ()
  in
  match register_sync w.sim client ~tenant ?slo () with
  | Message.Ok -> Ok client
  | s -> Error s

let client_of w ?stack ?slo ?retry ?retry_seed ~tenant () =
  match try_client_of w ?stack ?slo ?retry ?retry_seed ~tenant () with
  | Ok c -> c
  | Error s -> failwith ("registration refused: " ^ Message.status_to_string s)

let client_of_baseline w ?(stack = Stack_model.ix_client) ~tenant () =
  let client =
    Client_lib.connect w.bsim w.bfabric
      ~server_host:(Reflex_baselines.Baseline_server.host w.bserver)
      ~accept:(Reflex_baselines.Baseline_server.accept w.bserver)
      ~stack ()
  in
  (match register_sync w.bsim client ~tenant () with
  | Message.Ok -> ()
  | s -> failwith ("baseline registration failed: " ^ Message.status_to_string s));
  client

(* Current git commit, read straight from [.git] (no subprocess — the
   bench harness embeds this in every --json output so results are
   attributable).  Walks up from the cwd; "unknown" when not in a
   checkout. *)
let git_sha () =
  let read_line path =
    try
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
    with Sys_error _ -> None
  in
  let rec find dir depth =
    if depth > 8 then None
    else
      let git = Filename.concat dir ".git" in
      match read_line (Filename.concat git "HEAD") with
      | Some line ->
        if String.length line > 5 && String.sub line 0 5 = "ref: " then
          read_line (Filename.concat git (String.sub line 5 (String.length line - 5)))
        else Some line
      | None ->
        let parent = Filename.dirname dir in
        if parent = dir then None else find parent (depth + 1)
  in
  match find (Sys.getcwd ()) 0 with
  | Some sha when sha <> "" -> sha
  | _ -> "unknown"

let measure_generators sim gens ~warmup ~window =
  let t0 = Sim.now sim in
  ignore (Sim.run ~until:(Time.add t0 warmup) sim);
  List.iter Load_gen.mark_measurement_start gens;
  ignore (Sim.run ~until:(Time.add t0 (Time.add warmup window)) sim);
  List.iter Load_gen.freeze_window gens;
  (* Short drain so in-flight tails land in the histograms. *)
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 20)) sim)
