open Reflex_engine
open Reflex_client
open Reflex_stats
open Reflex_telemetry
open Reflex_faults

(* The resilience acceptance scenario: the Fig-6-style multi-tenant
   setup (two dataplane threads, two LC tenants, two BE write floods)
   run under the scripted fault plan — die 0 fails at 2s for 2s, a GC
   storm runs 5s..6s, the link flaps at 8s for 500ms — with client
   retries armed on the LC tenants and telemetry recording fault marks.
   The timeline is cut into 500ms buckets and each bucket reports the
   per-tenant read p95, so the table shows latency climbing inside the
   fault windows and returning to the SLO outside them.  Quick mode
   compresses the whole timeline (and the plan) by 10x. *)

type bucket_row = {
  cb_start_ms : float;
  cb_faults : string;  (** labels of plan windows overlapping the bucket; "-" when none *)
  cb_clean : bool;
      (** no fault window (plus one bucket of settle padding after
          recovery) overlaps — the buckets held against the SLO *)
  cb_lc1_p95_us : float;  (** NaN when the bucket saw no read completions *)
  cb_lc2_p95_us : float;
  cb_be_kiops : float;
}

type result = {
  telemetry : Telemetry.t;
  plan : Fault_plan.t;
  rows : bucket_row list;
  lc1_slo_us : float;
  lc2_slo_us : float;
  injected : int;
  recovered : int;
  retries : int;  (** re-issued attempts across LC clients *)
  timeouts : int;  (** per-attempt deadline expiries *)
  timeout_errors : int;  (** Timed_out completions (retry budget exhausted) *)
  lc_issued : int;
  retry_policy : Retry.policy;
}

let scale_of = function Common.Quick -> 0.1 | Common.Full -> 1.0
let n_buckets = 20

(* Retry policy for the chaos clients.  The per-attempt deadline (20ms)
   is far above the healthy p99 but below the flap duration, and the
   worst-case budget (~65ms) spans the quick-mode flap — so most
   requests issued inside a short flap survive on a later attempt, while
   a long flap produces bounded, counted give-ups.  Amplification is
   capped at 3 attempts per op: with LC reservations well above the
   offered rates, the post-flap zombie backlog drains within one bucket
   instead of feeding a retry storm. *)
let chaos_retry =
  Retry.validate
    {
      Retry.timeout = Time.ms 20;
      max_retries = 2;
      backoff_base = Time.ms 1;
      backoff_mult = 4.0;
      backoff_max = Time.ms 20;
      jitter = 0.2;
    }

let run ?(mode = Common.Quick) ?(seed = 42L) () =
  let scale = scale_of mode in
  let telemetry = Telemetry.create ~span_capacity:(1 lsl 19) () in
  let w = Common.make_reflex ~n_threads:2 ~telemetry ~seed () in
  let sim = w.Common.sim in
  let plan = Fault_plan.scripted ~scale () in
  let timeline = Time.scale (Time.sec 10) scale in
  let bucket = Time.scale (Time.ms 500) scale in
  let retry = chaos_retry in
  (* Two LC tenants with distinct SLOs, retries armed; two BE write
     floods (no retry — the paper's fire-and-wait client).  Offered LC
     rates sit well under the reservations so recovery from a fault
     window is drain-limited, not reservation-limited. *)
  let lc_specs =
    [ (1, 500, 150_000, 100, 20_000.0, 1.0); (2, 1000, 75_000, 90, 10_000.0, 0.9) ]
  in
  let lc =
    List.map
      (fun (tenant, latency_us, iops, read_pct, rate, read_ratio) ->
        let client =
          Common.client_of w
            ~slo:(Common.lc_slo ~latency_us ~iops ~read_pct)
            ~retry
            ~retry_seed:(Int64.add seed (Int64.of_int (1000 + tenant)))
            ~tenant ()
        in
        let g =
          Load_gen.open_loop sim ~client ~pacing:`Cbr ~mix:`Deterministic ~rate ~read_ratio
            ~bytes:4096 ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (17 + tenant)))
            ()
        in
        (tenant, client, g))
      lc_specs
  in
  let be =
    List.init 2 (fun i ->
        let tenant = 101 + i in
        let client = Common.client_of w ~slo:(Common.be_slo ~read_pct:10 ()) ~tenant () in
        let g =
          Load_gen.closed_loop sim ~client ~depth:32 ~read_ratio:0.1 ~bytes:4096 ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (91 + i)))
            ()
        in
        (tenant, client, g))
  in
  let gens = List.map (fun (_, _, g) -> g) (lc @ be) in
  let tgt =
    Injector.target ~sim ~fabric:w.Common.fabric ~server:w.Common.server
      ~gens:(Array.of_list gens) ~telemetry ()
  in
  let inj = Injector.arm ~seed:(Int64.add seed 7L) tgt ~plan in
  let overlaps ~b0 ~b1 ~pad (wd : Fault_plan.window) =
    let stop = Time.add (Time.add wd.at wd.duration) pad in
    Time.(wd.at < b1) && Time.(b0 < stop)
  in
  let lc1_gen, lc2_gen =
    match lc with [ (_, _, a); (_, _, b) ] -> (a, b) | _ -> assert false
  in
  let rows = ref [] in
  for i = 0 to n_buckets - 1 do
    let b0 = Time.scale bucket (float_of_int i) in
    let b1 = Time.scale bucket (float_of_int (i + 1)) in
    List.iter Load_gen.mark_measurement_start gens;
    ignore (Sim.run ~until:b1 sim);
    let labels =
      List.filter (overlaps ~b0 ~b1 ~pad:Time.zero) plan
      |> List.map (fun (wd : Fault_plan.window) -> Fault_plan.label wd.fault)
    in
    rows :=
      {
        cb_start_ms = Time.to_float_ms b0;
        cb_faults = (if labels = [] then "-" else String.concat "," labels);
        cb_clean = not (List.exists (overlaps ~b0 ~b1 ~pad:bucket) plan);
        cb_lc1_p95_us = Load_gen.p95_read_us lc1_gen;
        cb_lc2_p95_us = Load_gen.p95_read_us lc2_gen;
        cb_be_kiops =
          List.fold_left (fun a (_, _, g) -> a +. Load_gen.achieved_iops g) 0.0 be /. 1e3;
      }
      :: !rows
  done;
  (* Drain retry timers and in-flight tails past the timeline end. *)
  ignore (Sim.run sim);
  let sum_c f = List.fold_left (fun a (_, c, _) -> a + f c) 0 lc in
  {
    telemetry;
    plan;
    rows = List.rev !rows;
    lc1_slo_us = 500.0;
    lc2_slo_us = 1000.0;
    injected = Injector.injected inj;
    recovered = Injector.recovered inj;
    retries = sum_c Client_lib.retries;
    timeouts = sum_c Client_lib.timeouts;
    timeout_errors = List.fold_left (fun a g -> a + Load_gen.timeout_errors g) 0 gens;
    lc_issued = List.fold_left (fun a (_, _, g) -> a + Load_gen.issued g) 0 lc;
    retry_policy = retry;
  }

(* Worst clean-bucket p95 per LC tenant (NaN-free; buckets without read
   completions are skipped). *)
let clean_worst r =
  let fold f =
    List.fold_left
      (fun acc b ->
        let v = f b in
        if b.cb_clean && not (Float.is_nan v) then Float.max acc v else acc)
      0.0 r.rows
  in
  (fold (fun b -> b.cb_lc1_p95_us), fold (fun b -> b.cb_lc2_p95_us))

let clean_ok r =
  let w1, w2 = clean_worst r in
  w1 <= r.lc1_slo_us && w2 <= r.lc2_slo_us

let retries_bounded r =
  let max_attempts = r.retry_policy.Retry.max_retries + 1 in
  r.retries <= r.lc_issued * r.retry_policy.Retry.max_retries
  && r.timeouts <= r.lc_issued * max_attempts

let to_table r =
  let t =
    Table.create ~title:"chaos: 500ms p95 buckets across the scripted fault plan (x0.1 in quick)"
      ~columns:[ "t (ms)"; "faults"; "LC1 p95 (us)"; "LC2 p95 (us)"; "BE KIOPS"; "clean" ]
  in
  let cell v = if Float.is_nan v then "-" else Table.cell_f v in
  List.iter
    (fun b ->
      Table.add_row t
        [
          Table.cell_f ~decimals:1 b.cb_start_ms;
          b.cb_faults;
          cell b.cb_lc1_p95_us;
          cell b.cb_lc2_p95_us;
          Table.cell_f b.cb_be_kiops;
          (if b.cb_clean then "yes" else "no");
        ])
    r.rows;
  t

let render_result r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Fault_plan.to_string r.plan);
  Buffer.add_string buf (Table.render (to_table r));
  let w1, w2 = clean_worst r in
  let cv name = Telemetry.counter_value (Telemetry.counter r.telemetry name) in
  Buffer.add_string buf "summary:\n";
  Buffer.add_string buf
    (Printf.sprintf "  fault windows injected/recovered: %d/%d (telemetry %d/%d)\n" r.injected
       r.recovered
       (int_of_float (cv "faults/injected"))
       (int_of_float (cv "faults/recovered")));
  Buffer.add_string buf
    (Printf.sprintf
       "  LC retries: %d, per-attempt timeouts: %d, timed-out completions: %d (telemetry \
        retries/timeouts %d/%d)\n"
       r.retries r.timeouts r.timeout_errors
       (int_of_float (cv "client/retries"))
       (int_of_float (cv "client/timeouts")));
  Buffer.add_string buf
    (Printf.sprintf "  retry budget per request <= %.2fms; retries bounded: %b\n"
       (Time.to_float_ms (Retry.worst_case_total r.retry_policy))
       (retries_bounded r));
  Buffer.add_string buf
    (Printf.sprintf
       "  clean-bucket worst p95: LC1 %.1fus (SLO %.0f), LC2 %.1fus (SLO %.0f) -> %s\n" w1
       r.lc1_slo_us w2 r.lc2_slo_us
       (if clean_ok r then "SLO HELD" else "SLO VIOLATED"))
  ;
  Buffer.add_string buf (Telemetry.faults_report r.telemetry);
  Buffer.contents buf

let render ?mode ?seed () = render_result (run ?mode ?seed ())

let debrief ?(mode = Common.Quick) ?(seed = 42L) () =
  let base = render ~mode ~seed () in
  let again = render ~mode ~seed () in
  let par = Runner.map ~jobs:2 (fun s -> render ~mode ~seed:s ()) [ seed; seed ] in
  let rerun_ok = String.equal base again in
  let par_ok = List.for_all (String.equal base) par in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf base;
  Buffer.add_string buf "determinism:\n";
  Buffer.add_string buf
    (Printf.sprintf "  same-seed rerun byte-identical: %b\n" rerun_ok);
  Buffer.add_string buf
    (Printf.sprintf "  serial vs --jobs 2 byte-identical: %b\n" par_ok);
  if not (rerun_ok && par_ok) then Buffer.add_string buf "  DETERMINISM FAILURE\n";
  Buffer.contents buf
