(** The rack-scale scheduling acceptance scenario ([reflex_sim rack]).

    Builds a rack of dozens of ReFlex servers ([Reflex_rack.Rack]) with
    thousands of Zipf-loaded latency-critical tenants (each holding a
    replica set on distinct servers) plus a deliberately {e uneven}
    best-effort soak, then:

    - {e bakeoff}: runs the same world once per balancing policy
      (random, round-robin, JSQ over probe-aged samples,
      power-of-two-choices, idealized centralized oracle) and renders
      the rack-wide SLO audit per policy: windowed p50/p95/p99,
      SLO-compliance fraction, per-server dispatch imbalance, and the
      reported gap from the oracle;
    - {e migration leg}: a replica-free rack where the tenants homed on
      one server drive far above their declared reservation; the skew
      detector ([Reflex_rack.Skew], over the same probe samples the
      balancers see) fires and {!Reflex_rack.Rack.rebalance} migrates
      the heaviest tenants away — the render shows migrations applied
      and the dispatch imbalance before vs after.

    {!debrief} re-renders with the same seed (serial, [--jobs 2], and
    the other event backend) and asserts byte-identical output. *)

open Reflex_rack
open Reflex_engine

(** Scenario scale — overridable via [run ~scale] so tests can drive a
    small coherent world (the defaults come from {!scale_of_mode}). *)
type scale = {
  s_servers : int;
  s_tenants : int;
  s_replicas : int;
  s_warmup : Time.t;
  s_window : Time.t;  (** measurement window after warmup *)
  s_settle : Time.t;  (** migration leg: detector arm -> measure gap *)
  s_total_kiops : float;  (** aggregate LC offered load *)
  s_hot_tenants : int;  (** migration leg: pinned heavy tenants *)
  s_hot_iops : int;  (** each heavy tenant's declared = offered rate *)
}

val scale_of_mode : Common.mode -> scale

(** One bakeoff row: windowed measurements for one policy. *)
type policy_row = {
  p_kind : Policy.kind;
  p_dispatched : int;  (** LC requests dispatched in the window *)
  p_completed : int;  (** LC completions landing in the window *)
  p_p50_us : float;
  p_p95_us : float;
  p_p99_us : float;
  p_slo_pct : float;  (** % of LC completions inside the SLO bound *)
  p_imbalance : float;  (** max/mean per-server dispatches (all traffic) *)
}

type migration_leg = {
  m_migrations : int;
  m_fires : int;  (** skew-detector firings *)
  m_imbalance_before : float;
  m_imbalance_after : float;
  m_p99_before_us : float;
  m_p99_after_us : float;
}

(** One distributed-tracing leg ([Reflex_rack_obs] armed end-to-end):
    per-hop attribution, exemplars, rollup/stitch artifacts, and the
    rack burn alert + forensic dump state. *)
type obs_leg = {
  o_congested : bool;  (** congested-link variant? *)
  o_traced : int;
  o_untiled : int;
  o_fallbacks : int;
  o_overflow : int;
  o_tiling_ok : bool;
  o_migrations : int;
  o_alert_fired : bool;
  o_dump_line : string;
  o_dominant : int option;  (** dominant SLO-violation component *)
  o_attribution : string;
  o_exemplars : string;
  o_lanes : string;
  o_stitch : string;  (** full cross-server span-tree stitching *)
  o_rollup_md5 : string;  (** digest of the merged Chrome trace *)
}

type result = {
  r_scale : scale;
  r_seed : int64;
  r_servers : int;
  r_tenants : int;  (** LC tenants placed (admission can trim) *)
  r_replicas : int;
  r_rows : policy_row list;  (** in {!Policy.all} order *)
  r_migration : migration_leg;
  r_obs : obs_leg list;  (** normal link, then congested link *)
}

val run : ?mode:Common.mode -> ?seed:int64 -> ?jobs:int -> ?scale:scale -> unit -> result

(** {1 Predicates (the render's PASS/FAIL lines)} *)

val po2c_beats_random : result -> bool

(** The oracle's SLO compliance is >= every other policy's. *)
val oracle_best : result -> bool

(** po2c p99 / oracle p99 — the reported price of probe staleness. *)
val oracle_gap : result -> float

val migrations_applied : result -> bool
val migration_helps : result -> bool

(** Every tracing leg tiled exactly with no slot overflow. *)
val obs_tiling_exact : result -> bool

(** The congested-link leg's dominant SLO-violation hop is ingress. *)
val obs_congested_blames_ingress : result -> bool

(** The rack burn-rate alert fired on the congested leg. *)
val obs_alert_fired : result -> bool

(** Both legs logged migrations for [Follows_from] stitching. *)
val obs_migrations_stitched : result -> bool

val ok : result -> bool

val render_result : result -> string

val render :
  ?mode:Common.mode -> ?seed:int64 -> ?jobs:int -> ?scale:scale -> unit -> string

(** One telemetry-armed po2c leg (probes, balancing decisions and
    migrations land in the flight recorder and gauges), for the CLI's
    [--prom-out]/[--trace-out]. *)
val export_leg : ?mode:Common.mode -> ?seed:int64 -> unit -> Reflex_telemetry.Telemetry.t

(** {!render} plus same-seed rerun, serial vs [--jobs 2], and heap vs
    wheel byte-identity checks. *)
val debrief : ?mode:Common.mode -> ?seed:int64 -> unit -> string
