(** The monitoring acceptance scenario ([reflex_sim monitor]).

    Runs the chaos world under the scripted fault plan with the
    {!Reflex_monitor.Monitor} pipeline armed and checks, in one
    deterministic render:

    - alerts fire under faults, every fired alert lands inside a
      settle-padded fault window, and each names the overlapping fault;
    - a clean control run produces {e zero} alert events;
    - a disabled-monitor run is byte-identical to a no-monitor run
      (and an enabled observer-only monitor leaves the world digest
      unchanged too);
    - an opt-in remediation binding (burn alert → capacity re-pricing)
      actually applies.

    {!debrief} re-renders with the same seed serially and under
    [Runner --jobs 2] and asserts byte-identical output — the alert
    timeline is part of the render, so this is the bit-reproducible
    alerting check. *)

open Reflex_engine
open Reflex_faults
open Reflex_monitor

type leg = {
  digest : string;
  monitor : Monitor.t;
  telemetry : Reflex_telemetry.Telemetry.t;
  plan : Fault_plan.t;
  injected : int;
  recovered : int;
}

type result = {
  faulted : leg;
  clean : leg;
  remediated : leg;
  digest_none : string;
  digest_disabled : string;
  fired : Alerts.event list;
  in_window : int;
  named : int;
  pad : Time.t;
  interval : Time.t;
}

val run : ?mode:Common.mode -> ?seed:int64 -> unit -> result

(** One clean (fault-free) monitored leg only — cheap enough to sweep
    seeds in the zero-alerts-on-clean-runs property test. *)
val run_clean : ?mode:Common.mode -> ?seed:int64 -> unit -> leg

val alerts_fired : result -> bool
val alerts_in_windows : result -> bool
val alerts_named : result -> bool
val clean_silent : result -> bool
val disabled_identical : result -> bool
val observer_identical : result -> bool
val remediation_applied : result -> bool
val ok : result -> bool

val render_result : result -> string
val render : ?mode:Common.mode -> ?seed:int64 -> unit -> string

(** [(prometheus page, chrome instant fragments, monitor)] of the
    faulted leg, for the CLI's [--prom-out]/[--trace-out]. *)
val exports : result -> string * string list * Monitor.t

(** {!render} plus same-seed rerun and serial-vs-parallel byte-identity
    checks. *)
val debrief : ?mode:Common.mode -> ?seed:int64 -> unit -> string
