open Reflex_engine
open Reflex_flash
open Reflex_stats

type row = { read_pct : int; offered_iops : float; achieved_iops : float; p95_read_us : float }

(* Each ratio sweeps load from light to just past its own saturation
   point, like the paper's per-curve ranges. *)
let rates_for ~read_pct mode =
  let upto top n = List.init n (fun i -> top *. float_of_int (i + 1) /. float_of_int n) in
  let top =
    match read_pct with
    | 100 -> 1_200_000.0
    | 99 -> 700_000.0
    | 95 -> 450_000.0
    | 90 -> 320_000.0
    | 75 -> 190_000.0
    | _ -> 110_000.0
  in
  upto top (match mode with Common.Quick -> 5 | Common.Full -> 10)

let run ?(mode = Common.Quick) () =
  let config =
    {
      Calibrate.default_config with
      duration = Common.window mode;
      warmup = Time.ms 50;
    }
  in
  (* Every (ratio, rate) point is its own seeded simulation: fan them out. *)
  let points =
    List.concat_map
      (fun read_pct -> List.map (fun rate -> (read_pct, rate)) (rates_for ~read_pct mode))
      [ 100; 99; 95; 90; 75; 50 ]
  in
  Runner.map
    (fun (read_pct, rate) ->
      let p =
        Calibrate.measure ~config Device_profile.device_a
          ~read_ratio:(float_of_int read_pct /. 100.0)
          ~bytes:4096 ~rate
      in
      {
        read_pct;
        offered_iops = rate;
        achieved_iops = p.Calibrate.achieved_iops;
        p95_read_us = p.Calibrate.p95_read_us;
      })
    points

let to_table rows =
  let t =
    Table.create ~title:"Figure 1: p95 read latency vs total IOPS (device A, 4KB)"
      ~columns:[ "read%"; "offered KIOPS"; "achieved KIOPS"; "p95 read (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.read_pct;
          Table.cell_f (r.offered_iops /. 1e3);
          Table.cell_f (r.achieved_iops /. 1e3);
          Table.cell_f r.p95_read_us;
        ])
    rows;
  t
