open Reflex_engine
open Reflex_client
open Reflex_telemetry
open Reflex_faults
open Reflex_monitor
module Flight = Reflex_obs.Flight
module Profiler = Reflex_obs.Profiler

(* Observability acceptance scenario: the chaos world (two dataplane
   threads, two LC tenants with retries, two BE write floods, scripted
   fault plan) with the full lib/obs stack armed —

   - the always-on flight recorder, attached before the world is built
     so the scheduler round and dataplane cycle record into it;
   - the monitor, whose fired alerts freeze forensic flight dumps;
   - the continuous cost profiler, with the whole [Sim.run] loop scoped
     under the Engine bucket.

   The deterministic render covers the fault plan, the monitor report
   (including the dump summary), the retry span trees reconstructed
   from the client's Follows_from links, and the digest of the first
   dump's JSON debrief.  Profiler output is host wall time and is kept
   strictly out of the render — [profile_report] exposes it separately
   for the CLI.

   [debrief] re-runs the scenario and asserts the first dump (trigger
   alert, fault windows, every record) is byte-identical across a
   same-seed rerun, serial vs [Runner --jobs 2], and heap vs wheel
   event backends, and that a run with a present-but-disarmed recorder
   ([Flight.create ~enabled:false]) renders identically to one with no
   recorder attached at all. *)

let scale_of = function Common.Quick -> 0.1 | Common.Full -> 1.0
let interval = Time.ms 1

let obs_retry =
  Retry.validate
    {
      Retry.timeout = Time.ms 20;
      max_retries = 2;
      backoff_base = Time.ms 1;
      backoff_mult = 4.0;
      backoff_max = Time.ms 20;
      jitter = 0.2;
    }

type result = {
  monitor : Monitor.t;
  telemetry : Telemetry.t;
  profiler : Profiler.t;
  plan : Fault_plan.t;
  retries : int;  (** summed client re-issues *)
  digest : string;  (** server counters + per-generator stats *)
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* [flight = `Armed] attaches a live recorder, [`Inert] a created-but-
   disabled one, [`None] leaves the shared disabled instance — the last
   two must produce byte-identical renders. *)
let run ?(mode = Common.Quick) ?(seed = 42L) ?(flight = `Armed) ?(profile = false) () =
  let scale = scale_of mode in
  let telemetry = Telemetry.create ~span_capacity:(1 lsl 19) () in
  (match flight with
  | `Armed -> Telemetry.set_flight telemetry (Flight.create ())
  | `Inert -> Telemetry.set_flight telemetry (Flight.create ~enabled:false ())
  | `None -> ());
  let profiler = if profile then Profiler.create () else Profiler.disabled in
  if profile then Telemetry.set_profiler telemetry profiler;
  let w = Common.make_reflex ~n_threads:2 ~telemetry ~seed () in
  let sim = w.Common.sim in
  let plan = Fault_plan.scripted ~scale () in
  let timeline = Time.scale (Time.sec 10) scale in
  let monitor =
    Monitor.create ~interval ~capacity:4096 ~target:0.99 ~burn_short:(2, 10.0)
      ~burn_long:(10, 5.0) ~z_thresh:3.0 ~cooldown:(Time.ms 50)
      ~fault_lookback:(Time.scale (Time.sec 1) scale) ~dump_window:(Time.ms 5)
      ~server:w.Common.server ~telemetry ()
  in
  Monitor.start monitor sim ();
  let lc_specs =
    [ (1, 500, 150_000, 100, 20_000.0, 1.0); (2, 1000, 75_000, 90, 10_000.0, 0.9) ]
  in
  let lc =
    List.map
      (fun (tenant, latency_us, iops, read_pct, rate, read_ratio) ->
        let client =
          Common.client_of w
            ~slo:(Common.lc_slo ~latency_us ~iops ~read_pct)
            ~retry:obs_retry
            ~retry_seed:(Int64.add seed (Int64.of_int (1000 + tenant)))
            ~tenant ()
        in
        let g =
          Load_gen.open_loop sim ~client ~pacing:`Cbr ~mix:`Deterministic ~rate ~read_ratio
            ~bytes:4096 ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (17 + tenant)))
            ()
        in
        (tenant, client, g))
      lc_specs
  in
  let be =
    List.init 2 (fun i ->
        let tenant = 101 + i in
        let client = Common.client_of w ~slo:(Common.be_slo ~read_pct:10 ()) ~tenant () in
        let g =
          Load_gen.closed_loop sim ~client ~depth:32 ~read_ratio:0.1 ~bytes:4096
            ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (91 + i)))
            ()
        in
        (tenant, client, g))
  in
  let gens = List.map (fun (_, _, g) -> g) (lc @ be) in
  let tgt =
    Injector.target ~sim ~fabric:w.Common.fabric ~server:w.Common.server
      ~gens:(Array.of_list gens) ~telemetry ()
  in
  ignore (Injector.arm ~seed:(Int64.add seed 7L) tgt ~plan);
  Profiler.enter profiler Profiler.Subsystem.Engine;
  ignore (Sim.run ~until:timeline sim);
  ignore (Sim.run sim);
  Profiler.leave profiler Profiler.Subsystem.Engine;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "completed=%d tokens=%.3f threads=%d\n"
       (Reflex_core.Server.requests_completed w.Common.server)
       (Reflex_core.Server.tokens_spent w.Common.server)
       (Reflex_core.Server.active_threads w.Common.server));
  List.iter
    (fun (tenant, _, g) ->
      Buffer.add_string buf
        (Printf.sprintf "t%d issued=%d iops=%.1f p95r=%.2f\n" tenant (Load_gen.issued g)
           (Load_gen.achieved_iops g) (Load_gen.p95_read_us g)))
    (lc @ be);
  {
    monitor;
    telemetry;
    profiler;
    plan;
    retries = List.fold_left (fun acc (_, c, _) -> acc + Client_lib.retries c) 0 lc;
    digest = Buffer.contents buf;
  }

(* {1 Views over one run} *)

let dumps r = Monitor.flight_dumps r.monitor

let first_debrief r =
  match dumps r with [] -> None | d :: _ -> Some (Monitor.dump_debrief d)

let first_chrome r =
  match dumps r with [] -> None | d :: _ -> Some (Monitor.dump_chrome_json d)

(* {1 Acceptance checks} *)

let dump_captured r =
  match dumps r with
  | [] -> false
  | d :: _ -> Flight.snap_length d.Monitor.d_snapshot > 0

(* The debrief must name its trigger alert and carry the fault windows
   active around it. *)
let dump_names_alert r =
  match dumps r with
  | [] -> false
  | d :: _ ->
    let j = Monitor.dump_debrief d in
    d.Monitor.d_rule <> "" && contains_sub j d.Monitor.d_rule
    && contains_sub j "\"trigger\":{"

let dump_names_fault r =
  match first_debrief r with
  | None -> false
  | Some j ->
    List.exists (fun (w : Fault_plan.window) -> contains_sub j (Fault_plan.label w.fault)) r.plan

let links_recorded r = r.retries = 0 || Telemetry.links r.telemetry <> []

(* {1 Render} *)

let render_result r =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Fault_plan.to_string r.plan);
  Buffer.add_string buf (Monitor.report r.monitor);
  Buffer.add_string buf (Trace_export.retry_tree_report r.telemetry);
  Buffer.add_string buf (Printf.sprintf "client retries: %d\n" r.retries);
  (match first_debrief r with
  | None -> Buffer.add_string buf "flight dump: NONE\n"
  | Some j ->
    Buffer.add_string buf
      (Printf.sprintf "flight dump: %d bytes, md5 %s\n" (String.length j)
         (Digest.to_hex (Digest.string j))));
  Buffer.add_string buf "acceptance:\n";
  let check name v =
    Buffer.add_string buf (Printf.sprintf "  %-44s %s\n" name (if v then "PASS" else "FAIL"))
  in
  check "alert-triggered flight dump captured" (dump_captured r);
  check "dump names its trigger alert" (dump_names_alert r);
  check "dump carries the active fault window" (dump_names_fault r);
  check "retry attempts linked into span trees" (links_recorded r);
  Buffer.contents buf

let render ?mode ?seed () = render_result (run ?mode ?seed ())

let ok r = dump_captured r && dump_names_alert r && dump_names_fault r && links_recorded r

(* {1 Determinism debrief} *)

let with_backend b f =
  let saved = Sim.get_default_backend () in
  Sim.set_default_backend b;
  Fun.protect ~finally:(fun () -> Sim.set_default_backend saved) f

let debrief ?(mode = Common.Quick) ?(seed = 42L) () =
  let base = run ~mode ~seed () in
  let base_render = render_result base in
  let base_dump = Option.value ~default:"" (first_debrief base) in
  let again = run ~mode ~seed () in
  let par =
    Runner.map ~jobs:2
      (fun s ->
        let r = run ~mode ~seed:s () in
        (render_result r, Option.value ~default:"" (first_debrief r)))
      [ seed; seed ]
  in
  let heap = with_backend Sim.Heap (fun () -> run ~mode ~seed ()) in
  let wheel = with_backend Sim.Wheel (fun () -> run ~mode ~seed ()) in
  let inert = run ~mode ~seed ~flight:`Inert () in
  let bare = run ~mode ~seed ~flight:`None () in
  let rerun_ok =
    String.equal base_render (render_result again)
    && String.equal base_dump (Option.value ~default:"" (first_debrief again))
  in
  let par_ok =
    List.for_all (fun (rr, dd) -> String.equal base_render rr && String.equal base_dump dd) par
  in
  let backend_ok =
    String.equal (render_result heap) (render_result wheel)
    && String.equal
         (Option.value ~default:"" (first_debrief heap))
         (Option.value ~default:"" (first_debrief wheel))
  in
  let inert_ok =
    String.equal (render_result inert) (render_result bare)
    && String.equal inert.digest bare.digest
  in
  let armed_inert_ok = String.equal base.digest inert.digest in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf base_render;
  Buffer.add_string buf "determinism:\n";
  Buffer.add_string buf (Printf.sprintf "  same-seed rerun dump byte-identical: %b\n" rerun_ok);
  Buffer.add_string buf (Printf.sprintf "  serial vs --jobs 2 dump byte-identical: %b\n" par_ok);
  Buffer.add_string buf (Printf.sprintf "  heap vs wheel dump byte-identical: %b\n" backend_ok);
  Buffer.add_string buf
    (Printf.sprintf "  disarmed recorder render == no recorder: %b\n" inert_ok);
  Buffer.add_string buf
    (Printf.sprintf "  armed recorder leaves world digest unchanged: %b\n" armed_inert_ok);
  let all = ok base && rerun_ok && par_ok && backend_ok && inert_ok && armed_inert_ok in
  Buffer.add_string buf (if all then "OBS OK\n" else "OBS FAILED\n");
  Buffer.contents buf

(* {1 Profiler view (host wall time — never part of the render)} *)

let profile_report r = Profiler.report r.profiler
