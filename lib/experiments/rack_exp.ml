open Reflex_engine
open Reflex_rack
module Hdr = Reflex_stats.Hdr_histogram
module Table = Reflex_stats.Table
module Telemetry = Reflex_telemetry.Telemetry
module Rack_obs = Reflex_rack_obs.Rack_obs
module Rack_rollup = Reflex_rack_obs.Rack_rollup
module Tsdb = Reflex_monitor.Tsdb
module Alerts = Reflex_monitor.Alerts

(* ------------------------------------------------------------------ *)
(* Scale                                                               *)
(* ------------------------------------------------------------------ *)

(* Per-server LC load is held at ~50K IOPS in both modes (the policies
   are differentiated by transient queueing, not saturation); Full grows
   the rack and the measurement window, not the per-server pressure. *)
type scale = {
  s_servers : int;
  s_tenants : int;
  s_replicas : int;
  s_warmup : Time.t;
  s_window : Time.t;
  s_settle : Time.t;  (* migration leg: detector arm -> measure gap *)
  s_total_kiops : float;  (* aggregate LC offered load *)
  s_hot_tenants : int;  (* migration leg: pinned heavy tenants *)
  s_hot_iops : int;  (* each heavy tenant's declared = offered rate *)
}

let scale_of_mode = function
  | Common.Quick ->
    {
      s_servers = 24;
      s_tenants = 2000;
      s_replicas = 3;
      s_warmup = Time.ms 4;
      s_window = Time.ms 16;
      s_settle = Time.ms 4;
      s_total_kiops = 1200.0;
      s_hot_tenants = 60;
      s_hot_iops = 500;
    }
  | Common.Full ->
    {
      s_servers = 32;
      s_tenants = 3000;
      s_replicas = 3;
      s_warmup = Time.ms 8;
      s_window = Time.ms 40;
      s_settle = Time.ms 6;
      s_total_kiops = 1600.0;
      s_hot_tenants = 80;
      s_hot_iops = 500;
    }

let probe_period = Time.us 250
let lc_latency_us = 300
let zipf_theta = 0.7

(* Deterministic Zipf-weighted per-tenant rates summing to [total]. *)
let zipf_rates ~n ~total =
  let w = Array.make n 0.0 in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    w.(i) <- float_of_int (i + 1) ** -.zipf_theta;
    sum := !sum +. w.(i)
  done;
  Array.map (fun x -> total *. x /. !sum) w

(* ------------------------------------------------------------------ *)
(* Result types                                                        *)
(* ------------------------------------------------------------------ *)

type policy_row = {
  p_kind : Policy.kind;
  p_dispatched : int;
  p_completed : int;
  p_p50_us : float;
  p_p95_us : float;
  p_p99_us : float;
  p_slo_pct : float;
  p_imbalance : float;
}

type migration_leg = {
  m_migrations : int;
  m_fires : int;
  m_imbalance_before : float;
  m_imbalance_after : float;
  m_p99_before_us : float;
  m_p99_after_us : float;
}

type obs_leg = {
  o_congested : bool;
  o_traced : int;
  o_untiled : int;
  o_fallbacks : int;
  o_overflow : int;
  o_tiling_ok : bool;
  o_migrations : int;
  o_alert_fired : bool;
  o_dump_line : string;
  o_dominant : int option;  (* dominant violation component rack-wide *)
  o_attribution : string;
  o_exemplars : string;
  o_lanes : string;
  o_stitch : string;
  o_rollup_md5 : string;
}

type result = {
  r_scale : scale;
  r_seed : int64;
  r_servers : int;
  r_tenants : int;
  r_replicas : int;
  r_rows : policy_row list;
  r_migration : migration_leg;
  r_obs : obs_leg list;  (* normal link, then congested link *)
}

(* ------------------------------------------------------------------ *)
(* World building                                                      *)
(* ------------------------------------------------------------------ *)

(* Constant-rate open-loop generator for one tenant: phase-shifted by a
   per-tenant PRNG draw so two thousand CBR streams do not tick in
   lockstep, with a fresh LBA draw per request. *)
let start_cbr sim rack ~tenant ~rate ~len ~t0 ~until =
  let prng = Prng.create (Int64.add (Int64.mul 1_000_003L (Int64.of_int tenant)) 0x2AC3L) in
  let period_us = 1e6 /. rate in
  let phase = Time.of_float_us (Prng.float prng *. period_us) in
  ignore
    (Sim.at sim (Time.add t0 phase) (fun () ->
         Sim.every sim ~every:(Time.of_float_us period_us) ~until (fun _ ->
             Rack.dispatch_read rack ~tenant
               ~lba:(Int64.of_int (Prng.int prng (1 lsl 22) * 8))
               ~len ())))

(* The uneven best-effort soak: server [i] carries a closed-loop BE
   tenant holding [4 * (i mod 4)] concurrent 4KB reads — zero on every
   fourth server, twelve on the heaviest.  Routed through the rack so
   the oracle's fresh counters see it just like the probes do.
   Registration is split from kickoff: registering drives the sim
   forward ([register_sync] slices), so it must happen before the
   experiment captures its start-of-load [t0]. *)
let register_be_soak rack ~sc =
  let regs = ref [] in
  for s = 0 to sc.s_servers - 1 do
    let conc = 4 * (s mod 4) in
    if conc > 0 then begin
      let id = 900_000 + s in
      match Rack.add_tenant_on rack ~id ~slo:(Common.be_slo ()) ~server:s with
      | `Rejected -> ()
      | `Placed _ -> regs := (id, s, conc) :: !regs
    end
  done;
  List.rev !regs

let start_be_soak sim rack ~regs ~until =
  List.iter
    (fun (id, s, conc) ->
      let prng = Prng.create (Int64.of_int (0xBE50 + s)) in
      let rec issue () =
        if Time.(Sim.now sim < until) then
          Rack.dispatch_read rack ~tenant:id
            ~lba:(Int64.of_int (Prng.int prng (1 lsl 22) * 8))
            ~len:65536 ~on_complete:(fun _ -> issue ()) ()
      in
      for _ = 1 to conc do
        issue ()
      done)
    regs

(* Per-server dispatch-count imbalance over a window: max/mean of the
   deltas ([infinity] degenerates to 1.0 on an idle window). *)
let imbalance ~before ~after =
  let n = Array.length before in
  let total = ref 0 and hot = ref 0 in
  for i = 0 to n - 1 do
    let d = after.(i) - before.(i) in
    total := !total + d;
    if d > !hot then hot := d
  done;
  if !total = 0 then 1.0 else float_of_int !hot *. float_of_int n /. float_of_int !total

(* ------------------------------------------------------------------ *)
(* Bakeoff leg: one world per policy                                   *)
(* ------------------------------------------------------------------ *)

let bakeoff_leg ~sc ~seed ~telemetry kind =
  let sim = Sim.create ~seed () in
  let rack =
    Rack.create sim ~n_servers:sc.s_servers ~policy:kind
      ~seed:(Int64.add seed 0x11L) ~telemetry ()
  in
  if Telemetry.enabled telemetry then Telemetry.start_sampler telemetry sim ();
  let rates = zipf_rates ~n:sc.s_tenants ~total:(sc.s_total_kiops *. 1e3) in
  let placed = ref [] in
  for i = 0 to sc.s_tenants - 1 do
    let id = i + 1 in
    let slo =
      Common.lc_slo ~latency_us:lc_latency_us
        ~iops:(int_of_float (ceil rates.(i)))
        ~read_pct:100
    in
    match Rack.add_tenant rack ~id ~slo ~replicas:sc.s_replicas with
    | `Placed _ -> placed := (id, rates.(i)) :: !placed
    | `Rejected -> ()
  done;
  let placed = List.rev !placed in
  let be_regs = register_be_soak rack ~sc in
  let t0 = Sim.now sim in
  let t_end = Time.add t0 (Time.add sc.s_warmup sc.s_window) in
  Sim.every sim ~every:probe_period ~until:t_end (fun _ -> Rack.sample_probes rack);
  start_be_soak sim rack ~regs:be_regs ~until:t_end;
  List.iter (fun (id, rate) -> start_cbr sim rack ~tenant:id ~rate ~len:1024 ~t0 ~until:t_end) placed;
  ignore (Sim.run ~until:(Time.add t0 sc.s_warmup) sim);
  let h0 = Hdr.copy (Rack.latency_hist rack) in
  let d0 = Rack.dispatched rack in
  let lc0 = Rack.lc_dispatched rack in
  let ok0 = Rack.slo_ok rack and tot0 = Rack.slo_total rack in
  ignore (Sim.run ~until:t_end sim);
  let hw = Hdr.diff (Hdr.copy (Rack.latency_hist rack)) ~since:h0 in
  let ok = Rack.slo_ok rack - ok0 and tot = Rack.slo_total rack - tot0 in
  ( List.length placed,
    {
      p_kind = kind;
      p_dispatched = Rack.lc_dispatched rack - lc0;
      p_completed = Hdr.count hw;
      p_p50_us = Hdr.percentile_us hw 50.0;
      p_p95_us = Hdr.percentile_us hw 95.0;
      p_p99_us = Hdr.percentile_us hw 99.0;
      p_slo_pct = (if tot = 0 then 0.0 else 100.0 *. float_of_int ok /. float_of_int tot);
      p_imbalance = imbalance ~before:d0 ~after:(Rack.dispatched rack);
    } )

(* ------------------------------------------------------------------ *)
(* Migration leg                                                       *)
(* ------------------------------------------------------------------ *)

(* Replica-free rack (every tenant is homed, not balanced): a crowd of
   small honest tenants is placed normally, then [s_hot_tenants] heavy
   tenants are pinned onto one server — the correlated hot spot
   placement never saw.  Phase A measures the dispatch imbalance with
   the detector disarmed; the detector is then armed, fires on the
   probe-visible depth skew and migrates the heaviest tenants away; a
   settle gap later phase B measures again. *)
let migration_leg ~sc ~seed =
  let sim = Sim.create ~seed:(Int64.add seed 0x99L) () in
  let rack =
    Rack.create sim ~n_servers:sc.s_servers ~policy:Policy.Po2c
      ~seed:(Int64.add seed 0x33L) ()
  in
  let base_slo = Common.lc_slo ~latency_us:lc_latency_us ~iops:100 ~read_pct:100 in
  let crowd = ref [] in
  for i = 0 to sc.s_tenants - 1 do
    let id = i + 1 in
    match Rack.add_tenant rack ~id ~slo:base_slo ~replicas:1 with
    | `Placed _ -> crowd := id :: !crowd
    | `Rejected -> ()
  done;
  let crowd = List.rev !crowd in
  let hot = Rack.tenant_home rack ~tenant:(List.hd crowd) in
  let hot_slo =
    Common.lc_slo ~latency_us:lc_latency_us ~iops:sc.s_hot_iops ~read_pct:100
  in
  let heavies = ref [] in
  for k = 0 to sc.s_hot_tenants - 1 do
    let id = 500_000 + k in
    match Rack.add_tenant_on rack ~id ~slo:hot_slo ~server:hot with
    | `Placed _ -> heavies := id :: !heavies
    | `Rejected -> ()
  done;
  let heavies = List.rev !heavies in
  let t0 = Sim.now sim in
  let span = Time.add sc.s_warmup (Time.add sc.s_window (Time.add sc.s_settle sc.s_window)) in
  let t_end = Time.add t0 span in
  let sk = Skew.create ~cooldown:(Time.us 500) () in
  let armed = ref false in
  Sim.every sim ~every:probe_period ~until:t_end (fun now ->
      Rack.sample_probes rack;
      if !armed then
        match Skew.observe sk ~now ~depths:(Rack.sampled_depths rack) with
        | None -> ()
        | Some hot_srv -> (
          match Rack.hottest_tenant_on rack ~server:hot_srv with
          | None -> ()
          | Some victim -> ignore (Rack.rebalance rack ~tenant:victim)));
  List.iter (fun id -> start_cbr sim rack ~tenant:id ~rate:100.0 ~len:1024 ~t0 ~until:t_end) crowd;
  List.iter
    (fun id ->
      start_cbr sim rack ~tenant:id ~rate:(float_of_int sc.s_hot_iops) ~len:1024 ~t0
        ~until:t_end)
    heavies;
  ignore (Sim.run ~until:(Time.add t0 sc.s_warmup) sim);
  let da0 = Rack.dispatched rack in
  let ha0 = Hdr.copy (Rack.latency_hist rack) in
  ignore (Sim.run ~until:(Time.add t0 (Time.add sc.s_warmup sc.s_window)) sim);
  let da1 = Rack.dispatched rack in
  let ha = Hdr.diff (Hdr.copy (Rack.latency_hist rack)) ~since:ha0 in
  (* Arm the detector only now: phase A is the uncorrected baseline. *)
  armed := true;
  ignore (Sim.run ~until:(Time.sub t_end sc.s_window) sim);
  let db0 = Rack.dispatched rack in
  let hb0 = Hdr.copy (Rack.latency_hist rack) in
  ignore (Sim.run ~until:t_end sim);
  let hb = Hdr.diff (Hdr.copy (Rack.latency_hist rack)) ~since:hb0 in
  {
    m_migrations = Rack.migrations rack;
    m_fires = Skew.fires sk;
    m_imbalance_before = imbalance ~before:da0 ~after:da1;
    m_imbalance_after = imbalance ~before:db0 ~after:(Rack.dispatched rack);
    m_p99_before_us = Hdr.percentile_us ha 99.0;
    m_p99_after_us = Hdr.percentile_us hb 99.0;
  }

(* ------------------------------------------------------------------ *)
(* Tracing leg                                                         *)
(* ------------------------------------------------------------------ *)

(* A small po2c rack with the distributed tracer armed end-to-end:
   per-hop attribution histograms, worst-K exemplars, the rack burn-rate
   alert and its forensic dump, and the cross-server rollup/stitch
   artifacts.  Two variants share one shape: the normal link (sub-us
   ports — tracing shows a service/queue-dominated rack and the alert
   stays quiet) and a congested link (150us switch + 120-270us ports —
   every request blows the 300us SLO on the wire, the dominant-hop table
   points at ingress, and the burn alert fires a rack-wide dump).  A
   forced rebalance of the two heaviest tenants mid-warmup seeds the
   migration log so the stitch shows [Follows_from] parents. *)
let obs_leg ~sc ~seed ~congested =
  let n = min sc.s_servers 8 in
  let tenants = max 16 (min 64 (sc.s_tenants / 25)) in
  let warmup = Time.ms 2 and window = Time.ms 8 in
  let sim = Sim.create ~seed:(Int64.add seed 0x0B5L) () in
  let link =
    if congested then
      Link.create ~switch:(Time.us 150) ~port_base:(Time.us 120)
        ~port_spread:(Time.us 150) ~n ()
    else Link.create ~n ()
  in
  let rack =
    Rack.create sim ~n_servers:n ~policy:Policy.Po2c ~link
      ~seed:(Int64.add seed 0x0B7L) ()
  in
  let obs = Rack_obs.create ~exemplars:3 rack in
  let tsdb = Tsdb.create () in
  let alerts = Alerts.create () in
  Rack_obs.wire_monitor obs ~tsdb ~alerts ();
  let rates = zipf_rates ~n:tenants ~total:(25e3 *. float_of_int n) in
  let placed = ref [] in
  for i = 0 to tenants - 1 do
    let id = i + 1 in
    let slo =
      Common.lc_slo ~latency_us:lc_latency_us
        ~iops:(int_of_float (ceil rates.(i)))
        ~read_pct:100
    in
    match Rack.add_tenant rack ~id ~slo ~replicas:(min sc.s_replicas n) with
    | `Placed _ -> placed := (id, rates.(i)) :: !placed
    | `Rejected -> ()
  done;
  let placed = List.rev !placed in
  let t0 = Sim.now sim in
  let span = Time.add warmup window in
  let t_end = Time.add t0 span in
  Sim.every sim ~every:probe_period ~until:t_end (fun _ -> Rack.sample_probes rack);
  Rack_obs.start_monitor obs ~tsdb ~alerts ~until:t_end ();
  List.iter
    (fun (id, rate) -> start_cbr sim rack ~tenant:id ~rate ~len:1024 ~t0 ~until:t_end)
    placed;
  (match placed with
  | (a, _) :: (b, _) :: _ ->
    ignore
      (Sim.at sim
         (Time.add t0 (Time.ms 1))
         (fun () ->
           ignore (Rack.rebalance rack ~tenant:a);
           ignore (Rack.rebalance rack ~tenant:b)))
  | _ -> ());
  ignore (Sim.run ~until:t_end sim);
  let now = Sim.now sim in
  let server_snaps = Rack_obs.snapshot_servers obs ~now ~window:span in
  let rack_snap = Rack_obs.snapshot_rack obs ~now ~window:span in
  let viol = Rack_obs.violations obs in
  let dominant =
    if Rack_obs.violation_total obs = 0 then None
    else begin
      let dom = ref 0 in
      Array.iteri (fun i v -> if v > viol.(!dom) then dom := i) viol;
      Some !dom
    end
  in
  let dump_line =
    match Rack_obs.dump obs with
    | None -> "  forensic dump: none\n"
    | Some d ->
      let events =
        Array.fold_left
          (fun acc s -> acc + Reflex_obs.Flight.snap_length s)
          (Reflex_obs.Flight.snap_length d.Rack_obs.d_rack_snap)
          d.Rack_obs.d_server_snaps
      in
      Printf.sprintf "  forensic dump: rule %s @ %.1f us, %d lane events frozen\n"
        d.Rack_obs.d_rule
        (Time.to_float_us d.Rack_obs.d_time)
        events
  in
  {
    o_congested = congested;
    o_traced = Rack_obs.traced obs;
    o_untiled = Rack_obs.untiled obs;
    o_fallbacks = Rack_obs.fallbacks obs;
    o_overflow = Rack_obs.slot_overflow obs;
    o_tiling_ok = Rack_obs.tiling_ok obs;
    o_migrations = List.length (Rack_obs.migrations obs);
    o_alert_fired = Alerts.fired_total alerts > 0;
    o_dump_line = dump_line;
    o_dominant = dominant;
    o_attribution = Rack_obs.attribution obs;
    o_exemplars = Rack_obs.render_exemplars obs;
    o_lanes = Rack_rollup.lane_summary ~server_snaps ~rack_snap;
    o_stitch = Rack_rollup.stitch ~server_snaps ~rack_snap;
    o_rollup_md5 = Digest.to_hex (Digest.string (Rack_rollup.chrome_trace ~server_snaps ~rack_snap));
  }

(* ------------------------------------------------------------------ *)
(* Run / predicates / render                                           *)
(* ------------------------------------------------------------------ *)

let run ?(mode = Common.Quick) ?(seed = 42L) ?jobs ?scale () =
  let sc = match scale with Some sc -> sc | None -> scale_of_mode mode in
  let legs =
    Runner.map ?jobs
      (fun kind -> bakeoff_leg ~sc ~seed ~telemetry:Telemetry.disabled kind)
      Policy.all
  in
  let placed = match legs with (n, _) :: _ -> n | [] -> 0 in
  {
    r_scale = sc;
    r_seed = seed;
    r_servers = sc.s_servers;
    r_tenants = placed;
    r_replicas = sc.s_replicas;
    r_rows = List.map snd legs;
    r_migration = migration_leg ~sc ~seed;
    r_obs =
      [ obs_leg ~sc ~seed ~congested:false; obs_leg ~sc ~seed ~congested:true ];
  }

let row r kind = List.find (fun p -> p.p_kind = kind) r.r_rows

let po2c_beats_random r = (row r Policy.Po2c).p_p99_us < (row r Policy.Random).p_p99_us

let oracle_best r =
  let o = (row r Policy.Oracle).p_slo_pct in
  List.for_all (fun p -> o >= p.p_slo_pct -. 1e-9) r.r_rows

let oracle_gap r =
  let o = (row r Policy.Oracle).p_p99_us in
  if o <= 0.0 then 1.0 else (row r Policy.Po2c).p_p99_us /. o

let migrations_applied r = r.r_migration.m_migrations > 0

let migration_helps r =
  r.r_migration.m_imbalance_after < r.r_migration.m_imbalance_before

(* Tracing predicates: every leg traced traffic and tiled exactly; the
   congested-link leg blames the wire (dominant hop = ingress) and fires
   the rack burn alert with a forensic dump; migrations were stitched. *)
let obs_tiling_exact r =
  r.r_obs <> [] && List.for_all (fun o -> o.o_tiling_ok && o.o_overflow = 0) r.r_obs

let obs_congested_blames_ingress r =
  List.exists (fun o -> o.o_congested && o.o_dominant = Some 1) r.r_obs

let obs_alert_fired r =
  List.exists (fun o -> o.o_congested && o.o_alert_fired) r.r_obs

let obs_migrations_stitched r = List.for_all (fun o -> o.o_migrations > 0) r.r_obs

let ok r =
  po2c_beats_random r && oracle_best r && migrations_applied r && migration_helps r
  && obs_tiling_exact r && obs_congested_blames_ingress r && obs_alert_fired r
  && obs_migrations_stitched r

let render_result r =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "Rack bakeoff: %d servers, %d LC tenants (R=%d, Zipf %.1f), uneven BE soak, seed %Ld\n\n"
    r.r_servers r.r_tenants r.r_replicas zipf_theta r.r_seed;
  let t =
    Table.create ~title:"Policy bakeoff (windowed, rack-wide)"
      ~columns:
        [ "policy"; "dispatched"; "completed"; "p50 us"; "p95 us"; "p99 us"; "SLO %"; "imbalance" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Policy.kind_name p.p_kind;
          Table.cell_i p.p_dispatched;
          Table.cell_i p.p_completed;
          Table.cell_f ~decimals:1 p.p_p50_us;
          Table.cell_f ~decimals:1 p.p_p95_us;
          Table.cell_f ~decimals:1 p.p_p99_us;
          Table.cell_f ~decimals:2 p.p_slo_pct;
          Table.cell_f ~decimals:2 p.p_imbalance;
        ])
    r.r_rows;
  Buffer.add_string buf (Table.render t);
  Printf.bprintf buf "\n  po2c pays %.2fx the oracle's p99 for probe staleness\n\n"
    (oracle_gap r);
  let m = r.r_migration in
  Printf.bprintf buf
    "Migration leg (R=1, %d pinned heavies): %d skew firings, %d migrations\n"
    r.r_scale.s_hot_tenants m.m_fires m.m_migrations;
  Printf.bprintf buf "  dispatch imbalance %.2f -> %.2f, LC p99 %.1f -> %.1f us\n\n"
    m.m_imbalance_before m.m_imbalance_after m.m_p99_before_us m.m_p99_after_us;
  List.iter
    (fun o ->
      Printf.bprintf buf "Rack tracing (%s link): %d traced, %d stamp fallbacks, %d migrations\n"
        (if o.o_congested then "congested" else "normal")
        o.o_traced o.o_fallbacks o.o_migrations;
      Buffer.add_string buf o.o_attribution;
      Buffer.add_string buf o.o_exemplars;
      Buffer.add_string buf o.o_lanes;
      (* first span tree with a Follows_from parent, if the window kept one *)
      (let lines = String.split_on_char '\n' o.o_stitch in
       let rec skip = function
         | rid_line :: ff :: rest
           when String.length rid_line > 3
                && String.sub rid_line 0 4 = "rid "
                && String.length ff > 14
                && String.sub ff 0 15 = "  follows_from " ->
           Printf.bprintf buf "  stitched span tree:\n    %s\n    %s\n" rid_line ff;
           let rec dump = function
             | l :: rest when String.length l > 2 && String.sub l 0 2 = "  " ->
               Printf.bprintf buf "    %s\n" l;
               dump rest
             | _ -> ()
           in
           dump rest
         | _ :: rest -> skip rest
         | [] -> ()
       in
       skip lines);
      Printf.bprintf buf "  rollup md5 %s, stitch md5 %s (%d bytes), alert fired: %b\n%s\n"
        o.o_rollup_md5
        (Digest.to_hex (Digest.string o.o_stitch))
        (String.length o.o_stitch) o.o_alert_fired o.o_dump_line)
    r.r_obs;
  let check name v = Printf.bprintf buf "  %-44s %s\n" name (if v then "PASS" else "FAIL") in
  check "po2c beats random on p99" (po2c_beats_random r);
  check "oracle's SLO compliance is the best" (oracle_best r);
  check "skew detector migrated tenants" (migrations_applied r);
  check "migration reduced dispatch imbalance" (migration_helps r);
  check "hop deltas tile e2e in every traced leg" (obs_tiling_exact r);
  check "congested link's dominant hop is ingress" (obs_congested_blames_ingress r);
  check "rack burn alert fired on the congested leg" (obs_alert_fired r);
  check "migrations stitched into the trace logs" (obs_migrations_stitched r);
  Printf.bprintf buf "\n%s\n" (if ok r then "RACK OK" else "RACK FAILED");
  Buffer.contents buf

let render ?mode ?seed ?jobs ?scale () = render_result (run ?mode ?seed ?jobs ?scale ())

let export_leg ?(mode = Common.Quick) ?(seed = 42L) () =
  let sc = scale_of_mode mode in
  let telemetry = Telemetry.create () in
  Telemetry.set_flight telemetry (Reflex_obs.Flight.create ());
  ignore (bakeoff_leg ~sc ~seed ~telemetry Policy.Po2c);
  telemetry

let debrief ?(mode = Common.Quick) ?(seed = 42L) () =
  let buf = Buffer.create 8192 in
  let base = render ~mode ~seed ~jobs:1 () in
  Buffer.add_string buf base;
  let again = render ~mode ~seed ~jobs:1 () in
  let par = render ~mode ~seed ~jobs:2 () in
  let saved = Sim.get_default_backend () in
  let other = match saved with Sim.Heap -> Sim.Wheel | Sim.Wheel -> Sim.Heap in
  Sim.set_default_backend other;
  let cross =
    Fun.protect
      ~finally:(fun () -> Sim.set_default_backend saved)
      (fun () -> render ~mode ~seed ~jobs:1 ())
  in
  Printf.bprintf buf "\nDeterminism:\n";
  Printf.bprintf buf "  same-seed rerun byte-identical: %b\n" (String.equal base again);
  Printf.bprintf buf "  serial vs --jobs 2 byte-identical: %b\n" (String.equal base par);
  Printf.bprintf buf "  heap vs wheel backends byte-identical: %b\n" (String.equal base cross);
  if not (String.equal base again && String.equal base par && String.equal base cross)
  then Printf.bprintf buf "\nRACK DETERMINISM FAILURE\n";
  Buffer.contents buf
