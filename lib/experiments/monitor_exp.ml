open Reflex_engine
open Reflex_client
open Reflex_telemetry
open Reflex_faults
open Reflex_monitor

(* The monitoring acceptance scenario.

   Four legs over the chaos world (two dataplane threads, two LC
   tenants, two BE write floods; scripted fault plan: die fail, GC
   storm, link flap):

   1. FAULTED: monitor armed over the scripted plan.  Every fired alert
      must land inside a (settle-padded) fault window and its detail
      must name the overlapping fault(s).
   2. CLEAN: same world, no injector.  The monitor must stay perfectly
      silent — zero events.
   3. IDENTITY: the world digest (server counters + per-generator
      stats) of a run with a *disabled* monitor must be byte-identical
      to a run with no monitor at all; an *enabled* observer-only
      monitor must also leave the digest unchanged (daemon ticks never
      perturb simulation state).
   4. REMEDIATE: the faulted run again with the die-fail burn alert
      bound to capacity re-pricing, demonstrating the opt-in feedback
      loop (the remediation log must be non-empty and deterministic).

   The debrief re-runs the whole scenario with the same seed (serial
   and under Runner --jobs 2) and asserts the rendered output is
   byte-identical — the alert timeline is part of that output, so this
   is the "bit-reproducible alerts" acceptance check. *)

let scale_of = function Common.Quick -> 0.1 | Common.Full -> 1.0

type leg = {
  digest : string;  (** world digest: server counters + per-gen stats *)
  monitor : Monitor.t;
  telemetry : Telemetry.t;
  plan : Fault_plan.t;  (** [[]] when no faults injected *)
  injected : int;
  recovered : int;
}

type result = {
  faulted : leg;
  clean : leg;
  remediated : leg;
  digest_none : string;  (** no monitor at all *)
  digest_disabled : string;  (** ~enabled:false monitor *)
  fired : Alerts.event list;  (** faulted leg, Fired transitions only *)
  in_window : int;  (** fired events inside a padded fault window *)
  named : int;  (** fired events whose detail names a fault *)
  pad : Time.t;
  interval : Time.t;
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let interval = Time.ms 1

(* Settle padding after a fault window closes: the long burn window
   still sees in-fault traffic for 10 intervals, and the queued backlog
   takes up to one chaos bucket to drain.  Alerts fired inside the
   padded window count as in-window; the monitor names faults over the
   same lookback so those alerts still carry their cause. *)
let settle_pad scale = Time.add (Time.scale interval 10.0) (Time.scale (Time.sec 1) scale)

(* Burn thresholds for the scenario: target 0.99 with 2w@10x /\ 10w@5x
   means >= 20% of a 2-window span and >= 5% of a 10-window span must
   violate the SLO bound before the page fires -- far above the healthy
   tail (clean buckets hold p95 <= SLO, i.e. < 5% violations) and far
   below a fault window (p95 several times the bound). *)
let monitor_of ?(enabled = true) ~scale w =
  Monitor.create ~enabled ~interval ~capacity:4096 ~target:0.99 ~burn_short:(2, 10.0)
    ~burn_long:(10, 5.0) ~z_thresh:3.0 ~cooldown:(Time.ms 50)
    ~fault_lookback:(settle_pad scale) ~server:w.Common.server
    ~telemetry:w.Common.telemetry ()

(* One world, chaos-style load, optional faults, optional monitor. *)
let run_leg ~mode ~seed ~faults ~monitor:monitor_kind () =
  let scale = scale_of mode in
  let telemetry = Telemetry.create () in
  (* Always-on flight recorder: armed before the world is built (the
     scheduler and dataplane cache the handle), so alert edges trigger
     forensic dumps.  Records never feed simulation state, so every
     digest/identity check below is unaffected. *)
  Telemetry.set_flight telemetry (Reflex_obs.Flight.create ());
  let w = Common.make_reflex ~n_threads:2 ~telemetry ~seed () in
  let sim = w.Common.sim in
  let timeline = Time.scale (Time.sec 10) scale in
  let monitor =
    match monitor_kind with
    | `None -> Monitor.create ~enabled:false ~server:w.Common.server ~telemetry ()
    | `Disabled ->
      let m = Monitor.create ~enabled:false ~server:w.Common.server ~telemetry () in
      Monitor.start m sim ();
      m
    | `Enabled | `Remediate ->
      let m = monitor_of ~scale w in
      Monitor.start m sim ();
      if monitor_kind = `Remediate then begin
        (* Page-severity burn on tenant 1 -> re-derive capacity from
           device health; knee on tenant 2 -> log only. *)
        Monitor.bind m ~rule:"t1/burn" Remediate.Reprice_for_device;
        Monitor.bind m ~rule:"t2/burn" (Remediate.Log "acknowledged")
      end;
      m
  in
  let lc_specs =
    [ (1, 500, 150_000, 100, 20_000.0, 1.0); (2, 1000, 75_000, 90, 10_000.0, 0.9) ]
  in
  let lc =
    List.map
      (fun (tenant, latency_us, iops, read_pct, rate, read_ratio) ->
        let client =
          Common.client_of w ~slo:(Common.lc_slo ~latency_us ~iops ~read_pct) ~tenant ()
        in
        let g =
          Load_gen.open_loop sim ~client ~pacing:`Cbr ~mix:`Deterministic ~rate ~read_ratio
            ~bytes:4096 ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (17 + tenant)))
            ()
        in
        (tenant, client, g))
      lc_specs
  in
  let be =
    List.init 2 (fun i ->
        let tenant = 101 + i in
        let client = Common.client_of w ~slo:(Common.be_slo ~read_pct:10 ()) ~tenant () in
        let g =
          Load_gen.closed_loop sim ~client ~depth:32 ~read_ratio:0.1 ~bytes:4096
            ~until:timeline
            ~seed:(Int64.add seed (Int64.of_int (91 + i)))
            ()
        in
        (tenant, client, g))
  in
  let gens = List.map (fun (_, _, g) -> g) (lc @ be) in
  let plan, inj =
    if not faults then ([], None)
    else begin
      let plan = Fault_plan.scripted ~scale () in
      let tgt =
        Injector.target ~sim ~fabric:w.Common.fabric ~server:w.Common.server
          ~gens:(Array.of_list gens) ~telemetry ()
      in
      (plan, Some (Injector.arm ~seed:(Int64.add seed 7L) tgt ~plan))
    end
  in
  ignore (Sim.run ~until:timeline sim);
  ignore (Sim.run sim);
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "completed=%d tokens=%.3f threads=%d\n"
       (Reflex_core.Server.requests_completed w.Common.server)
       (Reflex_core.Server.tokens_spent w.Common.server)
       (Reflex_core.Server.active_threads w.Common.server));
  List.iter
    (fun (tenant, _, g) ->
      Buffer.add_string buf
        (Printf.sprintf "t%d issued=%d iops=%.1f p95r=%.2f\n" tenant (Load_gen.issued g)
           (Load_gen.achieved_iops g) (Load_gen.p95_read_us g)))
    (lc @ be);
  {
    digest = Buffer.contents buf;
    monitor;
    telemetry;
    plan;
    injected = (match inj with Some i -> Injector.injected i | None -> 0);
    recovered = (match inj with Some i -> Injector.recovered i | None -> 0);
  }

(* One clean (fault-free) leg only — the zero-alerts property test
   drives this across seeds without paying for the full scenario. *)
let run_clean ?(mode = Common.Quick) ?(seed = 42L) () =
  run_leg ~mode ~seed ~faults:false ~monitor:`Enabled ()

let run ?(mode = Common.Quick) ?(seed = 42L) () =
  let scale = scale_of mode in
  let faulted = run_leg ~mode ~seed ~faults:true ~monitor:`Enabled () in
  let clean = run_leg ~mode ~seed ~faults:false ~monitor:`Enabled () in
  let remediated = run_leg ~mode ~seed ~faults:true ~monitor:`Remediate () in
  let none = run_leg ~mode ~seed ~faults:true ~monitor:`None () in
  let disabled = run_leg ~mode ~seed ~faults:true ~monitor:`Disabled () in
  let interval = Monitor.interval faulted.monitor in
  let pad = settle_pad scale in
  let fired =
    List.filter (fun (e : Alerts.event) -> e.e_kind = Alerts.Fired)
      (Monitor.events faulted.monitor)
  in
  let in_fault_window time =
    List.exists
      (fun (wd : Fault_plan.window) ->
        Time.(wd.at <= time) && Time.(time <= Time.add (Time.add wd.at wd.duration) pad))
      faulted.plan
  in
  {
    faulted;
    clean;
    remediated;
    digest_none = none.digest;
    digest_disabled = disabled.digest;
    fired;
    in_window =
      List.length (List.filter (fun (e : Alerts.event) -> in_fault_window e.e_time) fired);
    named =
      List.length
        (List.filter (fun (e : Alerts.event) -> contains_sub e.e_detail "faults: ") fired);
    pad;
    interval;
  }

(* {1 Acceptance checks} *)

let alerts_fired r = List.length r.fired > 0
let alerts_in_windows r = r.in_window = List.length r.fired
let alerts_named r = r.named = List.length r.fired
let clean_silent r = Monitor.events r.clean.monitor = []
let disabled_identical r = String.equal r.digest_none r.digest_disabled

(* An observer-only monitor must not perturb the world either. *)
let observer_identical r = String.equal r.digest_none r.faulted.digest
let remediation_applied r = Monitor.remediation_log r.remediated.monitor <> []

let ok r =
  alerts_fired r && alerts_in_windows r && alerts_named r && clean_silent r
  && disabled_identical r && observer_identical r && remediation_applied r

let render_result r =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Fault_plan.to_string r.faulted.plan);
  Buffer.add_string buf (Monitor.report r.faulted.monitor);
  Buffer.add_string buf "acceptance:\n";
  let check name v = Buffer.add_string buf (Printf.sprintf "  %-44s %s\n" name (if v then "PASS" else "FAIL")) in
  Buffer.add_string buf
    (Printf.sprintf "  fault windows injected/recovered: %d/%d; alerts fired: %d\n"
       r.faulted.injected r.faulted.recovered (List.length r.fired));
  check "alerts fired under faults" (alerts_fired r);
  check
    (Printf.sprintf "all fired alerts inside fault windows (+%.0fms)" (Time.to_float_ms r.pad))
    (alerts_in_windows r);
  check "every fired alert names the overlapping fault" (alerts_named r);
  check "clean control run: zero alert events" (clean_silent r);
  check "disabled monitor run == no-monitor run" (disabled_identical r);
  check "enabled observer run == no-monitor run" (observer_identical r);
  check "remediation bindings applied" (remediation_applied r);
  Buffer.add_string buf "remediation leg:\n";
  List.iter
    (fun (time, rule, action, outcome) ->
      Buffer.add_string buf
        (Printf.sprintf "  %10.3fms %-24s %s -> %s\n" (Time.to_float_ms time) rule
           (Remediate.label action) outcome))
    (Monitor.remediation_log r.remediated.monitor);
  Buffer.add_string buf (if ok r then "MONITOR OK\n" else "MONITOR FAILED\n");
  Buffer.contents buf

let render ?mode ?seed () = render_result (run ?mode ?seed ())

(* Prometheus page + Chrome-trace fragments for the faulted leg (used
   by the CLI's --prom-out/--trace-out). *)
let exports r =
  ( Monitor.prometheus r.faulted.monitor,
    Monitor.chrome_instants r.faulted.monitor,
    r.faulted.monitor )

let debrief ?(mode = Common.Quick) ?(seed = 42L) () =
  let base = render ~mode ~seed () in
  let again = render ~mode ~seed () in
  let par = Runner.map ~jobs:2 (fun s -> render ~mode ~seed:s ()) [ seed; seed ] in
  let rerun_ok = String.equal base again in
  let par_ok = List.for_all (String.equal base) par in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf base;
  Buffer.add_string buf "determinism:\n";
  Buffer.add_string buf (Printf.sprintf "  same-seed rerun byte-identical: %b\n" rerun_ok);
  Buffer.add_string buf (Printf.sprintf "  serial vs --jobs 2 byte-identical: %b\n" par_ok);
  if not (rerun_ok && par_ok) then Buffer.add_string buf "  DETERMINISM FAILURE\n";
  Buffer.contents buf
