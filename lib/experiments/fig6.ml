open Reflex_engine
open Reflex_net
open Reflex_client
open Reflex_stats

type core_row = {
  cores : int;
  lc_kiops : float;
  be_kiops : float;
  ktokens_per_sec : float;
  lc_p95_worst_us : float;
}

type tenant_row = { server_cores : int; tenants : int; achieved_kiops : float; p95_us : float }

type conn_row = { iops_per_conn : int; conns : int; achieved_kiops : float; p95c_us : float }

(* ---------------- Figure 6a: core scaling ---------------- *)

let cores_point ~mode ~cores =
  let w = Common.make_reflex ~n_threads:cores () in
  let sim = w.Common.sim in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  (* One LC tenant per core: 20K IOPS at 90% reads under a 2ms SLO. *)
  let lc_gens =
    List.init cores (fun i ->
        let client =
          Common.client_of w
            ~slo:(Common.lc_slo ~latency_us:2000 ~iops:20_000 ~read_pct:90)
            ~tenant:(i + 1) ()
        in
        Load_gen.open_loop sim ~client ~pacing:`Cbr ~mix:`Deterministic ~rate:20_000.0
          ~read_ratio:0.9 ~bytes:4096 ~until
          ~seed:(Int64.of_int (61 + i))
          ())
  in
  (* Two best-effort tenants soak up the leftover bandwidth. *)
  let be_gens =
    List.init 2 (fun i ->
        let client = Common.client_of w ~slo:(Common.be_slo ~read_pct:80 ()) ~tenant:(100 + i) () in
        Load_gen.closed_loop sim ~client ~depth:96 ~read_ratio:0.8 ~bytes:4096 ~until
          ~seed:(Int64.of_int (81 + i))
          ())
  in
  let warmup = Time.ms 100 in
  let t0 = Sim.now sim in
  ignore (Sim.run ~until:(Time.add t0 warmup) sim);
  let tokens0 = Reflex_core.Server.tokens_spent w.Common.server in
  List.iter Load_gen.mark_measurement_start (lc_gens @ be_gens);
  let window = Common.window mode in
  ignore (Sim.run ~until:(Time.add t0 (Time.add warmup window)) sim);
  let tokens1 = Reflex_core.Server.tokens_spent w.Common.server in
  List.iter Load_gen.freeze_window (lc_gens @ be_gens);
  ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 20)) sim);
  let sum gens = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  {
    cores;
    lc_kiops = sum lc_gens /. 1e3;
    be_kiops = sum be_gens /. 1e3;
    ktokens_per_sec = (tokens1 -. tokens0) /. Time.to_float_sec window /. 1e3;
    lc_p95_worst_us = List.fold_left (fun a g -> Float.max a (Load_gen.p95_read_us g)) 0.0 lc_gens;
  }

let run_cores ?(mode = Common.Quick) () =
  let counts = Common.scale_points mode [ 1; 2; 4; 8; 12 ] [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ] in
  Runner.map (fun cores -> cores_point ~mode ~cores) counts

(* ---------------- Figure 6b: tenant scaling ---------------- *)

let tenants_point ~mode ~server_cores ~tenants =
  let w = Common.make_reflex ~n_threads:server_cores () in
  let sim = w.Common.sim in
  (* Client machines are shared: mutilate coordinates many threads over a
     handful of hosts. *)
  let hosts =
    Array.init 16 (fun i ->
        Fabric.add_host w.Common.fabric ~name:(Printf.sprintf "loadgen-%d" i)
          ~stack:Stack_model.ix_client)
  in
  let clients =
    List.init tenants (fun i ->
        let client =
          Client_lib.connect sim w.Common.fabric
            ~server_host:(Reflex_core.Server.host w.Common.server)
            ~accept:(Reflex_core.Server.accept w.Common.server)
            ~stack:Stack_model.ix_client
            ~host:hosts.(i mod 16) ()
        in
        Client_lib.register client ~tenant:(i + 1)
          ~slo:(Common.lc_slo ~latency_us:2000 ~iops:100 ~read_pct:100)
          (fun _ -> ());
        client)
  in
  ignore (Sim.run sim);
  (* The control plane may reject the tail of the fleet once reservations
     exhaust the device; drive only the admitted tenants. *)
  let admitted = List.filter (fun c -> Client_lib.handle c <> None) clients in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gens =
    List.mapi
      (fun i client ->
        Load_gen.open_loop sim ~client ~pacing:`Cbr ~rate:100.0 ~read_ratio:1.0 ~bytes:1024
          ~until
          ~seed:(Int64.of_int (3000 + i))
          ())
      admitted
  in
  Common.measure_generators sim gens ~warmup:(Time.ms 50) ~window:(Common.window mode);
  let achieved = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  let p95 =
    List.fold_left
      (fun a g ->
        if Hdr_histogram.count (Load_gen.reads g) = 0 then a
        else Float.max a (Load_gen.p95_read_us g))
      0.0 gens
  in
  { server_cores; tenants; achieved_kiops = achieved /. 1e3; p95_us = p95 }

let run_tenants ?(mode = Common.Quick) () =
  let sweep =
    Common.scale_points mode
      [ (1, 1000); (1, 2500); (1, 4000); (2, 5000); (4, 8000) ]
      [
        (1, 500); (1, 1000); (1, 2000); (1, 2500); (1, 3000); (1, 4000);
        (2, 2500); (2, 5000); (2, 6000); (4, 5000); (4, 8000); (4, 10000);
      ]
  in
  Runner.map (fun (server_cores, tenants) -> tenants_point ~mode ~server_cores ~tenants) sweep

(* ---------------- Figure 6c: connection scaling ---------------- *)

let conns_point ~mode ~iops_per_conn ~conns =
  let w = Common.make_reflex ~n_threads:1 () in
  let sim = w.Common.sim in
  let hosts =
    Array.init 16 (fun i ->
        Fabric.add_host w.Common.fabric ~name:(Printf.sprintf "loadgen-%d" i)
          ~stack:Stack_model.ix_client)
  in
  (* All connections belong to ONE tenant (the tenant abstraction spans
     client machines and threads). *)
  let clients =
    List.init conns (fun i ->
        let client =
          Client_lib.connect sim w.Common.fabric
            ~server_host:(Reflex_core.Server.host w.Common.server)
            ~accept:(Reflex_core.Server.accept w.Common.server)
            ~stack:Stack_model.ix_client
            ~host:hosts.(i mod 16) ()
        in
        Client_lib.register client ~tenant:1 ~slo:(Common.be_slo ()) (fun _ -> ());
        client)
  in
  ignore (Sim.run sim);
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gens =
    List.mapi
      (fun i client ->
        Load_gen.open_loop sim ~client ~pacing:`Cbr ~rate:(float_of_int iops_per_conn)
          ~read_ratio:1.0 ~bytes:1024 ~until
          ~seed:(Int64.of_int (5000 + i))
          ())
      clients
  in
  Common.measure_generators sim gens ~warmup:(Time.ms 50) ~window:(Common.window mode);
  let achieved = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  let p95 =
    List.fold_left
      (fun a g ->
        if Hdr_histogram.count (Load_gen.reads g) = 0 then a
        else Float.max a (Load_gen.p95_read_us g))
      0.0 gens
  in
  { iops_per_conn; conns; achieved_kiops = achieved /. 1e3; p95c_us = p95 }

let run_conns ?(mode = Common.Quick) () =
  let sweep =
    Common.scale_points mode
      [ (100, 1000); (100, 5000); (100, 8000); (500, 1000); (1000, 500); (1000, 850) ]
      [
        (100, 100); (100, 1000); (100, 2000); (100, 5000); (100, 8000);
        (500, 200); (500, 1000); (500, 1700);
        (1000, 100); (1000, 500); (1000, 850);
      ]
  in
  Runner.map (fun (iops_per_conn, conns) -> conns_point ~mode ~iops_per_conn ~conns) sweep

(* ---------------- tables ---------------- *)

let cores_table rows =
  let t =
    Table.create
      ~title:"Figure 6a: multi-core scaling (20K-IOPS LC tenant per core @2ms + 2 BE tenants)"
      ~columns:[ "cores"; "LC KIOPS"; "BE KIOPS"; "ktokens/s"; "worst LC p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_i r.cores;
          Table.cell_f r.lc_kiops;
          Table.cell_f r.be_kiops;
          Table.cell_f r.ktokens_per_sec;
          Table.cell_f r.lc_p95_worst_us;
        ])
    rows;
  t

let tenants_table rows =
  let t =
    Table.create ~title:"Figure 6b: tenant scaling (100 1KB-read IOPS per tenant)"
      ~columns:[ "server cores"; "tenants"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_i r.server_cores;
          Table.cell_i r.tenants;
          Table.cell_f r.achieved_kiops;
          Table.cell_f r.p95_us;
        ])
    rows;
  t

let conns_table rows =
  let t =
    Table.create ~title:"Figure 6c: connection scaling (single tenant, one core)"
      ~columns:[ "IOPS/conn"; "conns"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_i r.iops_per_conn;
          Table.cell_i r.conns;
          Table.cell_f r.achieved_kiops;
          Table.cell_f r.p95c_us;
        ])
    rows;
  t
