open Reflex_engine
open Reflex_net
open Reflex_client
open Reflex_stats

type row = {
  system : string;
  threads : int;
  offered_kiops : float;
  achieved_kiops : float;
  p95_us : float;
}

let bytes = 1024
let n_client_threads = 4

(* Drive a set of per-client open-loop generators and report the summed
   achieved rate plus the worst p95. *)
let drive sim gens ~window =
  Common.measure_generators sim gens ~warmup:(Time.ms 50) ~window;
  let achieved = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  let p95 =
    List.fold_left
      (fun a g -> if Reflex_stats.Hdr_histogram.count (Load_gen.reads g) = 0 then a else Float.max a (Load_gen.p95_read_us g))
      0.0 gens
  in
  (achieved, p95)

let reflex_point ~threads ~rate ~window =
  let w = Common.make_reflex ~n_threads:threads () in
  let clients =
    List.init n_client_threads (fun i -> Common.client_of w ~tenant:(i + 1) ())
  in
  let until = Time.add (Sim.now w.Common.sim) (Time.sec 10) in
  let gens =
    List.mapi
      (fun i client ->
        Load_gen.open_loop w.Common.sim ~client
          ~rate:(rate /. float_of_int n_client_threads)
          ~read_ratio:1.0 ~bytes ~until
          ~seed:(Int64.of_int (1001 + i))
          ())
      clients
  in
  drive w.Common.sim gens ~window

let libaio_point ~threads ~rate ~window =
  let w = Common.make_baseline ~kind:Reflex_baselines.Baseline_server.Libaio ~n_threads:threads () in
  let clients =
    List.init n_client_threads (fun i ->
        ignore i;
        Common.client_of_baseline w ~stack:Stack_model.ix_client ~tenant:(i + 1) ())
  in
  let until = Time.add (Sim.now w.Common.bsim) (Time.sec 10) in
  let gens =
    List.mapi
      (fun i client ->
        Load_gen.open_loop w.Common.bsim ~client
          ~rate:(rate /. float_of_int n_client_threads)
          ~read_ratio:1.0 ~bytes ~until
          ~seed:(Int64.of_int (2001 + i))
          ())
      clients
  in
  drive w.Common.bsim gens ~window

let local_point ~threads ~rate ~window =
  let sim = Sim.create () in
  let local = Reflex_baselines.Local.create sim ~n_threads:threads () in
  let hist = Reflex_stats.Hdr_histogram.create () in
  let prng = Prng.create 0x414_0001L in
  let completions = ref 0 in
  let warmup = Time.ms 50 in
  let stop = Time.add warmup window in
  let rec arrival () =
    if Time.(Sim.now sim <= stop) then begin
      let issued = Sim.now sim in
      Reflex_baselines.Local.submit local ~kind:Reflex_flash.Io_op.Read ~bytes (fun ~latency ->
          if Time.(issued >= warmup) && Time.(Sim.now sim <= stop) then begin
            incr completions;
            Reflex_stats.Hdr_histogram.record hist latency
          end);
      let gap = Time.max (Time.ns 1) (Time.of_float_ns (Prng.exponential prng ~mean:(1e9 /. rate))) in
      ignore (Sim.after sim gap arrival)
    end
  in
  ignore (Sim.at sim Time.zero arrival);
  ignore (Sim.run ~until:(Time.add stop (Time.ms 20)) sim);
  let achieved = float_of_int !completions /. Time.to_float_sec window in
  let p95 =
    if Reflex_stats.Hdr_histogram.count hist = 0 then Float.nan
    else Reflex_stats.Hdr_histogram.percentile_us hist 95.0
  in
  (achieved, p95)

let run ?(mode = Common.Quick) () =
  let window = Common.window mode in
  let sweeps =
    [
      ("Local", 1, [ 200e3; 400e3; 600e3; 800e3; 900e3 ]);
      ("Local", 2, [ 400e3; 800e3; 1000e3; 1100e3 ]);
      ("ReFlex", 1, [ 200e3; 400e3; 600e3; 800e3; 880e3 ]);
      ("ReFlex", 2, [ 400e3; 800e3; 1000e3; 1100e3 ]);
      ("Libaio", 1, [ 25e3; 50e3; 70e3; 80e3 ]);
      ("Libaio", 2, [ 50e3; 100e3; 140e3; 160e3 ]);
    ]
  in
  (* Each (system, threads, rate) point builds a fresh world — fan out. *)
  let points =
    List.concat_map
      (fun (system, threads, rates) -> List.map (fun rate -> (system, threads, rate)) rates)
      sweeps
  in
  Runner.map
    (fun (system, threads, rate) ->
      let achieved, p95 =
        match system with
        | "Local" -> local_point ~threads ~rate ~window
        | "ReFlex" -> reflex_point ~threads ~rate ~window
        | _ -> libaio_point ~threads ~rate ~window
      in
      {
        system;
        threads;
        offered_kiops = rate /. 1e3;
        achieved_kiops = achieved /. 1e3;
        p95_us = p95;
      })
    points

let to_table rows =
  let t =
    Table.create ~title:"Figure 4: p95 latency vs throughput, 1KB read-only"
      ~columns:[ "system"; "threads"; "offered KIOPS"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.system;
          Table.cell_i r.threads;
          Table.cell_f r.offered_kiops;
          Table.cell_f r.achieved_kiops;
          Table.cell_f r.p95_us;
        ])
    rows;
  t
