(** Shared scaffolding for the paper-reproduction experiments: world
    construction (simulation + fabric + servers + clients), measured load
    runs, and quick/full duration scaling. *)

open Reflex_engine
open Reflex_net
open Reflex_client

(** Quick mode shortens measurement windows and thins sweeps so the whole
    harness finishes in minutes; Full uses longer windows for smoother
    percentiles. *)
type mode = Quick | Full

val window : mode -> Time.t
(** Base measurement window: 150ms (Quick) / 500ms (Full). *)

val scale_points : mode -> 'a list -> 'a list -> 'a list
(** [scale_points mode quick full] picks the sweep for the mode. *)

(** A ReFlex deployment on a fresh simulation. *)
type reflex_world = {
  sim : Sim.t;
  fabric : Fabric.t;
  server : Reflex_core.Server.t;
  telemetry : Reflex_telemetry.Telemetry.t;
      (** the world's observability sink; {!Reflex_telemetry.Telemetry.disabled}
          unless requested *)
}

(** When set, worlds built by {!make_reflex} without an explicit
    [?telemetry] get a fresh enabled instance (one per world — safe under
    {!Runner} domain parallelism) with the metrics sampler started.
    Driven by the [--telemetry]/[--trace-out] CLI flags. *)
val set_default_telemetry : bool -> unit

(** The telemetry of the most recent enabled world ({e serial} runs only
    — the trace exporter forces [jobs=1]). *)
val last_telemetry : Reflex_telemetry.Telemetry.t option ref

val make_reflex :
  ?n_threads:int ->
  ?max_threads:int ->
  ?qos:bool ->
  ?profile:Reflex_flash.Device_profile.t ->
  ?neg_limit:float ->
  ?donate_fraction:float ->
  ?seed:int64 ->
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  unit ->
  reflex_world

(** A baseline (libaio / iSCSI) deployment. *)
type baseline_world = {
  bsim : Sim.t;
  bfabric : Fabric.t;
  bserver : Reflex_baselines.Baseline_server.t;
}

val make_baseline :
  kind:Reflex_baselines.Baseline_server.kind -> ?n_threads:int -> ?seed:int64 -> unit -> baseline_world

(** Connect a client and register; runs the simulation until the
    registration completes.  Raises [Failure] if it is refused.
    [retry]/[retry_seed] pass through to {!Client_lib.connect} for
    chaos experiments that want deadlines and retries. *)
val client_of :
  reflex_world ->
  ?stack:Stack_model.t ->
  ?slo:Reflex_proto.Message.slo ->
  ?retry:Retry.policy ->
  ?retry_seed:int64 ->
  tenant:int ->
  unit ->
  Client_lib.t

val client_of_baseline :
  baseline_world -> ?stack:Stack_model.t -> tenant:int -> unit -> Client_lib.t

(** Try to register an LC tenant; [Ok client] or [Error status]. *)
val try_client_of :
  reflex_world ->
  ?stack:Stack_model.t ->
  ?slo:Reflex_proto.Message.slo ->
  ?retry:Retry.policy ->
  ?retry_seed:int64 ->
  tenant:int ->
  unit ->
  (Client_lib.t, Reflex_proto.Message.status) result

(** Current git commit hash, read directly from [.git/HEAD] (no
    subprocess); ["unknown"] outside a checkout.  Embedded in the bench
    harness's JSON outputs. *)
val git_sha : unit -> string

(** [measure_generators sim gens ~warmup ~window] runs warmup, marks all
    generators, runs the window, freezes them, then drains briefly. *)
val measure_generators : Sim.t -> Load_gen.t list -> warmup:Time.t -> window:Time.t -> unit

(** Helper to build a latency-critical register-message SLO. *)
val lc_slo : latency_us:int -> iops:int -> read_pct:int -> Reflex_proto.Message.slo

val be_slo : ?read_pct:int -> unit -> Reflex_proto.Message.slo
