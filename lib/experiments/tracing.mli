(** The canonical telemetry scenario for `reflex_sim trace`: a Fig-6-style
    multi-tenant run (2 cores, 2 LC tenants with 200us/500us SLOs, 2 BE
    write floods) executed with lifecycle tracing, metrics sampling and
    the scheduler decision log enabled. *)

open Reflex_telemetry

type tenant_row = {
  tr_tenant : int;
  tr_class : string;  (** "LC" or "BE" *)
  tr_achieved_kiops : float;
  tr_p95_read_us : float;
}

type result = { telemetry : Telemetry.t; rows : tenant_row list }

val run : ?mode:Common.mode -> unit -> result
val to_table : tenant_row list -> Reflex_stats.Table.t
