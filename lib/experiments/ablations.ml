open Reflex_engine
open Reflex_client
open Reflex_stats

type neg_limit_row = {
  neg_limit : float;
  bursty_lc_p95_us : float;
  victim_lc_p95_us : float;
}

type donation_row = { fraction : float; be_kiops : float }

type batch_row = { batch_cap : int; achieved_kiops : float; p95_us : float }

type cost_model_row = {
  config : string;
  lc_p95_us : float;
  lc_slo_met : bool;
  be_write_kiops : float;
}

(* ---------------- NEG_LIMIT ---------------- *)

(* A bursty (Poisson, random mix) LC tenant at its full 80%-read
   reservation, next to a smooth CBR read-only "victim": the deficit
   allowance absorbs the bursty tenant's arrival noise; overly deep
   deficits let its 10-token writes crowd the device. *)
let neg_limit_point ~mode ~neg_limit =
  let w = Common.make_reflex ~neg_limit () in
  let sim = w.Common.sim in
  let bursty =
    Common.client_of w ~slo:(Common.lc_slo ~latency_us:1000 ~iops:60_000 ~read_pct:80) ~tenant:1 ()
  in
  let victim =
    Common.client_of w ~slo:(Common.lc_slo ~latency_us:1000 ~iops:100_000 ~read_pct:100)
      ~tenant:2 ()
  in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gen_bursty =
    Load_gen.open_loop sim ~client:bursty ~rate:60_000.0 ~read_ratio:0.8 ~bytes:4096 ~until
      ~seed:21L ()
  in
  let gen_victim =
    Load_gen.open_loop sim ~client:victim ~pacing:`Cbr ~rate:100_000.0 ~read_ratio:1.0
      ~bytes:4096 ~until ~seed:22L ()
  in
  Common.measure_generators sim [ gen_bursty; gen_victim ] ~warmup:(Time.ms 50)
    ~window:(Common.window mode);
  {
    neg_limit;
    bursty_lc_p95_us = Load_gen.p95_read_us gen_bursty;
    victim_lc_p95_us = Load_gen.p95_read_us gen_victim;
  }

let run_neg_limit ?(mode = Common.Quick) () =
  Runner.map (fun neg_limit -> neg_limit_point ~mode ~neg_limit) [ 0.0; -10.0; -50.0; -500.0 ]

(* ---------------- donation fraction ---------------- *)

(* An idle LC tenant reserves nearly the whole device; a deep-queued BE
   tenant's throughput beyond its own sliver of a share then comes
   entirely from the LC tenant's donations through the global bucket. *)
let donation_point ~mode ~fraction =
  let w = Common.make_reflex ~donate_fraction:fraction () in
  let sim = w.Common.sim in
  let _idle_lc =
    Common.client_of w ~slo:(Common.lc_slo ~latency_us:1000 ~iops:800_000 ~read_pct:100)
      ~tenant:1 ()
  in
  let be = Common.client_of w ~slo:(Common.be_slo ()) ~tenant:2 () in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gen_be =
    Load_gen.closed_loop sim ~client:be ~depth:512 ~read_ratio:1.0 ~bytes:4096 ~until ~seed:31L ()
  in
  Common.measure_generators sim [ gen_be ] ~warmup:(Time.ms 50) ~window:(Common.window mode);
  { fraction; be_kiops = Load_gen.achieved_iops gen_be /. 1e3 }

let run_donation ?(mode = Common.Quick) () =
  Runner.map (fun fraction -> donation_point ~mode ~fraction) [ 0.0; 0.5; 0.9; 1.0 ]

(* ---------------- adaptive batching cap ---------------- *)

let batching_point ~mode ~batch_cap =
  let costs = { Reflex_core.Costs.default with Reflex_core.Costs.batch_max = batch_cap } in
  let sim = Sim.create () in
  let fabric = Reflex_net.Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric ~costs () in
  let w = { Common.sim; fabric; server; telemetry = Reflex_telemetry.Telemetry.disabled } in
  let clients = List.init 4 (fun i -> Common.client_of w ~tenant:(i + 1) ()) in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gens =
    List.mapi
      (fun i client ->
        Load_gen.open_loop sim ~client ~rate:200_000.0 ~read_ratio:1.0 ~bytes:1024 ~until
          ~seed:(Int64.of_int (41 + i))
          ())
      clients
  in
  Common.measure_generators sim gens ~warmup:(Time.ms 50) ~window:(Common.window mode);
  let achieved = List.fold_left (fun a g -> a +. Load_gen.achieved_iops g) 0.0 gens in
  let p95 = List.fold_left (fun a g -> Float.max a (Load_gen.p95_read_us g)) 0.0 gens in
  { batch_cap; achieved_kiops = achieved /. 1e3; p95_us = p95 }

let run_batching ?(mode = Common.Quick) () =
  Runner.map (fun batch_cap -> batching_point ~mode ~batch_cap) [ 1; 4; 16; 64; 512 ]

(* ---------------- cost model ---------------- *)

(* Figure 5's scenario with the calibrated cost model versus a naive one
   that prices writes like reads: the naive scheduler converts tenant D's
   token share into 10x more write work than the device can absorb, and
   the LC tenant's tail blows through its SLO. *)
let cost_model_point ~mode ~config ~cost_model =
  let sim = Sim.create () in
  let fabric = Reflex_net.Fabric.create sim () in
  let server = Reflex_core.Server.create sim ~fabric ?cost_model () in
  let w = { Common.sim; fabric; server; telemetry = Reflex_telemetry.Telemetry.disabled } in
  let lc =
    Common.client_of w ~slo:(Common.lc_slo ~latency_us:500 ~iops:100_000 ~read_pct:100)
      ~tenant:1 ()
  in
  let be = Common.client_of w ~slo:(Common.be_slo ~read_pct:0 ()) ~tenant:2 () in
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  let gen_lc =
    Load_gen.open_loop sim ~client:lc ~pacing:`Cbr ~rate:100_000.0 ~read_ratio:1.0 ~bytes:4096
      ~until ~seed:51L ()
  in
  let gen_be =
    Load_gen.closed_loop sim ~client:be ~depth:192 ~read_ratio:0.0 ~bytes:4096 ~until ~seed:52L ()
  in
  Common.measure_generators sim [ gen_lc; gen_be ] ~warmup:(Time.ms 50)
    ~window:(Common.window mode);
  let p95 = Load_gen.p95_read_us gen_lc in
  {
    config;
    lc_p95_us = p95;
    lc_slo_met = p95 <= 500.0;
    be_write_kiops = Load_gen.achieved_iops gen_be /. 1e3;
  }

let run_cost_model ?(mode = Common.Quick) () =
  Runner.map
    (fun (config, cost_model) -> cost_model_point ~mode ~config ~cost_model)
    [
      ("calibrated (write = 10 tokens)", None);
      ( "naive (write = 1 token)",
        Some { Reflex_qos.Cost_model.write_cost = 1.0; ro_read_cost = 0.5 } );
    ]

(* ---------------- tables ---------------- *)

let neg_limit_table rows =
  let t =
    Table.create ~title:"Ablation: NEG_LIMIT deficit allowance (paper: -50 tokens)"
      ~columns:[ "NEG_LIMIT"; "bursty LC p95 (us)"; "victim LC p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ Table.cell_f r.neg_limit; Table.cell_f r.bursty_lc_p95_us; Table.cell_f r.victim_lc_p95_us ])
    rows;
  t

let donation_table rows =
  let t =
    Table.create ~title:"Ablation: LC->global-bucket donation fraction (paper: 0.9)"
      ~columns:[ "fraction"; "BE KIOPS from donations" ]
  in
  List.iter
    (fun r -> Table.add_row t [ Table.cell_f ~decimals:2 r.fraction; Table.cell_f r.be_kiops ])
    rows;
  t

let batching_table rows =
  let t =
    Table.create ~title:"Ablation: adaptive batching cap (paper: 64) at 800K offered IOPS"
      ~columns:[ "batch cap"; "achieved KIOPS"; "p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ Table.cell_i r.batch_cap; Table.cell_f r.achieved_kiops; Table.cell_f r.p95_us ])
    rows;
  t

let cost_model_table rows =
  let t =
    Table.create ~title:"Ablation: request cost model under a best-effort write flood"
      ~columns:[ "cost model"; "LC p95 (us)"; "500us SLO"; "BE write KIOPS" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.config;
          Table.cell_f r.lc_p95_us;
          (if r.lc_slo_met then "met" else "VIOLATED");
          Table.cell_f r.be_write_kiops;
        ])
    rows;
  t
