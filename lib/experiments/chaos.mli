(** Resilience acceptance scenario: the multi-tenant trace setup run
    under the scripted fault plan ({!Reflex_faults.Fault_plan.scripted}),
    with client retries on the LC tenants and the injector's degradation
    reaction armed.  The timeline is reported as 500ms p95 buckets so
    latency visibly climbs inside fault windows and recovers outside
    them; {!debrief} additionally proves byte-identical determinism
    (same-seed rerun, and serial vs two-domain parallel). *)

open Reflex_telemetry
open Reflex_client
open Reflex_faults

type bucket_row = {
  cb_start_ms : float;
  cb_faults : string;  (** labels of plan windows overlapping the bucket; "-" when none *)
  cb_clean : bool;
      (** no fault window (plus one bucket of settle padding after
          recovery) overlaps — the buckets held against the SLO *)
  cb_lc1_p95_us : float;  (** NaN when the bucket saw no read completions *)
  cb_lc2_p95_us : float;
  cb_be_kiops : float;
}

type result = {
  telemetry : Telemetry.t;
  plan : Fault_plan.t;
  rows : bucket_row list;
  lc1_slo_us : float;
  lc2_slo_us : float;
  injected : int;
  recovered : int;
  retries : int;  (** re-issued attempts across LC clients *)
  timeouts : int;  (** per-attempt deadline expiries *)
  timeout_errors : int;  (** Timed_out completions (retry budget exhausted) *)
  lc_issued : int;
  retry_policy : Retry.policy;
}

(** Quick mode compresses the 10s timeline (and the fault plan) by 10x. *)
val run : ?mode:Common.mode -> ?seed:int64 -> unit -> result

(** Worst clean-bucket p95 (us) for (LC1, LC2). *)
val clean_worst : result -> float * float

(** Both LC tenants' worst clean-bucket p95 is within their SLO. *)
val clean_ok : result -> bool

(** Retry counts respect the policy's budget: at most [max_retries]
    re-issues and [max_retries + 1] deadline expiries per issued op. *)
val retries_bounded : result -> bool

val to_table : result -> Reflex_stats.Table.t

(** Plan, bucket table, summary and fault-window report as one string —
    the unit of byte-comparison for determinism checks. *)
val render_result : result -> string

val render : ?mode:Common.mode -> ?seed:int64 -> unit -> string

(** {!render} plus determinism verification: runs the scenario twice
    serially and twice under {!Runner.map}[ ~jobs:2] and reports whether
    all four outputs are byte-identical. *)
val debrief : ?mode:Common.mode -> ?seed:int64 -> unit -> string
