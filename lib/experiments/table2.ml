open Reflex_engine
open Reflex_net
open Reflex_client
open Reflex_stats

type row = {
  path : string;
  read_avg_us : float;
  read_p95_us : float;
  write_avg_us : float;
  write_p95_us : float;
}

let paper =
  [
    { path = "Local (SPDK)"; read_avg_us = 78.; read_p95_us = 90.; write_avg_us = 11.; write_p95_us = 17. };
    { path = "iSCSI"; read_avg_us = 211.; read_p95_us = 251.; write_avg_us = 155.; write_p95_us = 215. };
    { path = "Libaio (Linux)"; read_avg_us = 183.; read_p95_us = 205.; write_avg_us = 180.; write_p95_us = 205. };
    { path = "Libaio (IX)"; read_avg_us = 121.; read_p95_us = 139.; write_avg_us = 117.; write_p95_us = 144. };
    { path = "ReFlex (Linux)"; read_avg_us = 117.; read_p95_us = 135.; write_avg_us = 58.; write_p95_us = 64. };
    { path = "ReFlex (IX)"; read_avg_us = 99.; read_p95_us = 113.; write_avg_us = 31.; write_p95_us = 34. };
  ]

(* qd-1 prober over a client connection: mean and p95 for each I/O kind. *)
let probe_remote sim gen_of =
  let until = Time.ms 300 in
  let measure read_ratio =
    let gen = gen_of ~read_ratio ~until in
    ignore (Sim.run ~until:(Time.add (Sim.now sim) (Time.ms 30)) sim);
    Load_gen.mark_measurement_start gen;
    ignore (Sim.run ~until:(Time.add (Sim.now sim) until) sim);
    gen
  in
  let reads = measure 1.0 in
  let writes = measure 0.0 in
  ( Load_gen.mean_read_us reads,
    Load_gen.p95_read_us reads,
    Load_gen.mean_write_us writes,
    Load_gen.p95_write_us writes )

let reflex_row ~stack ~label () =
  let w = Common.make_reflex () in
  let client = Common.client_of w ~stack ~tenant:1 () in
  let r_avg, r_p95, w_avg, w_p95 =
    probe_remote w.Common.sim (fun ~read_ratio ~until ->
        Load_gen.closed_loop w.Common.sim ~client ~depth:1 ~think:(Time.us 50) ~read_ratio
          ~bytes:4096
          ~until:(Time.add (Sim.now w.Common.sim) until)
          ())
  in
  { path = label; read_avg_us = r_avg; read_p95_us = r_p95; write_avg_us = w_avg; write_p95_us = w_p95 }

let baseline_row ~kind ~stack ~label () =
  let w = Common.make_baseline ~kind () in
  let client = Common.client_of_baseline w ~stack ~tenant:1 () in
  let r_avg, r_p95, w_avg, w_p95 =
    probe_remote w.Common.bsim (fun ~read_ratio ~until ->
        Load_gen.closed_loop w.Common.bsim ~client ~depth:1 ~think:(Time.us 50) ~read_ratio
          ~bytes:4096
          ~until:(Time.add (Sim.now w.Common.bsim) until)
          ())
  in
  { path = label; read_avg_us = r_avg; read_p95_us = r_p95; write_avg_us = w_avg; write_p95_us = w_p95 }

let local_row () =
  let sim = Sim.create () in
  let local = Reflex_baselines.Local.create sim () in
  let probe kind =
    let hist = Hdr_histogram.create () in
    let remaining = ref 3_000 in
    let rec next () =
      if !remaining > 0 then begin
        decr remaining;
        Reflex_baselines.Local.submit local ~kind ~bytes:4096 (fun ~latency ->
            Hdr_histogram.record hist latency;
            ignore (Sim.after sim (Time.us 50) next))
      end
    in
    ignore (Sim.at sim (Sim.now sim) next);
    ignore (Sim.run sim);
    (Hdr_histogram.mean_us hist, Hdr_histogram.percentile_us hist 95.0)
  in
  let r_avg, r_p95 = probe Reflex_flash.Io_op.Read in
  let w_avg, w_p95 = probe Reflex_flash.Io_op.Write in
  {
    path = "Local (SPDK)";
    read_avg_us = r_avg;
    read_p95_us = r_p95;
    write_avg_us = w_avg;
    write_p95_us = w_p95;
  }

let run ?(mode = Common.Quick) () =
  ignore mode;
  (* Six independent access-path worlds — fan the probes out. *)
  Runner.map
    (fun row -> row ())
    [
      (fun () -> local_row ());
      (fun () ->
        baseline_row ~kind:Reflex_baselines.Baseline_server.Iscsi ~stack:Stack_model.linux_client
          ~label:"iSCSI" ());
      (fun () ->
        baseline_row ~kind:Reflex_baselines.Baseline_server.Libaio ~stack:Stack_model.linux_client
          ~label:"Libaio (Linux)" ());
      (fun () ->
        baseline_row ~kind:Reflex_baselines.Baseline_server.Libaio ~stack:Stack_model.ix_client
          ~label:"Libaio (IX)" ());
      (fun () -> reflex_row ~stack:Stack_model.linux_client ~label:"ReFlex (Linux)" ());
      (fun () -> reflex_row ~stack:Stack_model.ix_client ~label:"ReFlex (IX)" ());
    ]

let to_table rows =
  let t =
    Table.create ~title:"Table 2: unloaded 4KB latency, measured vs paper (us)"
      ~columns:
        [ "path"; "read avg"; "read p95"; "write avg"; "write p95"; "paper read"; "paper write" ]
  in
  List.iter
    (fun r ->
      let p = List.find_opt (fun p -> p.path = r.path) paper in
      let paper_read, paper_write =
        match p with
        | Some p -> (Printf.sprintf "%.0f/%.0f" p.read_avg_us p.read_p95_us,
                     Printf.sprintf "%.0f/%.0f" p.write_avg_us p.write_p95_us)
        | None -> ("-", "-")
      in
      Table.add_row t
        [
          r.path;
          Table.cell_f r.read_avg_us;
          Table.cell_f r.read_p95_us;
          Table.cell_f r.write_avg_us;
          Table.cell_f r.write_p95_us;
          paper_read;
          paper_write;
        ])
    rows;
  t
