(** Observability acceptance scenario: the chaos world with the full
    [lib/obs] stack armed — always-on flight recorder, alert-triggered
    forensic dumps, causal retry links, continuous cost profiler.

    The deterministic render covers the fault plan, monitor report,
    retry span trees and the digest of the first dump's JSON debrief;
    profiler output (host wall time) is exposed only through
    {!profile_report}.  {!debrief} asserts the dump is byte-identical
    across a same-seed rerun, serial vs [--jobs 2], and heap vs wheel
    backends, and that a disarmed recorder perturbs nothing. *)

open Reflex_faults
open Reflex_monitor

type result = {
  monitor : Monitor.t;
  telemetry : Reflex_telemetry.Telemetry.t;
  profiler : Reflex_obs.Profiler.t;
  plan : Fault_plan.t;
  retries : int;  (** summed client re-issues *)
  digest : string;  (** server counters + per-generator stats *)
}

(** [flight] picks the recorder wiring: [`Armed] (default) a live ring,
    [`Inert] a created-but-disabled one, [`None] the shared disabled
    instance.  [profile] arms the cost profiler (default off — its
    clock reads are host-wall-time and pure overhead when unused). *)
val run :
  ?mode:Common.mode ->
  ?seed:int64 ->
  ?flight:[ `Armed | `Inert | `None ] ->
  ?profile:bool ->
  unit ->
  result

(** Alert-triggered dumps of the run, firing order. *)
val dumps : result -> Monitor.flight_dump list

(** JSON debrief / Chrome trace of the first dump, if any fired. *)
val first_debrief : result -> string option

val first_chrome : result -> string option

(** {1 Acceptance checks} *)

val dump_captured : result -> bool
val dump_names_alert : result -> bool
val dump_names_fault : result -> bool
val links_recorded : result -> bool
val ok : result -> bool

(** Deterministic render (never includes profiler numbers). *)
val render_result : result -> string

val render : ?mode:Common.mode -> ?seed:int64 -> unit -> string

(** Render plus the dump-determinism verification (rerun, --jobs 2,
    heap vs wheel, disarmed-recorder identity). *)
val debrief : ?mode:Common.mode -> ?seed:int64 -> unit -> string

(** Host-wall-time profiler table ({!Reflex_obs.Profiler.report}) —
    print separately, never fold into a byte-identity-checked output. *)
val profile_report : result -> string
