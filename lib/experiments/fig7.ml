open Reflex_engine
open Reflex_stats
open Reflex_apps

type fio_row = { fpath : string; threads : int; qd : int; mbps : float; p95_us : float }

type app_row = {
  apath : string;
  bench : string;
  elapsed_ms : float;
  local_ms : float;
  slowdown : float;
}

(* Build an access path in a fresh world and hand it to [k].  The path
   kinds mirror the paper's setups: local NVMe; the ReFlex block driver
   with 6 hardware contexts; iSCSI with 3 worker threads. *)
let with_path kind k =
  let sim = Sim.create () in
  (* Remote paths must finish their registration handshakes (which needs
     the simulation to run) before the workload starts. *)
  let ready make =
    let path = ref None in
    make (fun p -> path := Some p);
    ignore (Sim.run sim);
    match !path with
    | Some p -> k sim p
    | None -> failwith "block device did not come up"
  in
  match kind with
  | `Local ->
    let local = Reflex_baselines.Local.create sim ~n_threads:5 () in
    k sim (Access_path.local local)
  | `Reflex ->
    let fabric = Reflex_net.Fabric.create sim () in
    let server = Reflex_core.Server.create sim ~fabric () in
    ready
      (Access_path.remote sim fabric
         ~server_host:(Reflex_core.Server.host server)
         ~accept:(Reflex_core.Server.accept server)
         ~n_contexts:6 ~tenant:1 ())
  | `Iscsi ->
    let fabric = Reflex_net.Fabric.create sim () in
    (* The open-iscsi target serves from a single service thread — the
       ~70K IOPS/core ceiling is what caps every iSCSI result. *)
    let server =
      Reflex_baselines.Baseline_server.create sim ~fabric
        ~kind:Reflex_baselines.Baseline_server.Iscsi ~n_threads:1 ()
    in
    ready
      (Access_path.remote sim fabric
         ~server_host:(Reflex_baselines.Baseline_server.host server)
         ~accept:(Reflex_baselines.Baseline_server.accept server)
         ~n_contexts:3 ~tenant:1 ())

let path_name = function `Local -> "Local" | `Reflex -> "ReFlex" | `Iscsi -> "iSCSI"

(* ---------------- 7a: FIO ---------------- *)

let run_fio ?(mode = Common.Quick) () =
  let duration = Time.scale (Common.window mode) 1.5 in
  let qds = Common.scale_points mode [ 1; 4; 16; 64 ] [ 1; 2; 4; 8; 16; 32; 64 ] in
  (* Thread counts from the paper: 5 local, 3 iSCSI, 6 ReFlex. *)
  let setups = [ (`Local, 5); (`Iscsi, 3); (`Reflex, 6) ] in
  (* One fresh world per (path kind, qd) point — fan out. *)
  let points =
    List.concat_map (fun (kind, threads) -> List.map (fun qd -> (kind, threads, qd)) qds) setups
  in
  Runner.map
    (fun (kind, threads, qd) ->
      let result = ref None in
      with_path kind (fun sim path ->
          Fio.run sim path ~threads ~qd ~bytes:4096 ~duration () (fun r -> result := Some r);
          ignore (Sim.run sim));
      match !result with
      | Some r -> { fpath = path_name kind; threads; qd; mbps = r.Fio.mbps; p95_us = r.Fio.p95_us }
      | None -> failwith "fio did not complete")
    points

(* ---------------- 7b / 7c: application slowdowns ---------------- *)

let app_rows ~benches ~run_bench =
  let elapsed kind bench =
    let result = ref None in
    with_path kind (fun sim path ->
        run_bench sim path bench (fun ~elapsed -> result := Some elapsed);
        ignore (Sim.run sim));
    match !result with
    | Some e -> Time.to_float_ms e
    | None -> failwith "benchmark did not complete"
  in
  (* Parallelize across benchmarks; within a benchmark the local run is
     measured once and shared by both remote paths' slowdown rows. *)
  Runner.concat_map
    (fun (name, bench) ->
      let local_ms = elapsed `Local bench in
      List.map
        (fun kind ->
          let ms = elapsed kind bench in
          {
            apath = path_name kind;
            bench = name;
            elapsed_ms = ms;
            local_ms;
            slowdown = ms /. local_ms;
          })
        [ `Iscsi; `Reflex ])
    benches

let run_flashx ?(mode = Common.Quick) () =
  ignore mode;
  app_rows
    ~benches:(List.map (fun b -> (b.Flashx.name, b)) Flashx.all)
    ~run_bench:(fun sim path b k -> Flashx.run sim path b k)

let run_rocksdb ?(mode = Common.Quick) () =
  ignore mode;
  app_rows
    ~benches:(List.map (fun b -> (b.Rocksdb.name, b)) Rocksdb.all)
    ~run_bench:(fun sim path b k -> Rocksdb.run sim path b k)

(* ---------------- tables ---------------- *)

let fio_table rows =
  let t =
    Table.create ~title:"Figure 7a: FIO 4KB random read, p95 latency vs throughput"
      ~columns:[ "path"; "threads"; "qd"; "MB/s"; "p95 (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.fpath; Table.cell_i r.threads; Table.cell_i r.qd; Table.cell_f r.mbps; Table.cell_f r.p95_us ])
    rows;
  t

let app_table ~title rows =
  let t =
    Table.create ~title ~columns:[ "bench"; "path"; "elapsed (ms)"; "local (ms)"; "slowdown" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.bench;
          r.apath;
          Table.cell_f r.elapsed_ms;
          Table.cell_f r.local_ms;
          Table.cell_f ~decimals:3 r.slowdown;
        ])
    rows;
  t

let flashx_table = app_table ~title:"Figure 7b: FlashX slowdown over local Flash"
let rocksdb_table = app_table ~title:"Figure 7c: RocksDB slowdown over local Flash"
