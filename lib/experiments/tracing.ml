open Reflex_engine
open Reflex_client
open Reflex_stats
open Reflex_telemetry

(* The canonical telemetry scenario: the Fig-6-style multi-tenant setup
   (two dataplane threads, two latency-critical tenants with different
   SLOs, two best-effort write floods) run with full lifecycle tracing,
   metrics sampling and the scheduler decision log enabled.  This is what
   `reflex_sim trace` executes: BE writes create die contention and token
   throttling, so the per-request breakdowns and the SLO audit have
   something real to attribute. *)

type tenant_row = {
  tr_tenant : int;
  tr_class : string;
  tr_achieved_kiops : float;
  tr_p95_read_us : float;
}

type result = { telemetry : Telemetry.t; rows : tenant_row list }

let run ?(mode = Common.Quick) () =
  let telemetry = Telemetry.create () in
  let w = Common.make_reflex ~n_threads:2 ~telemetry () in
  let sim = w.Common.sim in
  Telemetry.start_sampler telemetry sim ();
  let until = Time.add (Sim.now sim) (Time.sec 10) in
  (* Two LC tenants with distinct SLOs: a tight 200us reservation at
     60K IOPS and a looser 500us one at 30K. *)
  let lc_specs =
    [ (1, 200, 80_000, 100, 60_000.0, 1.0); (2, 500, 40_000, 90, 30_000.0, 0.9) ]
  in
  let lc_gens =
    List.map
      (fun (tenant, latency_us, iops, read_pct, rate, read_ratio) ->
        let client =
          Common.client_of w ~slo:(Common.lc_slo ~latency_us ~iops ~read_pct) ~tenant ()
        in
        ( tenant,
          Load_gen.open_loop sim ~client ~pacing:`Cbr ~mix:`Deterministic ~rate ~read_ratio
            ~bytes:4096 ~until
            ~seed:(Int64.of_int (17 + tenant))
            () ))
      lc_specs
  in
  (* Two BE tenants flooding writes: the source of die contention. *)
  let be_gens =
    List.init 2 (fun i ->
        let tenant = 101 + i in
        let client = Common.client_of w ~slo:(Common.be_slo ~read_pct:10 ()) ~tenant () in
        ( tenant,
          Load_gen.closed_loop sim ~client ~depth:64 ~read_ratio:0.1 ~bytes:4096 ~until
            ~seed:(Int64.of_int (91 + i))
            () ))
  in
  let gens = List.map snd (lc_gens @ be_gens) in
  Common.measure_generators sim gens ~warmup:(Time.ms 50) ~window:(Common.window mode);
  let row kind (tenant, g) =
    {
      tr_tenant = tenant;
      tr_class = kind;
      tr_achieved_kiops = Load_gen.achieved_iops g /. 1e3;
      tr_p95_read_us =
        (if Hdr_histogram.count (Load_gen.reads g) = 0 then 0.0 else Load_gen.p95_read_us g);
    }
  in
  { telemetry; rows = List.map (row "LC") lc_gens @ List.map (row "BE") be_gens }

let to_table rows =
  let t =
    Table.create ~title:"trace scenario: 2 LC tenants + 2 BE write floods on 2 cores"
      ~columns:[ "tenant"; "class"; "achieved KIOPS"; "p95 read (us)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_i r.tr_tenant;
          r.tr_class;
          Table.cell_f r.tr_achieved_kiops;
          Table.cell_f r.tr_p95_read_us;
        ])
    rows;
  t
