(** One module per table/figure in the paper's evaluation (§5).  Each
    [run] returns structured rows; each [to_table] renders them like the
    paper reports them.  See DESIGN.md for the experiment index and
    EXPERIMENTS.md for paper-vs-measured results. *)

module Runner = Runner
module Common = Common
module Fig1 = Fig1
module Fig3 = Fig3
module Table2 = Table2
module Fig4 = Fig4
module Fig5 = Fig5
module Fig6 = Fig6
module Fig7 = Fig7
module Ablations = Ablations
module Tracing = Tracing
module Chaos = Chaos
module Monitor_exp = Monitor_exp
module Obs_exp = Obs_exp
module Rack_exp = Rack_exp
