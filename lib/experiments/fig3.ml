open Reflex_engine
open Reflex_flash
open Reflex_stats

type point = {
  device : string;
  label : string;
  weighted_ktokens : float;
  p95_read_us : float;
}

type fit_row = {
  fdevice : string;
  write_cost : float;
  ro_read_cost : float;
  token_rate_at_1ms : float;
  r2 : float;
}

(* Token cost of the offered mix under the device's nominal cost model
   (what the x-axis of Figure 3 plots). *)
let weighted_rate profile ~read_ratio ~bytes ~rate =
  let cm = Reflex_qos.Cost_model.of_profile profile in
  let sectors = float_of_int (Io_op.sectors_of_bytes bytes) in
  let read_cost =
    if read_ratio >= 1.0 then cm.Reflex_qos.Cost_model.ro_read_cost *. sectors else sectors
  in
  rate
  *. ((read_ratio *. read_cost)
     +. ((1.0 -. read_ratio) *. cm.Reflex_qos.Cost_model.write_cost *. sectors))

let workloads =
  [
    ("100%rd (1KB)", 1.0, 1024);
    ("100%rd (4KB)", 1.0, 4096);
    ("100%rd (32KB)", 1.0, 32768);
    ("99%rd (4KB)", 0.99, 4096);
    ("95%rd (4KB)", 0.95, 4096);
    ("90%rd (4KB)", 0.9, 4096);
    ("75%rd (4KB)", 0.75, 4096);
    ("50%rd (4KB)", 0.5, 4096);
  ]

let run ?(mode = Common.Quick) () =
  let config =
    { Calibrate.default_config with duration = Common.window mode; warmup = Time.ms 50 }
  in
  let n_points = match mode with Common.Quick -> 4 | Common.Full -> 8 in
  (* Enumerate every (device, workload, load step) sweep point serially
     (cheap arithmetic), then measure them all in parallel. *)
  let point_specs =
    List.concat_map
      (fun profile ->
        let cap = Device_profile.token_capacity profile in
        List.concat_map
          (fun (label, read_ratio, bytes) ->
            (* Sweep offered load so weighted tokens reach ~1.2x capacity. *)
            let sectors = float_of_int (Io_op.sectors_of_bytes bytes) in
            let per_io_tokens =
              if read_ratio >= 1.0 then sectors /. profile.Device_profile.ro_speedup
              else
                (read_ratio *. sectors)
                +. ((1.0 -. read_ratio) *. profile.Device_profile.write_cost *. sectors)
            in
            let top_rate = 1.2 *. cap /. per_io_tokens in
            List.map
              (fun i ->
                let rate = top_rate *. float_of_int i /. float_of_int n_points in
                (profile, label, read_ratio, bytes, rate))
              (List.init n_points (fun i -> i + 1)))
          workloads)
      Device_profile.all
  in
  let points =
    Runner.map
      (fun (profile, label, read_ratio, bytes, rate) ->
        let p = Calibrate.measure ~config profile ~read_ratio ~bytes ~rate in
        {
          device = profile.Device_profile.name;
          label;
          weighted_ktokens = weighted_rate profile ~read_ratio ~bytes ~rate /. 1e3;
          p95_read_us = p.Calibrate.p95_read_us;
        })
      point_specs
  in
  let fits =
    Runner.map
      (fun profile ->
        let f =
          Calibrate.fit_cost_model ~config
            ~read_ratios:[ 0.95; 0.9; 0.75; 0.5 ]
            profile ~p95_target_us:1000.0
        in
        {
          fdevice = profile.Device_profile.name;
          write_cost = f.Calibrate.write_cost;
          ro_read_cost = f.Calibrate.ro_read_cost;
          token_rate_at_1ms = f.Calibrate.token_rate;
          r2 = f.Calibrate.fit_r2;
        })
      Device_profile.all
  in
  (points, fits)

let to_tables (points, fits) =
  let curves =
    Table.create ~title:"Figure 3: p95 read latency vs weighted ktokens/s (devices A/B/C)"
      ~columns:[ "device"; "workload"; "ktokens/s"; "p95 read (us)" ]
  in
  List.iter
    (fun p ->
      Table.add_row curves
        [ p.device; p.label; Table.cell_f p.weighted_ktokens; Table.cell_f p.p95_read_us ])
    points;
  let fit =
    Table.create
      ~title:
        "Figure 3 (fit): calibrated cost models — paper: C(write)=10/20/16, C(read,100%)=0.5 (A)"
      ~columns:[ "device"; "C(write) tokens"; "C(read,100%)"; "ktokens/s @1ms"; "fit r^2" ]
  in
  List.iter
    (fun f ->
      Table.add_row fit
        [
          f.fdevice;
          Table.cell_f f.write_cost;
          Table.cell_f ~decimals:2 f.ro_read_cost;
          Table.cell_f (f.token_rate_at_1ms /. 1e3);
          Table.cell_f ~decimals:3 f.r2;
        ])
    fits;
  [ curves; fit ]
