(* Zipf sampling precomputes a CDF prefix table; it is cached on the
   stream itself (not in a global table) so that Prng instances owned by
   different Runner.map domains never share mutable state. *)
type zipf_cache = { zn : int; ztheta : float; cdf : float array }

type t = { mutable state : int64; mutable zcache : zipf_cache option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed; zcache = None }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (bits64 t)

(* The cache record is immutable once built, so sharing it with the copy
   is safe; only the per-instance [zcache] slot is mutable. *)
let copy t = { state = t.state; zcache = t.zcache }

(* 53 high-quality bits -> [0,1) *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63. *)
  let v = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t p = float t < p

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t ~mean ~stddev =
  let u1 = 1.0 -. float t in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~median ~sigma =
  median *. exp (normal t ~mean:0.0 ~stddev:sigma)

let pareto t ~alpha ~lo ~hi =
  let u = float t in
  let la = lo ** alpha and ha = hi ** alpha in
  (-.((u *. ha) -. (u *. la) -. ha) /. (ha *. la)) ** (-1.0 /. alpha)

(* Zipf sampling by inverting the generalized harmonic CDF with binary
   search over a lazily cached prefix table.  One cache slot per stream:
   a given workload stream samples one (n, theta) shape, and keeping the
   slot on [t] (rather than a process-global table) makes concurrent
   sampling from per-domain streams race-free by construction. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf";
  let cache =
    match t.zcache with
    | Some c when c.zn = n && Float.abs (c.ztheta -. theta) < 1e-9 -> c
    | _ ->
      let cdf = Array.make n 0.0 in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (1.0 /. (float_of_int (i + 1) ** theta));
        cdf.(i) <- !acc
      done;
      let total = !acc in
      for i = 0 to n - 1 do
        cdf.(i) <- cdf.(i) /. total
      done;
      let c = { zn = n; ztheta = theta; cdf } in
      t.zcache <- Some c;
      c
  in
  let u = float t in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cache.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
