(** Discrete-event simulation kernel.

    A simulation owns a virtual clock and an event queue.  Events are
    thunks executed at their scheduled time, in (time, insertion) order.
    Everything in the repository — Flash dies, NIC queues, dataplane
    threads, load generators — is driven by this loop. *)

type t

(** Handle for a scheduled event, usable with {!cancel}.  Immediate
    (unboxed) value: events live in an internal arena and are recycled
    when popped; the handle packs the arena slot with a generation
    counter so stale handles are harmless. *)
type event_id

(** Event-queue backend.  Both implement the identical (time, then
    insertion seq) execution order — proven by the equivalence tests —
    so results are byte-identical across backends at the same seed;
    only the datapath differs (binary heap vs hierarchical timing
    wheel). *)
type backend = Heap | Wheel

(** Root seed used by {!create} when none is given — recorded in the
    bench harness's JSON metadata so archived results name the exact
    simulations they ran. *)
val default_seed : int64

(** [create ?seed ?backend ()] — [backend] defaults to the process-wide
    selection (see {!set_default_backend}), itself [Wheel] initially
    (byte-identical to [Heap], ~2.5-3x faster on the dataplane mix). *)
val create : ?seed:int64 -> ?backend:backend -> unit -> t

(** Set the backend used by {!create} when none is passed explicitly.
    Intended for per-run CLI selection ([--backend]); call before any
    simulation is created. *)
val set_default_backend : backend -> unit

(** Current process-wide default (for save/restore around a sweep that
    forces a specific backend). *)
val get_default_backend : unit -> backend

(** Backend this simulation runs on. *)
val backend : t -> backend

(** Current virtual time. *)
val now : t -> Time.t

(** Root PRNG stream for this simulation; [Prng.split] it per component. *)
val prng : t -> Prng.t

(** [at t time f] schedules [f] at absolute [time] (must be >= now). *)
val at : t -> Time.t -> (unit -> unit) -> event_id

(** [at_daemon t time f] schedules a {e daemon} event: it runs like a
    normal event while other work is pending, but {!run} stops as soon as
    only daemon events remain, so daemons (telemetry samplers, monitors)
    never keep the simulation alive on their own.  A daemon skipped at the
    end of one [run] stays scheduled and resumes if new work arrives. *)
val at_daemon : t -> Time.t -> (unit -> unit) -> event_id

(** [after t delay f] schedules [f] at [now + delay]. *)
val after : t -> Time.t -> (unit -> unit) -> event_id

(** Cancel a pending event.  Cancelling an already-fired or already-
    cancelled event is a no-op (the stale generation in the handle makes
    this safe even after the arena slot is recycled).  Cancellation
    immediately drops the event's action closure (so payloads captured
    by a cancelled timer — e.g. a retry deadline whose request completed
    — are collectable before the queue entry is popped); the entry
    itself is skipped lazily when its time comes. *)
val cancel : t -> event_id -> unit

(** Whether the event is no longer going to run (observability for
    tests): true for cancelled events and for events that already
    retired — fired, or popped after cancellation. *)
val cancelled : t -> event_id -> bool

(** Run until the event queue drains or [until] (inclusive) is reached.
    Returns the number of events executed by this call. *)
val run : ?until:Time.t -> t -> int

(** Total number of events executed since [create]. *)
val events_executed : t -> int

(** Number of events currently pending. *)
val pending : t -> int

(** Pending events excluding daemons and cancelled events — what
    actually keeps {!run} going.  Use this when polling for outstanding
    work (daemons never drain, and a pile of cancelled retry timers is
    dead weight, not work). *)
val live_pending : t -> int

(** Run [f now] every [every] until [until]. *)
val every : t -> every:Time.t -> until:Time.t -> (Time.t -> unit) -> unit

(** Periodic daemon tick (see {!at_daemon}): runs [f now] every [every]
    for as long as non-daemon work remains, without ever keeping the
    simulation alive by itself.  At most one long-lived periodic daemon
    per simulation is recommended (two daemons would keep each other
    alive across one extra tick after the workload drains). *)
val every_daemon : t -> every:Time.t -> (Time.t -> unit) -> unit
