(** Hierarchical timing wheel keyed by [(Time.t, sequence)] over [int]
    payloads — the second {!Sim} event-queue backend next to {!Heap}.

    Four levels of 256 slots with level-0 granularity 1.024 us give a
    ~73 minute in-wheel horizon; later events wait in an overflow heap
    and are pulled in as the cursor crosses top-level slot boundaries.
    Pop order is exactly (time, then seq) — byte-identical to the heap
    backend (asserted by the qcheck equivalence suite).

    Nodes live in a structure-of-arrays pool with an intrusive freelist:
    {!push}, {!pop} and {!pop_if_le} allocate nothing in steady state
    beyond the returned option/boxed time. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

(** [push t ~time ~seq v] inserts [v].  Times at or beyond 2^61 ns
    (including [Time.infinity]) are routed to the overflow heap. *)
val push : t -> time:Time.t -> seq:int -> int -> unit

(** Smallest element, or [None] when empty. *)
val peek : t -> (Time.t * int * int) option

(** Remove and return the smallest element. *)
val pop : t -> (Time.t * int * int) option

(** [pop_if_le t ~until] pops the smallest element only if its time is
    [<= until]; mirrors {!Heap.pop_if_le}. *)
val pop_if_le : t -> until:Time.t -> (Time.t * int * int) option

(** Empty the wheel.  Node-pool and ready-buffer capacity is kept; the
    cursor resets to zero. *)
val clear : t -> unit
