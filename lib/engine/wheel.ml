(* Hierarchical timing wheel (Varghese & Lauck) over int payloads — the
   second [Sim] event-queue backend next to the binary heap.

   Layout: 4 levels of 256 slots.  Level [l] has slot granularity
   [2^(10 + 8l)] ns (1.024 us at level 0, ~17.2 s at level 3), giving a
   top-level horizon of ~73 minutes; events beyond it wait in an
   overflow min-heap and are pulled in as the cursor crosses top-level
   slot boundaries.

   Invariant (what makes masked slot lookup unambiguous): an entry
   resides at the lowest level [l] whose absolute slot number
   [time lsr shift_l] lies within 256 slots of the cursor's absolute
   slot [wcur lsr shift_l].  Every entry in a masked slot therefore
   belongs to exactly one absolute slot — no lap filtering is needed
   when a slot is drained, and cascade on boundary crossing moves the
   whole chain down one level unconditionally.

   Events inside one level-0 slot are not ordered by the wheel itself;
   draining a slot sorts its chain into the "ready" buffer (descending
   by (time, seq), so the minimum pops from the end).  Events pushed
   below the cursor (legal: the cursor runs ahead of the sim clock once
   a slot has been drained) insert directly into the ready buffer.
   The total pop order is exactly (time, then seq) — byte-identical to
   the heap backend, which the equivalence tests assert.

   Nodes live in a structure-of-arrays pool with an intrusive freelist:
   push and pop allocate nothing in steady state. *)

(* Times at or beyond 2^61 ns (incl. [Time.infinity]) do not fit the
   int-indexed wheel; they stay in the overflow heap and are popped
   directly once everything else has drained. *)
let wheel_time_max = 0x2000_0000_0000_0000L

type t = {
  mutable wcur : int; (* cursor position, ns, level-0-slot aligned *)
  heads : int array; (* 4 levels x 256 slots; head node index or -1 *)
  counts : int array; (* live wheel entries per level *)
  (* node pool (structure of arrays) with intrusive freelist *)
  mutable p_time : int array;
  mutable p_seq : int array;
  mutable p_val : int array;
  mutable p_next : int array;
  mutable free_head : int;
  (* ready buffer: drained/past-cursor entries, descending (time, seq) *)
  mutable r_time : int array;
  mutable r_seq : int array;
  mutable r_val : int array;
  mutable r_len : int;
  ovf : int Heap.t; (* beyond-horizon events, ordered by (time, seq) *)
  mutable total : int;
}

let create () =
  {
    wcur = 0;
    heads = Array.make 1024 (-1);
    counts = Array.make 4 0;
    p_time = [||];
    p_seq = [||];
    p_val = [||];
    p_next = [||];
    free_head = -1;
    r_time = [||];
    r_seq = [||];
    r_val = [||];
    r_len = 0;
    ovf = Heap.create ();
    total = 0;
  }

let length t = t.total
let is_empty t = t.total = 0
let wheel_live t = t.counts.(0) + t.counts.(1) + t.counts.(2) + t.counts.(3)

(* Cold path: double the node pool and chain the fresh slots onto the
   freelist. *)
let grow_pool t =
  let cap = Array.length t.p_next in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let nt = Array.make ncap 0 in
  Array.blit t.p_time 0 nt 0 cap;
  t.p_time <- nt;
  let ns = Array.make ncap 0 in
  Array.blit t.p_seq 0 ns 0 cap;
  t.p_seq <- ns;
  let nv = Array.make ncap 0 in
  Array.blit t.p_val 0 nv 0 cap;
  t.p_val <- nv;
  let nn = Array.make ncap (-1) in
  Array.blit t.p_next 0 nn 0 cap;
  t.p_next <- nn;
  for i = cap to ncap - 2 do
    t.p_next.(i) <- i + 1
  done;
  t.p_next.(ncap - 1) <- -1;
  t.free_head <- cap

(* Cold path: double the ready buffer. *)
let grow_ready t =
  let cap = Array.length t.r_time in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let nt = Array.make ncap 0 in
  Array.blit t.r_time 0 nt 0 t.r_len;
  t.r_time <- nt;
  let ns = Array.make ncap 0 in
  Array.blit t.r_seq 0 ns 0 t.r_len;
  t.r_seq <- ns;
  let nv = Array.make ncap 0 in
  Array.blit t.r_val 0 nv 0 t.r_len;
  t.r_val <- nv

(* Link a node for absolute time [ti] into level [l] (slot shift [sh]). *)
let insert_at t l sh ti seq v =
  if t.free_head < 0 then grow_pool t;
  let n = t.free_head in
  t.free_head <- t.p_next.(n);
  t.p_time.(n) <- ti;
  t.p_seq.(n) <- seq;
  t.p_val.(n) <- v;
  let row = (l lsl 8) lor ((ti lsr sh) land 255) in
  t.p_next.(n) <- t.heads.(row);
  t.heads.(row) <- n;
  t.counts.(l) <- t.counts.(l) + 1

(* Insert at the lowest level whose absolute-slot distance from the
   cursor is under 256.  Precondition: [wcur <= ti] and the level-3
   distance check already passed. *)
let wheel_push_in t ti seq v =
  let c = t.wcur in
  if (ti lsr 10) - (c lsr 10) < 256 then insert_at t 0 10 ti seq v
  else if (ti lsr 18) - (c lsr 18) < 256 then insert_at t 1 18 ti seq v
  else if (ti lsr 26) - (c lsr 26) < 256 then insert_at t 2 26 ti seq v
  else insert_at t 3 34 ti seq v

(* Insert an entry that lands below the cursor into the sorted ready
   buffer (binary search + shift; descending order, minimum at the
   end). *)
let ready_insert t ti sq v =
  if t.r_len = Array.length t.r_time then grow_ready t;
  let lo = ref 0 and hi = ref t.r_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.r_time.(mid) > ti || (t.r_time.(mid) = ti && t.r_seq.(mid) > sq) then lo := mid + 1
    else hi := mid
  done;
  let p = !lo in
  let n = t.r_len - p in
  Array.blit t.r_time p t.r_time (p + 1) n;
  Array.blit t.r_seq p t.r_seq (p + 1) n;
  Array.blit t.r_val p t.r_val (p + 1) n;
  t.r_time.(p) <- ti;
  t.r_seq.(p) <- sq;
  t.r_val.(p) <- v;
  t.r_len <- t.r_len + 1

let push t ~time ~seq v =
  t.total <- t.total + 1;
  if Int64.compare time wheel_time_max >= 0 then Heap.push t.ovf ~time ~seq v
  else begin
    let ti = Int64.to_int time in
    if ti < t.wcur then ready_insert t ti seq v
    else if (ti lsr 34) - (t.wcur lsr 34) < 256 then wheel_push_in t ti seq v
    else Heap.push t.ovf ~time ~seq v
  end

(* Move overflow entries that now fit under the top-level horizon into
   the wheel.  Called when the cursor crosses a top-level slot boundary
   (the horizon advances one top slot at a time, so nothing can be
   skipped) and after a rebase. *)
let pull_overflow t =
  let horizon_slots = (t.wcur lsr 34) + 256 in
  let continue = ref true in
  while !continue do
    (* key-only peek first: the common "nothing to pull" probe allocates
       nothing; the pop's tuple is paid only for entries actually moved *)
    let tm = Heap.peek_time t.ovf in
    if Int64.compare tm wheel_time_max < 0 && Int64.to_int tm lsr 34 < horizon_slots then begin
      match Heap.pop t.ovf with
      | Some (tm, sq, v) -> wheel_push_in t (Int64.to_int tm) sq v
      | None -> continue := false
    end
    else continue := false
  done

(* Redistribute the chain of level-[l] slot [s] one level down.  By the
   residency invariant every node in the masked slot belongs to the
   absolute slot the cursor just entered, so the whole chain moves. *)
let cascade t l s =
  let row = (l lsl 8) lor s in
  let node = ref t.heads.(row) in
  if !node >= 0 then begin
    t.heads.(row) <- -1;
    let sh = 10 + (8 * (l - 1)) in
    let k = ref 0 in
    while !node >= 0 do
      let n = !node in
      node := t.p_next.(n);
      let drow = ((l - 1) lsl 8) lor ((t.p_time.(n) lsr sh) land 255) in
      t.p_next.(n) <- t.heads.(drow);
      t.heads.(drow) <- n;
      incr k
    done;
    t.counts.(l) <- t.counts.(l) - !k;
    t.counts.(l - 1) <- t.counts.(l - 1) + !k
  end

(* Sort the ready buffer descending by (time, seq).  A drained chain is
   in reverse insertion order, so same-time bursts arrive already
   descending by seq and the insertion sort runs near-linear. *)
let sort_ready t =
  for i = 1 to t.r_len - 1 do
    let tm = t.r_time.(i) and sq = t.r_seq.(i) and v = t.r_val.(i) in
    let j = ref (i - 1) in
    while
      !j >= 0 && (t.r_time.(!j) < tm || (t.r_time.(!j) = tm && t.r_seq.(!j) < sq))
    do
      t.r_time.(!j + 1) <- t.r_time.(!j);
      t.r_seq.(!j + 1) <- t.r_seq.(!j);
      t.r_val.(!j + 1) <- t.r_val.(!j);
      decr j
    done;
    t.r_time.(!j + 1) <- tm;
    t.r_seq.(!j + 1) <- sq;
    t.r_val.(!j + 1) <- v
  done

(* Boundary bookkeeping after the cursor advanced to [next]: every
   coarser slot whose boundary [next] lands on is being entered and must
   cascade down, and crossing a top-level boundary advances the horizon,
   so newly-fitting overflow entries are pulled in.  Called on EVERY
   cursor advance — a level-0 drain can land exactly on a coarser
   boundary just like a [step] can, and skipping the cascade there would
   strand the entered slot's entries. *)
let on_boundary t next =
  if next land ((1 lsl 34) - 1) = 0 then begin
    pull_overflow t;
    cascade t 3 ((next lsr 34) land 255)
  end;
  if next land ((1 lsl 26) - 1) = 0 then cascade t 2 ((next lsr 26) land 255);
  if next land ((1 lsl 18) - 1) = 0 then cascade t 1 ((next lsr 18) land 255)

(* Drain the level-0 slot under the cursor into the (empty) ready buffer
   and advance the cursor past it. *)
let drain_slot0 t row =
  let node = ref t.heads.(row) in
  t.heads.(row) <- -1;
  let k = ref 0 in
  while !node >= 0 do
    let n = !node in
    if t.r_len = Array.length t.r_time then grow_ready t;
    t.r_time.(t.r_len) <- t.p_time.(n);
    t.r_seq.(t.r_len) <- t.p_seq.(n);
    t.r_val.(t.r_len) <- t.p_val.(n);
    t.r_len <- t.r_len + 1;
    node := t.p_next.(n);
    (* recycle the node *)
    t.p_next.(n) <- t.free_head;
    t.free_head <- n;
    incr k
  done;
  t.counts.(0) <- t.counts.(0) - !k;
  sort_ready t;
  t.wcur <- ((t.wcur lsr 10) + 1) lsl 10;
  on_boundary t t.wcur

(* Advance the cursor one slot boundary at the lowest occupied level,
   cascading every coarser slot whose boundary the move lands on
   (coarser boundaries are a subset of finer ones, so a single jump can
   never skip past one). *)
let step t =
  let c = t.counts in
  let l = if c.(0) > 0 then 0 else if c.(1) > 0 then 1 else if c.(2) > 0 then 2 else 3 in
  let sh = 10 + (8 * l) in
  let next = ((t.wcur lsr sh) + 1) lsl sh in
  t.wcur <- next;
  on_boundary t next

(* Make the next event reachable.  Returns 0 when empty, 1 when the
   minimum sits at the end of the ready buffer, 2 when it must be popped
   directly from the overflow heap (times >= 2^61 ns only). *)
let ensure t =
  let res = ref (-1) in
  while !res < 0 do
    if t.r_len > 0 then res := 1
    else if t.total = 0 then res := 0
    else if wheel_live t > 0 then begin
      let row = (t.wcur lsr 10) land 255 in
      if t.heads.(row) >= 0 then drain_slot0 t row else step t
    end
    else begin
      (* only the overflow heap holds entries; key-only peek, no alloc *)
      let tm = Heap.peek_time t.ovf in
      if Heap.is_empty t.ovf then res := 0
      else if Int64.compare tm wheel_time_max < 0 then begin
        (* rebase the cursor onto the earliest overflow entry *)
        let ti = Int64.to_int tm in
        let aligned = ti lsr 10 lsl 10 in
        if aligned > t.wcur then t.wcur <- aligned;
        pull_overflow t
      end
      else res := 2
    end
  done;
  !res

let peek t =
  match ensure t with
  | 1 ->
    let i = t.r_len - 1 in
    Some (Int64.of_int t.r_time.(i), t.r_seq.(i), t.r_val.(i))
  | 2 -> Heap.peek t.ovf
  | _ -> None

let pop t =
  match ensure t with
  | 1 ->
    let i = t.r_len - 1 in
    t.r_len <- i;
    t.total <- t.total - 1;
    Some (Int64.of_int t.r_time.(i), t.r_seq.(i), t.r_val.(i))
  | 2 ->
    t.total <- t.total - 1;
    Heap.pop t.ovf
  | _ -> None

(* Single-traversal peek+pop — the event loop's hot path on this
   backend, mirroring [Heap.pop_if_le]. *)
let pop_if_le t ~until =
  match ensure t with
  | 1 ->
    let i = t.r_len - 1 in
    let tm = t.r_time.(i) in
    if
      Int64.compare until wheel_time_max >= 0
      || (Int64.to_int until >= 0 && tm <= Int64.to_int until)
    then begin
      t.r_len <- i;
      t.total <- t.total - 1;
      Some (Int64.of_int tm, t.r_seq.(i), t.r_val.(i))
    end
    else None
  | 2 ->
    (* key-only peek: the miss case (min beyond horizon) allocates
       nothing; [peek_time] is [infinity] on an empty heap, and
       [until < infinity] for any real horizon, so the guard also
       rejects the empty case *)
    if (not (Heap.is_empty t.ovf)) && Time.compare (Heap.peek_time t.ovf) until <= 0 then begin
      t.total <- t.total - 1;
      Heap.pop t.ovf
    end
    else None
  | _ -> None

let clear t =
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.counts 0 4 0;
  let cap = Array.length t.p_next in
  for i = 0 to cap - 2 do
    t.p_next.(i) <- i + 1
  done;
  if cap > 0 then t.p_next.(cap - 1) <- -1;
  t.free_head <- (if cap > 0 then 0 else -1);
  t.r_len <- 0;
  Heap.clear t.ovf;
  t.total <- 0;
  t.wcur <- 0
