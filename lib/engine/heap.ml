(* Binary min-heap in structure-of-arrays layout: the (time, seq) keys and
   the payloads live in three parallel arrays instead of one array of
   boxed [entry] records.  A push therefore allocates nothing (PR 1's
   zero-alloc discipline, extended here): the former per-push entry
   record is gone, and sift-up/-down move array cells, never boxes.

   Sift operations are hole-lifting: the moving element is held in
   locals while parents/children shift into the hole, so each level
   costs one store per array rather than a three-array swap. *)

type 'a t = {
  mutable times : Time.t array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* Capacity of the key arrays — preserved across {!clear} so a reused
   heap never re-climbs the 64-element growth ladder. *)
let capacity t = Array.length t.times

(* Cold path: double the key/payload arrays (or re-arm the payload array
   after a [clear], which drops it to release references while the key
   arrays keep their capacity).  [v] seeds the fresh payload slots — it
   is the value being pushed, so no foreign dummy is pinned. *)
let grow t v =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ntimes = Array.make ncap Time.zero in
    Array.blit t.times 0 ntimes 0 t.size;
    t.times <- ntimes;
    let nseqs = Array.make ncap 0 in
    Array.blit t.seqs 0 nseqs 0 t.size;
    t.seqs <- nseqs;
    let nvalues = Array.make ncap v in
    Array.blit t.values 0 nvalues 0 t.size;
    t.values <- nvalues
  end
  else if Array.length t.values < cap then begin
    (* First push after [clear]: key arrays kept their capacity, the
       payload array was dropped; re-make it at full capacity in one
       step. *)
    let nvalues = Array.make cap v in
    Array.blit t.values 0 nvalues 0 t.size;
    t.values <- nvalues
  end

(* Is the key (time, seq) strictly less than the entry at index [j]? *)
let key_less t time seq j =
  match Time.compare time t.times.(j) with
  | 0 -> seq < t.seqs.(j)
  | c -> c < 0

(* Is the entry at index [j] strictly less than the key (time, seq)? *)
let entry_less t j time seq =
  match Time.compare t.times.(j) time with
  | 0 -> t.seqs.(j) < seq
  | c -> c < 0

let push t ~time ~seq v =
  grow t v;
  let i = ref t.size in
  t.size <- t.size + 1;
  (* hole-lift sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key_less t time seq parent then begin
      t.times.(!i) <- t.times.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.values.(!i) <- t.values.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- v

let peek t = if t.size = 0 then None else Some (t.times.(0), t.seqs.(0), t.values.(0))

(* Allocation-free peek for hot callers that only need the root's key
   ([Wheel]'s overflow checks): no option, no tuple. *)
let peek_time t = if t.size = 0 then Time.infinity else t.times.(0)

(* Remove and return the root; requires [t.size > 0]. *)
let remove_top t =
  let rtime = t.times.(0) and rseq = t.seqs.(0) and rv = t.values.(0) in
  t.size <- t.size - 1;
  let n = t.size in
  if n > 0 then begin
    (* Hole-lift sift down with the former last element. *)
    let ltime = t.times.(n) and lseq = t.seqs.(n) and lv = t.values.(n) in
    (* Blank the vacated slot with a duplicate of a live payload so the
       heap does not pin the removed element (space leak on long runs).
       When the heap drains to empty, slot 0 still references the
       returned element until the next push overwrites it — bounded to
       one entry. *)
    t.values.(n) <- lv;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && key_less t t.times.(r) t.seqs.(r) l then r else l
        in
        if entry_less t c ltime lseq then begin
          t.times.(!i) <- t.times.(c);
          t.seqs.(!i) <- t.seqs.(c);
          t.values.(!i) <- t.values.(c);
          i := c
        end
        else continue := false
      end
    done;
    t.times.(!i) <- ltime;
    t.seqs.(!i) <- lseq;
    t.values.(!i) <- lv
  end;
  (rtime, rseq, rv)

let pop t = if t.size = 0 then None else Some (remove_top t)

(* Single-traversal peek+pop: pop the minimum only when it is due.  This
   is the event loop's hot path — one root comparison replaces the
   peek-then-pop double traversal. *)
let pop_if_le t ~until =
  if t.size = 0 then None
  else if Time.compare t.times.(0) until > 0 then None
  else Some (remove_top t)

let clear t =
  (* Keep the numeric key arrays (capacity survives, see {!capacity});
     drop only the payload array so cleared entries cannot pin their
     payloads.  The next push re-makes it at full capacity in one step
     (see [grow]). *)
  t.values <- [||];
  t.size <- 0
