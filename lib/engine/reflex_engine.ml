(** Discrete-event simulation kernel used by every ReFlex component.

    - {!Time}: int64-nanosecond virtual time
    - {!Prng}: deterministic splitmix64 random streams
    - {!Heap}: the event priority queue (default backend)
    - {!Wheel}: hierarchical timing-wheel event queue (alternate backend)
    - {!Sim}: the event loop
    - {!Resource}: multi-server FIFO queues with two priorities *)

module Time = Time
module Prng = Prng
module Heap = Heap
module Wheel = Wheel
module Sim = Sim
module Resource = Resource
