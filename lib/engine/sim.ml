(* Event records live in a structure-of-arrays arena and are recycled on
   pop: [schedule] allocates nothing in steady state (the former
   per-event record is gone).  An [event_id] is an immediate int packing
   the arena slot with a generation counter; the generation is bumped
   when a slot is recycled, so a stale handle held after its event fired
   can never cancel an unrelated later event (ABA safety). *)

(* 22 slot bits = up to ~4M concurrently pending events; 41 generation
   bits on 63-bit ints. *)
let slot_bits = 22
let slot_mask = (1 lsl slot_bits) - 1

type event_id = int

type backend = Heap | Wheel

type queue = Q_heap of int Heap.t | Q_wheel of Wheel.t

type t = {
  mutable clock : Time.t;
  queue : queue;
  mutable seq : int;
  mutable executed : int;
  mutable daemon_pending : int; (* daemon events currently queued *)
  mutable cancelled_pending : int; (* cancelled non-daemon events awaiting pop *)
  root_prng : Prng.t;
  (* event arena (parallel arrays indexed by slot) *)
  mutable a_cancelled : bool array;
  mutable a_daemon : bool array;
  mutable a_action : (unit -> unit) array;
  mutable a_gen : int array;
  mutable free : int array; (* freelist stack of recycled slots *)
  mutable free_len : int;
}

let default_seed = 0x5EED_0F_F1A5_1234L

(* Backend used by [create] when none is passed explicitly.  Written
   once by the CLI before any simulation exists; reflects the per-run
   [--backend] selection.  Wheel is the default: it is byte-identical to
   the heap at any seed and ~2.5-3x faster on the dataplane event mix
   (see BENCH_BASELINE.json); [--backend heap] keeps the reference
   implementation reachable. *)
let default_backend = ref Wheel

let set_default_backend b = default_backend := b
let get_default_backend () = !default_backend

(* Shared thunk so cancellation and slot recycling can drop an event's
   closure without allocating. *)
let noop_action () = ()

let create ?(seed = default_seed) ?backend () =
  let backend = match backend with Some b -> b | None -> !default_backend in
  {
    clock = Time.zero;
    queue = (match backend with Heap -> Q_heap (Heap.create ()) | Wheel -> Q_wheel (Wheel.create ()));
    seq = 0;
    executed = 0;
    daemon_pending = 0;
    cancelled_pending = 0;
    root_prng = Prng.create seed;
    a_cancelled = [||];
    a_daemon = [||];
    a_action = [||];
    a_gen = [||];
    free = [||];
    free_len = 0;
  }

let backend t = match t.queue with Q_heap _ -> Heap | Q_wheel _ -> Wheel

let now t = t.clock
let prng t = t.root_prng

let queue_length t =
  match t.queue with Q_heap h -> Heap.length h | Q_wheel w -> Wheel.length w

let queue_push t ~time ~seq slot =
  match t.queue with
  | Q_heap h -> Heap.push h ~time ~seq slot
  | Q_wheel w -> Wheel.push w ~time ~seq slot

let queue_pop_if_le t ~until =
  match t.queue with
  | Q_heap h -> Heap.pop_if_le h ~until
  | Q_wheel w -> Wheel.pop_if_le w ~until

(* Cold path: double the arena and push the fresh slots onto the
   freelist (newest first, so low slot numbers are reused first). *)
let grow_arena t =
  let cap = Array.length t.a_gen in
  let ncap = if cap = 0 then 64 else cap * 2 in
  if ncap > slot_mask + 1 then failwith "Sim: event arena exhausted";
  let nc = Array.make ncap false in
  Array.blit t.a_cancelled 0 nc 0 cap;
  t.a_cancelled <- nc;
  let nd = Array.make ncap false in
  Array.blit t.a_daemon 0 nd 0 cap;
  t.a_daemon <- nd;
  let na = Array.make ncap noop_action in
  Array.blit t.a_action 0 na 0 cap;
  t.a_action <- na;
  let ng = Array.make ncap 0 in
  Array.blit t.a_gen 0 ng 0 cap;
  t.a_gen <- ng;
  let nf = Array.make ncap 0 in
  Array.blit t.free 0 nf 0 t.free_len;
  t.free <- nf;
  for slot = ncap - 1 downto cap do
    t.free.(t.free_len) <- slot;
    t.free_len <- t.free_len + 1
  done

(* Take a slot off the freelist and arm it.  Returns the packed handle. *)
let alloc_event t ~daemon f =
  if t.free_len = 0 then grow_arena t;
  t.free_len <- t.free_len - 1;
  let slot = t.free.(t.free_len) in
  t.a_cancelled.(slot) <- false;
  t.a_daemon.(slot) <- daemon;
  t.a_action.(slot) <- f;
  (t.a_gen.(slot) lsl slot_bits) lor slot

(* Retire a popped slot: drop the closure, bump the generation (stale
   handles die), push back onto the freelist. *)
let free_event t slot =
  t.a_action.(slot) <- noop_action;
  t.a_gen.(slot) <- t.a_gen.(slot) + 1;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1

let schedule t ~daemon time f =
  if Time.(time < t.clock) then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%s < %s)" (Time.to_string time)
         (Time.to_string t.clock));
  let id = alloc_event t ~daemon f in
  queue_push t ~time ~seq:t.seq (id land slot_mask);
  t.seq <- t.seq + 1;
  if daemon then t.daemon_pending <- t.daemon_pending + 1;
  id

let at t time f = schedule t ~daemon:false time f
let at_daemon t time f = schedule t ~daemon:true time f

let after t delay f = at t (Time.add t.clock delay) f

let cancel t id =
  let slot = id land slot_mask in
  (* A stale generation means the event already fired (or was popped
     after an earlier cancel) and the slot was recycled: no-op. *)
  if slot < Array.length t.a_gen && t.a_gen.(slot) = id lsr slot_bits
     && not t.a_cancelled.(slot) then begin
    t.a_cancelled.(slot) <- true;
    (* Blank the action so a cancelled timer does not pin its closure's
       environment (request payloads, connections) until the queue pops
       it — retry timers cancel on every successful completion, so the
       window between cancel and pop can hold thousands of dead events. *)
    t.a_action.(slot) <- noop_action;
    if not t.a_daemon.(slot) then t.cancelled_pending <- t.cancelled_pending + 1
  end

(* True for events that were cancelled and also for events that already
   retired (fired, or popped after cancellation): a dead handle is never
   "live and uncancelled". *)
let cancelled t id =
  let slot = id land slot_mask in
  slot >= Array.length t.a_gen
  || t.a_gen.(slot) <> id lsr slot_bits
  || t.a_cancelled.(slot)

let run ?(until = Time.infinity) t =
  let executed_before = t.executed in
  let continue = ref true in
  while !continue do
    (* Stop once only daemon events remain: daemons (telemetry samplers
       and the like) observe the simulation but never keep it alive, so
       [run] still terminates when the real workload drains.  Unexecuted
       daemons stay queued and resume if new work arrives later. *)
    if queue_length t <= t.daemon_pending then continue := false
    else
      (* Single queue traversal per event: pop only when the minimum is
         due, instead of the former peek-then-pop pair. *)
      match queue_pop_if_le t ~until with
      | None -> continue := false
      | Some (time, _, slot) ->
        let daemon = t.a_daemon.(slot) in
        let was_cancelled = t.a_cancelled.(slot) in
        let action = t.a_action.(slot) in
        free_event t slot;
        if daemon then t.daemon_pending <- t.daemon_pending - 1
        else if was_cancelled then t.cancelled_pending <- t.cancelled_pending - 1;
        (* A daemon left behind by an earlier [run] whose clock was forced
           forward to [until] can carry a stale timestamp; never move the
           clock backwards. *)
        t.clock <- Time.max t.clock time;
        if not was_cancelled then begin
          t.executed <- t.executed + 1;
          action ()
        end
  done;
  (* The clock advances to [until] even if the queue drained earlier, so
     that rate computations based on [now] are well defined. *)
  if Time.(until < Time.infinity) && Time.(t.clock < until) then t.clock <- until;
  t.executed - executed_before

let events_executed t = t.executed
let pending t = queue_length t

(* Cancelled non-daemon events still occupy queue slots until their time
   comes, but they are dead weight: polling loops that wait for
   [live_pending = 0] must not spin on a pile of cancelled retry
   timers. *)
let live_pending t = queue_length t - t.daemon_pending - t.cancelled_pending

let every t ~every:period ~until f =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every: non-positive period";
  let rec tick time =
    if Time.(time <= until) then
      ignore
        (at t time (fun () ->
             f time;
             let next = Time.add time period in
             (* Guard int64 wrap-around near Time.infinity: a wrapped
                [next] would be "in the past" and make [at] raise from
                inside the event loop. *)
             if Time.(next > time) then tick next))
  in
  let first = Time.add t.clock period in
  if Time.(first > t.clock) then tick first

let every_daemon t ~every:period f =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every_daemon: non-positive period";
  let rec tick time =
    ignore
      (at_daemon t time (fun () ->
           (* After an idle gap the scheduled [time] may be stale (the
              clock was forced forward); report the actual clock. *)
           f t.clock;
           let next = Time.max (Time.add time period) t.clock in
           if Time.(next > time) then tick next))
  in
  let first = Time.add t.clock period in
  if Time.(first > t.clock) then tick first
