type event = { mutable cancelled : bool; daemon : bool; mutable action : unit -> unit }

type event_id = event

type t = {
  mutable clock : Time.t;
  heap : event Heap.t;
  mutable seq : int;
  mutable executed : int;
  mutable daemon_pending : int; (* daemon events currently in the heap *)
  root_prng : Prng.t;
}

let default_seed = 0x5EED_0F_F1A5_1234L
let create ?(seed = default_seed) () =
  {
    clock = Time.zero;
    heap = Heap.create ();
    seq = 0;
    executed = 0;
    daemon_pending = 0;
    root_prng = Prng.create seed;
  }

let now t = t.clock
let prng t = t.root_prng

let schedule t ~daemon time f =
  if Time.(time < t.clock) then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%s < %s)" (Time.to_string time)
         (Time.to_string t.clock));
  let ev = { cancelled = false; daemon; action = f } in
  Heap.push t.heap ~time ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  if daemon then t.daemon_pending <- t.daemon_pending + 1;
  ev

let at t time f = schedule t ~daemon:false time f
let at_daemon t time f = schedule t ~daemon:true time f

let after t delay f = at t (Time.add t.clock delay) f

(* Shared thunk so cancellation can drop the event's closure without
   allocating. *)
let noop_action () = ()

let cancel _t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    (* Blank the action so a cancelled timer does not pin its closure's
       environment (request payloads, connections) until the heap pops it
       — retry timers cancel on every successful completion, so the
       window between cancel and pop can hold thousands of dead events. *)
    ev.action <- noop_action
  end

let cancelled (ev : event_id) = ev.cancelled

let run ?(until = Time.infinity) t =
  let executed_before = t.executed in
  let continue = ref true in
  while !continue do
    (* Stop once only daemon events remain: daemons (telemetry samplers
       and the like) observe the simulation but never keep it alive, so
       [run] still terminates when the real workload drains.  Unexecuted
       daemons stay in the heap and resume if new work arrives later. *)
    if Heap.length t.heap <= t.daemon_pending then continue := false
    else
      (* Single heap traversal per event: pop only when the minimum is due,
         instead of the former peek-then-pop pair. *)
      match Heap.pop_if_le t.heap ~until with
      | None -> continue := false
      | Some (time, _, ev) ->
        if ev.daemon then t.daemon_pending <- t.daemon_pending - 1;
        (* A daemon left behind by an earlier [run] whose clock was forced
           forward to [until] can carry a stale timestamp; never move the
           clock backwards. *)
        t.clock <- Time.max t.clock time;
        if not ev.cancelled then begin
          t.executed <- t.executed + 1;
          ev.action ()
        end
  done;
  (* The clock advances to [until] even if the queue drained earlier, so
     that rate computations based on [now] are well defined. *)
  if Time.(until < Time.infinity) && Time.(t.clock < until) then t.clock <- until;
  t.executed - executed_before

let events_executed t = t.executed
let pending t = Heap.length t.heap
let live_pending t = Heap.length t.heap - t.daemon_pending

let every t ~every:period ~until f =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every: non-positive period";
  let rec tick time =
    if Time.(time <= until) then
      ignore
        (at t time (fun () ->
             f time;
             let next = Time.add time period in
             (* Guard int64 wrap-around near Time.infinity: a wrapped
                [next] would be "in the past" and make [at] raise from
                inside the event loop. *)
             if Time.(next > time) then tick next))
  in
  let first = Time.add t.clock period in
  if Time.(first > t.clock) then tick first

let every_daemon t ~every:period f =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every_daemon: non-positive period";
  let rec tick time =
    ignore
      (at_daemon t time (fun () ->
           (* After an idle gap the scheduled [time] may be stale (the
              clock was forced forward); report the actual clock. *)
           f t.clock;
           let next = Time.max (Time.add time period) t.clock in
           if Time.(next > time) then tick next))
  in
  let first = Time.add t.clock period in
  if Time.(first > t.clock) then tick first
