(** Binary min-heap keyed by [(Time.t, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant execute in FIFO order — essential for deterministic replay.

    The heap stores keys and payloads in parallel arrays
    (structure-of-arrays), so {!push} allocates nothing in steady state:
    no per-entry box exists. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Allocated slot count of the backing key arrays.  Preserved across
    {!clear} so a reused heap does not re-climb the growth ladder. *)
val capacity : 'a t -> int

(** [push t ~time ~seq v] inserts [v]. *)
val push : 'a t -> time:Time.t -> seq:int -> 'a -> unit

(** Smallest element, or [None] when empty. *)
val peek : 'a t -> (Time.t * int * 'a) option

(** The smallest element's time, [Time.infinity] when empty.  Unlike
    {!peek} this allocates nothing — for hot callers that only compare
    the root against a horizon before deciding to pop. *)
val peek_time : 'a t -> Time.t

(** Remove and return the smallest element. *)
val pop : 'a t -> (Time.t * int * 'a) option

(** [pop_if_le t ~until] pops the smallest element only if its time is
    [<= until]; returns [None] when the heap is empty or the minimum is
    beyond the horizon.  Equivalent to a {!peek} guard followed by
    {!pop}, in a single traversal — the simulator's hot path. *)
val pop_if_le : 'a t -> until:Time.t -> (Time.t * int * 'a) option

(** Empty the heap, dropping all references to stored values (the payload
    array is released, so cleared entries can be collected).  The numeric
    key arrays keep their capacity — see {!capacity} — and the payload
    array is re-made at full capacity on the next {!push}. *)
val clear : 'a t -> unit
