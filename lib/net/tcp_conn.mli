(** A TCP connection between two hosts on the fabric.

    Carries typed messages (the simulator passes message values and
    charges the wire for their encoded size).  Guarantees per-direction
    FIFO delivery — the only ordering the paper's ReFlex provides (§4.1
    "Limitations").  The sender's transmit-path latency is applied here;
    the sender's CPU cost is charged by the sending component, since
    clients and servers model their cores differently. *)

type 'a t

(** [telemetry] (default disabled) counts per-direction messages and
    out-of-order buffering into the world counters [net/to_server_msgs],
    [net/to_client_msgs] and [net/ooo_buffered]. *)
val connect :
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  Fabric.t ->
  client:Fabric.host ->
  server:Fabric.host ->
  'a t

(** Install the message handler on each side.  Messages delivered before a
    handler is installed are queued. *)
val set_server_handler : 'a t -> ('a -> size:int -> unit) -> unit

val set_client_handler : 'a t -> ('a -> size:int -> unit) -> unit

(** [send_to_server conn ~size msg] — [size] is the wire size in bytes. *)
val send_to_server : 'a t -> size:int -> 'a -> unit

val send_to_client : 'a t -> size:int -> 'a -> unit

val client_host : 'a t -> Fabric.host
val server_host : 'a t -> Fabric.host

(** Messages delivered so far in each direction. *)
val delivered_to_server : 'a t -> int

val delivered_to_client : 'a t -> int
