(** The datacenter network: hosts with NICs on a switched 10GbE fabric.

    Models the paper's testbed (§5.1): Intel 82599ES 10GbE NICs through an
    Arista switch, jumbo frames, LRO/GRO off, 20us interrupt coalescing on
    Linux endpoints.  Each host has full-duplex tx/rx links whose
    serialization enforces the 10GbE bandwidth ceiling — this is what caps
    4KB IOPS at the NIC before the Flash device saturates (§5.1 "I/O
    size"). *)

open Reflex_engine

type t
type host

val create :
  Sim.t ->
  ?bandwidth_gbps:float ->
  ?switch_latency:Time.t ->
  ?nic_latency:Time.t ->
  unit ->
  t

val sim : t -> Sim.t

val add_host : t -> name:string -> stack:Stack_model.t -> host
val host_name : host -> string
val host_stack : host -> Stack_model.t

(** [transmit t ~src ~dst ~bytes k] delivers [bytes] from [src] to [dst]:
    serialization on the source tx link, NIC+switch propagation,
    serialization on the destination rx link, then the destination stack's
    receive delay (coalescing, wakeups).  [k] runs at delivery. *)
val transmit : t -> src:host -> dst:host -> bytes:int -> (unit -> unit) -> unit

(** Cumulative bytes sent by a host (for bandwidth accounting). *)
val bytes_sent : host -> int

val bytes_received : host -> int

(** Seconds to serialize [bytes] at line rate — the bandwidth ceiling. *)
val serialization_time : t -> bytes:int -> Time.t

(** {1 Fault injection}

    Hooks driven by [Reflex_faults.Injector].  Until [set_fault_prng] is
    called the transmit path is byte-identical (including PRNG draw
    order) to a fabric without fault support.  The fault PRNG is owned by
    the injector, never split from the simulation's root stream, so
    arming faults does not perturb other components' randomness. *)

(** Arm the fault path with the injector's PRNG (used for loss/dup
    Bernoulli draws).  Must be called before the probabilities below have
    any effect. *)
val set_fault_prng : t -> Reflex_engine.Prng.t -> unit

(** Link flap: every transmission starting before [until] stalls until
    [until] (TCP keeps the segment and sends it when the link returns).
    Pass a past time (e.g. [Time.zero]) to end the flap. *)
val set_link_down_until : t -> until:Time.t -> unit

(** Packet loss, modeled as TCP retransmission: each message is
    independently charged one [rto] delay with probability [prob].  The
    stream never drops a segment — it arrives an RTO later, which is what
    the receiver of a reliable byte stream observes.
    @raise Invalid_argument unless [0 <= prob < 1]. *)
val set_loss : t -> prob:float -> rto:Time.t -> unit

(** Duplicate delivery: each message is delivered twice with probability
    [prob] (receive-side reassembly suppresses the copy).
    @raise Invalid_argument unless [0 <= prob < 1]. *)
val set_dup : t -> prob:float -> unit

(** Fault-path counters (observability). *)
val losses : t -> int

val duplicates : t -> int
val flap_stalls : t -> int
