open Reflex_engine

type host = {
  name : string;
  stack : Stack_model.t;
  tx_link : Resource.t;
  rx_link : Resource.t;
  prng : Prng.t;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
}

type t = {
  sim : Sim.t;
  ns_per_byte : float;
  switch_latency : Time.t;
  nic_latency : Time.t;
  (* ---- fault-injection state (lib/faults) ----
     [faulty] is the single guard [transmit] reads; while false (the
     default) the pre-fault code path runs unchanged and no extra PRNG
     draws happen, keeping fault-free builds byte-identical.  The fault
     PRNG is owned by the injector (passed in via [set_fault_prng]), so
     arming faults never perturbs the simulation's root PRNG streams. *)
  mutable faulty : bool;
  mutable fault_prng : Prng.t option;
  mutable link_down_until : Time.t; (* flap: transmissions stall until then *)
  mutable loss_prob : float; (* per-message retransmission probability *)
  mutable dup_prob : float; (* per-message duplicate-delivery probability *)
  mutable rto : Time.t; (* retransmission delay charged per loss *)
  mutable losses : int;
  mutable dups : int;
  mutable flap_stalls : int;
}

let create sim ?(bandwidth_gbps = 10.0) ?(switch_latency = Time.of_float_us 1.2)
    ?(nic_latency = Time.of_float_us 0.7) () =
  if bandwidth_gbps <= 0.0 then invalid_arg "Fabric.create: bandwidth";
  {
    sim;
    ns_per_byte = 8.0 /. bandwidth_gbps;
    switch_latency;
    nic_latency;
    faulty = false;
    fault_prng = None;
    link_down_until = Time.zero;
    loss_prob = 0.0;
    dup_prob = 0.0;
    rto = Time.ms 1;
    losses = 0;
    dups = 0;
    flap_stalls = 0;
  }

let sim t = t.sim

let add_host t ~name ~stack =
  {
    name;
    stack;
    tx_link = Resource.create t.sim ~servers:1;
    rx_link = Resource.create t.sim ~servers:1;
    prng = Prng.split (Sim.prng t.sim);
    tx_bytes = 0;
    rx_bytes = 0;
  }

let host_name h = h.name
let host_stack h = h.stack

let serialization_time t ~bytes = Time.of_float_ns (float_of_int bytes *. t.ns_per_byte)

(* Fault penalties charged to one transmission, computed before the tx
   link is occupied.  A link flap stalls the message until the link is
   back; a "lost" message is charged one retransmission timeout (TCP
   retransmits — the stream never actually loses a segment, it just
   arrives an RTO later); a duplicated message is delivered twice (the
   receiver's reassembly layer suppresses the copy). *)
let fault_penalties t =
  match t.fault_prng with
  | None -> (Time.zero, false)
  | Some prng ->
    let now = Sim.now t.sim in
    let stall =
      if Time.(now < t.link_down_until) then begin
        t.flap_stalls <- t.flap_stalls + 1;
        Time.diff t.link_down_until now
      end
      else Time.zero
    in
    let stall =
      if t.loss_prob > 0.0 && Prng.bool prng t.loss_prob then begin
        t.losses <- t.losses + 1;
        Time.add stall t.rto
      end
      else stall
    in
    let dup = t.dup_prob > 0.0 && Prng.bool prng t.dup_prob in
    if dup then t.dups <- t.dups + 1;
    (stall, dup)

let transmit t ~src ~dst ~bytes k =
  if bytes <= 0 then invalid_arg "Fabric.transmit: non-positive size";
  src.tx_bytes <- src.tx_bytes + bytes;
  let ser = serialization_time t ~bytes in
  let stall, dup = if t.faulty then fault_penalties t else (Time.zero, false) in
  let start_tx () =
    Resource.submit src.tx_link ~service:ser (fun ~started:_ ~finished:_ ->
        (* NIC -> switch -> NIC propagation. *)
        let wire = Time.add t.switch_latency (Time.scale t.nic_latency 2.0) in
        ignore
          (Sim.after t.sim wire (fun () ->
               Resource.submit dst.rx_link ~service:ser (fun ~started:_ ~finished:_ ->
                   dst.rx_bytes <- dst.rx_bytes + bytes;
                   let stack_delay = Stack_model.rx_delay dst.stack dst.prng in
                   ignore (Sim.after t.sim stack_delay k);
                   if dup then
                     (* The duplicate pops out one extra stack delay later:
                        same payload, same continuation; dedup is the
                        receiver's job (see Tcp_conn.arrive). *)
                     ignore
                       (Sim.after t.sim (Time.add stack_delay t.nic_latency) k)))))
  in
  if Time.(stall > Time.zero) then ignore (Sim.after t.sim stall start_tx) else start_tx ()

let bytes_sent h = h.tx_bytes
let bytes_received h = h.rx_bytes

(* ---- Fault-injection API (driven by Reflex_faults.Injector) ---------- *)

let set_fault_prng t prng =
  t.fault_prng <- Some prng;
  t.faulty <- true

let set_link_down_until t ~until = t.link_down_until <- until

let check_prob name p =
  if p < 0.0 || p >= 1.0 then invalid_arg (Printf.sprintf "Fabric.%s: probability" name)

let set_loss t ~prob ~rto =
  check_prob "set_loss" prob;
  if Time.(rto <= Time.zero) && prob > 0.0 then invalid_arg "Fabric.set_loss: rto";
  t.loss_prob <- prob;
  t.rto <- (if Time.(rto > Time.zero) then rto else t.rto)

let set_dup t ~prob =
  check_prob "set_dup" prob;
  t.dup_prob <- prob

let losses t = t.losses
let duplicates t = t.dups
let flap_stalls t = t.flap_stalls
