open Reflex_engine
open Reflex_telemetry

(* Per-direction ordering works the way TCP reassembly does: each message
   carries a sequence number; out-of-order arrivals (receive-side jitter
   can reorder raw deliveries) are buffered until the gap fills. *)

type 'a endpoint = {
  mutable handler : ('a -> size:int -> unit) option;
  pending : ('a * int) Queue.t;
  mutable send_seq : int;
  mutable next_deliver : int;
  out_of_order : (int, 'a * int) Hashtbl.t;
  mutable delivered : int;
}

type 'a t = {
  fabric : Fabric.t;
  client : Fabric.host;
  server : Fabric.host;
  to_server : 'a endpoint;
  to_client : 'a endpoint;
  (* World-level counters (shared by every connection of the world via
     the registry); untouched when telemetry is off. *)
  tel_on : bool;
  c_to_server : Telemetry.counter; (* net/to_server_msgs *)
  c_to_client : Telemetry.counter; (* net/to_client_msgs *)
  c_ooo : Telemetry.counter; (* net/ooo_buffered *)
  (* Cost profiler (lib/obs), cached off the telemetry instance; scopes
     the send path under the Net bucket.  Disabled by default. *)
  prof : Reflex_obs.Profiler.t;
}

let make_endpoint () =
  {
    handler = None;
    pending = Queue.create ();
    send_seq = 0;
    next_deliver = 0;
    out_of_order = Hashtbl.create 16;
    delivered = 0;
  }

let connect ?(telemetry = Telemetry.disabled) fabric ~client ~server =
  {
    fabric;
    client;
    server;
    to_server = make_endpoint ();
    to_client = make_endpoint ();
    tel_on = Telemetry.enabled telemetry;
    c_to_server = Telemetry.counter telemetry "net/to_server_msgs";
    c_to_client = Telemetry.counter telemetry "net/to_client_msgs";
    c_ooo = Telemetry.counter telemetry "net/ooo_buffered";
    prof = Telemetry.profiler telemetry;
  }

let deliver ep msg size =
  ep.delivered <- ep.delivered + 1;
  match ep.handler with
  | Some h -> h msg ~size
  | None -> Queue.add (msg, size) ep.pending

let set_handler ep h =
  ep.handler <- Some h;
  Queue.iter (fun (msg, size) -> h msg ~size) ep.pending;
  Queue.clear ep.pending

let set_server_handler t h = set_handler t.to_server h
let set_client_handler t h = set_handler t.to_client h

let arrive t ep seq msg size =
  (* Duplicate suppression: a fault-injected duplicate (or, in a real
     stack, a retransmitted segment racing its original) arrives with a
     sequence number already delivered; reassembly drops it, otherwise
     it would sit in [out_of_order] below the cursor forever. *)
  if seq < ep.next_deliver then ()
  else begin
    (* A gap means receive-side jitter reordered raw deliveries. *)
    if t.tel_on && seq <> ep.next_deliver then Telemetry.incr t.c_ooo;
    Hashtbl.replace ep.out_of_order seq (msg, size);
    let rec drain () =
      match Hashtbl.find_opt ep.out_of_order ep.next_deliver with
      | Some (m, s) ->
        Hashtbl.remove ep.out_of_order ep.next_deliver;
        ep.next_deliver <- ep.next_deliver + 1;
        deliver ep m s;
        drain ()
      | None -> ()
    in
    drain ()
  end

let send t ~src ~dst ~ep ~size msg =
  Reflex_obs.Profiler.enter t.prof Reflex_obs.Profiler.Subsystem.Net;
  let sim = Fabric.sim t.fabric in
  let seq = ep.send_seq in
  ep.send_seq <- seq + 1;
  let tx = Stack_model.tx_delay (Fabric.host_stack src) (Sim.prng sim) in
  ignore
    (Sim.after sim tx (fun () ->
         Fabric.transmit t.fabric ~src ~dst ~bytes:size (fun () -> arrive t ep seq msg size)));
  Reflex_obs.Profiler.leave t.prof Reflex_obs.Profiler.Subsystem.Net

let send_to_server t ~size msg =
  if t.tel_on then Telemetry.incr t.c_to_server;
  send t ~src:t.client ~dst:t.server ~ep:t.to_server ~size msg

let send_to_client t ~size msg =
  if t.tel_on then Telemetry.incr t.c_to_client;
  send t ~src:t.server ~dst:t.client ~ep:t.to_client ~size msg

let client_host t = t.client
let server_host t = t.server
let delivered_to_server t = t.to_server.delivered
let delivered_to_client t = t.to_client.delivered
