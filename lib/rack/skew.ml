open Reflex_engine
module Detect = Reflex_monitor.Detect

type t = {
  ratio : Detect.Ewma.t;  (* smoothed max/mean depth ratio *)
  threshold : float;
  min_ratio : float;
  cooldown : Time.t;
  mutable last_fire : Time.t option;
  mutable fires : int;
}

let create ?(alpha = 0.3) ?(threshold = 1.0) ?(min_ratio = 2.0)
    ?(cooldown = Time.ms 2) () =
  if min_ratio < 1.0 then invalid_arg "Skew.create: min_ratio < 1.0";
  {
    ratio = Detect.Ewma.create ~alpha ();
    threshold;
    min_ratio;
    cooldown;
    last_fire = None;
    fires = 0;
  }

let fires t = t.fires
let imbalance t = if Detect.Ewma.n t.ratio = 0 then 1.0 else Detect.Ewma.mean t.ratio

let observe t ~now ~depths =
  let n = Array.length depths in
  if n < 2 then None
  else begin
    let total = ref 0 and hot = ref 0 in
    for i = 0 to n - 1 do
      total := !total + depths.(i);
      if depths.(i) > depths.(!hot) then hot := i
    done;
    let mean = float_of_int !total /. float_of_int n in
    let var = ref 0.0 in
    for i = 0 to n - 1 do
      let d = float_of_int depths.(i) -. mean in
      var := !var +. (d *. d)
    done;
    (* Spread floored at one request: an idle rack (all depths ~0) must
       not turn a single queued request into an infinite z-score. *)
    let sigma = Float.max 1.0 (sqrt (!var /. float_of_int n)) in
    let cross_z = (float_of_int depths.(!hot) -. mean) /. sigma in
    let ratio = if mean <= 0.0 then 1.0 else float_of_int depths.(!hot) /. mean in
    ignore (Detect.Ewma.observe t.ratio ratio);
    let smoothed = Detect.Ewma.mean t.ratio in
    let cooled =
      match t.last_fire with
      | None -> true
      | Some last -> Time.(now >= Time.add last t.cooldown)
    in
    if
      Detect.Ewma.warmed_up t.ratio
      && smoothed >= t.min_ratio
      && cross_z >= t.threshold
      && cooled
    then begin
      t.last_fire <- Some now;
      t.fires <- t.fires + 1;
      Some !hot
    end
    else None
  end
