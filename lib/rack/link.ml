open Reflex_engine

(* Per-port one-way delays.  Offsets are a fixed function of the port
   index (a multiplicative-hash spray over [0, spread)), not a PRNG
   draw, so two racks of the same size always carry identical tables —
   byte-stable reports need no seed plumbing here. *)

type t = { switch : Time.t; ports : Time.t array }

let spray i spread_ns =
  if spread_ns <= 0 then 0
  else
    (* Knuth multiplicative hash of the port index, folded into the
       spread; deterministic and well-scattered for small [i]. *)
    let h = (i + 1) * 2654435761 land 0x3FFFFFFF in
    h mod spread_ns

let create ?(switch = Time.us 1) ?(port_base = Time.ns 300) ?(port_spread = Time.ns 600)
    ~n () =
  if n < 1 then invalid_arg "Link.create: n < 1";
  let spread_ns = int_of_float (Time.to_float_ns port_spread) in
  let ports = Array.make n Time.zero in
  for i = 0 to n - 1 do
    ports.(i) <- Time.add port_base (Time.ns (spray i spread_ns))
  done;
  { switch; ports }

let n_ports t = Array.length t.ports
let port_delay t i = t.ports.(i)
let ingress t i = Time.add t.switch t.ports.(i)

let latency t ~src ~dst =
  if src = dst then Time.zero
  else Time.add t.ports.(src) (Time.add t.switch t.ports.(dst))
