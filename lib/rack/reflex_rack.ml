(* Umbrella namespace for the rack-scale two-layer scheduler
   (reflex-lint: iface_exempt — pure re-export, see lint.manifest). *)

module Link = Link
module Policy = Policy
module Skew = Skew
module Rack = Rack
