open Reflex_engine

type kind = Random | Round_robin | Jsq | Po2c | Oracle

let all = [ Random; Round_robin; Jsq; Po2c; Oracle ]

let kind_name = function
  | Random -> "random"
  | Round_robin -> "round-robin"
  | Jsq -> "jsq"
  | Po2c -> "po2c"
  | Oracle -> "oracle"

let kind_of_name = function
  | "random" -> Some Random
  | "round-robin" | "rr" -> Some Round_robin
  | "jsq" -> Some Jsq
  | "po2c" -> Some Po2c
  | "oracle" -> Some Oracle
  | _ -> None

let kind_index = function
  | Random -> 0
  | Round_robin -> 1
  | Jsq -> 2
  | Po2c -> 3
  | Oracle -> 4

type t = { k : kind; prng : Prng.t; mutable cursor : int }

let create k ~prng = { k; prng; cursor = 0 }
let kind t = t.k

(* Argmin of [depth] over [candidates]; ties toward the lowest server
   index regardless of candidate order. *)
let argmin candidates depth =
  let best = ref candidates.(0) in
  let best_d = ref depth.(candidates.(0)) in
  for i = 1 to Array.length candidates - 1 do
    let c = candidates.(i) in
    let d = depth.(c) in
    if d < !best_d || (d = !best_d && c < !best) then begin
      best := c;
      best_d := d
    end
  done;
  !best

let pick t ~candidates ~sampled ~exact =
  let n = Array.length candidates in
  if n = 0 then invalid_arg "Policy.pick: empty candidate set";
  if n = 1 then candidates.(0)
  else
    match t.k with
    | Random -> candidates.(Prng.int t.prng n)
    | Round_robin ->
      let c = candidates.(t.cursor mod n) in
      t.cursor <- (t.cursor + 1) mod n;
      c
    | Jsq -> argmin candidates sampled
    | Po2c ->
      let a = candidates.(Prng.int t.prng n) in
      let b = candidates.(Prng.int t.prng n) in
      if sampled.(b) < sampled.(a) || (sampled.(b) = sampled.(a) && b < a) then b else a
    | Oracle -> argmin candidates exact
