(** Cross-server skew detector driving tenant migration.

    Fed one vector of per-server queue depths per probe tick (the same
    probe-aged samples the balancing policies see), it decides when one
    server is persistently hotter than the rack and names it.  Two
    conditions must hold simultaneously:

    - {e cross-sectional} outlier: the hottest server's depth sits
      [threshold] standard deviations above the rack mean {e right now}
      (spread computed across servers, floored at one request so an
      idle rack never divides by ~0);
    - {e persistent} imbalance: the max/mean depth ratio, smoothed
      through a {!Reflex_monitor.Detect.Ewma} baseline, exceeds
      [min_ratio] — one spiky probe is not skew, and the EWMA's warmup
      also keeps the detector quiet for the first few ticks.

    Firings are rate-limited by [cooldown] so a migration gets time to
    land (registration + queue drain) before the next one is proposed.
    The detector is pure bookkeeping over the samples it is shown —
    deterministic given a deterministic probe sequence. *)

open Reflex_engine

type t

(** Defaults: [alpha = 0.3] (EWMA smoothing), [threshold = 1.0] sigmas,
    [min_ratio = 2.0], [cooldown = 2ms].
    @raise Invalid_argument when [min_ratio < 1.0]. *)
val create :
  ?alpha:float -> ?threshold:float -> ?min_ratio:float -> ?cooldown:Time.t -> unit -> t

(** [observe t ~now ~depths] folds one probe vector in and returns
    [Some hot_server] when skew is detected (and the cooldown has
    elapsed), [None] otherwise.  Needs at least two servers to define a
    cross-section; fewer always returns [None]. *)
val observe : t -> now:Time.t -> depths:int array -> int option

(** Number of times {!observe} returned [Some _]. *)
val fires : t -> int

(** Smoothed max/mean imbalance ratio (1.0 before any observation). *)
val imbalance : t -> float
