(** Rack topology and the two-layer scheduler's top layer.

    A rack is N independent ReFlex servers ([Reflex_core.Server]) on one
    simulated fabric, a {!Link} table of per-port latencies, and one
    {!Reflex_core.Global_control} pool doing placement.  On top of that
    this module implements the rack-level request path:

    - {e placement} (bottom of the top layer): {!add_tenant} places a
      tenant's home server and, for read-mostly latency-critical
      tenants, a replica set on distinct servers via
      [Global_control.place_excluding_set], then registers the tenant on
      each (full SLO reservation per replica, as a failover-capable
      deployment would);
    - {e request-level balancing}: {!dispatch_read} asks the configured
      {!Policy} to pick one server from the tenant's replica set, using
      probe-aged queue depths ({!sample_probes}) — only the idealized
      oracle policy sees fresh counters — charges the {!Link} ingress
      delay for the chosen port, and issues the read on the tenant's
      connection to that server;
    - {e migration}: {!migrate} re-homes a tenant online — register on
      the destination first, flip the home pointer, then drain and
      unregister the old attachment once its in-flight requests finish.
      {!rebalance} composes that with placement to move a tenant away
      from a hot server.

    Determinism: servers, hosts and connections are created in index
    order (every PRNG split happens in a fixed sequence), the policy
    PRNG is derived from the rack seed, and all iteration is over arrays
    or insertion-ordered lists — a rack run is byte-identical across
    same-seed reruns, [Runner] domains and heap/wheel event backends. *)

open Reflex_engine
open Reflex_proto

type t

(** [create sim ~n_servers ()] builds the rack: servers named
    ["rack-00"].., one shared fabric, [n_client_hosts] load-generator
    hosts (default 16) that tenant connections round-robin over, and the
    balancing policy (default {!Policy.Po2c}).  [seed] (default
    [0xBACC5EEDL]) derives every per-server and policy PRNG stream.
    @raise Invalid_argument when [n_servers < 1]. *)
val create :
  Sim.t ->
  n_servers:int ->
  ?n_threads:int ->
  ?profile:Reflex_flash.Device_profile.t ->
  ?policy:Policy.kind ->
  ?n_client_hosts:int ->
  ?link:Link.t ->
  ?seed:int64 ->
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  unit ->
  t

val sim : t -> Sim.t
val n_servers : t -> int
val server : t -> int -> Reflex_core.Server.t
val server_name : int -> string
val control : t -> Reflex_core.Global_control.t
val link : t -> Link.t
val policy_kind : t -> Policy.kind

(** {1 Tenants} *)

(** [add_tenant t ~id ~slo ~replicas] places and registers a tenant.
    The home server is placed first; [replicas - 1] more attachments
    land on distinct servers via the exclusion-set placement.  If fewer
    servers can admit the SLO than requested, the tenant keeps the
    attachments that did register (at least the home).  Registration is
    driven synchronously (the simulation is run in short slices until
    the answers arrive), so the tenant is ready to dispatch on return.
    [`Rejected] when no server admits the SLO.
    @raise Invalid_argument on a duplicate id or [replicas < 1]. *)
val add_tenant :
  t -> id:int -> slo:Message.slo -> replicas:int -> [ `Placed of int array | `Rejected ]

(** [add_tenant_on t ~id ~slo ~server] registers a tenant pinned to one
    specific server, bypassing placement — background/best-effort soak
    load and known-topology tests.
    @raise Invalid_argument on a duplicate id or bad server index. *)
val add_tenant_on :
  t -> id:int -> slo:Message.slo -> server:int -> [ `Placed of int array | `Rejected ]

val n_tenants : t -> int

(** Current home server index. @raise Invalid_argument on unknown id. *)
val tenant_home : t -> tenant:int -> int

(** Current replica server indices (home included), in slot order. *)
val tenant_replicas : t -> tenant:int -> int array

(** The tenant with the most cumulative dispatches homed on [server]
    (ties toward the earliest-registered), [None] when no tenant lives
    there — the migration victim selector. *)
val hottest_tenant_on : t -> server:int -> int option

(** {1 Request path} *)

(** [dispatch_read t ~tenant ~lba ~len] routes one read through the
    balancing policy (see module doc).  Completion updates the rack
    histogram, SLO counters and per-server in-flight accounting, then
    calls [on_complete] (closed-loop generators hang their re-issue
    here).
    @raise Invalid_argument on an unknown tenant. *)
val dispatch_read :
  t ->
  ?on_complete:(Message.status -> unit) ->
  tenant:int ->
  lba:int64 ->
  len:int ->
  unit ->
  unit

(** Refresh the probe-aged [sampled] depth vector from
    [Global_control.probes] — the experiment calls this on its probe
    tick, so policy staleness equals the tick period. *)
val sample_probes : t -> unit

(** Age of the probe-cached depth for [server]: now minus the last
    {!sample_probes} instant (creation time before the first sample).
    Also exported as the [rack/s%02d/probe_age_us] / [rack/probe_age_us]
    telemetry gauges when telemetry is armed. *)
val probe_age : t -> server:int -> Time.t

(** Probe-aged per-server queue depths (what JSQ/po2c see); a copy. *)
val sampled_depths : t -> int array

(** Fresh rack-tracked per-server in-flight counts (what the oracle
    sees); a copy. *)
val exact_inflight : t -> int array

(** Cumulative dispatches per server; a copy. *)
val dispatched : t -> int array

(** {1 Migration} *)

(** [migrate t ~tenant ~dst] re-homes [tenant] onto server [dst].
    [`Noop] when [dst] is already the home (idempotence); [`Flipped]
    when [dst] is already in the replica set (the home pointer moves,
    no wire traffic); [`No_capacity] when [dst] cannot admit the SLO;
    otherwise [`Started] — the destination registration is in flight,
    and once it lands the home flips and the old attachment drains and
    unregisters in the background.
    @raise Invalid_argument on an unknown tenant or bad server index. *)
val migrate :
  t -> tenant:int -> dst:int -> [ `Noop | `Flipped | `Started | `No_capacity ]

(** [rebalance t ~tenant] migrates [tenant] to the best server outside
    its current replica set, per [Global_control.place_excluding_set].
    [`No_target] when no other server admits the SLO. *)
val rebalance : t -> tenant:int -> [ `Started | `No_target ]

(** Completed migrations (home actually flipped). *)
val migrations : t -> int

(** {1 Rack-wide accounting} *)

(** End-to-end read latency histogram (ns) of {e latency-critical}
    completions (best-effort soak traffic has no bound to audit).  The
    live instance — snapshot with [Hdr_histogram.copy] for windowing. *)
val latency_hist : t -> Reflex_stats.Hdr_histogram.t

(** Completed reads. *)
val completed : t -> int

(** Dispatches on behalf of latency-critical tenants (cumulative). *)
val lc_dispatched : t -> int

(** Completions with a non-[Ok] status. *)
val errors : t -> int

(** Completions of latency-critical tenants, and how many of those met
    the tenant's SLO latency bound end-to-end. *)
val slo_total : t -> int

val slo_ok : t -> int

(** {1 Rack tracing hooks}

    Armed by [Reflex_rack_obs.Rack_obs]; every hook is inert (one bool
    test on dispatch, one int test per subsequent stamp) until
    {!set_tracer} is called.  [tr_dispatch] fires at the balancing
    instant (hop 0) and returns a recorder slot id, or [-1] to decline
    tracking this request; [tr_issue] fires when the charged ingress
    delay elapses and the read is about to be issued (hop 1), carrying
    the connection's next request id for server-side correlation;
    [tr_complete] fires at reply delivery (hop 4); [tr_migrate] fires
    for every migration decision that records a [Migrate] event. *)
type tracer = {
  tr_dispatch :
    tenant:int -> server:int -> sampled:int -> slo_bound:Time.t -> now:Time.t -> int;
  tr_issue : slot:int -> server:int -> tenant:int -> req:int64 -> now:Time.t -> unit;
  tr_complete : slot:int -> ok:bool -> now:Time.t -> unit;
  tr_migrate : tenant:int -> src:int -> dst:int -> now:Time.t -> unit;
}

val set_tracer : t -> tracer -> unit
