(** Inter-server link model for the rack topology.

    The fabric ([Reflex_net.Fabric]) already charges per-message NIC,
    switch and serialization delay between any two hosts; what it does
    not model is that a rack has {e per-port} propagation differences:
    cabling, PHY retiming and ToR pipeline depth give each server port a
    small fixed offset.  This module holds those offsets so the rack
    layer can charge an extra one-way delay when it steers a request to
    a particular server, making "which replica" a latency-relevant
    choice and not just a queueing one.

    Latencies are fixed at construction from the port index alone — no
    PRNG — so the matrix is deterministic and identical across runs,
    domains and event backends. *)

open Reflex_engine

type t

(** [create ~n ()] builds the latency table for an [n]-port rack.
    [switch] is the one-way ToR traversal (default 1us); each port adds
    a deterministic offset in [[0, port_spread)] (default spread 600ns)
    on top of [port_base] (default 300ns).
    @raise Invalid_argument when [n < 1]. *)
val create :
  ?switch:Time.t -> ?port_base:Time.t -> ?port_spread:Time.t -> n:int -> unit -> t

val n_ports : t -> int

(** One-way delay of port [i] alone (cable + PHY), exclusive of the
    switch hop. *)
val port_delay : t -> int -> Time.t

(** One-way ingress delay from the rack edge to server [i]:
    switch + port. This is what the balancer charges on dispatch. *)
val ingress : t -> int -> Time.t

(** Server-to-server one-way delay: [port src + switch + port dst];
    {!Time.zero} when [src = dst] (loopback never leaves the host). *)
val latency : t -> src:int -> dst:int -> Time.t
