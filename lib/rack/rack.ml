open Reflex_engine
open Reflex_net
open Reflex_proto
open Reflex_client
module Server = Reflex_core.Server
module Control_plane = Reflex_core.Control_plane
module Global_control = Reflex_core.Global_control
module Slo = Reflex_qos.Slo
module Telemetry = Reflex_telemetry.Telemetry
module Flight = Reflex_obs.Flight
module Hdr = Reflex_stats.Hdr_histogram

(* One tenant connection to one server.  [outstanding] counts dispatches
   the RACK has committed to this attachment — including reads still
   sitting in the ingress-delay window before Client_lib sees them — so
   drain never unregisters a connection with work en route. *)
type attach = {
  a_server : int;
  a_conn : Client_lib.t;
  mutable a_outstanding : int;
}

type tenant = {
  tid : int;
  slo : Message.slo;
  slo_bound : Time.t;  (* latency_us as Time.t; zero for best-effort *)
  mutable home : int;
  mutable replicas : int array;  (* server indices, home in slot 0 at birth *)
  mutable conns : attach list;  (* one per live replica *)
  mutable draining : attach list;  (* migrated-away homes awaiting drain *)
  mutable t_dispatched : int;
}

(* Rack trace hooks (armed by [lib/rack_obs]; inert by default).  The
   dispatch hook returns a recorder slot id (or -1 when the tracer elects
   not to track the request); the slot threads through issue/complete so
   the recorder never searches for its own state on the hot path. *)
type tracer = {
  tr_dispatch :
    tenant:int -> server:int -> sampled:int -> slo_bound:Time.t -> now:Time.t -> int;
  tr_issue : slot:int -> server:int -> tenant:int -> req:int64 -> now:Time.t -> unit;
  tr_complete : slot:int -> ok:bool -> now:Time.t -> unit;
  tr_migrate : tenant:int -> src:int -> dst:int -> now:Time.t -> unit;
}

let null_tracer =
  {
    tr_dispatch = (fun ~tenant:_ ~server:_ ~sampled:_ ~slo_bound:_ ~now:_ -> -1);
    tr_issue = (fun ~slot:_ ~server:_ ~tenant:_ ~req:_ ~now:_ -> ());
    tr_complete = (fun ~slot:_ ~ok:_ ~now:_ -> ());
    tr_migrate = (fun ~tenant:_ ~src:_ ~dst:_ ~now:_ -> ());
  }

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  link : Link.t;
  control : Global_control.t;
  servers : Server.t array;
  hosts : Fabric.host array;  (* shared load-generator hosts *)
  mutable next_host : int;
  policy : Policy.t;
  (* balancing state, indexed by absolute server index *)
  sampled : int array;  (* probe-aged queue depths *)
  exact : int array;  (* fresh rack-tracked in-flight *)
  disp : int array;  (* cumulative dispatches *)
  last_probe : Time.t array;  (* per-server instant of the last probe sample *)
  (* tenants *)
  tenants : (int, tenant) Hashtbl.t;  (* id -> tenant, LOOKUP ONLY *)
  mutable tenants_rev : tenant list;  (* registration order, reversed *)
  mutable n_tenants : int;
  (* rack-wide accounting *)
  hist : Hdr.t;
  mutable completed : int;
  mutable lc_dispatched : int;
  mutable errors : int;
  mutable slo_total : int;
  mutable slo_ok : int;
  mutable migrations : int;
  tel : Telemetry.t;
  fl : Flight.t;
  mutable tracer : tracer;
  mutable tracer_on : bool;
}

let server_name i = Printf.sprintf "rack-%02d" i

let slo_of_message (m : Message.slo) =
  if m.Message.latency_critical then
    Slo.latency_critical ~latency_us:m.Message.latency_us
      ~iops:(float_of_int m.Message.iops) ~read_pct:m.Message.read_pct
  else Slo.best_effort ~read_pct:m.Message.read_pct ()

(* Build [f 0 :: f 1 :: ...] with f applied in ascending index order —
   Array.init's application order is unspecified, and server/host
   construction splits the simulation PRNG, so order is part of the
   deterministic contract here. *)
let init_ordered n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f i :: acc) in
  Array.of_list (go 0 [])

let create sim ~n_servers ?(n_threads = 1) ?profile ?(policy = Policy.Po2c)
    ?(n_client_hosts = 16) ?link ?(seed = 0xBACC5EEDL) ?(telemetry = Telemetry.disabled)
    () =
  if n_servers < 1 then invalid_arg "Rack.create: n_servers < 1";
  let fabric = Fabric.create sim () in
  let link = match link with Some l -> l | None -> Link.create ~n:n_servers () in
  if Link.n_ports link <> n_servers then invalid_arg "Rack.create: link port count";
  let control = Global_control.create () in
  let servers =
    init_ordered n_servers (fun i ->
        Server.create sim ~fabric ?profile ~n_threads
          ~seed:(Int64.add seed (Int64.of_int (1000 + i)))
          ~telemetry ())
  in
  Array.iteri (fun i srv -> Global_control.add_server control ~name:(server_name i) srv) servers;
  let hosts =
    init_ordered n_client_hosts (fun i ->
        Fabric.add_host fabric ~name:(Printf.sprintf "rack-lg%02d" i)
          ~stack:Stack_model.ix_client)
  in
  let t =
    {
      sim;
      fabric;
      link;
      control;
      servers;
      hosts;
      next_host = 0;
      policy = Policy.create policy ~prng:(Prng.create (Int64.add seed 0x9E37L));
      sampled = Array.make n_servers 0;
      exact = Array.make n_servers 0;
      disp = Array.make n_servers 0;
      last_probe = Array.make n_servers (Sim.now sim);
      tenants = Hashtbl.create 4096;
      tenants_rev = [];
      n_tenants = 0;
      hist = Hdr.create ();
      completed = 0;
      lc_dispatched = 0;
      errors = 0;
      slo_total = 0;
      slo_ok = 0;
      migrations = 0;
      tel = telemetry;
      fl = Telemetry.flight telemetry;
      tracer = null_tracer;
      tracer_on = false;
    }
  in
  if Telemetry.enabled telemetry then begin
    for i = 0 to n_servers - 1 do
      Telemetry.register_gauge telemetry
        (Printf.sprintf "rack/s%02d/inflight" i)
        (fun () -> float_of_int t.exact.(i));
      (* Probe-cache age: how stale the jsq/po2c sampled depth for this
         server is right now.  Exposes balancer herding risk directly. *)
      Telemetry.register_gauge telemetry
        (Printf.sprintf "rack/s%02d/probe_age_us" i)
        (fun () -> Time.to_float_us (Time.diff (Sim.now t.sim) t.last_probe.(i)))
    done;
    Telemetry.register_gauge telemetry "rack/probe_age_us" (fun () ->
        let oldest = ref Time.zero in
        Array.iter
          (fun p ->
            let age = Time.diff (Sim.now t.sim) p in
            if Time.(age > !oldest) then oldest := age)
          t.last_probe;
        Time.to_float_us !oldest);
    Telemetry.register_gauge telemetry "rack/policy/dispatched" (fun () ->
        float_of_int t.lc_dispatched);
    Telemetry.register_gauge telemetry "rack/migrations" (fun () ->
        float_of_int t.migrations)
  end;
  t

let set_tracer t tr =
  t.tracer <- tr;
  t.tracer_on <- true

let sim t = t.sim
let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let control t = t.control
let link t = t.link
let policy_kind t = Policy.kind t.policy
let n_tenants t = t.n_tenants
let latency_hist t = t.hist
let completed t = t.completed
let lc_dispatched t = t.lc_dispatched
let errors t = t.errors
let slo_total t = t.slo_total
let slo_ok t = t.slo_ok
let migrations t = t.migrations
let sampled_depths t = Array.copy t.sampled
let exact_inflight t = Array.copy t.exact
let dispatched t = Array.copy t.disp

let sample_probes t =
  let now = Sim.now t.sim in
  List.iteri
    (fun i p ->
      t.sampled.(i) <- p.Global_control.probe_queue_depth;
      t.last_probe.(i) <- now)
    (Global_control.probes t.control)

let probe_age t ~server = Time.diff (Sim.now t.sim) t.last_probe.(server)

let find_tenant t id =
  match Hashtbl.find_opt t.tenants id with
  | Some ten -> ten
  | None -> invalid_arg (Printf.sprintf "Rack: unknown tenant %d" id)

let tenant_home t ~tenant = (find_tenant t tenant).home
let tenant_replicas t ~tenant = Array.copy (find_tenant t tenant).replicas

let hottest_tenant_on t ~server =
  (* registration order; strict [>] keeps the earliest on ties *)
  List.fold_left
    (fun acc ten ->
      if ten.home <> server then acc
      else
        match acc with
        | Some best when best.t_dispatched >= ten.t_dispatched -> acc
        | _ -> Some ten)
    None
    (List.rev t.tenants_rev)
  |> Option.map (fun ten -> ten.tid)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let index_of_name name =
  (* names are "rack-NN"; parse rather than scan *)
  match int_of_string_opt (String.sub name 5 (String.length name - 5)) with
  | Some i -> i
  | None -> invalid_arg ("Rack: foreign server name " ^ name)

let connect_to t idx =
  let host = t.hosts.(t.next_host) in
  t.next_host <- (t.next_host + 1) mod Array.length t.hosts;
  Client_lib.connect t.sim t.fabric
    ~server_host:(Server.host t.servers.(idx))
    ~accept:(Server.accept t.servers.(idx))
    ~stack:Stack_model.ix_client ~host ~telemetry:t.tel ()

(* Drive the simulation in short slices until the registration answer
   lands (same shape as the experiment harness's register_sync: a full
   drain would also run any load already scheduled on this sim). *)
let register_sync t conn ~tenant ~slo =
  let result = ref None in
  Client_lib.register conn ~tenant ~slo (fun s -> result := Some s);
  let deadline = Time.add (Sim.now t.sim) (Time.ms 50) in
  let rec wait () =
    if !result = None && Time.(Sim.now t.sim < deadline) && Sim.live_pending t.sim > 0
    then begin
      ignore (Sim.run ~until:(Time.add (Sim.now t.sim) (Time.us 200)) t.sim);
      wait ()
    end
  in
  wait ();
  match !result with
  | Some s -> s
  | None -> failwith "Rack.add_tenant: registration did not complete"

let rec add_tenant t ~id ~(slo : Message.slo) ~replicas =
  if replicas < 1 then invalid_arg "Rack.add_tenant: replicas < 1";
  if Hashtbl.mem t.tenants id then invalid_arg "Rack.add_tenant: duplicate id";
  let qslo = slo_of_message slo in
  (* Pick target servers first (exclusion set grows with each pick so
     replicas land on distinct servers), then register on each; the
     wire registration is the reservation of record, so a refusal just
     shrinks the replica set. *)
  let rec attach acc_names acc k =
    if k = 0 then List.rev acc
    else
      match Global_control.place_excluding_set t.control ~slo:qslo ~excluding:acc_names with
      | None -> List.rev acc
      | Some p ->
        let idx = index_of_name p.Global_control.server_name in
        let conn = connect_to t idx in
        let acc_names = p.Global_control.server_name :: acc_names in
        (match register_sync t conn ~tenant:id ~slo with
        | Message.Ok ->
          attach acc_names ({ a_server = idx; a_conn = conn; a_outstanding = 0 } :: acc) (k - 1)
        | _ -> attach acc_names acc (k - 1))
  in
  finish_add t ~id ~slo (attach [] [] replicas)

(* Pinned registration, bypassing placement: background/best-effort
   tenants that must live on one specific server (the bakeoff's uneven
   soak load), or tests that need a known topology. *)
and add_tenant_on t ~id ~(slo : Message.slo) ~server =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Rack.add_tenant_on: server";
  if Hashtbl.mem t.tenants id then invalid_arg "Rack.add_tenant_on: duplicate id";
  let conn = connect_to t server in
  match register_sync t conn ~tenant:id ~slo with
  | Message.Ok ->
    finish_add t ~id ~slo [ { a_server = server; a_conn = conn; a_outstanding = 0 } ]
  | _ -> `Rejected

and finish_add t ~id ~slo = function
  | [] -> `Rejected
  | (home_attach :: _) as conns ->
    let replicas = Array.of_list (List.map (fun a -> a.a_server) conns) in
    let ten =
      {
        tid = id;
        slo;
        slo_bound = (if slo.Message.latency_critical then Time.us slo.Message.latency_us else Time.zero);
        home = home_attach.a_server;
        replicas;
        conns;
        draining = [];
        t_dispatched = 0;
      }
    in
    Hashtbl.add t.tenants id ten;
    t.tenants_rev <- ten :: t.tenants_rev;
    t.n_tenants <- t.n_tenants + 1;
    `Placed (Array.copy replicas)

(* ------------------------------------------------------------------ *)
(* Request path                                                        *)
(* ------------------------------------------------------------------ *)

let drain ten =
  ten.draining <-
    List.filter
      (fun a ->
        if a.a_outstanding = 0 && Client_lib.inflight a.a_conn = 0 then begin
          Client_lib.unregister a.a_conn (fun () -> ());
          false
        end
        else true)
      ten.draining

let dispatch_read t ?on_complete ~tenant ~lba ~len () =
  let ten = find_tenant t tenant in
  let s = Policy.pick t.policy ~candidates:ten.replicas ~sampled:t.sampled ~exact:t.exact in
  let a =
    match List.find_opt (fun a -> a.a_server = s) ten.conns with
    | Some a -> a
    | None -> invalid_arg "Rack.dispatch_read: replica without attachment"
  in
  t.exact.(s) <- t.exact.(s) + 1;
  t.disp.(s) <- t.disp.(s) + 1;
  if ten.slo.Message.latency_critical then t.lc_dispatched <- t.lc_dispatched + 1;
  ten.t_dispatched <- ten.t_dispatched + 1;
  a.a_outstanding <- a.a_outstanding + 1;
  let t0 = Sim.now t.sim in
  if Flight.enabled t.fl then
    Flight.record t.fl ~now:t0 ~kind:Flight.Kind.Balance ~a:s
      ~b:(Policy.kind_index (Policy.kind t.policy))
      ~v:(float_of_int t.sampled.(s));
  (* Hop 0 (pick): the tracer allocates a slot at the balancing instant;
     -1 (tracer off, or slot table full) disables the remaining hop
     stamps for this request at one int test each. *)
  let slot =
    if t.tracer_on then
      t.tracer.tr_dispatch ~tenant ~server:s ~sampled:t.sampled.(s)
        ~slo_bound:ten.slo_bound ~now:t0
    else -1
  in
  let complete status ~latency:_ =
    t.exact.(s) <- t.exact.(s) - 1;
    a.a_outstanding <- a.a_outstanding - 1;
    t.completed <- t.completed + 1;
    if status <> Message.Ok then t.errors <- t.errors + 1;
    (* End-to-end from the balancing decision, so the charged ingress
       delay of the chosen port is part of what the SLO sees.  Only
       latency-critical completions enter the histogram: the rack's
       percentiles are an SLO audit, and best-effort soak traffic has
       no bound to audit against. *)
    if ten.slo.Message.latency_critical then begin
      let e2e = Time.diff (Sim.now t.sim) t0 in
      Hdr.record t.hist e2e;
      t.slo_total <- t.slo_total + 1;
      if Time.(e2e <= ten.slo_bound) then t.slo_ok <- t.slo_ok + 1
    end;
    if slot >= 0 then
      t.tracer.tr_complete ~slot ~ok:(status = Message.Ok) ~now:(Sim.now t.sim);
    if ten.draining <> [] then drain ten;
    match on_complete with Some k -> k status | None -> ()
  in
  let issue () =
    (* Hop 1 (ingress done / client issue): read the connection's next
       request id just before [read] assigns it, so the server-side hop
       stamps for (tenant, req) correlate back to this slot. *)
    if slot >= 0 then
      t.tracer.tr_issue ~slot ~server:s ~tenant
        ~req:(Client_lib.next_req_id a.a_conn)
        ~now:(Sim.now t.sim);
    Client_lib.read a.a_conn ~lba ~len complete
  in
  let d = Link.ingress t.link s in
  if Time.equal d Time.zero then issue ()
  else ignore (Sim.at t.sim (Time.add t0 d) issue)

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let record_migrate t ~tenant ~src ~dst =
  if Flight.enabled t.fl then
    Flight.record t.fl ~now:(Sim.now t.sim) ~kind:Flight.Kind.Migrate ~a:tenant ~b:dst
      ~v:(float_of_int src);
  if t.tracer_on then t.tracer.tr_migrate ~tenant ~src ~dst ~now:(Sim.now t.sim)

let migrate t ~tenant ~dst =
  let ten = find_tenant t tenant in
  if dst < 0 || dst >= Array.length t.servers then invalid_arg "Rack.migrate: dst";
  if dst = ten.home then `Noop
  else if Array.exists (fun r -> r = dst) ten.replicas then begin
    (* Destination already holds a replica: the home pointer is the only
       thing that moves — no wire traffic, no drain. *)
    let src = ten.home in
    ten.home <- dst;
    t.migrations <- t.migrations + 1;
    record_migrate t ~tenant ~src ~dst;
    `Flipped
  end
  else if
    not (Control_plane.can_admit (Server.control_plane t.servers.(dst)) ~slo:(slo_of_message ten.slo))
  then `No_capacity
  else begin
    let src = ten.home in
    let conn = connect_to t dst in
    (* Register-then-flip: the tenant keeps serving from [src] until the
       destination acknowledges, then new dispatches steer to [dst] and
       the old attachment drains in the background. *)
    Client_lib.register conn ~tenant ~slo:ten.slo (fun status ->
        if status = Message.Ok then
          if ten.home = src then begin
            match List.find_opt (fun a -> a.a_server = src) ten.conns with
            | Some old ->
              ten.conns <-
                { a_server = dst; a_conn = conn; a_outstanding = 0 }
                :: List.filter (fun a -> a.a_server <> src) ten.conns;
              ten.replicas <- Array.map (fun r -> if r = src then dst else r) ten.replicas;
              ten.home <- dst;
              ten.draining <- old :: ten.draining;
              t.migrations <- t.migrations + 1;
              drain ten
            | None -> ()
          end
          else begin
            (* The tenant moved again while this registration was in
               flight (stale migration): release the attachment. *)
            ten.draining <-
              { a_server = dst; a_conn = conn; a_outstanding = 0 } :: ten.draining;
            drain ten
          end);
    record_migrate t ~tenant ~src ~dst;
    `Started
  end

let rebalance t ~tenant =
  let ten = find_tenant t tenant in
  let excluding = Array.to_list (Array.map server_name ten.replicas) in
  match
    Global_control.place_excluding_set t.control ~slo:(slo_of_message ten.slo) ~excluding
  with
  | None -> `No_target
  | Some p -> (
    match migrate t ~tenant ~dst:(index_of_name p.Global_control.server_name) with
    | `Started | `Flipped -> `Started
    | `Noop | `No_capacity -> `No_target)
