(** Request-level load-balancing policies for the rack layer.

    Each request carries a candidate set (the tenant's replica servers);
    the policy picks one.  Policies see two views of server load:

    - [sampled]: per-server queue depth as of the last periodic probe
      ({!Rack.sample_probes}) — {e stale} by up to one probe period,
      which is what a real rack balancer acting on gossip or pull-based
      telemetry has to live with (JSQ on stale samples famously herds);
    - [exact]: fresh in-flight counts maintained synchronously by the
      rack on every dispatch/completion — only the idealized central
      {!Oracle} is allowed to read these.

    Every policy is deterministic: stochastic ones draw from the PRNG
    stream handed to {!create} (seeded per world), and all argmin scans
    break ties toward the lowest server index, so a bakeoff table is
    byte-identical across reruns, domains and event backends. *)

open Reflex_engine

type kind =
  | Random  (** uniform over the candidate set *)
  | Round_robin  (** rotating cursor over candidate positions *)
  | Jsq  (** join-shortest-queue over probe-aged [sampled] depths *)
  | Po2c  (** power-of-two-choices: two uniform draws, shorter [sampled] wins *)
  | Oracle  (** idealized centralized balancer over fresh [exact] counts *)

(** All kinds, bakeoff order (the order policies print in reports). *)
val all : kind list

val kind_name : kind -> string

(** Inverse of {!kind_name} ([None] for unknown strings). *)
val kind_of_name : string -> kind option

(** Stable small int per kind (flight-recorder payloads). *)
val kind_index : kind -> int

type t

(** [create kind ~prng] — [prng] feeds [Random]/[Po2c]; deterministic
    policies never touch it. *)
val create : kind -> prng:Prng.t -> t

val kind : t -> kind

(** [pick t ~candidates ~sampled ~exact] returns the chosen server
    index (an element of [candidates]).  [sampled] and [exact] are
    indexed by absolute server index.  Ties break toward the lowest
    server index.
    @raise Invalid_argument on an empty candidate set. *)
val pick : t -> candidates:int array -> sampled:int array -> exact:int array -> int
