(** Umbrella module for the rack observability library. *)

module Rack_obs = Rack_obs
module Rack_rollup = Rack_rollup
