open Reflex_engine
module Rack = Reflex_rack.Rack
module Policy = Reflex_rack.Policy
module Server = Reflex_core.Server
module Flight = Reflex_obs.Flight
module Hopsink = Reflex_obs.Hopsink
module Hdr = Reflex_stats.Hdr_histogram
module Table = Reflex_stats.Table
module Tsdb = Reflex_monitor.Tsdb
module Alerts = Reflex_monitor.Alerts

(* Rack-scale distributed tracing.

   A trace context is (rid, hop): [rid] is a rack-unique monotone request
   id minted at the balancing instant, [hop] indexes the five stamp
   points of a rack read —

     0 pick     the balancing decision (Rack tr_dispatch)
     1 issue    ingress-link charge elapsed, read leaves the client
     2 submit   NVMe submission on the chosen server (Dataplane hop sink)
     3 complete NVMe completion on the chosen server (Dataplane hop sink)
     4 reply    the response reaches the rack completion path

   The live context is a preallocated SoA slot table — tr_dispatch pops a
   slot off a freelist and every later stamp indexes arrays, so the armed
   hot path allocates nothing beyond the per-server correlation entry.
   Each stamp also writes a [Flight.Kind.Hop] record into the chosen
   server's flight ring (a=rid, b=(tenant lsl 3) lor hop, v=the hop's
   delta in us), and every pick writes a [Balance] record into the rack
   ring — the raw material for {!Rack_rollup}.

   Hop deltas tile the end-to-end latency exactly (the PR 2 discipline):
   pick = 0 by construction (the balancer is synchronous today; the
   column exists so an async/centralized scheduler has somewhere to put
   its decision latency), ingress = t1-t0, queue = t2-t1 (wire + rx +
   scheduler queueing on the server), service = t3-t2 (flash), egress =
   t4-t3 (tx + fabric return).  When the server-side stamps are missing
   (error replies that never reached the NVMe path) the queue component
   absorbs t4-t1 and service/egress are zero — the telescoping sum still
   equals t4-t0, so the tiling invariant is universal. *)

let n_components = 5

let component_name = function
  | 0 -> "pick"
  | 1 -> "ingress"
  | 2 -> "queue"
  | 3 -> "service"
  | 4 -> "egress"
  | _ -> "?"

let stamp_name = function
  | 0 -> "pick"
  | 1 -> "issue"
  | 2 -> "submit"
  | 3 -> "complete"
  | 4 -> "reply"
  | _ -> "?"

(* One of the K worst latency-critical requests, frozen at completion. *)
type exemplar = {
  ex_rid : int;
  ex_tenant : int;
  ex_server : int;
  ex_t0 : Time.t;
  ex_sampled : int;
  ex_bound : Time.t;
  ex_pick : Time.t;
  ex_ingress : Time.t;
  ex_queue : Time.t;
  ex_service : Time.t;
  ex_egress : Time.t;
  ex_e2e : Time.t;
}

type migration = { mg_time : Time.t; mg_tenant : int; mg_src : int; mg_dst : int }

type dump = {
  d_time : Time.t;
  d_rule : string;
  d_server_snaps : Flight.snapshot array;
  d_rack_snap : Flight.snapshot;
}

(* Flat open-addressing (tenant, req) -> slot correlation table: linear
   probing with backward-shift deletion, no allocation on put/find/remove
   (a Hashtbl here costs a bucket cons per insert and an option box per
   lookup, five such ops per traced request).  Keys are non-negative;
   [-1] marks an empty cell.  Sized at 2x the slot capacity so the load
   factor stays below 1/2 even with every slot in flight on one server. *)
type corr = { c_mask : int; c_keys : int array; c_slots : int array }

let corr_hash key mask = (key * 0x9E37_79B1) lsr 8 land mask

let corr_create cap =
  let size = ref 16 in
  while !size < 2 * cap do size := !size * 2 done;
  { c_mask = !size - 1; c_keys = Array.make !size (-1); c_slots = Array.make !size 0 }

(* The probe loops live at toplevel (parameters threaded explicitly, no
   environment capture) so the per-request trace path allocates nothing:
   a local [let rec] inside the function would build a closure on every
   call. *)
let rec corr_put_from keys slots mask key slot i =
  let k = keys.(i) in
  if k = -1 || k = key then begin
    keys.(i) <- key;
    slots.(i) <- slot
  end
  else corr_put_from keys slots mask key slot ((i + 1) land mask)

let corr_put c key slot =
  corr_put_from c.c_keys c.c_slots c.c_mask key slot (corr_hash key c.c_mask)

let rec corr_find_from keys slots mask key i =
  let k = keys.(i) in
  if k = key then slots.(i) else if k = -1 then -1 else corr_find_from keys slots mask key ((i + 1) land mask)

(* [-1] when absent. *)
let corr_find c key = corr_find_from c.c_keys c.c_slots c.c_mask key (corr_hash key c.c_mask)

let rec corr_index_of keys mask key i =
  let k = keys.(i) in
  if k = key then i else if k = -1 then -1 else corr_index_of keys mask key ((i + 1) land mask)

(* Backward-shift deletion: pull every displaced successor over the hole
   so probe chains never need tombstones. *)
let rec corr_shift keys slots mask hole j =
  let k = keys.(j) in
  if k = -1 then keys.(hole) <- -1
  else begin
    let ideal = corr_hash k mask in
    if (j - ideal) land mask >= (j - hole) land mask then begin
      keys.(hole) <- k;
      slots.(hole) <- slots.(j);
      corr_shift keys slots mask j ((j + 1) land mask)
    end
    else corr_shift keys slots mask hole ((j + 1) land mask)
  end

let corr_remove c key =
  let mask = c.c_mask in
  let i = corr_index_of c.c_keys mask key (corr_hash key mask) in
  if i >= 0 then corr_shift c.c_keys c.c_slots mask i ((i + 1) land mask)

type t = {
  sim : Sim.t;
  rack : Rack.t;
  n_servers : int;
  policy_index : int;
  k_exemplars : int;
  (* live trace contexts: SoA slot table + freelist *)
  cap : int;
  sl_rid : int array;
  sl_tenant : int array;
  sl_server : int array;
  sl_key : int array;
  sl_sampled : int array;
  sl_bound : Time.t array;
  sl_t0 : Time.t array;
  sl_t1 : Time.t array;
  sl_t2 : Time.t array;
  sl_t3 : Time.t array;
  sl_stamps : int array;  (* bitmask over stamp points 0..3 *)
  free : int array;
  mutable n_free : int;
  mutable next_rid : int;
  (* per-server (tenant, req) -> slot correlation for the hop sink *)
  pending : corr array;
  (* flight rings: one per server lane plus the rack lane *)
  rings : Flight.t array;
  rack_ring : Flight.t;
  (* per-hop attribution, latency-critical completions only *)
  h_comp : Hdr.t array;  (* indexed by component *)
  h_e2e : Hdr.t;
  viol : int array;  (* SLO violations whose dominant component is [i] *)
  mutable viol_total : int;
  (* tiling proof counters *)
  mutable traced : int;
  mutable untiled : int;  (* completions whose deltas did NOT tile e2e *)
  mutable fallbacks : int;  (* completions missing the server-side stamps *)
  mutable slot_overflow : int;  (* dispatches declined: slot table full *)
  mutable lc_traced : int;
  (* tail exemplars, sorted worst-first (desc e2e, asc rid on ties) *)
  mutable exemplars : exemplar list;
  mutable n_exemplars : int;
  mutable ex_floor : Time.t;  (* e2e of the current K-th worst, once full *)
  (* migration log (cold), newest first *)
  mutable migs : migration list;
  (* cumulative charged ingress-link busy time per server port, us *)
  link_busy_us : float array;
  (* alert-edge forensic dump (first Fired edge wins) *)
  mutable dump : dump option;
}

let corr_key ~tenant ~req = (tenant * 0x1_000_000) + (Int64.to_int req land 0xFF_FFFF)

(* ---------------- hot stamp points ---------------- *)

let on_dispatch t ~tenant ~server ~sampled ~slo_bound ~now =
  if t.n_free = 0 then begin
    t.slot_overflow <- t.slot_overflow + 1;
    -1
  end
  else begin
    t.n_free <- t.n_free - 1;
    let slot = t.free.(t.n_free) in
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    t.sl_rid.(slot) <- rid;
    t.sl_tenant.(slot) <- tenant;
    t.sl_server.(slot) <- server;
    t.sl_key.(slot) <- -1;
    t.sl_sampled.(slot) <- sampled;
    t.sl_bound.(slot) <- slo_bound;
    t.sl_t0.(slot) <- now;
    t.sl_stamps.(slot) <- 1;
    Flight.record t.rings.(server) ~now ~kind:Flight.Kind.Hop ~a:rid
      ~b:((tenant lsl 3) lor 0)
      ~v:(float_of_int sampled);
    Flight.record t.rack_ring ~now ~kind:Flight.Kind.Balance ~a:server ~b:t.policy_index
      ~v:(float_of_int sampled);
    slot
  end

let on_issue t ~slot ~server ~tenant ~req ~now =
  let d = Time.diff now t.sl_t0.(slot) in
  t.sl_t1.(slot) <- now;
  t.sl_stamps.(slot) <- t.sl_stamps.(slot) lor 2;
  let key = corr_key ~tenant ~req in
  t.sl_key.(slot) <- key;
  corr_put t.pending.(server) key slot;
  t.link_busy_us.(server) <- t.link_busy_us.(server) +. Time.to_float_us d;
  Flight.record t.rings.(server) ~now ~kind:Flight.Kind.Hop ~a:t.sl_rid.(slot)
    ~b:((tenant lsl 3) lor 1)
    ~v:(Time.to_float_us d)

(* Server-side stamps arrive through the per-server [Hopsink]; lookups
   that miss are foreign traffic (requests the rack did not dispatch, or
   slots the table declined) and are ignored. *)
let on_server_stamp t server ~tenant ~req ~hop ~now =
  let key = corr_key ~tenant ~req in
  let slot = corr_find t.pending.(server) key in
  if slot >= 0 then begin
    if hop = 2 then begin
      let d = Time.diff now t.sl_t1.(slot) in
      t.sl_t2.(slot) <- now;
      t.sl_stamps.(slot) <- t.sl_stamps.(slot) lor 4;
      Flight.record t.rings.(server) ~now ~kind:Flight.Kind.Hop ~a:t.sl_rid.(slot)
        ~b:((tenant lsl 3) lor 2)
        ~v:(Time.to_float_us d)
    end
    else if hop = 3 then begin
      let d = Time.diff now t.sl_t2.(slot) in
      t.sl_t3.(slot) <- now;
      t.sl_stamps.(slot) <- t.sl_stamps.(slot) lor 8;
      (* The NVMe path is done with this request: retire the correlation
         entry now so the table tracks only in-flight commands. *)
      corr_remove t.pending.(server) key;
      t.sl_key.(slot) <- -1;
      Flight.record t.rings.(server) ~now ~kind:Flight.Kind.Hop ~a:t.sl_rid.(slot)
        ~b:((tenant lsl 3) lor 3)
        ~v:(Time.to_float_us d)
    end
  end

(* Cold: admit a completed LC request into the worst-K exemplar set.
   Strictly-greater e2e replaces; on equal e2e the earlier rid stays. *)
let consider_exemplar t ~slot ~pick ~ingress ~queue ~service ~egress ~e2e =
  let ex =
    {
      ex_rid = t.sl_rid.(slot);
      ex_tenant = t.sl_tenant.(slot);
      ex_server = t.sl_server.(slot);
      ex_t0 = t.sl_t0.(slot);
      ex_sampled = t.sl_sampled.(slot);
      ex_bound = t.sl_bound.(slot);
      ex_pick = pick;
      ex_ingress = ingress;
      ex_queue = queue;
      ex_service = service;
      ex_egress = egress;
      ex_e2e = e2e;
    }
  in
  let rec insert = function
    | [] -> [ ex ]
    | x :: rest ->
      if Time.(ex.ex_e2e > x.ex_e2e) then ex :: x :: rest else x :: insert rest
  in
  let xs = insert t.exemplars in
  let xs =
    if List.length xs > t.k_exemplars then List.filteri (fun i _ -> i < t.k_exemplars) xs
    else xs
  in
  t.exemplars <- xs;
  t.n_exemplars <- List.length xs;
  (match List.rev xs with
  | last :: _ when t.n_exemplars = t.k_exemplars -> t.ex_floor <- last.ex_e2e
  | _ -> ())

let on_complete t ~slot ~ok ~now =
  ignore ok;
  let server = t.sl_server.(slot) in
  let tenant = t.sl_tenant.(slot) in
  let stamps = t.sl_stamps.(slot) in
  let t0 = t.sl_t0.(slot) in
  let e2e = Time.diff now t0 in
  Flight.record t.rings.(server) ~now ~kind:Flight.Kind.Hop ~a:t.sl_rid.(slot)
    ~b:((tenant lsl 3) lor 4)
    ~v:(Time.to_float_us e2e);
  (* Error paths can complete without ever reaching the NVMe submit; the
     correlation entry may still be live. *)
  if t.sl_key.(slot) >= 0 then corr_remove t.pending.(server) t.sl_key.(slot);
  let pick = Time.zero in
  let ingress = if stamps land 2 <> 0 then Time.diff t.sl_t1.(slot) t0 else Time.zero in
  let base = if stamps land 2 <> 0 then t.sl_t1.(slot) else t0 in
  let full = stamps land 12 = 12 in
  let queue = if full then Time.diff t.sl_t2.(slot) base else Time.diff now base in
  let service = if full then Time.diff t.sl_t3.(slot) t.sl_t2.(slot) else Time.zero in
  let egress = if full then Time.diff now t.sl_t3.(slot) else Time.zero in
  if not full then t.fallbacks <- t.fallbacks + 1;
  let sum = Time.add pick (Time.add ingress (Time.add queue (Time.add service egress))) in
  if not (Time.equal sum e2e) then t.untiled <- t.untiled + 1;
  t.traced <- t.traced + 1;
  let bound = t.sl_bound.(slot) in
  if Time.(bound > Time.zero) then begin
    t.lc_traced <- t.lc_traced + 1;
    Hdr.record t.h_comp.(0) pick;
    Hdr.record t.h_comp.(1) ingress;
    Hdr.record t.h_comp.(2) queue;
    Hdr.record t.h_comp.(3) service;
    Hdr.record t.h_comp.(4) egress;
    Hdr.record t.h_e2e e2e;
    if Time.(e2e > bound) then begin
      t.viol_total <- t.viol_total + 1;
      (* dominant component, ties toward the earlier hop *)
      let dom = ref 0 and best = ref pick in
      if Time.(ingress > !best) then begin dom := 1; best := ingress end;
      if Time.(queue > !best) then begin dom := 2; best := queue end;
      if Time.(service > !best) then begin dom := 3; best := service end;
      if Time.(egress > !best) then begin dom := 4; best := egress end;
      t.viol.(!dom) <- t.viol.(!dom) + 1
    end;
    if t.n_exemplars < t.k_exemplars || Time.(e2e > t.ex_floor) then
      consider_exemplar t ~slot ~pick ~ingress ~queue ~service ~egress ~e2e
  end;
  t.free.(t.n_free) <- slot;
  t.n_free <- t.n_free + 1

let on_migrate t ~tenant ~src ~dst ~now =
  t.migs <- { mg_time = now; mg_tenant = tenant; mg_src = src; mg_dst = dst } :: t.migs;
  Flight.record t.rack_ring ~now ~kind:Flight.Kind.Migrate ~a:tenant ~b:dst
    ~v:(float_of_int src)

(* ---------------- creation / arming ---------------- *)

let create ?(capacity = 4096) ?(ring_capacity = 1 lsl 14) ?(exemplars = 4) rack =
  if capacity < 1 then invalid_arg "Rack_obs.create: capacity < 1";
  if exemplars < 1 then invalid_arg "Rack_obs.create: exemplars < 1";
  let n = Rack.n_servers rack in
  let t =
    {
      sim = Rack.sim rack;
      rack;
      n_servers = n;
      policy_index = Policy.kind_index (Rack.policy_kind rack);
      k_exemplars = exemplars;
      cap = capacity;
      sl_rid = Array.make capacity 0;
      sl_tenant = Array.make capacity 0;
      sl_server = Array.make capacity 0;
      sl_key = Array.make capacity (-1);
      sl_sampled = Array.make capacity 0;
      sl_bound = Array.make capacity Time.zero;
      sl_t0 = Array.make capacity Time.zero;
      sl_t1 = Array.make capacity Time.zero;
      sl_t2 = Array.make capacity Time.zero;
      sl_t3 = Array.make capacity Time.zero;
      sl_stamps = Array.make capacity 0;
      free = Array.init capacity (fun i -> i);
      n_free = capacity;
      next_rid = 0;
      pending = Array.init n (fun _ -> corr_create capacity);
      rings = Array.init n (fun _ -> Flight.create ~capacity:ring_capacity ());
      rack_ring = Flight.create ~capacity:ring_capacity ();
      h_comp = Array.init n_components (fun _ -> Hdr.create ());
      h_e2e = Hdr.create ();
      viol = Array.make n_components 0;
      viol_total = 0;
      traced = 0;
      untiled = 0;
      fallbacks = 0;
      slot_overflow = 0;
      lc_traced = 0;
      exemplars = [];
      n_exemplars = 0;
      ex_floor = Time.zero;
      migs = [];
      link_busy_us = Array.make n 0.0;
      dump = None;
    }
  in
  for i = 0 to n - 1 do
    Server.set_hopsink (Rack.server rack i)
      (Hopsink.make (fun ~tenant ~req ~hop ~now -> on_server_stamp t i ~tenant ~req ~hop ~now))
  done;
  Rack.set_tracer rack
    {
      Rack.tr_dispatch =
        (fun ~tenant ~server ~sampled ~slo_bound ~now ->
          on_dispatch t ~tenant ~server ~sampled ~slo_bound ~now);
      tr_issue =
        (fun ~slot ~server ~tenant ~req ~now -> on_issue t ~slot ~server ~tenant ~req ~now);
      tr_complete = (fun ~slot ~ok ~now -> on_complete t ~slot ~ok ~now);
      tr_migrate = (fun ~tenant ~src ~dst ~now -> on_migrate t ~tenant ~src ~dst ~now);
    };
  t

(* ---------------- accessors ---------------- *)

let traced t = t.traced
let untiled t = t.untiled
let fallbacks t = t.fallbacks
let slot_overflow t = t.slot_overflow
let lc_traced t = t.lc_traced
let violations t = Array.copy t.viol
let violation_total t = t.viol_total
let component_hist t i = t.h_comp.(i)
let e2e_hist t = t.h_e2e
let exemplars t = t.exemplars
let migrations t = List.rev t.migs
let server_ring t i = t.rings.(i)
let rack_ring t = t.rack_ring
let link_busy_us t = Array.copy t.link_busy_us

let tiling_ok t = t.traced > 0 && t.untiled = 0

(* Bench probe: the cost of one hop record on a server ring — the exact
   write the armed trace path performs per stamp. *)
let bench_hop_records t n =
  let ring = t.rings.(0) in
  let now = Sim.now t.sim in
  for i = 1 to n do
    Flight.record ring ~now ~kind:Flight.Kind.Hop ~a:i ~b:((i land 0xFF) lsl 3) ~v:1.0
  done

(* ---------------- snapshots ---------------- *)

let snapshot_servers t ~now ~window =
  Array.init t.n_servers (fun i -> Flight.snapshot t.rings.(i) ~now ~window)

let snapshot_rack t ~now ~window = Flight.snapshot t.rack_ring ~now ~window

(* ---------------- monitor wiring ---------------- *)

let burn_rule_name = "rack/slo_burn"

let wire_monitor t ~tsdb ~alerts ?(target = 0.95) () =
  Tsdb.register_cumulative tsdb "rack/slo_good" (fun () ->
      float_of_int (Rack.slo_ok t.rack));
  Tsdb.register_cumulative tsdb "rack/slo_bad" (fun () ->
      float_of_int (Rack.slo_total t.rack - Rack.slo_ok t.rack));
  Tsdb.register_hist tsdb "rack/e2e" t.h_e2e;
  Tsdb.register_gauge tsdb "rack/imbalance" (fun () ->
      (* max-over-mean of the fresh in-flight counts; 1.0 when idle *)
      let inflight = Rack.exact_inflight t.rack in
      let total = ref 0 and hot = ref 0 in
      Array.iter
        (fun d ->
          total := !total + d;
          if d > !hot then hot := d)
        inflight;
      if !total = 0 then 1.0
      else float_of_int !hot *. float_of_int (Array.length inflight) /. float_of_int !total);
  for i = 0 to t.n_servers - 1 do
    Tsdb.register_cumulative tsdb
      (Printf.sprintf "rack/link/s%02d/busy_us" i)
      (fun () -> t.link_busy_us.(i))
  done;
  Alerts.add alerts
    (Alerts.burn_rule ~severity:Alerts.Page ~name:burn_rule_name ~target
       ~good:"rack/slo_good" ~bad:"rack/slo_bad" ~short:(1, 8.0) ~long:(3, 4.0) ())

let start_monitor t ~tsdb ~alerts ?(every = Time.ms 1) ?(dump_window = Time.ms 4) ~until () =
  Sim.every t.sim ~every ~until (fun _ ->
      let now = Sim.now t.sim in
      Tsdb.tick tsdb ~now;
      let events = Alerts.step alerts tsdb ~now in
      if t.dump = None then
        List.iter
          (fun (e : Alerts.event) ->
            if e.Alerts.e_kind = Alerts.Fired && t.dump = None then
              t.dump <-
                Some
                  {
                    d_time = now;
                    d_rule = e.Alerts.e_rule;
                    d_server_snaps = snapshot_servers t ~now ~window:dump_window;
                    d_rack_snap = snapshot_rack t ~now ~window:dump_window;
                  })
          events)

let dump t = t.dump

(* ---------------- rendering ---------------- *)

let us time = Time.to_float_us time

let attribution t =
  let buf = Buffer.create 1024 in
  let tb =
    Table.create ~title:"Per-hop latency attribution (LC completions)"
      ~columns:[ "hop"; "count"; "mean us"; "p95 us"; "p99 us"; "share %" ]
  in
  let mean_sum = ref 0.0 in
  Array.iter (fun h -> mean_sum := !mean_sum +. Hdr.mean_us h) t.h_comp;
  Array.iteri
    (fun i h ->
      Table.add_row tb
        [
          component_name i;
          Table.cell_i (Hdr.count h);
          Table.cell_f ~decimals:1 (Hdr.mean_us h);
          Table.cell_f ~decimals:1 (Hdr.percentile_us h 95.0);
          Table.cell_f ~decimals:1 (Hdr.percentile_us h 99.0);
          Table.cell_f ~decimals:1
            (if !mean_sum <= 0.0 then 0.0 else 100.0 *. Hdr.mean_us h /. !mean_sum);
        ])
    t.h_comp;
  Buffer.add_string buf (Table.render tb);
  Printf.bprintf buf
    "  e2e: %d LC requests traced, mean %.1f us, p99 %.1f us; tiling %s (%d/%d exact, %d stamp fallbacks)\n"
    (Hdr.count t.h_e2e) (Hdr.mean_us t.h_e2e)
    (Hdr.percentile_us t.h_e2e 99.0)
    (if t.untiled = 0 then "EXACT" else "BROKEN")
    (t.traced - t.untiled) t.traced t.fallbacks;
  if t.viol_total = 0 then Buffer.add_string buf "  SLO violations: none\n"
  else begin
    Printf.bprintf buf "  SLO violations: %d, dominant hop:" t.viol_total;
    Array.iteri
      (fun i n ->
        if n > 0 then
          Printf.bprintf buf " %s %d (%.0f%%)" (component_name i) n
            (100.0 *. float_of_int n /. float_of_int t.viol_total))
      t.viol;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* The latest migration of [tenant] at or before [time], if any. *)
let follows_from t ~tenant ~time =
  List.find_opt
    (fun m -> m.mg_tenant = tenant && Time.(m.mg_time <= time))
    t.migs (* newest first: the first match is the latest *)

let render_exemplars t =
  let buf = Buffer.create 1024 in
  if t.exemplars = [] then Buffer.add_string buf "  tail exemplars: none (no LC traffic traced)\n"
  else begin
    Printf.bprintf buf "  Tail exemplars (worst %d of %d LC requests):\n"
      (List.length t.exemplars) t.lc_traced;
    List.iteri
      (fun i ex ->
        Printf.bprintf buf
          "    #%d rid=%d tenant=%d -> %s  e2e=%.1f us (bound %.1f, sampled depth %d)\n"
          (i + 1) ex.ex_rid ex.ex_tenant (Rack.server_name ex.ex_server) (us ex.ex_e2e)
          (us ex.ex_bound) ex.ex_sampled;
        (match follows_from t ~tenant:ex.ex_tenant ~time:ex.ex_t0 with
        | Some m ->
          Printf.bprintf buf "       follows_from migrate %s -> %s @ %.1f us\n"
            (Rack.server_name m.mg_src) (Rack.server_name m.mg_dst) (us m.mg_time)
        | None -> ());
        Printf.bprintf buf
          "       pick +%.1f | ingress +%.1f | queue +%.1f | service +%.1f | egress +%.1f us\n"
          (us ex.ex_pick) (us ex.ex_ingress) (us ex.ex_queue) (us ex.ex_service)
          (us ex.ex_egress))
      t.exemplars
  end;
  Buffer.contents buf
