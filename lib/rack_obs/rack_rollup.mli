(** Rack timeline rollup: merge per-server flight-ring snapshots and the
    rack-lane ring (balance/migrate records) into one time-ordered
    artifact.

    Lanes are fixed — pid 0 is the rack lane, pid [i+1] is server [i] —
    and the merge order is total: records sort by (time, lane, in-lane
    index), so rendering the same snapshots is byte-identical across
    reruns, [--jobs] fan-out and event backends. *)

module Flight = Reflex_obs.Flight

(** Lane index -> display name ([0] = ["rack"], [i+1] = ["rack-%02d"]). *)
val lane_name : int -> string

(** [chrome_trace ~server_snaps ~rack_snap] renders a Chrome
    [chrome://tracing] / Perfetto JSON document: one process lane per
    server plus the rack lane, hop stamps as instant events (tid = stamp
    index), and [Follows_from] flow arrows ([ph s]/[ph f]) from each
    migration record to the first post-migration pick of that tenant on
    the destination lane.  A trailing ["lanes"] array carries per-lane
    per-kind written/retained/dropped wraparound accounting. *)
val chrome_trace :
  server_snaps:Flight.snapshot array -> rack_snap:Flight.snapshot -> string

(** [stitch ~server_snaps ~rack_snap] renders the causal span trees as
    text: every traced rid in ascending order, its [Follows_from]
    migration parent when one precedes the pick, and its hop chain in
    stamp order — the cross-backend determinism witness used by the test
    suite. *)
val stitch : server_snaps:Flight.snapshot array -> rack_snap:Flight.snapshot -> string

(** One line per lane: events in window, records ever written, hop
    retained/written/dropped. *)
val lane_summary :
  server_snaps:Flight.snapshot array -> rack_snap:Flight.snapshot -> string
