open Reflex_engine
module Flight = Reflex_obs.Flight

(* Rack timeline rollup: merge N per-server flight-ring snapshots plus
   the rack ring (Balance/Migrate records) into one time-ordered view.

   Lane assignment is fixed: pid 0 is the rack lane, pid i+1 is server i.
   The merge order is total and deterministic: events sort by
   (time, lane, in-lane index) — each snapshot is already oldest-first,
   so in-lane order is preserved and cross-lane ties break toward the
   rack lane then ascending server index.  Rendering the same snapshots
   twice is byte-identical by construction. *)

let lane_name lane = if lane = 0 then "rack" else Printf.sprintf "rack-%02d" (lane - 1)

let hop_of_b b = b land 7
let tenant_of_b b = b lsr 3

let ts time = Printf.sprintf "%.3f" (Time.to_float_us time)

(* One merged record: (time, lane, in-lane index, record fields). *)
type ev = { e_time : Time.t; e_lane : int; e_idx : int; e_kind : int; e_a : int; e_b : int; e_v : float }

let collect ~server_snaps ~rack_snap =
  let out = ref [] in
  let add lane (snap : Flight.snapshot) =
    let n = Flight.snap_length snap in
    for i = n - 1 downto 0 do
      out :=
        {
          e_time = snap.Flight.s_times.(i);
          e_lane = lane;
          e_idx = i;
          e_kind = snap.Flight.s_kinds.(i);
          e_a = snap.Flight.s_a.(i);
          e_b = snap.Flight.s_b.(i);
          e_v = snap.Flight.s_v.(i);
        }
        :: !out
    done
  in
  Array.iteri (fun i snap -> add (i + 1) snap) server_snaps;
  add 0 rack_snap;
  List.stable_sort
    (fun a b ->
      let c = Time.compare a.e_time b.e_time in
      if c <> 0 then c
      else
        let c = compare a.e_lane b.e_lane in
        if c <> 0 then c else compare a.e_idx b.e_idx)
    !out

(* Chrome trace event for one record.  Hop records become instants in
   their server lane (tid = stamp index, so the five stamp points of a
   request stack as five tracks); Balance/Migrate live in the rack lane. *)
let render_ev buf e =
  let kind = Flight.Kind.of_int e.e_kind in
  match kind with
  | Flight.Kind.Hop ->
    Printf.bprintf buf
      "{\"name\":\"hop/%s\",\"cat\":\"rack\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"rid\":%d,\"tenant\":%d,\"v_us\":%g}}"
      (Rack_obs.stamp_name (hop_of_b e.e_b))
      (ts e.e_time) e.e_lane (hop_of_b e.e_b) e.e_a (tenant_of_b e.e_b) e.e_v
  | Flight.Kind.Balance ->
    Printf.bprintf buf
      "{\"name\":\"balance\",\"cat\":\"rack\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"server\":%d,\"policy\":%d,\"depth\":%g}}"
      (ts e.e_time) e.e_lane e.e_a e.e_b e.e_v
  | Flight.Kind.Migrate ->
    Printf.bprintf buf
      "{\"name\":\"migrate\",\"cat\":\"rack\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"tenant\":%d,\"dst\":%d,\"src\":%g}}"
      (ts e.e_time) e.e_lane e.e_a e.e_b e.e_v
  | _ ->
    Printf.bprintf buf
      "{\"name\":\"%s\",\"cat\":\"rack\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"a\":%d,\"b\":%d,\"v\":%g}}"
      (Flight.Kind.name kind) (ts e.e_time) e.e_lane e.e_a e.e_b e.e_v

(* Follows_from flow arrows: every Migrate record in the rack lane links
   to the first post-migration pick (hop 0) of that tenant in the
   destination server's lane — the migration is the causal parent of the
   dispatches it redirected. *)
let flows ~server_snaps ~rack_snap =
  let out = ref [] in
  let n = Flight.snap_length rack_snap in
  let flow_id = ref 0 in
  for i = 0 to n - 1 do
    if Flight.Kind.of_int rack_snap.Flight.s_kinds.(i) = Flight.Kind.Migrate then begin
      let mt = rack_snap.Flight.s_times.(i) in
      let tenant = rack_snap.Flight.s_a.(i) in
      let dst = rack_snap.Flight.s_b.(i) in
      if dst >= 0 && dst < Array.length server_snaps then begin
        let snap = server_snaps.(dst) in
        let m = Flight.snap_length snap in
        let target = ref None in
        (let j = ref 0 in
         while !target = None && !j < m do
           let b = snap.Flight.s_b.(!j) in
           if
             Flight.Kind.of_int snap.Flight.s_kinds.(!j) = Flight.Kind.Hop
             && hop_of_b b = 0 && tenant_of_b b = tenant
             && Time.(snap.Flight.s_times.(!j) >= mt)
           then target := Some !j;
           incr j
         done);
        match !target with
        | Some j ->
          incr flow_id;
          out :=
            (!flow_id, mt, dst + 1, snap.Flight.s_times.(j), snap.Flight.s_a.(j), tenant)
            :: !out
        | None -> ()
      end
    end
  done;
  List.rev !out

let chrome_trace ~server_snaps ~rack_snap =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit render =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    render buf
  in
  (* lane naming metadata *)
  for lane = 0 to Array.length server_snaps do
    emit (fun buf ->
        Printf.bprintf buf
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}" lane
          (lane_name lane))
  done;
  List.iter (fun e -> emit (fun buf -> render_ev buf e)) (collect ~server_snaps ~rack_snap);
  List.iter
    (fun (id, mt, dst_lane, pt, rid, tenant) ->
      emit (fun buf ->
          Printf.bprintf buf
            "{\"name\":\"follows_from\",\"cat\":\"rack\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":0,\"args\":{\"tenant\":%d}}"
            id (ts mt) tenant);
      emit (fun buf ->
          Printf.bprintf buf
            "{\"name\":\"follows_from\",\"cat\":\"rack\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"rid\":%d}}"
            id (ts pt) dst_lane rid))
    (flows ~server_snaps ~rack_snap);
  Buffer.add_string buf "\n],\n\"lanes\":[\n";
  (* Per-lane loss accounting off the per-kind snapshot counters
     (wraparound names exactly what each lane lost). *)
  let lane_entry buf lane (snap : Flight.snapshot) =
    Printf.bprintf buf
      "{\"lane\":\"%s\",\"events\":%d,\"total\":%d,\"dropped\":%d,\"hop_written\":%d,\"hop_dropped\":%d,\"balance_written\":%d,\"migrate_written\":%d}"
      (lane_name lane) (Flight.snap_length snap) snap.Flight.snap_total
      snap.Flight.snap_dropped
      (Flight.snap_kind_written snap Flight.Kind.Hop)
      (Flight.snap_kind_dropped snap Flight.Kind.Hop)
      (Flight.snap_kind_written snap Flight.Kind.Balance)
      (Flight.snap_kind_written snap Flight.Kind.Migrate)
  in
  lane_entry buf 0 rack_snap;
  Array.iteri
    (fun i snap ->
      Buffer.add_string buf ",\n";
      lane_entry buf (i + 1) snap)
    server_snaps;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Text stitching of the causal span trees: every traced request id seen
   in the server lanes, its hop chain in stamp order, and the
   Follows_from migration parent when one precedes the pick.  The
   ordering is (rid asc), so two runs agree byte-for-byte exactly when
   they traced the same requests the same way. *)
let stitch ~server_snaps ~rack_snap =
  let buf = Buffer.create 4096 in
  (* rid -> (lane, tenant, hops as (stamp, time, v) in record order) *)
  let tbl = Hashtbl.create 256 in
  let rids = ref [] in
  Array.iteri
    (fun srv (snap : Flight.snapshot) ->
      let n = Flight.snap_length snap in
      for i = 0 to n - 1 do
        if Flight.Kind.of_int snap.Flight.s_kinds.(i) = Flight.Kind.Hop then begin
          let rid = snap.Flight.s_a.(i) in
          let b = snap.Flight.s_b.(i) in
          if not (Hashtbl.mem tbl rid) then begin
            Hashtbl.add tbl rid (srv, tenant_of_b b, ref []);
            rids := rid :: !rids
          end;
          let _, _, hops = Hashtbl.find tbl rid in
          hops := (hop_of_b b, snap.Flight.s_times.(i), snap.Flight.s_v.(i)) :: !hops
        end
      done)
    server_snaps;
  let rids = List.sort compare !rids in
  (* migration list from the rack lane, oldest first *)
  let migs = ref [] in
  (let n = Flight.snap_length rack_snap in
   for i = n - 1 downto 0 do
     if Flight.Kind.of_int rack_snap.Flight.s_kinds.(i) = Flight.Kind.Migrate then
       migs :=
         ( rack_snap.Flight.s_times.(i),
           rack_snap.Flight.s_a.(i),
           int_of_float rack_snap.Flight.s_v.(i),
           rack_snap.Flight.s_b.(i) )
         :: !migs
   done);
  List.iter
    (fun rid ->
      let srv, tenant, hops = Hashtbl.find tbl rid in
      let hops = List.rev !hops in
      let pick_time =
        match hops with (_, time, _) :: _ -> Some time | [] -> None
      in
      Printf.bprintf buf "rid %d tenant %d lane %s\n" rid tenant (lane_name (srv + 1));
      (match pick_time with
      | Some pt -> (
        (* latest migration of this tenant at or before the pick *)
        match
          List.fold_left
            (fun acc (mt, mten, msrc, mdst) ->
              if mten = tenant && Time.(mt <= pt) then Some (mt, msrc, mdst) else acc)
            None (List.rev !migs)
        with
        | Some (mt, msrc, mdst) ->
          Printf.bprintf buf "  follows_from migrate %s -> %s @ %s us\n" (lane_name (msrc + 1))
            (lane_name (mdst + 1)) (ts mt)
        | None -> ())
      | None -> ());
      List.iter
        (fun (stamp, time, v) ->
          Printf.bprintf buf "  child_of %s @ %s us (+%g us)\n" (Rack_obs.stamp_name stamp)
            (ts time) v)
        hops)
    rids;
  Buffer.contents buf

let lane_summary ~server_snaps ~rack_snap =
  let buf = Buffer.create 512 in
  let line lane (snap : Flight.snapshot) =
    Printf.bprintf buf
      "  lane %-8s %5d events in window, %6d written (hop %d/%d retained, %d dropped)\n"
      (lane_name lane) (Flight.snap_length snap) snap.Flight.snap_total
      (Flight.snap_kind_retained snap Flight.Kind.Hop)
      (Flight.snap_kind_written snap Flight.Kind.Hop)
      (Flight.snap_kind_dropped snap Flight.Kind.Hop)
  in
  line 0 rack_snap;
  Array.iteri (fun i snap -> line (i + 1) snap) server_snaps;
  Buffer.contents buf
