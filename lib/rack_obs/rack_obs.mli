(** Rack-scale distributed tracing: cross-server trace context, per-hop
    latency attribution, and tail exemplars.

    {!create} arms a {!Reflex_rack.Rack} world: it installs the rack
    {!Reflex_rack.Rack.tracer} hooks and a per-server
    {!Reflex_obs.Hopsink} on every server's dataplane threads.  From
    then on every dispatched read carries a trace context — a
    rack-unique request id ([rid]) minted at the balancing instant plus
    a hop sequence — recorded allocation-free into per-server flight
    rings:

    {v
      hop 0  pick      balancing decision      (rack, tr_dispatch)
      hop 1  issue     ingress charge elapsed  (rack, tr_issue)
      hop 2  submit    NVMe submission         (server, hop sink)
      hop 3  complete  NVMe completion         (server, hop sink)
      hop 4  reply     response delivered      (rack, tr_complete)
    v}

    Each stamp is a [Flight.Kind.Hop] record with [a = rid],
    [b = (tenant lsl 3) lor hop] and [v] the hop's delta in us; picks
    additionally write a [Balance] record and migrations a [Migrate]
    record into a rack-lane ring.  {!Rack_rollup} merges those rings
    into one timeline.

    Per-hop deltas {e tile} the end-to-end latency exactly: with stamp
    times [t0..t4],
    [pick (0) + ingress (t1-t0) + queue (t2-t1) + service (t3-t2) +
    egress (t4-t3) = t4-t0].  Requests that complete without reaching
    the NVMe path (error replies) fall back to charging the remainder to
    [queue], so the telescoping identity is universal — {!untiled} stays
    0 by construction and the qcheck suite proves it.

    Everything here is driven by the deterministic simulation clock:
    attribution tables, exemplars, rollups and forensic dumps are
    byte-identical across same-seed reruns, [Runner --jobs] fan-out and
    heap/wheel event backends. *)

open Reflex_engine
module Flight = Reflex_obs.Flight
module Hdr = Reflex_stats.Hdr_histogram

(** Number of latency components (pick/ingress/queue/service/egress). *)
val n_components : int

(** Component index -> name ([0..4] = pick/ingress/queue/service/egress). *)
val component_name : int -> string

(** Stamp-point index -> name ([0..4] = pick/issue/submit/complete/reply). *)
val stamp_name : int -> string

(** One of the K worst latency-critical requests, frozen at reply time
    with its full hop decomposition. *)
type exemplar = {
  ex_rid : int;
  ex_tenant : int;
  ex_server : int;  (** chosen server index *)
  ex_t0 : Time.t;  (** pick instant *)
  ex_sampled : int;  (** probe-aged depth the policy saw for the pick *)
  ex_bound : Time.t;  (** the tenant's SLO latency bound *)
  ex_pick : Time.t;
  ex_ingress : Time.t;
  ex_queue : Time.t;
  ex_service : Time.t;
  ex_egress : Time.t;
  ex_e2e : Time.t;
}

type migration = { mg_time : Time.t; mg_tenant : int; mg_src : int; mg_dst : int }

(** Forensic dump captured on the first rack burn-alert [Fired] edge. *)
type dump = {
  d_time : Time.t;
  d_rule : string;
  d_server_snaps : Flight.snapshot array;
  d_rack_snap : Flight.snapshot;
}

type t

(** [create rack] builds the recorder and arms the rack + every server.
    [capacity] bounds concurrently traced requests (default 4096;
    overflow declines cleanly, counted in {!slot_overflow}).
    [ring_capacity] sizes each per-server/rack flight ring (default
    [1 lsl 14] records).  [exemplars] is K, the worst-request set size
    (default 4).
    @raise Invalid_argument when [capacity < 1] or [exemplars < 1]. *)
val create : ?capacity:int -> ?ring_capacity:int -> ?exemplars:int -> Reflex_rack.Rack.t -> t

(** {1 Counters} *)

(** Requests traced end-to-end (reply stamp reached). *)
val traced : t -> int

(** Traced completions whose hop deltas did NOT sum to e2e — 0 unless
    the tiling discipline is broken. *)
val untiled : t -> int

(** Completions missing the server-side submit/complete stamps (charged
    to [queue] by the fallback rule). *)
val fallbacks : t -> int

(** Dispatches declined because the slot table was full. *)
val slot_overflow : t -> int

(** Traced latency-critical completions (the attribution population). *)
val lc_traced : t -> int

(** [tiling_ok t] — at least one request traced and none untiled. *)
val tiling_ok : t -> bool

(** {1 Attribution} *)

(** Per-component SLO-violation counts (dominant component per
    violation, ties toward the earlier hop); a copy. *)
val violations : t -> int array

val violation_total : t -> int

(** Per-component latency histogram over LC completions (live). *)
val component_hist : t -> int -> Hdr.t

(** End-to-end histogram over LC completions (live). *)
val e2e_hist : t -> Hdr.t

(** Worst-K exemplars, worst first. *)
val exemplars : t -> exemplar list

(** Completed migration log, oldest first. *)
val migrations : t -> migration list

(** The latest migration of [tenant] at or before [time] — the
    [Follows_from] causal parent of a dispatch picked at [time]. *)
val follows_from : t -> tenant:int -> time:Time.t -> migration option

(** Cumulative charged ingress-link busy time per server port (us); a
    copy. *)
val link_busy_us : t -> float array

(** {1 Rings and snapshots} *)

val server_ring : t -> int -> Flight.t
val rack_ring : t -> Flight.t
val snapshot_servers : t -> now:Time.t -> window:Time.t -> Flight.snapshot array
val snapshot_rack : t -> now:Time.t -> window:Time.t -> Flight.snapshot

(** {1 Monitor wiring} *)

(** Name of the rack-level burn-rate alert rule registered by
    {!wire_monitor}. *)
val burn_rule_name : string

(** [wire_monitor t ~tsdb ~alerts ()] registers the rack series —
    [rack/slo_good]/[rack/slo_bad] cumulatives, the [rack/e2e] delta
    histogram, the [rack/imbalance] gauge (max-over-mean in-flight) and
    per-server [rack/link/s%02d/busy_us] cumulatives — and adds the
    {!burn_rule_name} multi-window burn-rate rule (availability [target],
    default 0.95; 1 window at 8x AND 3 windows at 4x). *)
val wire_monitor : t -> tsdb:Reflex_monitor.Tsdb.t -> alerts:Reflex_monitor.Alerts.t -> ?target:float -> unit -> unit

(** [start_monitor t ~tsdb ~alerts ~until ()] arms a periodic tick
    (default [every] 1ms) that closes Tsdb windows and steps the alert
    rules; the first [Fired] edge freezes a rack-wide forensic dump
    ({!dump}) spanning the trailing [dump_window] (default 4ms). *)
val start_monitor :
  t ->
  tsdb:Reflex_monitor.Tsdb.t ->
  alerts:Reflex_monitor.Alerts.t ->
  ?every:Time.t ->
  ?dump_window:Time.t ->
  until:Time.t ->
  unit ->
  unit

val dump : t -> dump option

(** {1 Rendering} *)

(** Per-hop attribution table + tiling status + dominant-hop SLO
    violation line. *)
val attribution : t -> string

(** Worst-K exemplar report with [follows_from] migration parents and
    full hop decomposition. *)
val render_exemplars : t -> string

(** {1 Bench probe} *)

(** [bench_hop_records t n] performs [n] hop-record ring writes — the
    exact store sequence the armed trace path performs per stamp. *)
val bench_hop_records : t -> int -> unit
