(* Buckets: values < 2^sub_bits land in a linear region with exact
   resolution; above that, each power-of-two range is split into
   2^sub_bits sub-buckets, giving bounded relative error. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits (* 64 *)
let max_exponent = 62

type t = {
  counts : int array; (* (exponent - sub_bits + 1) * sub_count cells *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : int64;
  mutable max_v : int64;
}

let n_cells = (max_exponent - sub_bits + 1) * sub_count

let create () =
  { counts = Array.make n_cells 0; total = 0; sum = 0.0; min_v = Int64.max_int; max_v = 0L }

(* Index of the bucket containing [v].  The bucket math runs on a native
   int: every int64 shift in the former msb loop allocated a boxed
   intermediate, and this sits on the per-request latency-record path.
   [Int64.to_int] is exact for v < 2^62; larger values (which the old
   int64 loop indexed out of bounds) clamp to the top bucket. *)
(* exponent = position of the highest set bit; lives at toplevel so the
   per-record path does not allocate a closure for it *)
let rec msb acc x = if x <= 1 then acc else msb (acc + 1) (x lsr 1)

let index_of v =
  let vi =
    (* 0x3FFF_FFFF_FFFF_FFFFL = max_int on 64-bit *)
    if Int64.compare v 0x3FFF_FFFF_FFFF_FFFFL >= 0 then max_int else Int64.to_int v
  in
  if vi < sub_count then vi
  else begin
    let e = msb 0 vi in
    let shift = e - sub_bits in
    let sub = (vi lsr shift) land (sub_count - 1) in
    (((e - sub_bits) + 1) * sub_count) + sub
  end

(* Upper edge (inclusive) of bucket [i]: the value reported for percentiles. *)
let value_of i =
  if i < sub_count then Int64.of_int i
  else begin
    let range = (i / sub_count) - 1 in
    let sub = i mod sub_count in
    let e = range + sub_bits in
    let base = Int64.shift_left 1L e in
    let step = Int64.shift_left 1L (e - sub_bits) in
    (* upper edge of sub-bucket: base + (sub+1)*step - 1 *)
    Int64.sub (Int64.add base (Int64.mul (Int64.of_int (sub + 1)) step)) 1L
  end

let record_n t v n =
  if Int64.compare v 0L < 0 then invalid_arg "Hdr_histogram.record: negative";
  if n < 0 then invalid_arg "Hdr_histogram.record_n: negative count";
  if n > 0 then begin
    let i = index_of v in
    t.counts.(i) <- t.counts.(i) + n;
    t.total <- t.total + n;
    t.sum <- t.sum +. (Int64.to_float v *. float_of_int n);
    if Int64.compare v t.min_v < 0 then t.min_v <- v;
    if Int64.compare v t.max_v > 0 then t.max_v <- v
  end

let record t v = record_n t v 1
let count t = t.total

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Hdr_histogram.percentile: out of range";
  if t.total = 0 then 0L (* defined: empty histogram reports 0 for every p *)
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 in
    let result = ref t.max_v in
    (try
       for i = 0 to n_cells - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           result := value_of i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Clamp into [min_v, max_v]: bucket edges never over- or under-shoot
       the observed range, so a single-sample histogram reports exactly
       that sample for every percentile. *)
    if Int64.compare !result t.max_v > 0 then t.max_v
    else if Int64.compare !result t.min_v < 0 then t.min_v
    else !result
  end

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0L else t.min_v
let max_value t = t.max_v

(* Lower edge (inclusive) of bucket [i] — the counterpart of [value_of]. *)
let low_value_of i =
  if i < sub_count then Int64.of_int i
  else begin
    let range = (i / sub_count) - 1 in
    let sub = i mod sub_count in
    let e = range + sub_bits in
    let base = Int64.shift_left 1L e in
    let step = Int64.shift_left 1L (e - sub_bits) in
    Int64.add base (Int64.mul (Int64.of_int sub) step)
  end

let copy t =
  { counts = Array.copy t.counts; total = t.total; sum = t.sum; min_v = t.min_v; max_v = t.max_v }

(* Snapshot delta: the histogram of exactly the values recorded into [t]
   after [since] was captured ([since] must be an earlier snapshot of the
   same recording stream, i.e. pointwise [since.counts <= t.counts]).
   Bucket counts and totals are exact; the delta's min/max are only known
   to bucket resolution, so they are reconstructed from the occupied
   bucket edges and clamped into [t]'s observed range (delta values are a
   subset of [t]'s values). *)
let diff t ~since =
  let d = create () in
  let lo = ref Int64.max_int in
  let hi = ref 0L in
  let total = ref 0 in
  for i = 0 to n_cells - 1 do
    let c = t.counts.(i) - since.counts.(i) in
    if c < 0 then
      invalid_arg "Hdr_histogram.diff: since is not an earlier snapshot of this histogram";
    if c > 0 then begin
      d.counts.(i) <- c;
      total := !total + c;
      let l = low_value_of i in
      if Int64.compare l !lo < 0 then lo := l;
      let h = value_of i in
      if Int64.compare h !hi > 0 then hi := h
    end
  done;
  d.total <- !total;
  if !total > 0 then begin
    d.sum <- Float.max 0.0 (t.sum -. since.sum);
    d.min_v <- Int64.max !lo t.min_v;
    d.max_v <- Int64.min !hi t.max_v
  end;
  d

(* Recorded values strictly above the bucket containing [v]: counts are
   bucketed, so the answer is exact at bucket granularity (values sharing
   [v]'s bucket are counted as "not above" — a relative error bounded by
   the bucket width, ~1.5% with 6 sub-bucket bits, and exact for
   [v < 64]). *)
let count_above t v =
  if Int64.compare v 0L < 0 then t.total
  else begin
    let start = index_of v + 1 in
    let acc = ref 0 in
    for i = start to n_cells - 1 do
      acc := !acc + t.counts.(i)
    done;
    !acc
  end

let merge ~dst ~src =
  for i = 0 to n_cells - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if Int64.compare src.min_v dst.min_v < 0 then dst.min_v <- src.min_v;
  if Int64.compare src.max_v dst.max_v > 0 then dst.max_v <- src.max_v

let reset t =
  Array.fill t.counts 0 n_cells 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.min_v <- Int64.max_int;
  t.max_v <- 0L

let percentile_us t p = Int64.to_float (percentile t p) /. 1e3
let mean_us t = mean t /. 1e3
