(** Log-bucketed latency histogram (HDR-histogram style).

    Records non-negative int64 values (nanoseconds in this repository) with
    a bounded relative error (~1.5% with the default 6 sub-bucket bits) and
    O(1) recording, so millions of request latencies can be captured with a
    few KB of memory.  Percentile queries return the upper edge of the
    bucket containing the requested rank. *)

type t

(** [create ()] covers values in [0, 2^62). *)
val create : unit -> t

val record : t -> int64 -> unit

(** [record_n t v n] records [v] with multiplicity [n]. *)
val record_n : t -> int64 -> int -> unit

val count : t -> int

(** [percentile t p] with [p] in [0, 100]; raises [Invalid_argument] when
    [p] is out of range.

    Edge cases are defined: an {e empty} histogram returns [0L] for every
    [p] (it never raises), and the result is always clamped into
    [[min_value t, max_value t]], so a {e single-sample} histogram returns
    exactly that sample for every [p]. *)
val percentile : t -> float -> int64

val mean : t -> float
val min_value : t -> int64
val max_value : t -> int64

(** Merge [src] into [dst].  Commutative and associative on bucket counts,
    totals, sums and extrema — merging per-shard histograms in any order
    yields the same aggregate. *)
val merge : dst:t -> src:t -> unit

(** Independent snapshot of the current state ([record] on the original
    no longer affects it). *)
val copy : t -> t

(** [diff t ~since] is the histogram of exactly the values recorded into
    [t] after the snapshot [since] was taken ([Hdr_histogram.copy]): the
    windowed-percentile primitive ([diff (copy now) ~since:(copy earlier)]
    gives exact bucket counts for the interval, so windowed p95/p99 carry
    the same bounded relative error as the live histogram).  Counts, total
    and sum are exact deltas; min/max are reconstructed to bucket
    resolution.  @raise Invalid_argument when [since] is not an earlier
    snapshot of the same recording stream (some bucket would go
    negative). *)
val diff : t -> since:t -> t

(** Recorded values strictly above the bucket containing [v] — exact at
    bucket granularity (and exact for [v] < 64, the linear region). *)
val count_above : t -> int64 -> int

val reset : t -> unit

(** Convenience accessors in microseconds (latencies are stored in ns). *)
val percentile_us : t -> float -> float

val mean_us : t -> float
