open Reflex_qos

(* The pool is an assoc list in insertion order — deterministic by
   construction (no Hashtbl anywhere in this module), which the rack
   layer's reports and bakeoff tables rely on; see lint.manifest. *)
type t = { mutable pool : (string * Server.t) list }

let create () = { pool = [] }

let add_server t ~name server =
  if List.mem_assoc name t.pool then invalid_arg "Global_control.add_server: duplicate name";
  t.pool <- t.pool @ [ (name, server) ]

let servers t = t.pool
let find t ~name = List.assoc_opt name t.pool

type placement = { server_name : string; server : Server.t }

type probe = {
  probe_name : string;
  probe_server : Server.t;
  probe_headroom : float;
  probe_queue_depth : int;
}

(* One probe per server, in insertion order.  Headroom is the unreserved
   LC token rate at the current strictest SLO; queue depth counts every
   request inside the server (rx rings, software queues, NVMe
   in-flight).  The rack layer samples these periodically, so balancers
   act on probe-aged (stale) state — the idealized oracle is the one
   that bypasses this and reads fresh counters. *)
let probes t =
  List.map
    (fun (probe_name, srv) ->
      let cp = Server.control_plane srv in
      {
        probe_name;
        probe_server = srv;
        probe_headroom = Control_plane.total_token_rate cp -. Control_plane.lc_reserved_rate cp;
        probe_queue_depth = Server.queue_depth srv;
      })
    t.pool

(* Smaller is better: SLO mismatch dominates, headroom breaks ties. *)
let score cp ~slo =
  let headroom = Control_plane.headroom_with cp ~candidate:slo in
  let mismatch =
    if not (Slo.is_latency_critical slo) then 0.0
    else
      match Control_plane.strictest_latency_us cp with
      | None -> 0.0 (* empty server: no one to disturb *)
      | Some strictest ->
        abs_float (log (float_of_int slo.Slo.latency_us /. strictest))
  in
  (mismatch, -.headroom)

let place t ~slo =
  let candidates =
    List.filter (fun (_, srv) -> Control_plane.can_admit (Server.control_plane srv) ~slo) t.pool
  in
  let best =
    List.fold_left
      (fun acc (name, srv) ->
        let s = score (Server.control_plane srv) ~slo in
        match acc with
        | Some (_, _, best_s) when compare best_s s <= 0 -> acc
        | _ -> Some (name, srv, s))
      None candidates
  in
  Option.map (fun (server_name, server, _) -> { server_name; server }) best

let place_and_admit t ~id ~slo =
  match place t ~slo with
  | None -> None
  | Some p -> (
    match Control_plane.admit (Server.control_plane p.server) ~id ~slo with
    | Control_plane.Admitted ->
      (* Local bookkeeping (thread binding, rates) happens when the
         tenant's first connection registers; pre-admission here reserves
         the capacity.  Forget it again so the wire registration is the
         single source of truth. *)
      Control_plane.forget (Server.control_plane p.server) ~id;
      Some p
    | Control_plane.Rejected_no_capacity | Control_plane.Rejected_duplicate -> None)

(* Placement restricted to servers outside [excluding]: replica
   selection (a replica set must span distinct servers) and migration
   (the tenant must leave its current replica set) both need to rule
   out several servers at once. *)
let place_excluding_set t ~slo ~excluding =
  let filtered =
    { pool = List.filter (fun (name, _) -> not (List.mem name excluding)) t.pool }
  in
  place filtered ~slo

(* Re-placement after a fault: like [place] but never returns the one
   server in [excluding].  Thin wrapper kept for the resilience layer
   (lib/faults/degrade.ml); new callers with a set use
   [place_excluding_set]. *)
let place_excluding t ~slo ~excluding = place_excluding_set t ~slo ~excluding:[ excluding ]
