open Reflex_qos

type t = { mutable pool : (string * Server.t) list }

let create () = { pool = [] }

let add_server t ~name server =
  if List.mem_assoc name t.pool then invalid_arg "Global_control.add_server: duplicate name";
  t.pool <- t.pool @ [ (name, server) ]

let servers t = t.pool

type placement = { server_name : string; server : Server.t }

(* Smaller is better: SLO mismatch dominates, headroom breaks ties. *)
let score cp ~slo =
  let headroom = Control_plane.headroom_with cp ~candidate:slo in
  let mismatch =
    if not (Slo.is_latency_critical slo) then 0.0
    else
      match Control_plane.strictest_latency_us cp with
      | None -> 0.0 (* empty server: no one to disturb *)
      | Some strictest ->
        abs_float (log (float_of_int slo.Slo.latency_us /. strictest))
  in
  (mismatch, -.headroom)

let place t ~slo =
  let candidates =
    List.filter (fun (_, srv) -> Control_plane.can_admit (Server.control_plane srv) ~slo) t.pool
  in
  let best =
    List.fold_left
      (fun acc (name, srv) ->
        let s = score (Server.control_plane srv) ~slo in
        match acc with
        | Some (_, _, best_s) when compare best_s s <= 0 -> acc
        | _ -> Some (name, srv, s))
      None candidates
  in
  Option.map (fun (server_name, server, _) -> { server_name; server }) best

let place_and_admit t ~id ~slo =
  match place t ~slo with
  | None -> None
  | Some p -> (
    match Control_plane.admit (Server.control_plane p.server) ~id ~slo with
    | Control_plane.Admitted ->
      (* Local bookkeeping (thread binding, rates) happens when the
         tenant's first connection registers; pre-admission here reserves
         the capacity.  Forget it again so the wire registration is the
         single source of truth. *)
      Control_plane.forget (Server.control_plane p.server) ~id;
      Some p
    | Control_plane.Rejected_no_capacity | Control_plane.Rejected_duplicate -> None)

(* Re-placement after a fault: like [place] but never returns a server in
   [excluding] (the degraded one the tenant is being moved away from). *)
let place_excluding t ~slo ~excluding =
  let filtered = { pool = List.filter (fun (name, _) -> name <> excluding) t.pool } in
  place filtered ~slo
