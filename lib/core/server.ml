open Reflex_engine
open Reflex_flash
open Reflex_net
open Reflex_proto
open Reflex_qos
open Reflex_telemetry

type inflight = {
  conn : Message.t Tcp_conn.t;
  req_id : int64;
  bytes : int;
  tenant : int;
  t_arrive : Time.t; (* server-side arrival, for per-tenant latency *)
}

(* Barrier state (§4.1 extension).  Per tenant: the number of I/Os inside
   the server, the armed barrier (if any), and the FIFO of work buffered
   behind it.  A barrier completes once everything before it has; work
   after it waits. *)
type gate = {
  mutable outstanding : int;
  mutable armed : (Message.t Tcp_conn.t * int64) option;
  buffered : (unit -> unit) Queue.t;
}

type t = {
  sim : Sim.t;
  host : Fabric.host;
  device : Nvme_model.t;
  cost_model : Cost_model.t;
  control_plane : Control_plane.t;
  acl : Acl.t;
  qos : bool;
  threads : inflight Dataplane.t array;
  global : Global_bucket.t;
  mutable active : int;
  tenant_thread : (int, int) Hashtbl.t; (* tenant id -> thread index *)
  be_tenants : (int, unit) Hashtbl.t;
  tenant_conns : (int, int) Hashtbl.t; (* tenant id -> connection count *)
  tenant_done : (int, int ref) Hashtbl.t;
  gates : (int, gate) Hashtbl.t;
  deficit_notes : (int, int ref) Hashtbl.t; (* NEG_LIMIT hits per tenant *)
  mutable fleet_ro : bool;
  mutable completed : int;
  tel : Telemetry.t;
  tel_on : bool;
}

let gate_of t tenant =
  match Hashtbl.find_opt t.gates tenant with
  | Some g -> g
  | None ->
    let g = { outstanding = 0; armed = None; buffered = Queue.create () } in
    Hashtbl.replace t.gates tenant g;
    g

(* An armed barrier fires once the tenant's in-server I/O count drains to
   zero; buffered work then replays in order until the next barrier
   re-arms or the buffer empties. *)
let release_gate g =
  let rec drain () =
    if g.armed = None then
      match Queue.take_opt g.buffered with
      | Some thunk ->
        thunk ();
        drain ()
      | None -> ()
  in
  match g.armed with
  | Some (conn, req_id) when g.outstanding = 0 ->
    g.armed <- None;
    let msg = Message.Barrier_resp { req_id } in
    Tcp_conn.send_to_client conn ~size:(Codec.encoded_size msg) msg;
    drain ()
  | Some _ | None -> ()

let respond t done_req =
  let { conn; req_id; bytes; tenant; t_arrive } = done_req.Dataplane.payload in
  t.completed <- t.completed + 1;
  (match Hashtbl.find_opt t.tenant_done tenant with
  | Some r -> incr r
  | None -> Hashtbl.replace t.tenant_done tenant (ref 1));
  let msg =
    match done_req.Dataplane.kind with
    | Io_op.Read -> Message.Read_resp { req_id; status = Message.Ok; len = bytes }
    | Io_op.Write -> Message.Write_resp { req_id; status = Message.Ok }
  in
  Tcp_conn.send_to_client conn ~size:(Codec.encoded_size msg) msg;
  if t.tel_on then begin
    let now = Sim.now t.sim in
    Telemetry.span t.tel ~now ~tenant ~req_id Telemetry.Stage.Tx_resp;
    Telemetry.record_tenant_latency t.tel ~tenant (Time.diff now t_arrive)
  end;
  let g = gate_of t tenant in
  g.outstanding <- g.outstanding - 1;
  release_gate g

(* The scheduler notifies the control plane when a tenant hits its token
   deficit limit — consistent bursting above the reserved rate means the
   SLO is wrong and needs renegotiation (paper §3.2.2/§4.3). *)
let note_deficit t ~tenant =
  match Hashtbl.find_opt t.deficit_notes tenant with
  | Some r -> incr r
  | None -> Hashtbl.replace t.deficit_notes tenant (ref 1)

(* A request parsed on a thread its tenant just left follows the tenant
   to its new thread; if the tenant is gone entirely, the client gets an
   error instead of silence. *)
let reroute t ~tenant_id ~kind ~bytes payload =
  match Hashtbl.find_opt t.tenant_thread tenant_id with
  | Some thread -> Dataplane.receive t.threads.(thread) ~tenant_id ~kind ~bytes payload
  | None ->
    let msg = Message.Error_resp { req_id = payload.req_id; status = Message.Bad_request } in
    Tcp_conn.send_to_client payload.conn ~size:(Codec.encoded_size msg) msg

let create sim ~fabric ?(profile = Device_profile.device_a) ?(n_threads = 1) ?max_threads
    ?(costs = Costs.default) ?acl ?token_rate_fn ?(qos = true) ?neg_limit ?donate_fraction
    ?cost_model ?seed ?(telemetry = Telemetry.disabled) () =
  let max_threads = Option.value max_threads ~default:n_threads in
  if n_threads < 1 || n_threads > max_threads then invalid_arg "Server.create: thread counts";
  let seed = Option.value seed ~default:0x5EF1E45EEDL in
  let device = Nvme_model.create ~telemetry sim ~profile ~prng:(Prng.create seed) in
  let cost_model = Option.value cost_model ~default:(Cost_model.of_profile profile) in
  let control_plane = Control_plane.create ?token_rate_fn ~profile ~cost_model () in
  let acl = match acl with Some a -> a | None -> Acl.create_permissive () in
  let global = Global_bucket.create ~n_threads:max_threads in
  let host = Fabric.add_host fabric ~name:"reflex-server" ~stack:Stack_model.dataplane_server in
  let rec t =
    lazy
      {
        sim;
        host;
        device;
        cost_model;
        control_plane;
        acl;
        qos;
        threads =
          Array.init max_threads (fun thread_id ->
              Dataplane.create sim ~thread_id ~qp:(Queue_pair.create device) ~device ~cost_model
                ~global ~costs ?neg_limit ?donate_fraction
                ~notify_control_plane:(fun tenant -> note_deficit (Lazy.force t) ~tenant)
                ~reroute:(fun ~tenant_id ~kind ~bytes payload ->
                  reroute (Lazy.force t) ~tenant_id ~kind ~bytes payload)
                ~telemetry
                ~trace_id:(fun p -> p.req_id)
                ~respond:(fun d -> respond (Lazy.force t) d)
                ());
        global;
        active = n_threads;
        tenant_thread = Hashtbl.create 64;
        be_tenants = Hashtbl.create 64;
        tenant_conns = Hashtbl.create 64;
        tenant_done = Hashtbl.create 64;
        gates = Hashtbl.create 16;
        deficit_notes = Hashtbl.create 16;
        fleet_ro = true;
        completed = 0;
        tel = telemetry;
        tel_on = Telemetry.enabled telemetry;
      }
  in
  let t = Lazy.force t in
  Global_bucket.set_active_threads global (List.init n_threads Fun.id);
  t

let host t = t.host
let device t = t.device
let control_plane t = t.control_plane
let active_threads t = t.active

(* Pick the active thread with the fewest tenants for a new tenant. *)
let least_loaded_thread t =
  let best = ref 0 and best_count = ref max_int in
  for i = 0 to t.active - 1 do
    let c = Dataplane.tenant_count t.threads.(i) in
    if c < !best_count then begin
      best := i;
      best_count := c
    end
  done;
  !best

(* Push control-plane token rates to dataplane threads.  LC rates depend
   only on the tenant's own SLO; the BE fair share (and hence every BE
   tenant's rate) moves whenever registrations change, so those are
   re-pushed on each change.  With QoS disabled (Figure 5's "I/O sched
   disabled" configuration) every tenant gets an unbounded rate: requests
   flow straight to the device. *)
let effective_rate t rate = if t.qos then rate else 1e15

let push_be_rates t =
  let share = effective_rate t (Control_plane.be_share t.control_plane) in
  (* reflex-lint: allow det/hashtbl-order — per-tenant rate pushes are independent writes to disjoint scheduler entries; no output depends on visit order *)
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt t.tenant_thread id with
      | Some thread -> Dataplane.set_token_rate t.threads.(thread) ~id share
      | None -> ())
    t.be_tenants

(* After a registration change: the affected tenant's own rate, plus every
   BE tenant's share. *)
let push_rates t =
  push_be_rates t;
  (* reflex-lint: allow det/hashtbl-order — per-tenant rate pushes are independent writes to disjoint scheduler entries; no output depends on visit order *)
  Hashtbl.iter
    (fun id thread ->
      if not (Hashtbl.mem t.be_tenants id) then
        match Control_plane.token_rate_for t.control_plane ~id with
        | Some rate -> Dataplane.set_token_rate t.threads.(thread) ~id (effective_rate t rate)
        | None -> ())
    t.tenant_thread

(* LC rates depend only on their own SLO — except that they are all
   repriced when the fleet's read-only status flips; BE shares move on
   every change. *)
let refresh_rates t =
  let ro = Control_plane.fleet_read_only t.control_plane in
  if ro <> t.fleet_ro then begin
    t.fleet_ro <- ro;
    push_rates t
  end
  else push_be_rates t

let refresh_conn_counts t =
  let counts = Array.make (Array.length t.threads) 0 in
  (* reflex-lint: allow det/hashtbl-order — commutative += accumulation into per-thread counters; any visit order yields the same counts *)
  Hashtbl.iter
    (fun tenant conns ->
      match Hashtbl.find_opt t.tenant_thread tenant with
      | Some thread -> counts.(thread) <- counts.(thread) + conns
      | None -> ())
    t.tenant_conns;
  Array.iteri (fun i dp -> Dataplane.set_conn_count dp counts.(i)) t.threads

let slo_of_message (m : Message.slo) =
  if m.Message.latency_critical then
    Slo.latency_critical ~latency_us:m.Message.latency_us
      ~iops:(float_of_int m.Message.iops) ~read_pct:m.Message.read_pct
  else Slo.best_effort ~read_pct:m.Message.read_pct ()

let handle_register t ~tenant ~(slo : Message.slo) ~registered_handle =
  if not (Acl.connection_allowed t.acl ~tenant) then
    Some (Message.Registered { handle = tenant; status = Message.Denied })
  else if Control_plane.is_registered t.control_plane ~id:tenant then begin
    (* Another connection joins an existing tenant. *)
    registered_handle := Some tenant;
    Hashtbl.replace t.tenant_conns tenant
      (1 + Option.value (Hashtbl.find_opt t.tenant_conns tenant) ~default:0);
    refresh_conn_counts t;
    Some (Message.Registered { handle = tenant; status = Message.Ok })
  end
  else begin
    let slo = slo_of_message slo in
    match Control_plane.admit t.control_plane ~id:tenant ~slo with
    | Control_plane.Rejected_no_capacity ->
      Some (Message.Registered { handle = tenant; status = Message.No_capacity })
    | Control_plane.Rejected_duplicate ->
      (* Unreachable: [is_registered] was checked above, and nothing can
         register the id between the check and the admit on the
         single-threaded event loop; answer defensively anyway. *)
      Some (Message.Registered { handle = tenant; status = Message.Bad_request })
    | Control_plane.Admitted ->
      let thread = least_loaded_thread t in
      let rate =
        effective_rate t
          (Option.value (Control_plane.token_rate_for t.control_plane ~id:tenant) ~default:0.0)
      in
      Dataplane.add_tenant t.threads.(thread) ~id:tenant ~slo ~token_rate:rate;
      (* SLO headroom: the tenant's latency budget minus the achieved
         server-side p95, sampled like any other gauge. *)
      if t.tel_on && Slo.is_latency_critical slo then begin
        let hist = Telemetry.tenant_latency_hist t.tel ~tenant in
        let target = float_of_int slo.Slo.latency_us in
        Telemetry.register_gauge t.tel
          (Printf.sprintf "qos/t%d/slo_headroom_us" tenant)
          (fun () -> target -. Reflex_stats.Hdr_histogram.percentile_us hist 95.0)
      end;
      Hashtbl.replace t.tenant_thread tenant thread;
      if not (Slo.is_latency_critical slo) then Hashtbl.replace t.be_tenants tenant ();
      Hashtbl.replace t.tenant_conns tenant
        (1 + Option.value (Hashtbl.find_opt t.tenant_conns tenant) ~default:0);
      (* A new LC reservation (or a new BE peer) moves every BE share; LC
         rates change only if the fleet's read-only pricing flipped. *)
      refresh_rates t;
      refresh_conn_counts t;
      registered_handle := Some tenant;
      Some (Message.Registered { handle = tenant; status = Message.Ok })
  end

let handle_unregister t ~handle =
  (match Hashtbl.find_opt t.tenant_thread handle with
  | Some thread -> Dataplane.remove_tenant t.threads.(thread) ~id:handle
  | None -> ());
  Hashtbl.remove t.tenant_thread handle;
  Hashtbl.remove t.tenant_conns handle;
  Hashtbl.remove t.be_tenants handle;
  Hashtbl.remove t.gates handle;
  if t.tel_on then Telemetry.unregister t.tel (Printf.sprintf "qos/t%d/slo_headroom_us" handle);
  Control_plane.forget t.control_plane ~id:handle;
  refresh_rates t;
  refresh_conn_counts t;
  Some (Message.Unregistered { handle })

let send_reply conn msg = Tcp_conn.send_to_client conn ~size:(Codec.encoded_size msg) msg

let rec handle_io t conn ~handle ~kind ~req_id ~lba ~len ~registered_handle =
  match !registered_handle with
  | Some h when h = handle -> (
    let g = gate_of t handle in
    if g.armed <> None then begin
      (* Behind a barrier: replay in arrival order once it fires. *)
      Queue.add
        (fun () ->
          match handle_io t conn ~handle ~kind ~req_id ~lba ~len ~registered_handle with
          | Some reply -> send_reply conn reply
          | None -> ())
        g.buffered;
      None
    end
    else
      let lba_count = Io_op.sectors_of_bytes len in
      match Acl.check t.acl ~tenant:handle ~kind ~lba ~lba_count with
      | Acl.Denied_permission -> Some (Message.Error_resp { req_id; status = Message.Denied })
      | Acl.Denied_range -> Some (Message.Error_resp { req_id; status = Message.Out_of_range })
      | Acl.Allowed -> (
        match Hashtbl.find_opt t.tenant_thread handle with
        | None -> Some (Message.Error_resp { req_id; status = Message.Bad_request })
        | Some thread ->
          g.outstanding <- g.outstanding + 1;
          Dataplane.receive t.threads.(thread) ~tenant_id:handle ~kind ~bytes:len
            { conn; req_id; bytes = len; tenant = handle; t_arrive = Sim.now t.sim };
          None))
  | _ -> Some (Message.Error_resp { req_id; status = Message.Denied })

let rec handle_barrier t conn ~handle ~req_id ~registered_handle =
  match !registered_handle with
  | Some h when h = handle ->
    let g = gate_of t handle in
    if g.armed <> None then begin
      Queue.add
        (fun () ->
          match handle_barrier t conn ~handle ~req_id ~registered_handle with
          | Some reply -> send_reply conn reply
          | None -> ())
        g.buffered;
      None
    end
    else if g.outstanding = 0 then Some (Message.Barrier_resp { req_id })
    else begin
      g.armed <- Some (conn, req_id);
      None
    end
  | _ -> Some (Message.Error_resp { req_id; status = Message.Denied })

let accept t conn =
  (* Per-connection state lives in this closure: which tenant the
     connection has registered for. *)
  let registered_handle = ref None in
  Tcp_conn.set_server_handler conn (fun msg ~size:_ ->
      let reply =
        match msg with
        | Message.Register { tenant; slo } ->
          handle_register t ~tenant ~slo ~registered_handle
        | Message.Unregister { handle } -> handle_unregister t ~handle
        | Message.Read_req { handle; req_id; lba; len } ->
          handle_io t conn ~handle ~kind:Io_op.Read ~req_id ~lba ~len ~registered_handle
        | Message.Write_req { handle; req_id; lba; len } ->
          handle_io t conn ~handle ~kind:Io_op.Write ~req_id ~lba ~len ~registered_handle
        | Message.Barrier_req { handle; req_id } ->
          handle_barrier t conn ~handle ~req_id ~registered_handle
        | Message.Registered _ | Message.Unregistered _ | Message.Read_resp _
        | Message.Write_resp _ | Message.Barrier_resp _ | Message.Error_resp _ ->
          Some (Message.Error_resp { req_id = 0L; status = Message.Bad_request })
      in
      match reply with
      | Some m -> Tcp_conn.send_to_client conn ~size:(Codec.encoded_size m) m
      | None -> ())

(* ---------------- thread scaling (paper SS4.3) ---------------- *)

let rebalance t =
  (* Even out tenant counts across active threads by moving tenants off
     overloaded threads; queued requests migrate with them. *)
  let total = Hashtbl.length t.tenant_thread in
  if t.active > 0 && total > 0 then begin
    let target = (total + t.active - 1) / t.active in
    let moves = ref [] in
    Hashtbl.iter
      (fun tenant thread ->
        if thread >= t.active || Dataplane.tenant_count t.threads.(thread) > target then
          moves := (tenant, thread) :: !moves)
      t.tenant_thread;
    (* Placement depends on the order moves are applied (each move
       re-evaluates the least-loaded thread): sort by tenant id so
       rebalancing is deterministic regardless of Hashtbl layout. *)
    let moves = List.sort compare !moves in
    List.iter
      (fun (tenant, thread) ->
        let dest = least_loaded_thread t in
        if
          dest <> thread
          && (thread >= t.active
             || Dataplane.tenant_count t.threads.(thread)
                > 1 + Dataplane.tenant_count t.threads.(dest))
        then begin
          match Dataplane.detach_tenant t.threads.(thread) ~id:tenant with
          | Some (slo, rate, backlog) ->
            Dataplane.attach_tenant t.threads.(dest) ~id:tenant ~slo ~token_rate:rate ~backlog;
            Hashtbl.replace t.tenant_thread tenant dest
          | None -> ()
        end)
      moves;
    refresh_conn_counts t
  end

let scale_threads t n =
  let n = max 1 (min n (Array.length t.threads)) in
  if n <> t.active then begin
    t.active <- n;
    Global_bucket.set_active_threads t.global (List.init n Fun.id);
    rebalance t
  end

let enable_autoscaling t ?(period = Time.ms 10) ?(high_watermark = 0.85) ?(low_watermark = 0.3)
    () =
  let rec monitor () =
    ignore
      (Sim.after t.sim period (fun () ->
           let util = ref 0.0 in
           for i = 0 to t.active - 1 do
             util := !util +. Dataplane.utilization t.threads.(i)
           done;
           let avg = !util /. float_of_int t.active in
           if avg > high_watermark && t.active < Array.length t.threads then
             scale_threads t (t.active + 1)
           else if avg < low_watermark && t.active > 1 then scale_threads t (t.active - 1);
           monitor ()))
  in
  monitor ()

let requests_completed t = t.completed

let deficit_notifications t ~tenant =
  match Hashtbl.find_opt t.deficit_notes tenant with Some r -> !r | None -> 0

(* Paper §4.3: the control plane flags tenants that consistently burst
   above their allocation for SLO renegotiation. *)
let needs_renegotiation ?(threshold = 100) t ~tenant =
  deficit_notifications t ~tenant >= threshold

let tenant_completed t ~tenant =
  match Hashtbl.find_opt t.tenant_done tenant with Some r -> !r | None -> 0

let tokens_spent t =
  Array.fold_left (fun acc dp -> acc +. Dataplane.tokens_spent dp) 0.0 t.threads

let token_usage_rate t =
  Array.fold_left (fun acc dp -> acc +. Dataplane.token_usage_rate dp) 0.0 t.threads

(* Cumulative weighted tokens one tenant's submissions have cost.  A
   tenant lives on exactly one thread, but rebalancing resets the
   per-thread accumulator view, so sum across all threads defensively
   (at most one is non-zero for a live tenant). *)
let tenant_tokens_submitted t ~tenant =
  Array.fold_left
    (fun acc dp ->
      match Dataplane.tenant_tokens_submitted dp ~id:tenant with
      | Some x -> acc +. x
      | None -> acc)
    0.0 t.threads

let thread_utilizations t =
  List.init t.active (fun i -> Dataplane.utilization t.threads.(i))

(* Requests inside the server, wherever they sit (receive rings,
   software queues, NVMe in-flight), summed over every thread —
   inactive threads included defensively; rebalancing empties them, so
   they contribute zero.  This is the signal the rack layer's JSQ and
   power-of-two-choices balancers probe. *)
let queue_depth t =
  let n = ref 0 in
  Array.iter (fun dp -> n := !n + Dataplane.queue_depth dp) t.threads;
  !n

let registered_tenants t = Control_plane.registered_count t.control_plane

(* Rack tracing: fan the hop sink out to every dataplane thread, so NVMe
   submit/complete instants reach the rack-level tracer regardless of
   which thread a tenant lands on (or migrates to). *)
let set_hopsink t sink = Array.iter (fun dp -> Dataplane.set_hopsink dp sink) t.threads

(* ---------------- resilience hooks (lib/faults) ---------------- *)

let inject_thread_stall t ~thread ~duration =
  if thread < 0 || thread >= Array.length t.threads then
    invalid_arg "Server.inject_thread_stall: thread out of range";
  Dataplane.inject_stall t.threads.(thread) ~duration

(* Degradation re-pricing (§4.3 under faults): the device lost capacity
   (die failure, GC storm), so every token rate the control plane hands
   out must shrink immediately — admission, BE shares and already-pushed
   LC rates alike.  Restoring factor 1.0 undoes it. *)
let reprice t ~capacity_factor =
  Control_plane.set_capacity_factor t.control_plane capacity_factor;
  push_rates t

(* LC -> BE demotion: when repriced capacity can no longer honour a
   latency reservation, the tenant keeps running at best-effort rather
   than being cut off — its queued requests migrate with it.  Returns
   [true] if the tenant was LC and is now BE. *)
let demote_tenant t ~tenant =
  match Hashtbl.find_opt t.tenant_thread tenant with
  | None -> false
  | Some thread -> (
    match Dataplane.detach_tenant t.threads.(thread) ~id:tenant with
    | None -> false
    | Some (slo, rate, backlog) ->
      if not (Slo.is_latency_critical slo) then begin
        (* Already best-effort: reattach untouched. *)
        Dataplane.attach_tenant t.threads.(thread) ~id:tenant ~slo ~token_rate:rate ~backlog;
        false
      end
      else begin
        Control_plane.forget t.control_plane ~id:tenant;
        let be = Slo.best_effort ~read_pct:slo.Slo.read_pct () in
        (match Control_plane.admit t.control_plane ~id:tenant ~slo:be with
        | Control_plane.Admitted -> ()
        | Control_plane.Rejected_no_capacity | Control_plane.Rejected_duplicate ->
          (* BE admission cannot fail; defensive only. *)
          ());
        Hashtbl.replace t.be_tenants tenant ();
        let be_rate =
          effective_rate t
            (Option.value (Control_plane.token_rate_for t.control_plane ~id:tenant) ~default:0.0)
        in
        Dataplane.attach_tenant t.threads.(thread) ~id:tenant ~slo:be ~token_rate:be_rate
          ~backlog;
        if t.tel_on then
          Telemetry.unregister t.tel (Printf.sprintf "qos/t%d/slo_headroom_us" tenant);
        (let fl = Telemetry.flight t.tel in
         if Reflex_obs.Flight.enabled fl then
           Reflex_obs.Flight.record fl ~now:(Sim.now t.sim)
             ~kind:Reflex_obs.Flight.Kind.Demote ~a:tenant ~b:thread ~v:0.0);
        refresh_rates t;
        true
      end)
