open Reflex_qos

(* Analytic stand-in for a measured Calibrate.max_token_rate curve: the
   sustainable token rate grows slowly (logarithmically) with the latency
   budget and saturates at the device's raw token capacity. *)
let default_token_rate_fn profile ~latency_us =
  let cap = Reflex_flash.Device_profile.token_capacity profile in
  let f = 0.55 +. (0.1 *. (log (latency_us /. 100.0) /. log 2.0)) in
  cap *. Float.max 0.3 (Float.min 1.0 f)

type t = {
  admission_margin : float;
  token_rate_fn : latency_us:float -> float;
  cost_model : Cost_model.t;
  tenants : (int, Slo.t) Hashtbl.t;
  (* Incremental aggregates so admission stays O(1) with thousands of
     tenants (paper §5.5): *)
  mutable non_ro_tenants : int;  (** tenants declaring a mix with writes *)
  mutable be_tenants : int;
  mutable lc_reserved_mixed : float;  (** sum of mixed-priced LC rates *)
  mutable strictest : float option;  (** cached; recomputed on forget *)
  mutable capacity_factor : float;
      (** in (0,1]: fraction of calibrated capacity currently usable —
          lowered by the resilience layer when the device degrades
          (die failures, GC storms) and restored on recovery *)
}

let create ?(admission_margin = 0.85) ?token_rate_fn ~profile ~cost_model () =
  if admission_margin <= 0.0 || admission_margin > 1.0 then
    invalid_arg "Control_plane.create: admission_margin in (0,1]";
  let token_rate_fn =
    match token_rate_fn with Some f -> f | None -> default_token_rate_fn profile
  in
  {
    admission_margin;
    token_rate_fn;
    cost_model;
    tenants = Hashtbl.create 64;
    non_ro_tenants = 0;
    be_tenants = 0;
    lc_reserved_mixed = 0.0;
    strictest = None;
    capacity_factor = 1.0;
  }

type admission = Admitted | Rejected_no_capacity | Rejected_duplicate

let set_capacity_factor t f =
  if f <= 0.0 || f > 1.0 then invalid_arg "Control_plane.set_capacity_factor: factor in (0,1]";
  t.capacity_factor <- f

let capacity_factor t = t.capacity_factor

(* Key-sorted iteration over latency-critical tenants: callers' folds
   see a deterministic order regardless of Hashtbl layout, so list- and
   report-building folds are reproducible by construction. *)
let fold_lc t f init =
  let lc =
    Hashtbl.fold
      (fun id slo acc -> if Slo.is_latency_critical slo then (id, slo) :: acc else acc)
      t.tenants []
  in
  List.fold_left
    (fun acc (id, slo) -> f id slo acc)
    init
    (List.sort (fun (a, _) (b, _) -> compare (a : int) b) lc)

let min_opt acc v = match acc with None -> Some v | Some x -> Some (Float.min x v)

let strictest_latency_us_with t extra =
  match extra with
  | Some slo when Slo.is_latency_critical slo ->
    min_opt t.strictest (float_of_int slo.Slo.latency_us)
  | _ -> t.strictest

let strictest_latency_us t = t.strictest

(* When only BE tenants exist, there is no latency constraint: the device
   may be driven to its loose-SLO ceiling. *)
let unconstrained_latency_us = 10_000.0

let total_rate_at t strictest =
  let latency_us = Option.value strictest ~default:unconstrained_latency_us in
  t.token_rate_fn ~latency_us *. t.capacity_factor

(* When every registered tenant declares a pure-read mix, the device
   stays on its read-only fast path and reads cost C(read, 100%) instead
   of a full token — this is what lets a 1M-IOPS read-only fleet fit in
   the token budget (paper §5.5's tenant-scaling experiment).  Tenants
   that write while declaring reads-only are caught by the scheduler's
   deficit limit and flagged for SLO renegotiation. *)
let all_read_only_with t extra =
  t.non_ro_tenants = 0
  && (match extra with Some slo -> slo.Slo.read_pct = 100 | None -> true)

let weighted_ro t ~read_only (slo : Slo.t) =
  let base =
    Cost_model.weighted_rate t.cost_model ~iops:slo.Slo.iops ~read_ratio:(Slo.read_ratio slo)
  in
  if read_only then base *. t.cost_model.Cost_model.ro_read_cost else base

let weighted t (slo : Slo.t) = weighted_ro t ~read_only:(all_read_only_with t None) slo

let mixed_rate t (slo : Slo.t) =
  Cost_model.weighted_rate t.cost_model ~iops:slo.Slo.iops ~read_ratio:(Slo.read_ratio slo)

let lc_reserved_with t extra =
  let read_only = all_read_only_with t extra in
  let scale = if read_only then t.cost_model.Cost_model.ro_read_cost else 1.0 in
  let base = t.lc_reserved_mixed *. scale in
  match extra with
  | Some slo when Slo.is_latency_critical slo -> base +. weighted_ro t ~read_only slo
  | _ -> base

let record t ~id ~slo =
  Hashtbl.replace t.tenants id slo;
  if slo.Slo.read_pct <> 100 then t.non_ro_tenants <- t.non_ro_tenants + 1;
  if Slo.is_latency_critical slo then begin
    t.lc_reserved_mixed <- t.lc_reserved_mixed +. mixed_rate t slo;
    t.strictest <- min_opt t.strictest (float_of_int slo.Slo.latency_us)
  end
  else t.be_tenants <- t.be_tenants + 1

let admit t ~id ~slo =
  if Hashtbl.mem t.tenants id then Rejected_duplicate
  else if not (Slo.is_latency_critical slo) then begin
    record t ~id ~slo;
    Admitted
  end
  else begin
    let strictest = strictest_latency_us_with t (Some slo) in
    let capacity = total_rate_at t strictest *. t.admission_margin in
    let reserved = lc_reserved_with t (Some slo) in
    if reserved <= capacity then begin
      record t ~id ~slo;
      Admitted
    end
    else Rejected_no_capacity
  end

let can_admit t ~slo =
  if not (Slo.is_latency_critical slo) then true
  else begin
    let strictest = strictest_latency_us_with t (Some slo) in
    let capacity = total_rate_at t strictest *. t.admission_margin in
    lc_reserved_with t (Some slo) <= capacity
  end

let headroom_with t ~candidate =
  let strictest = strictest_latency_us_with t (Some candidate) in
  let capacity = total_rate_at t strictest *. t.admission_margin in
  capacity -. lc_reserved_with t (Some candidate)

let forget t ~id =
  match Hashtbl.find_opt t.tenants id with
  | None -> ()
  | Some slo ->
    Hashtbl.remove t.tenants id;
    if slo.Slo.read_pct <> 100 then t.non_ro_tenants <- t.non_ro_tenants - 1;
    if Slo.is_latency_critical slo then begin
      t.lc_reserved_mixed <- Float.max 0.0 (t.lc_reserved_mixed -. mixed_rate t slo);
      (* Recompute the cached strictest SLO (rare path). *)
      t.strictest <-
        fold_lc t (fun _ s acc -> min_opt acc (float_of_int s.Slo.latency_us)) None
    end
    else t.be_tenants <- t.be_tenants - 1
let is_registered t ~id = Hashtbl.mem t.tenants id
let total_token_rate t = total_rate_at t (strictest_latency_us t)
let lc_reserved_rate t = lc_reserved_with t None

let be_share t =
  let n = t.be_tenants in
  if n = 0 then 0.0
  else Float.max 0.0 ((total_token_rate t -. lc_reserved_rate t) /. float_of_int n)

let token_rate_for t ~id =
  match Hashtbl.find_opt t.tenants id with
  | None -> None
  | Some slo -> Some (if Slo.is_latency_critical slo then weighted t slo else be_share t)

let current_rates t =
  Hashtbl.fold
    (fun id slo acc ->
      let rate = if Slo.is_latency_critical slo then weighted t slo else be_share t in
      (id, rate) :: acc)
    t.tenants []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let registered_count t = Hashtbl.length t.tenants
let fleet_read_only t = all_read_only_with t None

(* LC tenants with their SLOs, loosest latency bound first — the order in
   which degradation-driven demotion sheds reservations (shedding the
   loosest reservation disturbs the strictest-SLO pricing least). *)
let lc_tenants t =
  fold_lc t (fun id slo acc -> (id, slo) :: acc) []
  |> List.sort (fun (ia, a) (ib, b) ->
         match compare b.Slo.latency_us a.Slo.latency_us with 0 -> compare ia ib | c -> c)
