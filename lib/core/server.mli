(** The ReFlex server: dataplane threads + control plane + tenant/ACL
    management behind the wire protocol.

    A server owns one NVMe device and [max_threads] dataplane threads
    (each with its own core and NVMe queue pair).  Clients connect over
    the fabric, register tenants with SLOs (Table 1's [register] call),
    then issue logical-block reads and writes; responses flow back over
    the same connection.  Each tenant is served by exactly one thread
    (paper §4.1 limitation); connections are counted per thread for the
    LLC-pressure model. *)

open Reflex_engine
open Reflex_net
open Reflex_proto

type t

val create :
  Sim.t ->
  fabric:Fabric.t ->
  ?profile:Reflex_flash.Device_profile.t ->
  (* default device A *)
  ?n_threads:int ->
  (* initially active threads, default 1 *)
  ?max_threads:int ->
  (* default n_threads *)
  ?costs:Costs.t ->
  ?acl:Acl.t ->
  (* default permissive *)
  ?token_rate_fn:(latency_us:float -> float) ->
  ?qos:bool ->
  (* default true; false disables the QoS scheduler (Figure 5's
     "I/O sched disabled"): tenants get unbounded token rates and requests
     flow to the device unthrottled *)
  ?neg_limit:float ->
  (* scheduler deficit limit, default -50 tokens — for ablations *)
  ?donate_fraction:float ->
  (* donation share above POS_LIMIT, default 0.9 — for ablations *)
  ?cost_model:Reflex_qos.Cost_model.t ->
  (* override the device-derived request cost model — for ablations *)
  ?seed:int64 ->
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  (* observability sink, default disabled.  When enabled the server
     threads it through the device, every dataplane thread and the QoS
     schedulers: lifecycle spans ([Server_rx] ... [Tx_resp]), scheduler
     decision logging, per-tenant latency histograms and an
     [qos/t<ID>/slo_headroom_us] gauge for LC tenants. *)
  unit ->
  t

(** The server's network endpoint; clients connect to it. *)
val host : t -> Fabric.host

val device : t -> Reflex_flash.Nvme_model.t
val control_plane : t -> Control_plane.t

(** [accept t conn] attaches an incoming connection: the server starts
    handling protocol messages arriving on it. *)
val accept : t -> Message.t Tcp_conn.t -> unit

(** {1 Thread management} *)

val active_threads : t -> int

(** Activate/deactivate threads and rebalance tenants (paper §4.3).
    Clamped to [1, max_threads]. *)
val scale_threads : t -> int -> unit

(** Enable periodic utilization-driven right-sizing.  Note: the monitor
    reschedules itself forever, so once enabled the simulation's event
    queue never drains — drive the simulation with [Sim.run ~until]. *)
val enable_autoscaling :
  t -> ?period:Time.t -> ?high_watermark:float -> ?low_watermark:float -> unit -> unit

(** {1 Observability} *)

val requests_completed : t -> int

(** Times the QoS scheduler found this tenant past its token deficit
    limit (NEG_LIMIT) — the §3.2.2 control-plane notification. *)
val deficit_notifications : t -> tenant:int -> int

(** §4.3: a tenant that consistently bursts above its reservation should
    renegotiate its SLO. *)
val needs_renegotiation : ?threshold:int -> t -> tenant:int -> bool
val tenant_completed : t -> tenant:int -> int

(** Aggregate tokens/s spent across threads (Figure 6a's green line). *)
val token_usage_rate : t -> float

(** Cumulative tokens spent across threads (take deltas for windowed
    rates). *)
val tokens_spent : t -> float

(** Cumulative weighted tokens one tenant's submitted requests have cost
    (0 for unknown tenants).  Windowed deltas of this against the
    device's {!Reflex_flash.Device_profile.knee_token_rate} drive the
    monitoring layer's load-knee detector. *)
val tenant_tokens_submitted : t -> tenant:int -> float

val thread_utilizations : t -> float list
val registered_tenants : t -> int

(** Requests currently inside the server, wherever they sit: unparsed
    receive-ring entries, software-queued requests awaiting tokens, and
    in-flight NVMe commands, summed across threads.  O(tenants) — the
    probe-path backlog signal sampled by the rack-level load balancers
    ([lib/rack]), not a per-cycle counter. *)
val queue_depth : t -> int

(** [set_hopsink t sink] arms the rack-trace hop sink on every dataplane
    thread (see [Dataplane.set_hopsink]); [Reflex_obs.Hopsink.null]
    disarms. *)
val set_hopsink : t -> Reflex_obs.Hopsink.t -> unit

(** {1 Resilience hooks}

    Driven by [Reflex_faults] — fault injection on the dataplane and the
    control plane's reaction to device degradation. *)

(** Occupy one dataplane thread's core with [duration] of high-priority
    foreign work (interrupt storm, noisy co-tenant).
    @raise Invalid_argument if [thread] is out of range. *)
val inject_thread_stall : t -> thread:int -> duration:Time.t -> unit

(** Degradation re-pricing: scale the control plane's usable capacity by
    [capacity_factor] (in (0,1]; 1.0 restores full capacity) and re-push
    every tenant's token rate.  Admission decisions, BE fair shares and
    LC reservations all reflect the reduced capacity immediately. *)
val reprice : t -> capacity_factor:float -> unit

(** Demote a latency-critical tenant to best-effort in place: its
    reservation is released, its queued requests migrate with it, and it
    keeps running at the BE fair share.  Returns [true] if the tenant was
    LC and is now BE ([false]: unknown tenant or already BE). *)
val demote_tenant : t -> tenant:int -> bool
