(** One ReFlex dataplane thread (paper §3.1, Figure 2).

    The thread owns a dedicated core, a NIC queue pair (modelled as its
    receive ring) and an NVMe queue pair.  Execution is the paper's
    two-step run-to-completion with adaptive batching:

    - step one: poll the receive ring, parse/ACL/syscall each message
      (up to the batch cap of 64), run a QoS scheduling round, and submit
      every admitted request to the NVMe submission queue;
    - step two: poll the NVMe completion queue (again up to 64) and
      transmit each response.

    Both steps charge simulated CPU time to the thread's core; the core is
    the throughput limiter, reproducing ~850K IOPS/core.  When the only
    pending work is rate-limited tenant backlog, the thread re-enters the
    scheduler every [idle_sched_period].

    The payload type ['a] is whatever the server needs to route a
    response; the dataplane never inspects it. *)

open Reflex_engine
open Reflex_flash
open Reflex_qos

type 'a t

(** A completed request handed back for response transmission. *)
type 'a done_req = { payload : 'a; kind : Io_op.kind; nvme_latency : Time.t }

val create :
  Sim.t ->
  thread_id:int ->
  qp:Queue_pair.t ->
  device:Nvme_model.t ->
  cost_model:Cost_model.t ->
  global:Global_bucket.t ->
  ?costs:Costs.t ->
  ?neg_limit:float ->
  (* scheduler deficit limit, default -50 tokens (paper §3.2.2) *)
  ?donate_fraction:float ->
  (* share of above-POS_LIMIT balances donated, default 0.9 *)
  ?notify_control_plane:(int -> unit) ->
  ?reroute:(tenant_id:int -> kind:Io_op.kind -> bytes:int -> 'a -> unit) ->
  (* where to send receive-ring entries whose tenant has been rebalanced
     away before they were parsed (paper §3.1: rebalancing must not drop
     requests); default re-raises [Not_found] *)
  ?telemetry:Reflex_telemetry.Telemetry.t ->
  (* observability sink, default disabled: every span/gauge site then
     costs a single boolean test and the cycle stays allocation-free *)
  ?trace_id:('a -> int64) ->
  (* projects the opaque payload to the request id used for lifecycle
     spans (identity is the (tenant, req_id) pair); default [fun _ -> 0L] *)
  respond:('a done_req -> unit) ->
  unit ->
  'a t

val thread_id : 'a t -> int

(** {1 Tenant management (driven by the server/control plane)} *)

val add_tenant : 'a t -> id:int -> slo:Slo.t -> token_rate:float -> unit
val remove_tenant : 'a t -> id:int -> unit
val set_token_rate : 'a t -> id:int -> float -> unit
val has_tenant : 'a t -> id:int -> bool
val tenant_count : 'a t -> int

(** Detach a tenant for rebalancing, returning its SLO, token rate, and
    queued requests as (kind, bytes, payload) triples. *)
val detach_tenant : 'a t -> id:int -> (Slo.t * float * (Io_op.kind * int * 'a) list) option

(** Re-attach a tenant moved from another thread; its backlog re-enters
    this thread's receive ring. *)
val attach_tenant :
  'a t -> id:int -> slo:Slo.t -> token_rate:float -> backlog:(Io_op.kind * int * 'a) list -> unit

(** {1 Request path} *)

(** [receive t ~tenant_id ~kind ~bytes payload] — a parsed-off-the-wire
    request enters the thread's receive ring.  Raises [Not_found] for an
    unknown tenant. *)
val receive : 'a t -> tenant_id:int -> kind:Io_op.kind -> bytes:int -> 'a -> unit

(** Connections currently served by this thread (for the LLC pressure
    model). *)
val set_conn_count : 'a t -> int -> unit

(** [set_hopsink t sink] arms (or, with [Hopsink.null], disarms) the
    rack-trace hop sink: the thread stamps hop 2 (NVMe submit) and hop 3
    (NVMe complete) for each request as [(tenant, trace_id payload)].
    Disarmed cost is one bool test per site. *)
val set_hopsink : 'a t -> Reflex_obs.Hopsink.t -> unit

(** {1 Fault injection}

    [inject_stall t ~duration] occupies the thread's core with
    [duration] of high-priority foreign work (interrupt storm, noisy
    co-tenant): pending cycle steps queue behind it, exactly as behind a
    hogged physical core.  @raise Invalid_argument if [duration <= 0]. *)
val inject_stall : 'a t -> duration:Time.t -> unit

(** {1 Observability} *)

val utilization : 'a t -> float
val requests_completed : 'a t -> int
val tokens_spent : 'a t -> float

(** Tokens spent per second of simulated time since creation. *)
val token_usage_rate : 'a t -> float

(** Cumulative weighted tokens the tenant's submitted requests have cost
    on this thread ([None]: tenant not on this thread).  The monitoring
    layer takes windowed deltas of this to place a tenant's operating
    point on the device's latency-vs-weighted-IOPS curve. *)
val tenant_tokens_submitted : 'a t -> id:int -> float option

val scheduling_rounds : 'a t -> int

(** Requests inside this thread: unparsed receive-ring entries, queued
    tenant requests awaiting tokens, and in-flight NVMe commands.
    O(tenants) — a probe-path metric (the rack layer samples it every
    few hundred microseconds), not a per-cycle one. *)
val queue_depth : 'a t -> int
