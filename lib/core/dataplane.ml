open Reflex_engine
open Reflex_flash
open Reflex_qos
open Reflex_telemetry

type 'a done_req = { payload : 'a; kind : Io_op.kind; nvme_latency : Time.t }

type 'a pending = { p_payload : 'a; p_kind : Io_op.kind; p_bytes : int; p_tenant : int }

type 'a t = {
  sim : Sim.t;
  thread_id : int;
  core : Resource.t;
  qp : Queue_pair.t;
  device : Nvme_model.t;
  cost_model : Cost_model.t;
  scheduler : 'a pending Scheduler.t;
  costs : Costs.t;
  respond : 'a done_req -> unit;
  reroute : tenant_id:int -> kind:Io_op.kind -> bytes:int -> 'a -> unit;
  rx_ring : 'a pending Queue.t;
  outstanding : (int, 'a pending) Hashtbl.t;
  deferred : 'a pending Scheduler.submission Queue.t; (* SQ-full retries *)
  mutable next_cookie : int;
  mutable conns : int;
  mutable running : bool; (* a cycle is executing or queued on the core *)
  mutable idle_timer : Sim.event_id option;
  created_at : Time.t;
  mutable completed : int;
  mutable tokens_spent : float;
  mutable rounds : int;
  (* Observability.  [tel_on] copies the telemetry instance's immutable
     enabled bit: with telemetry off every span site below costs exactly
     one boolean test and allocates nothing, preserving the
     allocation-free hot cycle.  [trace_id] projects the opaque payload
     to the request id used for span identity. *)
  tel : Telemetry.t;
  tel_on : bool;
  (* Always-on flight recorder, cached off the telemetry instance at
     creation; one queue-depth record per cycle frames every forensic
     dump with what the rx ring and SQ looked like. *)
  fl : Reflex_obs.Flight.t;
  fl_on : bool;
  trace_id : 'a -> int64;
  (* Rack-trace hop sink: stamps the NVMe submit/complete instants for a
     (tenant, request) so a rack-level tracer can attribute server-queue
     vs flash-service time.  [hops_on] mirrors the sink's bool so the
     disarmed cost is one test per site, like [tel_on]/[fl_on]. *)
  mutable hops : Reflex_obs.Hopsink.t;
  mutable hops_on : bool;
}

let thread_id t = t.thread_id

let add_tenant t ~id ~slo ~token_rate =
  Scheduler.add_tenant t.scheduler (Tenant.create ~id ~slo ~token_rate)

let remove_tenant t ~id = Scheduler.remove_tenant t.scheduler id

let set_token_rate t ~id rate =
  match Scheduler.find_tenant t.scheduler id with
  | Some tenant -> Tenant.set_token_rate tenant rate
  | None -> raise Not_found

let has_tenant t ~id = Scheduler.find_tenant t.scheduler id <> None
let tenant_count t = Scheduler.tenant_count t.scheduler

let charge t base = Time.scale base (Costs.conn_factor t.costs ~conns:t.conns)

(* The thread wakes and runs one two-step cycle whenever there is work:
   receive-ring entries, completions, or schedulable tenant backlog. *)
let rec kick t =
  if not t.running then begin
    (match t.idle_timer with
    | Some ev ->
      Sim.cancel t.sim ev;
      t.idle_timer <- None
    | None -> ());
    t.running <- true;
    run_cycle t
  end

(* Step one (Figure 2, steps 1-4): drain a batch from the receive ring,
   parse each message into its tenant's software queue, run a QoS
   scheduling round, and submit admitted requests to the NVMe SQ.  The
   CPU for receive + parse + scheduling is charged before submissions
   take effect. *)
and run_cycle t =
  let costs = t.costs in
  if t.fl_on then
    Reflex_obs.Flight.record t.fl ~now:(Sim.now t.sim) ~kind:Reflex_obs.Flight.Kind.Queue_depth
      ~a:t.thread_id
      ~b:(Hashtbl.length t.outstanding)
      ~v:(float_of_int (Queue.length t.rx_ring));
  (* Size the batch up front (the ring only grows until we drain it, and
     this thread is the sole consumer), charge the CPU, then pop the same
     [n] messages straight off the ring inside the completion — no
     intermediate cons-and-reverse batch list on the per-cycle path. *)
  let n = min costs.batch_max (Queue.length t.rx_ring) in
  let per_msg = Time.add costs.rx_per_msg costs.parse_per_msg in
  let sched_cpu =
    Time.add costs.sched_base
      (Time.scale costs.sched_per_tenant (float_of_int (Scheduler.tenant_count t.scheduler)))
  in
  let step1_cpu = Time.add (Time.scale per_msg (float_of_int n)) sched_cpu in
  Resource.submit t.core ~service:(charge t step1_cpu) (fun ~started:_ ~finished:_ ->
      (* Requests enter their tenant's queue with the token cost fixed by
         the device's current read/write mix.  A tenant rebalanced away
         between arrival and parsing gets its requests rerouted, never
         dropped (paper §3.1). *)
      for _ = 1 to n do
        let p = Queue.pop t.rx_ring in
        match Scheduler.find_tenant t.scheduler p.p_tenant with
        | Some _ ->
          let cost =
            Cost_model.request_cost t.cost_model ~kind:p.p_kind ~bytes:p.p_bytes
              ~read_only:(Nvme_model.read_only_mode t.device)
          in
          Scheduler.enqueue t.scheduler ~tenant_id:p.p_tenant ~cost p;
          if t.tel_on then
            Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:p.p_tenant
              ~req_id:(t.trace_id p.p_payload) Telemetry.Stage.Sched_enqueue
        | None -> t.reroute ~tenant_id:p.p_tenant ~kind:p.p_kind ~bytes:p.p_bytes p.p_payload
      done;
      let submissions = ref 0 in
      let try_submit (s : 'a pending Scheduler.submission) =
        let pend = s.Scheduler.payload in
        let cookie = t.next_cookie in
        t.next_cookie <- t.next_cookie + 1;
        match Queue_pair.submit t.qp ~kind:pend.p_kind ~bytes:pend.p_bytes ~cookie with
        | `Ok ->
          Hashtbl.replace t.outstanding cookie pend;
          t.tokens_spent <- t.tokens_spent +. s.Scheduler.cost;
          incr submissions;
          if t.tel_on then
            Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:pend.p_tenant
              ~req_id:(t.trace_id pend.p_payload) Telemetry.Stage.Nvme_submit;
          if t.hops_on then
            Reflex_obs.Hopsink.stamp t.hops ~tenant:pend.p_tenant
              ~req:(t.trace_id pend.p_payload) ~hop:2 ~now:(Sim.now t.sim);
          true
        | `Full -> false
      in
      let submit_to_qp s =
        (* The scheduler released this request: its tokens are granted
           and spent, whether or not the SQ has room right now. *)
        if t.tel_on then begin
          let pend = s.Scheduler.payload in
          Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:pend.p_tenant
            ~req_id:(t.trace_id pend.p_payload) Telemetry.Stage.Granted
        end;
        if not (try_submit s) then Queue.add s t.deferred
      in
      (* Submissions deferred on a full SQ go first — their tokens are
         already spent.  Stop at the first refusal: the SQ is full again. *)
      let rec retry_deferred () =
        match Queue.peek_opt t.deferred with
        | Some s when try_submit s ->
          ignore (Queue.pop t.deferred);
          retry_deferred ()
        | Some _ | None -> ()
      in
      retry_deferred ();
      t.rounds <- t.rounds + 1;
      ignore (Scheduler.schedule t.scheduler ~now:(Sim.now t.sim) ~submit:submit_to_qp);
      let submit_cpu = Time.scale costs.submit_per_req (float_of_int !submissions) in
      Resource.submit t.core ~service:(charge t submit_cpu) (fun ~started:_ ~finished:_ ->
          run_step2 t))

(* Step two (Figure 2, steps 5-8): poll the completion queue, deliver
   completion events, transmit responses. *)
and run_step2 t =
  let costs = t.costs in
  (* Size the batch now (CPU is charged for what this cycle will reap);
     the reap itself happens in the callback via [Queue_pair.drain] —
     the CQ ring is FIFO, so the first [n] entries then are exactly the
     ones pending here, and no completion list is ever built. *)
  let pending = Queue_pair.completions_pending t.qp in
  let n = if pending < costs.batch_max then pending else costs.batch_max in
  let step2_cpu = Time.scale costs.complete_per_req (float_of_int n) in
  Resource.submit t.core ~service:(charge t step2_cpu) (fun ~started:_ ~finished:_ ->
      let _ : int =
        Queue_pair.drain t.qp ~max:n ~f:(fun ~cookie ~kind ~latency ->
            match Hashtbl.find_opt t.outstanding cookie with
            | Some pend ->
              Hashtbl.remove t.outstanding cookie;
              t.completed <- t.completed + 1;
              if t.tel_on then
                Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:pend.p_tenant
                  ~req_id:(t.trace_id pend.p_payload) Telemetry.Stage.Nvme_complete;
              if t.hops_on then
                Reflex_obs.Hopsink.stamp t.hops ~tenant:pend.p_tenant
                  ~req:(t.trace_id pend.p_payload) ~hop:3 ~now:(Sim.now t.sim);
              t.respond { payload = pend.p_payload; kind; nvme_latency = latency }
            | None -> ())
      in
      finish_cycle t)

and finish_cycle t =
  t.running <- false;
  let have_rx = not (Queue.is_empty t.rx_ring) in
  let have_cq = Queue_pair.completions_pending t.qp > 0 in
  let have_deferred = not (Queue.is_empty t.deferred) in
  if have_rx || have_cq || have_deferred then kick t
  else if Scheduler.backlog t.scheduler > 0.0 then
    (* Only rate-limited backlog remains: re-enter the scheduler once
       tokens have accrued. *)
    match t.idle_timer with
    | Some _ -> ()
    | None ->
      t.idle_timer <-
        Some
          (Sim.after t.sim t.costs.idle_sched_period (fun () ->
               t.idle_timer <- None;
               kick t))

let create sim ~thread_id ~qp ~device ~cost_model ~global ?(costs = Costs.default)
    ?neg_limit ?donate_fraction ?notify_control_plane
    ?(reroute = fun ~tenant_id ~kind:_ ~bytes:_ _ -> ignore tenant_id; raise Not_found)
    ?(telemetry = Telemetry.disabled) ?(trace_id = fun _ -> 0L) ~respond () =
  let scheduler =
    Scheduler.create ?neg_limit ?donate_fraction ~global ~thread_id ?notify_control_plane
      ~telemetry ()
  in
  let t =
    {
      sim;
      thread_id;
      core = Resource.create sim ~servers:1;
      qp;
      device;
      cost_model;
      scheduler;
      costs;
      respond;
      reroute;
      rx_ring = Queue.create ();
      outstanding = Hashtbl.create 1024;
      deferred = Queue.create ();
      next_cookie = 0;
      conns = 0;
      running = false;
      idle_timer = None;
      created_at = Sim.now sim;
      completed = 0;
      tokens_spent = 0.0;
      rounds = 0;
      tel = telemetry;
      tel_on = Telemetry.enabled telemetry;
      fl = Telemetry.flight telemetry;
      fl_on = Reflex_obs.Flight.enabled (Telemetry.flight telemetry);
      trace_id;
      hops = Reflex_obs.Hopsink.null;
      hops_on = false;
    }
  in
  if t.tel_on then begin
    let p = Printf.sprintf "core/thread%d/" thread_id in
    Telemetry.register_gauge telemetry (p ^ "rx_ring") (fun () ->
        float_of_int (Queue.length t.rx_ring));
    Telemetry.register_gauge telemetry (p ^ "outstanding") (fun () ->
        float_of_int (Hashtbl.length t.outstanding));
    Telemetry.register_gauge telemetry (p ^ "deferred") (fun () ->
        float_of_int (Queue.length t.deferred));
    Telemetry.register_gauge telemetry (p ^ "rounds") (fun () -> float_of_int t.rounds);
    Telemetry.register_gauge telemetry (p ^ "completed") (fun () -> float_of_int t.completed);
    Telemetry.register_gauge telemetry (p ^ "tokens_spent") (fun () -> t.tokens_spent);
    Telemetry.register_gauge telemetry (p ^ "backlog") (fun () -> Scheduler.backlog t.scheduler);
    Telemetry.register_gauge telemetry (p ^ "util") (fun () -> Resource.utilization t.core)
  end;
  (* A completion landing while the thread is idle is noticed by its next
     poll iteration. *)
  Queue_pair.set_completion_hook qp (fun () -> kick t);
  t

let detach_tenant t ~id =
  match Scheduler.find_tenant t.scheduler id with
  | None -> None
  | Some tenant ->
    let rec drain acc =
      match Tenant.dequeue tenant with
      | Some (_cost, pend) -> drain ((pend.p_kind, pend.p_bytes, pend.p_payload) :: acc)
      | None -> List.rev acc
    in
    let backlog = drain [] in
    let slo = Tenant.slo tenant and rate = Tenant.token_rate tenant in
    Scheduler.remove_tenant t.scheduler id;
    Some (slo, rate, backlog)

let receive t ~tenant_id ~kind ~bytes payload =
  if not (has_tenant t ~id:tenant_id) then raise Not_found;
  if t.tel_on then
    Telemetry.span t.tel ~now:(Sim.now t.sim) ~tenant:tenant_id ~req_id:(t.trace_id payload)
      Telemetry.Stage.Server_rx;
  Queue.add { p_payload = payload; p_kind = kind; p_bytes = bytes; p_tenant = tenant_id }
    t.rx_ring;
  kick t

let attach_tenant t ~id ~slo ~token_rate ~backlog =
  add_tenant t ~id ~slo ~token_rate;
  List.iter (fun (kind, bytes, payload) -> receive t ~tenant_id:id ~kind ~bytes payload) backlog

(* Fault injection: occupy the thread's core with an uninterruptible
   burst of "other work" (interrupt storm, page-cache shootdown, noisy
   co-tenant on the shared core).  High priority so it runs ahead of
   queued cycle steps; the dataplane's own work queues behind it exactly
   as it would behind a hogged physical core. *)
let inject_stall t ~duration =
  if Time.(duration <= Time.zero) then invalid_arg "Dataplane.inject_stall: duration";
  Resource.submit t.core ~priority:Resource.High ~service:duration
    (fun ~started:_ ~finished:_ -> ())

let set_hopsink t sink =
  t.hops <- sink;
  t.hops_on <- Reflex_obs.Hopsink.enabled sink

let set_conn_count t n = t.conns <- n
let utilization t = Resource.utilization t.core
let requests_completed t = t.completed
let tokens_spent t = t.tokens_spent

let token_usage_rate t =
  let elapsed = Time.to_float_sec (Time.diff (Sim.now t.sim) t.created_at) in
  if elapsed <= 0.0 then 0.0 else t.tokens_spent /. elapsed

(* Cumulative weighted tokens this tenant's submitted requests cost — the
   per-tenant half of the load-knee signal (lib/monitor takes windowed
   deltas to place each tenant on the latency-vs-weighted-IOPS curve). *)
let tenant_tokens_submitted t ~id =
  match Scheduler.find_tenant t.scheduler id with
  | Some tenant -> Some (Tenant.submitted_cost_total tenant)
  | None -> None

let scheduling_rounds t = t.rounds

(* Requests inside this thread, wherever they sit: unparsed receive-ring
   entries, software-queued tenant requests, and in-flight NVMe
   commands.  Probe-path metric for the rack-level load balancers. *)
let queue_depth t =
  Queue.length t.rx_ring + Scheduler.queue_depth t.scheduler + Hashtbl.length t.outstanding
