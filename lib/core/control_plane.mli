(** The local control plane (paper §4.3).

    Owns the device's throughput-latency characterization and uses it to:
    admit or reject latency-critical tenants (the strictest latency SLO
    across LC tenants fixes the device's sustainable token rate); compute
    per-tenant token rates (LC: weighted SLO rate; BE: fair share of the
    unallocated rate); pick the dataplane thread for each new tenant; and
    right-size the number of threads under load. *)

open Reflex_qos

type t

(** [token_rate_fn ~latency_us] maps a p95 read-latency SLO to the max
    weighted tokens/sec the device sustains — normally obtained from
    {!Reflex_flash.Calibrate.max_token_rate}.  The default is an analytic
    curve matching the bundled device profiles (device A: ~429K tokens/s
    at 500us, ~539K at 2ms; see DESIGN.md). *)
val create :
  ?admission_margin:float ->
  (* default 0.85 *)
  ?token_rate_fn:(latency_us:float -> float) ->
  profile:Reflex_flash.Device_profile.t ->
  cost_model:Cost_model.t ->
  unit ->
  t

type admission = Admitted | Rejected_no_capacity | Rejected_duplicate

(** [admit t ~id ~slo] runs admission control and records the tenant.
    BE tenants are always admitted.  Admitting an id that is already
    registered returns [Rejected_duplicate] and leaves the existing
    registration untouched (re-registering requires {!forget} first). *)
val admit : t -> id:int -> slo:Slo.t -> admission

(** Non-mutating admission check — used by the global control plane to
    test placements without registering. *)
val can_admit : t -> slo:Slo.t -> bool

(** Spare LC capacity (tokens/s) at the strictest SLO that would result
    from adding [candidate] — the global placement score input. *)
val headroom_with : t -> candidate:Slo.t -> float

(** Remove a tenant's registration and release its reservation.
    Forgetting an unknown id is a no-op (the unregister path is
    idempotent: a retried unregister must not fail). *)
val forget : t -> id:int -> unit

val is_registered : t -> id:int -> bool

(** {1 Degradation re-pricing}

    The resilience layer (lib/faults) lowers the capacity factor when the
    device degrades — every admission decision, BE share and pushed token
    rate immediately reflects the reduced capacity — and restores it to
    1.0 on recovery. *)

(** Set the usable fraction of calibrated capacity.
    @raise Invalid_argument unless [0 < factor <= 1]. *)
val set_capacity_factor : t -> float -> unit

val capacity_factor : t -> float

(** Strictest (lowest) latency SLO across registered LC tenants. *)
val strictest_latency_us : t -> float option

(** Token generation rate for the device at the strictest current SLO. *)
val total_token_rate : t -> float

(** Sum of LC tenants' weighted reservations. *)
val lc_reserved_rate : t -> float

(** Fair per-tenant share of the unallocated rate for BE tenants. *)
val be_share : t -> float

(** Token rate for one registered tenant under current conditions. *)
val token_rate_for : t -> id:int -> float option

(** All registered tenant ids with their current token rates — pushed to
    dataplane threads after every registration change. *)
val current_rates : t -> (int * float) list

val registered_count : t -> int

(** True when every registered tenant declares a 100%%-read mix, in which
    case reservations are priced at C(read, 100%%). *)
val fleet_read_only : t -> bool

(** Registered LC tenants with their SLOs, loosest latency bound first
    (ties by id) — the order in which degradation-driven demotion sheds
    reservations. *)
val lc_tenants : t -> (int * Slo.t) list

(** The default analytic device model used when no measured calibration is
    supplied. *)
val default_token_rate_fn : Reflex_flash.Device_profile.t -> latency_us:float -> float
