(** The global (cluster-level) control plane sketched in the paper's
    §4.3 as future work: it manages Flash across many ReFlex servers and
    decides where each tenant should live.

    Placement policy, following the paper's guidance:

    + only servers whose local control plane would admit the SLO are
      candidates;
    + among candidates, {e co-locate tenants with similar tail-latency
      requirements}: a strict tenant landing on a server of loose tenants
      drags everyone down to its token ceiling, so the score penalizes
      SLO mismatch (log-distance between the tenant's latency bound and
      the server's current strictest);
    + ties break toward the server with the most token headroom, which
      balances load.

    Best-effort tenants have no latency bound and simply go to the server
    with the most headroom. *)

open Reflex_qos

type t

val create : unit -> t

val add_server : t -> name:string -> Server.t -> unit
val servers : t -> (string * Server.t) list

type placement = { server_name : string; server : Server.t }

(** [place t ~slo] picks the server for a new tenant, or [None] when no
    server can admit it. *)
val place : t -> slo:Slo.t -> placement option

(** Convenience: place and register in one step (the caller connects its
    clients to the returned server).  [None] if no server admits. *)
val place_and_admit : t -> id:int -> slo:Slo.t -> placement option

(** [place_excluding t ~slo ~excluding] is {!place} restricted to servers
    other than [excluding] — used by the resilience layer to move a
    tenant off a degraded server. *)
val place_excluding : t -> slo:Slo.t -> excluding:string -> placement option
