(** The global (cluster-level) control plane sketched in the paper's
    §4.3 as future work: it manages Flash across many ReFlex servers and
    decides where each tenant should live.  The rack layer ([lib/rack])
    builds its two-layer scheduler on top of this module: placement and
    per-server probes here, request-level balancing and migration there.

    Placement policy, following the paper's guidance:

    + only servers whose local control plane would admit the SLO are
      candidates;
    + among candidates, {e co-locate tenants with similar tail-latency
      requirements}: a strict tenant landing on a server of loose tenants
      drags everyone down to its token ceiling, so the score penalizes
      SLO mismatch (log-distance between the tenant's latency bound and
      the server's current strictest);
    + ties break toward the server with the most token headroom, which
      balances load.

    Best-effort tenants have no latency bound and simply go to the server
    with the most headroom. *)

open Reflex_qos

type t

val create : unit -> t

val add_server : t -> name:string -> Server.t -> unit

(** All servers, in {e insertion order} — deterministic by construction
    (the pool is a list, never a Hashtbl), so rack reports built from
    this ordering are byte-stable across runs and domains. *)
val servers : t -> (string * Server.t) list

(** Lookup by name ([None] when unknown). *)
val find : t -> name:string -> Server.t option

type placement = { server_name : string; server : Server.t }

(** One load/capacity sample of a server, taken by {!probes}. *)
type probe = {
  probe_name : string;
  probe_server : Server.t;
  probe_headroom : float;
      (** unreserved LC token rate (tokens/s) at the current strictest SLO *)
  probe_queue_depth : int;
      (** requests inside the server: rx rings + software queues + NVMe
          in-flight (see {!Server.queue_depth}) *)
}

(** Sample every server, in the same insertion order as {!servers}.
    The rack layer calls this periodically, so balancing policies act on
    probe-aged state; only the idealized oracle reads fresh counters. *)
val probes : t -> probe list

(** [place t ~slo] picks the server for a new tenant, or [None] when no
    server can admit it. *)
val place : t -> slo:Slo.t -> placement option

(** Convenience: place and register in one step (the caller connects its
    clients to the returned server).  [None] if no server admits. *)
val place_and_admit : t -> id:int -> slo:Slo.t -> placement option

(** [place_excluding_set t ~slo ~excluding] is {!place} restricted to
    servers whose names are not in [excluding] — replica selection
    (replicas must land on distinct servers) and tenant migration (the
    target must be outside the current replica set) both exclude several
    servers at once. *)
val place_excluding_set : t -> slo:Slo.t -> excluding:string list -> placement option

(** Single-name convenience wrapper over {!place_excluding_set} — used by
    the resilience layer to move a tenant off one degraded server. *)
val place_excluding : t -> slo:Slo.t -> excluding:string -> placement option
