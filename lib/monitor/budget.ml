open Reflex_engine

(* SRE-style SLO error budgets.

   An SLO of the form "fraction [target] of requests complete within the
   tenant's latency bound" implies an error budget of [1 - target]: the
   fraction of requests allowed to miss the bound over the budget
   period.  The *burn rate* of a window is how fast that budget is being
   consumed relative to plan:

       burn = bad_fraction / (1 - target)

   burn = 1 means the budget is being spent exactly at the sustainable
   rate (it runs out precisely at the end of the period); burn = 14
   means the whole period's budget would be gone in period/14.

   All arithmetic is plain float over windowed good/bad counts coming
   out of Tsdb delta histograms, so same-seed runs reproduce the exact
   same burn-rate sequence bit for bit. *)

type t = {
  tenant : int;
  target : float; (* availability target in (0,1), e.g. 0.999 *)
  period : Time.t; (* budget period the burn rate is relative to *)
  mutable good : float; (* cumulative within-SLO requests *)
  mutable bad : float; (* cumulative SLO-violating requests *)
}

let create ~tenant ~target ~period =
  if not (target > 0.0 && target < 1.0) then
    invalid_arg "Budget.create: target must be in (0,1)";
  if Time.(period <= Time.zero) then invalid_arg "Budget.create: non-positive period";
  { tenant; target; period; good = 0.0; bad = 0.0 }

let tenant t = t.tenant
let target t = t.target
let period t = t.period

(* Pure burn-rate arithmetic, exposed for the rule engine and unit
   tests.  [good]/[bad] are windowed counts; an empty window burns
   nothing. *)
let burn_rate_of ~target ~good ~bad =
  let total = good +. bad in
  if total <= 0.0 then 0.0
  else
    let bad_fraction = bad /. total in
    bad_fraction /. (1.0 -. target)

let record t ~good ~bad =
  if good < 0.0 || bad < 0.0 then invalid_arg "Budget.record: negative counts";
  t.good <- t.good +. good;
  t.bad <- t.bad +. bad

let good t = t.good
let bad t = t.bad
let total t = t.good +. t.bad

(* Fraction of the whole period's budget consumed so far: observed bad
   fraction over the allowance.  >= 1 means the budget is exhausted. *)
let consumed t =
  let tot = total t in
  if tot <= 0.0 then 0.0 else t.bad /. tot /. (1.0 -. t.target)

let remaining t = Float.max 0.0 (1.0 -. consumed t)
let exhausted t = consumed t >= 1.0

(* Cumulative burn rate since the budget was created (not windowed). *)
let burn_rate t = burn_rate_of ~target:t.target ~good:t.good ~bad:t.bad

let pp ppf t =
  Fmt.pf ppf "tenant %d: target=%.4f bad=%.0f/%.0f consumed=%.1f%% burn=%.2f" t.tenant
    t.target t.bad (total t) (100.0 *. consumed t) (burn_rate t)
