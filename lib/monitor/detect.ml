(* Statistical detectors feeding the alert rules.

   Ewma: an exponentially-weighted mean/variance tracker producing a
   z-score for each new observation BEFORE folding it in (so a spike is
   scored against the pre-spike baseline, not against itself).  A sigma
   floor keeps early, near-constant series from producing huge z-scores
   out of numerical noise, and a warmup count suppresses scores until
   the baseline has seen enough windows to mean anything.

   Knee: the load-knee predicate.  A flash device's latency-vs-IOPS
   curve is a hockey stick (paper Fig. 2): past the knee, queueing
   delay explodes.  The device profile advertises the knee as a
   weighted-token rate (Device_profile.knee_token_rate); a tenant whose
   windowed token rate sits beyond it while its windowed p95 exceeds
   the knee latency is operating on the wrong side of the stick. *)

module Ewma = struct
  type t = {
    alpha : float;
    sigma_floor : float;
    warmup : int;
    mutable n : int;
    mutable mean : float;
    mutable var : float;
  }

  let create ?(alpha = 0.3) ?(sigma_floor = 1.0) ?(warmup = 5) () =
    if not (alpha > 0.0 && alpha <= 1.0) then invalid_arg "Ewma.create: alpha not in (0,1]";
    if sigma_floor < 0.0 then invalid_arg "Ewma.create: negative sigma_floor";
    if warmup < 0 then invalid_arg "Ewma.create: negative warmup";
    { alpha; sigma_floor; warmup; n = 0; mean = 0.0; var = 0.0 }

  let n t = t.n
  let mean t = t.mean
  let sigma t = Float.max t.sigma_floor (sqrt t.var)
  let warmed_up t = t.n >= t.warmup

  (* Score [x] against the current baseline, then fold it in.  Returns
     0 during warmup. *)
  let observe t x =
    let z = if warmed_up t then (x -. t.mean) /. sigma t else 0.0 in
    if t.n = 0 then begin
      t.mean <- x;
      t.var <- 0.0
    end
    else begin
      let d = x -. t.mean in
      (* Standard EWMA mean/variance recurrences. *)
      t.mean <- t.mean +. (t.alpha *. d);
      t.var <- ((1.0 -. t.alpha) *. t.var) +. (t.alpha *. (1.0 -. t.alpha) *. d *. d)
    end;
    t.n <- t.n + 1;
    z
end

(* True when the (rate, p95) operating point is past the hockey-stick
   knee: sustained weighted-token rate at or beyond the profile's knee
   rate AND windowed p95 beyond the knee latency.  Both conditions are
   required: high rate with good latency is just an efficient device,
   high latency at low rate is some other pathology (the burn rules
   catch it). *)
let knee_crossed ~rate ~knee_rate ~p95_us ~knee_latency_us =
  if knee_rate <= 0.0 then invalid_arg "Detect.knee_crossed: non-positive knee_rate";
  rate >= knee_rate && p95_us > knee_latency_us
