(** Statistical detectors feeding the alert rules: EWMA z-score anomaly
    scoring and the load-knee predicate. *)

(** Exponentially-weighted mean/variance tracker.  Each observation is
    scored against the {e pre-update} baseline so a spike is compared to
    what came before it, not to itself. *)
module Ewma : sig
  type t

  (** Defaults: [alpha = 0.3], [sigma_floor = 1.0] (score units),
      [warmup = 5] observations before nonzero z-scores. *)
  val create : ?alpha:float -> ?sigma_floor:float -> ?warmup:int -> unit -> t

  val n : t -> int
  val mean : t -> float

  (** Standard deviation estimate, floored at [sigma_floor]. *)
  val sigma : t -> float

  val warmed_up : t -> bool

  (** [observe t x] returns the z-score of [x] against the current
      baseline (0 during warmup), then folds [x] into the baseline. *)
  val observe : t -> float -> float
end

(** [knee_crossed ~rate ~knee_rate ~p95_us ~knee_latency_us] is true
    when a tenant's operating point is past the device's hockey-stick
    knee: windowed weighted-token [rate >= knee_rate] {e and} windowed
    [p95_us > knee_latency_us].  Both legs are required — high rate at
    good latency is healthy, high latency at low rate is a different
    pathology.
    @raise Invalid_argument on non-positive [knee_rate]. *)
val knee_crossed :
  rate:float -> knee_rate:float -> p95_us:float -> knee_latency_us:float -> bool
