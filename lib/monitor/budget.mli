(** SRE-style SLO error budgets.

    A latency SLO "fraction [target] of requests complete within the
    bound" grants an error budget of [1 - target]: the fraction of
    requests allowed to violate the bound over the budget [period].
    The {e burn rate} of a window of traffic is how fast the budget is
    being consumed relative to plan:

    {[ burn = bad_fraction / (1 - target) ]}

    [burn = 1] spends the budget exactly over the period; [burn = 14]
    exhausts it in [period / 14].  The multi-window rules in {!Alerts}
    compare windowed burn rates (computed from {!Tsdb} delta
    histograms) against such factors. *)

open Reflex_engine

type t

(** @raise Invalid_argument unless [target] is in (0,1) and [period]
    is positive. *)
val create : tenant:int -> target:float -> period:Time.t -> t

val tenant : t -> int
val target : t -> float
val period : t -> Time.t

(** Pure burn-rate arithmetic over one window's [good]/[bad] counts.
    An empty window ([good +. bad <= 0]) burns 0. *)
val burn_rate_of : target:float -> good:float -> bad:float -> float

(** Accumulate one window of traffic.
    @raise Invalid_argument on negative counts. *)
val record : t -> good:float -> bad:float -> unit

val good : t -> float
val bad : t -> float
val total : t -> float

(** Fraction of the period's budget consumed so far ([>= 1] means
    exhausted). *)
val consumed : t -> float

val remaining : t -> float
val exhausted : t -> bool

(** Cumulative (whole-run) burn rate. *)
val burn_rate : t -> float

val pp : Format.formatter -> t -> unit
