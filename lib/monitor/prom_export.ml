open Reflex_stats

(* Prometheus text exposition (version 0.0.4) of a Telemetry metrics
   registry.

   Metric names are sanitized into the Prometheus grammar
   (letters, digits, '_' and ':') and prefixed with "reflex_"; the
   slash-separated registry paths map '/' (and every other illegal
   character) to '_'.  Histograms are rendered as summaries with
   microsecond quantiles.  All output is sorted by metric name, so
   same-seed runs export byte-identical pages. *)

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let sanitize = function "" -> "_" | s -> sanitize s

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let line ~name ?(labels = []) v =
  let labels =
    match labels with
    | [] -> ""
    | l ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v)) l)
      ^ "}"
  in
  Printf.sprintf "%s%s %.6g\n" (sanitize name) labels v

let render ?(prefix = "reflex_") tel =
  let buf = Buffer.create 2048 in
  List.iter
    (fun name ->
      let pname = prefix ^ sanitize name in
      match Reflex_telemetry.Telemetry.find_metric tel name with
      | None -> ()
      | Some (`Counter v) ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" pname);
        Buffer.add_string buf (line ~name:pname v)
      | Some (`Gauge v) ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" pname);
        Buffer.add_string buf (line ~name:pname v)
      | Some (`Hist h) ->
        let pname = pname ^ "_us" in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" pname);
        List.iter
          (fun q ->
            Buffer.add_string buf
              (line ~name:pname
                 ~labels:[ ("quantile", Printf.sprintf "%g" (q /. 100.0)) ]
                 (Hdr_histogram.percentile_us h q)))
          [ 50.0; 95.0; 99.0 ];
        Buffer.add_string buf
          (line ~name:(pname ^ "_count") (float_of_int (Hdr_histogram.count h)));
        Buffer.add_string buf
          (line ~name:(pname ^ "_mean") (Hdr_histogram.mean_us h)))
    (Reflex_telemetry.Telemetry.metric_names tel);
  Buffer.contents buf
