(** Opt-in feedback loop from fired alerts to control-plane actions.

    Alerting is a pure observer by default; experiments opt into
    remediation by binding rule names to actions in the {!Monitor}
    facade.  Every action is a deterministic function of simulation
    state, so remediated runs replay bit-identically. *)

open Reflex_core

type action =
  | Reprice of float
      (** Push this capacity factor to the control plane
          ({!Server.reprice}). *)
  | Reprice_for_device
      (** Re-derive the factor from current device health
          ({!Reflex_faults.Degrade.reprice_for_device}). *)
  | Demote of int  (** Demote one LC tenant to best-effort in place. *)
  | Demote_until_sustainable of float
      (** Demote loosest-SLO-first until LC reservations fit within
          this margin of the degraded rate. *)
  | Log of string  (** No-op marker; lands in the remediation log. *)

val label : action -> string

(** Apply one action; returns a one-line outcome for the remediation
    log. *)
val apply : Server.t -> action -> string
