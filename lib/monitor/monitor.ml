open Reflex_engine
open Reflex_stats
open Reflex_core
open Reflex_telemetry
module Flight = Reflex_obs.Flight
module Flight_dump = Reflex_obs.Flight_dump
module Profiler = Reflex_obs.Profiler

(* The monitoring facade: one daemon tick drives the whole pipeline

     tenant sync -> Tsdb window close -> budget accounting
       -> alert rule evaluation -> (opt-in) remediation

   in a fixed order, so every derived quantity is a deterministic
   function of simulation state and the alert timeline of a same-seed
   run is byte-identical serial or under Runner --jobs.

   Tenants register *after* the monitor is armed (the scheduler pushes
   SLOs into Telemetry when a tenant is added), so per-tenant sources,
   budgets and rules are wired lazily at the first tick that sees a new
   id in Telemetry.tenants_with_slo (a sorted list — wiring order is
   deterministic too).

   Zero-overhead-when-disabled: a monitor created with ~enabled:false
   (or over a disabled telemetry) registers nothing, arms no daemon and
   never mutates the world, so a disabled-monitor run is bit-identical
   to a run with no monitor at all.  Remediation is opt-in via [bind];
   without bindings the monitor is a pure observer even when enabled. *)

(* One alert-triggered forensic dump: the flight-ring snapshot frozen at
   the tick where the alert fired, plus the cross-references needed to
   render it ([Flight_dump.debrief] / [to_chrome_json]). *)
type flight_dump = {
  d_rule : string;
  d_time : Time.t;
  d_detail : string;
  d_snapshot : Flight.snapshot;
  d_faults : Flight_dump.fault_window list;
}

type t = {
  enabled : bool;
  server : Server.t;
  telemetry : Telemetry.t;
  tsdb : Tsdb.t;
  alerts : Alerts.t;
  flight : Flight.t; (* cached off telemetry at create time *)
  profiler : Profiler.t;
  dump_window : Time.t;
  max_dumps : int;
  mutable dumps_rev : flight_dump list;
  budgets : (int, Budget.t) Hashtbl.t;
  tracked : (int, unit) Hashtbl.t;
  target : float;
  burn_short : int * float;
  burn_long : int * float;
  budget_period : Time.t;
  z_thresh : float;
  anomaly_floor : float;
  knee_rate : float;
  interval : Time.t;
  cooldown : Time.t;
  mutable bindings : (string * Remediate.action) list; (* name-sorted *)
  last_applied : (string, Time.t) Hashtbl.t;
  mutable remediation_log_rev : (Time.t * string * Remediate.action * string) list;
  mutable last_closed : int;
  mutable running : bool;
}

let fault_annotation telemetry ~lookback now =
  let recent_start = if Time.(now > lookback) then Time.sub now lookback else Time.zero in
  let labels =
    Telemetry.fault_windows telemetry
    |> List.filter_map (fun (label, start, stop) ->
           let still_relevant =
             match stop with None -> true | Some s -> Time.(s >= recent_start)
           in
           if Time.(start <= now) && still_relevant then Some label else None)
    |> List.sort_uniq compare
  in
  match labels with
  | [] -> None
  | l -> Some ("faults: " ^ String.concat "," l)

let create ?(enabled = true) ?(interval = Time.ms 1) ?(capacity = 512) ?(target = 0.999)
    ?(burn_short = (1, 14.0)) ?(burn_long = (10, 6.0)) ?(budget_period = Time.sec 1)
    ?(z_thresh = 3.0) ?(anomaly_floor = 0.25) ?(knee_frac = 0.8) ?(cooldown = Time.ms 5)
    ?fault_lookback ?(dump_window = Time.ms 5) ?(max_dumps = 4) ~server ~telemetry () =
  let enabled = enabled && Telemetry.enabled telemetry in
  let tsdb = if enabled then Tsdb.create ~capacity ~interval () else Tsdb.disabled in
  let lookback =
    match fault_lookback with
    | Some l -> l
    | None -> Time.scale interval (float_of_int (fst burn_long))
  in
  let alerts = Alerts.create ~annotate:(fault_annotation telemetry ~lookback) () in
  let knee_rate =
    Reflex_flash.Device_profile.knee_token_rate ~frac:knee_frac
      (Reflex_flash.Nvme_model.profile (Server.device server))
  in
  let t =
    {
      enabled;
      server;
      telemetry;
      tsdb;
      alerts;
      flight = Telemetry.flight telemetry;
      profiler = Telemetry.profiler telemetry;
      dump_window;
      max_dumps;
      dumps_rev = [];
      budgets = Hashtbl.create 8;
      tracked = Hashtbl.create 8;
      target;
      burn_short;
      burn_long;
      budget_period;
      z_thresh;
      anomaly_floor;
      knee_rate;
      interval;
      cooldown;
      bindings = [];
      last_applied = Hashtbl.create 8;
      remediation_log_rev = [];
      last_closed = 0;
      running = false;
    }
  in
  if enabled then begin
    Tsdb.register_cumulative tsdb "server/completed" (fun () ->
        float_of_int (Server.requests_completed server));
    Tsdb.register_cumulative tsdb "server/tokens_spent" (fun () ->
        Server.tokens_spent server);
    Tsdb.register_gauge tsdb "server/active_threads" (fun () ->
        float_of_int (Server.active_threads server));
    (* Continuous cost profiler: sample per-subsystem attribution on
       every window close.  The values are host wall time / GC words —
       nondeterministic by design — and feed only the Tsdb/Prometheus
       exports, never an alert rule or a byte-identity-checked render. *)
    if Profiler.enabled t.profiler then
      List.iter
        (fun sub ->
          let pfx = "obs/prof/" ^ Profiler.Subsystem.name sub in
          Tsdb.register_cumulative tsdb (pfx ^ "/wall_ms") (fun () ->
              1e3 *. Profiler.wall_s t.profiler sub);
          Tsdb.register_cumulative tsdb (pfx ^ "/minor_words") (fun () ->
              Profiler.minor_words t.profiler sub))
        Profiler.Subsystem.all
  end;
  t

let enabled t = t.enabled
let interval t = t.interval
let tsdb t = t.tsdb
let alerts t = t.alerts
let knee_rate t = t.knee_rate

(* Wire sources, budget and the three default rules for one newly seen
   latency-critical tenant. *)
let track_tenant t id ~slo_us =
  let pfx = Printf.sprintf "t%d" id in
  let latency = pfx ^ "/latency" in
  let slo_ns = Int64.of_int (slo_us * 1000) in
  Tsdb.register_hist t.tsdb latency (Telemetry.tenant_latency_hist t.telemetry ~tenant:id);
  Tsdb.register_derived t.tsdb (pfx ^ "/bad") (fun w ->
      match Tsdb.hist w latency with
      | Some h -> float_of_int (Hdr_histogram.count_above h slo_ns)
      | None -> 0.0);
  Tsdb.register_derived t.tsdb (pfx ^ "/good") (fun w ->
      match Tsdb.hist w latency with
      | Some h ->
        float_of_int (Hdr_histogram.count h - Hdr_histogram.count_above h slo_ns)
      | None -> 0.0);
  Tsdb.register_cumulative t.tsdb (pfx ^ "/tokens") (fun () ->
      Server.tenant_tokens_submitted t.server ~tenant:id);
  (* EWMA over the windowed SLO-violating fraction, scored before
     fold-in.  The bad fraction is far less noisy than a per-window p95
     (which is within a couple of samples of the max at these window
     populations), and the sigma floor of 10 percentage points means a
     z >= 3 needs the fraction to jump >= 30pp above baseline — healthy
     tail blips from BE interference never get there. *)
  let bad_fraction h =
    let total = Hdr_histogram.count h in
    if total = 0 then 0.0
    else float_of_int (Hdr_histogram.count_above h slo_ns) /. float_of_int total
  in
  let ewma = Detect.Ewma.create ~sigma_floor:0.1 () in
  Tsdb.register_derived t.tsdb (pfx ^ "/badfrac_z") (fun w ->
      match Tsdb.hist w latency with
      | Some h when Hdr_histogram.count h > 0 -> Detect.Ewma.observe ewma (bad_fraction h)
      | _ -> 0.0);
  Hashtbl.replace t.budgets id
    (Budget.create ~tenant:id ~target:t.target ~period:t.budget_period);
  (* Rule 1: SRE multi-window burn rate on the SLO error budget. *)
  Alerts.add t.alerts
    (Alerts.burn_rule ~severity:Alerts.Page ~name:(pfx ^ "/burn") ~target:t.target
       ~good:(pfx ^ "/good") ~bad:(pfx ^ "/bad") ~short:t.burn_short ~long:t.burn_long ());
  (* Rule 2: load-knee crossing — past the device's hockey-stick knee
     while violating the SLO bound. *)
  Alerts.add t.alerts
    (Alerts.rule ~severity:Alerts.Ticket ~name:(pfx ^ "/knee") (fun _ w ->
         let span_s = Tsdb.span_us w /. 1e6 in
         let tokens = Option.value ~default:0.0 (Tsdb.value w (pfx ^ "/tokens")) in
         if span_s <= 0.0 then None
         else
           let rate = tokens /. span_s in
           match Tsdb.hist w latency with
           | Some h when Hdr_histogram.count h > 0 ->
             let p95 = Hdr_histogram.percentile_us h 95.0 in
             if
               Detect.knee_crossed ~rate ~knee_rate:t.knee_rate ~p95_us:p95
                 ~knee_latency_us:(float_of_int slo_us)
             then
               Some
                 (Printf.sprintf "%.0f tok/s >= knee %.0f with p95 %.0fus > slo %dus"
                    rate t.knee_rate p95 slo_us)
             else None
           | _ -> None));
  (* Rule 3: EWMA z-score anomaly on the violating fraction, gated on
     an absolute floor so clean runs stay silent no matter how wiggly
     the baseline is. *)
  Alerts.add t.alerts
    (Alerts.rule ~severity:Alerts.Info ~name:(pfx ^ "/anomaly") (fun _ w ->
         let z = Option.value ~default:0.0 (Tsdb.value w (pfx ^ "/badfrac_z")) in
         match Tsdb.hist w latency with
         | Some h when Hdr_histogram.count h > 0 ->
           let frac = bad_fraction h in
           if z >= t.z_thresh && frac >= t.anomaly_floor then
             Some
               (Printf.sprintf "%.0f%% of window over %dus SLO, z=%.1f vs baseline %.0f%%"
                  (100.0 *. frac) slo_us z (100.0 *. Detect.Ewma.mean ewma))
           else None
         | _ -> None))

(* Tenants register after the monitor is armed; pick up new ids each
   tick.  Only latency-critical tenants carry budgets and rules. *)
let sync_tenants t =
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.tracked id) then begin
        Hashtbl.replace t.tracked id ();
        match Telemetry.tenant_slo t.telemetry ~tenant:id with
        | Some (true, slo_us) -> track_tenant t id ~slo_us
        | _ -> ()
      end)
    (Telemetry.tenants_with_slo t.telemetry)

let update_budgets t w =
  (* reflex-lint: allow det/hashtbl-order — per-tenant Budget.record calls touch disjoint budgets keyed by tenant id; order-insensitive *)
  Hashtbl.iter
    (fun id budget ->
      let pfx = Printf.sprintf "t%d" id in
      let value name = Option.value ~default:0.0 (Tsdb.value w name) in
      let good = value (pfx ^ "/good") and bad = value (pfx ^ "/bad") in
      if good > 0.0 || bad > 0.0 then Budget.record budget ~good ~bad)
    t.budgets

let cooldown_ok t rule now =
  match Hashtbl.find_opt t.last_applied rule with
  | None -> true
  | Some last -> Time.(Time.diff now last >= t.cooldown)

let severity_int = function Alerts.Info -> 0 | Alerts.Ticket -> 1 | Alerts.Page -> 2

(* Mirror one alert edge into the flight ring (interned rule name in [a],
   severity in [b]) so the triggering edge itself appears in the dump. *)
let flight_alert_edge t (e : Alerts.event) =
  if Flight.enabled t.flight then
    let kind =
      match e.e_kind with
      | Alerts.Fired -> Flight.Kind.Alert_fire
      | Alerts.Resolved -> Flight.Kind.Alert_resolve
    in
    Flight.record t.flight ~now:e.e_time ~kind ~a:(Flight.intern t.flight e.e_rule)
      ~b:(severity_int e.e_severity) ~v:0.0

(* Triggered dump: freeze the last [dump_window] of the flight ring at
   the first fired edge of this tick (records for the edge are written
   first, so the trigger is inside its own snapshot), capped at
   [max_dumps] per run so a flapping rule cannot hoard memory. *)
let maybe_dump t (e : Alerts.event) =
  if
    e.e_kind = Alerts.Fired
    && Flight.enabled t.flight
    && List.length t.dumps_rev < t.max_dumps
  then
    t.dumps_rev <-
      {
        d_rule = e.e_rule;
        d_time = e.e_time;
        d_detail = e.e_detail;
        d_snapshot = Flight.snapshot t.flight ~now:e.e_time ~window:t.dump_window;
        d_faults = Telemetry.fault_windows t.telemetry;
      }
      :: t.dumps_rev

let tick t ~now =
  if t.enabled then begin
    Profiler.enter t.profiler Profiler.Subsystem.Monitor;
    sync_tenants t;
    Tsdb.tick t.tsdb ~now;
    let closed = Tsdb.windows_closed t.tsdb in
    if closed > t.last_closed then begin
      t.last_closed <- closed;
      (match Tsdb.last t.tsdb with Some w -> update_budgets t w | None -> ());
      let events = Alerts.step t.alerts t.tsdb ~now in
      List.iter (flight_alert_edge t) events;
      List.iter (maybe_dump t) events;
      List.iter
        (fun (e : Alerts.event) ->
          if e.e_kind = Alerts.Fired then
            match List.assoc_opt e.e_rule t.bindings with
            | Some action when cooldown_ok t e.e_rule now ->
              let outcome = Remediate.apply t.server action in
              Hashtbl.replace t.last_applied e.e_rule now;
              t.remediation_log_rev <- (now, e.e_rule, action, outcome)
                                       :: t.remediation_log_rev;
              Telemetry.remediation_mark t.telemetry ~now ~rule:e.e_rule ~outcome
            | _ -> ())
        events
    end;
    Profiler.leave t.profiler Profiler.Subsystem.Monitor
  end

let start t sim () =
  if t.enabled && not t.running then begin
    t.running <- true;
    Sim.every_daemon sim ~every:t.interval (fun now -> tick t ~now)
  end

let bind t ~rule action =
  if t.enabled then
    t.bindings <-
      List.sort (fun (a, _) (b, _) -> compare a b) ((rule, action) :: t.bindings)

let remediation_log t = List.rev t.remediation_log_rev
let flight_dumps t = List.rev t.dumps_rev

let dump_trigger d : Flight_dump.trigger = (d.d_rule, d.d_time, d.d_detail)
let dump_debrief d = Flight_dump.debrief ~alert:(dump_trigger d) ~faults:d.d_faults d.d_snapshot

let dump_chrome_json d =
  Flight_dump.to_chrome_json ~alert:(dump_trigger d) ~faults:d.d_faults d.d_snapshot
let events t = Alerts.events t.alerts
let fired_total t = Alerts.fired_total t.alerts
let firing t = Alerts.firing t.alerts

let budgets t =
  Hashtbl.fold (fun id b acc -> (id, b) :: acc) t.budgets []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

(* {1 Exports} *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Alert timeline as Chrome-trace instant events, ready for
   Trace_export.to_chrome_json ~extra. *)
let chrome_instants t =
  List.map
    (fun (e : Alerts.event) ->
      let buf = Buffer.create 160 in
      Buffer.add_string buf "{\"name\":";
      add_json_string buf ("alert:" ^ e.e_rule);
      Buffer.add_string buf
        (Printf.sprintf ",\"cat\":\"alert\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"g\",\"pid\":0,\"tid\":0,\"args\":{\"kind\":\"%s\",\"severity\":\"%s\",\"detail\":"
           (Time.to_float_us e.e_time)
           (Alerts.kind_label e.e_kind)
           (Alerts.severity_label e.e_severity));
      add_json_string buf e.e_detail;
      Buffer.add_string buf "}}";
      Buffer.contents buf)
    (events t)

let prometheus t =
  if not t.enabled then ""
  else begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Prom_export.render t.telemetry);
    List.iter
      (fun (id, b) ->
        let labels = [ ("tenant", string_of_int id) ] in
        Buffer.add_string buf
          (Prom_export.line ~name:"reflex_slo_budget_consumed" ~labels (Budget.consumed b));
        Buffer.add_string buf
          (Prom_export.line ~name:"reflex_slo_budget_burn_rate" ~labels (Budget.burn_rate b)))
      (budgets t);
    List.iter
      (fun name ->
        Buffer.add_string buf
          (Prom_export.line ~name:"reflex_alert_firing" ~labels:[ ("rule", name) ] 1.0))
      (firing t);
    Buffer.add_string buf
      (Prom_export.line ~name:"reflex_alerts_fired_total" (float_of_int (fired_total t)));
    Buffer.contents buf
  end

(* {1 Report} *)

let report t =
  if not t.enabled then "== monitor disabled ==\n"
  else begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      (Printf.sprintf
         "== monitor (%.1fms interval, %d windows, %d tenants, knee %.0f tok/s) ==\n"
         (Time.to_float_ms t.interval)
         (Tsdb.windows_closed t.tsdb)
         (Hashtbl.length t.budgets) t.knee_rate);
    List.iter
      (fun (_, b) -> Buffer.add_string buf (Fmt.str "  %a\n" Budget.pp b))
      (budgets t);
    Buffer.add_string buf (Alerts.report t.alerts);
    (match remediation_log t with
    | [] -> ()
    | log ->
      Buffer.add_string buf "== remediations ==\n";
      List.iter
        (fun (time, rule, action, outcome) ->
          Buffer.add_string buf
            (Printf.sprintf "%10.3fms %-28s %s -> %s\n" (Time.to_float_ms time) rule
               (Remediate.label action) outcome))
        log);
    (match flight_dumps t with
    | [] -> ()
    | dumps ->
      Buffer.add_string buf "== flight dumps ==\n";
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "%10.3fms %-28s %d records in last %.3fms\n"
               (Time.to_float_ms d.d_time) d.d_rule
               (Flight.snap_length d.d_snapshot)
               (Time.to_float_ms d.d_snapshot.Flight.snap_window)))
        dumps);
    Buffer.contents buf
  end
