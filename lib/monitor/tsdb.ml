open Reflex_engine
open Reflex_stats

(* Ring-buffered windowed time-series store.

   Sources are registered once and read at every [tick]: a CUMULATIVE
   source contributes the delta since the previous tick (rates),
   a GAUGE contributes its instantaneous value at window close, a
   HISTOGRAM source contributes the *delta histogram* between two
   mergeable snapshots (Hdr_histogram.copy/diff), so windowed p95/p99
   are exact bucket-count deltas, and a DERIVED source is computed from
   the window being closed (e.g. "violations" = count_above of the
   window's latency delta).

   The same zero-overhead-when-disabled contract as Telemetry: every
   mutating operation on the shared {!disabled} instance returns
   immediately, so a world without monitoring pays nothing.  All
   iteration orders are name-sorted, so reports are deterministic across
   runs and domains. *)

type window = {
  w_start : Time.t;
  w_stop : Time.t;
  w_values : (string * float) array; (* name-sorted *)
  w_hists : (string * Hdr_histogram.t) array; (* delta hists, name-sorted *)
}

type source =
  | Cumulative of (unit -> float) * float ref (* reader, last snapshot *)
  | Gauge of (unit -> float)
  | Hist of Hdr_histogram.t * Hdr_histogram.t ref (* live, last snapshot *)
  | Derived of (window -> float)

type t = {
  enabled : bool;
  capacity : int;
  sources : (string, source) Hashtbl.t;
  mutable windows_rev : window list; (* newest first, <= capacity *)
  mutable n_windows : int;
  mutable closed_total : int;
  mutable last_tick : Time.t;
  mutable running : bool;
  interval : Time.t;
}

let make ~enabled ~capacity ~interval =
  {
    enabled;
    capacity;
    sources = Hashtbl.create 32;
    windows_rev = [];
    n_windows = 0;
    closed_total = 0;
    last_tick = Time.zero;
    running = false;
    interval;
  }

let disabled = make ~enabled:false ~capacity:1 ~interval:(Time.ms 1)

let create ?(capacity = 512) ?(interval = Time.ms 1) () =
  if capacity < 1 then invalid_arg "Tsdb.create: capacity < 1";
  if Time.(interval <= Time.zero) then invalid_arg "Tsdb.create: non-positive interval";
  make ~enabled:true ~capacity ~interval

let enabled t = t.enabled
let interval t = t.interval

let check_free t name =
  if Hashtbl.mem t.sources name then invalid_arg ("Tsdb: duplicate source " ^ name)

let register_cumulative t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Cumulative (f, ref (f ())))
  end

let register_gauge t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Gauge f)
  end

let register_hist t name h =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Hist (h, ref (Hdr_histogram.copy h)))
  end

let register_derived t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Derived f)
  end

let has_source t name = Hashtbl.mem t.sources name

let sorted_sources t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sources []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let tick t ~now =
  if t.enabled && Time.(now > t.last_tick) then begin
    let sources = sorted_sources t in
    (* Pass 1: base sources (cumulative deltas, gauges, hist deltas). *)
    let values = ref [] in
    let hists = ref [] in
    List.iter
      (fun (name, s) ->
        match s with
        | Cumulative (f, last) ->
          let v = f () in
          values := (name, v -. !last) :: !values;
          last := v
        | Gauge f -> values := (name, f ()) :: !values
        | Hist (live, last) ->
          let snap = Hdr_histogram.copy live in
          hists := (name, Hdr_histogram.diff snap ~since:!last) :: !hists;
          last := snap
        | Derived _ -> ())
      sources;
    let base =
      {
        w_start = t.last_tick;
        w_stop = now;
        w_values = Array.of_list (List.rev !values);
        w_hists = Array.of_list (List.rev !hists);
      }
    in
    (* Pass 2: derived sources see the freshly-closed base window. *)
    let derived =
      List.filter_map
        (fun (name, s) -> match s with Derived f -> Some (name, f base) | _ -> None)
        sources
    in
    let w =
      if derived = [] then base
      else begin
        let all = Array.append base.w_values (Array.of_list derived) in
        Array.sort (fun (a, _) (b, _) -> compare a b) all;
        { base with w_values = all }
      end
    in
    t.windows_rev <- w :: t.windows_rev;
    t.n_windows <- t.n_windows + 1;
    t.closed_total <- t.closed_total + 1;
    if t.n_windows > t.capacity then begin
      t.windows_rev <- List.filteri (fun i _ -> i < t.capacity) t.windows_rev;
      t.n_windows <- t.capacity
    end;
    t.last_tick <- now
  end

let start t sim () =
  if t.enabled && not t.running then begin
    t.running <- true;
    Sim.every_daemon sim ~every:t.interval (fun now -> tick t ~now)
  end

let windows t = List.rev t.windows_rev
let window_count t = t.n_windows
let windows_closed t = t.closed_total
let last t = match t.windows_rev with [] -> None | w :: _ -> Some w

(* Newest [k] windows, oldest first. *)
let last_n t k =
  let rec take acc n = function
    | w :: rest when n > 0 -> take (w :: acc) (n - 1) rest
    | _ -> acc
  in
  take [] k t.windows_rev

let assoc_of name arr =
  let n = Array.length arr in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = arr.(mid) in
      let c = compare name k in
      if c = 0 then Some v else if c < 0 then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 n

let value w name = assoc_of name w.w_values
let hist w name = assoc_of name w.w_hists

let p95_us w name =
  match hist w name with Some h -> Some (Hdr_histogram.percentile_us h 95.0) | None -> None

let p99_us w name =
  match hist w name with Some h -> Some (Hdr_histogram.percentile_us h 99.0) | None -> None

(* Sum of a value series over the newest [k] windows (missing names count
   as 0 — a source registered mid-run simply contributes nothing to
   earlier windows). *)
let sum_last t ~k name =
  List.fold_left
    (fun acc w -> match value w name with Some v -> acc +. v | None -> acc)
    0.0 (last_n t k)

let span_us w = Time.to_float_us (Time.diff w.w_stop w.w_start)

let report ?(limit = 8) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== tsdb (%d windows closed, %d retained, %.1fms interval) ==\n"
       t.closed_total t.n_windows (Time.to_float_ms t.interval));
  let ws = last_n t limit in
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "window %.3f..%.3fms\n" (Time.to_float_ms w.w_start)
           (Time.to_float_ms w.w_stop));
      Array.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %14.3f\n" name v))
        w.w_values;
      Array.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-34s n=%-7d p95=%.1fus p99=%.1fus\n" name
               (Hdr_histogram.count h)
               (Hdr_histogram.percentile_us h 95.0)
               (Hdr_histogram.percentile_us h 99.0)))
        w.w_hists)
    ws;
  Buffer.contents buf
