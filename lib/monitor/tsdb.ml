open Reflex_engine
open Reflex_stats

(* Ring-buffered windowed time-series store.

   Sources are registered once and read at every [tick]: a CUMULATIVE
   source contributes the delta since the previous tick (rates),
   a GAUGE contributes its instantaneous value at window close, a
   HISTOGRAM source contributes the *delta histogram* between two
   mergeable snapshots (Hdr_histogram.copy/diff), so windowed p95/p99
   are exact bucket-count deltas, and a DERIVED source is computed from
   the window being closed (e.g. "violations" = count_above of the
   window's latency delta).

   The same zero-overhead-when-disabled contract as Telemetry: every
   mutating operation on the shared {!disabled} instance returns
   immediately, so a world without monitoring pays nothing.  All
   iteration orders are name-sorted, so reports are deterministic across
   runs and domains. *)

type window = {
  w_start : Time.t;
  w_stop : Time.t;
  w_values : (string * float) array; (* name-sorted *)
  w_hists : (string * Hdr_histogram.t) array; (* delta hists, name-sorted *)
}

type source =
  | Cumulative of (unit -> float) * float ref (* reader, last snapshot *)
  | Gauge of (unit -> float)
  | Hist of Hdr_histogram.t * Hdr_histogram.t ref (* live, last snapshot *)
  | Derived of (window -> float)

type t = {
  enabled : bool;
  capacity : int;
  sources : (string, source) Hashtbl.t;
  (* Name-sorted source snapshot, rebuilt lazily on registration: [tick]
     walks these parallel arrays instead of re-sorting the Hashtbl, and
     the per-kind counts let it allocate each window's arrays at their
     exact final size. *)
  mutable src_dirty : bool;
  mutable src_names : string array;
  mutable src_srcs : source array;
  mutable n_vals : int; (* cumulative + gauge *)
  mutable n_hists : int;
  mutable n_derived : int;
  ring : window array; (* circular, [capacity] slots *)
  mutable ring_head : int; (* index of newest window when ring_len > 0 *)
  mutable ring_len : int;
  mutable closed_total : int;
  mutable last_tick : Time.t;
  mutable running : bool;
  interval : Time.t;
}

let make ~enabled ~capacity ~interval =
  let dummy =
    { w_start = Time.zero; w_stop = Time.zero; w_values = [||]; w_hists = [||] }
  in
  {
    enabled;
    capacity;
    sources = Hashtbl.create 32;
    src_dirty = false;
    src_names = [||];
    src_srcs = [||];
    n_vals = 0;
    n_hists = 0;
    n_derived = 0;
    ring = Array.make capacity dummy;
    ring_head = 0;
    ring_len = 0;
    closed_total = 0;
    last_tick = Time.zero;
    running = false;
    interval;
  }

let disabled = make ~enabled:false ~capacity:1 ~interval:(Time.ms 1)

let create ?(capacity = 512) ?(interval = Time.ms 1) () =
  if capacity < 1 then invalid_arg "Tsdb.create: capacity < 1";
  if Time.(interval <= Time.zero) then invalid_arg "Tsdb.create: non-positive interval";
  make ~enabled:true ~capacity ~interval

let enabled t = t.enabled
let interval t = t.interval

let check_free t name =
  if Hashtbl.mem t.sources name then invalid_arg ("Tsdb: duplicate source " ^ name)

let register_cumulative t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Cumulative (f, ref (f ())));
    t.src_dirty <- true
  end

let register_gauge t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Gauge f);
    t.src_dirty <- true
  end

let register_hist t name h =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Hist (h, ref (Hdr_histogram.copy h)));
    t.src_dirty <- true
  end

let register_derived t name f =
  if t.enabled then begin
    check_free t name;
    Hashtbl.replace t.sources name (Derived f);
    t.src_dirty <- true
  end

let has_source t name = Hashtbl.mem t.sources name

(* Rebuild the sorted snapshot arrays.  Cold: runs once per registration
   epoch, not per tick. *)
let refresh_sources t =
  let kvs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sources []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let n = List.length kvs in
  let names = Array.make n "" in
  let srcs = Array.make n (Gauge (fun () -> 0.0)) in
  let nv = ref 0 and nh = ref 0 and nd = ref 0 in
  List.iteri
    (fun i (k, s) ->
      names.(i) <- k;
      srcs.(i) <- s;
      match s with
      | Cumulative _ | Gauge _ -> incr nv
      | Hist _ -> incr nh
      | Derived _ -> incr nd)
    kvs;
  t.src_names <- names;
  t.src_srcs <- srcs;
  t.n_vals <- !nv;
  t.n_hists <- !nh;
  t.n_derived <- !nd;
  t.src_dirty <- false

let tick t ~now =
  if t.enabled && Time.(now > t.last_tick) then begin
    if t.src_dirty then refresh_sources t;
    let n = Array.length t.src_names in
    (* Pass 1: base sources (cumulative deltas, gauges, hist deltas)
       filled into exact-size arrays in one name-ordered sweep.  The
       arrays are owned by the window being closed, so they are fresh
       per tick by design — what the cache removes is the per-tick
       Hashtbl fold, sort and list churn. *)
    let values = Array.make t.n_vals ("", 0.0) in
    let hists =
      if t.n_hists = 0 then [||] else Array.make t.n_hists ("", Hdr_histogram.create ())
    in
    let vi = ref 0 and hi = ref 0 in
    for i = 0 to n - 1 do
      let name = t.src_names.(i) in
      match t.src_srcs.(i) with
      | Cumulative (f, last) ->
        let v = f () in
        values.(!vi) <- (name, v -. !last);
        incr vi;
        last := v
      | Gauge f ->
        values.(!vi) <- (name, f ());
        incr vi
      | Hist (live, last) ->
        let snap = Hdr_histogram.copy live in
        hists.(!hi) <- (name, Hdr_histogram.diff snap ~since:!last);
        incr hi;
        last := snap
      | Derived _ -> ()
    done;
    let base = { w_start = t.last_tick; w_stop = now; w_values = values; w_hists = hists } in
    (* Pass 2: derived sources see the freshly-closed base window; the
       final window merges the two already-sorted runs. *)
    let w =
      if t.n_derived = 0 then base
      else begin
        let d = Array.make t.n_derived ("", 0.0) in
        let di = ref 0 in
        for i = 0 to n - 1 do
          match t.src_srcs.(i) with
          | Derived f ->
            d.(!di) <- (t.src_names.(i), f base);
            incr di
          | _ -> ()
        done;
        let all = Array.make (t.n_vals + t.n_derived) ("", 0.0) in
        let a = ref 0 and b = ref 0 in
        for k = 0 to Array.length all - 1 do
          let take_base =
            !b >= t.n_derived || (!a < t.n_vals && fst values.(!a) <= fst d.(!b))
          in
          if take_base then begin
            all.(k) <- values.(!a);
            incr a
          end
          else begin
            all.(k) <- d.(!b);
            incr b
          end
        done;
        { base with w_values = all }
      end
    in
    t.ring_head <- (t.ring_head + 1) mod t.capacity;
    t.ring.(t.ring_head) <- w;
    if t.ring_len < t.capacity then t.ring_len <- t.ring_len + 1;
    t.closed_total <- t.closed_total + 1;
    t.last_tick <- now
  end

let start t sim () =
  if t.enabled && not t.running then begin
    t.running <- true;
    Sim.every_daemon sim ~every:t.interval (fun now -> tick t ~now)
  end

let window_count t = t.ring_len
let windows_closed t = t.closed_total
let last t = if t.ring_len = 0 then None else Some t.ring.(t.ring_head)

(* Newest [k] windows, oldest first. *)
let last_n t k =
  let k = if k < 0 then 0 else if k > t.ring_len then t.ring_len else k in
  let rec build acc i =
    if i >= k then acc
    else build (t.ring.((t.ring_head - i + t.capacity) mod t.capacity) :: acc) (i + 1)
  in
  build [] 0

let windows t = last_n t t.ring_len

let assoc_of name arr =
  let n = Array.length arr in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = arr.(mid) in
      let c = compare name k in
      if c = 0 then Some v else if c < 0 then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 n

let value w name = assoc_of name w.w_values
let hist w name = assoc_of name w.w_hists

let p95_us w name =
  match hist w name with Some h -> Some (Hdr_histogram.percentile_us h 95.0) | None -> None

let p99_us w name =
  match hist w name with Some h -> Some (Hdr_histogram.percentile_us h 99.0) | None -> None

(* Sum of a value series over the newest [k] windows (missing names count
   as 0 — a source registered mid-run simply contributes nothing to
   earlier windows). *)
let sum_last t ~k name =
  List.fold_left
    (fun acc w -> match value w name with Some v -> acc +. v | None -> acc)
    0.0 (last_n t k)

let span_us w = Time.to_float_us (Time.diff w.w_stop w.w_start)

let report ?(limit = 8) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== tsdb (%d windows closed, %d retained, %.1fms interval) ==\n"
       t.closed_total t.ring_len (Time.to_float_ms t.interval));
  let ws = last_n t limit in
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "window %.3f..%.3fms\n" (Time.to_float_ms w.w_start)
           (Time.to_float_ms w.w_stop));
      Array.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %14.3f\n" name v))
        w.w_values;
      Array.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-34s n=%-7d p95=%.1fus p99=%.1fus\n" name
               (Hdr_histogram.count h)
               (Hdr_histogram.percentile_us h 95.0)
               (Hdr_histogram.percentile_us h 99.0)))
        w.w_hists)
    ws;
  Buffer.contents buf
