(** Declarative alerting rules over the windowed {!Tsdb}.

    Each rule is a check evaluated once per closed window, wrapped in a
    per-rule state machine with {e for-duration} (the condition must
    hold [for_] before the rule fires) and {e resolve hysteresis} (the
    condition must stay clear [resolve_after] before a firing rule
    resolves).

    Rules are evaluated in name order and events appended in that
    order, so the alert timeline of a same-seed run is byte-identical
    serial or under [Runner --jobs] — nothing here depends on wall
    clock, hash order or domain count. *)

open Reflex_engine

type severity = Info | Ticket | Page

val severity_label : severity -> string

type rule

(** [rule ~name check]: [check tsdb window] returns [Some detail] when
    the condition is violated for the freshly closed [window].
    Defaults: [severity = Ticket], [for_ = 0] (fire on first bad
    window), [resolve_after = 0] (resolve on first clean window). *)
val rule :
  ?severity:severity ->
  ?for_:Time.t ->
  ?resolve_after:Time.t ->
  name:string ->
  (Tsdb.t -> Tsdb.window -> string option) ->
  rule

val name : rule -> string
val severity : rule -> severity

(** SRE multi-window multi-burn-rate rule: fires when the burn rate
    (see {!Budget.burn_rate_of}) of the [good]/[bad] Tsdb value series
    exceeds both factors, over the newest [short = (windows, factor)]
    and [long = (windows, factor)] window spans.  E.g.
    [~short:(1, 14.) ~long:(10, 6.)] is "1 window at 14x AND 10 windows
    at 6x".
    @raise Invalid_argument unless [1 <= short windows <= long windows]. *)
val burn_rule :
  ?severity:severity ->
  ?for_:Time.t ->
  ?resolve_after:Time.t ->
  name:string ->
  target:float ->
  good:string ->
  bad:string ->
  short:int * float ->
  long:int * float ->
  unit ->
  rule

type kind = Fired | Resolved

val kind_label : kind -> string

type event = private {
  e_time : Time.t;
  e_rule : string;
  e_severity : severity;
  e_kind : kind;
  e_detail : string;
}

type t

(** [annotate now] is called once per {e fired} event; when it returns
    [Some extra] the text is appended to the event detail (the
    {!Monitor} facade uses it to name overlapping fault windows). *)
val create : ?annotate:(Time.t -> string option) -> unit -> t

(** @raise Invalid_argument on duplicate rule names. *)
val add : t -> rule -> unit

val rule_names : t -> string list

(** Evaluate every rule against the newest closed window ([[]] if the
    Tsdb has none yet).  Returns the events emitted by this step, in
    rule-name order. *)
val step : t -> Tsdb.t -> now:Time.t -> event list

(** Names of rules currently in the firing state, name-sorted. *)
val firing : t -> string list

(** Full timeline, oldest first. *)
val events : t -> event list

val event_count : t -> int

(** Fired transitions ever (resolves not counted). *)
val fired_total : t -> int

val pp_event : Format.formatter -> event -> unit
val report : t -> string
