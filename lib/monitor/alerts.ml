open Reflex_engine

(* Declarative alerting rules over the windowed Tsdb.

   Each rule owns a check function evaluated once per closed window and
   a small per-rule state machine implementing for-duration and resolve
   hysteresis:

      Ok --violated--> Pending --held for `for_`--> Firing
      Pending --clear--> Ok
      Firing --clear for `resolve_after`--> Ok   (emits Resolved)

   Rules are evaluated in NAME order every step and events are appended
   in that order, so the alert timeline of a same-seed run is
   byte-identical whether the experiment ran serial or under
   Runner --jobs: nothing in here depends on wall clock, hashing order
   or domain count.

   The flagship rule shape is the SRE multi-window multi-burn-rate
   condition (e.g. "burn >= 14x over the short window AND >= 6x over
   the long window"), built from Budget.burn_rate_of over windowed
   good/bad counts; see {!burn_rule}. *)

type severity = Info | Ticket | Page

let severity_label = function Info -> "info" | Ticket -> "ticket" | Page -> "page"

type rule = {
  r_name : string;
  r_severity : severity;
  r_for : Time.t;
  r_resolve_after : Time.t;
  r_check : Tsdb.t -> Tsdb.window -> string option;
}

let rule ?(severity = Ticket) ?(for_ = Time.zero) ?(resolve_after = Time.zero) ~name check
    =
  if Time.(for_ < Time.zero) then invalid_arg "Alerts.rule: negative for_";
  if Time.(resolve_after < Time.zero) then invalid_arg "Alerts.rule: negative resolve_after";
  { r_name = name; r_severity = severity; r_for = for_; r_resolve_after = resolve_after;
    r_check = check }

let name r = r.r_name
let severity r = r.r_severity

(* Multi-window multi-burn-rate rule: fire when the burn rate over the
   newest [short] windows and the newest [long] windows both exceed
   their factors.  The long window keeps the rule honest (sustained
   burn), the short window keeps its reset time low. *)
let burn_rule ?severity ?for_ ?resolve_after ~name ~target ~good ~bad ~short ~long () =
  let k_short, f_short = short and k_long, f_long = long in
  if k_short < 1 || k_long < k_short then invalid_arg "Alerts.burn_rule: bad window sizes";
  let burn_over tsdb k =
    Budget.burn_rate_of ~target
      ~good:(Tsdb.sum_last tsdb ~k good)
      ~bad:(Tsdb.sum_last tsdb ~k bad)
  in
  rule ?severity ?for_ ?resolve_after ~name (fun tsdb _w ->
      let b_short = burn_over tsdb k_short and b_long = burn_over tsdb k_long in
      if b_short >= f_short && b_long >= f_long then
        Some
          (Printf.sprintf "burn %.1fx/%dw (>=%.0fx) and %.1fx/%dw (>=%.0fx)" b_short
             k_short f_short b_long k_long f_long)
      else None)

type kind = Fired | Resolved

let kind_label = function Fired -> "FIRED" | Resolved -> "RESOLVED"

type event = {
  e_time : Time.t;
  e_rule : string;
  e_severity : severity;
  e_kind : kind;
  e_detail : string;
}

type rstate = {
  rule : rule;
  mutable armed_since : Time.t; (* entered Pending *)
  mutable last_violation : Time.t;
  mutable state : [ `Ok | `Pending | `Firing ];
}

type t = {
  annotate : Time.t -> string option;
  mutable rules : rstate list; (* name-sorted *)
  mutable events_rev : event list;
  mutable fired_total : int;
}

let create ?(annotate = fun _ -> None) () =
  { annotate; rules = []; events_rev = []; fired_total = 0 }

let add t r =
  if List.exists (fun rs -> rs.rule.r_name = r.r_name) t.rules then
    invalid_arg ("Alerts.add: duplicate rule " ^ r.r_name);
  let rs = { rule = r; armed_since = Time.zero; last_violation = Time.zero; state = `Ok } in
  t.rules <-
    List.sort (fun a b -> compare a.rule.r_name b.rule.r_name) (rs :: t.rules)

let rule_names t = List.map (fun rs -> rs.rule.r_name) t.rules

let emit t ~now rs kind detail =
  let detail =
    match (kind, t.annotate now) with
    | Fired, Some extra -> detail ^ "; " ^ extra
    | _ -> detail
  in
  let e =
    {
      e_time = now;
      e_rule = rs.rule.r_name;
      e_severity = rs.rule.r_severity;
      e_kind = kind;
      e_detail = detail;
    }
  in
  t.events_rev <- e :: t.events_rev;
  if kind = Fired then t.fired_total <- t.fired_total + 1;
  e

(* Evaluate every rule against the freshly closed window.  Returns the
   events emitted by this step, in rule-name order. *)
let step t tsdb ~now =
  match Tsdb.last tsdb with
  | None -> []
  | Some w ->
    List.filter_map
      (fun rs ->
        let verdict = rs.rule.r_check tsdb w in
        match (rs.state, verdict) with
        | `Ok, None -> None
        | `Ok, Some detail ->
          rs.last_violation <- now;
          if Time.(rs.rule.r_for <= Time.zero) then begin
            rs.state <- `Firing;
            Some (emit t ~now rs Fired detail)
          end
          else begin
            rs.state <- `Pending;
            rs.armed_since <- now;
            None
          end
        | `Pending, None ->
          rs.state <- `Ok;
          None
        | `Pending, Some detail ->
          rs.last_violation <- now;
          if Time.(Time.diff now rs.armed_since >= rs.rule.r_for) then begin
            rs.state <- `Firing;
            Some (emit t ~now rs Fired detail)
          end
          else None
        | `Firing, Some _ ->
          rs.last_violation <- now;
          None
        | `Firing, None ->
          if Time.(Time.diff now rs.last_violation >= rs.rule.r_resolve_after) then begin
            rs.state <- `Ok;
            Some (emit t ~now rs Resolved "condition clear")
          end
          else None)
      t.rules

let firing t =
  List.filter_map
    (fun rs -> if rs.state = `Firing then Some rs.rule.r_name else None)
    t.rules

let events t = List.rev t.events_rev
let event_count t = List.length t.events_rev
let fired_total t = t.fired_total

let pp_event ppf e =
  Fmt.pf ppf "%10.3fms %-8s %-6s %-28s %s" (Time.to_float_ms e.e_time)
    (kind_label e.e_kind) (severity_label e.e_severity) e.e_rule e.e_detail

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "== alerts (%d events, %d fired, firing now: %s) ==\n" (event_count t)
       t.fired_total
       (match firing t with [] -> "none" | l -> String.concat "," l));
  List.iter
    (fun e -> Buffer.add_string buf (Fmt.str "%a\n" pp_event e))
    (events t);
  Buffer.contents buf
