(** Prometheus text exposition (format 0.0.4) of a {!Reflex_telemetry.Telemetry}
    metrics registry.

    Registry paths ([qos/t7/tokens]) are sanitized into the Prometheus
    grammar ('/' and other illegal characters become '_') and prefixed.
    Counters and gauges render as single samples; histograms render as
    summaries with microsecond p50/p95/p99 quantiles plus [_count] and
    [_mean].  Output is sorted by metric name — same-seed runs export
    byte-identical pages. *)

val sanitize : string -> string

(** One exposition line; [labels] values are escaped. *)
val line : name:string -> ?labels:(string * string) list -> float -> string

(** Render the whole registry.  [prefix] defaults to ["reflex_"]. *)
val render : ?prefix:string -> Reflex_telemetry.Telemetry.t -> string
