(** The monitoring facade: one daemon tick drives

    tenant sync → {!Tsdb} window close → {!Budget} accounting →
    {!Alerts} rule evaluation → opt-in {!Remediate} actions

    in a fixed order, so the alert timeline of a same-seed run is
    byte-identical serial or under [Runner --jobs].

    Per-LC-tenant instrumentation (windowed latency delta histograms,
    good/bad counts against the SLO bound, weighted-token rates, EWMA
    p95 z-scores) is wired lazily: tenants register with the scheduler
    {e after} the monitor is armed, and each tick picks up new ids from
    [Telemetry.tenants_with_slo].  Every LC tenant gets three default
    rules: [t<ID>/burn] (multi-window burn rate, default 1 window @ 14×
    ∧ 10 windows @ 6×), [t<ID>/knee] (operating point past the device's
    hockey-stick knee while violating the SLO) and [t<ID>/anomaly]
    (EWMA z-score on the windowed SLO-violating fraction, gated on an
    absolute floor so clean runs stay silent).

    {e Zero overhead when disabled}: with [~enabled:false] (or a
    disabled telemetry) nothing is registered and no daemon is armed —
    a disabled-monitor run is bit-identical to a run with no monitor.
    Remediation is opt-in via {!bind}; without bindings the monitor
    never mutates the world. *)

open Reflex_engine
open Reflex_core
open Reflex_telemetry

type t

(** One alert-triggered forensic dump: the {!Reflex_obs.Flight} ring
    snapshot frozen at the tick where the alert fired, with the firing
    rule and the fault windows known at that instant. *)
type flight_dump = private {
  d_rule : string;
  d_time : Time.t;
  d_detail : string;
  d_snapshot : Reflex_obs.Flight.snapshot;
  d_faults : Reflex_obs.Flight_dump.fault_window list;
}

(** Defaults: sampling [interval] 1ms, ring [capacity] 512 windows,
    SLO [target] 0.999, burn windows [burn_short = (1, 14.0)] and
    [burn_long = (10, 6.0)] (windows, factor), [budget_period] 1s,
    anomaly [z_thresh] 3.0 with [anomaly_floor] 0.25 (minimum windowed
    violating fraction), [knee_frac] 0.8 of device token capacity,
    remediation [cooldown] 5ms per rule.  [fault_lookback] bounds how
    far back a fired alert searches for fault windows to name in its
    detail (default: the long burn window).

    When the telemetry carries an armed flight recorder
    ([Telemetry.set_flight]), every alert edge is mirrored into the ring
    and each {e fired} edge freezes the last [dump_window] (default 5ms)
    of flight records as a forensic dump, capped at [max_dumps]
    (default 4) per run.  When the telemetry carries an armed profiler
    ([Telemetry.set_profiler]), per-subsystem [obs/prof/<sub>/wall_ms]
    and [.../minor_words] sources are sampled into the Tsdb on every
    window close — host wall-clock values, for export only, never fed to
    alert rules. *)
val create :
  ?enabled:bool ->
  ?interval:Time.t ->
  ?capacity:int ->
  ?target:float ->
  ?burn_short:int * float ->
  ?burn_long:int * float ->
  ?budget_period:Time.t ->
  ?z_thresh:float ->
  ?anomaly_floor:float ->
  ?knee_frac:float ->
  ?cooldown:Time.t ->
  ?fault_lookback:Time.t ->
  ?dump_window:Time.t ->
  ?max_dumps:int ->
  server:Server.t ->
  telemetry:Telemetry.t ->
  unit ->
  t

val enabled : t -> bool
val interval : t -> Time.t
val tsdb : t -> Tsdb.t
val alerts : t -> Alerts.t

(** Weighted-token knee rate derived from the server's device profile. *)
val knee_rate : t -> float

(** Advance the pipeline one window.  Normally driven by {!start}. *)
val tick : t -> now:Time.t -> unit

(** Arm the periodic daemon tick ({!Sim.every_daemon}: never keeps the
    simulation alive).  Idempotent; no-op when disabled. *)
val start : t -> Sim.t -> unit -> unit

(** {1 Remediation (opt-in)} *)

(** [bind t ~rule action] applies [action] whenever [rule] fires, at
    most once per cooldown window per rule. *)
val bind : t -> rule:string -> Remediate.action -> unit

(** [(time, rule, action, outcome)] in application order. *)
val remediation_log : t -> (Time.t * string * Remediate.action * string) list

(** {1 Queries} *)

val events : t -> Alerts.event list
val fired_total : t -> int
val firing : t -> string list

(** Per-tenant budgets, sorted by tenant id. *)
val budgets : t -> (int * Budget.t) list

(** {1 Flight dumps} *)

(** Alert-triggered dumps in firing order (empty without an armed flight
    recorder). *)
val flight_dumps : t -> flight_dump list

(** JSON forensic debrief of one dump, cross-referenced to its trigger
    alert and fault windows ({!Reflex_obs.Flight_dump.debrief}). *)
val dump_debrief : flight_dump -> string

(** Chrome [trace_event] render of one dump
    ({!Reflex_obs.Flight_dump.to_chrome_json}). *)
val dump_chrome_json : flight_dump -> string

(** {1 Exports} *)

(** Alert timeline as Chrome-trace instant-event JSON objects, ready
    for [Trace_export.to_chrome_json ~extra]. *)
val chrome_instants : t -> string list

(** Prometheus text exposition: the telemetry registry plus budget
    consumption/burn gauges and currently-firing alert rules.  Empty
    when disabled. *)
val prometheus : t -> string

val report : t -> string
