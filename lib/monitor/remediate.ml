open Reflex_core

(* Opt-in feedback loop from fired alerts to control-plane actions.

   The monitor never mutates the world by default — alerting stays a
   pure observer so a monitored run is bit-identical to an unmonitored
   one.  When an experiment opts in, it binds alert rules to actions
   here; Monitor applies each binding at most once per cooldown so a
   rule that keeps firing does not spam the control plane. *)

type action =
  | Reprice of float (* capacity_factor pushed to the control plane *)
  | Reprice_for_device (* re-derive the factor from device health *)
  | Demote of int (* LC tenant -> BE in place *)
  | Demote_until_sustainable of float (* margin *)
  | Log of string (* no-op marker, lands in the remediation log *)

let label = function
  | Reprice f -> Printf.sprintf "reprice(%.2f)" f
  | Reprice_for_device -> "reprice_for_device"
  | Demote id -> Printf.sprintf "demote(t%d)" id
  | Demote_until_sustainable m -> Printf.sprintf "demote_until_sustainable(%.2f)" m
  | Log s -> Printf.sprintf "log(%s)" s

(* Apply one action; returns a one-line outcome for the remediation
   log.  All outcomes are deterministic functions of simulation state. *)
let apply server = function
  | Reprice f ->
    Server.reprice server ~capacity_factor:f;
    Printf.sprintf "repriced capacity_factor=%.2f" f
  | Reprice_for_device ->
    Reflex_faults.Degrade.reprice_for_device server;
    Printf.sprintf "repriced from device health (factor=%.2f)"
      (Control_plane.capacity_factor (Server.control_plane server))
  | Demote id ->
    if Server.demote_tenant server ~tenant:id then Printf.sprintf "demoted tenant %d" id
    else Printf.sprintf "demote tenant %d: no-op" id
  | Demote_until_sustainable margin ->
    (match Reflex_faults.Degrade.demote_until_sustainable ~margin server with
    | [] -> "already sustainable, nothing demoted"
    | ids ->
      Printf.sprintf "demoted tenants [%s]"
        (String.concat ";" (List.map string_of_int ids)))
  | Log msg -> msg
