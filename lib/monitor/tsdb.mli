(** Ring-buffered windowed time-series store, sampled on the DES clock.

    One {!t} per monitored world.  Sources are registered once; every
    {!tick} closes a window holding, per source:

    - {e cumulative} sources: the delta since the previous tick (turn
      counters into windowed rates);
    - {e gauge} sources: the instantaneous value at window close;
    - {e histogram} sources: the {e delta histogram} between two
      mergeable snapshots ({!Reflex_stats.Hdr_histogram.copy}/[diff]),
      so windowed p95/p99 are exact bucket-count deltas rather than
      approximations over a decaying aggregate;
    - {e derived} sources: a function of the window being closed (e.g.
      SLO violations = [count_above] of the window's latency delta).

    Same zero-overhead-when-disabled contract as {!Telemetry}: every
    operation on the shared {!disabled} instance is a no-op, and the
    instance is never mutated (domain-safe).  All iteration is
    name-sorted, so reports are byte-identical across runs and domains. *)

open Reflex_engine
open Reflex_stats

(** One closed window.  [w_values]/[w_hists] are name-sorted. *)
type window = private {
  w_start : Time.t;
  w_stop : Time.t;
  w_values : (string * float) array;
  w_hists : (string * Hdr_histogram.t) array;
}

type t

val disabled : t

(** [create ()] retains the newest [capacity] (default 512) windows and
    advertises [interval] (default 1ms) as its sampling period. *)
val create : ?capacity:int -> ?interval:Time.t -> unit -> t

val enabled : t -> bool
val interval : t -> Time.t

(** {1 Sources}  Registering a duplicate name raises [Invalid_argument];
    all registration is a no-op on a disabled instance. *)

val register_cumulative : t -> string -> (unit -> float) -> unit
val register_gauge : t -> string -> (unit -> float) -> unit
val register_hist : t -> string -> Hdr_histogram.t -> unit

(** Computed from the window being closed, after base sources. *)
val register_derived : t -> string -> (window -> float) -> unit

val has_source : t -> string -> bool

(** {1 Sampling} *)

(** Close the window [(previous tick, now]].  No-op unless [now] has
    advanced. *)
val tick : t -> now:Time.t -> unit

(** Arm a periodic daemon tick every [interval] ({!Sim.every_daemon}:
    never keeps the simulation alive).  Idempotent.  The {!Monitor}
    facade drives {!tick} from its own daemon instead, so the whole
    monitoring pipeline shares one tick. *)
val start : t -> Sim.t -> unit -> unit

(** {1 Queries} *)

val windows : t -> window list
val window_count : t -> int

(** Windows ever closed, including evicted ones. *)
val windows_closed : t -> int

val last : t -> window option

(** Newest [k] windows, oldest first. *)
val last_n : t -> int -> window list

val value : window -> string -> float option
val hist : window -> string -> Hdr_histogram.t option
val p95_us : window -> string -> float option
val p99_us : window -> string -> float option

(** Sum of a value series over the newest [k] windows (missing names
    contribute 0). *)
val sum_last : t -> k:int -> string -> float

val span_us : window -> float
val report : ?limit:int -> t -> string
