(* Host-cost attribution.  Wall clock and Gc.minor_words are read only
   inside enter/leave scopes on an enabled instance; the numbers never
   touch simulation state (see the .mli contract and the det/clock waiver
   for lib/obs/ in lint.manifest). *)

module Subsystem = struct
  type t = Engine | Qos | Flash | Net | Telemetry | Monitor | Other

  let count = 7

  let to_int = function
    | Engine -> 0
    | Qos -> 1
    | Flash -> 2
    | Net -> 3
    | Telemetry -> 4
    | Monitor -> 5
    | Other -> 6

  let name = function
    | Engine -> "engine"
    | Qos -> "qos"
    | Flash -> "flash"
    | Net -> "net"
    | Telemetry -> "telemetry"
    | Monitor -> "monitor"
    | Other -> "other"

  let all = [ Engine; Qos; Flash; Net; Telemetry; Monitor; Other ]
end

type t = {
  on : bool;
  wall : float array; (* accumulated seconds per subsystem *)
  minor : float array; (* accumulated minor words per subsystem *)
  n_calls : int array;
  t0 : float array; (* open-scope start stamps *)
  w0 : float array;
}

let make ~enabled =
  let n = Subsystem.count in
  {
    on = enabled;
    wall = Array.make n 0.0;
    minor = Array.make n 0.0;
    n_calls = Array.make n 0;
    t0 = Array.make n 0.0;
    w0 = Array.make n 0.0;
  }

let disabled = make ~enabled:false
let create () = make ~enabled:true
let enabled t = t.on [@@inline]

let enter t sub =
  if t.on then begin
    let i = Subsystem.to_int sub in
    t.t0.(i) <- Unix.gettimeofday ();
    t.w0.(i) <- Gc.minor_words ()
  end
[@@inline]

let leave t sub =
  if t.on then begin
    let i = Subsystem.to_int sub in
    t.wall.(i) <- t.wall.(i) +. (Unix.gettimeofday () -. t.t0.(i));
    t.minor.(i) <- t.minor.(i) +. (Gc.minor_words () -. t.w0.(i));
    t.n_calls.(i) <- t.n_calls.(i) + 1
  end
[@@inline]

let wall_s t sub = t.wall.(Subsystem.to_int sub)
let minor_words t sub = t.minor.(Subsystem.to_int sub)
let calls t sub = t.n_calls.(Subsystem.to_int sub)

(* The Engine scope (wrapped around Sim.run by the harness) encloses every
   other scope, so its self time is what remains once the nested buckets
   are subtracted.  When no Engine scope was taken, shares normalise over
   the sum of the independent buckets instead. *)
let shares t =
  let engine = t.wall.(Subsystem.to_int Subsystem.Engine) in
  let nested =
    List.fold_left
      (fun acc sub ->
        if sub = Subsystem.Engine then acc else acc +. t.wall.(Subsystem.to_int sub))
      0.0 Subsystem.all
  in
  let engine_self = if engine > 0.0 then Float.max 0.0 (engine -. nested) else 0.0 in
  let total = if engine > nested then engine else nested in
  let total = if total > 0.0 then total else 1.0 in
  List.map
    (fun sub ->
      let i = Subsystem.to_int sub in
      let w = if sub = Subsystem.Engine then engine_self else t.wall.(i) in
      (Subsystem.name sub, w, w /. total, t.minor.(i)))
    Subsystem.all

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== cost profile (host wall time; engine = self) ==\n";
  Buffer.add_string buf
    (Printf.sprintf "%-10s %12s %8s %14s %10s\n" "subsystem" "wall_ms" "share" "minor_words"
       "scopes");
  List.iter
    (fun (name, w, share, minor) ->
      let sub = List.find (fun s -> Subsystem.name s = name) Subsystem.all in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %12.3f %7.1f%% %14.0f %10d\n" name (w *. 1e3) (share *. 100.0)
           minor (calls t sub)))
    (shares t);
  Buffer.contents buf
