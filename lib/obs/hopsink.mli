(** Hop-stamp sink: lets the per-server dataplane report NVMe
    submit/complete instants for a (tenant, request) pair to a rack-level
    trace recorder without [lib/core] depending on [lib/rack_obs].

    A sink is either {!null} (inert: one immutable bool test per call) or
    armed via {!make}.  The hop indices are owned by [Rack_obs]: 2 = NVMe
    submit, 3 = NVMe complete (0/1/4 are stamped rack-side at pick, ingress
    issue and reply).  Stamps never influence simulation state. *)

open Reflex_engine

type t

(** The inert sink: {!stamp} is a no-op behind one immutable bool read. *)
val null : t

(** [make f] arms a sink whose every {!stamp} calls [f]. *)
val make : (tenant:int -> req:int64 -> hop:int -> now:Time.t -> unit) -> t

val enabled : t -> bool

(** [stamp t ~tenant ~req ~hop ~now] reports one hop instant.  Allocation
    free on the caller side; a no-op on {!null}. *)
val stamp : t -> tenant:int -> req:int64 -> hop:int -> now:Time.t -> unit
