(* Re-export umbrella for the observability forensics library. *)

module Flight = Flight
module Flight_dump = Flight_dump
module Hopsink = Hopsink
module Profiler = Profiler
