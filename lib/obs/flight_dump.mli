(** Renderers for a {!Flight.snapshot}: the JSON forensic debrief and the
    Chrome [trace_event] view of an alert-triggered flight dump.

    Both renderers are pure functions of the snapshot plus the optional
    trigger cross-references, and both format with fixed-width sim-time
    microseconds only — no wall clock, no host state — so a dump is
    byte-identical across same-seed reruns, serial vs. parallel fan-out,
    and heap vs. wheel backends. *)

open Reflex_engine

(** The alert edge that triggered the dump: [(rule, fired_at, detail)]. *)
type trigger = string * Time.t * string

(** Fault windows as exported by [Telemetry.fault_windows]:
    [(label, start, stop)] with [stop = None] while still active. *)
type fault_window = string * Time.t * Time.t option

(** [debrief ?alert ?faults snap] renders the JSON forensic debrief:
    trigger alert, fault windows overlapping the snapshot window (flagged
    [active_at_trigger] when they straddle the trigger instant), per-kind
    record counts, and every record in the window. *)
val debrief : ?alert:trigger -> ?faults:fault_window list -> Flight.snapshot -> string

(** [to_chrome_json ?alert ?faults snap] renders the snapshot as a Chrome
    [chrome://tracing] / Perfetto trace: token levels and queue depths as
    counter tracks, grants/throttles/alert edges as instants, fault windows
    as duration slices. *)
val to_chrome_json :
  ?alert:trigger -> ?faults:fault_window list -> Flight.snapshot -> string
