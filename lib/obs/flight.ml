open Reflex_engine

(* Always-on flight recorder.  The write path is the whole point: five
   array stores and a cursor bump into preallocated parallel arrays, no
   boxing, no branches beyond the single [on] check — cheap enough to run
   unconditionally under the scheduler round and the dataplane cycle.
   Everything stringy (fault labels, alert rule names) goes through the
   cold-path intern table so the hot record carries only ints/floats. *)

module Kind = struct
  type t =
    | Refill
    | Grant
    | Throttle
    | Deficit
    | Donate
    | Bucket_take
    | Bucket_reset
    | Idle_drain
    | Queue_depth
    | Demote
    | Fault_on
    | Fault_off
    | Alert_fire
    | Alert_resolve
    | Remediate
    | Mark
    | Migrate
    | Balance
    | Hop

  let count = 19

  let to_int = function
    | Refill -> 0
    | Grant -> 1
    | Throttle -> 2
    | Deficit -> 3
    | Donate -> 4
    | Bucket_take -> 5
    | Bucket_reset -> 6
    | Idle_drain -> 7
    | Queue_depth -> 8
    | Demote -> 9
    | Fault_on -> 10
    | Fault_off -> 11
    | Alert_fire -> 12
    | Alert_resolve -> 13
    | Remediate -> 14
    | Mark -> 15
    | Migrate -> 16
    | Balance -> 17
    | Hop -> 18

  let of_int = function
    | 0 -> Refill
    | 1 -> Grant
    | 2 -> Throttle
    | 3 -> Deficit
    | 4 -> Donate
    | 5 -> Bucket_take
    | 6 -> Bucket_reset
    | 7 -> Idle_drain
    | 8 -> Queue_depth
    | 9 -> Demote
    | 10 -> Fault_on
    | 11 -> Fault_off
    | 12 -> Alert_fire
    | 13 -> Alert_resolve
    | 14 -> Remediate
    | 15 -> Mark
    | 16 -> Migrate
    | 17 -> Balance
    | 18 -> Hop
    | n -> invalid_arg (Printf.sprintf "Flight.Kind.of_int: %d" n)

  let name = function
    | Refill -> "refill"
    | Grant -> "grant"
    | Throttle -> "throttle"
    | Deficit -> "deficit"
    | Donate -> "donate"
    | Bucket_take -> "bucket_take"
    | Bucket_reset -> "bucket_reset"
    | Idle_drain -> "idle_drain"
    | Queue_depth -> "queue_depth"
    | Demote -> "demote"
    | Fault_on -> "fault_on"
    | Fault_off -> "fault_off"
    | Alert_fire -> "alert_fire"
    | Alert_resolve -> "alert_resolve"
    | Remediate -> "remediate"
    | Mark -> "mark"
    | Migrate -> "migrate"
    | Balance -> "balance"
    | Hop -> "hop"

  let a_is_label = function
    | Fault_on | Fault_off | Alert_fire | Alert_resolve | Remediate | Mark -> true
    | Refill | Grant | Throttle | Deficit | Donate | Bucket_take | Bucket_reset
    | Idle_drain | Queue_depth | Demote | Migrate | Balance | Hop ->
        false
end

type t = {
  on : bool;
  capacity : int;
  times : int64 array;
  kinds : int array;
  aa : int array;
  bb : int array;
  vv : float array;
  (* Per-kind written counters (indexed by [Kind.to_int]): one extra array
     store on the hot path so {!snapshot} can report exactly which record
     kinds the wraparound window lost, not just a lump total. *)
  kind_written : int array;
  mutable next : int;
  mutable total : int;
  (* Cold-path label interning: ids are handed out in first-use order
     (deterministic); [names] is the id -> string view. *)
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_labels : int;
}

let make ~enabled ~capacity =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  {
    on = enabled;
    capacity;
    times = Array.make capacity 0L;
    kinds = Array.make capacity 0;
    aa = Array.make capacity 0;
    bb = Array.make capacity 0;
    vv = Array.make capacity 0.0;
    kind_written = Array.make Kind.count 0;
    next = 0;
    total = 0;
    ids = Hashtbl.create 16;
    names = Array.make 8 "";
    n_labels = 0;
  }

let disabled = make ~enabled:false ~capacity:1
let create ?(enabled = true) ?(capacity = 1 lsl 15) () = make ~enabled ~capacity
let enabled t = t.on [@@inline]
let capacity t = t.capacity
let total t = t.total
let retained t = if t.total < t.capacity then t.total else t.capacity
let dropped t = if t.total > t.capacity then t.total - t.capacity else 0

let record t ~now ~kind ~a ~b ~v =
  if t.on then begin
    let i = t.next in
    let k = Kind.to_int kind in
    t.times.(i) <- now;
    t.kinds.(i) <- k;
    t.aa.(i) <- a;
    t.bb.(i) <- b;
    t.vv.(i) <- v;
    t.kind_written.(k) <- t.kind_written.(k) + 1;
    let j = i + 1 in
    t.next <- (if j = t.capacity then 0 else j);
    t.total <- t.total + 1
  end
[@@inline]

(* Cold path: first use of a label copies it into the id table. *)
let intern t label =
  if not t.on then -1
  else
    match Hashtbl.find_opt t.ids label with
    | Some id -> id
    | None ->
        let id = t.n_labels in
        if id = Array.length t.names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit t.names 0 bigger 0 id;
          t.names <- bigger
        end;
        t.names.(id) <- label;
        t.n_labels <- id + 1;
        Hashtbl.add t.ids label id;
        id

let label t id = if id >= 0 && id < t.n_labels then t.names.(id) else "?"

let iter t f =
  let n = retained t in
  let start = if t.total <= t.capacity then 0 else t.next in
  for k = 0 to n - 1 do
    let i = start + k in
    let i = if i >= t.capacity then i - t.capacity else i in
    f ~time:t.times.(i) ~kind:(Kind.of_int t.kinds.(i)) ~a:t.aa.(i) ~b:t.bb.(i)
      ~v:t.vv.(i)
  done

type snapshot = {
  snap_now : Time.t;
  snap_window : Time.t;
  snap_total : int;
  snap_dropped : int;
  snap_kind_written : int array;
  snap_kind_retained : int array;
  s_times : Time.t array;
  s_kinds : int array;
  s_a : int array;
  s_b : int array;
  s_v : float array;
  s_labels : string array;
}

let snapshot t ~now ~window =
  let cutoff = Time.sub now window in
  (* First pass counts the matching tail; records are time-ordered, so the
     match set is a suffix of the oldest-first walk.  Boundary records
     (time exactly [now - window]) are included. *)
  let n = ref 0 in
  iter t (fun ~time ~kind:_ ~a:_ ~b:_ ~v:_ -> if Time.(time >= cutoff) then incr n);
  let n = !n in
  let s_times = Array.make (max n 1) 0L in
  let s_kinds = Array.make (max n 1) 0 in
  let s_a = Array.make (max n 1) 0 in
  let s_b = Array.make (max n 1) 0 in
  let s_v = Array.make (max n 1) 0.0 in
  let j = ref 0 in
  iter t (fun ~time ~kind ~a ~b ~v ->
      if Time.(time >= cutoff) then begin
        s_times.(!j) <- time;
        s_kinds.(!j) <- Kind.to_int kind;
        s_a.(!j) <- a;
        s_b.(!j) <- b;
        s_v.(!j) <- v;
        incr j
      end);
  (* Per-kind retention: cold full-ring scan (not just the window), so
     dropped_k = written_k - retained_k names exactly what wraparound
     overwrote for each record kind. *)
  let kind_retained = Array.make Kind.count 0 in
  iter t (fun ~time:_ ~kind ~a:_ ~b:_ ~v:_ ->
      let k = Kind.to_int kind in
      kind_retained.(k) <- kind_retained.(k) + 1);
  {
    snap_now = now;
    snap_window = window;
    snap_total = t.total;
    snap_dropped = dropped t;
    snap_kind_written = Array.copy t.kind_written;
    snap_kind_retained = kind_retained;
    s_times = (if n = 0 then [||] else s_times);
    s_kinds = (if n = 0 then [||] else s_kinds);
    s_a = (if n = 0 then [||] else s_a);
    s_b = (if n = 0 then [||] else s_b);
    s_v = (if n = 0 then [||] else s_v);
    s_labels = Array.sub t.names 0 t.n_labels;
  }

let snap_length s = Array.length s.s_times
let snap_kind_written s kind = s.snap_kind_written.(Kind.to_int kind)
let snap_kind_retained s kind = s.snap_kind_retained.(Kind.to_int kind)

let snap_kind_dropped s kind =
  let k = Kind.to_int kind in
  s.snap_kind_written.(k) - s.snap_kind_retained.(k)
