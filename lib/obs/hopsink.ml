open Reflex_engine

(* A hop-stamp sink: the thinnest possible bridge between the per-server
   dataplane (lib/core, which must not know about the rack) and a rack-level
   trace recorder (lib/rack_obs, which must not be a lib/core dependency).
   The dataplane calls [stamp] at its NVMe submit/complete instants; an
   armed sink correlates the (tenant, req) pair back to a rack trace slot.
   The [on] bool is immutable and read once per call site, mirroring the
   flight recorder's single-guard discipline. *)

type t = {
  on : bool;
  stamp : tenant:int -> req:int64 -> hop:int -> now:Time.t -> unit;
}

let null = { on = false; stamp = (fun ~tenant:_ ~req:_ ~hop:_ ~now:_ -> ()) }
let make stamp = { on = true; stamp }
let enabled t = t.on [@@inline]

let stamp t ~tenant ~req ~hop ~now =
  if t.on then t.stamp ~tenant ~req ~hop ~now
[@@inline]
