(** Continuous cost profiler: per-subsystem wall-time and minor-allocation
    attribution for the simulator's own host cost.

    This module deliberately breaks the "sim time only" rule that governs
    everything else in [lib/]: its whole purpose is to measure how much
    {e host} wall time and minor-heap allocation each subsystem burns (the
    question the ROADMAP's 100K-tenant item needs answered).  The numbers
    are therefore nondeterministic by design and must never feed back into
    simulation state or into any byte-identity-checked report — they are
    exported only through gauges, Prometheus, and the bench ["profile"]
    JSON section.  The [det/clock] waiver for [lib/obs/] in [lint.manifest]
    records this contract.

    Scopes are coarse and non-reentrant per subsystem: [enter]/[leave]
    pairs wrap the scheduler round ([Qos]), NVMe submission ([Flash]), TCP
    sends ([Net]), the metrics sampler ([Telemetry]), the monitor tick
    ([Monitor]), and — from the harness side — the whole [Sim.run] loop
    ([Engine]).  Nested scopes accumulate into their own buckets, so the
    [Engine] bucket encloses the rest; {!shares} reports Engine as the
    {e self} time left after subtracting the nested buckets. *)

module Subsystem : sig
  type t = Engine | Qos | Flash | Net | Telemetry | Monitor | Other

  val count : int
  val to_int : t -> int
  val name : t -> string
  val all : t list
end

type t

(** Shared never-enabled instance: [enter]/[leave] are no-ops. *)
val disabled : t

val create : unit -> t
val enabled : t -> bool

(** Open a scope.  One clock read and one minor-words read; no allocation
    beyond the boxed float [Unix.gettimeofday] returns. *)
val enter : t -> Subsystem.t -> unit

(** Close the matching scope and accumulate. *)
val leave : t -> Subsystem.t -> unit

(** Accumulated wall seconds / minor words / scope count per subsystem. *)
val wall_s : t -> Subsystem.t -> float

val minor_words : t -> Subsystem.t -> float
val calls : t -> Subsystem.t -> int

(** [(name, self_wall_s, wall_share, minor_words)] rows, one per subsystem
    in declaration order, with [Engine] reduced to its self time (total
    minus the nested subsystem buckets) and shares normalised over the
    total measured wall time. *)
val shares : t -> (string * float * float * float) list

(** Human-readable table of {!shares} plus scope counts. *)
val report : t -> string
