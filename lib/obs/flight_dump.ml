open Reflex_engine

(* Renderers for an alert-triggered flight dump.  Everything here is a pure
   function of the snapshot plus the trigger cross-references; timestamps
   are sim-time microseconds formatted with a fixed width, so dumps are
   byte-identical wherever the same seed ran. *)

type trigger = string * Time.t * string
type fault_window = string * Time.t * Time.t option

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let us t = Printf.sprintf "%.3f" (Time.to_float_us t)

let snap_label (s : Flight.snapshot) id =
  if id >= 0 && id < Array.length s.Flight.s_labels then s.Flight.s_labels.(id) else "?"

let cutoff (s : Flight.snapshot) = Time.sub s.Flight.snap_now s.Flight.snap_window

(* Fault windows overlapping the snapshot window, each flagged with whether
   it straddles the trigger instant (the alert edge when given, else the
   snapshot instant). *)
let relevant_faults ?alert ~(snap : Flight.snapshot) faults =
  let t_trigger = match alert with Some (_, at, _) -> at | None -> snap.Flight.snap_now in
  let lo = cutoff snap in
  List.filter_map
    (fun (label, t0, t1) ->
      let overlaps =
        Time.(t0 <= snap.Flight.snap_now)
        && (match t1 with None -> true | Some t1 -> Time.(t1 >= lo))
      in
      if not overlaps then None
      else
        let active =
          Time.(t0 <= t_trigger)
          && (match t1 with None -> true | Some t1 -> Time.(t1 >= t_trigger))
        in
        Some (label, t0, t1, active))
    faults

(* ------------------------------------------------------------------ *)
(* JSON forensic debrief                                              *)
(* ------------------------------------------------------------------ *)

let debrief ?alert ?(faults = []) (snap : Flight.snapshot) =
  let buf = Buffer.create 4096 in
  let n = Flight.snap_length snap in
  Buffer.add_string buf "{\"flight_dump\":{";
  Buffer.add_string buf (Printf.sprintf "\"snapshot_at_us\":%s," (us snap.Flight.snap_now));
  Buffer.add_string buf (Printf.sprintf "\"window_us\":%s," (us snap.Flight.snap_window));
  Buffer.add_string buf (Printf.sprintf "\"records_in_window\":%d," n);
  Buffer.add_string buf (Printf.sprintf "\"ring_total\":%d," snap.Flight.snap_total);
  Buffer.add_string buf (Printf.sprintf "\"ring_dropped\":%d," snap.Flight.snap_dropped);
  (* Trigger cross-reference: which alert fired and what it said. *)
  Buffer.add_string buf "\"trigger\":";
  (match alert with
  | None -> Buffer.add_string buf "null"
  | Some (rule, at, detail) ->
      Buffer.add_string buf "{\"alert\":";
      add_json_string buf rule;
      Buffer.add_string buf (Printf.sprintf ",\"at_us\":%s,\"detail\":" (us at));
      add_json_string buf detail;
      Buffer.add_char buf '}');
  Buffer.add_string buf ",\n\"fault_windows\":[";
  List.iteri
    (fun i (label, t0, t1, active) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n {\"label\":";
      add_json_string buf label;
      Buffer.add_string buf (Printf.sprintf ",\"start_us\":%s,\"end_us\":" (us t0));
      (match t1 with
      | None -> Buffer.add_string buf "null"
      | Some t1 -> Buffer.add_string buf (us t1));
      Buffer.add_string buf (Printf.sprintf ",\"active_at_trigger\":%b}" active))
    (relevant_faults ?alert ~snap faults);
  Buffer.add_string buf "],\n\"counts\":{";
  let counts = Array.make Flight.Kind.count 0 in
  Array.iter (fun k -> counts.(k) <- counts.(k) + 1) snap.Flight.s_kinds;
  let first = ref true in
  Array.iteri
    (fun k c ->
      if c > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        add_json_string buf (Flight.Kind.name (Flight.Kind.of_int k));
        Buffer.add_string buf (Printf.sprintf ":%d" c)
      end)
    counts;
  Buffer.add_string buf "},\n\"records\":[";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ',';
    let kind = Flight.Kind.of_int snap.Flight.s_kinds.(i) in
    Buffer.add_string buf "\n {\"t_us\":";
    Buffer.add_string buf (us snap.Flight.s_times.(i));
    Buffer.add_string buf ",\"kind\":";
    add_json_string buf (Flight.Kind.name kind);
    Buffer.add_string buf
      (Printf.sprintf ",\"a\":%d,\"b\":%d,\"v\":%g" snap.Flight.s_a.(i) snap.Flight.s_b.(i)
         snap.Flight.s_v.(i));
    if Flight.Kind.a_is_label kind then begin
      Buffer.add_string buf ",\"label\":";
      add_json_string buf (snap_label snap snap.Flight.s_a.(i))
    end;
    Buffer.add_char buf '}'
  done;
  Buffer.add_string buf "]}}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event view                                            *)
(* ------------------------------------------------------------------ *)

(* Layout: pid 0 carries the forensic tracks — fault-window slices and
   alert instants on tid 0 (matching Trace_export's convention), per-thread
   queue-depth counters, per-tenant token counters. *)
let to_chrome_json ?alert ?(faults = []) (snap : Flight.snapshot) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let sep = ref "" in
  let emit s =
    Buffer.add_string buf !sep;
    sep := ",\n";
    Buffer.add_string buf s
  in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"flight recorder\"}}";
  (* Fault windows as duration slices; still-open windows close at the
     snapshot instant. *)
  List.iter
    (fun (label, t0, t1, active) ->
      let t1 = match t1 with Some t -> t | None -> snap.Flight.snap_now in
      let b = Buffer.create 128 in
      Buffer.add_string b "{\"name\":";
      add_json_string b label;
      Buffer.add_string b
        (Printf.sprintf
           ",\"cat\":\"fault\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":0,\"args\":{\"active_at_trigger\":%b}}"
           (us t0)
           (us (Time.diff t1 t0))
           active);
      emit (Buffer.contents b))
    (relevant_faults ?alert ~snap faults);
  (* The triggering alert edge as a global instant. *)
  (match alert with
  | None -> ()
  | Some (rule, at, detail) ->
      let b = Buffer.create 128 in
      Buffer.add_string b "{\"name\":";
      add_json_string b ("ALERT " ^ rule);
      Buffer.add_string b
        (Printf.sprintf ",\"cat\":\"alert\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%s,\"pid\":0,\"tid\":0,\"args\":{\"detail\":"
           (us at));
      add_json_string b detail;
      Buffer.add_string b "}}";
      emit (Buffer.contents b));
  let n = Flight.snap_length snap in
  for i = 0 to n - 1 do
    let kind = Flight.Kind.of_int snap.Flight.s_kinds.(i) in
    let t = us snap.Flight.s_times.(i) in
    let a = snap.Flight.s_a.(i) and bb = snap.Flight.s_b.(i) and v = snap.Flight.s_v.(i) in
    let b = Buffer.create 128 in
    (match kind with
    | Flight.Kind.Queue_depth ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"rx_depth/thread%d\",\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"args\":{\"depth\":%g,\"outstanding\":%d}}"
             a t v bb)
    | Flight.Kind.Grant ->
        (* Token level after the grant as a per-tenant counter. *)
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"tokens/t%d\",\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"args\":{\"tokens\":%g}}" a
             t v)
    | Flight.Kind.Refill ->
        (* Per-round refill amount as a per-tenant counter track. *)
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"refill/t%d\",\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"args\":{\"grant\":%g}}" a
             t v)
    | _ ->
        let name =
          if Flight.Kind.a_is_label kind then
            Flight.Kind.name kind ^ " " ^ snap_label snap a
          else Flight.Kind.name kind
        in
        Buffer.add_string b "{\"name\":";
        add_json_string b name;
        Buffer.add_string b
          (Printf.sprintf
             ",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":0,\"tid\":%d,\"args\":{\"a\":%d,\"b\":%d,\"v\":%g}}"
             t
             (match kind with
             | Flight.Kind.Throttle | Flight.Kind.Deficit | Flight.Kind.Donate
             | Flight.Kind.Bucket_take | Flight.Kind.Idle_drain | Flight.Kind.Bucket_reset ->
                 bb
             | _ -> 0)
             a bb v));
    emit (Buffer.contents b)
  done;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
