(** Always-on flight recorder: a fixed-size, allocation-free binary ring of
    compact dataplane records.

    Unlike the span/decision rings in [lib/telemetry] — which exist only when
    telemetry is armed — the flight recorder is designed to stay enabled in
    every run: one record is five array stores and a cursor bump, cheap
    enough to write unconditionally from the scheduler round and the
    dataplane cycle.  The ring holds the most recent [capacity] records;
    wraparound silently overwrites the oldest, so at any instant the ring is
    a sliding forensic window over the last few hundred microseconds of
    dataplane behaviour.  {!snapshot} freezes the tail of that window (e.g.
    when a [Monitor.Alerts] alert fires) for rendering by {!Flight_dump}.

    Records never influence simulation state and carry only sim time, so a
    snapshot is byte-for-byte deterministic across same-seed reruns, serial
    vs. domain-parallel fan-out, and heap vs. wheel event backends.

    The shared {!disabled} instance is never mutated and is safe to share
    across domains; every record operation on it is a no-op behind one
    immutable bool read. *)

open Reflex_engine

(** Compact record kinds.  The [a]/[b]/[v] payload fields are interpreted
    per kind; kinds that reference a string (fault labels, alert rules)
    carry an id from the cold-path {!intern} table in [a] (and [b] for
    [Remediate]'s outcome). *)
module Kind : sig
  type t =
    | Refill  (** per-round token refill: a=tenant, b=thread, v=tokens added *)
    | Grant  (** requests released: a=tenant, b=count, v=tokens after *)
    | Throttle  (** demand left queued: a=tenant, b=thread, v=unmet demand *)
    | Deficit  (** LC balance under NEG_LIMIT: a=tenant, b=thread, v=balance *)
    | Donate  (** surplus to global bucket: a=tenant, b=thread, v=amount *)
    | Bucket_take  (** BE claim from global bucket: a=tenant, b=thread, v=amount *)
    | Bucket_reset  (** round marked bucket reset: b=thread, v=level *)
    | Idle_drain  (** idle BE balance returned: a=tenant, b=thread, v=amount *)
    | Queue_depth  (** dataplane cycle: a=thread, b=outstanding, v=rx depth *)
    | Demote  (** LC tenant demoted to BE: a=tenant *)
    | Fault_on  (** fault window opened: a=label id *)
    | Fault_off  (** fault window closed: a=label id *)
    | Alert_fire  (** alert edge up: a=rule label id, b=severity *)
    | Alert_resolve  (** alert edge down: a=rule label id, b=severity *)
    | Remediate  (** remediation applied: a=rule label id, b=outcome label id *)
    | Mark  (** manual/CLI mark: a=label id *)
    | Migrate  (** rack tenant migration started: a=tenant, b=dst server, v=src server *)
    | Balance
        (** rack balancing decision: a=chosen server, b=policy index, v=sampled depth *)
    | Hop
        (** rack trace hop stamp: a=rack request id, b=(tenant lsl 3) lor hop
            index (0=pick 1=ingress 2=submit 3=complete 4=reply), v=per-hop
            payload (see [Rack_obs]) *)

  val count : int
  val to_int : t -> int
  val of_int : int -> t
  val name : t -> string

  (** True for kinds whose [a] field is an interned label id. *)
  val a_is_label : t -> bool
end

type t

(** The shared always-disabled recorder: every operation is a no-op. *)
val disabled : t

(** [create ()] makes a recorder.  [enabled:false] builds a real but inert
    instance (distinct from {!disabled}), used to prove that a disarmed
    recorder perturbs nothing.  [capacity] is the ring size in records
    (default [1 lsl 15]). *)
val create : ?enabled:bool -> ?capacity:int -> unit -> t

val enabled : t -> bool
val capacity : t -> int

(** Records ever written (including overwritten ones). *)
val total : t -> int

(** Records currently retained ([<= capacity]). *)
val retained : t -> int

(** Records lost to wraparound. *)
val dropped : t -> int

(** [record t ~now ~kind ~a ~b ~v] writes one record.  Allocation-free and
    branch-cheap; a no-op when disabled. *)
val record : t -> now:Time.t -> kind:Kind.t -> a:int -> b:int -> v:float -> unit

(** [intern t label] returns a stable small id for [label], creating one on
    first use.  Cold path (fault arming, alert wiring); ids are assigned in
    first-use order, which is deterministic. Returns [-1] when disabled. *)
val intern : t -> string -> int

(** [label t id] resolves an interned id ("?" when unknown). *)
val label : t -> int -> string

(** Oldest-first iteration over the retained window. *)
val iter :
  t -> (time:Time.t -> kind:Kind.t -> a:int -> b:int -> v:float -> unit) -> unit

(** A frozen copy of the ring tail: every retained record with
    [time >= snap_now - snap_window] (boundary inclusive), oldest first,
    plus a copy of the intern table. *)
type snapshot = private {
  snap_now : Time.t;
  snap_window : Time.t;
  snap_total : int;  (** records ever written when the snapshot was taken *)
  snap_dropped : int;  (** records already lost to wraparound at that point *)
  snap_kind_written : int array;
      (** per-kind records ever written, indexed by [Kind.to_int] *)
  snap_kind_retained : int array;
      (** per-kind records still in the ring at snapshot time (full ring, not
          just the window), indexed by [Kind.to_int] *)
  s_times : Time.t array;
  s_kinds : int array;
  s_a : int array;
  s_b : int array;
  s_v : float array;
  s_labels : string array;
}

(** [snapshot t ~now ~window] freezes the last [window] of sim time.  Cold
    path: allocates the copy.  An empty snapshot when disabled. *)
val snapshot : t -> now:Time.t -> window:Time.t -> snapshot

val snap_length : snapshot -> int

(** Per-kind accessors over the snapshot accounting arrays:
    [snap_kind_dropped s k = snap_kind_written s k - snap_kind_retained s k]
    is exactly what wraparound overwrote for that kind. *)
val snap_kind_written : snapshot -> Kind.t -> int

val snap_kind_retained : snapshot -> Kind.t -> int
val snap_kind_dropped : snapshot -> Kind.t -> int
