open Reflex_engine
open Reflex_stats
module Flight = Reflex_obs.Flight
module Profiler = Reflex_obs.Profiler

(* The observability core.  One instance per simulated world.  The single
   design rule: when [enabled] is false (the shared {!disabled} value),
   no record operation mutates anything and no record site allocates —
   every hot-path hook in the dataplane is guarded by a read of the
   immutable [enabled] bit.  The enabled path may allocate freely. *)

module Stage = struct
  type t =
    | Client_submit
    | Server_rx
    | Sched_enqueue
    | Granted
    | Nvme_submit
    | Nvme_complete
    | Tx_resp
    | Client_complete

  let count = 8

  let to_int = function
    | Client_submit -> 0
    | Server_rx -> 1
    | Sched_enqueue -> 2
    | Granted -> 3
    | Nvme_submit -> 4
    | Nvme_complete -> 5
    | Tx_resp -> 6
    | Client_complete -> 7

  let of_int = function
    | 0 -> Client_submit
    | 1 -> Server_rx
    | 2 -> Sched_enqueue
    | 3 -> Granted
    | 4 -> Nvme_submit
    | 5 -> Nvme_complete
    | 6 -> Tx_resp
    | 7 -> Client_complete
    | n -> invalid_arg (Printf.sprintf "Stage.of_int: %d" n)

  let name = function
    | Client_submit -> "client_submit"
    | Server_rx -> "server_rx"
    | Sched_enqueue -> "sched_enqueue"
    | Granted -> "token_grant"
    | Nvme_submit -> "nvme_submit"
    | Nvme_complete -> "nvme_complete"
    | Tx_resp -> "tx_resp"
    | Client_complete -> "client_complete"

  (* Name of the latency component that ends at stage [i+1]; the seven
     components tile [client_submit, client_complete] exactly, so their
     sum telescopes to the end-to-end latency. *)
  let component_names =
    [| "net_in"; "parse_enqueue"; "sched_wait"; "sq_submit"; "nvme"; "cq_tx"; "net_out" |]

  let component_count = Array.length component_names
end

(* ------------------------------------------------------------------ *)
(* Fixed-capacity span ring                                           *)
(* ------------------------------------------------------------------ *)

module Span_ring = struct
  (* Parallel arrays (no per-record boxing); wraparound overwrites the
     oldest events, keeping the newest [capacity] spans. *)
  type t = {
    capacity : int;
    times : int64 array;
    tenants : int array;
    req_ids : int64 array;
    stages : int array;
    mutable next : int;
    mutable total : int;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Span_ring.create: capacity < 1";
    {
      capacity;
      times = Array.make capacity 0L;
      tenants = Array.make capacity 0;
      req_ids = Array.make capacity 0L;
      stages = Array.make capacity 0;
      next = 0;
      total = 0;
    }

  let record t ~time ~tenant ~req_id ~stage =
    let i = t.next in
    t.times.(i) <- time;
    t.tenants.(i) <- tenant;
    t.req_ids.(i) <- req_id;
    t.stages.(i) <- stage;
    let j = i + 1 in
    t.next <- (if j = t.capacity then 0 else j);
    t.total <- t.total + 1

  let length t = if t.total < t.capacity then t.total else t.capacity
  let total t = t.total
  let dropped t = if t.total > t.capacity then t.total - t.capacity else 0

  (* Oldest-first iteration over the retained window. *)
  let iter t f =
    let n = length t in
    let start = if t.total <= t.capacity then 0 else t.next in
    for k = 0 to n - 1 do
      let i = start + k in
      let i = if i >= t.capacity then i - t.capacity else i in
      f ~time:t.times.(i) ~tenant:t.tenants.(i) ~req_id:t.req_ids.(i) ~stage:t.stages.(i)
    done
end

(* ------------------------------------------------------------------ *)
(* Scheduler decision log                                             *)
(* ------------------------------------------------------------------ *)

module Decision = struct
  type kind =
    | Throttled (* LC tenant left demand queued: token balance at floor *)
    | Deficit_limit (* LC balance below NEG_LIMIT: control plane notified *)
    | Donated (* LC balance above POS_LIMIT donated to the global bucket *)
    | Be_bucket_take (* BE tenant claimed tokens from the global bucket *)
    | Be_starved (* BE tenant left demand queued: could not fully pay *)
    | Be_idle_drain (* idle BE tenant's balance returned to the bucket *)
    | Bucket_reset (* this thread's round marked the global-bucket reset *)

  let to_int = function
    | Throttled -> 0
    | Deficit_limit -> 1
    | Donated -> 2
    | Be_bucket_take -> 3
    | Be_starved -> 4
    | Be_idle_drain -> 5
    | Bucket_reset -> 6

  let of_int = function
    | 0 -> Throttled
    | 1 -> Deficit_limit
    | 2 -> Donated
    | 3 -> Be_bucket_take
    | 4 -> Be_starved
    | 5 -> Be_idle_drain
    | 6 -> Bucket_reset
    | n -> invalid_arg (Printf.sprintf "Decision.of_int: %d" n)

  let name = function
    | Throttled -> "throttled"
    | Deficit_limit -> "deficit_limit"
    | Donated -> "donated"
    | Be_bucket_take -> "bucket_take"
    | Be_starved -> "be_starved"
    | Be_idle_drain -> "idle_drain"
    | Bucket_reset -> "bucket_reset"
end

module Decision_ring = struct
  type t = {
    capacity : int;
    times : int64 array;
    threads : int array;
    tenants : int array;
    kinds : int array;
    amounts : float array;
    tokens_after : float array;
    mutable next : int;
    mutable total : int;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Decision_ring.create: capacity < 1";
    {
      capacity;
      times = Array.make capacity 0L;
      threads = Array.make capacity 0;
      tenants = Array.make capacity 0;
      kinds = Array.make capacity 0;
      amounts = Array.make capacity 0.0;
      tokens_after = Array.make capacity 0.0;
      next = 0;
      total = 0;
    }

  let record t ~time ~thread ~tenant ~kind ~amount ~tokens_after =
    let i = t.next in
    t.times.(i) <- time;
    t.threads.(i) <- thread;
    t.tenants.(i) <- tenant;
    t.kinds.(i) <- kind;
    t.amounts.(i) <- amount;
    t.tokens_after.(i) <- tokens_after;
    let j = i + 1 in
    t.next <- (if j = t.capacity then 0 else j);
    t.total <- t.total + 1

  let length t = if t.total < t.capacity then t.total else t.capacity
  let total t = t.total

  let iter t f =
    let n = length t in
    let start = if t.total <= t.capacity then 0 else t.next in
    for k = 0 to n - 1 do
      let i = start + k in
      let i = if i >= t.capacity then i - t.capacity else i in
      f ~time:t.times.(i) ~thread:t.threads.(i) ~tenant:t.tenants.(i) ~kind:t.kinds.(i)
        ~amount:t.amounts.(i) ~tokens_after:t.tokens_after.(i)
    done
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

type counter = { mutable value : float }

type metric =
  | Counter of counter
  | Gauge of (unit -> float)
  | Hist of Hdr_histogram.t

type sample = { s_time : Time.t; s_values : (string * float) array }

type slo_target = { st_latency_critical : bool; st_latency_us : int }

type fault_event = { f_time : Time.t; f_label : string; f_active : bool }

(* Causal edges between spans: [Follows_from] chains retry attempts of one
   logical operation (distinct req_ids), [Child_of] hangs a derived span
   under its parent.  Links are rare (retries, remediations), so a list is
   fine — the hot request path never touches them. *)
type link_kind = Follows_from | Child_of

type link = {
  l_time : Time.t;
  l_kind : link_kind;
  l_src : int * int64; (* (tenant, req_id) *)
  l_dst : int * int64;
}

type t = {
  enabled : bool;
  spans : Span_ring.t;
  decisions : Decision_ring.t;
  metrics : (string, metric) Hashtbl.t;
  (* Sampler datapath: a name-sorted snapshot of the registry plus a
     preallocated (tick x metric) value matrix.  A sampler tick writes
     one float per metric into the matrix — no per-tick array, tuples or
     sort.  When the registry changes between ticks ([reg_dirty]), rows
     recorded so far are materialized into [frozen_rev] under the old
     layout and the matrix restarts with the new stride.  [sample]
     records are only built on demand (see [samples]). *)
  mutable reg_dirty : bool;
  mutable reg_names : string array; (* sorted metric names *)
  mutable reg_metrics : metric array; (* parallel to reg_names *)
  mutable samp_times : Time.t array; (* one per retained tick *)
  mutable samp_vals : float array; (* samp_len x stride, row-major *)
  mutable samp_len : int;
  mutable frozen_rev : sample list; (* ticks from earlier registry layouts *)
  mutable sample_count : int;
  mutable sampler_running : bool;
  tenant_slos : (int, slo_target) Hashtbl.t;
  (* Per-tenant latency histograms, indexed by tenant id; [dummy_hist]
     marks unset slots.  The per-request record path is a bounds check
     and an array load — the former Hashtbl lookup allocated an option
     per request. *)
  mutable tlat : Hdr_histogram.t array;
  mutable faults_rev : fault_event list; (* injected-fault marks, newest first *)
  (* lib/obs attachments: the always-on flight recorder rides on the
     telemetry instance so every layer that already threads a [t] can
     reach it; both default to the shared disabled instances. *)
  mutable flight : Flight.t;
  mutable profiler : Profiler.t;
  mutable links_rev : link list; (* causal span links, newest first *)
  mutable remediations_rev : (Time.t * string * string) list; (* (time, rule, outcome) *)
}

(* Shared sinks handed out by the disabled instance; guarded record
   sites never write to them, so sharing across domains is safe. *)
let dummy_counter = { value = 0.0 }
let dummy_hist = Hdr_histogram.create ()

let make ~enabled ~span_capacity ~decision_capacity =
  {
    enabled;
    spans = Span_ring.create span_capacity;
    decisions = Decision_ring.create decision_capacity;
    metrics = Hashtbl.create 64;
    reg_dirty = false;
    reg_names = [||];
    reg_metrics = [||];
    samp_times = [||];
    samp_vals = [||];
    samp_len = 0;
    frozen_rev = [];
    sample_count = 0;
    sampler_running = false;
    tenant_slos = Hashtbl.create 16;
    tlat = [||];
    faults_rev = [];
    flight = Flight.disabled;
    profiler = Profiler.disabled;
    links_rev = [];
    remediations_rev = [];
  }

let disabled = make ~enabled:false ~span_capacity:1 ~decision_capacity:1

let create ?(span_capacity = 1 lsl 16) ?(decision_capacity = 4096) () =
  make ~enabled:true ~span_capacity ~decision_capacity

let enabled t = t.enabled [@@inline]

(* ---------------- lib/obs attachments ---------------- *)

let flight t = t.flight [@@inline]

let set_flight t fl =
  if not t.enabled then invalid_arg "Telemetry.set_flight: disabled instance";
  t.flight <- fl

let profiler t = t.profiler [@@inline]

(* ---------------- spans ---------------- *)

let span t ~now ~tenant ~req_id stage =
  if t.enabled then
    Span_ring.record t.spans ~time:now ~tenant ~req_id ~stage:(Stage.to_int stage)

let span_count t = Span_ring.length t.spans
let spans_recorded t = Span_ring.total t.spans
let spans_dropped t = Span_ring.dropped t.spans

let iter_spans t f =
  Span_ring.iter t.spans (fun ~time ~tenant ~req_id ~stage ->
      f ~time ~tenant ~req_id ~stage:(Stage.of_int stage))

(* ---------------- decisions ---------------- *)

let decision t ~now ~thread ~tenant kind ~amount ~tokens_after =
  if t.enabled then
    Decision_ring.record t.decisions ~time:now ~thread ~tenant
      ~kind:(Decision.to_int kind) ~amount ~tokens_after

let decision_count t = Decision_ring.length t.decisions
let decisions_recorded t = Decision_ring.total t.decisions

let iter_decisions t f =
  Decision_ring.iter t.decisions (fun ~time ~thread ~tenant ~kind ~amount ~tokens_after ->
      f ~time ~thread ~tenant ~kind:(Decision.of_int kind) ~amount ~tokens_after)

(* ---------------- metrics ---------------- *)

let counter t name =
  if not t.enabled then dummy_counter
  else
    match Hashtbl.find_opt t.metrics name with
    | Some (Counter c) -> c
    | Some _ -> invalid_arg ("Telemetry.counter: " ^ name ^ " registered as another kind")
    | None ->
      let c = { value = 0.0 } in
      Hashtbl.replace t.metrics name (Counter c);
      t.reg_dirty <- true;
      c

let add c x = c.value <- c.value +. x
let incr c = add c 1.0
let counter_value c = c.value

let register_gauge t name f =
  if t.enabled then begin
    Hashtbl.replace t.metrics name (Gauge f);
    t.reg_dirty <- true
  end

let unregister t name =
  if t.enabled && Hashtbl.mem t.metrics name then begin
    Hashtbl.remove t.metrics name;
    t.reg_dirty <- true
  end

(* Attaching a profiler also publishes its accumulators as gauges, so the
   per-subsystem cost shares flow through the regular sampler into the
   Tsdb/Prometheus exporters with no extra plumbing.  The values are host
   wall time — nondeterministic by design (see Profiler's contract); they
   are only present when a profiler is explicitly attached. *)
let set_profiler t p =
  if not t.enabled then invalid_arg "Telemetry.set_profiler: disabled instance";
  t.profiler <- p;
  if Profiler.enabled p then
    List.iter
      (fun sub ->
        let n = Profiler.Subsystem.name sub in
        register_gauge t
          (Printf.sprintf "obs/prof/%s/wall_ms" n)
          (fun () -> Profiler.wall_s p sub *. 1e3);
        register_gauge t
          (Printf.sprintf "obs/prof/%s/minor_words" n)
          (fun () -> Profiler.minor_words p sub))
      Profiler.Subsystem.all

let histogram t name =
  if not t.enabled then dummy_hist
  else
    match Hashtbl.find_opt t.metrics name with
    | Some (Hist h) -> h
    | Some _ -> invalid_arg ("Telemetry.histogram: " ^ name ^ " registered as another kind")
    | None ->
      let h = Hdr_histogram.create () in
      Hashtbl.replace t.metrics name (Hist h);
      t.reg_dirty <- true;
      h

let metric_value = function
  | Counter c -> c.value
  | Gauge g -> g ()
  | Hist h -> float_of_int (Hdr_histogram.count h)

let metric_names t =
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.metrics [] in
  List.sort compare names

(* Typed read-only view of one registered metric (exporters need the
   kind, not just the scalar [metric_value] projection). *)
let find_metric t name =
  match Hashtbl.find_opt t.metrics name with
  | None -> None
  | Some (Counter c) -> Some (`Counter c.value)
  | Some (Gauge g) -> Some (`Gauge (g ()))
  | Some (Hist h) -> Some (`Hist h)

(* ---------------- tenant dimensions ---------------- *)

let set_tenant_slo t ~tenant ~latency_critical ~latency_us =
  if t.enabled then
    Hashtbl.replace t.tenant_slos tenant
      { st_latency_critical = latency_critical; st_latency_us = latency_us }

let tenant_slo t ~tenant =
  match Hashtbl.find_opt t.tenant_slos tenant with
  | Some { st_latency_critical; st_latency_us } -> Some (st_latency_critical, st_latency_us)
  | None -> None

let tenants_with_slo t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_slos [])

(* Cold path: grow the tenant-histogram array to cover [tenant],
   filling fresh slots with the [dummy_hist] sentinel. *)
let grow_tlat t tenant =
  let cap = Array.length t.tlat in
  let ncap = ref (if cap = 0 then 16 else cap * 2) in
  while !ncap <= tenant do
    ncap := !ncap * 2
  done;
  let arr = Array.make !ncap dummy_hist in
  Array.blit t.tlat 0 arr 0 cap;
  t.tlat <- arr

let rec tenant_latency_hist t ~tenant =
  if not t.enabled then dummy_hist
  else if tenant < Array.length t.tlat then begin
    let h = t.tlat.(tenant) in
    if h != dummy_hist then h
    else begin
      let h = Hdr_histogram.create () in
      t.tlat.(tenant) <- h;
      h
    end
  end
  else begin
    grow_tlat t tenant;
    tenant_latency_hist t ~tenant
  end

let record_tenant_latency t ~tenant lat =
  if t.enabled then Hdr_histogram.record (tenant_latency_hist t ~tenant) lat

(* ---------------- causal span links ---------------- *)

let link t ~now ~kind ~src_tenant ~src_req ~dst_tenant ~dst_req =
  if t.enabled then
    t.links_rev <-
      { l_time = now; l_kind = kind; l_src = (src_tenant, src_req); l_dst = (dst_tenant, dst_req) }
      :: t.links_rev

let links t = List.rev_map (fun l -> (l.l_time, l.l_kind, l.l_src, l.l_dst)) t.links_rev

let remediation_mark t ~now ~rule ~outcome =
  if t.enabled then begin
    t.remediations_rev <- (now, rule, outcome) :: t.remediations_rev;
    if Flight.enabled t.flight then
      Flight.record t.flight ~now ~kind:Flight.Kind.Remediate
        ~a:(Flight.intern t.flight rule) ~b:(Flight.intern t.flight outcome) ~v:0.0
  end

let remediation_log t = List.rev t.remediations_rev

(* ---------------- fault marks ---------------- *)

let fault_mark t ~now ~label ~active =
  if t.enabled then begin
    t.faults_rev <- { f_time = now; f_label = label; f_active = active } :: t.faults_rev;
    (* Mirror the transition into the flight ring so a forensic dump can
       frame the fault window without consulting telemetry. *)
    if Flight.enabled t.flight then
      Flight.record t.flight ~now
        ~kind:(if active then Flight.Kind.Fault_on else Flight.Kind.Fault_off)
        ~a:(Flight.intern t.flight label) ~b:0 ~v:0.0
  end

let fault_log t =
  List.rev_map (fun e -> (e.f_time, e.f_label, e.f_active)) t.faults_rev

(* Pair start/stop marks into windows, oldest-first.  A start without a
   matching stop yields an open window ([None] end); a stop without a
   start is ignored (defensive — the injector always emits pairs). *)
let fault_windows t =
  let events = fault_log t in
  let open_w : (string * Time.t) list ref = ref [] in
  let closed = ref [] in
  List.iter
    (fun (time, label, active) ->
      if active then open_w := !open_w @ [ (label, time) ]
      else
        let rec take acc = function
          | [] -> None
          | (l, t0) :: rest when l = label -> Some ((l, t0), List.rev_append acc rest)
          | x :: rest -> take (x :: acc) rest
        in
        match take [] !open_w with
        | Some ((l, t0), rest) ->
          open_w := rest;
          closed := (l, t0, Some time) :: !closed
        | None -> ())
    events;
  let still_open = List.map (fun (l, t0) -> (l, t0, None)) !open_w in
  List.sort
    (fun (_, a, _) (_, b, _) -> Time.compare a b)
    (List.rev_append !closed still_open)

let faults_report t =
  let ws = fault_windows t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== injected faults (%d windows) ==\n" (List.length ws));
  List.iter
    (fun (label, t0, t1) ->
      match t1 with
      | Some t1 ->
        Buffer.add_string buf
          (Printf.sprintf "%10.3fms .. %10.3fms  %s\n" (Time.to_float_ms t0)
             (Time.to_float_ms t1) label)
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "%10.3fms .. (open)       %s\n" (Time.to_float_ms t0) label))
    ws;
  Buffer.contents buf

(* ---------------- sampling ---------------- *)

(* Build the [sample] record for matrix row [k] under the current
   registry layout.  Report-time only. *)
let row_sample t k =
  let stride = Array.length t.reg_names in
  {
    s_time = t.samp_times.(k);
    s_values = Array.init stride (fun i -> (t.reg_names.(i), t.samp_vals.((k * stride) + i)));
  }

(* Cold path: the registry changed since the last tick.  Materialize the
   rows recorded so far under the old layout, then rebuild the sorted
   name/metric snapshot and restart the matrix with the new stride. *)
let refresh_registry t =
  for k = 0 to t.samp_len - 1 do
    t.frozen_rev <- row_sample t k :: t.frozen_rev
  done;
  t.samp_len <- 0;
  t.reg_names <- Array.of_list (metric_names t);
  t.reg_metrics <- Array.map (fun name -> Hashtbl.find t.metrics name) t.reg_names;
  t.samp_vals <- Array.make (Array.length t.samp_times * Array.length t.reg_names) 0.0;
  t.reg_dirty <- false

(* Cold path: double the matrix (tick capacity). *)
let grow_samples t =
  let cap = Array.length t.samp_times in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let stride = Array.length t.reg_names in
  let nt = Array.make ncap Time.zero in
  Array.blit t.samp_times 0 nt 0 t.samp_len;
  t.samp_times <- nt;
  let nv = Array.make (ncap * stride) 0.0 in
  Array.blit t.samp_vals 0 nv 0 (t.samp_len * stride);
  t.samp_vals <- nv

let sample t ~now =
  if t.enabled then begin
    Profiler.enter t.profiler Profiler.Subsystem.Telemetry;
    if t.reg_dirty then refresh_registry t;
    if t.samp_len = Array.length t.samp_times then grow_samples t;
    let stride = Array.length t.reg_names in
    t.samp_times.(t.samp_len) <- now;
    let base = t.samp_len * stride in
    for i = 0 to stride - 1 do
      t.samp_vals.(base + i) <- metric_value t.reg_metrics.(i)
    done;
    t.samp_len <- t.samp_len + 1;
    t.sample_count <- t.sample_count + 1;
    Profiler.leave t.profiler Profiler.Subsystem.Telemetry
  end

let start_sampler t sim ?(interval = Time.ms 1) () =
  if t.enabled && not t.sampler_running then begin
    t.sampler_running <- true;
    Sim.every_daemon sim ~every:interval (fun now -> sample t ~now)
  end

let samples t =
  let tail = List.init t.samp_len (fun k -> row_sample t k) in
  List.rev_append t.frozen_rev tail

let sample_count t = t.sample_count

(* ---------------- reports ---------------- *)

let metrics_report t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== telemetry metrics (%d samples, %d metrics) ==\n" t.sample_count
       (Hashtbl.length t.metrics));
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.metrics name with
      | None -> ()
      | Some (Counter c) -> Buffer.add_string buf (Printf.sprintf "%-34s %14.1f\n" name c.value)
      | Some (Gauge g) -> Buffer.add_string buf (Printf.sprintf "%-34s %14.1f\n" name (g ()))
      | Some (Hist h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-34s n=%-9d mean=%.1fus p95=%.1fus p99=%.1fus\n" name
             (Hdr_histogram.count h) (Hdr_histogram.mean_us h)
             (Hdr_histogram.percentile_us h 95.0)
             (Hdr_histogram.percentile_us h 99.0)))
    (metric_names t);
  Buffer.contents buf

let timeseries_report ?prefix t =
  let keep name =
    match prefix with None -> true | Some p -> String.length name >= String.length p
                                               && String.sub name 0 (String.length p) = p
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== telemetry time series (t_ms metric value) ==\n";
  List.iter
    (fun { s_time; s_values } ->
      Array.iter
        (fun (name, v) ->
          if keep name then
            Buffer.add_string buf
              (Printf.sprintf "%10.3f %-34s %14.3f\n" (Time.to_float_ms s_time) name v))
        s_values)
    (samples t);
  Buffer.contents buf

let decisions_report ?(limit = 40) t =
  let total = Decision_ring.length t.decisions in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== scheduler decision log (%d retained, showing last %d) ==\n" total
       (min limit total));
  let skip = if total > limit then total - limit else 0 in
  let i = ref 0 in
  iter_decisions t (fun ~time ~thread ~tenant ~kind ~amount ~tokens_after ->
      if !i >= skip then
        Buffer.add_string buf
          (Printf.sprintf "%10.3fms thread%d tenant%-5d %-12s amount=%10.1f tokens=%10.1f\n"
             (Time.to_float_ms time) thread tenant (Decision.name kind) amount tokens_after);
      Stdlib.incr i);
  Buffer.contents buf
