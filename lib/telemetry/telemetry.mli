(** Observability core: lifecycle span ring, scheduler decision log, and a
    named-metrics registry with sim-time sampling.

    One {!t} per simulated world.  The defining contract is
    {e zero overhead when disabled}: every record operation first reads the
    immutable [enabled] flag and returns without allocating or mutating when
    it is false, so instrumentation can stay compiled into the dataplane hot
    path (PR 1's allocation-free cycle) at no cost.  The shared {!disabled}
    instance is never mutated and is therefore safe to share across domains
    (parallel {!Reflex_experiments.Runner} workers). *)

open Reflex_engine
open Reflex_stats

(** Request lifecycle stages, in hop order along the ReFlex request path. *)
module Stage : sig
  type t =
    | Client_submit  (** client library issued the request *)
    | Server_rx  (** dataplane pulled it off the rx ring *)
    | Sched_enqueue  (** parsed and enqueued with the QoS scheduler *)
    | Granted  (** token grant: scheduler released it for submission *)
    | Nvme_submit  (** accepted by the NVMe submission queue *)
    | Nvme_complete  (** flash completion observed on the CQ *)
    | Tx_resp  (** response handed to the NIC/TCP layer *)
    | Client_complete  (** response delivered back to the client *)

  val count : int
  val to_int : t -> int
  val of_int : int -> t
  val name : t -> string

  (** [component_names.(i)] names the latency component ending at stage
      [i+1].  The seven components tile [client_submit, client_complete]
      exactly, so a complete request's components sum to its end-to-end
      latency by construction. *)
  val component_names : string array

  val component_count : int
end

(** Why the Algorithm-1 scheduler made a throttling/token decision. *)
module Decision : sig
  type kind =
    | Throttled  (** LC tenant left demand queued: token balance at floor *)
    | Deficit_limit  (** LC balance below NEG_LIMIT: control plane notified *)
    | Donated  (** LC balance above POS_LIMIT donated to the global bucket *)
    | Be_bucket_take  (** BE tenant claimed tokens from the global bucket *)
    | Be_starved  (** BE tenant left demand queued: could not fully pay *)
    | Be_idle_drain  (** idle BE tenant's balance returned to the bucket *)
    | Bucket_reset  (** this thread's round marked the global-bucket reset *)

  val to_int : kind -> int
  val of_int : int -> kind
  val name : kind -> string
end

type t

(** Handle to a registered counter.  Mutating a handle obtained from a
    disabled instance is a silent no-op sink. *)
type counter

(** One sampler tick: all registered metrics read at [s_time], sorted by
    metric name (deterministic across runs and domains). *)
type sample = private { s_time : Time.t; s_values : (string * float) array }

(** The shared always-disabled instance.  All record operations on it are
    no-ops; it is never mutated, hence domain-safe. *)
val disabled : t

(** [create ()] makes an enabled instance.  [span_capacity] and
    [decision_capacity] bound the ring buffers (oldest entries are
    overwritten on wraparound). *)
val create : ?span_capacity:int -> ?decision_capacity:int -> unit -> t

val enabled : t -> bool

(** {1 lib/obs attachments}

    The always-on flight recorder and the cost profiler (both from
    [lib/obs]) ride on the telemetry instance so every layer that already
    threads a [t] can reach them.  Both default to the shared disabled
    instances.  Attach {e before} building the world: the scheduler and
    dataplane cache the handles at creation time. *)

(** The attached flight recorder ([Reflex_obs.Flight.disabled] unless set). *)
val flight : t -> Reflex_obs.Flight.t

(** Attach a flight recorder.  Raises [Invalid_argument] on the shared
    {!disabled} instance (which must never be mutated). *)
val set_flight : t -> Reflex_obs.Flight.t -> unit

val profiler : t -> Reflex_obs.Profiler.t

(** Attach a cost profiler and publish its per-subsystem wall/minor-words
    accumulators as [obs/prof/...] gauges (sampled on daemon ticks, hence
    visible to the Tsdb and Prometheus exporters).  Raises on {!disabled}. *)
val set_profiler : t -> Reflex_obs.Profiler.t -> unit

(** {1 Lifecycle spans} *)

(** [span t ~now ~tenant ~req_id stage] records one hop.  Request identity
    is the (tenant, req_id) pair — req_ids are only unique per tenant. *)
val span : t -> now:Time.t -> tenant:int -> req_id:int64 -> Stage.t -> unit

(** Spans currently retained (<= capacity). *)
val span_count : t -> int

(** Spans ever recorded, including overwritten ones. *)
val spans_recorded : t -> int

(** Spans lost to wraparound. *)
val spans_dropped : t -> int

(** Oldest-first over the retained window. *)
val iter_spans :
  t -> (time:Time.t -> tenant:int -> req_id:int64 -> stage:Stage.t -> unit) -> unit

(** {1 Scheduler decision log} *)

val decision :
  t ->
  now:Time.t ->
  thread:int ->
  tenant:int ->
  Decision.kind ->
  amount:float ->
  tokens_after:float ->
  unit

val decision_count : t -> int
val decisions_recorded : t -> int

val iter_decisions :
  t ->
  (time:Time.t ->
  thread:int ->
  tenant:int ->
  kind:Decision.kind ->
  amount:float ->
  tokens_after:float ->
  unit) ->
  unit

(** {1 Metrics registry}

    Metric names are slash-separated paths, e.g. ["core/thread0/rounds"],
    ["qos/t7/tokens"], ["flash/read_ns"]. *)

(** Get or create a named counter.  On a disabled instance this returns a
    shared sink that guarded record sites never write. *)
val counter : t -> string -> counter

val add : counter -> float -> unit
val incr : counter -> unit
val counter_value : counter -> float

(** [register_gauge t name f] samples [f ()] at each sampler tick. *)
val register_gauge : t -> string -> (unit -> float) -> unit

val unregister : t -> string -> unit

(** Get or create a named latency histogram (values in nanoseconds). *)
val histogram : t -> string -> Hdr_histogram.t

(** Registered metric names, sorted. *)
val metric_names : t -> string list

(** Typed read-only view of one registered metric: its current counter or
    gauge value, or the live histogram.  Exporters (Prometheus text
    exposition in lib/monitor) need the kind, not just a scalar. *)
val find_metric :
  t -> string -> [ `Counter of float | `Gauge of float | `Hist of Hdr_histogram.t ] option

(** {1 Per-tenant SLO dimensions} *)

val set_tenant_slo : t -> tenant:int -> latency_critical:bool -> latency_us:int -> unit

(** [(latency_critical, latency_us)] if registered. *)
val tenant_slo : t -> tenant:int -> (bool * int) option

val tenants_with_slo : t -> int list

(** End-to-end server-side latency histogram for a tenant (ns). *)
val tenant_latency_hist : t -> tenant:int -> Hdr_histogram.t

val record_tenant_latency : t -> tenant:int -> int64 -> unit

(** {1 Causal span links}

    Edges between spans turn the flat ring into trees: retry attempt N+1
    {e follows from} attempt N (a new req_id for the same logical
    operation), and derived work hangs {e under} its parent.  Links are
    rare events (retries, remediations) and never touch the hot path. *)

type link_kind =
  | Follows_from  (** same logical op continued under a new req_id *)
  | Child_of  (** derived span nested under its parent *)

(** [link t ~now ~kind ~src_tenant ~src_req ~dst_tenant ~dst_req] records
    a causal edge src -> dst between two (tenant, req_id) spans. *)
val link :
  t ->
  now:Time.t ->
  kind:link_kind ->
  src_tenant:int ->
  src_req:int64 ->
  dst_tenant:int ->
  dst_req:int64 ->
  unit

(** Chronological [(time, kind, src, dst)] edges. *)
val links : t -> (Time.t * link_kind * (int * int64) * (int * int64)) list

(** [remediation_mark t ~now ~rule ~outcome] timestamps an applied
    remediation (also mirrored into the flight ring), so degrade actions
    appear in traces linked to the alert rule that bound them. *)
val remediation_mark : t -> now:Time.t -> rule:string -> outcome:string -> unit

(** Chronological [(time, rule, outcome)] marks. *)
val remediation_log : t -> (Time.t * string * string) list

(** {1 Fault marks}

    The fault injector (lib/faults) timestamps every fault activation and
    deactivation here, so reports and the SLO auditor can attribute
    latency excursions to the fault windows that caused them. *)

(** [fault_mark t ~now ~label ~active] records a fault transition:
    [active = true] at injection, [false] at recovery.  No-op when
    disabled. *)
val fault_mark : t -> now:Time.t -> label:string -> active:bool -> unit

(** Chronological [(time, label, active)] marks. *)
val fault_log : t -> (Time.t * string * bool) list

(** Start/stop marks paired into [(label, start, stop)] windows sorted by
    start; [stop = None] for faults still active at the end. *)
val fault_windows : t -> (string * Time.t * Time.t option) list

(** One line per fault window. *)
val faults_report : t -> string

(** {1 Sampling} *)

(** Snapshot every registered metric now. *)
val sample : t -> now:Time.t -> unit

(** [start_sampler t sim ()] snapshots all metrics every [interval]
    (default 1ms) of sim time, as a {e daemon} event ({!Sim.every_daemon}):
    the sampler never keeps the simulation alive on its own and does not
    perturb simulation state, so telemetry-on results equal telemetry-off
    results bit for bit.  Idempotent per instance. *)
val start_sampler : t -> Sim.t -> ?interval:Time.t -> unit -> unit

(** Chronological samples. *)
val samples : t -> sample list

val sample_count : t -> int

(** {1 Plain-text reports} *)

(** Final value of every metric (histograms: n/mean/p95/p99 in µs). *)
val metrics_report : t -> string

(** One line per (tick, metric): [t_ms name value].  [prefix] filters by
    metric-name prefix. *)
val timeseries_report : ?prefix:string -> t -> string

(** Last [limit] (default 40) scheduler decisions. *)
val decisions_report : ?limit:int -> t -> string
