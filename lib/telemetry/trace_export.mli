(** Exporters over the telemetry span ring: Chrome [trace_event] JSON and
    plain-text per-request latency breakdowns.

    Requests are identified by the (tenant, req_id) pair.  A request is
    {e complete} when all {!Telemetry.Stage.count} stages were stamped with
    monotone times; its seven components tile the end-to-end interval, so
    their sum equals the total latency exactly. *)

open Reflex_engine

type request = {
  r_tenant : int;
  r_req_id : int64;
  r_stamps : int64 array;  (** [Stage.count] entries; [-1L] = not seen *)
}

(** All requests reconstructible from the retained span window, in
    first-seen order (deterministic). *)
val requests : Telemetry.t -> request list

val complete : request -> bool

type breakdown = {
  b_tenant : int;
  b_req_id : int64;
  b_start : Time.t;
  b_total : Time.t;  (** end-to-end client latency *)
  b_components : Time.t array;
      (** [Stage.component_count] entries; sums to [b_total] *)
}

val breakdown_of_request : request -> breakdown

(** Breakdowns of the complete requests, first-seen order. *)
val breakdowns : Telemetry.t -> breakdown list

(** Top [top] (default 10) requests by end-to-end latency, one line each
    with all seven components in µs. *)
val breakdown_report : ?top:int -> Telemetry.t -> string

type component_stat = {
  cs_name : string;
  cs_mean_us : float;
  cs_p95_us : float;
  cs_max_us : float;
  cs_share : float;  (** fraction of summed end-to-end time spent here *)
}

(** Aggregate statistics per latency component, over complete requests. *)
val component_summary : Telemetry.t -> component_stat array

val component_report : Telemetry.t -> string

(** {1 Causal span trees}

    [Follows_from] links (recorded by the client when a timed-out
    attempt is re-issued under a fresh req_id) chained into per-root
    attempt sequences. *)

(** [(tenant, [attempt-0 req_id; attempt-1; ...])] per chain, in
    first-link order (deterministic). *)
val retry_chains : Telemetry.t -> (int * int64 list) list

(** Chain listing capped at [top] (default 20) with total/longest
    counts in the header. *)
val retry_tree_report : ?top:int -> Telemetry.t -> string

(** Latest timestamp observed anywhere in the telemetry (spans, fault
    marks, samples) — the effective end of the trace. *)
val last_time : Telemetry.t -> Time.t

(** Chrome [trace_event] JSON (load in [about://tracing] or Perfetto):
    one ["ph":"X"] duration event per component of each complete request
    (pid = tenant, tid = req_id), one instant event per raw span, and one
    ["cat":"fault"] duration event per injected-fault window (pid 0 /
    tid 0; windows still open at export close at {!last_time}) so fault
    injections visually align with the latency spikes they caused.
    Causal links render as flow arrows (["ph":"s"]/["ph":"f"] pairs,
    cat ["link"]) between the linked requests' rows, and remediation
    applications as cat ["remediation"] instants.  [extra] appends
    caller-rendered trace_event objects (one complete JSON object per
    element) — lib/monitor uses it for alert-timeline instants. *)
val to_chrome_json : ?extra:string list -> Telemetry.t -> string

val write_chrome_json : ?extra:string list -> Telemetry.t -> string -> unit
