open Reflex_engine

(* SLO auditor: cross-reference the per-request breakdowns with the
   per-tenant SLO targets registered at tenant admission, and attribute
   each violation to the latency component that dominated it.  This is
   the answer to "the p95 blew the SLO — was it NIC queueing, token
   starvation, or die contention?" *)

type violation = {
  v_tenant : int;
  v_req_id : int64;
  v_time : Time.t; (* completion time *)
  v_total : Time.t;
  v_slo : Time.t;
  v_dominant : int; (* index into Stage.component_names *)
  v_dominant_frac : float; (* dominant component / total *)
}

let dominant_component (b : Trace_export.breakdown) =
  let best = ref 0 in
  Array.iteri
    (fun i c -> if c > b.Trace_export.b_components.(!best) then best := i)
    b.Trace_export.b_components;
  !best

let violations tel =
  List.filter_map
    (fun (b : Trace_export.breakdown) ->
      match Telemetry.tenant_slo tel ~tenant:b.b_tenant with
      | Some (true, latency_us) ->
        let slo = Time.us latency_us in
        if Time.(b.b_total > slo) then begin
          let d = dominant_component b in
          let total_us = Time.to_float_us b.b_total in
          Some
            {
              v_tenant = b.b_tenant;
              v_req_id = b.b_req_id;
              v_time = Time.add b.b_start b.b_total;
              v_total = b.b_total;
              v_slo = slo;
              v_dominant = d;
              v_dominant_frac =
                (if total_us <= 0.0 then 0.0
                 else Time.to_float_us b.b_components.(d) /. total_us);
            }
        end
        else None
      | Some (false, _) | None -> None)
    (Trace_export.breakdowns tel)

type window = {
  w_start : Time.t;
  w_tenant : int;
  w_count : int;
  w_worst_us : float;
  w_dominant : int; (* most frequent dominant component in the window *)
}

(* Bucket violations into fixed windows per tenant; within each window the
   reported dominant component is the most frequent per-request dominant. *)
let windows ?(window = Time.ms 10) tel =
  if Time.(window <= Time.zero) then invalid_arg "Slo_audit.windows: non-positive window";
  let tbl : (int * int64, int * float * int array) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let slot = Int64.div v.v_time window in
      let key = (v.v_tenant, slot) in
      let count, worst, doms =
        match Hashtbl.find_opt tbl key with
        | Some x -> x
        | None -> (0, 0.0, Array.make Telemetry.Stage.component_count 0)
      in
      doms.(v.v_dominant) <- doms.(v.v_dominant) + 1;
      let worst = Stdlib.max worst (Time.to_float_us v.v_total) in
      Hashtbl.replace tbl key (count + 1, worst, doms))
    (violations tel);
  Hashtbl.fold
    (fun (tenant, slot) (count, worst, doms) acc ->
      let dominant = ref 0 in
      Array.iteri (fun i n -> if n > doms.(!dominant) then dominant := i) doms;
      {
        w_start = Int64.mul slot window;
        w_tenant = tenant;
        w_count = count;
        w_worst_us = worst;
        w_dominant = !dominant;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Time.compare a.w_start b.w_start with
         | 0 -> compare a.w_tenant b.w_tenant
         | c -> c)

type tenant_summary = {
  ts_tenant : int;
  ts_slo_us : int;
  ts_requests : int; (* complete traced requests *)
  ts_violations : int;
  ts_worst_us : float;
  ts_dominant : int option; (* across all violations; None when compliant *)
}

let tenant_summaries tel =
  let vs = violations tel in
  let bds = Trace_export.breakdowns tel in
  List.filter_map
    (fun tenant ->
      match Telemetry.tenant_slo tel ~tenant with
      | Some (true, latency_us) ->
        let mine = List.filter (fun v -> v.v_tenant = tenant) vs in
        let doms = Array.make Telemetry.Stage.component_count 0 in
        let worst = ref 0.0 in
        List.iter
          (fun v ->
            doms.(v.v_dominant) <- doms.(v.v_dominant) + 1;
            worst := Stdlib.max !worst (Time.to_float_us v.v_total))
          mine;
        let dominant =
          if mine = [] then None
          else begin
            let best = ref 0 in
            Array.iteri (fun i n -> if n > doms.(!best) then best := i) doms;
            Some !best
          end
        in
        Some
          {
            ts_tenant = tenant;
            ts_slo_us = latency_us;
            ts_requests =
              List.length
                (List.filter (fun (b : Trace_export.breakdown) -> b.b_tenant = tenant) bds);
            ts_violations = List.length mine;
            ts_worst_us = !worst;
            ts_dominant = dominant;
          }
      | _ -> None)
    (Telemetry.tenants_with_slo tel)

(* Labels of injected faults whose window overlaps [start, stop).  An
   open fault window (no stop mark yet) overlaps everything after its
   start. *)
let overlapping_faults tel ~start ~stop =
  List.filter_map
    (fun (label, f0, f1) ->
      let ends_after = match f1 with None -> true | Some f1 -> Time.(f1 > start) in
      if Time.(f0 < stop) && ends_after then Some label else None)
    (Telemetry.fault_windows tel)

let report ?window:(w = Time.ms 10) tel =
  let buf = Buffer.create 2048 in
  let summaries = tenant_summaries tel in
  Buffer.add_string buf "== SLO audit ==\n";
  if summaries = [] then Buffer.add_string buf "no latency-critical tenants registered\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-8s %8s %9s %11s %10s  %s\n" "tenant" "slo_us" "requests" "violations"
         "worst_us" "dominant");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "t%-7d %8d %9d %11d %10.1f  %s\n" s.ts_tenant s.ts_slo_us s.ts_requests
             s.ts_violations s.ts_worst_us
             (match s.ts_dominant with
             | None -> "-"
             | Some d -> Telemetry.Stage.component_names.(d))))
      summaries;
    let ws = windows ~window:w tel in
    let have_faults = Telemetry.fault_windows tel <> [] in
    if ws <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "-- violation windows (%.1fms) --\n" (Time.to_float_ms w));
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-8s %6s %10s  %-14s %s\n" "t_ms" "tenant" "count" "worst_us"
           "dominant"
           (if have_faults then "faults" else ""));
      List.iter
        (fun win ->
          let faults =
            if not have_faults then ""
            else
              match
                overlapping_faults tel ~start:win.w_start ~stop:(Time.add win.w_start w)
              with
              | [] -> "-"
              | labels -> String.concat "," labels
          in
          Buffer.add_string buf
            (Printf.sprintf "%-10.1f t%-7d %6d %10.1f  %-14s %s\n" (Time.to_float_ms win.w_start)
               win.w_tenant win.w_count win.w_worst_us
               Telemetry.Stage.component_names.(win.w_dominant)
               faults))
        ws
    end;
    if have_faults then Buffer.add_string buf (Telemetry.faults_report tel)
  end;
  Buffer.contents buf
