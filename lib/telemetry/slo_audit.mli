(** SLO auditor: flags traced requests of latency-critical tenants that
    exceeded their registered SLO and attributes each violation to the
    dominant latency component (the answer to "was the p95 outlier NIC
    queueing, token starvation, or die contention?"). *)

open Reflex_engine

type violation = {
  v_tenant : int;
  v_req_id : int64;
  v_time : Time.t;  (** completion time *)
  v_total : Time.t;
  v_slo : Time.t;
  v_dominant : int;  (** index into {!Telemetry.Stage.component_names} *)
  v_dominant_frac : float;  (** dominant component / total *)
}

(** Index of the largest component of a breakdown. *)
val dominant_component : Trace_export.breakdown -> int

(** All SLO violations among complete traced requests of latency-critical
    tenants, in first-seen request order. *)
val violations : Telemetry.t -> violation list

type window = {
  w_start : Time.t;
  w_tenant : int;
  w_count : int;
  w_worst_us : float;
  w_dominant : int;  (** most frequent dominant component in the window *)
}

(** Violations bucketed into fixed windows (default 10ms) per tenant,
    sorted by (start, tenant). *)
val windows : ?window:Time.t -> Telemetry.t -> window list

type tenant_summary = {
  ts_tenant : int;
  ts_slo_us : int;
  ts_requests : int;  (** complete traced requests *)
  ts_violations : int;
  ts_worst_us : float;
  ts_dominant : int option;  (** across all violations; [None] if compliant *)
}

val tenant_summaries : Telemetry.t -> tenant_summary list

(** Labels of injected faults (see {!Telemetry.fault_windows}) whose
    window overlaps [\[start, stop)]. *)
val overlapping_faults : Telemetry.t -> start:Time.t -> stop:Time.t -> string list

(** Per-tenant compliance table plus the violation-window log.  When the
    run carried injected faults, each violation window is annotated with
    the fault labels active during it and the fault-window table is
    appended — the audit answers "which violations did the chaos plan
    cause, and which are the system's own". *)
val report : ?window:Time.t -> Telemetry.t -> string
