open Reflex_engine

(* Turn the raw span ring into per-request views:
   - Chrome trace_event JSON (load in about://tracing or Perfetto);
   - a per-request latency breakdown whose seven components telescope
     exactly to the end-to-end latency;
   - an aggregate per-component summary.

   Requests are keyed by the (tenant, req_id) pair — req_ids are only
   unique per tenant/connection. *)

type request = {
  r_tenant : int;
  r_req_id : int64;
  r_stamps : int64 array; (* Stage.count entries; -1L = stage not seen *)
}

(* Insertion-ordered collection: ring iteration is oldest-first, so the
   resulting request list is ordered by first-seen stage, which makes all
   downstream reports deterministic. *)
let requests tel =
  let order : (int * int64) list ref = ref [] in
  let by_key : (int * int64, request) Hashtbl.t = Hashtbl.create 1024 in
  Telemetry.iter_spans tel (fun ~time ~tenant ~req_id ~stage ->
      let key = (tenant, req_id) in
      let r =
        match Hashtbl.find_opt by_key key with
        | Some r -> r
        | None ->
          let r =
            { r_tenant = tenant; r_req_id = req_id;
              r_stamps = Array.make Telemetry.Stage.count (-1L) }
          in
          Hashtbl.replace by_key key r;
          order := key :: !order;
          r
      in
      r.r_stamps.(Telemetry.Stage.to_int stage) <- time);
  List.rev_map (Hashtbl.find by_key) !order

(* A request is usable for breakdowns when every stage was stamped and the
   stamps are monotone (a request whose early spans were overwritten by
   ring wraparound fails the first check). *)
let complete r =
  let ok = ref true in
  Array.iter (fun s -> if s < 0L then ok := false) r.r_stamps;
  if !ok then
    for i = 0 to Telemetry.Stage.count - 2 do
      if r.r_stamps.(i + 1) < r.r_stamps.(i) then ok := false
    done;
  !ok

type breakdown = {
  b_tenant : int;
  b_req_id : int64;
  b_start : Time.t;
  b_total : Time.t; (* end-to-end client latency *)
  b_components : Time.t array; (* Stage.component_count entries; sums to b_total *)
}

let breakdown_of_request r =
  let n = Telemetry.Stage.component_count in
  let comps = Array.make n 0L in
  for i = 0 to n - 1 do
    comps.(i) <- Time.diff r.r_stamps.(i + 1) r.r_stamps.(i)
  done;
  {
    b_tenant = r.r_tenant;
    b_req_id = r.r_req_id;
    b_start = r.r_stamps.(0);
    b_total = Time.diff r.r_stamps.(Telemetry.Stage.count - 1) r.r_stamps.(0);
    b_components = comps;
  }

let breakdowns tel = List.filter complete (requests tel) |> List.map breakdown_of_request

(* ------------------------------------------------------------------ *)
(* Plain-text reports                                                 *)
(* ------------------------------------------------------------------ *)

let breakdown_report ?(top = 10) tel =
  let bds = breakdowns tel in
  let n = List.length bds in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "== per-request latency breakdown (%d complete requests; top %d by latency) ==\n"
       n (min top n));
  Buffer.add_string buf (Printf.sprintf "%-8s %-10s %10s |" "tenant" "req" "total_us");
  Array.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf " %12s" c))
    Telemetry.Stage.component_names;
  Buffer.add_char buf '\n';
  let worst =
    List.sort (fun a b -> compare b.b_total a.b_total) bds |> fun l ->
    List.filteri (fun i _ -> i < top) l
  in
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "t%-7d %-10Ld %10.2f |" b.b_tenant b.b_req_id (Time.to_float_us b.b_total));
      Array.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf " %12.2f" (Time.to_float_us c)))
        b.b_components;
      Buffer.add_char buf '\n')
    worst;
  Buffer.contents buf

type component_stat = {
  cs_name : string;
  cs_mean_us : float;
  cs_p95_us : float;
  cs_max_us : float;
  cs_share : float; (* fraction of total end-to-end time spent here *)
}

let component_summary tel =
  let bds = breakdowns tel in
  let n = Telemetry.Stage.component_count in
  let sums = Array.make n 0.0 in
  let maxs = Array.make n 0.0 in
  let hists = Array.init n (fun _ -> Reflex_stats.Hdr_histogram.create ()) in
  let total = ref 0.0 in
  List.iter
    (fun b ->
      total := !total +. Time.to_float_us b.b_total;
      Array.iteri
        (fun i c ->
          let us = Time.to_float_us c in
          sums.(i) <- sums.(i) +. us;
          if us > maxs.(i) then maxs.(i) <- us;
          Reflex_stats.Hdr_histogram.record hists.(i) c)
        b.b_components)
    bds;
  let count = List.length bds in
  Array.init n (fun i ->
      {
        cs_name = Telemetry.Stage.component_names.(i);
        cs_mean_us = (if count = 0 then 0.0 else sums.(i) /. float_of_int count);
        cs_p95_us = Reflex_stats.Hdr_histogram.percentile_us hists.(i) 95.0;
        cs_max_us = maxs.(i);
        cs_share = (if !total <= 0.0 then 0.0 else sums.(i) /. !total);
      })

let component_report tel =
  let stats = component_summary tel in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== latency component summary (complete requests) ==\n";
  Buffer.add_string buf
    (Printf.sprintf "%-14s %12s %12s %12s %8s\n" "component" "mean_us" "p95_us" "max_us" "share");
  Array.iter
    (fun cs ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %12.2f %12.2f %12.2f %7.1f%%\n" cs.cs_name cs.cs_mean_us cs.cs_p95_us
           cs.cs_max_us (100.0 *. cs.cs_share)))
    stats;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Causal span trees                                                  *)
(* ------------------------------------------------------------------ *)

(* Chain Follows_from links into per-root attempt chains: each chain is
   [(tenant, [req_id of attempt 0; attempt 1; ...])].  Links are rare
   (one per client retry), so the list walk is fine. *)
let retry_chains tel =
  let links =
    List.filter
      (fun (_, kind, _, _) -> kind = Telemetry.Follows_from)
      (Telemetry.links tel)
  in
  let next = Hashtbl.create 16 and is_dst = Hashtbl.create 16 in
  List.iter
    (fun (_, _, src, dst) ->
      Hashtbl.replace next src dst;
      Hashtbl.replace is_dst dst ())
    links;
  (* Roots in link-record order (chronological, hence deterministic). *)
  links
  |> List.filter_map (fun (_, _, src, _) ->
         if Hashtbl.mem is_dst src then None
         else
           let rec follow key acc =
             match Hashtbl.find_opt next key with
             | Some dst -> follow dst (snd dst :: acc)
             | None -> List.rev acc
           in
           let tenant, root = src in
           Some (tenant, follow src [ root ]))

let retry_tree_report ?(top = 20) tel =
  let chains = retry_chains tel in
  let n = List.length chains in
  let longest = List.fold_left (fun acc (_, reqs) -> max acc (List.length reqs)) 0 chains in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== retry span trees (%d chains, longest %d attempts; first %d) ==\n" n
       longest (min top n));
  List.iteri
    (fun i (tenant, reqs) ->
      if i < top then
        Buffer.add_string buf
          (Printf.sprintf "t%-4d %d attempts: %s\n" tenant (List.length reqs)
             (String.concat " ~> " (List.map Int64.to_string reqs))))
    chains;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                            *)
(* ------------------------------------------------------------------ *)

(* One complete "X" (duration) event per latency component, plus an
   instant event per raw span so incomplete requests still show up.
   pid = tenant id, tid = dataplane-visible request id.  Chrome expects
   [ts]/[dur] in microseconds (floats allowed). *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Latest timestamp observed anywhere in the telemetry — closes fault
   windows that are still open when the trace is exported. *)
let last_time tel =
  let t = ref 0L in
  let see x = if Time.(x > !t) then t := x in
  Telemetry.iter_spans tel (fun ~time ~tenant:_ ~req_id:_ ~stage:_ -> see time);
  List.iter (fun (time, _, _) -> see time) (Telemetry.fault_log tel);
  List.iter (fun s -> see s.Telemetry.s_time) (Telemetry.samples tel);
  !t

let to_chrome_json ?(extra = []) tel =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ','
  in
  (* Duration events: one per component of each complete request. *)
  List.iter
    (fun b ->
      let t = ref b.b_start in
      Array.iteri
        (fun i c ->
          sep ();
          Buffer.add_string buf "{\"name\":";
          add_json_string buf Telemetry.Stage.component_names.(i);
          Buffer.add_string buf ",\"cat\":\"request\",\"ph\":\"X\",\"ts\":";
          Buffer.add_string buf (Printf.sprintf "%.3f" (Time.to_float_us !t));
          Buffer.add_string buf ",\"dur\":";
          Buffer.add_string buf (Printf.sprintf "%.3f" (Time.to_float_us c));
          Buffer.add_string buf
            (Printf.sprintf ",\"pid\":%d,\"tid\":%Ld,\"args\":{\"req\":%Ld}}" b.b_tenant b.b_req_id
               b.b_req_id);
          t := Time.add !t c)
        b.b_components)
    (breakdowns tel);
  (* Instant events: every raw span, so wrap-truncated requests are still
     visible on the timeline. *)
  Telemetry.iter_spans tel (fun ~time ~tenant ~req_id ~stage ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_json_string buf (Telemetry.Stage.name stage);
      Buffer.add_string buf ",\"cat\":\"span\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      Buffer.add_string buf (Printf.sprintf "%.3f" (Time.to_float_us time));
      Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%Ld}" tenant req_id));
  (* Injected-fault windows as duration events on a dedicated row
     (pid 0 / tid 0, cat "fault"), so latency spikes in the viewer line
     up visually with the fault that caused them.  A window still open at
     export time is closed at the latest observed timestamp. *)
  (match Telemetry.fault_windows tel with
  | [] -> ()
  | windows ->
    let close = last_time tel in
    List.iter
      (fun (label, t0, t1) ->
        let t1 = match t1 with Some t1 -> t1 | None -> Time.max t0 close in
        sep ();
        Buffer.add_string buf "{\"name\":";
        add_json_string buf label;
        Buffer.add_string buf ",\"cat\":\"fault\",\"ph\":\"X\",\"ts\":";
        Buffer.add_string buf (Printf.sprintf "%.3f" (Time.to_float_us t0));
        Buffer.add_string buf ",\"dur\":";
        Buffer.add_string buf (Printf.sprintf "%.3f" (Time.to_float_us (Time.diff t1 t0)));
        Buffer.add_string buf ",\"pid\":0,\"tid\":0,\"args\":{\"fault\":";
        add_json_string buf label;
        Buffer.add_string buf "}}")
      windows);
  (* Causal links as Chrome flow events: a ["ph":"s"] start anchored at
     the source request's row and a matching ["ph":"f"] finish on the
     destination's, sharing one flow id, so retry chains and remediation
     causality render as arrows between the linked spans. *)
  List.iteri
    (fun id (time, kind, src, dst) ->
      let name =
        match kind with
        | Telemetry.Follows_from -> "retry"
        | Telemetry.Child_of -> "child"
      in
      let src_tenant, src_req = src in
      let dst_tenant, dst_req = dst in
      let ts = Printf.sprintf "%.3f" (Time.to_float_us time) in
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_json_string buf name;
      Buffer.add_string buf
        (Printf.sprintf ",\"cat\":\"link\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%Ld}"
           id ts src_tenant src_req);
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_json_string buf name;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"cat\":\"link\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%Ld}"
           id ts dst_tenant dst_req))
    (Telemetry.links tel);
  (* Remediation applications as instants on the fault/alert row. *)
  List.iter
    (fun (time, rule, outcome) ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_json_string buf ("remediate:" ^ rule);
      Buffer.add_string buf
        (Printf.sprintf ",\"cat\":\"remediation\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":0,\"tid\":0,\"args\":{\"outcome\":"
           (Time.to_float_us time));
      add_json_string buf outcome;
      Buffer.add_string buf "}}")
    (Telemetry.remediation_log tel);
  (* Caller-supplied events (e.g. lib/monitor's alert-timeline instants):
     each element must be one complete JSON trace_event object. *)
  List.iter
    (fun frag ->
      sep ();
      Buffer.add_string buf frag)
    extra;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_chrome_json ?extra tel path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?extra tel))
