(** Observability layer: request lifecycle tracing, metrics registry,
    scheduler decision log, Chrome trace export and SLO audit.

    - {!Telemetry}: the per-world recording core (zero overhead when disabled)
    - {!Trace_export}: Chrome [trace_event] JSON + latency breakdowns
    - {!Slo_audit}: per-tenant SLO compliance and violation attribution *)

module Telemetry = Telemetry
module Trace_export = Trace_export
module Slo_audit = Slo_audit
